// Command roofline regenerates Figure 11 of the paper: the cache-aware
// roofline of the isotropic acoustic model, with one point per space order
// (4, 8, 12) and schedule (spatially-blocked vs WTB). The output table
// carries per-level arithmetic intensities and the predicted GFLOP/s, i.e.
// the coordinates of the paper's plot markers plus the ceilings, in
// reconstructable form.
//
// Besides the paper's preset machines, -machine host evaluates the measured
// fingerprint produced by `hostcal`, and -calibrate fits the two-parameter
// roofline-v2 correction (bandwidth efficiency, per-point overhead) from
// measured runs and stores it back into the fingerprint.
//
// Examples:
//
//	roofline -machine broadwell -orders 4,8,12 -tracen 64
//	roofline -machine host                  # measured-hardware ceilings
//	roofline -calibrate -caln 48            # fit BWEff/overhead, update fingerprint
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"wavetile/internal/bench"
	"wavetile/internal/hostcal"
	"wavetile/internal/roofline"
)

func main() {
	machine := flag.String("machine", "broadwell", "broadwell, skylake, or host (measured fingerprint)")
	hostcalPath := flag.String("hostcal", "", "host fingerprint path (default $WAVETILE_HOSTCAL or ~/.cache/wavesim/hostcal.json)")
	orders := flag.String("orders", "4,8,12", "space orders")
	tracen := flag.Int("tracen", 64, "trace grid edge")
	csv := flag.Bool("csv", false, "emit CSV")
	calibrate := flag.Bool("calibrate", false, "fit the 2-parameter calibration from measured runs and store it into the fingerprint")
	caln := flag.Int("caln", 48, "with -calibrate: grid edge of the calibration runs")
	calreps := flag.Int("calreps", 2, "with -calibrate: repeats per calibration measurement (best-of)")
	flag.Parse()

	if *calibrate {
		runCalibrate(*hostcalPath, *caln, *calreps)
		return
	}

	cal, err := bench.ResolveMachine(*machine, *hostcalPath)
	if err != nil {
		fatal(err)
	}
	m := cal.Machine

	var so []int
	for _, s := range strings.Split(*orders, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal(err)
		}
		so = append(so, v)
	}

	pts, err := bench.Fig11(m, so, bench.SimOptions{TraceN: *tracen, TraceNt: 8})
	if err != nil {
		fatal(err)
	}
	table := bench.Fig11Table(m, pts)
	if *csv {
		table.FprintCSV(os.Stdout)
	} else {
		table.Fprint(os.Stdout)
	}
}

// runCalibrate measures a handful of small runs, pairs each with its exact
// trace replay, fits (BWEff, overhead) by deterministic least squares and
// writes the result back into the fingerprint.
func runCalibrate(path string, caln, reps int) {
	if path == "" {
		path = hostcal.DefaultPath()
	}
	f, err := hostcal.LoadChecked(path)
	if err != nil {
		fatal(fmt.Errorf("calibration needs a valid fingerprint (run hostcal first): %w", err))
	}
	m := roofline.MachineFromCal(f)
	specs := []bench.Spec{
		{Model: "acoustic", SO: 4, N: caln, Steps: 6},
		{Model: "acoustic", SO: 8, N: caln, Steps: 6},
	}
	samples, err := bench.CalSamples(m, specs, reps)
	if err != nil {
		fatal(err)
	}
	cal, info, err := roofline.Fit(m, samples)
	if err != nil {
		fatal(err)
	}
	f.Calibration = &hostcal.Calibration{
		BWEff:              cal.BWEff,
		OverheadNSPerPoint: cal.OverheadNSPerPoint,
		Samples:            info.Samples,
		RMSRel:             info.RMSRel,
		FittedUnixMS:       time.Now().UnixMilli(),
	}
	if err := f.Save(path); err != nil {
		fatal(err)
	}
	fmt.Printf("roofline: calibrated %s from %d samples: BWEff %.3f, overhead %.2f ns/pt, RMS rel err %.1f%% → %s\n",
		f.MachineName(), info.Samples, cal.BWEff, cal.OverheadNSPerPoint, 100*info.RMSRel, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "roofline:", err)
	os.Exit(1)
}
