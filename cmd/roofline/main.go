// Command roofline regenerates Figure 11 of the paper: the cache-aware
// roofline of the isotropic acoustic model on Broadwell, with one point per
// space order (4, 8, 12) and schedule (spatially-blocked vs WTB). The
// output table carries per-level arithmetic intensities and the predicted
// GFLOP/s, i.e. the coordinates of the paper's plot markers plus the
// ceilings, in reconstructable form.
//
// Example:
//
//	roofline -machine broadwell -orders 4,8,12 -tracen 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wavetile/internal/bench"
	"wavetile/internal/roofline"
)

func main() {
	machine := flag.String("machine", "broadwell", "broadwell or skylake")
	orders := flag.String("orders", "4,8,12", "space orders")
	tracen := flag.Int("tracen", 64, "trace grid edge")
	csv := flag.Bool("csv", false, "emit CSV")
	flag.Parse()

	var m roofline.Machine
	switch strings.ToLower(*machine) {
	case "broadwell":
		m = roofline.Broadwell()
	case "skylake":
		m = roofline.Skylake()
	default:
		fatal(fmt.Errorf("unknown machine %q", *machine))
	}

	var so []int
	for _, s := range strings.Split(*orders, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal(err)
		}
		so = append(so, v)
	}

	pts, err := bench.Fig11(m, so, bench.SimOptions{TraceN: *tracen, TraceNt: 8})
	if err != nil {
		fatal(err)
	}
	table := bench.Fig11Table(m, pts)
	if *csv {
		table.FprintCSV(os.Stdout)
	} else {
		table.Fprint(os.Stdout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "roofline:", err)
	os.Exit(1)
}
