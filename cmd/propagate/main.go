// Command propagate is a general-purpose forward-modelling CLI built on the
// public wavesim API: it propagates a Ricker source through a layered
// velocity model under either schedule and writes the receiver shot record
// as CSV (one row per timestep, one column per receiver).
//
// Examples:
//
//	propagate -physics acoustic -so 8 -n 96 -tmax 0.2 -schedule wtb -out shot.csv
//	propagate -physics elastic -so 4 -n 64 -steps 100 -schedule spatial
//	propagate -n 128 -json -trace trace.json         # phase breakdown + Chrome trace
//	propagate -n 256 -progress -debug-addr localhost:6060
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"wavetile/internal/obs"
	"wavetile/internal/par"
	"wavetile/wavesim"
)

func main() {
	physics := flag.String("physics", "acoustic", "acoustic, tti or elastic")
	so := flag.Int("so", 8, "space order (even)")
	n := flag.Int("n", 96, "cubic grid edge")
	nbl := flag.Int("nbl", 10, "absorbing layer width")
	tmax := flag.Float64("tmax", 0.2, "simulated seconds (ignored when -steps > 0)")
	steps := flag.Int("steps", 0, "timestep count override")
	f0 := flag.Float64("f0", 12, "Ricker peak frequency (Hz)")
	nrec := flag.Int("nrec", 64, "receivers on a surface line")
	schedule := flag.String("schedule", "wtb", "wtb, wtb-pipelined or spatial")
	kernel := flag.String("kernel", "", "pin a stencil kernel variant (base, y2, generic; default: best generated)")
	tt := flag.Int("tt", 16, "WTB time-tile depth")
	tile := flag.Int("tile", 32, "WTB tile edge")
	block := flag.Int("block", 8, "parallel block edge")
	out := flag.String("out", "", "shot-record CSV path (default stdout summary only)")
	snap := flag.Bool("snap", false, "render an ASCII snapshot of the final wavefield (x–y plane through the source depth)")
	jsonOut := flag.Bool("json", false, "emit the run result as JSON (incl. phase breakdown) instead of the text summary")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the tile schedule to this path")
	reportPath := flag.String("report", "", "write a roofline-attributed run report (JSON) to this path")
	machine := flag.String("machine", "", `roofline machine for -report attribution: "" auto (measured host fingerprint when available, else the marked broadwell preset), host, broadwell or skylake`)
	flight := flag.Bool("flight", false, "keep a fixed-size flight recorder of recent schedule spans (served at /debug/obs/flight, dumped to stderr on panic)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/pprof, /debug/vars and /debug/obs on this address")
	progress := flag.Bool("progress", false, "log structured propagation progress (steps/s, GPts/s, ETA) to stderr")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.Parse()

	if *workers > 0 {
		par.Workers = *workers
	}

	// Any observability consumer installs the process-global registry; the
	// run then reports through it.
	var reg *obs.Registry
	if *jsonOut || *tracePath != "" || *reportPath != "" || *flight || *debugAddr != "" || *progress {
		reg = obs.NewRegistry()
		obs.SetActive(reg)
	}
	if *tracePath != "" {
		reg.StartTrace()
	}
	if *flight {
		reg.StartFlight(0)
		defer obs.DumpFlightOnPanic(os.Stderr)()
	}
	if *progress {
		reg.EnableProgress(slog.New(slog.NewTextHandler(os.Stderr, nil)), 2*time.Second)
	}
	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "propagate: debug server on http://%s/debug/obs (metrics at /metrics)\n", dbg.Addr)
	}

	var phys wavesim.Physics
	switch strings.ToLower(*physics) {
	case "acoustic":
		phys = wavesim.Acoustic
	case "tti":
		phys = wavesim.TTI
	case "elastic":
		phys = wavesim.Elastic
	default:
		fatal(fmt.Errorf("unknown physics %q", *physics))
	}

	h := 10.0
	depth := float64(*n) * h
	center := float64(*n-1) * h / 2
	surfZ := float64(*nbl+2) * h
	sim, err := wavesim.New(wavesim.Options{
		Physics:    phys,
		SpaceOrder: *so,
		Shape:      [3]int{*n, *n, *n},
		Spacing:    [3]float64{h, h, h},
		NBL:        *nbl,
		TMax:       *tmax,
		Steps:      *steps,
		Vp:         wavesim.Layered(depth, 1500, 2200, 2800, 3400),
		SourceF0:   *f0,
		SourceAmp:  1,
		Sources:    []wavesim.Coord{{center, center, surfZ + 3*h}},
		Receivers: wavesim.LineCoords(*nrec,
			wavesim.Coord{float64(*nbl+1) * h, center, surfZ},
			wavesim.Coord{float64(*n-*nbl-2) * h, center, surfZ}),
		KernelVariant: *kernel,
	})
	if err != nil {
		fatal(err)
	}

	var sched wavesim.Schedule
	switch *schedule {
	case "wtb":
		sched = wavesim.WTB{TimeTile: *tt, TileX: *tile, TileY: *tile, BlockX: *block, BlockY: *block}
	case "wtb-pipelined", "pipelined":
		sched = wavesim.WTBPipelined{TimeTile: *tt, TileX: *tile, TileY: *tile, BlockX: *block, BlockY: *block}
	case "spatial":
		sched = wavesim.Spatial{BlockX: *block, BlockY: *block}
	default:
		fatal(fmt.Errorf("unknown -schedule %q (want wtb, wtb-pipelined or spatial)", *schedule))
	}
	res, err := sim.Run(sched)
	if err != nil {
		fatal(err)
	}

	_, _, dt, nt := func() ([3]int, [3]float64, float64, int) { return sim.Geometry() }()
	if *tracePath != "" {
		if err := writeTrace(reg, *tracePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "propagate: wrote %d schedule spans to %s\n", reg.Tracer().Len(), *tracePath)
	}
	if *reportPath != "" {
		rep, err := sim.Report(res, wavesim.ReportOptions{Machine: *machine})
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteFile(*reportPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "propagate: wrote run report to %s (%.1f%% of %s roofline)\n",
			*reportPath, 100*rep.Roofline.AchievedFraction, rep.Roofline.Machine)
	}
	if *jsonOut {
		if err := emitJSON(os.Stdout, *physics, *so, *n, nt, dt, *schedule, res); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("%s O(·,%d) %d³, nt=%d dt=%.3gms: %s schedule, %s kernel, %.3f GPts/s, %v\n",
			*physics, *so, *n, nt, dt*1e3, res.Schedule, res.Kernel, res.GPointsPerSec, res.Elapsed.Round(1e6))
		printPhases(res)
	}

	if *snap {
		renderSnapshot(sim, int((float64(*nbl)+5)*1) /* z index near source */)
	}

	if *out != "" && res.Receivers != nil {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		for t := range res.Receivers {
			cols := make([]string, len(res.Receivers[t]))
			for r, v := range res.Receivers[t] {
				cols[r] = fmt.Sprintf("%g", v)
			}
			fmt.Fprintln(f, strings.Join(cols, ","))
		}
		fmt.Fprintf(os.Stderr, "wrote %d×%d shot record to %s\n", len(res.Receivers), *nrec, *out)
	}
}

// runJSON is the machine-readable result record emitted by -json; the
// BENCH_*.json trajectory files are built from these.
type runJSON struct {
	Physics       string           `json:"physics"`
	SpaceOrder    int              `json:"space_order"`
	N             int              `json:"n"`
	Steps         int              `json:"steps"`
	DtSeconds     float64          `json:"dt_seconds"`
	Schedule      string           `json:"schedule"`
	Kernel        string           `json:"kernel"`
	ElapsedNS     int64            `json:"elapsed_ns"`
	Points        int64            `json:"points"`
	GPointsPerSec float64          `json:"gpoints_per_sec"`
	PhasesNS      map[string]int64 `json:"phases_ns,omitempty"`
	Counters      map[string]int64 `json:"counters,omitempty"`
	Receivers     int              `json:"receivers"`
}

func emitJSON(w *os.File, physics string, so, n, nt int, dt float64, schedule string, res *wavesim.Result) error {
	rec := runJSON{
		Physics:       physics,
		SpaceOrder:    so,
		N:             n,
		Steps:         nt,
		DtSeconds:     dt,
		Schedule:      res.Schedule,
		Kernel:        res.Kernel,
		ElapsedNS:     res.Elapsed.Nanoseconds(),
		Points:        res.Points,
		GPointsPerSec: res.GPointsPerSec,
		Counters:      res.Counters,
	}
	if res.Phases != nil {
		rec.PhasesNS = map[string]int64{}
		for k, v := range res.Phases {
			rec.PhasesNS[k] = v.Nanoseconds()
		}
	}
	if res.Receivers != nil && len(res.Receivers) > 0 {
		rec.Receivers = len(res.Receivers[0])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}

// printPhases renders the phase breakdown table of an observed run.
func printPhases(res *wavesim.Result) {
	if res.Phases == nil {
		return
	}
	fmt.Println("phase breakdown:")
	for _, name := range []string{"stencil", "inject", "sample", "sparse", "overhead"} {
		d, ok := res.Phases[name]
		if !ok {
			continue
		}
		pct := 0.0
		if res.Elapsed > 0 {
			pct = 100 * float64(d) / float64(res.Elapsed)
		}
		fmt.Printf("  %-9s %12v  %5.1f%%\n", name, d.Round(time.Microsecond), pct)
	}
}

func writeTrace(reg *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return reg.Tracer().WriteChrome(f)
}

// renderSnapshot prints a coarse ASCII view of the final wavefield plane:
// darker glyphs mark stronger |u|. Cheap visual sanity for a CLI run.
func renderSnapshot(sim *wavesim.Simulation, z int) {
	sl := sim.WavefieldSlice(z)
	maxAbs := 0.0
	for _, row := range sl {
		for _, v := range row {
			a := float64(v)
			if a < 0 {
				a = -a
			}
			if a > maxAbs {
				maxAbs = a
			}
		}
	}
	if maxAbs == 0 {
		fmt.Println("snapshot: silent plane")
		return
	}
	glyphs := []byte(" .:-=+*#%@")
	// Downsample to at most 64 columns.
	step := (len(sl) + 63) / 64
	fmt.Printf("\nwavefield |u| at z-index %d (max %.3g):\n", z, maxAbs)
	for x := 0; x < len(sl); x += step {
		line := make([]byte, 0, 64)
		for y := 0; y < len(sl[x]); y += step {
			a := float64(sl[x][y])
			if a < 0 {
				a = -a
			}
			g := int(a / maxAbs * float64(len(glyphs)-1))
			line = append(line, glyphs[g])
		}
		fmt.Println(string(line))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "propagate:", err)
	os.Exit(1)
}
