// Command propagate is a general-purpose forward-modelling CLI built on the
// public wavesim API: it propagates a Ricker source through a layered
// velocity model under either schedule and writes the receiver shot record
// as CSV (one row per timestep, one column per receiver).
//
// Examples:
//
//	propagate -physics acoustic -so 8 -n 96 -tmax 0.2 -schedule wtb -out shot.csv
//	propagate -physics elastic -so 4 -n 64 -steps 100 -schedule spatial
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wavetile/wavesim"
)

func main() {
	physics := flag.String("physics", "acoustic", "acoustic, tti or elastic")
	so := flag.Int("so", 8, "space order (even)")
	n := flag.Int("n", 96, "cubic grid edge")
	nbl := flag.Int("nbl", 10, "absorbing layer width")
	tmax := flag.Float64("tmax", 0.2, "simulated seconds (ignored when -steps > 0)")
	steps := flag.Int("steps", 0, "timestep count override")
	f0 := flag.Float64("f0", 12, "Ricker peak frequency (Hz)")
	nrec := flag.Int("nrec", 64, "receivers on a surface line")
	schedule := flag.String("schedule", "wtb", "wtb or spatial")
	tt := flag.Int("tt", 16, "WTB time-tile depth")
	tile := flag.Int("tile", 32, "WTB tile edge")
	block := flag.Int("block", 8, "parallel block edge")
	out := flag.String("out", "", "shot-record CSV path (default stdout summary only)")
	snap := flag.Bool("snap", false, "render an ASCII snapshot of the final wavefield (x–y plane through the source depth)")
	flag.Parse()

	var phys wavesim.Physics
	switch strings.ToLower(*physics) {
	case "acoustic":
		phys = wavesim.Acoustic
	case "tti":
		phys = wavesim.TTI
	case "elastic":
		phys = wavesim.Elastic
	default:
		fatal(fmt.Errorf("unknown physics %q", *physics))
	}

	h := 10.0
	depth := float64(*n) * h
	center := float64(*n-1) * h / 2
	surfZ := float64(*nbl+2) * h
	sim, err := wavesim.New(wavesim.Options{
		Physics:    phys,
		SpaceOrder: *so,
		Shape:      [3]int{*n, *n, *n},
		Spacing:    [3]float64{h, h, h},
		NBL:        *nbl,
		TMax:       *tmax,
		Steps:      *steps,
		Vp:         wavesim.Layered(depth, 1500, 2200, 2800, 3400),
		SourceF0:   *f0,
		SourceAmp:  1,
		Sources:    []wavesim.Coord{{center, center, surfZ + 3*h}},
		Receivers: wavesim.LineCoords(*nrec,
			wavesim.Coord{float64(*nbl+1) * h, center, surfZ},
			wavesim.Coord{float64(*n-*nbl-2) * h, center, surfZ}),
	})
	if err != nil {
		fatal(err)
	}

	var sched wavesim.Schedule
	if *schedule == "wtb" {
		sched = wavesim.WTB{TimeTile: *tt, TileX: *tile, TileY: *tile, BlockX: *block, BlockY: *block}
	} else {
		sched = wavesim.Spatial{BlockX: *block, BlockY: *block}
	}
	res, err := sim.Run(sched)
	if err != nil {
		fatal(err)
	}

	_, _, dt, nt := func() ([3]int, [3]float64, float64, int) { return sim.Geometry() }()
	fmt.Printf("%s O(·,%d) %d³, nt=%d dt=%.3gms: %s schedule, %.3f GPts/s, %v\n",
		*physics, *so, *n, nt, dt*1e3, res.Schedule, res.GPointsPerSec, res.Elapsed.Round(1e6))

	if *snap {
		renderSnapshot(sim, int((float64(*nbl)+5)*1) /* z index near source */)
	}

	if *out != "" && res.Receivers != nil {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		for t := range res.Receivers {
			cols := make([]string, len(res.Receivers[t]))
			for r, v := range res.Receivers[t] {
				cols[r] = fmt.Sprintf("%g", v)
			}
			fmt.Fprintln(f, strings.Join(cols, ","))
		}
		fmt.Printf("wrote %d×%d shot record to %s\n", len(res.Receivers), *nrec, *out)
	}
}

// renderSnapshot prints a coarse ASCII view of the final wavefield plane:
// darker glyphs mark stronger |u|. Cheap visual sanity for a CLI run.
func renderSnapshot(sim *wavesim.Simulation, z int) {
	sl := sim.WavefieldSlice(z)
	maxAbs := 0.0
	for _, row := range sl {
		for _, v := range row {
			a := float64(v)
			if a < 0 {
				a = -a
			}
			if a > maxAbs {
				maxAbs = a
			}
		}
	}
	if maxAbs == 0 {
		fmt.Println("snapshot: silent plane")
		return
	}
	glyphs := []byte(" .:-=+*#%@")
	// Downsample to at most 64 columns.
	step := (len(sl) + 63) / 64
	fmt.Printf("\nwavefield |u| at z-index %d (max %.3g):\n", z, maxAbs)
	for x := 0; x < len(sl); x += step {
		line := make([]byte, 0, 64)
		for y := 0; y < len(sl[x]); y += step {
			a := float64(sl[x][y])
			if a < 0 {
				a = -a
			}
			g := int(a / maxAbs * float64(len(glyphs)-1))
			line = append(line, glyphs[g])
		}
		fmt.Println(string(line))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "propagate:", err)
	os.Exit(1)
}
