// Command autotune regenerates Table I of the paper: the optimal WTB
// tile/block shapes per kernel, found either by sweeping the parameter
// space on short timed runs (§IV-C) on this host, or — with -predict — by
// ranking every candidate with the calibrated measured-hardware roofline
// (trace replay through the cache simulator) and measuring only the top-K.
//
// Examples:
//
//	autotune -n 128 -tunesteps 8 -models acoustic,elastic,tti -orders 4,8,12 -top 3
//	autotune -n 128 -predict -topk 1 -machine host            # model-ranked, 1 confirmation run
//	autotune -n 64 -predict -compare -json > BENCH_PR10.json  # sweep-vs-predict validation
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wavetile/internal/autotune"
	"wavetile/internal/bench"
	"wavetile/internal/roofline"
	"wavetile/internal/tiling"
)

func main() {
	n := flag.Int("n", 128, "grid edge (paper: 512)")
	tuneSteps := flag.Int("tunesteps", 8, "timesteps per measurement")
	repeats := flag.Int("repeats", 2, "measurements per candidate (best-of)")
	models := flag.String("models", "acoustic,elastic,tti", "comma-separated models")
	orders := flag.String("orders", "4,8,12", "comma-separated space orders")
	tts := flag.String("tt", "8,16,32", "time-tile depths to sweep")
	top := flag.Int("top", 1, "report the best k configurations per kernel")
	csv := flag.Bool("csv", false, "emit CSV")
	schedule := flag.String("schedule", "wtb", "runtime to sweep: wtb (sequential tiles) or wtb-pipelined (task graph)")
	kernels := flag.Bool("kernels", false, "sweep generated kernel variants (base, y2, …) per model×order instead of tile shapes")
	predict := flag.Bool("predict", false, "rank candidates with the calibrated roofline instead of measuring them all")
	topk := flag.Int("topk", 1, "with -predict: confirm the k best-predicted candidates on hardware (0 = zero-shot)")
	machine := flag.String("machine", "", `roofline machine for -predict: "" (auto), host, broadwell or skylake`)
	hostcalPath := flag.String("hostcal", "", "host fingerprint path (default $WAVETILE_HOSTCAL or ~/.cache/wavesim/hostcal.json)")
	tracen := flag.Int("tracen", 48, "with -predict: trace grid edge for the per-candidate replay")
	compare := flag.Bool("compare", false, "with -predict: also run the full sweep and score the predictor (winner agreement, regret)")
	jsonOut := flag.Bool("json", false, "with -predict -compare: emit the comparison as JSON")
	flag.Parse()

	if *kernels {
		sweepKernels(*n, *tuneSteps, *repeats, *models, *orders, *csv)
		return
	}

	exec := tiling.RunWTB
	switch *schedule {
	case "wtb":
	case "wtb-pipelined", "pipelined":
		exec = tiling.RunWTBPipelined
	default:
		fatal(fmt.Errorf("unknown -schedule %q (want wtb or wtb-pipelined)", *schedule))
	}

	var ttList []int
	for _, s := range strings.Split(*tts, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal(err)
		}
		ttList = append(ttList, v)
	}

	if *predict {
		cal, err := bench.ResolveMachine(*machine, *hostcalPath)
		if err != nil {
			fatal(err)
		}
		o := bench.PredictTuneOptions{
			TraceN: *tracen, TopK: *topk, TuneSteps: *tuneSteps, Repeats: *repeats,
		}
		if *compare {
			comparePredict(*n, *models, *orders, ttList, cal, o, *csv, *jsonOut)
		} else {
			sweepPredict(*n, *models, *orders, ttList, exec, cal, o, *top, *csv)
		}
		return
	}

	table := &bench.Table{
		Title: fmt.Sprintf("Table I — optimal WTB tile/block shapes (host, %d³ grid, %d tuning steps, %s runtime)",
			*n, *tuneSteps, *schedule),
		Header: []string{"Problem", "rank", "TT", "tile_x", "tile_y", "block_x", "block_y", "GPts/s"},
	}
	for _, m := range strings.Split(*models, ",") {
		for _, o := range strings.Split(*orders, ",") {
			so, err := strconv.Atoi(strings.TrimSpace(o))
			if err != nil {
				fatal(err)
			}
			spec := bench.Spec{Model: strings.TrimSpace(m), SO: so, N: *n}
			results, err := bench.TuneWTBWith(spec, exec, *tuneSteps, *repeats, ttList)
			if err != nil {
				fatal(err)
			}
			for i := 0; i < *top && i < len(results); i++ {
				r := results[i]
				table.Add(spec.Name(), i+1, r.Cfg.TT, r.Cfg.TileX, r.Cfg.TileY,
					r.Cfg.BlockX, r.Cfg.BlockY, r.GPts)
			}
			fmt.Fprintf(os.Stderr, "tuned %s: %d candidates, best %v\n",
				spec.Name(), len(results), results[0].Cfg)
		}
	}
	if *csv {
		table.FprintCSV(os.Stdout)
	} else {
		table.Fprint(os.Stdout)
	}
}

// sweepKernels times every generated kernel variant of every model×order
// under the spatial schedule and reports them ranked, so a host can pick
// the variant to pin via wavesim.Options.KernelVariant (or propagate
// -kernel). An order with no generated kernels is a hard error — that is
// the silent-fallback condition the generator exists to eliminate.
func sweepKernels(n, tuneSteps, repeats int, models, orders string, csv bool) {
	table := &bench.Table{
		Title: fmt.Sprintf("Generated kernel variants (host, %d³ grid, %d tuning steps, spatial runtime)",
			n, tuneSteps),
		Header: []string{"Problem", "rank", "variant", "GPts/s"},
	}
	for _, m := range strings.Split(models, ",") {
		for _, o := range strings.Split(orders, ",") {
			so, err := strconv.Atoi(strings.TrimSpace(o))
			if err != nil {
				fatal(err)
			}
			spec := bench.Spec{Model: strings.TrimSpace(m), SO: so, N: n}
			results, err := bench.TuneKernels(spec, tuneSteps, repeats)
			if err != nil {
				fatal(err)
			}
			for i, r := range results {
				table.Add(spec.Name(), i+1, r.Variant, r.GPts)
			}
			fmt.Fprintf(os.Stderr, "tuned %s kernels: best %q\n", spec.Name(), results[0].Variant)
		}
	}
	if csv {
		table.FprintCSV(os.Stdout)
	} else {
		table.Fprint(os.Stdout)
	}
}

// specsFor expands the -models/-orders grid.
func specsFor(n int, models, orders string) []bench.Spec {
	var out []bench.Spec
	for _, m := range strings.Split(models, ",") {
		for _, o := range strings.Split(orders, ",") {
			so, err := strconv.Atoi(strings.TrimSpace(o))
			if err != nil {
				fatal(err)
			}
			out = append(out, bench.Spec{Model: strings.TrimSpace(m), SO: so, N: n})
		}
	}
	return out
}

// sweepPredict is the predictive counterpart of the Table-I sweep: rank by
// model, confirm top-K, report predicted and (where confirmed) measured
// throughput per kernel.
func sweepPredict(n int, models, orders string, ttList []int, exec autotune.Exec, cal roofline.Calibrated, o bench.PredictTuneOptions, top int, csv bool) {
	table := &bench.Table{
		Title: fmt.Sprintf("Table I (predicted) — WTB shapes ranked by calibrated roofline (%s, %d³ grid, top-%d confirmed)",
			cal.Machine.Name, n, o.TopK),
		Header: []string{"Problem", "rank", "TT", "tile_x", "tile_y", "block_x", "block_y", "pred GPts/s", "meas GPts/s"},
	}
	for _, spec := range specsFor(n, models, orders) {
		results, err := bench.TunePredictWTB(spec, exec, cal, ttList, o)
		if err != nil {
			fatal(err)
		}
		for i := 0; i < top && i < len(results); i++ {
			r := results[i]
			meas := "-"
			if r.Measured {
				meas = fmt.Sprintf("%.4f", r.GPts)
			}
			table.Add(spec.Name(), i+1, r.Cfg.TT, r.Cfg.TileX, r.Cfg.TileY,
				r.Cfg.BlockX, r.Cfg.BlockY, r.Predicted.GPointsPS, meas)
		}
		fmt.Fprintf(os.Stderr, "predicted %s: %d candidates, winner %v\n",
			spec.Name(), len(results), results[0].Cfg)
	}
	if csv {
		table.FprintCSV(os.Stdout)
	} else {
		table.Fprint(os.Stdout)
	}
}

// comparePredict runs sweep and predictor side by side and scores the
// predictor — the validation harness behind BENCH_PR10.json.
func comparePredict(n int, models, orders string, ttList []int, cal roofline.Calibrated, o bench.PredictTuneOptions, csv, jsonOut bool) {
	doc, err := bench.PredictBench(specsFor(n, models, orders), cal, ttList, o)
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
		return
	}
	table := &bench.Table{
		Title: fmt.Sprintf("Sweep vs predict (%s, %d³ grid, top-%d confirmed)", doc.Machine, n, doc.TopK),
		Header: []string{"Problem", "cands", "sweep ms", "predict ms", "meas",
			"sweep winner", "predict winner", "agree", "regret"},
	}
	for _, r := range doc.Rows {
		table.Add(fmt.Sprintf("%s/so%d", r.Model, r.SO), r.Candidates,
			fmt.Sprintf("%.0f", r.SweepMS), fmt.Sprintf("%.0f", r.PredictMS), r.Measured,
			r.SweepWinner, r.PredictWinner, r.Agree, fmt.Sprintf("%.3f", r.Regret))
	}
	if csv {
		table.FprintCSV(os.Stdout)
	} else {
		table.Fprint(os.Stdout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "autotune:", err)
	os.Exit(1)
}
