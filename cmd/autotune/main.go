// Command autotune regenerates Table I of the paper: the optimal WTB
// tile/block shapes per kernel, found by sweeping the parameter space on
// short timed runs (§IV-C) on this host.
//
// Example:
//
//	autotune -n 128 -tunesteps 8 -models acoustic,elastic,tti -orders 4,8,12 -top 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wavetile/internal/bench"
	"wavetile/internal/tiling"
)

func main() {
	n := flag.Int("n", 128, "grid edge (paper: 512)")
	tuneSteps := flag.Int("tunesteps", 8, "timesteps per measurement")
	repeats := flag.Int("repeats", 2, "measurements per candidate (best-of)")
	models := flag.String("models", "acoustic,elastic,tti", "comma-separated models")
	orders := flag.String("orders", "4,8,12", "comma-separated space orders")
	tts := flag.String("tt", "8,16,32", "time-tile depths to sweep")
	top := flag.Int("top", 1, "report the best k configurations per kernel")
	csv := flag.Bool("csv", false, "emit CSV")
	schedule := flag.String("schedule", "wtb", "runtime to sweep: wtb (sequential tiles) or wtb-pipelined (task graph)")
	kernels := flag.Bool("kernels", false, "sweep generated kernel variants (base, y2, …) per model×order instead of tile shapes")
	flag.Parse()

	if *kernels {
		sweepKernels(*n, *tuneSteps, *repeats, *models, *orders, *csv)
		return
	}

	exec := tiling.RunWTB
	switch *schedule {
	case "wtb":
	case "wtb-pipelined", "pipelined":
		exec = tiling.RunWTBPipelined
	default:
		fatal(fmt.Errorf("unknown -schedule %q (want wtb or wtb-pipelined)", *schedule))
	}

	var ttList []int
	for _, s := range strings.Split(*tts, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal(err)
		}
		ttList = append(ttList, v)
	}

	table := &bench.Table{
		Title: fmt.Sprintf("Table I — optimal WTB tile/block shapes (host, %d³ grid, %d tuning steps, %s runtime)",
			*n, *tuneSteps, *schedule),
		Header: []string{"Problem", "rank", "TT", "tile_x", "tile_y", "block_x", "block_y", "GPts/s"},
	}
	for _, m := range strings.Split(*models, ",") {
		for _, o := range strings.Split(*orders, ",") {
			so, err := strconv.Atoi(strings.TrimSpace(o))
			if err != nil {
				fatal(err)
			}
			spec := bench.Spec{Model: strings.TrimSpace(m), SO: so, N: *n}
			results, err := bench.TuneWTBWith(spec, exec, *tuneSteps, *repeats, ttList)
			if err != nil {
				fatal(err)
			}
			for i := 0; i < *top && i < len(results); i++ {
				r := results[i]
				table.Add(spec.Name(), i+1, r.Cfg.TT, r.Cfg.TileX, r.Cfg.TileY,
					r.Cfg.BlockX, r.Cfg.BlockY, r.GPts)
			}
			fmt.Fprintf(os.Stderr, "tuned %s: %d candidates, best %v\n",
				spec.Name(), len(results), results[0].Cfg)
		}
	}
	if *csv {
		table.FprintCSV(os.Stdout)
	} else {
		table.Fprint(os.Stdout)
	}
}

// sweepKernels times every generated kernel variant of every model×order
// under the spatial schedule and reports them ranked, so a host can pick
// the variant to pin via wavesim.Options.KernelVariant (or propagate
// -kernel). An order with no generated kernels is a hard error — that is
// the silent-fallback condition the generator exists to eliminate.
func sweepKernels(n, tuneSteps, repeats int, models, orders string, csv bool) {
	table := &bench.Table{
		Title: fmt.Sprintf("Generated kernel variants (host, %d³ grid, %d tuning steps, spatial runtime)",
			n, tuneSteps),
		Header: []string{"Problem", "rank", "variant", "GPts/s"},
	}
	for _, m := range strings.Split(models, ",") {
		for _, o := range strings.Split(orders, ",") {
			so, err := strconv.Atoi(strings.TrimSpace(o))
			if err != nil {
				fatal(err)
			}
			spec := bench.Spec{Model: strings.TrimSpace(m), SO: so, N: n}
			results, err := bench.TuneKernels(spec, tuneSteps, repeats)
			if err != nil {
				fatal(err)
			}
			for i, r := range results {
				table.Add(spec.Name(), i+1, r.Variant, r.GPts)
			}
			fmt.Fprintf(os.Stderr, "tuned %s kernels: best %q\n", spec.Name(), results[0].Variant)
		}
	}
	if csv {
		table.FprintCSV(os.Stdout)
	} else {
		table.Fprint(os.Stdout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "autotune:", err)
	os.Exit(1)
}
