// Command benchdiff compares two benchmark JSON artifacts and decides, with
// a paired significance test, whether throughput regressed. It reads any of
// the repo's bench formats — `wavebench -mode wall -json` output,
// `wavebench -report` report arrays, single run reports (`propagate
// -report`), `autotune -predict -compare -json` sweep-vs-predict documents
// (series "autotune-sweep"/"autotune-predict") and the committed
// BENCH_PR*.json trajectory files — pairing series by (model, space order,
// schedule).
//
// The verdict is a paired sign-flip permutation test on the log throughput
// ratios (exact for ≤ 20 pairs), gated by a minimum geometric-mean effect
// size: a change must be both statistically significant (p ≤ -alpha) and
// material (|geomean − 1| ≥ -min-effect) to count. A regression exits with
// status 1 unless -soft is set, which is how `make bench-regress` gates CI
// without flaking on noise.
//
// Examples:
//
//	benchdiff BENCH_PR3.json BENCH_PR5.json
//	benchdiff -min-effect 0.10 old.json new.json     # CI smoke gate
//	benchdiff -json old.json new.json | jq .geomean_ratio
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"wavetile/internal/bench"
)

func main() {
	alpha := flag.Float64("alpha", 0.05, "significance level for the paired sign-flip test")
	minEffect := flag.Float64("min-effect", 0.02, "minimum |geomean-1| that counts as a real change")
	soft := flag.Bool("soft", false, "report regressions but always exit 0")
	jsonOut := flag.Bool("json", false, "emit the diff as JSON instead of the table")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] OLD.json NEW.json")
		flag.PrintDefaults()
		os.Exit(2)
	}

	oldF, err := bench.LoadBenchFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newF, err := bench.LoadBenchFile(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	d := bench.Diff(oldF, newF, bench.DiffOptions{Alpha: *alpha, MinEffect: *minEffect})

	if *jsonOut {
		if err := emitJSON(os.Stdout, oldF, newF, d); err != nil {
			fatal(err)
		}
	} else {
		d.Fprint(os.Stdout, oldF.Path, newF.Path)
	}
	if d.Regression && !*soft {
		os.Exit(1)
	}
}

// diffJSON is the machine-readable verdict.
type diffJSON struct {
	Old          string       `json:"old"`
	New          string       `json:"new"`
	OldFormat    string       `json:"old_format"`
	NewFormat    string       `json:"new_format"`
	Pairs        []bench.Pair `json:"pairs"`
	GeoMeanRatio float64      `json:"geomean_ratio"`
	PValue       float64      `json:"p_value"`
	Significant  bool         `json:"significant"`
	Regression   bool         `json:"regression"`
	Improvement  bool         `json:"improvement"`
	HostMismatch bool         `json:"host_mismatch,omitempty"`
}

func emitJSON(w *os.File, oldF, newF *bench.BenchFile, d bench.DiffResult) error {
	out := diffJSON{
		Old: oldF.Path, New: newF.Path,
		OldFormat: oldF.Format, NewFormat: newF.Format,
		Pairs:        d.Pairs,
		GeoMeanRatio: d.GeoMeanRatio,
		PValue:       d.PValue,
		Significant:  d.Significant,
		Regression:   d.Regression,
		Improvement:  d.Improvement,
		HostMismatch: d.HostMismatch,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
