// Command wavebench regenerates Figure 9 of the paper: throughput speedup
// of wave-front temporal blocking over the spatially-blocked baseline for
// the isotropic acoustic, isotropic elastic and anisotropic acoustic (TTI)
// propagators at space orders 4, 8 and 12.
//
// Two modes:
//
//	-mode sim   (default) replays both schedules' access traces through the
//	            cache hierarchies of the paper's Broadwell and Skylake
//	            machines (scaled to the trace grid) and predicts throughput
//	            with the cache-aware roofline model — the reproduction
//	            vehicle for the paper's machines.
//	-mode wall  measures actual wall-clock on this host (Go scalar kernels;
//	            see EXPERIMENTS.md for why absolute speedups differ).
//
// Examples:
//
//	wavebench -mode sim -tracen 64 -models acoustic,elastic,tti -orders 4,8,12
//	wavebench -mode wall -n 128 -steps 32 -csv
//	wavebench -mode wall -json -trace out.json    # JSON rows + Chrome trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"wavetile/internal/bench"
	"wavetile/internal/obs"
	"wavetile/internal/par"
	"wavetile/internal/roofline"
)

func main() {
	mode := flag.String("mode", "sim", "sim (cache-simulated Broadwell/Skylake) or wall (host wall-clock)")
	n := flag.Int("n", 128, "grid edge for wall-clock runs (paper: 512)")
	steps := flag.Int("steps", 32, "timesteps for wall-clock runs (0 = paper's 512 ms)")
	tracen := flag.Int("tracen", 160, "grid edge for simulated traces")
	tracent := flag.Int("tracent", 6, "timesteps for simulated traces")
	models := flag.String("models", "acoustic,elastic,tti", "comma-separated models")
	orders := flag.String("orders", "4,8,12", "comma-separated space orders")
	tuneSteps := flag.Int("tunesteps", 8, "timesteps per autotune measurement (wall mode)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	jsonOut := flag.Bool("json", false, "emit rows as JSON (incl. phase breakdown in wall mode)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the tile schedules to this path")
	reportPath := flag.String("report", "", "wall mode: write roofline-attributed run reports (JSON array) to this path")
	machine := flag.String("machine", "", `roofline machine for -report attribution: "" auto (measured host fingerprint when available, else the marked broadwell preset), host, broadwell or skylake`)
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/pprof, /debug/vars and /debug/obs on this address")
	progress := flag.Bool("progress", false, "log structured run progress to stderr")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	schedule := flag.String("schedule", "both", "wall-mode temporal schedule column(s): wtb, wtb-pipelined or both")
	flag.Parse()

	if *workers > 0 {
		par.Workers = *workers
	}

	var reg *obs.Registry
	if *jsonOut || *tracePath != "" || *debugAddr != "" || *progress {
		reg = obs.NewRegistry()
		obs.SetActive(reg)
	}
	if *tracePath != "" {
		reg.StartTrace()
	}
	if *progress {
		reg.EnableProgress(slog.New(slog.NewTextHandler(os.Stderr, nil)), 2*time.Second)
	}
	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "wavebench: debug server on http://%s/debug/obs (metrics at /metrics)\n", dbg.Addr)
	}

	var specs []bench.Spec
	for _, m := range strings.Split(*models, ",") {
		for _, o := range strings.Split(*orders, ",") {
			so, err := strconv.Atoi(strings.TrimSpace(o))
			if err != nil {
				fatal(err)
			}
			specs = append(specs, bench.Spec{Model: strings.TrimSpace(m), SO: so, N: *n, Steps: *steps})
		}
	}

	var table *bench.Table
	var jsonRows any
	switch *mode {
	case "sim":
		rows, err := bench.Fig9Sim(specs,
			[]roofline.Machine{roofline.Broadwell(), roofline.Skylake()},
			bench.SimOptions{TraceN: *tracen, TraceNt: *tracent})
		if err != nil {
			fatal(err)
		}
		jsonRows = rows
		table = &bench.Table{
			Title: fmt.Sprintf("Fig. 9 (simulated) — WTB vs spatially-blocked, trace %d³×%d steps", *tracen, *tracent),
			Header: []string{"kernel", "machine", "spatial GPts/s", "spatial bound",
				"WTB GPts/s", "WTB bound", "speedup", "best WTB cfg",
				"spatial DRAM MB", "WTB DRAM MB"},
		}
		for _, r := range rows {
			table.Add(r.Spec.Name(), r.Machine,
				r.Spatial.GPointsPS, r.Spatial.Bound,
				r.WTB.GPointsPS, r.WTB.Bound,
				r.Speedup, r.BestWTB.String(),
				r.SpatialT.DRAMBytes>>20, r.WTBT.DRAMBytes>>20)
		}
	case "wall":
		rows, err := bench.Fig9Wall(specs, *tuneSteps, 2, []int{8, 16})
		if err != nil {
			fatal(err)
		}
		jsonRows = rows
		if *reportPath != "" {
			reps, err := bench.WallReports(rows, bench.AttributeOptions{Machine: *machine})
			if err != nil {
				fatal(err)
			}
			if err := writeReports(*reportPath, reps); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wavebench: wrote %d run reports to %s\n", len(reps), *reportPath)
		}
		table = &bench.Table{
			Title: fmt.Sprintf("Fig. 9 (host wall-clock) — %d³ grid, %d steps", *n, *steps),
		}
		switch *schedule {
		case "wtb":
			table.Header = []string{"kernel", "spatial GPts/s", "WTB GPts/s", "speedup", "best WTB cfg"}
			for _, r := range rows {
				table.Add(r.Spec.Name(), r.SpatialGP, r.WTBGP, r.Speedup, r.Best.String())
			}
		case "wtb-pipelined", "pipelined":
			table.Header = []string{"kernel", "spatial GPts/s", "pipelined GPts/s", "speedup", "best WTB cfg"}
			for _, r := range rows {
				table.Add(r.Spec.Name(), r.SpatialGP, r.PipeGP, r.PipeSpeedup, r.Best.String())
			}
		case "both":
			table.Header = []string{"kernel", "spatial GPts/s", "WTB GPts/s", "pipelined GPts/s",
				"WTB speedup", "pipe speedup", "best WTB cfg"}
			for _, r := range rows {
				table.Add(r.Spec.Name(), r.SpatialGP, r.WTBGP, r.PipeGP,
					r.Speedup, r.PipeSpeedup, r.Best.String())
			}
		default:
			fatal(fmt.Errorf("unknown -schedule %q (want wtb, wtb-pipelined or both)", *schedule))
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	if *reportPath != "" && *mode != "wall" {
		fmt.Fprintln(os.Stderr, "wavebench: -report applies to -mode wall only; ignoring")
	}
	if *tracePath != "" {
		if err := writeTrace(reg, *tracePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wavebench: wrote %d schedule spans to %s\n", reg.Tracer().Len(), *tracePath)
	}
	switch {
	case *jsonOut:
		if err := emitJSON(os.Stdout, *mode, jsonRows, reg); err != nil {
			fatal(err)
		}
	case *csv:
		table.FprintCSV(os.Stdout)
	default:
		table.Fprint(os.Stdout)
	}
}

// benchJSON is the machine-readable output of -json: the mode's result rows
// plus, when the runs were instrumented (wall mode), the aggregate phase
// breakdown and counters across every measured run — including the
// autotuning probes — so BENCH_*.json trajectory files can be produced
// reproducibly from one invocation.
type benchJSON struct {
	Mode     string           `json:"mode"`
	Rows     any              `json:"rows"`
	PhasesNS map[string]int64 `json:"phases_ns,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

func emitJSON(w *os.File, mode string, rows any, reg *obs.Registry) error {
	out := benchJSON{Mode: mode, Rows: rows}
	if reg != nil {
		snap := reg.Snapshot()
		out.Counters = snap.Counters
		out.PhasesNS = map[string]int64{}
		for k, v := range snap.Phases {
			out.PhasesNS[k] = v.Nanoseconds()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func writeTrace(reg *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return reg.Tracer().WriteChrome(f)
}

// writeReports writes the attributed run reports as one indented JSON array.
func writeReports(path string, reps []*obs.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reps); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wavebench:", err)
	os.Exit(1)
}
