// Command wavebench regenerates Figure 9 of the paper: throughput speedup
// of wave-front temporal blocking over the spatially-blocked baseline for
// the isotropic acoustic, isotropic elastic and anisotropic acoustic (TTI)
// propagators at space orders 4, 8 and 12.
//
// Two modes:
//
//	-mode sim   (default) replays both schedules' access traces through the
//	            cache hierarchies of the paper's Broadwell and Skylake
//	            machines (scaled to the trace grid) and predicts throughput
//	            with the cache-aware roofline model — the reproduction
//	            vehicle for the paper's machines.
//	-mode wall  measures actual wall-clock on this host (Go scalar kernels;
//	            see EXPERIMENTS.md for why absolute speedups differ).
//
// Examples:
//
//	wavebench -mode sim -tracen 64 -models acoustic,elastic,tti -orders 4,8,12
//	wavebench -mode wall -n 128 -steps 32 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wavetile/internal/bench"
	"wavetile/internal/roofline"
)

func main() {
	mode := flag.String("mode", "sim", "sim (cache-simulated Broadwell/Skylake) or wall (host wall-clock)")
	n := flag.Int("n", 128, "grid edge for wall-clock runs (paper: 512)")
	steps := flag.Int("steps", 32, "timesteps for wall-clock runs (0 = paper's 512 ms)")
	tracen := flag.Int("tracen", 160, "grid edge for simulated traces")
	tracent := flag.Int("tracent", 6, "timesteps for simulated traces")
	models := flag.String("models", "acoustic,elastic,tti", "comma-separated models")
	orders := flag.String("orders", "4,8,12", "comma-separated space orders")
	tuneSteps := flag.Int("tunesteps", 8, "timesteps per autotune measurement (wall mode)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	var specs []bench.Spec
	for _, m := range strings.Split(*models, ",") {
		for _, o := range strings.Split(*orders, ",") {
			so, err := strconv.Atoi(strings.TrimSpace(o))
			if err != nil {
				fatal(err)
			}
			specs = append(specs, bench.Spec{Model: strings.TrimSpace(m), SO: so, N: *n, Steps: *steps})
		}
	}

	var table *bench.Table
	switch *mode {
	case "sim":
		rows, err := bench.Fig9Sim(specs,
			[]roofline.Machine{roofline.Broadwell(), roofline.Skylake()},
			bench.SimOptions{TraceN: *tracen, TraceNt: *tracent})
		if err != nil {
			fatal(err)
		}
		table = &bench.Table{
			Title: fmt.Sprintf("Fig. 9 (simulated) — WTB vs spatially-blocked, trace %d³×%d steps", *tracen, *tracent),
			Header: []string{"kernel", "machine", "spatial GPts/s", "spatial bound",
				"WTB GPts/s", "WTB bound", "speedup", "best WTB cfg",
				"spatial DRAM MB", "WTB DRAM MB"},
		}
		for _, r := range rows {
			table.Add(r.Spec.Name(), r.Machine,
				r.Spatial.GPointsPS, r.Spatial.Bound,
				r.WTB.GPointsPS, r.WTB.Bound,
				r.Speedup, r.BestWTB.String(),
				r.SpatialT.DRAMBytes>>20, r.WTBT.DRAMBytes>>20)
		}
	case "wall":
		rows, err := bench.Fig9Wall(specs, *tuneSteps, 2, []int{8, 16})
		if err != nil {
			fatal(err)
		}
		table = &bench.Table{
			Title:  fmt.Sprintf("Fig. 9 (host wall-clock) — %d³ grid, %d steps", *n, *steps),
			Header: []string{"kernel", "spatial GPts/s", "WTB GPts/s", "speedup", "best WTB cfg"},
		}
		for _, r := range rows {
			table.Add(r.Spec.Name(), r.SpatialGP, r.WTBGP, r.Speedup, r.Best.String())
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	if *csv {
		table.FprintCSV(os.Stdout)
	} else {
		table.Fprint(os.Stdout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wavebench:", err)
	os.Exit(1)
}
