// Command cornercases regenerates Figure 10 of the paper: the WTB speedup
// of the acoustic space-order-4 operator over an increasing number of
// off-the-grid sources, placed either sparsely (on an x–y plane slice) or
// densely (uniformly over the volume) — §IV-E.
//
// Example:
//
//	cornercases -mode sim -counts 1,16,64,256,1024,4096
//	cornercases -mode wall -n 128 -steps 16 -counts 1,64,1024
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"wavetile/internal/bench"
	"wavetile/internal/roofline"
	"wavetile/internal/tiling"
)

func main() {
	mode := flag.String("mode", "sim", "sim or wall")
	n := flag.Int("n", 128, "grid edge for wall mode")
	steps := flag.Int("steps", 16, "timesteps for wall mode")
	tracen := flag.Int("tracen", 64, "trace grid edge for sim mode")
	counts := flag.String("counts", "1,16,64,256,1024,4096", "source counts")
	csv := flag.Bool("csv", false, "emit CSV")
	flag.Parse()

	var cs []int
	for _, s := range strings.Split(*counts, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal(err)
		}
		cs = append(cs, v)
	}

	var rows []bench.CornerRow
	var err error
	switch *mode {
	case "sim":
		o := bench.SimOptions{TraceN: *tracen, TraceNt: 8}
		if *tracen < 96 {
			// Small traces cannot exceed the real LLC; use scaled-cache mode.
			o.RefN = 512
		}
		rows, err = bench.Fig10Sim(roofline.Broadwell(), cs, o)
	case "wall":
		cfg := tiling.Config{TT: 8, TileX: 32, TileY: 32, BlockX: 8, BlockY: 8}
		rows, err = bench.Fig10Wall(*n, *steps, cs, cfg, 2)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fatal(err)
	}

	table := &bench.Table{
		Title:  "Fig. 10 — acoustic O(2,4) speedup vs number of sources",
		Header: []string{"placement", "sources", "speedup", "mode"},
	}
	for _, r := range rows {
		table.Add(r.Layout, r.NSrc, r.Speedup, r.Mode)
	}
	if *csv {
		table.FprintCSV(os.Stdout)
	} else {
		table.Fprint(os.Stdout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cornercases:", err)
	os.Exit(1)
}
