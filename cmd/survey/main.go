// Command survey benchmarks the multi-shot batch engine against the
// pre-batch baseline: the same N-shot acquisition run once as a per-shot
// wavesim.New loop (model grids, damping, receiver supports and source
// decompositions rebuilt every shot) and once through wavesim.RunSurvey
// (shared model, upfront parallel precompute, pooled wavefields,
// optional shot-level concurrency).
//
// The two paths are bitwise identical per shot — asserted by the oracle
// test in the wavesim package and re-checked here on shot 0 — so the
// comparison isolates the batch engine's amortization.
//
// Examples:
//
//	survey -physics acoustic -so 4 -n 64 -shots 8
//	survey -shots 8 -k 2 -schedule wtb-pipelined
//	survey -json > BENCH_PR8.json      # benchdiff-compatible trajectory rows
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"wavetile/internal/par"
	"wavetile/wavesim"
)

type row struct {
	Model       string  `json:"model"`
	SO          int     `json:"so"`
	Shots       int     `json:"shots"`
	Schedule    string  `json:"schedule_kind"`
	Concurrency int     `json:"concurrency"`
	SeqSPS      float64 `json:"survey_seq_sps_after"`
	BatchSPS    float64 `json:"survey_batch_sps_after"`
	Speedup     float64 `json:"survey_speedup"`
	PrecomputeS float64 `json:"precompute_sec"`
	PoolHits    int64   `json:"pool_hits"`
	PoolMisses  int64   `json:"pool_misses"`
}

type doc struct {
	PR          int    `json:"pr"`
	Description string `json:"description"`
	Method      string `json:"method"`
	Host        host   `json:"host"`
	Rows        []row  `json:"rows"`
}

type host struct {
	CPUs int    `json:"cpus"`
	Go   string `json:"go"`
}

func main() {
	physics := flag.String("physics", "acoustic", "comma-separated: acoustic, tti, elastic")
	so := flag.Int("so", 4, "space order")
	n := flag.Int("n", 48, "grid edge")
	nbl := flag.Int("nbl", 6, "absorbing layer width")
	steps := flag.Int("steps", 12, "timesteps per shot")
	nshots := flag.Int("shots", 6, "shots in the survey")
	schedule := flag.String("schedule", "wtb", "spatial, wtb or wtb-pipelined")
	k := flag.Int("k", 1, "concurrent shots (0 = autotune)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit a benchdiff-compatible trajectory document")
	flag.Parse()

	if *workers > 0 {
		par.Workers = *workers
	}

	var rows []row
	for _, ph := range strings.Split(*physics, ",") {
		phys, err := parsePhysics(strings.TrimSpace(ph))
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, runOne(phys, *so, *n, *nbl, *steps, *nshots, *schedule, *k, !*jsonOut))
	}

	if *jsonOut {
		out := doc{
			PR:          8,
			Description: "Survey throughput (shots/s): per-shot wavesim.New loop (survey_seq_sps_after) vs the batch engine (survey_batch_sps_after) on the same shots, schedule and worker count. The batch engine amortizes model construction, precomputes source decompositions up front and recycles wavefields through a pool.",
			Method:      "cmd/survey, both paths in one process back-to-back; per-shot records bitwise-checked on shot 0.",
			Host:        host{CPUs: runtime.NumCPU(), Go: runtime.Version()},
			Rows:        rows,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
	}
}

func parsePhysics(s string) (wavesim.Physics, error) {
	switch s {
	case "acoustic":
		return wavesim.Acoustic, nil
	case "tti":
		return wavesim.TTI, nil
	case "elastic":
		return wavesim.Elastic, nil
	}
	return 0, fmt.Errorf("unknown physics %q", s)
}

func makeSchedule(kind string, mt int) (wavesim.Schedule, error) {
	tt := 4 * mt
	switch kind {
	case "spatial":
		return wavesim.Spatial{BlockX: 8, BlockY: 8}, nil
	case "wtb":
		return wavesim.WTB{TimeTile: 4, TileX: tt, TileY: tt, BlockX: 8, BlockY: 8}, nil
	case "wtb-pipelined":
		return wavesim.WTBPipelined{TimeTile: 4, TileX: tt, TileY: tt, BlockX: 8, BlockY: 8}, nil
	}
	return nil, fmt.Errorf("unknown schedule %q", kind)
}

func runOne(phys wavesim.Physics, so, n, nbl, steps, nshots int, schedKind string, k int, verbose bool) row {
	extent := float64(n-1) * 10
	base := wavesim.Options{
		Physics:    phys,
		SpaceOrder: so,
		Shape:      [3]int{n, n, n},
		Spacing:    [3]float64{10, 10, 10},
		NBL:        nbl,
		Steps:      steps,
		Vp:         wavesim.Gradient(1500, 3200, extent),
		SourceF0:   15,
		Receivers:  wavesim.LineCoords(8, wavesim.Coord{0.1 * extent, 0.5 * extent, 0.2 * extent}, wavesim.Coord{0.9 * extent, 0.5 * extent, 0.2 * extent}),
	}
	shots := make([]wavesim.Shot, nshots)
	for s := range shots {
		off := 0.4 * extent * float64(s) / float64(max(nshots-1, 1))
		shots[s] = wavesim.Shot{Sources: []wavesim.Coord{
			{0.2*extent + off + 3.3, 0.4*extent + 1.7, 0.3*extent + 4.9},
			{0.2*extent + off + 24.1, 0.6*extent - 2.3, 0.3*extent + 4.9},
		}}
	}

	sv, err := wavesim.NewSurvey(base, shots, wavesim.SurveyOptions{Concurrency: k})
	if err != nil {
		log.Fatal(err)
	}
	sched, err := makeSchedule(schedKind, sv.MinTile())
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: the pre-batch loop — a fresh Simulation per shot, nothing
	// shared, nothing pooled.
	seqStart := time.Now()
	var seqFirst [][]float32
	for i, sh := range shots {
		o := base
		o.Sources = sh.Sources
		sim, err := wavesim.New(o)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(sched)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			seqFirst = res.Receivers
		}
	}
	seqElapsed := time.Since(seqStart)
	seqSPS := float64(nshots) / seqElapsed.Seconds()

	// Batch engine: warm run after a discarded first run so the pool is
	// primed and the measurement is the steady state a long survey sees.
	if _, err := sv.Run(sched); err != nil {
		log.Fatal(err)
	}
	res, err := sv.Run(sched)
	if err != nil {
		log.Fatal(err)
	}

	// Bitwise cross-check on shot 0 (the oracle test covers the rest).
	got := res.Shots[0].Receivers
	for t := range seqFirst {
		for r := range seqFirst[t] {
			if seqFirst[t][r] != got[t][r] {
				log.Fatalf("%s shot 0 receiver %d t=%d: sequential %g vs batched %g",
					phys, r, t, seqFirst[t][r], got[t][r])
			}
		}
	}

	rw := row{
		Model:       phys.String(),
		SO:          so,
		Shots:       nshots,
		Schedule:    schedKind,
		Concurrency: res.Concurrency,
		SeqSPS:      seqSPS,
		BatchSPS:    res.ShotsPerSec,
		Speedup:     res.ShotsPerSec / seqSPS,
		PrecomputeS: res.Precompute.Seconds(),
		PoolHits:    res.PoolHits,
		PoolMisses:  res.PoolMisses,
	}
	if verbose {
		fmt.Printf("%s/so%d %s ×%d shots (K=%d): per-shot loop %.2f shots/s, batch %.2f shots/s (%.2fx), pool %d hit / %d miss\n",
			rw.Model, rw.SO, rw.Schedule, rw.Shots, rw.Concurrency,
			rw.SeqSPS, rw.BatchSPS, rw.Speedup, rw.PoolHits, rw.PoolMisses)
	}
	return rw
}
