// Command waved is the simulation service daemon: a stdlib-net/http
// front end over wavesim surveys with a bounded priority job queue,
// streaming NDJSON results, and checkpoint/resume of interrupted jobs.
//
//	waved -addr :8080 -runners 2 -queue-cap 32 -ckpt-dir /var/lib/waved
//
// Endpoints (see internal/serve):
//
//	POST   /v1/jobs               submit a job spec
//	GET    /v1/jobs/{id}          status
//	GET    /v1/jobs/{id}/results  NDJSON result stream
//	DELETE /v1/jobs/{id}          cancel
//	/metrics, /debug/pprof/...    the obs telemetry routes
//
// SIGTERM/SIGINT drains gracefully: admission stops (503), queued and
// running jobs finish (bounded by -drain-timeout, after which running
// jobs are checkpointed-and-cancelled), then the process exits. Jobs
// interrupted by a hard kill resume from their last checkpoint on the
// next start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wavetile/internal/obs"
	"wavetile/internal/serve"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	runners := flag.Int("runners", 1, "concurrent job runners")
	queueCap := flag.Int("queue-cap", 16, "max queued jobs before 429")
	ckptDir := flag.String("ckpt-dir", "", "directory for job checkpoints (empty = no persistence)")
	ckptEvery := flag.Int("ckpt-every", 2, "checkpoint cadence in time tiles (with -ckpt-dir)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain bound on SIGTERM")
	flag.Parse()

	if err := run(*addr, *runners, *queueCap, *ckptDir, *ckptEvery, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "waved:", err)
		os.Exit(1)
	}
}

func run(addr string, runners, queueCap int, ckptDir string, ckptEvery int, drainTimeout time.Duration) error {
	obs.SetActive(obs.NewRegistry())

	if ckptDir != "" {
		if err := os.MkdirAll(ckptDir, 0o755); err != nil {
			return err
		}
	}
	srv := serve.New(serve.Config{
		QueueCap:             queueCap,
		Runners:              runners,
		CheckpointDir:        ckptDir,
		CheckpointEveryTiles: ckptEvery,
	})
	if n, err := srv.Resume(); err != nil {
		return fmt.Errorf("resume: %w", err)
	} else if n > 0 {
		fmt.Printf("waved: resumed %d interrupted job(s) from %s\n", n, ckptDir)
	}

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	fmt.Printf("waved: serving on %s (runners=%d queue=%d)\n", addr, runners, queueCap)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Println("waved: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Println("waved: drain timed out; interrupted jobs will resume from their checkpoints")
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	return hs.Shutdown(shutCtx)
}
