// Command hostcal measures this host's roofline ceilings — STREAM-style
// sustained bandwidth at every cache boundary, peak sustained FLOP/s, cache
// geometry — and persists them as a schema-versioned fingerprint that the
// predictive autotuner, roofline attribution and `roofline -machine host`
// consume instead of the paper's preset machines.
//
// Examples:
//
//	hostcal                        # full characterization → ~/.cache/wavesim/hostcal.json
//	hostcal -quick                 # seconds-fast smoke variant (CI)
//	hostcal -check                 # validate the stored fingerprint for this host
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"wavetile/internal/hostcal"
	"wavetile/internal/obs"
)

func main() {
	out := flag.String("o", "", "output path (default $WAVETILE_HOSTCAL or ~/.cache/wavesim/hostcal.json)")
	quick := flag.Bool("quick", false, "fast, lower-accuracy measurement (smaller buffers, one repeat)")
	check := flag.Bool("check", false, "validate the stored fingerprint against this host and exit")
	print := flag.Bool("print", false, "print the fingerprint JSON to stdout as well")
	flag.Parse()

	path := *out
	if path == "" {
		path = hostcal.DefaultPath()
	}

	if *check {
		f, err := hostcal.LoadChecked(path)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("hostcal: %s OK — %s, %d cache levels, DRAM %.1f GB/s, peak %.1f GFLOP/s",
			path, f.MachineName(), len(f.Levels), f.BWGBs[len(f.BWGBs)-1], f.PeakGFlops)
		if f.Calibration != nil {
			fmt.Printf(", calibrated (BWEff %.3f, %.2f ns/pt)",
				f.Calibration.BWEff, f.Calibration.OverheadNSPerPoint)
		}
		fmt.Println()
		return
	}

	f, err := hostcal.Measure(hostcal.Options{Quick: *quick})
	if err != nil {
		fatal(err)
	}
	if err := f.Save(path); err != nil {
		fatal(err)
	}
	summarize(os.Stderr, f, path)
	if *print {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(f); err != nil {
			fatal(err)
		}
	}
}

func summarize(w *os.File, f *hostcal.Fingerprint, path string) {
	mode := "full"
	if f.Quick {
		mode = "quick"
	}
	fmt.Fprintf(w, "hostcal: measured %s (%s) → %s\n", f.MachineName(), mode, path)
	for i, l := range f.Levels {
		fmt.Fprintf(w, "  %-4s %8s  assoc %-3d %-7s fill %8.1f GB/s  (%s)\n",
			l.Name, size(l.SizeBytes), l.Assoc, shared(l.Shared), f.BWGBs[i], l.Source)
	}
	fmt.Fprintf(w, "  DRAM stream: copy %.1f / scale %.1f / triad %.1f GB/s\n",
		f.Stream.CopyGBs, f.Stream.ScaleGBs, f.Stream.TriadGBs)
	fmt.Fprintf(w, "  flops: %.1f GFLOP/s single-core, %.1f GFLOP/s × %d workers\n",
		f.CoreGFlops, f.PeakGFlops, workers(f.Host))
}

func workers(h obs.HostInfo) int {
	if h.Workers > 0 {
		return h.Workers
	}
	return h.GOMAXPROCS
}

func size(b int) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fG", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fM", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%dK", b>>10)
	}
}

func shared(s bool) string {
	if s {
		return "shared"
	}
	return "private"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hostcal:", err)
	os.Exit(1)
}
