package dist

import (
	"sync"
	"sync/atomic"
	"time"

	"wavetile/internal/grid"
	"wavetile/internal/obs"
	"wavetile/internal/tiling"
)

// Run advances the whole cluster through the geometry's time axis.
//
// Each rank is one persistent goroutine for the entire run (not one per
// time tile), and there is no global barrier: neighbouring ranks
// synchronize pairwise through per-edge staging buffers with a
// one-token ready/free handshake, so a rank may run one time tile ahead
// of a neighbour that is still finishing. In DeepHalo mode the in-rank
// schedule is the pipelined task graph (tiling.RunWTBPipelinedHooked),
// and each outgoing edge is packed the moment the last tile writing its
// boundary planes completes — overlapping the halo exchange with the
// interior compute that is still draining, instead of the old
// wg.Wait()-then-exchange barrier.
//
// Every owned point still computes the same expression from the same
// inputs as a single-domain run (packing is read-only and the task graph
// orders every write that precedes it), so results remain bitwise
// identical — asserted by the package tests against single-domain runs.
func (c *Cluster) Run() error {
	nt := c.geom.Nt
	if len(c.ranks) == 1 {
		r := c.ranks[0]
		for t0 := 0; t0 < nt; t0 += c.depth {
			if err := r.advance(c, t0, tiling.PipelineHooks{}); err != nil {
				return err
			}
		}
		return nil
	}

	edges := c.buildEdges()
	abort := make(chan struct{})
	var failOnce sync.Once
	var firstErr error
	fail := func(err error) {
		failOnce.Do(func() {
			firstErr = err
			close(abort)
		})
	}
	var wg sync.WaitGroup
	for i := range c.ranks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := c.runRank(i, edges[i], abort); err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}

// runRank is one rank's persistent loop: compute a time tile (packing
// boundary planes early via the task-graph hook), flush any packs the
// hook could not complete, then consume the neighbours' planes.
func (c *Cluster) runRank(i int, es rankEdges, abort <-chan struct{}) error {
	r := c.ranks[i]
	nt := c.geom.Nt
	for t0 := 0; t0 < nt; t0 += c.depth {
		tNext := t0 + c.depth
		hook := tiling.PipelineHooks{}
		if c.depth > 1 && len(es.packs) > 0 {
			for _, p := range es.packs {
				p.reset()
			}
			hook.OnTaskDone = func(bx, by, k int) {
				for _, p := range es.packs {
					p.onTask(c, bx, k, tNext)
				}
			}
		}
		if err := r.advance(c, t0, hook); err != nil {
			return err
		}
		// Flush: edges whose boundary set never drained through the hook
		// (PerStep mode, hook found the staging busy, or an all-empty
		// boundary set) are packed here, after the tile's last write.
		for _, p := range es.packs {
			if p.packed {
				continue
			}
			select {
			case <-p.e.free:
			case <-abort:
				return nil
			}
			c.pack(p.e, tNext)
			p.e.ready <- struct{}{}
		}
		for _, e := range es.in {
			select {
			case <-e.ready:
			case <-abort:
				return nil
			}
			c.unpack(e, tNext)
			e.free <- struct{}{}
		}
	}
	return nil
}

// advance computes depth timesteps on one rank's slab grid.
func (r *rank) advance(c *Cluster, t0 int, h tiling.PipelineHooks) error {
	if c.depth == 1 {
		// PerStep: one plain spatial step over the whole slab (halo
		// columns included — they are corrected by the exchange).
		r.prop.SetBlocks(c.cfg.BlockX, c.cfg.BlockY)
		r.prop.Step(t0, grid.FullRegion(r.nx, c.geom.Ny), true)
		return nil
	}
	// DeepHalo: run the pipelined wave-front schedule inside the slab for
	// one time tile of `depth` steps. Halo columns decay into staleness at
	// `skew` cells per step; the halo is exactly deep enough that the owned
	// region never reads a stale value.
	return tiling.RunWTBPipelinedHooked(r.prop, c.wtbConfig(r), t0, t0+c.depth, h)
}

// wtbConfig is the in-rank WTB configuration. Config.TileX splits the
// slab into tile columns so boundary tiles can finish (and pack) ahead of
// the interior; unset, the whole slab is one column and no overlap is
// possible — the pre-task-graph behaviour.
func (c *Cluster) wtbConfig(r *rank) tiling.Config {
	cfg := tiling.Config{
		TT:     c.depth,
		TileX:  c.cfg.TileX,
		TileY:  c.cfg.TileY,
		BlockX: c.cfg.BlockX,
		BlockY: c.cfg.BlockY,
	}
	if cfg.TileX < 2*c.skew {
		cfg.TileX = max(r.nx, 2*c.skew)
	}
	if cfg.TileY < 2*c.skew {
		cfg.TileY = c.geom.Ny
	}
	return cfg
}

// ---------------------------------------------------------------------------
// Edges

// edge is one direction of a neighbour exchange: src's owned boundary
// planes staged for dst. A single token circulates through ready/free, so
// sends never block: free means dst has consumed the staging and src may
// repack it; ready means src has packed and dst may unpack. Ranks
// therefore drift at most one time tile apart, synchronizing only with
// neighbours instead of a global barrier.
type edge struct {
	src, dst *rank
	gxs      []int       // global x planes valid on both slabs
	planes   [][]float32 // staged copies, one per (buffer, plane)
	ready    chan struct{}
	free     chan struct{}
}

// rankEdges groups one rank's incoming edges and outgoing pack plans.
type rankEdges struct {
	in    []*edge
	packs []*packPlan
}

// packPlan schedules one outgoing edge's pack. match marks the (bx, k)
// space-time tiles whose final-level writes touch the edge planes; n
// counts down the non-empty matching tasks, and the task that takes it to
// zero packs immediately — every write the pack reads is then complete,
// because any earlier write to those planes is ordered before some
// matching task by the graph's own/left chains.
type packPlan struct {
	e      *edge
	tt     int
	match  []bool // [bx*tt + k]
	count  int32
	n      atomic.Int32
	packed bool // written by the zero-hitting task, read after the graph drains
}

func (p *packPlan) reset() {
	p.n.Store(p.count)
	p.packed = false
}

// onTask is the per-task hook body: the task completing the boundary set
// packs the edge if the staging is free, and signals it ready. If the
// neighbour still holds the staging (it is a full tile behind), the pack
// falls to the post-advance flush rather than blocking a compute worker.
func (p *packPlan) onTask(c *Cluster, bx, k, tNext int) {
	if !p.match[bx*p.tt+k] || p.n.Add(-1) != 0 {
		return
	}
	select {
	case <-p.e.free:
		c.pack(p.e, tNext)
		p.e.ready <- struct{}{}
		p.packed = true
	default:
	}
}

// buildEdges constructs the staging edges and pack plans for every rank.
func (c *Cluster) buildEdges() []rankEdges {
	es := make([]rankEdges, len(c.ranks))
	for i := 0; i < len(c.ranks)-1; i++ {
		l, rr := c.ranks[i], c.ranks[i+1]
		// Left rank's owned right edge → right rank's left halo.
		right := c.newEdge(l, rr, l.x1-l.halo, l.x1)
		// Right rank's owned left edge → left rank's right halo.
		left := c.newEdge(rr, l, rr.x0, rr.x0+rr.halo)
		es[i].packs = append(es[i].packs, c.newPackPlan(right))
		es[i].in = append(es[i].in, left)
		es[i+1].packs = append(es[i+1].packs, c.newPackPlan(left))
		es[i+1].in = append(es[i+1].in, right)
	}
	return es
}

// newEdge stages the global x planes [g0, g1) from src's grids into dst.
// Planes outside either slab are dropped here, preserving the bounds
// behaviour of the old in-place plane copy.
func (c *Cluster) newEdge(src, dst *rank, g0, g1 int) *edge {
	e := &edge{src: src, dst: dst,
		ready: make(chan struct{}, 1), free: make(chan struct{}, 1)}
	for gx := g0; gx < g1; gx++ {
		if sx := gx - src.lox; sx < 0 || sx >= src.nx {
			continue
		}
		if dx := gx - dst.lox; dx < 0 || dx >= dst.nx {
			continue
		}
		e.gxs = append(e.gxs, gx)
	}
	sx := src.prop.U[0].SX
	for b := 0; b < c.bufCount(); b++ {
		for range e.gxs {
			e.planes = append(e.planes, make([]float32, sx))
		}
	}
	e.free <- struct{}{} // staging starts consumable
	return e
}

// newPackPlan computes which space-time tiles of a time tile write the
// edge's planes at the exchanged levels. The tile layout is identical for
// every (full) time tile, so the plan is built once per Run.
func (c *Cluster) newPackPlan(e *edge) *packPlan {
	p := &packPlan{e: e, tt: c.depth}
	if c.depth == 1 || len(e.gxs) == 0 {
		return p // PerStep (or degenerate edge): flush-packed after advance
	}
	r := e.src
	tg := tiling.NewTileGrid(r.prop, c.wtbConfig(r), c.depth)
	e0 := e.gxs[0] - r.lox
	e1 := e.gxs[len(e.gxs)-1] + 1 - r.lox
	p.match = make([]bool, tg.NBX*c.depth)
	// The exchanged buffers hold the levels written at k = tt−1, tt−2, …
	// (one level per exchanged buffer).
	for b := 0; b < c.bufCount(); b++ {
		k := c.depth - 1 - b
		for bx := 0; bx < tg.NBX; bx++ {
			raw := tg.Raw(bx, 0, k)
			lo, hi := max(raw.X0, 0), min(raw.X1, r.nx)
			if lo >= e1 || hi <= e0 {
				continue
			}
			for by := 0; by < tg.NBY; by++ {
				if !tg.Empty(bx, by, k) {
					p.match[bx*c.depth+k] = true
					p.count++
				}
			}
		}
	}
	return p
}

// bufCount is how many wavefield buffers an exchange refreshes: both live
// buffers in DeepHalo mode (their halos are both stale after a deep tile),
// one in PerStep mode.
func (c *Cluster) bufCount() int {
	if c.depth > 1 {
		return 2
	}
	return 1
}

// buffers lists the buffer indices exchanged after reaching time tNext,
// most recent first: buffer tNext&1 holds tNext, buffer (tNext+1)&1 holds
// tNext−1. Pack and unpack iterate this identically, which is what keys
// the staging layout.
func (c *Cluster) buffers(tNext int) [2]int {
	return [2]int{tNext & 1, (tNext + 1) & 1}
}

// pack copies src's owned boundary planes into the edge staging. One pack
// runs per outgoing edge per exchange, so per-call obs lookups are cold.
func (c *Cluster) pack(e *edge, tNext int) {
	r := obs.Active()
	sp := r.Spans()
	var start time.Time
	if sp.On() {
		start = time.Now()
	}
	bufs := c.buffers(tNext)
	i := 0
	var bytes int
	for b := 0; b < c.bufCount(); b++ {
		u := e.src.prop.U[bufs[b]]
		for _, gx := range e.gxs {
			off := (gx - e.src.lox + u.H) * u.SX
			copy(e.planes[i], u.Data[off:off+u.SX])
			bytes += u.SX * 4
			i++
		}
	}
	if r != nil {
		r.Counter("dist_halo_packs").Add(1)
		r.Counter("dist_halo_bytes").Add(int64(bytes))
		if sp.On() {
			sp.Complete("halo pack", "dist", 0, start, time.Since(start),
				map[string]any{"t_next": tNext, "planes": i, "bytes": bytes})
		}
	}
}

// unpack copies staged planes into dst's halo.
func (c *Cluster) unpack(e *edge, tNext int) {
	r := obs.Active()
	sp := r.Spans()
	var start time.Time
	if sp.On() {
		start = time.Now()
	}
	bufs := c.buffers(tNext)
	i := 0
	for b := 0; b < c.bufCount(); b++ {
		u := e.dst.prop.U[bufs[b]]
		for _, gx := range e.gxs {
			off := (gx - e.dst.lox + u.H) * u.SX
			copy(u.Data[off:off+u.SX], e.planes[i])
			i++
		}
	}
	if r != nil {
		r.Counter("dist_halo_unpacks").Add(1)
		if sp.On() {
			sp.Complete("halo unpack", "dist", 0, start, time.Since(start),
				map[string]any{"t_next": tNext, "planes": i})
		}
	}
}

// GatherWavefield reconstructs the global wavefield at the final time index
// from the ranks' owned regions.
func (c *Cluster) GatherWavefield() *grid.Grid {
	out := grid.New(c.geom.Nx, c.geom.Ny, c.geom.Nz, 0)
	for _, r := range c.ranks {
		u := r.prop.Final()
		for gx := r.x0; gx < r.x1; gx++ {
			lx := gx - r.lox
			for y := 0; y < c.geom.Ny; y++ {
				copy(out.Row(gx, y), u.Row(lx, y))
			}
		}
	}
	return out
}

// Ranks reports the number of active ranks.
func (c *Cluster) Ranks() int { return len(c.ranks) }

// Exchanges reports how many halo exchanges a full run performs — the
// communication count the DeepHalo mode divides by depth.
func (c *Cluster) Exchanges() int { return c.geom.Nt / c.depth }
