package dist

import (
	"sync"

	"wavetile/internal/grid"
	"wavetile/internal/tiling"
)

// Run advances the whole cluster through the geometry's time axis:
// rank-parallel compute phases separated by halo exchanges.
func (c *Cluster) Run() error {
	nt := c.geom.Nt
	for t0 := 0; t0 < nt; t0 += c.depth {
		var wg sync.WaitGroup
		errs := make([]error, len(c.ranks))
		for i, r := range c.ranks {
			wg.Add(1)
			go func(i int, r *rank) {
				defer wg.Done()
				errs[i] = r.advance(c, t0)
			}(i, r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		c.exchange(t0 + c.depth)
	}
	return nil
}

// advance computes depth timesteps on one rank's slab grid.
func (r *rank) advance(c *Cluster, t0 int) error {
	if c.depth == 1 {
		// PerStep: one plain spatial step over the whole slab (halo
		// columns included — they are corrected by the exchange).
		r.prop.SetBlocks(c.cfg.BlockX, c.cfg.BlockY)
		r.prop.Step(t0, grid.FullRegion(r.nx, c.geom.Ny), true)
		return nil
	}
	// DeepHalo: run wave-front temporal blocking inside the slab for one
	// time tile of `depth` steps. Halo columns decay into staleness at
	// `skew` cells per step; the halo is exactly deep enough that the owned
	// region never reads a stale value.
	cfg := tiling.Config{
		TT:     c.depth,
		TileX:  max(r.nx, 2*c.skew),
		TileY:  c.cfg.TileY,
		BlockX: c.cfg.BlockX,
		BlockY: c.cfg.BlockY,
	}
	if cfg.TileY < 2*c.skew {
		cfg.TileY = c.geom.Ny
	}
	return tiling.RunWTBRange(r.prop, cfg, t0, t0+c.depth)
}

// exchange copies owned boundary planes into the neighbours' halos. tNext
// is the time index now held in buffer tNext&1; in DeepHalo mode both live
// buffers' halos are stale and both are refreshed.
func (c *Cluster) exchange(tNext int) {
	buffers := []int{tNext & 1}
	if c.depth > 1 {
		buffers = append(buffers, (tNext+1)&1)
	}
	for i := 0; i < len(c.ranks)-1; i++ {
		l, rr := c.ranks[i], c.ranks[i+1]
		for _, b := range buffers {
			// Left rank's owned right edge → right rank's left halo.
			copyPlanes(l.prop.U[b], rr.prop.U[b], l.x1-l.halo, l.x1, l.lox, rr.lox)
			// Right rank's owned left edge → left rank's right halo.
			copyPlanes(rr.prop.U[b], l.prop.U[b], rr.x0, rr.x0+rr.halo, rr.lox, l.lox)
		}
	}
}

// copyPlanes copies the global x-planes [g0, g1) from src to dst, where the
// grids' local origins sit at global x = srcLox / dstLox. Whole padded
// planes are copied (identical y–z layout by construction).
func copyPlanes(src, dst *grid.Grid, g0, g1, srcLox, dstLox int) {
	for gx := g0; gx < g1; gx++ {
		sx := gx - srcLox
		dx := gx - dstLox
		if sx < 0 || sx >= src.Nx || dx < 0 || dx >= dst.Nx {
			continue
		}
		sOff := (sx + src.H) * src.SX
		dOff := (dx + dst.H) * dst.SX
		copy(dst.Data[dOff:dOff+dst.SX], src.Data[sOff:sOff+src.SX])
	}
}

// GatherWavefield reconstructs the global wavefield at the final time index
// from the ranks' owned regions.
func (c *Cluster) GatherWavefield() *grid.Grid {
	out := grid.New(c.geom.Nx, c.geom.Ny, c.geom.Nz, 0)
	for _, r := range c.ranks {
		u := r.prop.Final()
		for gx := r.x0; gx < r.x1; gx++ {
			lx := gx - r.lox
			for y := 0; y < c.geom.Ny; y++ {
				copy(out.Row(gx, y), u.Row(lx, y))
			}
		}
	}
	return out
}

// Ranks reports the number of active ranks.
func (c *Cluster) Ranks() int { return len(c.ranks) }

// Exchanges reports how many halo exchanges a full run performs — the
// communication count the DeepHalo mode divides by depth.
func (c *Cluster) Exchanges() int { return c.geom.Nt / c.depth }
