// Package dist adds the distributed-memory dimension the paper's related
// work points at ("distributed-memory parallelism is often employed", and
// its ref. [64], Wittmann et al., "Multicore-aware parallel temporal
// blocking of stencil codes for shared and distributed memory"): the global
// domain is decomposed into slabs along x, one rank per slab, with halo
// exchange between neighbours. Ranks are goroutines and exchanges are
// buffer copies — the communication structure (who sends what, when) is
// exactly MPI's, so the package doubles as a correctness model for a real
// distributed port.
//
// Two modes:
//
//   - PerStep: classic stepping — every rank advances one timestep on its
//     slab, then exchanges one stencil-radius of halo. One exchange per
//     step.
//   - DeepHalo (communication-avoiding): every rank owns halos D·skew wide,
//     advances D timesteps back-to-back — running wave-front temporal
//     blocking *inside* the slab — and only then exchanges. Halo points
//     turn stale at a rate of `skew` cells per local step, so after D steps
//     the contamination has eaten exactly the halo and the owned region is
//     still bit-exact. One exchange per D steps, D× less communication —
//     the distributed analogue of the paper's cache argument.
//
// Because every owned point computes the same expression from the same
// inputs as in a single-domain run, distributed results are bitwise
// identical to single-domain results — asserted by the tests.
package dist

import (
	"fmt"

	"wavetile/internal/model"
	"wavetile/internal/sparse"
	"wavetile/internal/wave"
)

// Mode selects the exchange strategy.
type Mode int

// Exchange strategies.
const (
	PerStep  Mode = iota // exchange radius-wide halos every timestep
	DeepHalo             // exchange D·skew-wide halos every D timesteps
)

// Config describes the decomposition.
type Config struct {
	Ranks int
	Mode  Mode
	// Depth D of the deep-halo mode (timesteps per exchange); the in-rank
	// schedule runs WTB with this time-tile depth. Ignored for PerStep.
	Depth int
	// WTB tile/block shape used inside each rank in DeepHalo mode. TileX
	// splits the slab into tile columns for the pipelined in-rank schedule
	// — with ≥ 2 columns the boundary column can finish and pack its halo
	// planes while interior columns still compute (overlap); TileX ≤ 0 (or
	// below the dependency margin) keeps the whole slab as one column.
	TileX, TileY, BlockX, BlockY int
}

// rank is one slab of the global acoustic problem.
type rank struct {
	prop   *wave.Acoustic
	x0, x1 int // owned global x range
	halo   int // halo width on each side (in grid points)
	lox    int // global x of the slab grid's local x=0
	nx     int // slab grid extent (owned + halos, clamped at domain edges)
}

// Cluster runs an acoustic problem decomposed over ranks.
type Cluster struct {
	cfg   Config
	geom  model.Geometry
	so    int
	ranks []*rank
	skew  int
	depth int
}

// NewAcousticCluster decomposes an acoustic problem along x. The arguments
// mirror wave.AcousticOpts, with the model given as a field function so
// each rank can sample its slab (including its halos) at global positions.
func NewAcousticCluster(cfg Config, geom model.Geometry, so int, vp model.FieldFunc,
	src *sparse.Points, srcWav [][]float32) (*Cluster, error) {
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("dist: need ≥ 1 rank, got %d", cfg.Ranks)
	}
	skew := so / 2
	depth := 1
	if cfg.Mode == DeepHalo {
		if cfg.Depth < 1 {
			return nil, fmt.Errorf("dist: DeepHalo needs Depth ≥ 1")
		}
		depth = cfg.Depth
	}
	halo := depth * skew
	slab := (geom.Nx + cfg.Ranks - 1) / cfg.Ranks
	if slab < 2*skew {
		return nil, fmt.Errorf("dist: %d ranks make slabs of %d < dependency margin %d",
			cfg.Ranks, slab, 2*skew)
	}
	if halo > slab {
		// The exchange sources halo planes from the neighbour's *owned*
		// region; a halo deeper than a slab would read the neighbour's own
		// stale halo instead and silently corrupt results.
		return nil, fmt.Errorf("dist: deep halo %d exceeds slab width %d; lower Depth or Ranks",
			halo, slab)
	}
	if geom.Nt%depth != 0 {
		return nil, fmt.Errorf("dist: nt=%d not a multiple of depth %d", geom.Nt, depth)
	}

	c := &Cluster{cfg: cfg, geom: geom, so: so, skew: skew, depth: depth}
	// The global damping/slowness fields are identical for every rank;
	// build them once and window per slab.
	globalParams := model.NewAcoustic(geom, skew, vp)
	for r := 0; r < cfg.Ranks; r++ {
		x0 := r * slab
		x1 := min(x0+slab, geom.Nx)
		if x0 >= x1 {
			break
		}
		lox := max(0, x0-halo)
		hix := min(geom.Nx, x1+halo)

		g := geom
		g.Nx = hix - lox
		// Sample the model at global coordinates: shift the field function.
		shift := float64(lox) * geom.Hx
		rvp := func(x, y, z float64) float64 { return vp(x+shift, y, z) }
		params := model.NewAcoustic(g, skew, rvp)
		// The damping mask must be the *global* one: interior slabs have no
		// absorbing layer at their artificial cuts; re-window the global
		// fields.
		params.Damp.FillFunc(func(x, y, z int) float32 {
			return globalParams.Damp.At(x+lox, y, z)
		})
		params.M.FillFunc(func(x, y, z int) float32 {
			return globalParams.M.At(x+lox, y, z)
		})

		// Sources whose support touches this slab grid, re-based locally.
		var rsrc *sparse.Points
		var rwav [][]float32
		if src != nil && src.N() > 0 {
			rsrc = &sparse.Points{}
			for i, co := range src.Coords {
				gx := co[0] / geom.Hx
				if gx >= float64(lox)-1 && gx <= float64(hix) {
					local := co
					local[0] -= shift
					// Clamp supports fully inside the slab grid hull.
					if local[0] >= 0 && local[0] <= float64(g.Nx-1)*geom.Hx {
						rsrc.Coords = append(rsrc.Coords, local)
						rwav = append(rwav, srcWav[i])
					}
				}
			}
		}
		prop, err := wave.NewAcoustic(wave.AcousticOpts{
			Params: params, SO: so, Src: rsrc, SrcWav: rwav,
		})
		if err != nil {
			return nil, fmt.Errorf("dist: rank %d: %w", r, err)
		}
		c.ranks = append(c.ranks, &rank{
			prop: prop, x0: x0, x1: x1, halo: halo, lox: lox, nx: g.Nx,
		})
	}
	return c, nil
}
