package dist

import (
	"fmt"
	"testing"

	"wavetile/internal/par"
)

// TestDeepHaloOverlapMatchesSingleDomain exercises the overlapped exchange
// path: TileX splits each slab into ≥ 2 tile columns, so boundary columns
// finish first and their halo planes are packed from the task-graph hook
// while interior columns still compute. The result must stay bitwise
// identical to the single-domain run — packing early reads exactly the
// values the old post-barrier exchange read, because the task graph orders
// every write to the packed planes before the pack.
func TestDeepHaloOverlapMatchesSingleDomain(t *testing.T) {
	oldW := par.Workers
	par.Workers = 4 // let in-rank tiles actually run concurrently
	defer func() { par.Workers = oldW }()

	for _, c := range []struct{ ranks, depth, tileX int }{
		{2, 2, 8}, {2, 4, 8}, {3, 4, 8}, {2, 7, 12}, {2, 4, 4},
	} {
		c := c
		t.Run(fmt.Sprintf("ranks=%d_depth=%d_tileX=%d", c.ranks, c.depth, c.tileX), func(t *testing.T) {
			nt := (28 / c.depth) * c.depth
			g, vp, src, wav := setup(t, 40, 4, nt)
			ref := reference(t, g, 4, vp, src, wav)

			cl, err := NewAcousticCluster(Config{
				Ranks: c.ranks, Mode: DeepHalo, Depth: c.depth,
				TileX: c.tileX, TileY: 16, BlockX: 8, BlockY: 8,
			}, g, 4, vp, src, wav)
			if err != nil {
				t.Fatal(err)
			}
			if err := cl.Run(); err != nil {
				t.Fatal(err)
			}
			got := cl.GatherWavefield()
			want := ref.Final()
			for x := 0; x < g.Nx; x++ {
				for y := 0; y < g.Ny; y++ {
					a, b := want.Row(x, y), got.Row(x, y)
					for z := range a {
						if a[z] != b[z] {
							t.Fatalf("(%d,%d,%d): single %g dist %g", x, y, z, a[z], b[z])
						}
					}
				}
			}
			if want.MaxAbs() == 0 {
				t.Fatal("vacuous comparison")
			}
		})
	}
}

// TestPerStepConcurrentRanks runs the persistent-goroutine PerStep path
// with a raised worker count so rank goroutines genuinely interleave; the
// neighbour handshake must keep results bitwise identical.
func TestPerStepConcurrentRanks(t *testing.T) {
	oldW := par.Workers
	par.Workers = 4
	defer func() { par.Workers = oldW }()

	g, vp, src, wav := setup(t, 36, 4, 14)
	ref := reference(t, g, 4, vp, src, wav)
	c, err := NewAcousticCluster(Config{Ranks: 4, Mode: PerStep, BlockX: 8, BlockY: 8},
		g, 4, vp, src, wav)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	got := c.GatherWavefield()
	want := ref.Final()
	for x := 0; x < g.Nx; x++ {
		for y := 0; y < g.Ny; y++ {
			a, b := want.Row(x, y), got.Row(x, y)
			for z := range a {
				if a[z] != b[z] {
					t.Fatalf("(%d,%d,%d): single %g dist %g", x, y, z, a[z], b[z])
				}
			}
		}
	}
}

// TestOverlapPackPlanCoversBoundary sanity-checks the pack plans: every
// outgoing edge of a DeepHalo cluster with split columns must have a
// non-empty boundary task set, and the hook countdown must hand the pack
// to either the hook or the flush exactly once per tile (covered
// indirectly by the bitwise tests; here we assert the plan is non-trivial
// so the overlap path is actually exercised).
func TestOverlapPackPlanCoversBoundary(t *testing.T) {
	g, vp, src, wav := setup(t, 40, 4, 8)
	cl, err := NewAcousticCluster(Config{
		Ranks: 2, Mode: DeepHalo, Depth: 4,
		TileX: 8, TileY: 16, BlockX: 8, BlockY: 8,
	}, g, 4, vp, src, wav)
	if err != nil {
		t.Fatal(err)
	}
	edges := cl.buildEdges()
	for i, es := range edges {
		for _, p := range es.packs {
			if p.count == 0 {
				t.Errorf("rank %d: pack plan has empty boundary set", i)
			}
			if len(p.e.gxs) != cl.ranks[i].halo {
				t.Errorf("rank %d: edge stages %d planes, want halo %d", i, len(p.e.gxs), cl.ranks[i].halo)
			}
		}
	}
}
