package dist

import (
	"fmt"
	"testing"

	"wavetile/internal/model"
	"wavetile/internal/sparse"
	"wavetile/internal/wavelet"
)

// benchSetup mirrors the correctness tests' setup without a testing.T.
func benchSetup(n, so, nt int) (model.Geometry, model.FieldFunc, *sparse.Points, [][]float32) {
	g := model.Geometry{Nx: n, Ny: n, Nz: n, Hx: 10, Hy: 10, Hz: 10, NBL: 4}
	dt := g.CriticalDtAcoustic(so, 3000, model.DefaultCFL)
	g.SetTime(float64(nt)*dt, dt)
	g.Nt = nt
	vp := model.Layered(float64(n)*10, 1500, 2500, 3000)
	lo, hi := g.PhysicalBox()
	src := &sparse.Points{Coords: []sparse.Coord{
		{(lo[0] + hi[0]) / 2.1, (lo[1] + hi[1]) / 1.9, lo[2] + 21},
		{(lo[0]+hi[0])/2 + 3.3, (lo[1] + hi[1]) / 2.2, lo[2] + 33},
	}}
	wav := make([][]float32, src.N())
	for i := range wav {
		wav[i] = wavelet.RickerSeries(2.0/(float64(g.Nt)*g.Dt), g.Nt, g.Dt, 1e3)
	}
	return g, vp, src, wav
}

// BenchmarkDeepHalo times full deep-halo cluster runs; BENCH_PR5.json tracks
// these numbers across the scheduler overhaul (the acceptance bar there is
// "no slower than the barriered runtime").
func BenchmarkDeepHalo(b *testing.B) {
	for _, c := range []struct{ ranks, depth int }{{2, 4}, {2, 8}, {3, 4}} {
		b.Run(fmt.Sprintf("ranks=%d_depth=%d", c.ranks, c.depth), func(b *testing.B) {
			n, so, nt := 64, 8, 16
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g, vp, src, wav := benchSetup(n, so, nt)
				cl, err := NewAcousticCluster(Config{
					Ranks: c.ranks, Mode: DeepHalo, Depth: c.depth,
					TileY: 16, BlockX: 8, BlockY: 8,
				}, g, so, vp, src, wav)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := cl.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPerStep(b *testing.B) {
	n, so, nt := 64, 8, 16
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, vp, src, wav := benchSetup(n, so, nt)
		cl, err := NewAcousticCluster(Config{Ranks: 3, Mode: PerStep, BlockX: 8, BlockY: 8},
			g, so, vp, src, wav)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := cl.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
