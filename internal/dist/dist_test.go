package dist

import (
	"fmt"
	"testing"

	"wavetile/internal/model"
	"wavetile/internal/sparse"
	"wavetile/internal/tiling"
	"wavetile/internal/wave"
	"wavetile/internal/wavelet"
)

func setup(t *testing.T, n, so, nt int) (model.Geometry, model.FieldFunc, *sparse.Points, [][]float32) {
	t.Helper()
	g := model.Geometry{Nx: n, Ny: n, Nz: n, Hx: 10, Hy: 10, Hz: 10, NBL: 4}
	dt := g.CriticalDtAcoustic(so, 3000, model.DefaultCFL)
	g.SetTime(float64(nt)*dt, dt)
	g.Nt = nt
	vp := model.Layered(float64(n)*10, 1500, 2500, 3000)
	lo, hi := g.PhysicalBox()
	// Two sources: one mid-domain, one deliberately near a slab boundary.
	src := &sparse.Points{Coords: []sparse.Coord{
		{(lo[0] + hi[0]) / 2.1, (lo[1] + hi[1]) / 1.9, lo[2] + 21},
		{(lo[0]+hi[0])/2 + 3.3, (lo[1] + hi[1]) / 2.2, lo[2] + 33},
	}}
	wav := make([][]float32, src.N())
	for i := range wav {
		wav[i] = wavelet.RickerSeries(2.0/(float64(g.Nt)*g.Dt), g.Nt, g.Dt, 1e3)
	}
	return g, vp, src, wav
}

// reference runs the undecomposed problem under the fused spatial schedule.
func reference(t *testing.T, g model.Geometry, so int, vp model.FieldFunc,
	src *sparse.Points, wav [][]float32) *wave.Acoustic {
	t.Helper()
	params := model.NewAcoustic(g, so/2, vp)
	a, err := wave.NewAcoustic(wave.AcousticOpts{Params: params, SO: so, Src: src, SrcWav: wav})
	if err != nil {
		t.Fatal(err)
	}
	tiling.RunSpatial(a, 8, 8, true)
	return a
}

func TestPerStepMatchesSingleDomain(t *testing.T) {
	for _, ranks := range []int{1, 2, 3, 4} {
		ranks := ranks
		t.Run(fmt.Sprintf("ranks=%d", ranks), func(t *testing.T) {
			g, vp, src, wav := setup(t, 36, 4, 14)
			ref := reference(t, g, 4, vp, src, wav)

			c, err := NewAcousticCluster(Config{Ranks: ranks, Mode: PerStep, BlockX: 8, BlockY: 8},
				g, 4, vp, src, wav)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Run(); err != nil {
				t.Fatal(err)
			}
			got := c.GatherWavefield()
			want := ref.Final()
			for x := 0; x < g.Nx; x++ {
				for y := 0; y < g.Ny; y++ {
					a, b := want.Row(x, y), got.Row(x, y)
					for z := range a {
						if a[z] != b[z] {
							t.Fatalf("ranks=%d: (%d,%d,%d): single %g dist %g",
								ranks, x, y, z, a[z], b[z])
						}
					}
				}
			}
			if want.MaxAbs() == 0 {
				t.Fatal("vacuous comparison")
			}
		})
	}
}

func TestDeepHaloMatchesSingleDomain(t *testing.T) {
	for _, c := range []struct{ ranks, depth int }{
		{2, 2}, {2, 4}, {3, 4}, {2, 7},
	} {
		c := c
		t.Run(fmt.Sprintf("ranks=%d_depth=%d", c.ranks, c.depth), func(t *testing.T) {
			nt := 28
			if nt%c.depth != 0 {
				nt = (28 / c.depth) * c.depth
			}
			g, vp, src, wav := setup(t, 40, 4, nt)
			ref := reference(t, g, 4, vp, src, wav)

			cl, err := NewAcousticCluster(Config{
				Ranks: c.ranks, Mode: DeepHalo, Depth: c.depth,
				TileY: 16, BlockX: 8, BlockY: 8,
			}, g, 4, vp, src, wav)
			if err != nil {
				t.Fatal(err)
			}
			if err := cl.Run(); err != nil {
				t.Fatal(err)
			}
			if got, want := cl.Exchanges(), nt/c.depth; got != want {
				t.Fatalf("exchanges %d, want %d", got, want)
			}
			got := cl.GatherWavefield()
			want := ref.Final()
			for x := 0; x < g.Nx; x++ {
				for y := 0; y < g.Ny; y++ {
					a, b := want.Row(x, y), got.Row(x, y)
					for z := range a {
						if a[z] != b[z] {
							t.Fatalf("(%d,%d,%d): single %g dist %g", x, y, z, a[z], b[z])
						}
					}
				}
			}
			if want.MaxAbs() == 0 {
				t.Fatal("vacuous comparison")
			}
		})
	}
}

func TestClusterValidation(t *testing.T) {
	g, vp, src, wav := setup(t, 24, 4, 8)
	if _, err := NewAcousticCluster(Config{Ranks: 0}, g, 4, vp, src, wav); err == nil {
		t.Fatal("0 ranks accepted")
	}
	if _, err := NewAcousticCluster(Config{Ranks: 2, Mode: DeepHalo}, g, 4, vp, src, wav); err == nil {
		t.Fatal("DeepHalo without depth accepted")
	}
	if _, err := NewAcousticCluster(Config{Ranks: 2, Mode: DeepHalo, Depth: 3}, g, 4, vp, src, wav); err == nil {
		t.Fatal("nt not divisible by depth accepted")
	}
	if _, err := NewAcousticCluster(Config{Ranks: 20}, g, 4, vp, src, wav); err == nil {
		t.Fatal("slabs below dependency margin accepted")
	}
}
