package trace

import (
	"testing"

	"wavetile/internal/cachesim"
	"wavetile/internal/sparse"
	"wavetile/internal/tiling"
)

func mkShape(n, so, nt int) Shape {
	src := sparse.Single(sparse.Coord{float64(n) / 2 * 10, float64(n) / 2 * 10, float64(n) / 2 * 10})
	sup, err := src.Supports(n, n, n, 10, 10, 10)
	if err != nil {
		panic(err)
	}
	return Shape{Nx: n, Ny: n, Nz: n, SO: so, Nt: nt, SrcSupports: sup}
}

// scaledCache shrinks the Broadwell hierarchy by the ratio of the trace
// grid's working set to the paper's 512³ working set.
func scaledCache(n int) cachesim.Config {
	f := float64(n*n*n) / float64(512*512*512)
	return cachesim.Broadwell().Scaled(f)
}

func TestAcousticAccessCountsMatchLoopStructure(t *testing.T) {
	n, so, nt := 24, 4, 3
	sh := mkShape(n, so, nt)
	cs := &CountingSink{}
	p := NewAcoustic(sh, cs)
	tiling.RunSpatial(p, 8, 8, true)
	// Per column: (4r+1) star rows + u⁻ + 3 params = reads; 1 write row.
	r := so / 2
	lines := uint64((n + 2*r + cachesim.LineSize/4 - 1) / (cachesim.LineSize / 4)) // approx lines per row
	minReads := uint64(n*n*nt) * uint64(4*r+1) * (lines - 2)
	if cs.Reads < minReads {
		t.Fatalf("reads %d below structural minimum %d", cs.Reads, minReads)
	}
	if cs.Writes == 0 {
		t.Fatal("no writes traced")
	}
	// Fused injection must emit the nnz_mask probe per column per step:
	// at minimum nx*ny*nt extra reads beyond the stencil rows are present
	// (they are included in Reads; just sanity-check the injection path ran
	// by comparing against a run without sources).
	cs2 := &CountingSink{}
	sh2 := sh
	sh2.SrcSupports = nil
	p2 := NewAcoustic(sh2, cs2)
	tiling.RunSpatial(p2, 8, 8, true)
	if cs.Reads <= cs2.Reads {
		t.Fatal("fused injection added no accesses")
	}
}

func TestSchedulesTouchSameVolume(t *testing.T) {
	// Both schedules visit every (t, x, y) column exactly once, so the
	// total traced access count must be identical (same work, different
	// order) for single-phase kernels up to clamping of skewed tiles.
	n, so, nt := 20, 4, 4
	sh := mkShape(n, so, nt)
	cs1 := &CountingSink{}
	tiling.RunSpatial(NewAcoustic(sh, cs1), 8, 8, true)
	cs2 := &CountingSink{}
	if err := tiling.RunWTB(NewAcoustic(sh, cs2), tiling.Config{TT: 4, TileX: 8, TileY: 8, BlockX: 8, BlockY: 8}); err != nil {
		t.Fatal(err)
	}
	if cs1.Writes != cs2.Writes {
		t.Fatalf("write volume differs: spatial %d wtb %d", cs1.Writes, cs2.Writes)
	}
	if cs1.Reads != cs2.Reads {
		t.Fatalf("read volume differs: spatial %d wtb %d", cs1.Reads, cs2.Reads)
	}
}

func TestWTBReducesDRAMTraffic(t *testing.T) {
	// The core mechanism of the paper: with a working set exceeding the
	// LLC, temporal blocking re-uses cached tiles across timesteps and cuts
	// slow-level traffic; spatial blocking must re-stream the grid from
	// DRAM every timestep.
	n, so, nt := 64, 4, 8
	sh := mkShape(n, so, nt)
	cfgc := scaledCache(n)

	h1 := cachesim.New(cfgc)
	tiling.RunSpatial(NewAcoustic(sh, h1), 0, 0, true)
	spatial := h1.Snapshot("spatial")

	h2 := cachesim.New(cfgc)
	if err := tiling.RunWTB(NewAcoustic(sh, h2), tiling.Config{TT: 8, TileX: 16, TileY: 16, BlockX: 16, BlockY: 16}); err != nil {
		t.Fatal(err)
	}
	wtb := h2.Snapshot("wtb")

	t.Logf("spatial DRAM %d MB, WTB DRAM %d MB",
		spatial.DRAMBytes>>20, wtb.DRAMBytes>>20)
	if wtb.DRAMBytes >= spatial.DRAMBytes {
		t.Fatalf("WTB did not reduce DRAM traffic: %d vs %d", wtb.DRAMBytes, spatial.DRAMBytes)
	}
	// With TT=8 the reduction should be substantial (> 1.5×).
	if float64(spatial.DRAMBytes)/float64(wtb.DRAMBytes) < 1.5 {
		t.Fatalf("reduction only %.2fx", float64(spatial.DRAMBytes)/float64(wtb.DRAMBytes))
	}
}

func TestElasticTraceRuns(t *testing.T) {
	n, so, nt := 24, 4, 3
	sh := mkShape(n, so, nt)
	cs := &CountingSink{}
	e := NewElastic(sh, cs)
	tiling.RunSpatial(e, 8, 8, true)
	spatialReads := cs.Reads
	if spatialReads == 0 || cs.Writes == 0 {
		t.Fatal("elastic trace empty")
	}
	cs2 := &CountingSink{}
	e2 := NewElastic(sh, cs2)
	if err := tiling.RunWTB(e2, tiling.Config{TT: 3, TileX: 8, TileY: 8, BlockX: 8, BlockY: 8}); err != nil {
		t.Fatal(err)
	}
	if cs2.Writes != cs.Writes {
		t.Fatalf("elastic write volume differs: %d vs %d", cs.Writes, cs2.Writes)
	}
}

func TestTTITraceHeavierThanAcoustic(t *testing.T) {
	// TTI touches the full (2r+1)² square of rows for two fields: its
	// traced volume must far exceed the acoustic star.
	n, so, nt := 16, 8, 2
	sh := mkShape(n, so, nt)
	ca := &CountingSink{}
	tiling.RunSpatial(NewAcoustic(sh, ca), 8, 8, true)
	ct := &CountingSink{}
	tiling.RunSpatial(NewTTI(sh, ct), 8, 8, true)
	if ct.Reads < 3*ca.Reads {
		t.Fatalf("TTI reads %d not ≫ acoustic reads %d", ct.Reads, ca.Reads)
	}
}
