// Package trace generates the memory-access streams of the wave propagators
// under either execution schedule and replays them through the cache
// simulator (internal/cachesim).
//
// Each trace propagator implements tiling.Propagator, so the *actual*
// schedule code — tiling.RunSpatial and tiling.RunWTB, with their skewing,
// clamping and phase offsets — drives the address generation. The trace
// kernels mirror the data layout (padded strides, z-contiguous rows) and
// the row-access pattern of the real kernels at cache-line granularity: for
// every (x, y) column visited, each z-row the kernel touches is streamed
// line by line. This captures exactly the reuse structure temporal blocking
// exploits while keeping simulation tractable.
package trace

import (
	"wavetile/internal/cachesim"
)

// Sink consumes the generated accesses; *cachesim.Hierarchy implements it.
type Sink interface {
	Access(addr uint64, write bool)
}

// CountingSink tallies accesses without simulating a cache (for tests and
// flop/byte accounting).
type CountingSink struct {
	Reads, Writes uint64
}

// Access implements Sink.
func (c *CountingSink) Access(addr uint64, write bool) {
	if write {
		c.Writes++
	} else {
		c.Reads++
	}
}

// Layout assigns disjoint address ranges to named arrays, mimicking the
// allocator: line-aligned bases with a one-line stagger between consecutive
// arrays so they do not collide pathologically in the cache sets.
type Layout struct {
	next uint64
}

// Array is a flat float32 array in the simulated address space.
type Array struct {
	base uint64
}

// NewArray reserves space for n float32 elements.
func (l *Layout) NewArray(n int) Array {
	a := Array{base: l.next}
	bytes := uint64(n) * 4
	// Round up to a line and stagger by one extra line.
	bytes = (bytes + cachesim.LineSize - 1) / cachesim.LineSize * cachesim.LineSize
	l.next += bytes + cachesim.LineSize
	return a
}

// Addr returns the byte address of element i.
func (a Array) Addr(i int) uint64 { return a.base + uint64(i)*4 }

// field is a grid-shaped array with the same padded layout as grid.Grid.
type field struct {
	arr        Array
	nz, sx, sy int
	h          int
}

func newField(l *Layout, nx, ny, nz, halo int) field {
	px, py, pz := nx+2*halo, ny+2*halo, nz+2*halo
	return field{arr: l.NewArray(px * py * pz), nz: nz, sx: py * pz, sy: pz, h: halo}
}

// streamRow touches every line of the z-row at column (x, y), covering
// [−halo, nz+halo) as stencil z-neighbours do, reading or writing.
func (f field) streamRow(s Sink, x, y int, write bool) {
	base := (x+f.h)*f.sx + (y+f.h)*f.sy
	lo := f.arr.Addr(base)
	hi := f.arr.Addr(base + f.nz + 2*f.h)
	for a := lo / cachesim.LineSize * cachesim.LineSize; a < hi; a += cachesim.LineSize {
		s.Access(a, write)
	}
}

// touch accesses the single element at flat padded index.
func (f field) touch(s Sink, x, y, z int, write bool) {
	s.Access(f.arr.Addr((x+f.h)*f.sx+(y+f.h)*f.sy+(z+f.h)), write)
}

// rowSet describes which z-rows (relative to the current column) a kernel
// reads from one field: offsets along x, along y, and whether the center
// row is read.
type rowSet struct {
	xOff, yOff []int // e.g. ±1..±r
	center     bool
}

func crossOffsets(r int) []int {
	out := make([]int, 0, 2*r)
	for k := 1; k <= r; k++ {
		out = append(out, k, -k)
	}
	return out
}

// stream replays the row set of one field for column (x, y).
func (rs rowSet) stream(f field, s Sink, x, y int) {
	if rs.center {
		f.streamRow(s, x, y, false)
	}
	for _, dx := range rs.xOff {
		f.streamRow(s, x+dx, y, false)
	}
	for _, dy := range rs.yOff {
		f.streamRow(s, x, y+dy, false)
	}
}
