package trace

import (
	"wavetile/internal/grid"
	"wavetile/internal/sparse"
)

// Shape configures a trace propagator.
type Shape struct {
	Nx, Ny, Nz int
	SO         int // space order
	Nt         int
	// Sources: grid columns carrying injection work (fused path) and the
	// scattered points of the baseline path.
	SrcSupports []sparse.Support
}

// Prop is the common base of the trace propagators.
type Prop struct {
	shape          Shape
	r              int
	sink           Sink
	blockX, blockY int
	// Fused-injection structures (line-granular): per-column nonzero count.
	nnz    []int
	nnzArr Array
	srcArr Array // decomposed wavefield src_dcmp[t]
	kind   string
	fields map[string]field
	layout Layout
	// step emits the accesses of one phase-complete timestep on a clamped
	// region; set by the concrete constructors.
	step func(t int, raw grid.Region)
}

// GridShape implements tiling.Propagator.
func (p *Prop) GridShape() (int, int) { return p.shape.Nx, p.shape.Ny }

// Steps implements tiling.Propagator.
func (p *Prop) Steps() int { return p.shape.Nt }

// MinTile implements tiling.Propagator.
func (p *Prop) MinTile() int { return 2 * p.r }

// SetBlocks implements tiling.Propagator.
func (p *Prop) SetBlocks(bx, by int) { p.blockX, p.blockY = bx, by }

// TimeSkew implements tiling.Propagator (overridden for elastic via skew).
func (p *Prop) TimeSkew() int { return p.r }

// MaxPhaseOffset implements tiling.Propagator.
func (p *Prop) MaxPhaseOffset() int { return 0 }

// Step implements tiling.Propagator: it visits the region's blocks
// sequentially (a single simulated access stream) in the same block
// decomposition the real runtime uses.
func (p *Prop) Step(t int, raw grid.Region, fused bool) {
	reg := raw.Clamp(p.shape.Nx, p.shape.Ny)
	if reg.Empty() {
		return
	}
	for _, b := range reg.SplitBlocks(p.blockX, p.blockY) {
		p.step(t, b)
		if fused {
			p.injectFused(b)
		}
	}
}

// ApplySparse emits the baseline Listing-1 scattered injection: for every
// source, its wavelet sample and eight support-point read-modify-writes.
func (p *Prop) ApplySparse(t int) {
	for i := range p.shape.SrcSupports {
		sp := &p.shape.SrcSupports[i]
		p.sink.Access(p.srcArr.Addr(t*len(p.shape.SrcSupports)+i), false)
		f := p.anyField()
		for c := 0; c < 8; c++ {
			f.touch(p.sink, int(sp.X[c]), int(sp.Y[c]), int(sp.Z[c]), true)
		}
	}
}

func (p *Prop) anyField() field {
	for _, f := range p.fields {
		return f
	}
	return field{}
}

// injectFused emits the compressed fused-injection accesses of Listing 5:
// the nnz_mask entry per column, plus Sp_SID/src_dcmp/point accesses for
// affected columns.
func (p *Prop) injectFused(b grid.Region) {
	if p.nnz == nil {
		return
	}
	f := p.anyField()
	for x := b.X0; x < b.X1; x++ {
		for y := b.Y0; y < b.Y1; y++ {
			col := x*p.shape.Ny + y
			p.sink.Access(p.nnzArr.Addr(col), false)
			for j := 0; j < p.nnz[col]; j++ {
				p.sink.Access(p.srcArr.Addr(col*8+j), false)
				f.touch(p.sink, x, y, 0, true)
			}
		}
	}
}

func (p *Prop) buildSparse() {
	p.nnz = make([]int, p.shape.Nx*p.shape.Ny)
	seen := map[[3]int32]bool{}
	for i := range p.shape.SrcSupports {
		sp := &p.shape.SrcSupports[i]
		for c := 0; c < 8; c++ {
			k := [3]int32{sp.X[c], sp.Y[c], sp.Z[c]}
			if seen[k] {
				continue
			}
			seen[k] = true
			p.nnz[int(sp.X[c])*p.shape.Ny+int(sp.Y[c])]++
		}
	}
	p.nnzArr = p.layout.NewArray(len(p.nnz))
	// srcArr backs both the fused src_dcmp reads (≤ 8 per column) and the
	// baseline per-source wavelet reads (nt × nsources); size for both.
	p.srcArr = p.layout.NewArray(max(len(p.nnz)*8, p.shape.Nt*len(p.shape.SrcSupports)))
}

// NewAcoustic builds the acoustic trace propagator: per column it streams
// the wavefield star rows (center + ±k in x and y), the output row
// (read-modify-write) and the three per-point factor arrays.
func NewAcoustic(sh Shape, sink Sink) *Prop {
	p := &Prop{shape: sh, r: sh.SO / 2, sink: sink, kind: "acoustic", blockX: 8, blockY: 8}
	mk := func() field { return newField(&p.layout, sh.Nx, sh.Ny, sh.Nz, p.r) }
	p.fields = map[string]field{
		"u0": mk(), "u1": mk(), "dm1": mk(), "dp1i": mk(), "mdt2": mk(),
	}
	p.buildSparse()
	star := rowSet{xOff: crossOffsets(p.r), yOff: crossOffsets(p.r), center: true}
	p.step = func(t int, b grid.Region) {
		u := p.fields["u0"]
		un := p.fields["u1"]
		if t&1 == 1 {
			u, un = un, u
		}
		for x := b.X0; x < b.X1; x++ {
			for y := b.Y0; y < b.Y1; y++ {
				star.stream(u, p.sink, x, y)
				un.streamRow(p.sink, x, y, false) // u⁻ read
				un.streamRow(p.sink, x, y, true)  // u⁺ write
				p.fields["dm1"].streamRow(p.sink, x, y, false)
				p.fields["dp1i"].streamRow(p.sink, x, y, false)
				p.fields["mdt2"].streamRow(p.sink, x, y, false)
			}
		}
	}
	return p
}

// NewTTI builds the TTI trace propagator: both wavefields touch the full
// (2r+1)² square of rows (cross derivatives), plus eight parameter arrays.
func NewTTI(sh Shape, sink Sink) *Prop {
	p := &Prop{shape: sh, r: sh.SO / 2, sink: sink, kind: "tti", blockX: 8, blockY: 8}
	mk := func() field { return newField(&p.layout, sh.Nx, sh.Ny, sh.Nz, p.r) }
	names := []string{"p0", "p1", "q0", "q1", "aa", "bb", "cc", "e2", "sqd", "dm1", "dp1i", "mdt2"}
	p.fields = map[string]field{}
	for _, n := range names {
		p.fields[n] = mk()
	}
	p.buildSparse()
	p.step = func(t int, b grid.Region) {
		pc, pn := p.fields["p0"], p.fields["p1"]
		qc, qn := p.fields["q0"], p.fields["q1"]
		if t&1 == 1 {
			pc, pn = pn, pc
			qc, qn = qn, qc
		}
		params := []field{
			p.fields["aa"], p.fields["bb"], p.fields["cc"],
			p.fields["e2"], p.fields["sqd"],
			p.fields["dm1"], p.fields["dp1i"], p.fields["mdt2"],
		}
		r := p.r
		for x := b.X0; x < b.X1; x++ {
			for y := b.Y0; y < b.Y1; y++ {
				// Cross-derivative square: rows (x+dx, y+dy), |dx|,|dy| ≤ r.
				for _, f := range []field{pc, qc} {
					for dx := -r; dx <= r; dx++ {
						for dy := -r; dy <= r; dy++ {
							f.streamRow(p.sink, x+dx, y+dy, false)
						}
					}
				}
				pn.streamRow(p.sink, x, y, false)
				pn.streamRow(p.sink, x, y, true)
				qn.streamRow(p.sink, x, y, false)
				qn.streamRow(p.sink, x, y, true)
				for _, f := range params {
					f.streamRow(p.sink, x, y, false)
				}
			}
		}
	}
	return p
}

// Elastic extends Prop with the two-phase structure.
type Elastic struct {
	Prop
}

// NewElastic builds the elastic trace propagator: nine wavefields in two
// phases with the staggered row sets of the velocity–stress kernels.
func NewElastic(sh Shape, sink Sink) *Elastic {
	e := &Elastic{Prop{shape: sh, r: sh.SO / 2, sink: sink, kind: "elastic", blockX: 8, blockY: 8}}
	mk := func() field { return newField(&e.layout, sh.Nx, sh.Ny, sh.Nz, e.r) }
	names := []string{"vx", "vy", "vz", "txx", "tyy", "tzz", "txy", "txz", "tyz",
		"bdt", "l2mdt", "lamdt", "mudt", "taper"}
	e.fields = map[string]field{}
	for _, n := range names {
		e.fields[n] = mk()
	}
	e.buildSparse()
	return e
}

// TimeSkew implements tiling.Propagator: two phases of radius r.
func (e *Elastic) TimeSkew() int { return 2 * e.r }

// MaxPhaseOffset implements tiling.Propagator.
func (e *Elastic) MaxPhaseOffset() int { return e.r }

// Step implements tiling.Propagator with the velocity and stress phases.
func (e *Elastic) Step(t int, raw grid.Region, fused bool) {
	r := e.r
	xs := crossOffsets(r)
	f := e.fields
	vreg := raw.Clamp(e.shape.Nx, e.shape.Ny)
	if !vreg.Empty() {
		for _, b := range vreg.SplitBlocks(e.blockX, e.blockY) {
			for x := b.X0; x < b.X1; x++ {
				for y := b.Y0; y < b.Y1; y++ {
					// vx: txx (x±), txy (y±), txz (center); vy: txy (x±),
					// tyy (y±), tyz (center); vz: txz (x±), tyz (y±), tzz.
					rowSet{xOff: xs, center: false}.stream(f["txx"], e.sink, x, y)
					rowSet{xOff: xs, yOff: xs, center: true}.stream(f["txy"], e.sink, x, y)
					rowSet{xOff: xs, center: true}.stream(f["txz"], e.sink, x, y)
					rowSet{yOff: xs, center: false}.stream(f["tyy"], e.sink, x, y)
					rowSet{yOff: xs, center: true}.stream(f["tyz"], e.sink, x, y)
					f["tzz"].streamRow(e.sink, x, y, false)
					for _, n := range []string{"vx", "vy", "vz"} {
						f[n].streamRow(e.sink, x, y, false)
						f[n].streamRow(e.sink, x, y, true)
					}
					f["bdt"].streamRow(e.sink, x, y, false)
					f["taper"].streamRow(e.sink, x, y, false)
				}
			}
		}
	}
	sreg := raw.Shift(-r, -r).Clamp(e.shape.Nx, e.shape.Ny)
	if !sreg.Empty() {
		for _, b := range sreg.SplitBlocks(e.blockX, e.blockY) {
			for x := b.X0; x < b.X1; x++ {
				for y := b.Y0; y < b.Y1; y++ {
					rowSet{xOff: xs, yOff: xs, center: true}.stream(f["vx"], e.sink, x, y)
					rowSet{xOff: xs, yOff: xs, center: true}.stream(f["vy"], e.sink, x, y)
					rowSet{xOff: xs, yOff: xs, center: true}.stream(f["vz"], e.sink, x, y)
					for _, n := range []string{"txx", "tyy", "tzz", "txy", "txz", "tyz"} {
						f[n].streamRow(e.sink, x, y, false)
						f[n].streamRow(e.sink, x, y, true)
					}
					for _, n := range []string{"l2mdt", "lamdt", "mudt", "taper"} {
						f[n].streamRow(e.sink, x, y, false)
					}
				}
			}
			if fused {
				e.injectFused(b)
			}
		}
	}
}
