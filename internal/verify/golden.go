package verify

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"wavetile/internal/tiling"
)

// Golden regression corpus: a handful of fixed scenarios whose receiver
// traces are committed under testdata/golden. Any change to the numerics —
// kernel arithmetic, coefficient tables, interpolation weights, injection
// scaling — moves at least one trace bit and fails the comparison, so
// numerical drift has to be explained and the corpus regenerated
// deliberately (make golden) rather than slipping through.

// GoldenCase is one committed regression scenario.
type GoldenCase struct {
	Name        string
	Description string
	Scenario    Scenario
}

// GoldenRecord is the committed form of one case's output.
type GoldenRecord struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	Physics     string  `json:"physics"`
	SO          int     `json:"so"`
	Dt          float64 `json:"dt"`
	Nt          int     `json:"nt"`
	NRec        int     `json:"nrec"`
	MaxAbs      float64 `json:"max_abs"`
	// FNV64 is the FNV-1a 64 checksum of the little-endian float32 trace
	// bytes; Traces is the same bytes base64-encoded, [t][r] row-major.
	FNV64  string `json:"fnv64"`
	Traces string `json:"traces"`
}

// GoldenCases returns the committed corpus. Scenarios are pinned by explicit
// seeds — never drawn from a master RNG — so adding a case can never shift
// another case's inputs.
func GoldenCases() []GoldenCase {
	base := func(seed int64) Scenario {
		return Scenario{
			Seed:    seed,
			Physics: Acoustic,
			SO:      4,
			Shape:   [3]int{24, 24, 24},
			Spacing: [3]float64{10, 10, 10},
			NBL:     3,
			Steps:   12,
			Model:   ModelLayered,
			SrcKind: SrcOffGrid,
			NSrc:    2,
			Rec:     RecLine,
			NRec:    4,
			Workers: 2,
			WTB:     tiling.Config{TT: 4, TileX: 12, TileY: 12, BlockX: 6, BlockY: 6},
		}
	}
	var cases []GoldenCase

	c := base(101)
	cases = append(cases, GoldenCase{"acoustic-so4-trilinear",
		"acoustic SO4, layered model, off-grid trilinear sources, line receivers", c})

	c = base(102)
	c.SO = 8
	c.SrcKind = SrcSinc
	c.RecSinc = true
	c.Shape = [3]int{26, 26, 26}
	c.WTB = tiling.Config{TT: 3, TileX: 16, TileY: 16, BlockX: 6, BlockY: 6}
	cases = append(cases, GoldenCase{"acoustic-so8-sinc",
		"acoustic SO8, Hicks sinc source injection and sinc receiver interpolation", c})

	c = base(103)
	c.Physics = TTI
	c.Model = ModelGradient
	cases = append(cases, GoldenCase{"tti-so4-gradient",
		"TTI SO4, gradient model, off-grid trilinear sources", c})

	c = base(104)
	c.Physics = Elastic
	c.WTB = tiling.Config{TT: 3, TileX: 14, TileY: 14, BlockX: 6, BlockY: 6}
	cases = append(cases, GoldenCase{"elastic-so4-layered",
		"elastic SO4, layered model, explosive off-grid sources, vz receivers", c})

	c = base(105)
	c.SrcKind = SrcMoving
	c.NSrc = 1
	c.Model = ModelHomogeneous
	cases = append(cases, GoldenCase{"acoustic-so4-moving",
		"acoustic SO4, towed (moving) source, homogeneous model", c})

	c = base(106)
	c.SrcKind = SrcOnGrid
	c.NBL = 0
	c.Model = ModelHomogeneous
	c.Rec = RecBoundary
	cases = append(cases, GoldenCase{"acoustic-so4-ongrid-hard",
		"acoustic SO4, on-grid sources, zero damping (hard reflections), boundary receivers", c})

	// 107/108 pin the high-order coupled systems to their generated
	// specialized kernels — the configurations that previously fell back to
	// the generic path silently. A bitwise drift here means the generator's
	// expression ordering changed.
	c = base(107)
	c.Physics = Elastic
	c.SO = 8
	c.Shape = [3]int{28, 28, 28}
	c.WTB = tiling.Config{TT: 3, TileX: 16, TileY: 16, BlockX: 8, BlockY: 8}
	cases = append(cases, GoldenCase{"elastic-so8-layered",
		"elastic SO8, layered model, specialized generated kernel (radius 4)", c})

	c = base(108)
	c.Physics = TTI
	c.SO = 8
	c.Shape = [3]int{28, 28, 28}
	c.Model = ModelGradient
	c.WTB = tiling.Config{TT: 3, TileX: 16, TileY: 16, BlockX: 8, BlockY: 8}
	cases = append(cases, GoldenCase{"tti-so8-gradient",
		"TTI SO8, gradient model, specialized generated kernel (radius 4)", c})

	return cases
}

// RunGolden executes one case under the fused spatial schedule and packs its
// receiver traces into a record.
func RunGolden(c GoldenCase) (*GoldenRecord, error) {
	restore := setWorkers(c.Scenario.Workers)
	defer restore()
	b, err := c.Scenario.build()
	if err != nil {
		return nil, err
	}
	tiling.RunSpatial(b.Prop, c.Scenario.WTB.BlockX, c.Scenario.WTB.BlockY, true)
	traces, err := b.Ops.Receivers()
	if err != nil {
		return nil, err
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("golden case %s recorded no traces", c.Name)
	}
	if traceScale(traces) == 0 {
		return nil, fmt.Errorf("golden case %s is vacuous: all trace samples are zero", c.Name)
	}
	raw := make([]byte, 0, len(traces)*len(traces[0])*4)
	var buf [4]byte
	for _, row := range traces {
		for _, v := range row {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
			raw = append(raw, buf[:]...)
		}
	}
	h := fnv.New64a()
	h.Write(raw)
	return &GoldenRecord{
		Name:        c.Name,
		Description: c.Description,
		Physics:     c.Scenario.Physics.String(),
		SO:          c.Scenario.SO,
		Dt:          b.Geom.Dt,
		Nt:          b.Geom.Nt,
		NRec:        len(traces[0]),
		MaxAbs:      traceScale(traces),
		FNV64:       fmt.Sprintf("%016x", h.Sum64()),
		Traces:      base64.StdEncoding.EncodeToString(raw),
	}, nil
}

// DiffGolden compares a freshly computed record against the committed one,
// returning a human-readable explanation of the first difference, or "" when
// they match exactly (bit-for-bit traces included).
func DiffGolden(want, got *GoldenRecord) string {
	switch {
	case want.Physics != got.Physics || want.SO != got.SO:
		return fmt.Sprintf("scenario changed: %s/so%d → %s/so%d", want.Physics, want.SO, got.Physics, got.SO)
	case want.Nt != got.Nt || want.NRec != got.NRec:
		return fmt.Sprintf("trace shape changed: nt=%d nrec=%d → nt=%d nrec=%d", want.Nt, want.NRec, got.Nt, got.NRec)
	case math.Float64bits(want.Dt) != math.Float64bits(got.Dt):
		return fmt.Sprintf("timestep changed: dt=%v → %v", want.Dt, got.Dt)
	case want.FNV64 != got.FNV64:
		return firstTraceDiff(want, got)
	case want.Traces != got.Traces:
		return "trace bytes differ but checksums collide (corrupt golden file?)"
	}
	return ""
}

// firstTraceDiff locates the first differing sample between two records.
func firstTraceDiff(want, got *GoldenRecord) string {
	wb, err1 := base64.StdEncoding.DecodeString(want.Traces)
	gb, err2 := base64.StdEncoding.DecodeString(got.Traces)
	if err1 != nil || err2 != nil || len(wb) != len(gb) {
		return fmt.Sprintf("trace payload undecodable or resized (%d → %d bytes)", len(wb), len(gb))
	}
	for i := 0; i+4 <= len(wb); i += 4 {
		w := math.Float32frombits(binary.LittleEndian.Uint32(wb[i:]))
		g := math.Float32frombits(binary.LittleEndian.Uint32(gb[i:]))
		if u := ULP32(w, g); u != 0 {
			sample := i / 4
			t, r := sample/want.NRec, sample%want.NRec
			return fmt.Sprintf("first drift at t=%d rec=%d: %v → %v (%d ULP)", t, r, w, g, u)
		}
	}
	return "checksums differ but samples match (corrupt golden file?)"
}
