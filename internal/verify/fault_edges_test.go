package verify

import (
	"testing"

	"wavetile/internal/sched"
)

// elasticFaultScenario is faultScenario's in-place counterpart: the elastic
// propagator has MaxPhaseOffset() > 0, so the task graph uses the same-step
// left/up edge set instead of the ping-pong diagonal one.
func elasticFaultScenario() Scenario {
	s := faultScenario()
	s.Physics = Elastic
	s.NRec = 0
	s.Rec = RecNone
	return s
}

// TestOracleCatchesDroppedEdges proves every dependency-edge class of the
// task-graph runtime is load-bearing: with one class deleted from the graph
// (sched.FaultDropEdge), the adversarial scheduler deliberately runs a
// dependent tile before its now-unordered predecessor, and the oracle must
// flag a wtb-pipelined divergence — while the barriered WTB schedule, which
// never consults the graph, stays bitwise green. Together with
// TestVerifyScenarios (no fault ⇒ 0 ULP) this shows the edge set is sharp:
// nothing missing, nothing redundant.
func TestOracleCatchesDroppedEdges(t *testing.T) {
	cases := []struct {
		name string
		s    Scenario
		drop sched.EdgeClass
	}{
		// Ping-pong buffering (acoustic): preds at k−1 in own, left, up and
		// diagonal positions.
		{"acoustic/own", faultScenario(), sched.EdgeOwn},
		{"acoustic/left", faultScenario(), sched.EdgeLeft},
		{"acoustic/up", faultScenario(), sched.EdgeUp},
		{"acoustic/diag", faultScenario(), sched.EdgeDiag},
		// In-place phases (elastic): own pred at k−1, left/up preds at the
		// same k (no separate diagonal edge — it is transitively implied).
		{"elastic/own", elasticFaultScenario(), sched.EdgeOwn},
		{"elastic/left", elasticFaultScenario(), sched.EdgeLeft},
		{"elastic/up", elasticFaultScenario(), sched.EdgeUp},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			// Sanity: green without the fault.
			rep, err := RunOracle(c.s)
			if err != nil {
				t.Fatalf("fault scenario does not run: %v", err)
			}
			if !rep.OK() {
				t.Fatalf("fault scenario diverges before fault injection: %s", rep)
			}

			sched.FaultDropEdge = c.drop
			defer func() { sched.FaultDropEdge = sched.EdgeNone }()
			rep, err = RunOracle(c.s)
			if err != nil {
				t.Fatalf("oracle errored under dropped edge (want divergence report): %v", err)
			}
			if rep.OK() {
				t.Fatalf("oracle missed dropped %v edge", c.drop)
			}
			for _, d := range rep.Divergences {
				if d.Schedule != "wtb-pipelined" {
					t.Errorf("dropped graph edge leaked into schedule %q: %s", d.Schedule, d)
				}
			}
			t.Logf("dropped %v edge caught: %s", c.drop, &rep.Divergences[0])
		})
	}
}

// TestPipelinedOracleLocalizesFault checks the wtb-pipelined first-divergence
// diagnostics: the adversarial replay is deterministic, so a dropped-edge
// divergence must be localized to its first divergent time tile with a
// nonzero ULP distance, exactly like the WTB skew-fault path.
func TestPipelinedOracleLocalizesFault(t *testing.T) {
	sched.FaultDropEdge = sched.EdgeLeft
	defer func() { sched.FaultDropEdge = sched.EdgeNone }()
	rep, err := RunOracle(faultScenario())
	if err != nil {
		t.Fatalf("oracle errored: %v", err)
	}
	if rep.OK() {
		t.Fatal("oracle missed the dropped left edge")
	}
	var pd *Divergence
	for i := range rep.Divergences {
		if rep.Divergences[i].Schedule == "wtb-pipelined" {
			pd = &rep.Divergences[i]
			break
		}
	}
	if pd == nil {
		t.Fatalf("no wtb-pipelined divergence in report: %s", rep)
	}
	if pd.T0 < 0 || pd.T1 <= pd.T0 {
		t.Errorf("divergence not localized to a time tile: %s", pd)
	}
	if pd.ULP == 0 {
		t.Errorf("divergence carries no ULP distance: %s", pd)
	}
	t.Logf("localized: %s", pd)
}

// TestPipelinedRespectsWorkerCount pins the degenerate-schedule contract:
// at Workers = 1 the task graph must drain in exactly the sequential WTB
// tile order (asserted structurally in internal/sched); here we assert the
// observable consequence — a full oracle scenario stays bitwise green with
// the serial drainer too, not just the work-stealing one.
func TestPipelinedRespectsWorkerCount(t *testing.T) {
	s := faultScenario()
	s.Workers = 1
	rep, err := RunOracle(s)
	if err != nil {
		t.Fatalf("oracle errored: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("serial task-graph drain diverged: %s", rep)
	}
}
