package verify

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"wavetile/internal/grid"
)

// Snapshot codec: a stable binary encoding of a propagator field set
// (map[string]*grid.Grid), the same state the oracle's checkpoint-replay
// diagnostics snapshot at time-tile boundaries. The simulation service
// persists job checkpoints through this codec so that a resumed job
// restarts from bitwise-identical wavefields: float32 payloads are written
// as raw IEEE-754 bits (halo included), never through a decimal round
// trip.
//
// Layout (all integers little-endian):
//
//	magic   "WVSNAP1\n"
//	u32     field count
//	per field, in ascending name order:
//	  u16   name length, then the name bytes
//	  4×i32 nx, ny, nz, halo
//	  u32   IEEE CRC-32 of the payload
//	  raw   padded float32 buffer, 4 bytes per value
//
// The per-field CRC makes a truncated or corrupted checkpoint file a
// decode error instead of a silently wrong wavefield — the failure mode
// fault-injection tests force.

const snapMagic = "WVSNAP1\n"

// ErrSnapshotCorrupt tags snapshots whose payload fails its checksum or
// whose structure cannot be decoded.
var ErrSnapshotCorrupt = fmt.Errorf("verify: snapshot corrupt")

// WriteSnapshot encodes fields to w in the stable snapshot format. Field
// order is canonicalized (ascending name), so identical field sets always
// produce identical bytes.
func WriteSnapshot(w io.Writer, fields map[string]*grid.Grid) error {
	if _, err := io.WriteString(w, snapMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(fields))); err != nil {
		return err
	}
	buf := make([]byte, 4*16384)
	for _, name := range sortedFieldNames(fields) {
		g := fields[name]
		if len(name) > math.MaxUint16 {
			return fmt.Errorf("verify: snapshot field name %q too long", name)
		}
		if err := binary.Write(w, binary.LittleEndian, uint16(len(name))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, name); err != nil {
			return err
		}
		for _, v := range [4]int32{int32(g.Nx), int32(g.Ny), int32(g.Nz), int32(g.H)} {
			if err := binary.Write(w, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		if err := binary.Write(w, binary.LittleEndian, payloadCRC(g.Data, buf)); err != nil {
			return err
		}
		if err := writeFloats(w, g.Data, buf); err != nil {
			return err
		}
	}
	return nil
}

// payloadCRC computes the IEEE CRC-32 of the float payload as it will be
// written (little-endian bit patterns).
func payloadCRC(data []float32, buf []byte) uint32 {
	crc := crc32.NewIEEE()
	for off := 0; off < len(data); off += len(buf) / 4 {
		n := min(len(buf)/4, len(data)-off)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(data[off+i]))
		}
		crc.Write(buf[:4*n])
	}
	return crc.Sum32()
}

func writeFloats(w io.Writer, data []float32, buf []byte) error {
	for off := 0; off < len(data); off += len(buf) / 4 {
		n := min(len(buf)/4, len(data)-off)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(data[off+i]))
		}
		if _, err := w.Write(buf[:4*n]); err != nil {
			return err
		}
	}
	return nil
}

// ReadSnapshot decodes a snapshot written by WriteSnapshot, allocating
// fresh grids. Structural damage and checksum mismatches return errors
// tagged ErrSnapshotCorrupt.
func ReadSnapshot(r io.Reader) (map[string]*grid.Grid, error) {
	var magic [len(snapMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrSnapshotCorrupt, err)
	}
	if string(magic[:]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrSnapshotCorrupt, magic)
	}
	var nf uint32
	if err := binary.Read(r, binary.LittleEndian, &nf); err != nil {
		return nil, fmt.Errorf("%w: field count: %v", ErrSnapshotCorrupt, err)
	}
	if nf > 1024 {
		return nil, fmt.Errorf("%w: implausible field count %d", ErrSnapshotCorrupt, nf)
	}
	out := make(map[string]*grid.Grid, nf)
	buf := make([]byte, 4*16384)
	for i := uint32(0); i < nf; i++ {
		var nameLen uint16
		if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("%w: name length: %v", ErrSnapshotCorrupt, err)
		}
		nameBytes := make([]byte, nameLen)
		if _, err := io.ReadFull(r, nameBytes); err != nil {
			return nil, fmt.Errorf("%w: name: %v", ErrSnapshotCorrupt, err)
		}
		var dims [4]int32
		for d := range dims {
			if err := binary.Read(r, binary.LittleEndian, &dims[d]); err != nil {
				return nil, fmt.Errorf("%w: dims: %v", ErrSnapshotCorrupt, err)
			}
		}
		nx, ny, nz, halo := int(dims[0]), int(dims[1]), int(dims[2]), int(dims[3])
		if nx <= 0 || ny <= 0 || nz <= 0 || halo < 0 ||
			int64(nx+2*halo)*int64(ny+2*halo)*int64(nz+2*halo) > 1<<33 {
			return nil, fmt.Errorf("%w: implausible field shape %dx%dx%d halo %d", ErrSnapshotCorrupt, nx, ny, nz, halo)
		}
		var wantCRC uint32
		if err := binary.Read(r, binary.LittleEndian, &wantCRC); err != nil {
			return nil, fmt.Errorf("%w: checksum: %v", ErrSnapshotCorrupt, err)
		}
		g := grid.New(nx, ny, nz, halo)
		crc := crc32.NewIEEE()
		for off := 0; off < len(g.Data); off += len(buf) / 4 {
			n := min(len(buf)/4, len(g.Data)-off)
			if _, err := io.ReadFull(r, buf[:4*n]); err != nil {
				return nil, fmt.Errorf("%w: payload: %v", ErrSnapshotCorrupt, err)
			}
			crc.Write(buf[:4*n])
			for j := 0; j < n; j++ {
				g.Data[off+j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
			}
		}
		if crc.Sum32() != wantCRC {
			return nil, fmt.Errorf("%w: field %q checksum mismatch", ErrSnapshotCorrupt, string(nameBytes))
		}
		out[string(nameBytes)] = g
	}
	return out, nil
}
