package verify

import (
	"fmt"
	"math"
	"math/rand"

	"wavetile/internal/grid"
	"wavetile/internal/model"
	"wavetile/internal/sparse"
	"wavetile/internal/wave"
	"wavetile/internal/wavelet"
)

// built is a scenario realized into a runnable propagator plus everything
// the oracle needs to re-run or re-decompose it (the dist schedule rebuilds
// the problem from the field functions).
type built struct {
	S    Scenario
	Prop Prop
	Ops  *wave.SparseOps
	Geom model.Geometry

	vp   model.FieldFunc
	vmax float64

	src *sparse.Points
	wav [][]float32

	acoustic *wave.Acoustic // non-nil for Acoustic: dist + final-field access
}

// build realizes the scenario with all its sources.
func (s Scenario) build() (*built, error) {
	return s.buildSources(nil)
}

// buildSources realizes the scenario keeping only the sources whose index
// appears in keep (nil keeps all). The full source set is always derived
// from the seed first, so subsets share exact coordinates and wavelets —
// the property the superposition check depends on.
func (s Scenario) buildSources(keep []int) (*built, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	b := &built{S: s}

	g := model.Geometry{
		Nx: s.Shape[0], Ny: s.Shape[1], Nz: s.Shape[2],
		Hx: s.Spacing[0], Hy: s.Spacing[1], Hz: s.Spacing[2],
		NBL: s.NBL,
	}
	b.vp, b.vmax = s.modelField(rng)

	var dt float64
	switch s.Physics {
	case Acoustic:
		dt = g.CriticalDtAcoustic(s.SO, b.vmax, model.DefaultCFL)
	case TTI:
		dt = g.CriticalDtTTI(s.SO, b.vmax, 0.24, model.DefaultCFL)
	case Elastic:
		dt = g.CriticalDtElastic(s.SO, b.vmax, model.DefaultCFL)
	}
	g.Dt = dt
	g.Nt = s.Steps
	b.Geom = g

	// Sources: the full set is drawn first, then optionally subset.
	allSrc, paths := s.drawSources(rng, g)
	amp := 1e3
	if s.Physics == Elastic {
		amp = 1e6
	}
	f0 := 2.0 / (float64(g.Nt) * g.Dt)
	allWav := make([][]float32, allSrc.N())
	for i := range allWav {
		allWav[i] = wavelet.RickerSeries(f0*(0.8+0.1*float64(i%4)), g.Nt, g.Dt, amp)
	}
	b.src, b.wav = allSrc, allWav
	if keep != nil {
		sub := &sparse.Points{}
		var subWav [][]float32
		var subPaths [][]sparse.Coord
		for _, i := range keep {
			sub.Coords = append(sub.Coords, allSrc.Coords[i])
			subWav = append(subWav, allWav[i])
			if paths != nil {
				subPaths = append(subPaths, paths[i])
			}
		}
		b.src, b.wav, paths = sub, subWav, subPaths
	}

	rec := s.drawReceivers(rng, g)

	halo := s.SO / 2
	switch s.Physics {
	case Acoustic:
		params := model.NewAcoustic(g, halo, b.vp)
		a, err := wave.NewAcoustic(wave.AcousticOpts{
			Params: params, SO: s.SO, Src: b.src, SrcWav: b.wav, Rec: rec,
			SincSource: s.SrcKind == SrcSinc, SincReceivers: s.RecSinc,
		})
		if err != nil {
			return nil, fmt.Errorf("build %s: %w", s, err)
		}
		b.Prop, b.Ops, b.acoustic = a, a.Ops, a
	case TTI:
		params := model.NewTTI(g, halo, b.vp,
			model.Homogeneous(0.24), model.Homogeneous(0.12),
			func(x, y, z float64) float64 { return 0.3 + 0.0005*z },
			func(x, y, z float64) float64 { return 0.2 + 0.0003*x },
		)
		w, err := wave.NewTTI(wave.TTIOpts{
			Params: params, SO: s.SO, Src: b.src, SrcWav: b.wav, Rec: rec,
			SincSource: s.SrcKind == SrcSinc,
		})
		if err != nil {
			return nil, fmt.Errorf("build %s: %w", s, err)
		}
		b.Prop, b.Ops = w, w.Ops
	case Elastic:
		vp := b.vp
		params := model.NewElastic(g, halo, vp,
			func(x, y, z float64) float64 { return vp(x, y, z) / 2 },
			model.Homogeneous(1800),
		)
		e, err := wave.NewElastic(wave.ElasticOpts{
			Params: params, SO: s.SO, Src: b.src, SrcWav: b.wav, Rec: rec,
			SincSource: s.SrcKind == SrcSinc,
		})
		if err != nil {
			return nil, fmt.Errorf("build %s: %w", s, err)
		}
		b.Prop, b.Ops = e, e.Ops
	}

	if s.SrcKind == SrcMoving {
		pts := paths
		at := func(t int) *sparse.Points {
			p := &sparse.Points{Coords: make([]sparse.Coord, len(pts))}
			for i := range pts {
				p.Coords[i] = pts[i][t]
			}
			return p
		}
		if err := b.Ops.SetMovingSources(g.Nx, g.Ny, g.Nz, g.Hx, g.Hy, g.Hz, at, b.wav); err != nil {
			return nil, fmt.Errorf("build moving %s: %w", s, err)
		}
	}
	return b, nil
}

// modelField draws the earth model, returning the field and its exact vmax
// (known by construction, so the CFL bound never under-resolves a layer).
func (s Scenario) modelField(rng *rand.Rand) (model.FieldFunc, float64) {
	zmax := float64(s.Shape[2]) * s.Spacing[2]
	switch s.Model {
	case ModelLayered:
		vals := []float64{1500, 2000 + 500*rng.Float64(), 2800 + 400*rng.Float64()}
		vmax := vals[2]
		return model.Layered(zmax, vals...), vmax
	case ModelGradient:
		v0, v1 := 1500.0, 2500+500*rng.Float64()
		return model.Gradient(v0, v1, zmax), v1
	default:
		v := 1500 + 1000*rng.Float64()
		return model.Homogeneous(v), v
	}
}

// placementBox returns the per-dimension usable index range [lo, hi] for a
// point set, in grid-index space.
func (s Scenario) placementBox(sinc bool) (lo, hi [3]float64) {
	for d := 0; d < 3; d++ {
		n := float64(s.Shape[d])
		l, h := 1.0, n-2
		if nbl := float64(s.NBL); nbl > 0 {
			l, h = math.Max(l, nbl), math.Min(h, n-1-nbl)
		}
		if sinc {
			// SincSupport needs u ∈ [SincRadius−1, n−SincRadius); keep a
			// point of slack on both sides.
			l, h = math.Max(l, float64(sparse.SincRadius)), math.Min(h, n-float64(sparse.SincRadius)-1)
		}
		if s.center {
			mid := math.Floor((n - 1) / 2)
			l, h = math.Max(l, mid-3), math.Min(h, mid+3)
		}
		if h < l {
			l, h = (n-1)/2, (n-1)/2
		}
		lo[d], hi[d] = l, h
	}
	return lo, hi
}

// drawSources draws the scenario's source positions (index space → physical)
// and, for moving sources, the per-timestep path of each. Scenarios that
// also run the dist schedule snap coordinates to quarter-cell offsets, so
// the slab decomposition's local re-basing is exact in floating point and
// the single-domain comparison stays bitwise.
func (s Scenario) drawSources(rng *rand.Rand, g model.Geometry) (*sparse.Points, [][]sparse.Coord) {
	lo, hi := s.placementBox(s.SrcKind == SrcSinc)
	h := [3]float64{g.Hx, g.Hy, g.Hz}
	drawU := func(d int) float64 {
		u := lo[d] + rng.Float64()*(hi[d]-lo[d])
		switch {
		case s.SrcKind == SrcOnGrid:
			u = math.Round(u)
		case s.Dist != nil || s.snap:
			// Quarter-cell snapping keeps downstream coordinate arithmetic
			// (slab re-basing, whole-cell translation) exact in FP, so the
			// bitwise contracts hold for those schedules and checks.
			u = math.Round(u*4) / 4
		}
		return u + float64(s.shift[d])
	}
	pts := &sparse.Points{}
	var paths [][]sparse.Coord
	for i := 0; i < s.NSrc; i++ {
		var c sparse.Coord
		for d := 0; d < 3; d++ {
			c[d] = drawU(d) * h[d]
		}
		pts.Coords = append(pts.Coords, c)
		if s.SrcKind == SrcMoving {
			var end sparse.Coord
			for d := 0; d < 3; d++ {
				end[d] = drawU(d) * h[d]
			}
			path := make([]sparse.Coord, g.Nt)
			for t := 0; t < g.Nt; t++ {
				frac := float64(t) / float64(g.Nt)
				for d := 0; d < 3; d++ {
					path[t][d] = c[d] + frac*(end[d]-c[d])
				}
			}
			paths = append(paths, path)
		}
	}
	if s.SrcKind != SrcMoving {
		paths = nil
	}
	return pts, paths
}

// drawReceivers draws the receiver set for the scenario's layout.
func (s Scenario) drawReceivers(rng *rand.Rand, g model.Geometry) *sparse.Points {
	if s.Rec == RecNone || s.NRec == 0 {
		return nil
	}
	lo, hi := s.placementBox(s.RecSinc)
	h := [3]float64{g.Hx, g.Hy, g.Hz}
	point := func() sparse.Coord {
		var c sparse.Coord
		for d := 0; d < 3; d++ {
			u := lo[d] + rng.Float64()*(hi[d]-lo[d])
			if s.snap {
				u = math.Round(u*4) / 4
			}
			c[d] = (u + float64(s.shift[d])) * h[d]
		}
		return c
	}
	switch s.Rec {
	case RecLine:
		return sparse.Line(s.NRec, point(), point())
	case RecScatter:
		pts := &sparse.Points{}
		for i := 0; i < s.NRec; i++ {
			pts.Coords = append(pts.Coords, point())
		}
		return pts
	case RecBoundary:
		// Exactly on hull faces: one coordinate pinned to index 0 or n−1
		// (exact in FP: spacings are dyadic-friendly), the rest interior.
		pts := &sparse.Points{}
		for i := 0; i < s.NRec; i++ {
			c := point()
			d := rng.Intn(3)
			if rng.Intn(2) == 0 {
				c[d] = 0
			} else {
				c[d] = float64(s.Shape[d]-1) * h[d]
			}
			pts.Coords = append(pts.Coords, c)
		}
		return pts
	}
	return nil
}

// snapshotFields deep-copies the propagator's wavefields.
func snapshotFields(p Prop) map[string]*grid.Grid {
	out := map[string]*grid.Grid{}
	for name, f := range p.Fields() {
		out[name] = f.Clone()
	}
	return out
}
