package verify

import (
	"fmt"

	"wavetile/internal/grid"
	"wavetile/internal/tiling"
)

// Metamorphic physics properties: invariants of the discretized wave
// equation that hold regardless of execution schedule, so they cross-check
// the numerics themselves rather than one schedule against another. Each
// check returns nil when the property holds; a non-nil error describes the
// first violation found.

// relTolSuper bounds the superposition residual. The full run and the sum of
// the split runs perform the same physics but accumulate rounding in a
// different order, so the comparison is FP-tolerance, not bitwise.
const relTolSuper = 1e-4

// CheckZeroSource asserts zero in ⇒ zero out: a scenario stripped of all its
// sources must leave every wavefield and every receiver trace exactly zero,
// under both the spatial and WTB schedules. Any nonzero value means a
// schedule fabricates energy (e.g. an injection mask touched out of turn).
func CheckZeroSource(s Scenario) error {
	restore := setWorkers(s.Workers)
	defer restore()
	b, err := s.buildSources([]int{})
	if err != nil {
		return err
	}
	run := func(name string, f func() error) error {
		b.Prop.Reset()
		if err := f(); err != nil {
			return err
		}
		for _, fn := range sortedFieldNames(b.Prop.Fields()) {
			if m := b.Prop.Fields()[fn].MaxAbs(); m != 0 {
				return fmt.Errorf("%s: zero-source %s run fabricated energy: field %q maxabs=%g", s, name, fn, m)
			}
		}
		traces, err := b.Ops.Receivers()
		if err != nil {
			return err
		}
		if traceScale(traces) != 0 {
			return fmt.Errorf("%s: zero-source %s run recorded nonzero traces", s, name)
		}
		return nil
	}
	if err := run("spatial", func() error {
		tiling.RunSpatial(b.Prop, s.WTB.BlockX, s.WTB.BlockY, true)
		return nil
	}); err != nil {
		return err
	}
	if err := run("wtb", func() error { return tiling.RunWTB(b.Prop, s.WTB) }); err != nil {
		return err
	}
	return run("wtb-pipelined", func() error { return tiling.RunWTBPipelined(b.Prop, s.WTB) })
}

// CheckSuperposition asserts source linearity: the wavefield of all sources
// together equals the pointwise sum of the wavefields of any disjoint source
// split, within FP tolerance. Requires ≥ 2 sources.
func CheckSuperposition(s Scenario) error {
	if s.NSrc < 2 {
		return fmt.Errorf("%s: superposition needs ≥ 2 sources", s)
	}
	restore := setWorkers(s.Workers)
	defer restore()

	var keepA, keepB []int
	for i := 0; i < s.NSrc; i++ {
		if i < s.NSrc/2 {
			keepA = append(keepA, i)
		} else {
			keepB = append(keepB, i)
		}
	}
	runOne := func(keep []int) (map[string]*grid.Grid, error) {
		b, err := s.buildSources(keep)
		if err != nil {
			return nil, err
		}
		tiling.RunSpatial(b.Prop, s.WTB.BlockX, s.WTB.BlockY, true)
		return snapshotFields(b.Prop), nil
	}
	full, err := runOne(nil)
	if err != nil {
		return err
	}
	partA, err := runOne(keepA)
	if err != nil {
		return err
	}
	partB, err := runOne(keepB)
	if err != nil {
		return err
	}
	for _, name := range sortedFieldNames(full) {
		f, a, bb := full[name], partA[name], partB[name]
		scale := f.MaxAbs()
		if scale == 0 {
			scale = 1
		}
		for x := 0; x < f.Nx; x++ {
			for y := 0; y < f.Ny; y++ {
				fr, ar, br := f.Row(x, y), a.Row(x, y), bb.Row(x, y)
				for z := range fr {
					sum := float64(ar[z]) + float64(br[z])
					if d := abs(float64(fr[z]) - sum); d > relTolSuper*scale {
						return fmt.Errorf(
							"%s: superposition broken: field %q point (%d,%d,%d): full=%v A+B=%v (diff %g > %g)",
							s, name, x, y, z, fr[z], sum, d, relTolSuper*scale)
					}
				}
			}
		}
	}
	return nil
}

// CheckTranslation asserts discrete translation invariance: on a homogeneous
// undamped model, shifting every source and receiver by a whole number of
// grid cells shifts the wavefield by exactly the same cells, bit for bit.
// The scenario must be homogeneous with NBL = 0 and static sources; drawn
// coordinates are quarter-cell snapped so the shifted coordinate arithmetic
// is exact. The wave's numerical support must stay clear of the boundary in
// both runs (the guard band is asserted, not assumed).
func CheckTranslation(s Scenario, shift [3]int) error {
	if s.Model != ModelHomogeneous || s.NBL != 0 {
		return fmt.Errorf("%s: translation invariance needs a homogeneous undamped model", s)
	}
	if s.SrcKind == SrcMoving {
		return fmt.Errorf("%s: translation invariance needs static sources", s)
	}
	restore := setWorkers(s.Workers)
	defer restore()

	s.snap = true
	s.center = true // bound the support: sources stay near the grid center
	base, err := s.build()
	if err != nil {
		return err
	}
	tiling.RunSpatial(base.Prop, s.WTB.BlockX, s.WTB.BlockY, true)
	baseFields := snapshotFields(base.Prop)
	baseRec, err := base.Ops.Receivers()
	if err != nil {
		return err
	}

	s2 := s
	s2.shift = shift
	moved, err := s2.build()
	if err != nil {
		return err
	}
	tiling.RunSpatial(moved.Prop, s.WTB.BlockX, s.WTB.BlockY, true)
	movedRec, err := moved.Ops.Receivers()
	if err != nil {
		return err
	}

	// Guard band: near the boundary the stencil reads halo zeros, which is
	// only translation-symmetric if the field is still exactly zero there.
	band := s.SO / 2
	for d := 0; d < 3; d++ {
		band += absInt(shift[d])
	}
	for _, name := range sortedFieldNames(baseFields) {
		f := baseFields[name]
		for x := 0; x < f.Nx; x++ {
			for y := 0; y < f.Ny; y++ {
				row := f.Row(x, y)
				for z := range row {
					if row[z] != 0 && nearBoundary(x, y, z, f.Nx, f.Ny, f.Nz, band) {
						return fmt.Errorf(
							"%s: translation check mis-sized: field %q nonzero at (%d,%d,%d) within guard band %d — use fewer steps or a larger grid",
							s, name, x, y, z, band)
					}
				}
			}
		}
	}

	for _, name := range sortedFieldNames(baseFields) {
		f := baseFields[name]
		m := moved.Prop.Fields()[name]
		for x := 0; x < f.Nx; x++ {
			x2 := x + shift[0]
			if x2 < 0 || x2 >= f.Nx {
				continue
			}
			for y := 0; y < f.Ny; y++ {
				y2 := y + shift[1]
				if y2 < 0 || y2 >= f.Ny {
					continue
				}
				for z := 0; z < f.Nz; z++ {
					z2 := z + shift[2]
					if z2 < 0 || z2 >= f.Nz {
						continue
					}
					if u := ULP32(f.At(x, y, z), m.At(x2, y2, z2)); u != 0 {
						return fmt.Errorf(
							"%s: translation invariance broken: field %q base(%d,%d,%d)=%v shifted(%d,%d,%d)=%v (%d ULP)",
							s, name, x, y, z, f.At(x, y, z), x2, y2, z2, m.At(x2, y2, z2), u)
					}
				}
			}
		}
	}

	// Receivers shifted with the sources see the identical waveform.
	if len(baseRec) != len(movedRec) {
		return fmt.Errorf("%s: translation changed trace length %d → %d", s, len(baseRec), len(movedRec))
	}
	for t := range baseRec {
		for r := range baseRec[t] {
			if u := ULP32(baseRec[t][r], movedRec[t][r]); u != 0 {
				return fmt.Errorf(
					"%s: translation invariance broken in traces: t=%d rec=%d base=%v shifted=%v (%d ULP)",
					s, t, r, baseRec[t][r], movedRec[t][r], u)
			}
		}
	}
	return nil
}

// CheckWorkerInvariance asserts that the parallel worker count never changes
// a single bit: blocks partition the grid disjointly and every point's
// arithmetic is worker-independent, so 1 worker and N workers must agree
// exactly, under both schedules.
func CheckWorkerInvariance(s Scenario, workers []int) error {
	b, err := s.build()
	if err != nil {
		return err
	}
	type sched struct {
		name string
		run  func() error
	}
	scheds := []sched{
		{"spatial", func() error {
			tiling.RunSpatial(b.Prop, s.WTB.BlockX, s.WTB.BlockY, true)
			return nil
		}},
		{"wtb", func() error { return tiling.RunWTB(b.Prop, s.WTB) }},
		{"wtb-pipelined", func() error { return tiling.RunWTBPipelined(b.Prop, s.WTB) }},
	}
	for _, sc := range scheds {
		var ref map[string]*grid.Grid
		for _, w := range append([]int{1}, workers...) {
			restore := setWorkers(w)
			b.Prop.Reset()
			err := sc.run()
			restore()
			if err != nil {
				return err
			}
			if ref == nil {
				ref = snapshotFields(b.Prop)
				continue
			}
			if d, ok := firstFieldDivergence(sc.name, ref, b.Prop.Fields()); ok {
				return fmt.Errorf("%s: %s schedule depends on worker count (%d workers): %s", s, sc.name, w, d)
			}
		}
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func nearBoundary(x, y, z, nx, ny, nz, band int) bool {
	return x < band || x >= nx-band ||
		y < band || y >= ny-band ||
		z < band || z >= nz-band
}
