package verify

import (
	"testing"

	"wavetile/internal/tiling"
)

// The metamorphic properties run over a small fixed-seed scenario slice:
// their value is the invariant itself, not the sampling breadth (the oracle
// test owns breadth), so a deterministic handful keeps them fast and stable.

func metamorphicScenarios(t *testing.T, n int) []Scenario {
	t.Helper()
	return Generate(424242, n)
}

// TestZeroSourceYieldsZeroField: no sources in, no energy out, under both
// schedules.
func TestZeroSourceYieldsZeroField(t *testing.T) {
	for _, s := range metamorphicScenarios(t, 6) {
		if err := CheckZeroSource(s); err != nil {
			t.Error(err)
		}
	}
}

// TestSourceSuperposition: the discretized wave equation is linear in its
// sources; a run with all sources must equal the sum of runs with any
// disjoint split, within FP tolerance.
func TestSourceSuperposition(t *testing.T) {
	checked := 0
	for _, s := range metamorphicScenarios(t, 12) {
		if s.NSrc < 2 {
			continue
		}
		if err := CheckSuperposition(s); err != nil {
			t.Error(err)
		}
		if checked++; checked == 4 {
			break
		}
	}
	if checked < 2 {
		t.Fatalf("only %d scenarios had ≥ 2 sources; widen the sample", checked)
	}
}

// TestTranslationInvariance: shifting sources and receivers by whole cells
// on a homogeneous undamped grid shifts the wavefield bit-for-bit. The
// scenario is sized so the numerical support stays clear of the boundary
// (CheckTranslation asserts the guard band rather than assuming it).
func TestTranslationInvariance(t *testing.T) {
	s := Scenario{
		Seed:    9,
		Physics: Acoustic,
		SO:      4,
		Shape:   [3]int{44, 44, 44},
		Spacing: [3]float64{8, 8, 8},
		NBL:     0,
		Steps:   5,
		Model:   ModelHomogeneous,
		SrcKind: SrcOffGrid,
		NSrc:    2,
		Rec:     RecScatter,
		NRec:    3,
		Workers: 2,
		WTB:     tiling.Config{TT: 3, TileX: 12, TileY: 12, BlockX: 6, BlockY: 6},
	}
	for _, shift := range [][3]int{{2, 1, 2}, {-2, 3, 0}} {
		if err := CheckTranslation(s, shift); err != nil {
			t.Error(err)
		}
	}
}

// TestWorkerCountInvariance: the worker pool width must never change a bit
// — disjoint blocks, identical per-point arithmetic — under either schedule.
func TestWorkerCountInvariance(t *testing.T) {
	for _, s := range metamorphicScenarios(t, 4) {
		if err := CheckWorkerInvariance(s, []int{2, 5}); err != nil {
			t.Error(err)
		}
	}
}
