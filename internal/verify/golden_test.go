package verify

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var goldenUpdate = flag.Bool("golden.update", false,
	"regenerate the committed golden regression corpus (make golden)")

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

// TestGoldenCorpus compares every corpus case's receiver traces bit-for-bit
// against the committed records. A failure means the numerics drifted: if the
// drift is intentional (e.g. a deliberate kernel change), regenerate with
// `make golden` and commit the diff with an explanation; if not, it is a
// regression.
func TestGoldenCorpus(t *testing.T) {
	for _, c := range GoldenCases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			got, err := RunGolden(c)
			if err != nil {
				t.Fatalf("golden case failed to run: %v", err)
			}
			path := goldenPath(c.Name)
			if *goldenUpdate {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("regenerated %s", path)
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no committed record for case %q (run `make golden` and commit %s): %v",
					c.Name, path, err)
			}
			var want GoldenRecord
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt golden record %s: %v", path, err)
			}
			if diff := DiffGolden(&want, got); diff != "" {
				t.Errorf("numerical drift in %q: %s\n(if intentional, regenerate with `make golden` and explain the change in the commit)",
					c.Name, diff)
			}
		})
	}
}

// TestGoldenCasesAreOracleClean ensures the corpus scenarios themselves
// satisfy the schedule-equivalence contract — a golden record of a broken
// configuration would enshrine the breakage.
func TestGoldenCasesAreOracleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus oracle sweep skipped in -short")
	}
	for _, c := range GoldenCases() {
		rep, err := RunOracle(c.Scenario)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if !rep.OK() {
			t.Errorf("%s: %s", c.Name, rep)
		}
	}
}
