package verify

import "math"

// ULP32 returns the distance between two float32 values in units of last
// place: the number of representable float32 values strictly between them,
// plus one. Equal bits give 0. The comparison uses the ordered-bits
// transform (sign-magnitude → biased lexicographic), so it is monotone
// across zero. NaN on either side saturates to MaxInt64.
func ULP32(a, b float32) int64 {
	if a == b {
		return 0 // also covers +0 vs −0
	}
	ia, ok1 := orderedBits32(a)
	ib, ok2 := orderedBits32(b)
	if !ok1 || !ok2 {
		return math.MaxInt64
	}
	d := ia - ib
	if d < 0 {
		d = -d
	}
	return d
}

// orderedBits32 maps a float32 to an integer whose ordering matches the
// real-number ordering of the floats (negatives mirrored below zero).
// Returns ok=false for NaN.
func orderedBits32(f float32) (int64, bool) {
	if f != f {
		return 0, false
	}
	bits := int64(int32(math.Float32bits(f)))
	if bits < 0 {
		bits = int64(math.MinInt32) - bits // mirror negative range
	}
	return bits, true
}
