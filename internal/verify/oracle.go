package verify

import (
	"fmt"
	"strings"

	"wavetile/internal/dist"
	"wavetile/internal/grid"
	"wavetile/internal/par"
	"wavetile/internal/tiling"
)

// Tolerances of the equivalence contract. The fused schedules (spatial,
// WTB, dist) perform identical per-point arithmetic and must agree to the
// bit; only the Listing-1 baseline — which injects and samples with a
// different operation order — is compared within a relative tolerance
// (matching the hand-written equivalence tests).
const (
	relTolFields = 5e-5
	relTolTraces = 5e-5
)

// Divergence pinpoints the first disagreement between a schedule and the
// reference, in scan order.
type Divergence struct {
	Schedule string // which schedule diverged
	Field    string // wavefield name, or "receivers"
	// TimeTile is the first time tile [T0, T1) whose end-state differs
	// (WTB checkpoint replay); T0 = −1 when only the final state was
	// compared.
	T0, T1 int
	// First differing grid point in scan order (x, y, z), or trace (t, r, 0).
	X, Y, Z   int
	Want, Got float32
	ULP       int64 // distance in units of last place (MaxInt64 for NaN)
}

func (d Divergence) String() string {
	where := fmt.Sprintf("point (%d,%d,%d)", d.X, d.Y, d.Z)
	if d.Field == "receivers" {
		where = fmt.Sprintf("trace sample t=%d rec=%d", d.X, d.Y)
	}
	tile := ""
	if d.T0 >= 0 {
		tile = fmt.Sprintf(" first divergent time tile [%d,%d)", d.T0, d.T1)
	}
	return fmt.Sprintf("%s: field %q%s %s: want %v got %v (%d ULP)",
		d.Schedule, d.Field, tile, where, d.Want, d.Got, d.ULP)
}

// Report is the oracle verdict for one scenario.
type Report struct {
	Scenario    Scenario
	Schedules   []string // schedules actually run
	Divergences []Divergence
}

// OK reports whether every schedule agreed with the reference.
func (r *Report) OK() bool { return len(r.Divergences) == 0 }

func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("%s: ok (%s)", r.Scenario, strings.Join(r.Schedules, ", "))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d divergence(s)", r.Scenario, len(r.Divergences))
	for _, d := range r.Divergences {
		b.WriteString("\n  ")
		b.WriteString(d.String())
	}
	return b.String()
}

// setWorkers pins the par pool width for a scenario, returning a restore
// function. par.Workers is read at the start of every parallel region, so
// swapping it between runs is race-free.
func setWorkers(n int) func() {
	prev := par.Workers
	par.Workers = n
	return func() { par.Workers = prev }
}

// RunOracle executes one scenario through every applicable schedule and
// checks the equivalence contract. An error means the scenario could not be
// run at all (a harness bug); disagreements are reported in the Report.
func RunOracle(s Scenario) (*Report, error) {
	restore := setWorkers(s.Workers)
	defer restore()

	rep := &Report{Scenario: s, Schedules: s.Schedules()}

	// Reference: the fused spatial schedule (the paper's precomputed scheme
	// in its simplest legal ordering).
	b, err := s.build()
	if err != nil {
		return nil, err
	}
	tiling.RunSpatial(b.Prop, s.WTB.BlockX, s.WTB.BlockY, true)
	refFields := snapshotFields(b.Prop)
	refRec, err := b.Ops.Receivers()
	if err != nil {
		return nil, fmt.Errorf("reference receivers: %w", err)
	}
	if name, ok := fieldsHaveNaN(refFields); ok {
		return nil, fmt.Errorf("%s: reference run produced NaN in field %q (unstable scenario)", s, name)
	}
	if s.NSrc > 0 && !fieldsNonZero(refFields) {
		return nil, fmt.Errorf("%s: reference run is vacuous — sources injected but all fields are zero", s)
	}

	// Listing-1 baseline: unfused sparse operators, FP-tolerance contract.
	b.Prop.Reset()
	tiling.RunSpatial(b.Prop, s.WTB.BlockX, s.WTB.BlockY, false)
	rep.addFieldsClose("spatial-unfused", refFields, b.Prop.Fields())
	baseRec, err := b.Ops.Receivers()
	if err != nil {
		return nil, fmt.Errorf("unfused receivers: %w", err)
	}
	rep.addTracesClose("spatial-unfused", refRec, baseRec)

	// WTB: bitwise contract; on divergence, replay time tile by time tile
	// against spatial checkpoints for a first-divergence report.
	b.Prop.Reset()
	if err := tiling.RunWTB(b.Prop, s.WTB); err != nil {
		return nil, fmt.Errorf("wtb: %w", err)
	}
	wtbDiverged := false
	if d, ok := firstFieldDivergence("wtb", refFields, b.Prop.Fields()); ok {
		wtbDiverged = true
		if dd, derr := diagnoseWTB(b, s); derr == nil && dd != nil {
			d = *dd
		}
		rep.Divergences = append(rep.Divergences, d)
	}
	wtbRec, err := b.Ops.Receivers()
	if err != nil {
		return nil, fmt.Errorf("wtb receivers: %w", err)
	}
	// Receiver traces follow the fields bitwise; skip the redundant report
	// when the fields already diverged.
	if !wtbDiverged {
		rep.addTracesBitwise("wtb", refRec, wtbRec)
	}

	// Pipelined WTB: the task-graph runtime must reproduce the reference
	// bitwise under the same contract as barriered WTB — any divergence here
	// means a missing or wrong dependency edge let a tile read a neighbour
	// too early (see TestOracleCatchesDroppedEdges for the deliberate case).
	b.Prop.Reset()
	if err := tiling.RunWTBPipelined(b.Prop, s.WTB); err != nil {
		return nil, fmt.Errorf("wtb-pipelined: %w", err)
	}
	pipeDiverged := false
	if d, ok := firstFieldDivergence("wtb-pipelined", refFields, b.Prop.Fields()); ok {
		pipeDiverged = true
		if dd, derr := diagnosePipelined(b, s); derr == nil && dd != nil {
			d = *dd
		}
		rep.Divergences = append(rep.Divergences, d)
	}
	pipeRec, err := b.Ops.Receivers()
	if err != nil {
		return nil, fmt.Errorf("wtb-pipelined receivers: %w", err)
	}
	if !pipeDiverged {
		rep.addTracesBitwise("wtb-pipelined", refRec, pipeRec)
	}

	// dist: slab decomposition, bitwise against the reference final field.
	if s.Dist != nil {
		if b.acoustic == nil {
			return nil, fmt.Errorf("%s: dist scenario is not acoustic", s)
		}
		cluster, err := dist.NewAcousticCluster(*s.Dist, b.Geom, s.SO, b.vp, b.src, b.wav)
		if err != nil {
			return nil, fmt.Errorf("dist cluster: %w", err)
		}
		if err := cluster.Run(); err != nil {
			return nil, fmt.Errorf("dist run: %w", err)
		}
		got := cluster.GatherWavefield()
		// Compare against the clean reference snapshot (b.Prop's live buffers
		// were just mutated by the WTB run), interior only: the gathered grid
		// carries no halo.
		refName := fmt.Sprintf("u%d", b.Geom.Nt&1)
		if d, ok := firstGridDivergence("dist", refName, refFields[refName], got); ok {
			rep.Divergences = append(rep.Divergences, d)
		}
	}
	return rep, nil
}

// fieldsHaveNaN scans a field set for non-finite values.
func fieldsHaveNaN(fields map[string]*grid.Grid) (string, bool) {
	for _, name := range sortedFieldNames(fields) {
		if fields[name].HasNaN() {
			return name, true
		}
	}
	return "", false
}

// fieldsNonZero reports whether any field holds a nonzero value.
func fieldsNonZero(fields map[string]*grid.Grid) bool {
	for _, f := range fields {
		if f.MaxAbs() > 0 {
			return true
		}
	}
	return false
}

// firstFieldDivergence compares two field sets bitwise, returning the first
// divergence in (field, scan) order.
func firstFieldDivergence(schedule string, want, got map[string]*grid.Grid) (Divergence, bool) {
	for _, name := range sortedFieldNames(want) {
		if d, ok := firstGridDivergence(schedule, name, want[name], got[name]); ok {
			return d, true
		}
	}
	return Divergence{}, false
}

// firstGridDivergence returns the first interior point, in scan order, where
// the two grids' bits differ. The grids may have different halo widths; only
// the interior is compared.
func firstGridDivergence(schedule, field string, want, got *grid.Grid) (Divergence, bool) {
	for x := 0; x < want.Nx; x++ {
		for y := 0; y < want.Ny; y++ {
			wr, gr := want.Row(x, y), got.Row(x, y)
			for z := 0; z < want.Nz; z++ {
				if u := ULP32(wr[z], gr[z]); u != 0 {
					return Divergence{
						Schedule: schedule, Field: field, T0: -1, T1: -1,
						X: x, Y: y, Z: z, Want: wr[z], Got: gr[z], ULP: u,
					}, true
				}
			}
		}
	}
	return Divergence{}, false
}

// addFieldsClose asserts FP-tolerance agreement (the unfused-baseline
// contract): the worst pointwise difference must stay below relTolFields of
// the field's dynamic range.
func (r *Report) addFieldsClose(schedule string, want, got map[string]*grid.Grid) {
	for _, name := range sortedFieldNames(want) {
		w, g := want[name], got[name]
		scale := w.MaxAbs()
		if scale == 0 {
			scale = 1
		}
		if diff, x, y, z := w.MaxAbsDiff(g); diff > relTolFields*scale {
			r.Divergences = append(r.Divergences, Divergence{
				Schedule: schedule, Field: name, T0: -1, T1: -1,
				X: x, Y: y, Z: z, Want: w.At(x, y, z), Got: g.At(x, y, z),
				ULP: ULP32(w.At(x, y, z), g.At(x, y, z)),
			})
			return
		}
	}
}

// traceScale returns the maximum absolute sample across a trace block.
func traceScale(tr [][]float32) float64 {
	m := 0.0
	for _, row := range tr {
		for _, v := range row {
			a := float64(v)
			if a < 0 {
				a = -a
			}
			if a > m {
				m = a
			}
		}
	}
	return m
}

// addTracesClose asserts FP-tolerance agreement of receiver traces.
func (r *Report) addTracesClose(schedule string, want, got [][]float32) {
	scale := traceScale(want)
	if scale == 0 {
		scale = 1
	}
	r.compareTraces(schedule, want, got, relTolTraces*scale)
}

// addTracesBitwise asserts bitwise agreement of receiver traces.
func (r *Report) addTracesBitwise(schedule string, want, got [][]float32) {
	r.compareTraces(schedule, want, got, 0)
}

func (r *Report) compareTraces(schedule string, want, got [][]float32, tol float64) {
	if len(want) != len(got) {
		r.Divergences = append(r.Divergences, Divergence{
			Schedule: schedule, Field: "receivers", T0: -1, T1: -1,
			X: min(len(want), len(got)), ULP: -1,
		})
		return
	}
	for t := range want {
		for rec := range want[t] {
			w, g := want[t][rec], got[t][rec]
			d := float64(w) - float64(g)
			if d < 0 {
				d = -d
			}
			if d > tol || (tol == 0 && ULP32(w, g) != 0) {
				r.Divergences = append(r.Divergences, Divergence{
					Schedule: schedule, Field: "receivers", T0: -1, T1: -1,
					X: t, Y: rec, Want: w, Got: g, ULP: ULP32(w, g),
				})
				return
			}
		}
	}
}

// diagnoseWTB localizes a WTB divergence in time: it re-runs the fused
// spatial schedule capturing a checkpoint at every time-tile boundary, then
// replays WTB one time tile at a time (RunWTBRange) until a checkpoint
// mismatches. The returned divergence carries the offending tile range and
// the first differing point inside it. WTB state is only globally consistent
// at time-tile boundaries, which is exactly where the checkpoints sit.
func diagnoseWTB(b *built, s Scenario) (*Divergence, error) {
	// Checkpoints of the spatial schedule at t = TT, 2TT, …, nt.
	nx, ny := b.Prop.GridShape()
	off := b.Prop.MaxPhaseOffset()
	full := grid.Region{X0: 0, X1: nx + off, Y0: 0, Y1: ny + off}
	nt := b.Prop.Steps()
	b.Prop.Reset()
	b.Prop.SetBlocks(s.WTB.BlockX, s.WTB.BlockY)
	ckpts := map[int]map[string]*grid.Grid{}
	for t := 0; t < nt; t++ {
		b.Prop.Step(t, full, true)
		if next := t + 1; next%s.WTB.TT == 0 || next == nt {
			ckpts[next] = snapshotFields(b.Prop)
		}
	}

	b.Prop.Reset()
	for t0 := 0; t0 < nt; t0 += s.WTB.TT {
		t1 := min(t0+s.WTB.TT, nt)
		if err := tiling.RunWTBRange(b.Prop, s.WTB, t0, t1); err != nil {
			return nil, err
		}
		if d, ok := firstFieldDivergence("wtb", ckpts[t1], b.Prop.Fields()); ok {
			d.T0, d.T1 = t0, t1
			return &d, nil
		}
	}
	return nil, nil // final states match on replay (flaky divergence)
}

// diagnosePipelined is diagnoseWTB for the task-graph runtime: the replay
// uses RunWTBPipelinedRange, so a scheduling (rather than tiling) defect is
// localized to its first divergent time tile. Divergences caused by an
// actual ordering race may not reproduce on replay (the schedule is
// nondeterministic at Workers > 1); the original final-state divergence is
// then reported as-is.
func diagnosePipelined(b *built, s Scenario) (*Divergence, error) {
	nx, ny := b.Prop.GridShape()
	off := b.Prop.MaxPhaseOffset()
	full := grid.Region{X0: 0, X1: nx + off, Y0: 0, Y1: ny + off}
	nt := b.Prop.Steps()
	b.Prop.Reset()
	b.Prop.SetBlocks(s.WTB.BlockX, s.WTB.BlockY)
	ckpts := map[int]map[string]*grid.Grid{}
	for t := 0; t < nt; t++ {
		b.Prop.Step(t, full, true)
		if next := t + 1; next%s.WTB.TT == 0 || next == nt {
			ckpts[next] = snapshotFields(b.Prop)
		}
	}

	b.Prop.Reset()
	for t0 := 0; t0 < nt; t0 += s.WTB.TT {
		t1 := min(t0+s.WTB.TT, nt)
		if err := tiling.RunWTBPipelinedRange(b.Prop, s.WTB, t0, t1); err != nil {
			return nil, err
		}
		if d, ok := firstFieldDivergence("wtb-pipelined", ckpts[t1], b.Prop.Fields()); ok {
			d.T0, d.T1 = t0, t1
			return &d, nil
		}
	}
	return nil, nil
}
