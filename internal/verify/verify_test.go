package verify

import (
	"flag"
	"reflect"
	"testing"
	"time"

	"wavetile/internal/tiling"
)

var (
	verifySeed = flag.Int64("verify.seed", 0,
		"master seed for the differential-verification scenarios (0 = derive from time)")
	verifyN = flag.Int("verify.n", 50,
		"number of scenarios the schedule-equivalence oracle runs")
)

// masterSeed resolves the seed for this run and logs the exact replay
// command, so any CI failure reproduces locally with one copy-paste.
func masterSeed(t *testing.T, name string) int64 {
	t.Helper()
	seed := *verifySeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	t.Logf("replay: go test ./internal/verify -run %s -verify.seed=%d -verify.n=%d", name, seed, *verifyN)
	return seed
}

// TestVerifyScenarios is the tentpole oracle run: n random scenarios, each
// executed through every applicable schedule and checked against the
// equivalence contract, with post-hoc assertions that the drawn set actually
// covered the full claim surface.
func TestVerifyScenarios(t *testing.T) {
	n := *verifyN
	if testing.Short() && n > 16 {
		n = 16
	}
	if n < 16 {
		t.Fatalf("-verify.n=%d below the 16-scenario coverage grid", n)
	}
	seed := masterSeed(t, "TestVerifyScenarios")
	scenarios := Generate(seed, n)

	physSeen := map[Physics]bool{}
	srcSeen := map[SourceKind]bool{}
	schedSeen := map[string]bool{}
	thinSeen := false
	for _, s := range scenarios {
		rep, err := RunOracle(s)
		if err != nil {
			t.Fatalf("oracle could not run scenario: %v", err)
		}
		if !rep.OK() {
			t.Errorf("%s", rep)
		}
		physSeen[s.Physics] = true
		srcSeen[s.SrcKind] = true
		for _, sc := range rep.Schedules {
			schedSeen[sc] = true
		}
		if min(s.Shape[0], min(s.Shape[1], s.Shape[2])) < 10 {
			thinSeen = true
		}
	}

	for _, p := range []Physics{Acoustic, TTI, Elastic} {
		if !physSeen[p] {
			t.Errorf("coverage hole: propagator %s never drawn", p)
		}
	}
	for _, k := range []SourceKind{SrcOnGrid, SrcOffGrid, SrcSinc, SrcMoving} {
		if !srcSeen[k] {
			t.Errorf("coverage hole: source kind %s never drawn", k)
		}
	}
	for _, sc := range []string{"spatial-unfused", "spatial-fused", "wtb", "dist"} {
		if !schedSeen[sc] {
			t.Errorf("coverage hole: schedule %s never run", sc)
		}
	}
	if !thinSeen {
		t.Error("coverage hole: no degenerate thin grid drawn")
	}
}

// TestVerifySeedReplay pins the replayability contract: the same master seed
// must reproduce the exact same scenario sequence, and different seeds must
// not.
func TestVerifySeedReplay(t *testing.T) {
	a := Generate(12345, 24)
	b := Generate(12345, 24)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate is not deterministic for a fixed seed")
	}
	c := Generate(54321, 24)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different master seeds produced identical scenarios")
	}
	// A prefix of a longer run equals a shorter run: scenario i depends only
	// on the master seed and i, so -verify.n can be raised without moving
	// previously drawn scenarios.
	d := Generate(12345, 48)
	if !reflect.DeepEqual(a, d[:24]) {
		t.Fatal("raising n changed previously drawn scenarios")
	}
}

// faultScenario is a fixed configuration on which an injected wavefront
// off-by-one must produce a detectable divergence: multiple space tiles,
// multiple time tiles, and enough steps for the wave to cross tile seams.
// Workers is pinned to 1: an under-skewed schedule is a genuine data race
// with parallel tiles, so under `-race` the detector (correctly, but
// nondeterministically) fires on the *injected* fault instead of letting
// the oracle report it. Serial execution keeps the stale reads — tiles
// still read seam columns a lexicographically earlier tile has already
// advanced — so the divergence is deterministic and the test exercises the
// oracle, not the race detector.
func faultScenario() Scenario {
	return Scenario{
		Seed:    777,
		Physics: Acoustic,
		SO:      4,
		Shape:   [3]int{28, 28, 28},
		Spacing: [3]float64{10, 10, 10},
		NBL:     2,
		Steps:   12,
		Model:   ModelHomogeneous,
		SrcKind: SrcOffGrid,
		NSrc:    2,
		Rec:     RecLine,
		NRec:    3,
		Workers: 1,
		WTB:     tiling.Config{TT: 6, TileX: 12, TileY: 12, BlockX: 6, BlockY: 6},
	}
}

// TestOracleCatchesInjectedWTBFault proves the oracle is not vacuous: with a
// deliberate off-by-one injected into the WTB wavefront offset (skew − 1,
// which makes tiles read columns a neighbouring tile has not yet updated),
// the oracle must flag a WTB divergence and localize it to a time tile and
// grid point with a ULP distance.
func TestOracleCatchesInjectedWTBFault(t *testing.T) {
	s := faultScenario()

	// Sanity: the same scenario passes with the fault off.
	rep, err := RunOracle(s)
	if err != nil {
		t.Fatalf("fault scenario does not run: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("fault scenario diverges before fault injection: %s", rep)
	}

	tiling.FaultSkewDelta = -1
	defer func() { tiling.FaultSkewDelta = 0 }()
	rep, err = RunOracle(s)
	if err != nil {
		t.Fatalf("oracle errored under injected fault (want divergence report): %v", err)
	}
	if rep.OK() {
		t.Fatal("oracle missed the injected wavefront off-by-one")
	}
	var wtb *Divergence
	for i := range rep.Divergences {
		if rep.Divergences[i].Schedule == "wtb" {
			wtb = &rep.Divergences[i]
			break
		}
	}
	if wtb == nil {
		t.Fatalf("no WTB divergence in report: %s", rep)
	}
	if wtb.T0 < 0 || wtb.T1 <= wtb.T0 {
		t.Errorf("divergence not localized to a time tile: %s", wtb)
	}
	if wtb.ULP == 0 {
		t.Errorf("divergence carries no ULP distance: %s", wtb)
	}
	t.Logf("injected fault caught: %s", wtb)
}

// TestOverSkewStaysBitwise documents the asymmetry of the skew bound: one
// extra cell of skew wastes work but violates no dependency, so the oracle
// must stay green — proof that the legal skew is exactly tight from below.
func TestOverSkewStaysBitwise(t *testing.T) {
	s := faultScenario()
	tiling.FaultSkewDelta = +1
	defer func() { tiling.FaultSkewDelta = 0 }()
	rep, err := RunOracle(s)
	if err != nil {
		t.Fatalf("oracle errored under over-skew: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("over-skew (a legal, conservative schedule) diverged: %s", rep)
	}
}
