package verify

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"wavetile/internal/grid"
)

func randomFields(rng *rand.Rand) map[string]*grid.Grid {
	fields := map[string]*grid.Grid{}
	for _, name := range []string{"u0", "u1", "vx"} {
		g := grid.New(5+rng.Intn(4), 4+rng.Intn(4), 6+rng.Intn(4), 1+rng.Intn(3))
		for i := range g.Data {
			g.Data[i] = float32(rng.NormFloat64())
		}
		// Halo values travel too: resume correctness depends on the full
		// padded buffer, and denormals/negative zero must survive.
		g.Data[0] = float32(math.Copysign(0, -1))
		g.Data[1] = math.Float32frombits(1) // smallest denormal
		fields[name] = g
	}
	return fields
}

func TestSnapshotRoundTripBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fields := randomFields(rng)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, fields); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(fields) {
		t.Fatalf("decoded %d fields, want %d", len(got), len(fields))
	}
	for name, want := range fields {
		g, ok := got[name]
		if !ok {
			t.Fatalf("field %q missing after round trip", name)
		}
		if !g.SameShape(want) {
			t.Fatalf("field %q shape changed", name)
		}
		for i := range want.Data {
			if math.Float32bits(g.Data[i]) != math.Float32bits(want.Data[i]) {
				t.Fatalf("field %q flat index %d: %x != %x",
					name, i, math.Float32bits(g.Data[i]), math.Float32bits(want.Data[i]))
			}
		}
	}
}

func TestSnapshotDeterministicBytes(t *testing.T) {
	fields := randomFields(rand.New(rand.NewSource(3)))
	var a, b bytes.Buffer
	if err := WriteSnapshot(&a, fields); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&b, fields); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same field set encoded to different bytes")
	}
}

func TestSnapshotDetectsCorruptionAndTruncation(t *testing.T) {
	fields := randomFields(rand.New(rand.NewSource(11)))
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, fields); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	// Flip one payload byte near the end (past all headers).
	bad := append([]byte(nil), enc...)
	bad[len(bad)-5] ^= 0x40
	if _, err := ReadSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("corrupted payload decoded: err = %v", err)
	}

	// Truncate mid-payload.
	if _, err := ReadSnapshot(bytes.NewReader(enc[:len(enc)/2])); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("truncated snapshot decoded: err = %v", err)
	}

	// Wrong magic.
	bad = append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, err := ReadSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("bad magic decoded: err = %v", err)
	}
}
