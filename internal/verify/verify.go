// Package verify is the differential-testing subsystem of the repository: a
// generator-driven oracle for the paper's central correctness claim (§II)
// that precomputed sparse operators plus wave-front temporal blocking yield
// wavefields identical to the spatially-blocked baseline.
//
// The hand-picked configurations of the package-level equivalence tests
// (internal/wave, internal/dist) each pin one corner of the configuration
// space; this package explores the whole space:
//
//   - a seeded random scenario generator (Generate) draws propagator ×
//     space order × grid shape (including degenerate thin grids) × tile and
//     block shape × worker count × source kind (on-grid, off-grid trilinear,
//     Hicks sinc, moving) × receiver layout × damping;
//   - a schedule-equivalence oracle (RunOracle) runs every scenario through
//     the unfused-spatial baseline, the fused-spatial schedule, wave-front
//     temporal blocking, and — where the decomposition admits it — the
//     internal/dist slab schedules, asserting the paper's contract: bitwise
//     equality between the fused schedules, FP tolerance against the
//     Listing-1 baseline. Divergences come with first-divergence
//     diagnostics: the first time tile that differs, the first grid point in
//     scan order, and the ULP distance;
//   - metamorphic physics properties (metamorphic.go) cross-check the
//     numerics against invariants no schedule reordering may break: source
//     superposition linearity, grid-translation invariance, zero-source ⇒
//     zero-field, worker-count invariance.
//
// Every scenario carries the sub-seed it was drawn with, so any CI failure
// replays locally with
//
//	go test ./internal/verify -run TestVerify -verify.seed=N
package verify

import (
	"fmt"
	"math/rand"

	"wavetile/internal/dist"
	"wavetile/internal/grid"
	"wavetile/internal/tiling"
)

// Physics selects the propagator, mirroring the paper's three models.
type Physics int

// The three propagators.
const (
	Acoustic Physics = iota
	TTI
	Elastic
)

func (p Physics) String() string {
	switch p {
	case Acoustic:
		return "acoustic"
	case TTI:
		return "tti"
	case Elastic:
		return "elastic"
	}
	return fmt.Sprintf("physics(%d)", int(p))
}

// SourceKind selects how sources sit relative to the grid.
type SourceKind int

// The source kinds the paper's scheme must be oblivious to.
const (
	SrcOnGrid  SourceKind = iota // coordinates exactly on grid points
	SrcOffGrid                   // off-the-grid, trilinear interpolation
	SrcSinc                      // off-the-grid, Kaiser-windowed sinc (Hicks)
	SrcMoving                    // towed: a new off-the-grid position per step
)

func (k SourceKind) String() string {
	return [...]string{"on-grid", "trilinear", "sinc", "moving"}[k]
}

// RecLayout selects the receiver geometry.
type RecLayout int

// Receiver layouts, including the boundary-hugging one that exercises
// support clamping on the hull faces.
const (
	RecNone RecLayout = iota
	RecLine
	RecScatter
	RecBoundary
)

func (l RecLayout) String() string {
	return [...]string{"none", "line", "scatter", "boundary"}[l]
}

// ModelKind selects the earth-model preset.
type ModelKind int

// Earth-model presets with generator-known vmax.
const (
	ModelHomogeneous ModelKind = iota
	ModelLayered
	ModelGradient
)

func (m ModelKind) String() string {
	return [...]string{"homogeneous", "layered", "gradient"}[m]
}

// Scenario is one drawn configuration. Coordinates, wavelets and model
// values are derived deterministically from Seed at build time, so the
// struct both describes and fully reproduces a run.
type Scenario struct {
	Index int
	Seed  int64

	Physics Physics
	SO      int
	Shape   [3]int
	Spacing [3]float64
	NBL     int
	Steps   int
	Model   ModelKind

	SrcKind SourceKind
	NSrc    int
	Rec     RecLayout
	NRec    int
	RecSinc bool // sinc measurement interpolation (acoustic only)

	Workers int
	WTB     tiling.Config
	// Dist, when non-nil, additionally runs the scenario through the
	// internal/dist slab decomposition (acoustic, static sources only).
	Dist *dist.Config

	// Metamorphic-check controls (same-package tests only). shift translates
	// every drawn source/receiver coordinate by whole grid cells; snap rounds
	// drawn index coordinates to quarter cells so the shifted coordinate
	// arithmetic stays exact in floating point; center confines placement to
	// a few cells around the grid center (so a translation check can bound
	// the wave's numerical support away from the boundary).
	shift  [3]int
	snap   bool
	center bool
}

func (s Scenario) String() string {
	d := "none"
	if s.Dist != nil {
		mode := "perstep"
		if s.Dist.Mode == dist.DeepHalo {
			mode = fmt.Sprintf("deephalo/%d", s.Dist.Depth)
		}
		d = fmt.Sprintf("%dx%s", s.Dist.Ranks, mode)
	}
	return fmt.Sprintf(
		"#%d seed=%d %s so=%d shape=%dx%dx%d nbl=%d nt=%d model=%s src=%s×%d rec=%s×%d recsinc=%v workers=%d wtb=[%v] dist=%s",
		s.Index, s.Seed, s.Physics, s.SO, s.Shape[0], s.Shape[1], s.Shape[2], s.NBL, s.Steps,
		s.Model, s.SrcKind, s.NSrc, s.Rec, s.NRec, s.RecSinc, s.Workers, s.WTB, d)
}

// Prop is the propagator surface the oracle drives: the schedule interface
// plus whole-state access for bitwise comparison.
type Prop interface {
	tiling.Propagator
	Fields() map[string]*grid.Grid
	Reset()
}

// Generate draws n scenarios from the master seed. The first scenarios are
// forced through a coverage grid — every propagator × source kind
// combination, both dist modes, and degenerate thin grids — so that even a
// small n exercises the full claim surface; the remainder is drawn
// uniformly. Identical (seed, n) always yields identical scenarios.
func Generate(seed int64, n int) []Scenario {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Scenario, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, genOne(rng, i))
	}
	return out
}

// genOne draws scenario i. Indices 0–11 sweep physics × source kind,
// 12–13 force the two dist modes, 14–15 force degenerate thin grids.
func genOne(rng *rand.Rand, i int) Scenario {
	s := Scenario{Index: i, Seed: rng.Int63()}

	switch {
	case i < 12: // coverage sweep: physics × source kind
		s.Physics = Physics(i % 3)
		s.SrcKind = SourceKind((i / 3) % 4)
	case i == 12, i == 13:
		s.Physics = Acoustic
		s.SrcKind = SourceKind(rng.Intn(2)) // dist needs static non-sinc sources
	default:
		s.Physics = Physics(rng.Intn(3))
		s.SrcKind = SourceKind(rng.Intn(4))
	}

	// Space order: the paper's 4/8/12 for every physics — the kernel
	// generator specializes all three radii, so the fuzzer must too.
	s.SO = []int{4, 8, 12}[rng.Intn(3)]

	// Grid shape. Thin degenerate grids (one dimension only a few points
	// wide) are forced at 14/15 and drawn occasionally afterwards; they keep
	// SO=4 so the dependency margins still fit.
	dim := func() int { return 22 + rng.Intn(12) }
	s.Shape = [3]int{dim(), dim(), dim()}
	thin := i == 14 || i == 15 || (i > 15 && rng.Intn(5) == 0)
	if thin {
		s.SO = 4
		s.Shape[rng.Intn(3)] = 5 + rng.Intn(4)
	}

	h := []float64{8, 10, 12.5, 16}[rng.Intn(4)]
	s.Spacing = [3]float64{h, h, h}
	if rng.Intn(3) == 0 { // anisotropic spacing
		s.Spacing[rng.Intn(3)] = h * 1.25
	}

	// Sinc supports need SincRadius points of margin in every dimension.
	minDim := min(s.Shape[0], min(s.Shape[1], s.Shape[2]))
	if s.SrcKind == SrcSinc && minDim < 14 {
		s.SrcKind = SrcOffGrid
	}

	// Damping: zero sometimes (hard boundary reflections), else a thin
	// sponge that still leaves a usable physical box.
	if maxNBL := (minDim - 4) / 2; maxNBL > 0 && rng.Intn(3) != 0 {
		s.NBL = 1 + rng.Intn(min(4, maxNBL))
	}

	s.Steps = 8 + rng.Intn(13)
	s.Model = ModelKind(rng.Intn(3))
	s.NSrc = 1 + rng.Intn(4)
	if s.SrcKind == SrcMoving {
		s.NSrc = 1 + rng.Intn(2)
	}

	s.Rec = RecLayout(rng.Intn(4))
	if s.Rec != RecNone {
		s.NRec = 1 + rng.Intn(6)
	}
	// Sinc measurement interpolation exists on the acoustic propagator only
	// and needs interior receivers with sinc margin.
	if s.Physics == Acoustic && s.Rec == RecLine && minDim >= 14 && rng.Intn(3) == 0 {
		s.RecSinc = true
	}

	s.Workers = 1 + rng.Intn(4)
	s.WTB = genWTB(rng, s)

	if i == 12 || i == 13 || (i > 15 && s.distEligible() && rng.Intn(4) == 0) {
		forceDeep := i == 13
		s.Dist = genDist(rng, s, forceDeep)
	}
	return s
}

// genWTB draws a legal WTB configuration for the scenario: the tile respects
// the propagator's dependency margin, the time-tile depth ranges from the
// degenerate TT=1 (spatial) to deeper than the whole run.
func genWTB(rng *rand.Rand, s Scenario) tiling.Config {
	r := s.SO / 2
	skew := r
	if s.Physics == Elastic {
		skew = 2 * r // staggered system: accumulated per-phase radii
	}
	minTile := 2 * skew
	tile := func(n int) int {
		hi := n + 2*skew
		if hi <= minTile {
			return minTile
		}
		return minTile + rng.Intn(hi-minTile+1)
	}
	return tiling.Config{
		TT:     1 + rng.Intn(s.Steps+4),
		TileX:  tile(s.Shape[0]),
		TileY:  tile(s.Shape[1]),
		BlockX: 2 + rng.Intn(10),
		BlockY: 2 + rng.Intn(10),
	}
}

// distEligible reports whether the scenario can also run under the
// internal/dist slab decomposition: acoustic physics with static,
// trilinear-interpolated sources (the cluster builds its own supports).
func (s Scenario) distEligible() bool {
	return s.Physics == Acoustic &&
		(s.SrcKind == SrcOnGrid || s.SrcKind == SrcOffGrid) &&
		!s.RecSinc
}

// genDist draws a slab decomposition that satisfies the cluster's
// constraints (slab width ≥ dependency margin, deep halo ≤ slab, nt
// divisible by depth); nil when the scenario is too small to decompose.
func genDist(rng *rand.Rand, s Scenario, forceDeep bool) *dist.Config {
	skew := s.SO / 2
	cfg := &dist.Config{Ranks: 2 + rng.Intn(2), Mode: dist.PerStep, BlockX: 8, BlockY: 8, TileY: 8}
	slab := (s.Shape[0] + cfg.Ranks - 1) / cfg.Ranks
	for cfg.Ranks > 1 && slab < 2*skew {
		cfg.Ranks--
		slab = (s.Shape[0] + cfg.Ranks - 1) / cfg.Ranks
	}
	if slab < 2*skew {
		return nil
	}
	if forceDeep || rng.Intn(2) == 0 {
		// Depth must divide nt and keep depth·skew ≤ slab.
		var depths []int
		for d := 2; d <= 8 && d*skew <= slab; d++ {
			if s.Steps%d == 0 {
				depths = append(depths, d)
			}
		}
		if len(depths) > 0 {
			cfg.Mode = dist.DeepHalo
			cfg.Depth = depths[rng.Intn(len(depths))]
			// Sometimes split slabs into tile columns so the overlapped
			// (pack-early) exchange path gets fuzzed; undersized values are
			// clamped to a whole-slab column by the cluster.
			cfg.TileX = []int{0, 8, 12, 16}[rng.Intn(4)]
		} else if forceDeep {
			return nil
		}
	}
	return cfg
}

// Schedules lists the oracle schedules a scenario will run, for coverage
// accounting.
func (s Scenario) Schedules() []string {
	out := []string{"spatial-unfused", "spatial-fused", "wtb", "wtb-pipelined"}
	if s.Dist != nil {
		out = append(out, "dist")
	}
	return out
}

// sortedFieldNames gives deterministic iteration over a propagator's fields.
func sortedFieldNames(fields map[string]*grid.Grid) []string {
	names := make([]string, 0, len(fields))
	for n := range fields {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ { // insertion sort; tiny n
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
