package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeometryBoxes(t *testing.T) {
	g := Geometry{Nx: 100, Ny: 80, Nz: 60, Hx: 10, Hy: 10, Hz: 10, NBL: 10}
	lo, hi := g.PhysicalBox()
	if lo != [3]float64{100, 100, 100} {
		t.Fatalf("lo %v", lo)
	}
	if hi != [3]float64{890, 690, 490} {
		t.Fatalf("hi %v", hi)
	}
	c := g.Center()
	if c != [3]float64{495, 395, 295} {
		t.Fatalf("center %v", c)
	}
}

func TestSetTime(t *testing.T) {
	g := Geometry{Nx: 10, Ny: 10, Nz: 10, Hx: 10, Hy: 10, Hz: 10}
	g.SetTime(0.512, 0.002)
	if g.Nt != 257 {
		t.Fatalf("nt = %d", g.Nt)
	}
	if g.Dt != 0.002 {
		t.Fatalf("dt = %g", g.Dt)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid time axis accepted")
		}
	}()
	g.SetTime(-1, 0.002)
}

func TestDampFieldProfile(t *testing.T) {
	g := Geometry{Nx: 30, Ny: 30, Nz: 30, Hx: 10, Hy: 10, Hz: 10, NBL: 6}
	d := g.DampField(0, 3000)
	// Zero in the interior.
	if d.At(15, 15, 15) != 0 || d.At(6, 6, 6) != 0 {
		t.Fatal("damping nonzero in interior")
	}
	// Positive and monotonically increasing toward the face.
	prev := float32(-1)
	for x := 5; x >= 0; x-- {
		v := d.At(x, 15, 15)
		if v < prev {
			t.Fatalf("damp not monotone at x=%d: %g < %g", x, v, prev)
		}
		prev = v
	}
	if prev <= 0 {
		t.Fatal("no damping at face")
	}
	// Symmetric faces.
	if d.At(0, 15, 15) != d.At(29, 15, 15) || d.At(15, 0, 15) != d.At(15, 15, 29) {
		t.Fatal("damping not symmetric")
	}
	// NBL=0 means no damping anywhere.
	g0 := Geometry{Nx: 8, Ny: 8, Nz: 8, Hx: 10, Hy: 10, Hz: 10}
	if g0.DampField(0, 3000).MaxAbs() != 0 {
		t.Fatal("NBL=0 produced damping")
	}
}

func TestCriticalDtClassicBound(t *testing.T) {
	// For SO2 the rigorous acoustic bound is h/(v·√3); with cfl=1 we must
	// reproduce it exactly.
	g := Geometry{Nx: 10, Ny: 10, Nz: 10, Hx: 10, Hy: 10, Hz: 10}
	got := g.CriticalDtAcoustic(2, 3000, 1)
	want := 10.0 / (3000 * math.Sqrt(3))
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("SO2 dt %g, want %g", got, want)
	}
	// Higher orders are more restrictive.
	if g.CriticalDtAcoustic(8, 3000, 1) >= got {
		t.Fatal("SO8 dt not smaller than SO2 dt")
	}
}

func TestCriticalDtMonotoneProperty(t *testing.T) {
	// dt decreases with velocity and with space order; scales with h.
	f := func(vu uint16, ou uint8) bool {
		v := 1500 + float64(vu%3000)
		so := 2 * (int(ou%6) + 1)
		g := Geometry{Nx: 10, Ny: 10, Nz: 10, Hx: 10, Hy: 10, Hz: 10}
		g2 := g
		g2.Hx, g2.Hy, g2.Hz = 20, 20, 20
		dt := g.CriticalDtAcoustic(so, v, DefaultCFL)
		if g.CriticalDtAcoustic(so, v*1.5, DefaultCFL) >= dt {
			return false
		}
		if math.Abs(g2.CriticalDtAcoustic(so, v, DefaultCFL)-2*dt) > 1e-12 {
			return false
		}
		return g.CriticalDtElastic(so, v, DefaultCFL) > 0 && g.CriticalDtTTI(so, v, 0.3, DefaultCFL) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPresetFields(t *testing.T) {
	lay := Layered(100, 1500, 2500, 3500)
	if lay(0, 0, 0) != 1500 || lay(0, 0, 50) != 2500 || lay(0, 0, 99) != 3500 {
		t.Fatal("Layered thresholds wrong")
	}
	if lay(0, 0, -5) != 1500 || lay(0, 0, 1e6) != 3500 {
		t.Fatal("Layered clamping wrong")
	}
	gr := Gradient(1000, 2000, 100)
	if gr(0, 0, 0) != 1000 || gr(0, 0, 100) != 2000 || gr(0, 0, 50) != 1500 {
		t.Fatal("Gradient wrong")
	}
	if gr(0, 0, -1) != 1000 || gr(0, 0, 101) != 2000 {
		t.Fatal("Gradient clamping wrong")
	}
	if Homogeneous(42)(1, 2, 3) != 42 {
		t.Fatal("Homogeneous wrong")
	}
}

func TestNewAcousticParams(t *testing.T) {
	g := Geometry{Nx: 12, Ny: 12, Nz: 12, Hx: 10, Hy: 10, Hz: 10, NBL: 3}
	p := NewAcoustic(g, 2, Gradient(1500, 3000, 110))
	if p.Vmax != 3000 {
		t.Fatalf("Vmax %g", p.Vmax)
	}
	// m = 1/v²: at z=0, v=1500.
	if math.Abs(float64(p.M.At(5, 5, 0))-1/(1500.0*1500.0)) > 1e-12 {
		t.Fatalf("m at surface %g", p.M.At(5, 5, 0))
	}
	if p.Damp.At(6, 6, 6) != 0 || p.Damp.At(0, 6, 6) <= 0 {
		t.Fatal("damp field wrong")
	}
}

func TestNewElasticParams(t *testing.T) {
	g := Geometry{Nx: 10, Ny: 10, Nz: 10, Hx: 10, Hy: 10, Hz: 10, NBL: 2}
	p := NewElastic(g, 1, Homogeneous(2000), Homogeneous(1000), Homogeneous(1800))
	// λ = ρ(vp²−2vs²) = 1800·(4e6−2e6) = 3.6e9; μ = ρvs² = 1.8e9.
	if math.Abs(float64(p.Lam.At(5, 5, 5))-3.6e9) > 1e3 {
		t.Fatalf("lambda %g", p.Lam.At(5, 5, 5))
	}
	if math.Abs(float64(p.Mu.At(5, 5, 5))-1.8e9) > 1e3 {
		t.Fatalf("mu %g", p.Mu.At(5, 5, 5))
	}
	if math.Abs(float64(p.Buoy.At(5, 5, 5))-1/1800.0) > 1e-9 {
		t.Fatalf("buoy %g", p.Buoy.At(5, 5, 5))
	}
	// Taper: 1 in interior, < 1 at the faces.
	if p.Taper.At(5, 5, 5) != 1 {
		t.Fatalf("interior taper %g", p.Taper.At(5, 5, 5))
	}
	if p.Taper.At(0, 5, 5) >= 1 || p.Taper.At(0, 5, 5) <= 0 {
		t.Fatalf("face taper %g", p.Taper.At(0, 5, 5))
	}
}

func TestNewTTIParams(t *testing.T) {
	g := Geometry{Nx: 10, Ny: 10, Nz: 10, Hx: 10, Hy: 10, Hz: 10, NBL: 2}
	p := NewTTI(g, 2, Homogeneous(2500), Homogeneous(0.2), Homogeneous(0.1),
		Homogeneous(0.5), Homogeneous(0.3))
	if p.Vmax != 2500 || p.EpsMax != 0.2 {
		t.Fatalf("Vmax %g EpsMax %g", p.Vmax, p.EpsMax)
	}
	if p.Epsilon.At(3, 3, 3) != 0.2 || p.Delta.At(3, 3, 3) != 0.1 {
		t.Fatal("thomsen fields wrong")
	}
	if math.Abs(float64(p.Theta.At(1, 1, 1))-0.5) > 1e-7 {
		t.Fatal("theta wrong")
	}
}
