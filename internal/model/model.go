// Package model provides the earth-model substrate for the wave
// propagators: grid geometry, velocity/density/anisotropy parameter fields,
// absorbing damping layers, and CFL-stable timestep selection — the pieces
// Devito's seismic Model class supplies in the paper's experiments
// (§IV-B: "zero initial conditions and damping fields with absorbing
// boundary layers", timestep "selected regarding the Courant-Friedrichs-Lewy
// condition").
package model

import (
	"fmt"
	"math"

	"wavetile/internal/fd"
	"wavetile/internal/grid"
)

// Geometry describes the discretization: the full grid (absorbing layers
// included), its spacing in metres, and the time axis.
type Geometry struct {
	Nx, Ny, Nz int     // grid points, absorbing layers included
	Hx, Hy, Hz float64 // spacing (m)
	NBL        int     // absorbing layer width (points) on every face

	Dt float64 // timestep (s)
	Nt int     // number of timesteps
}

// PhysicalBox returns the inner (non-absorbing) box in physical coordinates,
// the region where sources and receivers should be placed.
func (g Geometry) PhysicalBox() (lo, hi [3]float64) {
	lo = [3]float64{float64(g.NBL) * g.Hx, float64(g.NBL) * g.Hy, float64(g.NBL) * g.Hz}
	hi = [3]float64{
		float64(g.Nx-1-g.NBL) * g.Hx,
		float64(g.Ny-1-g.NBL) * g.Hy,
		float64(g.Nz-1-g.NBL) * g.Hz,
	}
	return lo, hi
}

// Center returns the physical center of the grid.
func (g Geometry) Center() [3]float64 {
	return [3]float64{
		float64(g.Nx-1) * g.Hx / 2,
		float64(g.Ny-1) * g.Hy / 2,
		float64(g.Nz-1) * g.Hz / 2,
	}
}

// SetTime fixes the time axis for a simulation of tn seconds at the given
// dt, matching Devito's TimeAxis: nt = ceil(tn/dt) + 1 update steps.
func (g *Geometry) SetTime(tn, dt float64) {
	if dt <= 0 || tn <= 0 {
		panic(fmt.Sprintf("model: invalid time axis tn=%g dt=%g", tn, dt))
	}
	g.Dt = dt
	g.Nt = int(math.Ceil(tn/dt)) + 1
}

// FieldFunc evaluates a material property at a physical coordinate.
type FieldFunc func(x, y, z float64) float64

// FillField builds a halo-padded grid sampled from f at grid-point physical
// positions.
func (g Geometry) FillField(halo int, f FieldFunc) *grid.Grid {
	out := grid.New(g.Nx, g.Ny, g.Nz, halo)
	out.FillFunc(func(x, y, z int) float32 {
		return float32(f(float64(x)*g.Hx, float64(y)*g.Hy, float64(z)*g.Hz))
	})
	return out
}

// DampField builds the absorbing-sponge coefficient σ(x) ≥ 0 (1/s), zero in
// the interior and growing smoothly towards the faces over the NBL outer
// points. The profile is the Devito-style mask
//
//	σ(pos) = σmax · (pos − sin(2π·pos)/(2π)),  pos ∈ [0,1] into the layer
//
// with σmax = 3·vmax·ln(1000)/(2·L) for layer thickness L, the classic
// sponge magnitude that attenuates a normally incident wave by ~60 dB.
func (g Geometry) DampField(halo int, vmax float64) *grid.Grid {
	l := float64(g.NBL) * math.Min(g.Hx, math.Min(g.Hy, g.Hz))
	sigmaMax := 0.0
	if g.NBL > 0 {
		sigmaMax = 3 * vmax * math.Log(1000) / (2 * l)
	}
	out := grid.New(g.Nx, g.Ny, g.Nz, halo)
	if g.NBL == 0 {
		return out
	}
	depth := func(i, n int) float64 {
		// Distance in points into the absorbing layer, 0 in the interior.
		d := 0
		if i < g.NBL {
			d = g.NBL - i
		} else if i >= n-g.NBL {
			d = i - (n - g.NBL - 1)
		}
		return float64(d) / float64(g.NBL)
	}
	out.FillFunc(func(x, y, z int) float32 {
		pos := math.Max(depth(x, g.Nx), math.Max(depth(y, g.Ny), depth(z, g.Nz)))
		if pos <= 0 {
			return 0
		}
		return float32(sigmaMax * (pos - math.Sin(2*math.Pi*pos)/(2*math.Pi)))
	})
	return out
}

// CriticalDtAcoustic returns the largest stable timestep for the 2nd-order
// leapfrog acoustic scheme at the given space order:
//
//	dt ≤ 2 / (vmax · sqrt(λmax)),  λmax ≤ Σ_d A/h_d²,  A = Σ|c_k|
//
// scaled by the safety factor cfl (Devito uses ~0.85 of the rigorous bound;
// we default to the same via DefaultCFL).
func (g Geometry) CriticalDtAcoustic(so int, vmax, cfl float64) float64 {
	a := fd.AbsSum(fd.SecondDeriv(so), true)
	lam := a*(1/(g.Hx*g.Hx)) + a*(1/(g.Hy*g.Hy)) + a*(1/(g.Hz*g.Hz))
	return cfl * 2 / (vmax * math.Sqrt(lam))
}

// CriticalDtElastic returns a stable timestep for the staggered
// velocity–stress scheme: dt ≤ h_min / (vpmax · Σ|c_k| · √3), scaled by cfl.
func (g Geometry) CriticalDtElastic(so int, vpmax, cfl float64) float64 {
	a := fd.AbsSum(fd.StaggeredFirstDeriv(so), false)
	hmin := math.Min(g.Hx, math.Min(g.Hy, g.Hz))
	return cfl * hmin / (vpmax * a * math.Sqrt(3))
}

// CriticalDtTTI returns a stable timestep for the coupled TTI system. The
// rotated Laplacian's symbol is bounded by that of the isotropic operator
// with the cross terms' worst case, and the p-wave speed is boosted by the
// anisotropy; a further 0.9 accounts for the coupling.
func (g Geometry) CriticalDtTTI(so int, vmax, epsMax, cfl float64) float64 {
	v := vmax * math.Sqrt(1+2*math.Max(epsMax, 0))
	return 0.9 * g.CriticalDtAcoustic(so, v, cfl)
}

// DefaultCFL is the safety factor applied to the rigorous stability bounds.
const DefaultCFL = 0.85
