package model

import (
	"math"

	"wavetile/internal/grid"
)

// The presets below are the subsurface models used by the benchmark harness
// and the examples. The paper benchmarks unspecified "velocity models of
// 512³ grid points"; we use a layered model of seismically typical
// velocities (water-bottom 1.5 km/s down to 3.5 km/s basement), which yields
// comparable CFL timestep counts, and a homogeneous model for analytic
// sanity tests.

// AcousticParams bundles the parameter fields of the isotropic acoustic
// propagator (§III-A): squared slowness m = 1/v² and the damping mask.
type AcousticParams struct {
	Geom Geometry
	Vmax float64
	M    *grid.Grid // 1/v² (s²/m²)
	Damp *grid.Grid // σ (1/s)
}

// NewAcoustic builds acoustic parameter fields from a velocity function
// (m/s). halo must cover the stencil radius of the space order in use.
func NewAcoustic(geom Geometry, halo int, vp FieldFunc) *AcousticParams {
	p := &AcousticParams{Geom: geom}
	p.M = geom.FillField(halo, func(x, y, z float64) float64 {
		v := vp(x, y, z)
		if v > p.Vmax {
			p.Vmax = v
		}
		return 1 / (v * v)
	})
	p.Damp = geom.DampField(halo, p.Vmax)
	return p
}

// TTIParams bundles the anisotropic acoustic (TTI) parameter fields
// (§III-B): m, damping, Thomsen parameters ε and δ, and the tilt/azimuth
// angles θ, φ of the rotated Laplacian.
type TTIParams struct {
	Geom                       Geometry
	Vmax, EpsMax               float64
	M, Damp                    *grid.Grid
	Epsilon, Delta, Theta, Phi *grid.Grid
}

// NewTTI builds TTI parameter fields; eps/delta/theta/phi are sampled like
// the velocity (theta/phi in radians, spatially dependent as in the paper).
func NewTTI(geom Geometry, halo int, vp, eps, delta, theta, phi FieldFunc) *TTIParams {
	p := &TTIParams{Geom: geom}
	p.M = geom.FillField(halo, func(x, y, z float64) float64 {
		v := vp(x, y, z)
		if v > p.Vmax {
			p.Vmax = v
		}
		return 1 / (v * v)
	})
	p.Epsilon = geom.FillField(halo, func(x, y, z float64) float64 {
		e := eps(x, y, z)
		if e > p.EpsMax {
			p.EpsMax = e
		}
		return e
	})
	p.Delta = geom.FillField(halo, delta)
	p.Theta = geom.FillField(halo, theta)
	p.Phi = geom.FillField(halo, phi)
	p.Damp = geom.DampField(halo, p.Vmax)
	return p
}

// ElasticParams bundles the isotropic elastic parameter fields (§III-C):
// Lamé parameters λ, μ, buoyancy 1/ρ, and a Cerjan-style multiplicative
// taper for the absorbing layers (first-order systems damp by tapering).
type ElasticParams struct {
	Geom          Geometry
	VpMax         float64
	Lam, Mu, Buoy *grid.Grid
	Taper         *grid.Grid // per-step multiplicative absorbing taper ≤ 1
}

// NewElastic builds elastic parameter fields from vp, vs (m/s) and density
// rho (kg/m³): λ = ρ(vp²−2vs²), μ = ρvs², buoyancy 1/ρ.
func NewElastic(geom Geometry, halo int, vp, vs, rho FieldFunc) *ElasticParams {
	p := &ElasticParams{Geom: geom}
	p.Lam = geom.FillField(halo, func(x, y, z float64) float64 {
		vpv, vsv, r := vp(x, y, z), vs(x, y, z), rho(x, y, z)
		if vpv > p.VpMax {
			p.VpMax = vpv
		}
		return r * (vpv*vpv - 2*vsv*vsv)
	})
	p.Mu = geom.FillField(halo, func(x, y, z float64) float64 {
		vsv, r := vs(x, y, z), rho(x, y, z)
		return r * vsv * vsv
	})
	p.Buoy = geom.FillField(halo, func(x, y, z float64) float64 { return 1 / rho(x, y, z) })
	// Cerjan taper: fields are multiplied by exp(-(a·pos)²) each step inside
	// the layer; built from the damp field so the profile matches.
	damp := geom.DampField(halo, 1) // unit vmax: profile shape only
	p.Taper = grid.New(geom.Nx, geom.Ny, geom.Nz, halo)
	sMax := 0.0
	for i, v := range damp.Data {
		_ = i
		if float64(v) > sMax {
			sMax = float64(v)
		}
	}
	// Cerjan-style taper strength: per step the innermost layer point keeps
	// exp(-a²·pos²) of its amplitude, with a chosen so the outermost point
	// attenuates by ≈ exp(-0.09) ≈ 9% per step — the classic choice for
	// ~10-point sponges.
	const cerjanA = 0.3
	p.Taper.FillFunc(func(x, y, z int) float32 {
		if sMax == 0 {
			return 1
		}
		pos := float64(damp.At(x, y, z)) / sMax
		return float32(math.Exp(-cerjanA * cerjanA * pos * pos))
	})
	return p
}

// Homogeneous returns a constant field.
func Homogeneous(v float64) FieldFunc {
	return func(x, y, z float64) float64 { return v }
}

// Layered returns a field that steps through vals at equal depth (z)
// intervals over depth zmax — the classic layer-cake subsurface.
func Layered(zmax float64, vals ...float64) FieldFunc {
	n := len(vals)
	return func(x, y, z float64) float64 {
		i := int(z / zmax * float64(n))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return vals[i]
	}
}

// Gradient returns a field increasing linearly from v0 at z=0 to v1 at
// z=zmax.
func Gradient(v0, v1, zmax float64) FieldFunc {
	return func(x, y, z float64) float64 {
		t := z / zmax
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
		return v0 + t*(v1-v0)
	}
}
