package batch

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"wavetile/internal/obs"
)

// fakeLane records which shots it ran and at which worker cap.
type fakeLane struct {
	mu      sync.Mutex
	workers int
	shots   []int
	fail    map[int]error
	active  *atomic.Int64 // concurrent-lane high-water mark
	peak    *atomic.Int64
}

func (l *fakeLane) SetWorkers(n int) { l.mu.Lock(); l.workers = n; l.mu.Unlock() }

func (l *fakeLane) RunShot(shot int) error {
	cur := l.active.Add(1)
	for {
		p := l.peak.Load()
		if cur <= p || l.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	defer l.active.Add(-1)
	l.mu.Lock()
	l.shots = append(l.shots, shot)
	err := l.fail[shot]
	l.mu.Unlock()
	return err
}

type harness struct {
	mu       sync.Mutex
	lanes    []*fakeLane
	pre      []int32
	active   atomic.Int64
	peak     atomic.Int64
	preErr   map[int]error
	laneFail map[int]error
}

func newHarness(shots int) *harness {
	return &harness{pre: make([]int32, shots)}
}

func (h *harness) funcs() Funcs {
	return Funcs{
		Precompute: func(shot int) error {
			atomic.AddInt32(&h.pre[shot], 1)
			if err := h.preErr[shot]; err != nil {
				return err
			}
			return nil
		},
		NewLane: func(lane int) (Lane, error) {
			l := &fakeLane{fail: h.laneFail, active: &h.active, peak: &h.peak}
			h.mu.Lock()
			h.lanes = append(h.lanes, l)
			h.mu.Unlock()
			return l, nil
		},
	}
}

// allShots gathers every shot run across lanes.
func (h *harness) allShots() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []int
	for _, l := range h.lanes {
		l.mu.Lock()
		out = append(out, l.shots...)
		l.mu.Unlock()
	}
	return out
}

func TestRunCoversEveryShotExactlyOnce(t *testing.T) {
	const shots = 17
	h := newHarness(shots)
	res, err := Run(Config{Shots: shots, Concurrency: 3, Workers: 6}, h.funcs())
	if err != nil {
		t.Fatal(err)
	}
	if res.Concurrency != 3 {
		t.Fatalf("Concurrency = %d, want 3", res.Concurrency)
	}
	seen := map[int]int{}
	for _, s := range h.allShots() {
		seen[s]++
	}
	for s := 0; s < shots; s++ {
		if seen[s] != 1 {
			t.Fatalf("shot %d ran %d times", s, seen[s])
		}
		if h.pre[s] != 1 {
			t.Fatalf("shot %d precomputed %d times", s, h.pre[s])
		}
	}
	// Worker partitioning: 6 workers over 3 lanes = 2 each.
	for i, l := range h.lanes {
		if l.workers != 2 {
			t.Fatalf("lane %d workers = %d, want 2", i, l.workers)
		}
	}
}

func TestRunPrecomputeErrorAborts(t *testing.T) {
	h := newHarness(5)
	boom := errors.New("bad shot")
	h.preErr = map[int]error{3: boom}
	_, err := Run(Config{Shots: 5, Concurrency: 1}, h.funcs())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if got := h.allShots(); len(got) != 0 {
		t.Fatalf("shots ran despite precompute failure: %v", got)
	}
}

func TestRunShotErrorStopsDispatch(t *testing.T) {
	h := newHarness(40)
	boom := errors.New("shot blew up")
	h.laneFail = map[int]error{1: boom}
	_, err := Run(Config{Shots: 40, Concurrency: 2}, h.funcs())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if n := len(h.allShots()); n >= 40 {
		t.Fatalf("dispatch did not stop after failure (%d shots ran)", n)
	}
}

func TestAutotuneProbesAndFinishes(t *testing.T) {
	const shots = 24
	h := newHarness(shots)
	res, err := Run(Config{Shots: shots, Workers: 4, MaxConcurrency: 4, ProbeShots: 2}, h.funcs())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probes) == 0 {
		t.Fatal("autotune recorded no probes")
	}
	if res.Probes[0].K != 1 {
		t.Fatalf("first probe K = %d, want 1", res.Probes[0].K)
	}
	seen := map[int]bool{}
	for _, s := range h.allShots() {
		if seen[s] {
			t.Fatalf("shot %d ran twice", s)
		}
		seen[s] = true
	}
	if len(seen) != shots {
		t.Fatalf("%d distinct shots ran, want %d", len(seen), shots)
	}
	if res.Concurrency < 1 || res.Concurrency > 4 {
		t.Fatalf("tuned K = %d out of range", res.Concurrency)
	}
}

func TestRunCountsShotsDone(t *testing.T) {
	reg := obs.NewRegistry()
	defer obs.Swap(reg)()
	const shots = 9
	h := newHarness(shots)
	if _, err := Run(Config{Shots: shots, Concurrency: 2}, h.funcs()); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[CounterShotsDone]; got != shots {
		t.Fatalf("%s = %d, want %d", CounterShotsDone, got, shots)
	}
	if got := snap.Counters[CounterPrecomputed]; got != shots {
		t.Fatalf("%s = %d, want %d", CounterPrecomputed, got, shots)
	}
	if got := snap.Counters[CounterPrecomputeReused]; got != shots {
		t.Fatalf("%s = %d, want %d", CounterPrecomputeReused, got, shots)
	}
}

// laneFunc adapts a closure to Lane for tests that need to act mid-shot.
type laneFunc struct{ run func(shot int) error }

func (l laneFunc) RunShot(shot int) error { return l.run(shot) }
func (l laneFunc) SetWorkers(int)         {}

func TestRunContextCancelStopsDispatchWithinOneShot(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	var closed atomic.Int64
	_, err := RunContext(ctx, Config{Shots: 50, Concurrency: 1}, Funcs{
		Precompute: func(int) error { return nil },
		NewLane: func(int) (Lane, error) {
			return laneFunc{run: func(shot int) error {
				ran.Add(1)
				if shot == 1 {
					cancel() // cancel while shot 1 is in flight
				}
				return nil
			}}, nil
		},
		CloseLane: func(Lane) { closed.Add(1) },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// K=1 makes the bound exact: shot 1 (in flight at cancellation) must
	// finish, and no shot after it may be dispatched.
	if n := ran.Load(); n != 2 {
		t.Fatalf("%d shots ran after cancel mid-shot-1, want exactly 2", n)
	}
	if closed.Load() != 1 {
		t.Fatalf("CloseLane ran %d times on cancellation, want 1", closed.Load())
	}
}

func TestRunContextPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h := newHarness(5)
	_, err := RunContext(ctx, Config{Shots: 5, Concurrency: 2}, h.funcs())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := h.allShots(); len(got) != 0 {
		t.Fatalf("shots ran under a pre-cancelled context: %v", got)
	}
	for s, n := range h.pre {
		if n != 0 {
			t.Fatalf("shot %d precomputed under a pre-cancelled context", s)
		}
	}
}

func TestConcurrencyNeverExceedsK(t *testing.T) {
	const shots = 30
	h := newHarness(shots)
	if _, err := Run(Config{Shots: shots, Concurrency: 3, Workers: 8}, h.funcs()); err != nil {
		t.Fatal(err)
	}
	if p := h.peak.Load(); p > 3 {
		t.Fatalf("concurrent shots peaked at %d, cap was 3", p)
	}
}
