// Package batch is the generic multi-shot execution engine behind
// wavesim.Survey: it amortizes per-shot setup by precomputing every shot up
// front (in parallel), then drains the shot queue through K concurrent
// lanes, each a shared-model propagator clone running with its slice of the
// machine's workers.
//
// The engine is deliberately ignorant of wave physics: callers provide a
// precompute function and a lane factory, and the engine owns ordering,
// worker partitioning, the concurrency autotune and the survey-level
// observability counters. Correctness does not depend on K — every shot is
// computed by exactly one lane from freshly reset state, and the per-shot
// results are bitwise independent of which lane ran it or what ran
// concurrently (the batched-vs-sequential oracle in wavesim asserts this).
package batch

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wavetile/internal/obs"
	"wavetile/internal/par"
)

// Survey-level obs counters. They land on /metrics like every registry
// counter, giving scrape-level visibility into a long acquisition.
const (
	// CounterShotsDone counts completed shots.
	CounterShotsDone = "survey_shots_done"
	// CounterPrecomputed counts source bundles built up front.
	CounterPrecomputed = "survey_precompute_shots"
	// CounterPrecomputeReused counts shots that ran off a precomputed
	// bundle instead of rebuilding source state at run time — the
	// amortization the engine exists for, made observable.
	CounterPrecomputeReused = "survey_precompute_reused"
)

// Lane is one concurrent shot executor. RunShot runs a single shot to
// completion; SetWorkers caps the parallelism of subsequent runs (the
// engine re-partitions lanes whenever the concurrency level changes).
// Lanes are never invoked concurrently with themselves.
type Lane interface {
	RunShot(shot int) error
	SetWorkers(n int)
}

// Funcs supplies the workload. Precompute(shot) builds shot's amortizable
// state and must be safe for concurrent calls on distinct shots; NewLane
// builds lane executors (called serially); CloseLane releases one (may be
// nil).
type Funcs struct {
	Precompute func(shot int) error
	NewLane    func(lane int) (Lane, error)
	CloseLane  func(l Lane)
}

// Config sizes the run.
type Config struct {
	Shots int
	// Concurrency fixes the number of concurrent lanes K; 0 selects the
	// autotune, which measures shots/sec at candidate K values on the
	// first shots and runs the remainder at the best.
	Concurrency int
	// MaxConcurrency bounds the autotune's candidates (0 = Workers).
	MaxConcurrency int
	// ProbeShots is how many shots per lane each autotune candidate
	// measures (default 2; the probed shots' results are kept).
	ProbeShots int
	// Workers is the total worker budget split across lanes as
	// max(1, Workers/K) each (0 = par.Workers).
	Workers int
}

// Probe records one autotune measurement.
type Probe struct {
	K           int
	Shots       int
	ShotsPerSec float64
}

// Result summarizes a batch run.
type Result struct {
	Concurrency int // the K the bulk of the survey ran at
	Elapsed     time.Duration
	Precompute  time.Duration // wall time of the upfront precompute phase
	ShotsPerSec float64
	Probes      []Probe // autotune trajectory (nil when K was fixed)
}

// engine is the per-run state shared by the dispatch goroutines.
type engine struct {
	ctx   context.Context
	cfg   Config
	funcs Funcs

	lanes []Lane
	next  atomic.Int64 // global shot cursor
	done  atomic.Int64 // shots completed across all phases

	failed  atomic.Bool
	errOnce sync.Once
	err     error

	cShots  *obs.Counter
	cReused *obs.Counter
}

func (e *engine) fail(err error) {
	e.errOnce.Do(func() { e.err = err })
	e.failed.Store(true)
}

// Run executes cfg.Shots shots through f. On error the dispatch drains
// (in-flight shots finish) and the first error is returned.
func Run(cfg Config, f Funcs) (*Result, error) {
	return RunContext(context.Background(), cfg, f)
}

// RunContext is Run with external cancellation: once ctx is done, no new
// shot is dispatched — lanes finish their in-flight shot and stop, so the
// run terminates within one shot of the cancellation. The returned error
// satisfies errors.Is(err, ctx.Err()). Lanes are still closed through
// Funcs.CloseLane on cancellation, so pooled resources drain symmetrically.
func RunContext(ctx context.Context, cfg Config, f Funcs) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Shots <= 0 {
		return nil, fmt.Errorf("batch: no shots (Shots=%d)", cfg.Shots)
	}
	if f.Precompute == nil || f.NewLane == nil {
		return nil, fmt.Errorf("batch: Funcs.Precompute and Funcs.NewLane are required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = par.Workers
	}
	if cfg.ProbeShots <= 0 {
		cfg.ProbeShots = 2
	}

	e := &engine{ctx: ctx, cfg: cfg, funcs: f}
	reg := obs.Active()
	if reg != nil {
		e.cShots = reg.Counter(CounterShotsDone)
		e.cReused = reg.Counter(CounterPrecomputeReused)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("batch: %w", err)
	}
	start := time.Now()

	// Phase 1: precompute every shot up front, in parallel. Errors are
	// collected per shot; the first (by shot index) is reported.
	preErrs := make([]error, cfg.Shots)
	par.For(cfg.Shots, func(i int) { preErrs[i] = f.Precompute(i) })
	for i, err := range preErrs {
		if err != nil {
			return nil, fmt.Errorf("batch: precompute shot %d: %w", i, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("batch: %w", err)
	}
	precompute := time.Since(start)
	if reg != nil {
		reg.Counter(CounterPrecomputed).Add(int64(cfg.Shots))
	}

	res := &Result{Precompute: precompute}
	defer func() {
		if f.CloseLane != nil {
			for _, l := range e.lanes {
				f.CloseLane(l)
			}
		}
	}()

	// Phase 2: drain the shot queue at the chosen (or autotuned) K.
	if cfg.Concurrency > 0 {
		res.Concurrency = min(cfg.Concurrency, cfg.Shots)
		if _, err := e.runPhase(res.Concurrency, -1); err != nil {
			return nil, err
		}
	} else {
		k, probes, err := e.autotune()
		if err != nil {
			return nil, err
		}
		res.Concurrency, res.Probes = k, probes
		if _, err := e.runPhase(k, -1); err != nil {
			return nil, err
		}
	}

	// A cancellation that left shots undispatched is an error (wrapped so
	// errors.Is(err, context.Canceled) holds); a cancellation that raced
	// the final shot's completion changed nothing and reports success.
	if err := ctx.Err(); err != nil && int(e.done.Load()) < cfg.Shots {
		return nil, fmt.Errorf("batch: %w", err)
	}

	res.Elapsed = time.Since(start)
	if s := res.Elapsed.Seconds(); s > 0 {
		res.ShotsPerSec = float64(cfg.Shots) / s
	}
	return res, nil
}

// ensureLanes grows the lane set to at least k executors.
func (e *engine) ensureLanes(k int) error {
	for len(e.lanes) < k {
		l, err := e.funcs.NewLane(len(e.lanes))
		if err != nil {
			return fmt.Errorf("batch: lane %d: %w", len(e.lanes), err)
		}
		e.lanes = append(e.lanes, l)
	}
	return nil
}

// runPhase dispatches up to budget shots (all remaining when budget < 0)
// across k concurrent lanes, each capped at Workers/k workers, and returns
// how many shots it completed.
func (e *engine) runPhase(k, budget int) (int, error) {
	if remaining := e.cfg.Shots - int(e.next.Load()); remaining <= 0 {
		return 0, e.err
	} else if k > remaining {
		k = remaining
	}
	if err := e.ensureLanes(k); err != nil {
		return 0, err
	}
	perLane := max(1, e.cfg.Workers/k)
	for _, l := range e.lanes[:k] {
		l.SetWorkers(perLane)
	}
	var taken atomic.Int64
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(l Lane) {
			defer wg.Done()
			for !e.failed.Load() {
				if e.ctx.Err() != nil {
					return // cancelled: stop dispatching, in-flight shots already finished
				}
				if budget >= 0 && taken.Add(1) > int64(budget) {
					return
				}
				shot := int(e.next.Add(1)) - 1
				if shot >= e.cfg.Shots {
					return
				}
				if err := l.RunShot(shot); err != nil {
					e.fail(fmt.Errorf("batch: shot %d: %w", shot, err))
					return
				}
				done.Add(1)
				e.done.Add(1)
				if e.cShots != nil {
					e.cShots.Add(1)
					e.cReused.Add(1)
				}
			}
		}(e.lanes[i])
	}
	wg.Wait()
	return int(done.Load()), e.err
}

// autotune measures shots/sec at doubling candidate K values (1, 2, 4, …,
// capped by MaxConcurrency, Workers and the shot count) on the first shots
// of the survey — every probed shot's result is kept — and returns the
// fastest K. Surveys too short to probe a candidate stop escalating; if the
// queue drains mid-probe the best K measured so far is reported.
func (e *engine) autotune() (int, []Probe, error) {
	maxK := e.cfg.Workers
	if e.cfg.MaxConcurrency > 0 && e.cfg.MaxConcurrency < maxK {
		maxK = e.cfg.MaxConcurrency
	}
	if e.cfg.Shots < maxK {
		maxK = e.cfg.Shots
	}
	bestK, bestRate := 1, 0.0
	var probes []Probe
	for k := 1; k <= maxK; k *= 2 {
		want := k * e.cfg.ProbeShots
		if remaining := e.cfg.Shots - int(e.next.Load()); remaining < want {
			break // not enough shots left to measure this candidate fairly
		}
		t0 := time.Now()
		n, err := e.runPhase(k, want)
		if err != nil {
			return 0, nil, err
		}
		rate := 0.0
		if s := time.Since(t0).Seconds(); s > 0 {
			rate = float64(n) / s
		}
		probes = append(probes, Probe{K: k, Shots: n, ShotsPerSec: rate})
		if rate > bestRate {
			bestK, bestRate = k, rate
		}
	}
	return bestK, probes, nil
}
