// Package cachesim is the hardware substrate substitute for the paper's
// Xeon testbeds: a trace-driven, multi-level cache-hierarchy simulator.
//
// The paper's speedups come from wave-front temporal blocking reducing the
// traffic a stencil sweep pushes through the slower cache levels and DRAM.
// Since this reproduction runs in Go on whatever host is available (with no
// SIMD or cache pinning control), absolute wall-clock numbers cannot match
// the paper's; the simulator instead replays the exact memory-access pattern
// of each schedule against the cache configurations of the paper's two
// machines (Broadwell E5-2673 v4, Skylake 8171M) and reports per-level
// traffic. internal/roofline turns that traffic into predicted throughput,
// reproducing the shape of Figures 9 and 11.
//
// The model: inclusive set-associative caches with true-LRU replacement,
// write-back + write-allocate, 64-byte lines, and a single access stream
// (the per-socket shared LLC sees the union of all cores' traffic; for
// traffic-ratio purposes a single-stream replay of the full iteration space
// is the appropriate model).
package cachesim

import "fmt"

// LineSize is the cache line size in bytes for all levels.
const LineSize = 64

// Level describes one cache level.
type Level struct {
	Name       string
	SizeBytes  int
	Assoc      int
	nsets      int
	tags       []uint64 // nsets × assoc; 0 = invalid
	dirty      []bool
	lru        []uint8 // age per way: 0 = MRU
	Accesses   uint64  // lookups arriving at this level
	Misses     uint64
	WriteBacks uint64
}

// Hierarchy is a stack of levels backed by DRAM.
type Hierarchy struct {
	Levels []*Level
	// DRAMReads/DRAMWrites count lines transferred to/from memory.
	DRAMReads, DRAMWrites uint64
}

// Config identifies a machine's cache configuration.
type Config struct {
	Name   string
	Levels []LevelSpec
}

// LevelSpec sizes one level.
type LevelSpec struct {
	Name      string
	SizeBytes int
	Assoc     int
}

// Broadwell returns the cache configuration of the paper's first system:
// Intel Broadwell E5-2673 v4 — L1 32 KB, L2 256 KB private, 50 MB shared L3.
func Broadwell() Config {
	return Config{Name: "Broadwell", Levels: []LevelSpec{
		{"L1", 32 << 10, 8},
		{"L2", 256 << 10, 8},
		{"L3", 50 << 20, 20},
	}}
}

// Skylake returns the cache configuration of the paper's second system:
// Intel Skylake Platinum 8171M — L1 32 KB, L2 1 MB private, 35.75 MB L3.
func Skylake() Config {
	return Config{Name: "Skylake", Levels: []LevelSpec{
		{"L1", 32 << 10, 8},
		{"L2", 1 << 20, 16},
		{"L3", 35750 << 10, 11},
	}}
}

// Scaled returns c with every cache level scaled by factor f (> 0). The
// trace generators run on reduced grids to keep simulation time reasonable;
// scaling the caches by the same working-set ratio preserves the
// fits/doesn't-fit structure that drives the traffic ratios.
func (c Config) Scaled(f float64) Config {
	out := Config{Name: c.Name, Levels: make([]LevelSpec, len(c.Levels))}
	for i, l := range c.Levels {
		sz := int(float64(l.SizeBytes) * f)
		if sz < LineSize*l.Assoc {
			sz = LineSize * l.Assoc
		}
		out.Levels[i] = LevelSpec{l.Name, sz, l.Assoc}
	}
	return out
}

// New builds a hierarchy from a configuration.
func New(c Config) *Hierarchy {
	h := &Hierarchy{}
	for _, spec := range c.Levels {
		nsets := spec.SizeBytes / (LineSize * spec.Assoc)
		if nsets <= 0 {
			panic(fmt.Sprintf("cachesim: level %s too small", spec.Name))
		}
		l := &Level{
			Name:      spec.Name,
			SizeBytes: spec.SizeBytes,
			Assoc:     spec.Assoc,
			nsets:     nsets,
			tags:      make([]uint64, nsets*spec.Assoc),
			dirty:     make([]bool, nsets*spec.Assoc),
			lru:       make([]uint8, nsets*spec.Assoc),
		}
		// Ages within a set must form a permutation 0..assoc-1 for the
		// relative-aging update in touch to stay consistent.
		for i := range l.lru {
			l.lru[i] = uint8(i % spec.Assoc)
		}
		h.Levels = append(h.Levels, l)
	}
	return h
}

// lookup probes one level for a line; on hit it refreshes LRU and returns
// true. On miss it returns false; the caller inserts via insert.
func (l *Level) lookup(line uint64) bool {
	set := int(line % uint64(l.nsets))
	base := set * l.Assoc
	for w := 0; w < l.Assoc; w++ {
		if l.tags[base+w] == line+1 { // +1: 0 means invalid
			l.touch(base, w)
			return true
		}
	}
	return false
}

// touch makes way w of the set at base the MRU entry.
func (l *Level) touch(base, w int) {
	age := l.lru[base+w]
	for i := 0; i < l.Assoc; i++ {
		if l.lru[base+i] < age {
			l.lru[base+i]++
		}
	}
	l.lru[base+w] = 0
}

// insert places a line, evicting the LRU way; returns the victim line and
// whether it was dirty (needs write-back), with present=false if the way
// was empty.
func (l *Level) insert(line uint64, dirty bool) (victim uint64, victimDirty, present bool) {
	set := int(line % uint64(l.nsets))
	base := set * l.Assoc
	w := 0
	for i := 0; i < l.Assoc; i++ {
		if l.tags[base+i] == 0 {
			w = i
			present = false
			goto place
		}
		if l.lru[base+i] > l.lru[base+w] {
			w = i
		}
	}
	if l.tags[base+w] != 0 {
		victim = l.tags[base+w] - 1
		victimDirty = l.dirty[base+w]
		present = true
	}
place:
	l.tags[base+w] = line + 1
	l.dirty[base+w] = dirty
	l.touch(base, w)
	return victim, victimDirty, present
}

// markDirty sets the dirty bit of a resident line (after a write hit).
func (l *Level) markDirty(line uint64) {
	set := int(line % uint64(l.nsets))
	base := set * l.Assoc
	for w := 0; w < l.Assoc; w++ {
		if l.tags[base+w] == line+1 {
			l.dirty[base+w] = true
			return
		}
	}
}

// Access performs one load (write=false) or store (write=true) of the line
// containing byte address addr.
func (h *Hierarchy) Access(addr uint64, write bool) {
	line := addr / LineSize
	// Probe down the hierarchy.
	hitLevel := len(h.Levels)
	for i, l := range h.Levels {
		l.Accesses++
		if l.lookup(line) {
			hitLevel = i
			break
		}
		l.Misses++
	}
	if hitLevel == len(h.Levels) {
		h.DRAMReads++
	}
	// Fill the line into every level above the hit (write-allocate), with
	// evictions cascading to the next level down.
	for i := hitLevel - 1; i >= 0; i-- {
		victim, vd, present := h.Levels[i].insert(line, false)
		if present && vd {
			h.writeBackFrom(i, victim)
		}
	}
	if write {
		h.Levels[0].markDirty(line)
	}
}

// writeBackFrom pushes a dirty victim from level i to level i+1 (or DRAM).
func (h *Hierarchy) writeBackFrom(i int, line uint64) {
	h.Levels[i].WriteBacks++
	if i+1 >= len(h.Levels) {
		h.DRAMWrites++
		return
	}
	nxt := h.Levels[i+1]
	if nxt.lookup(line) {
		nxt.markDirty(line)
		return
	}
	// Inclusive fill of the dirty line.
	victim, vd, present := nxt.insert(line, true)
	if present && vd {
		h.writeBackFrom(i+1, victim)
	}
}

// Traffic summarizes the bytes crossing each boundary of the hierarchy.
type Traffic struct {
	Name string
	// Boundary[i] counts lines crossing the boundary below level i in
	// either direction: Boundary[0] is L2↔L1 traffic (L1 fills +
	// write-backs), Boundary[1] is L3↔L2, and the last entry is DRAM↔LLC.
	Boundary []uint64
	// DRAMBytes is the last boundary in bytes (reads + write-backs).
	DRAMBytes uint64
	// Accesses is the total number of L1 lookups.
	Accesses uint64
}

// Snapshot extracts the traffic counters.
func (h *Hierarchy) Snapshot(name string) Traffic {
	t := Traffic{Name: name, Boundary: make([]uint64, len(h.Levels))}
	if len(h.Levels) > 0 {
		t.Accesses = h.Levels[0].Accesses
	}
	for i, l := range h.Levels {
		if i == len(h.Levels)-1 {
			t.Boundary[i] = h.DRAMReads + h.DRAMWrites
			continue
		}
		t.Boundary[i] = l.Misses + l.WriteBacks
	}
	t.DRAMBytes = (h.DRAMReads + h.DRAMWrites) * LineSize
	return t
}

// BytesAt returns the byte traffic crossing the boundary below level idx
// (0 = L2↔L1, 1 = L3↔L2, last = DRAM).
func (t Traffic) BytesAt(idx int) uint64 {
	if idx >= len(t.Boundary) {
		return t.DRAMBytes
	}
	return t.Boundary[idx] * LineSize
}
