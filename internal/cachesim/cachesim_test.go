package cachesim

import "testing"

// tiny returns a hierarchy with one small L1 (4 sets × 2 ways = 8 lines)
// and a larger L2 for focused behavioural tests.
func tiny() *Hierarchy {
	return New(Config{Name: "tiny", Levels: []LevelSpec{
		{"L1", 4 * 2 * LineSize, 2},
		{"L2", 64 * 4 * LineSize, 4},
	}})
}

func TestColdMissThenHit(t *testing.T) {
	h := tiny()
	h.Access(0, false)
	if h.Levels[0].Misses != 1 || h.DRAMReads != 1 {
		t.Fatalf("cold access: L1 misses %d, DRAM reads %d", h.Levels[0].Misses, h.DRAMReads)
	}
	h.Access(4, false) // same line
	if h.Levels[0].Misses != 1 {
		t.Fatal("same-line access missed")
	}
	if h.Levels[0].Accesses != 2 {
		t.Fatalf("accesses %d", h.Levels[0].Accesses)
	}
}

func TestLRUEviction(t *testing.T) {
	h := tiny() // L1: 4 sets, 2 ways; lines mapping to set 0: 0, 4, 8, ...
	l := uint64(LineSize)
	h.Access(0*l*4, false) // set 0
	h.Access(1*l*4, false) // set 0 (line 4)
	h.Access(0*l*4, false) // refresh line 0 → MRU
	h.Access(2*l*4, false) // set 0: evicts line 4 (LRU)
	m := h.Levels[0].Misses
	h.Access(0*l*4, false) // line 0 must still be resident
	if h.Levels[0].Misses != m {
		t.Fatal("MRU line was evicted")
	}
	h.Access(1*l*4, false) // line 4 was evicted → miss
	if h.Levels[0].Misses != m+1 {
		t.Fatal("LRU line was not evicted")
	}
}

func TestEvictedLineHitsL2(t *testing.T) {
	h := tiny()
	l := uint64(LineSize)
	// Fill set 0 of L1 beyond capacity.
	for i := uint64(0); i < 3; i++ {
		h.Access(i*4*l, false)
	}
	d := h.DRAMReads
	h.Access(0, false) // evicted from L1, but resident in L2
	if h.DRAMReads != d {
		t.Fatal("L2 did not retain evicted line")
	}
}

func TestWriteBackOnDirtyEviction(t *testing.T) {
	h := tiny()
	l := uint64(LineSize)
	h.Access(0, true) // dirty line in set 0
	h.Access(1*4*l, false)
	h.Access(2*4*l, false) // evicts dirty line 0 from L1 → write-back to L2
	if h.Levels[0].WriteBacks != 1 {
		t.Fatalf("L1 write-backs %d, want 1", h.Levels[0].WriteBacks)
	}
	if h.DRAMWrites != 0 {
		t.Fatal("write-back went to DRAM though L2 holds the line")
	}
}

func TestDirtyLineReachesDRAMWhenCapacityExceeded(t *testing.T) {
	// Stream writes over a footprint far larger than both levels: every
	// line must eventually be written back to DRAM.
	h := tiny()
	nl := 4096
	for i := 0; i < nl; i++ {
		h.Access(uint64(i)*LineSize, true)
	}
	// Sweep again with reads to force the dirty lines out.
	for i := nl; i < 2*nl; i++ {
		h.Access(uint64(i)*LineSize, false)
	}
	if h.DRAMWrites == 0 {
		t.Fatal("no dirty lines reached DRAM")
	}
	if h.DRAMReads != uint64(2*nl) {
		t.Fatalf("DRAM reads %d, want %d (streaming, no reuse)", h.DRAMReads, 2*nl)
	}
}

func TestWorkingSetFitsNoSteadyStateMisses(t *testing.T) {
	h := tiny()
	// Working set: 6 distinct lines spread over different sets (< 8-line L1).
	lines := []uint64{0, 1, 2, 3, 4, 5}
	for pass := 0; pass < 3; pass++ {
		for _, ln := range lines {
			h.Access(ln*LineSize, false)
		}
	}
	if h.Levels[0].Misses != uint64(len(lines)) {
		t.Fatalf("steady-state misses: %d total, want %d cold only", h.Levels[0].Misses, len(lines))
	}
}

func TestSnapshotTrafficAccounting(t *testing.T) {
	h := tiny()
	for i := 0; i < 100; i++ {
		h.Access(uint64(i)*LineSize, false)
	}
	tr := h.Snapshot("t")
	// All 100 lines missed L1 and L2 → 100 lines crossed every boundary.
	if tr.DRAMBytes != 100*LineSize {
		t.Fatalf("DRAM bytes %d, want %d", tr.DRAMBytes, 100*LineSize)
	}
	if tr.Boundary[0] != 100 || tr.Boundary[1] != 100 {
		t.Fatalf("boundaries %v, want 100 lines each", tr.Boundary)
	}
	// Re-stream: everything hits L2 (fits) but misses L1 (too small) — the
	// L2→L1 boundary doubles, DRAM stays.
	for i := 0; i < 100; i++ {
		h.Access(uint64(i)*LineSize, false)
	}
	tr = h.Snapshot("t")
	if tr.Boundary[0] != 200 {
		t.Fatalf("L2→L1 lines %d, want 200 after second sweep", tr.Boundary[0])
	}
	if tr.DRAMBytes != 100*LineSize {
		t.Fatalf("DRAM grew on cached sweep: %d", tr.DRAMBytes)
	}
}

func TestConfigsAndScaling(t *testing.T) {
	b, s := Broadwell(), Skylake()
	if b.Levels[2].SizeBytes != 50<<20 {
		t.Fatal("Broadwell L3 size wrong")
	}
	if s.Levels[1].SizeBytes != 1<<20 {
		t.Fatal("Skylake L2 size wrong")
	}
	sc := b.Scaled(1.0 / 64)
	if sc.Levels[2].SizeBytes != (50<<20)/64 {
		t.Fatalf("scaled L3 %d", sc.Levels[2].SizeBytes)
	}
	// Scaling never collapses a level below one full set of ways.
	tinyScale := b.Scaled(1e-9)
	for _, l := range tinyScale.Levels {
		if l.SizeBytes < LineSize*l.Assoc {
			t.Fatalf("level %s scaled below minimum", l.Name)
		}
	}
	// Scaled configs still construct.
	New(sc)
	New(tinyScale)
}
