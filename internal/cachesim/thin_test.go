package cachesim_test

import (
	"testing"

	"wavetile/internal/cachesim"
	"wavetile/internal/tiling"
	"wavetile/internal/trace"
)

// Thin and degenerate trace grids: a single-row dimension (nx or ny == 1)
// must replay through the cache simulator without panics, and the traffic
// snapshot must stay structurally sound. These shapes arise when attribution
// clamps a run-scale configuration onto a reduced trace grid, and when thin
// slab domains are traced directly.

func thinShapes() []trace.Shape {
	return []trace.Shape{
		{Nx: 1, Ny: 24, Nz: 24, SO: 4, Nt: 2},
		{Nx: 24, Ny: 1, Nz: 24, SO: 4, Nt: 2},
		{Nx: 1, Ny: 1, Nz: 24, SO: 4, Nt: 2},
	}
}

func props(t *testing.T, sh trace.Shape, sink trace.Sink) []tiling.Propagator {
	t.Helper()
	return []tiling.Propagator{
		trace.NewAcoustic(sh, sink),
		trace.NewTTI(sh, sink),
		trace.NewElastic(sh, sink),
	}
}

func TestThinGridsSpatialReplay(t *testing.T) {
	for _, sh := range thinShapes() {
		h := cachesim.New(cachesim.Broadwell())
		for _, p := range props(t, sh, h) {
			tiling.RunSpatial(p, 8, 8, false)
		}
		tr := h.Snapshot("thin")
		if tr.Accesses == 0 || tr.DRAMBytes == 0 {
			t.Fatalf("%dx%d: no traffic simulated: %+v", sh.Nx, sh.Ny, tr)
		}
		for i, b := range tr.Boundary {
			if b == 0 {
				t.Fatalf("%dx%d: boundary %d saw no fills: %+v", sh.Nx, sh.Ny, i, tr)
			}
		}
		// Conservation: fills at an outer boundary can never exceed the
		// accesses that missed all inner levels plus the inner fills.
		if tr.DRAMBytes > tr.Accesses*cachesim.LineSize {
			t.Fatalf("%dx%d: DRAM bytes exceed total accessed lines", sh.Nx, sh.Ny)
		}
	}
}

func TestThinGridsWTBReplay(t *testing.T) {
	// WTB on a thin grid: tiles clamp to the 1-wide dimension. The schedule
	// must still visit every point and produce traffic.
	for _, sh := range thinShapes() {
		h := cachesim.New(cachesim.Broadwell())
		p := trace.NewAcoustic(sh, h)
		cfg := tiling.Config{TT: 2, TileX: 8, TileY: 8, BlockX: 4, BlockY: 4}
		if cfg.TileX < p.MinTile() {
			cfg.TileX = p.MinTile()
		}
		if cfg.TileY < p.MinTile() {
			cfg.TileY = p.MinTile()
		}
		if err := tiling.RunWTB(p, cfg); err != nil {
			t.Fatalf("%dx%d: %v", sh.Nx, sh.Ny, err)
		}
		if tr := h.Snapshot("thin-wtb"); tr.Accesses == 0 {
			t.Fatalf("%dx%d: WTB replay produced no accesses", sh.Nx, sh.Ny)
		}
	}
}

func TestThinGridScaledCacheStillSimulates(t *testing.T) {
	// The predictive tuner scales capacities down for small trace grids; a
	// deeply scaled hierarchy must remain valid on thin grids too.
	cfg := cachesim.Broadwell().Scaled(0.01)
	h := cachesim.New(cfg)
	p := trace.NewAcoustic(trace.Shape{Nx: 1, Ny: 16, Nz: 16, SO: 4, Nt: 1}, h)
	tiling.RunSpatial(p, 4, 4, false)
	tr := h.Snapshot("scaled-thin")
	if tr.Accesses == 0 || tr.DRAMBytes == 0 {
		t.Fatalf("scaled thin replay degenerate: %+v", tr)
	}
}
