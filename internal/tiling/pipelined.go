package tiling

import (
	"fmt"
	"time"

	"wavetile/internal/obs"
	"wavetile/internal/par"
	"wavetile/internal/sched"
)

// PipelineHooks customizes RunWTBPipelinedHooked. OnTaskDone, when
// non-nil, runs on the executing worker immediately after each non-empty
// task (bx, by, k) completes — internal/dist uses it to start packing
// halo planes the moment the last boundary tile of a time tile finishes,
// overlapping the exchange with interior compute. The hook must be safe
// for concurrent calls on distinct tasks and must not block on work that
// depends on tasks of the same time tile.
type PipelineHooks struct {
	OnTaskDone func(bx, by, k int)
}

// RunWTBPipelined executes the WTB schedule with the space-time tiles of
// each time tile run as a dependency task graph (internal/sched) instead
// of the sequential lexicographic sweep of RunWTB: tiles whose
// predecessors have completed execute concurrently on the persistent par
// pool, with no global barrier between the wavefronts of one time tile.
//
// The task graph orders exactly the pairs of tiles whose footprints
// overlap (see internal/sched for the derivation from TimeSkew and
// MaxPhaseOffset), every grid point is written by exactly one task per
// time level, and the per-point kernels are identical — so the result is
// bitwise identical to RunWTB for any worker count, a property
// internal/verify asserts across its scenario sweep.
func RunWTBPipelined(p Propagator, cfg Config) error {
	return RunWTBPipelinedRange(p, cfg, 0, p.Steps())
}

// RunWTBPipelinedRange runs the pipelined schedule over [tFrom, tTo)
// only; time tiles remain sequential (each tile's graph drains before the
// next begins), which is what lets distributed callers interleave halo
// exchanges between tiles.
func RunWTBPipelinedRange(p Propagator, cfg Config, tFrom, tTo int) error {
	return RunWTBPipelinedHooked(p, cfg, tFrom, tTo, PipelineHooks{})
}

// RunWTBPipelinedHooked is RunWTBPipelinedRange with per-task completion
// hooks.
func RunWTBPipelinedHooked(p Propagator, cfg Config, tFrom, tTo int, h PipelineHooks) error {
	if err := cfg.Validate(p); err != nil {
		return err
	}
	p.SetBlocks(cfg.BlockX, cfg.BlockY)

	r := obs.Active()
	sp := r.Spans()
	var cTimeTiles *obs.Counter
	if r != nil {
		cTimeTiles = r.Counter("wtb_time_tiles")
	}

	for t0 := tFrom; t0 < tTo; t0 += cfg.TT {
		tt := min(cfg.TT, tTo-t0)
		var ttStart time.Time
		if r != nil {
			cTimeTiles.Add(1)
			ttStart = time.Now()
		}
		tg := NewTileGrid(p, cfg, tt)
		g := sched.NewTileGraph(tg.NBX, tg.NBY, tt, p.MaxPhaseOffset() > 0, tg.Empty)
		base := t0
		workers := cfg.Workers
		if workers <= 0 {
			workers = par.Workers
		}
		g.Run(workers, func(worker, bx, by, k int) {
			var taskStart time.Time
			if sp.On() {
				taskStart = time.Now()
			}
			p.Step(base+k, tg.Raw(bx, by, k), true)
			if sp.On() {
				// Unlike the sequential WTB tracer, tasks here carry the id
				// of the worker that actually ran them, so pipeline gaps and
				// steal imbalance are visible per lane in the trace viewer.
				sp.Complete(fmt.Sprintf("task %d,%d k=%d", bx, by, k), "sched", worker,
					taskStart, time.Since(taskStart),
					map[string]any{"bx": bx, "by": by, "k": k, "t": base + k})
			}
			if h.OnTaskDone != nil {
				h.OnTaskDone(bx, by, k)
			}
		})
		if r != nil {
			if sp.On() {
				sp.Complete(fmt.Sprintf("time-tile %d..%d", t0, t0+tt), "sched", 0,
					ttStart, time.Since(ttStart), map[string]any{"t0": t0, "t1": t0 + tt})
			}
			r.StepsDone(t0+tt, p.Steps())
		}
	}
	return nil
}
