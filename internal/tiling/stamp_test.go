package tiling

import (
	"fmt"
	"sync"
	"testing"

	"wavetile/internal/grid"
)

// stampProp is a symbolic dependency checker: instead of physics it tracks,
// per (x, y) column, the time index each field phase currently holds, and
// verifies on every read that the value a real kernel would consume is at
// the correct time level — catching both stale reads (overwritten too late)
// and fresh reads (overwritten too early) that value-based tests may miss
// when the numerical effect is tiny.
//
// Phase p reads phase p-1 (or the last phase of the previous timestep, for
// p = 0) over a halo of `radius`, and its own previous value pointwise.
type stampProp struct {
	nx, ny, nt int
	radius     int
	phases     int   // number of field phases per timestep
	offs       []int // per-phase region offset (multiples of radius)
	pingPong   bool  // single-phase two-buffer mode (acoustic leapfrog)
	stamp      [][]int32
	blockX     int
	blockY     int
	errMu      sync.Mutex // errs is appended from concurrent pipelined tasks
	errs       []string
}

// errf records a dependency violation; safe for concurrent Steps (the
// pipelined schedule runs independent tiles on several workers).
func (s *stampProp) errf(format string, args ...any) {
	s.errMu.Lock()
	if len(s.errs) < 8 {
		s.errs = append(s.errs, fmt.Sprintf(format, args...))
	}
	s.errMu.Unlock()
}

func newStampProp(nx, ny, nt, radius, phases int, offs []int) *stampProp {
	s := &stampProp{nx: nx, ny: ny, nt: nt, radius: radius, phases: phases, offs: offs}
	s.stamp = make([][]int32, phases)
	for p := range s.stamp {
		s.stamp[p] = make([]int32, nx*ny) // all at time 0 initially
	}
	return s
}

// newStampPingPong models a single-phase leapfrog propagator with two
// in-place buffers (the acoustic/TTI memory layout): buffer b holds times of
// parity b; computing time t+1 reads buffer t&1 at ±radius (must hold t) and
// overwrites buffer (t+1)&1 (which must hold t−1).
func newStampPingPong(nx, ny, nt, radius int) *stampProp {
	s := &stampProp{nx: nx, ny: ny, nt: nt, radius: radius, phases: 1, offs: []int{0}, pingPong: true}
	s.stamp = [][]int32{make([]int32, nx*ny), make([]int32, nx*ny)}
	for i := range s.stamp[1] {
		s.stamp[1][i] = -1 // buffer 1 holds "time −1" (zero initial data)
	}
	return s
}

func (s *stampProp) GridShape() (int, int) { return s.nx, s.ny }
func (s *stampProp) Steps() int            { return s.nt }
func (s *stampProp) TimeSkew() int         { return s.phases * s.radius }
func (s *stampProp) MaxPhaseOffset() int {
	o := 0
	for _, v := range s.offs {
		if v > o {
			o = v
		}
	}
	return o
}
func (s *stampProp) MinTile() int         { return 2 * s.radius * s.phases }
func (s *stampProp) SetBlocks(bx, by int) { s.blockX, s.blockY = bx, by }
func (s *stampProp) ApplySparse(int)      {}

func (s *stampProp) Step(t int, raw grid.Region, fused bool) {
	if s.pingPong {
		s.stepPingPong(t, raw)
		return
	}
	for p := 0; p < s.phases; p++ {
		reg := raw.Shift(-s.offs[p], -s.offs[p]).Clamp(s.nx, s.ny)
		if reg.Empty() {
			continue
		}
		// Which field does phase p read, and at which time level must it be?
		readPhase := p - 1
		want := int32(t + 1)
		if p == 0 {
			readPhase = s.phases - 1
			want = int32(t)
		}
		src := s.stamp[readPhase]
		// Sequential check+write (races are ForBlocks' concern, already
		// tested); halo reads outside the domain are always fine (zeros).
		for x := reg.X0; x < reg.X1; x++ {
			for y := reg.Y0; y < reg.Y1; y++ {
				for dx := -s.radius; dx <= s.radius; dx++ {
					for dy := -s.radius; dy <= s.radius; dy++ {
						xx, yy := x+dx, y+dy
						if xx < 0 || xx >= s.nx || yy < 0 || yy >= s.ny {
							continue
						}
						if got := src[xx*s.ny+yy]; got != want {
							s.errf(
								"phase %d computing t=%d at (%d,%d): read phase %d at (%d,%d) holds t=%d, want t=%d",
								p, t+1, x, y, readPhase, xx, yy, got, want)
						}
					}
				}
				// Own previous value must be at time t.
				if got := s.stamp[p][x*s.ny+y]; got != int32(t) {
					s.errf(
						"phase %d computing t=%d at (%d,%d): own value holds t=%d, want t=%d",
						p, t+1, x, y, got, t)
				}
				s.stamp[p][x*s.ny+y] = int32(t + 1)
			}
		}
	}
}

func (s *stampProp) stepPingPong(t int, raw grid.Region) {
	reg := raw.Clamp(s.nx, s.ny)
	if reg.Empty() {
		return
	}
	rd := s.stamp[t&1]
	wr := s.stamp[(t+1)&1]
	for x := reg.X0; x < reg.X1; x++ {
		for y := reg.Y0; y < reg.Y1; y++ {
			for dx := -s.radius; dx <= s.radius; dx++ {
				for dy := -s.radius; dy <= s.radius; dy++ {
					xx, yy := x+dx, y+dy
					if xx < 0 || xx >= s.nx || yy < 0 || yy >= s.ny {
						continue
					}
					if got := rd[xx*s.ny+yy]; got != int32(t) {
						if len(s.errs) < 8 {
							s.errs = append(s.errs, fmt.Sprintf(
								"computing t=%d at (%d,%d): read buffer holds t=%d at (%d,%d), want t=%d",
								t+1, x, y, got, xx, yy, t))
						}
					}
				}
			}
			if got := wr[x*s.ny+y]; got != int32(t-1) {
				if len(s.errs) < 8 {
					s.errs = append(s.errs, fmt.Sprintf(
						"computing t=%d at (%d,%d): write buffer holds t=%d, want t=%d",
						t+1, x, y, got, t-1))
				}
			}
			wr[x*s.ny+y] = int32(t + 1)
		}
	}
}

func TestWTBDependencyStampsSinglePhase(t *testing.T) {
	for _, r := range []int{1, 2, 4, 6} {
		for _, cfg := range []Config{
			{TT: 4, TileX: 4 * r, TileY: 4 * r, BlockX: 8, BlockY: 8},
			{TT: 7, TileX: 2 * r, TileY: 2 * r, BlockX: 4, BlockY: 4},
			{TT: 16, TileX: 6 * r, TileY: 4 * r, BlockX: 8, BlockY: 8},
		} {
			s := newStampPingPong(14*r, 10*r, 9, r)
			if err := RunWTB(s, cfg); err != nil {
				t.Fatal(err)
			}
			if len(s.errs) > 0 {
				t.Fatalf("r=%d %v: %v", r, cfg, s.errs)
			}
		}
	}
}

func TestWTBDependencyStampsTwoPhase(t *testing.T) {
	// Elastic-like: phase 0 (velocity) at offset 0, phase 1 (stress)
	// trailing by the radius; skew 2r.
	for _, r := range []int{1, 2, 4} {
		for _, cfg := range []Config{
			{TT: 4, TileX: 4 * r, TileY: 4 * r, BlockX: 8, BlockY: 8},
			{TT: 7, TileX: 4 * r, TileY: 4 * r, BlockX: 100, BlockY: 100},
			{TT: 9, TileX: 6 * r, TileY: 4 * r, BlockX: 8, BlockY: 8},
		} {
			s := newStampProp(14*r, 12*r, 9, r, 2, []int{0, r})
			if err := RunWTB(s, cfg); err != nil {
				t.Fatal(err)
			}
			if len(s.errs) > 0 {
				t.Fatalf("r=%d %v: %v", r, cfg, s.errs)
			}
		}
	}
}
