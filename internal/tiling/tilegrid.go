package tiling

import "wavetile/internal/grid"

// TileGrid is the precomputed geometry of one WTB time tile: how many
// skewed space tiles cover the domain, and where each tile's raw region
// sits at each local step. It factors the index arithmetic of Listing 6
// out of the schedule loops so the sequential runner (RunWTBRange), the
// pipelined task-graph runner (RunWTBPipelined) and the distributed
// boundary/interior split (internal/dist) all agree on tile placement by
// construction.
type TileGrid struct {
	Cfg       Config
	Skew, Off int // wavefront shift per local step; laggard-phase offset
	NX, NY    int
	TT        int // local steps in this time tile (≤ Cfg.TT on the last tile)
	NBX, NBY  int // tile counts, including the extra tiles that start past the edge
}

// NewTileGrid computes the tile layout for one time tile of tt local
// steps. Regions shift left/up by Skew per local step, so enough extra
// tiles start beyond the right/bottom edge that shifted regions still
// cover the domain at the last level.
func NewTileGrid(p Propagator, cfg Config, tt int) TileGrid {
	nx, ny := p.GridShape()
	s := p.TimeSkew() + FaultSkewDelta
	off := p.MaxPhaseOffset()
	shift := (tt-1)*s + off
	return TileGrid{
		Cfg: cfg, Skew: s, Off: off, NX: nx, NY: ny, TT: tt,
		NBX: (nx + shift + cfg.TileX - 1) / cfg.TileX,
		NBY: (ny + shift + cfg.TileY - 1) / cfg.TileY,
	}
}

// Raw returns the raw (unclamped, possibly out-of-domain) region of tile
// (bx, by) at local step k — the region handed to Propagator.Step, which
// clamps it per field phase.
func (g TileGrid) Raw(bx, by, k int) grid.Region {
	r := grid.Region{X0: bx*g.Cfg.TileX - k*g.Skew, Y0: by*g.Cfg.TileY - k*g.Skew}
	r.X1 = r.X0 + g.Cfg.TileX
	r.Y1 = r.Y0 + g.Cfg.TileY
	return r
}

// Empty reports whether tile (bx, by) at local step k cannot intersect
// the domain for any field phase (phases shift further left by ≤ Off) —
// the skip predicate of the sequential schedule, and the empty-task
// predicate of the pipelined one.
func (g TileGrid) Empty(bx, by, k int) bool {
	r := g.Raw(bx, by, k)
	return r.X1 <= 0 || r.Y1 <= 0 || r.X0-g.Off >= g.NX || r.Y0-g.Off >= g.NY
}
