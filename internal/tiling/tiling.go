// Package tiling implements the two execution schedules compared in the
// paper:
//
//   - spatial cache blocking (the highly-optimized baseline, Fig. 4a): each
//     timestep updates the whole grid in parallel blocks, then applies the
//     sparse off-the-grid operators;
//   - wave-front temporal blocking, WTB (Listing 6, Figs. 7–8): the time
//     axis is split into tiles of depth TT; within a time tile, skewed
//     space tiles are evaluated sequentially, each carrying its points
//     through all TT timesteps while they remain cache-resident. Every
//     wavefront update is parallelized over block_x × block_y sub-blocks.
//
// The schedules drive a Propagator through its Step method; the propagator
// owns the per-point kernels, clamps regions per field phase (multi-grid
// wavefronts, Fig. 8b), and applies the fused sparse operators of
// internal/core. Because both schedules invoke the exact same kernel code on
// the exact same points (merely reordered), their results are bitwise
// identical — the property the correctness tests assert.
package tiling

import (
	"fmt"
	"sync"
	"time"

	"wavetile/internal/grid"
	"wavetile/internal/obs"
	"wavetile/internal/par"
)

// Propagator is a time-stepping wave kernel that the schedules can drive.
type Propagator interface {
	// GridShape returns the extents of the tiled (x, y) dimensions.
	GridShape() (nx, ny int)
	// Steps returns the number of timesteps nt.
	Steps() int
	// TimeSkew returns the wavefront shift per timestep inside a tile: the
	// stencil radius for single-phase propagators, and the accumulated
	// per-phase radii for multi-grid staggered systems (Fig. 8b).
	TimeSkew() int
	// MaxPhaseOffset returns how far (≥ 0) the laggard field phase trails
	// the base region inside one timestep; 0 for single-phase propagators.
	MaxPhaseOffset() int
	// MinTile returns the smallest legal tile edge (dependency margin).
	MinTile() int
	// SetBlocks fixes the intra-region parallel block shape.
	SetBlocks(bx, by int)
	// Step advances the propagator from time index t to t+1 on the raw
	// (possibly out-of-domain; clamp per phase) region. With fused=true the
	// precomputed sparse operators are applied inside the region; with
	// fused=false the caller applies them globally via ApplySparse.
	Step(t int, raw grid.Region, fused bool)
	// ApplySparse applies the baseline (Listing 1) off-the-grid operators
	// for the step that computed time index t+1.
	ApplySparse(t int)
}

// Config are the WTB schedule parameters of the paper's Table I.
type Config struct {
	TT             int // time-tile depth (timesteps kept in cache)
	TileX, TileY   int // space-tile shape (wavefront extent per time level)
	BlockX, BlockY int // parallel sub-block shape inside a wavefront update

	// Workers caps the worker count of the pipelined task-graph runner
	// (RunWTBPipelined*); 0 means par.Workers. Survey drivers running K
	// shots concurrently set it to Workers/K so the K task graphs split
	// the machine instead of oversubscribing it. The sequential schedules
	// (RunSpatial, RunWTB) parallelize through the shared par pool, whose
	// dynamic chunk claiming load-balances concurrent callers on its own,
	// so they take no explicit cap. Results are bitwise identical for any
	// value (the worker-count invariance internal/verify asserts).
	Workers int
}

func (c Config) String() string {
	return fmt.Sprintf("TT=%d tile=%dx%d block=%dx%d", c.TT, c.TileX, c.TileY, c.BlockX, c.BlockY)
}

// Validate checks the configuration against a propagator's dependency
// margins.
func (c Config) Validate(p Propagator) error {
	if c.TT < 1 {
		return fmt.Errorf("tiling: time tile depth %d < 1", c.TT)
	}
	if mt := p.MinTile(); c.TileX < mt || c.TileY < mt {
		return fmt.Errorf("tiling: tile %dx%d below dependency margin %d", c.TileX, c.TileY, mt)
	}
	return nil
}

// blockBufs recycles the per-step block lists of ForBlocks across calls.
// Every Step of every propagator splits its region here, so on a survey's
// steady state this pool is what keeps the schedule hot path allocation-
// free. Safe because the block slice is fully consumed (par.For joins)
// before the buffer is returned.
var blockBufs = sync.Pool{New: func() any { return new([]grid.Region) }}

// ForBlocks splits reg into bx×by blocks and runs f on each in parallel.
// Propagators use it to parallelize one wavefront (or one baseline
// timestep) over sub-blocks, the analogue of the paper's OpenMP loops.
func ForBlocks(reg grid.Region, bx, by int, f func(grid.Region)) {
	bp := blockBufs.Get().(*[]grid.Region)
	blocks := reg.AppendBlocks((*bp)[:0], bx, by)
	if len(blocks) == 1 {
		f(blocks[0])
	} else {
		par.For(len(blocks), func(i int) { f(blocks[i]) })
	}
	*bp = blocks[:0]
	blockBufs.Put(bp)
}

// ForBlocksIndexed is ForBlocks with the parallel worker index passed to f,
// so instrumented propagators can attribute block work per worker (making
// par contention and load imbalance visible in obs snapshots).
func ForBlocksIndexed(reg grid.Region, bx, by int, f func(worker int, b grid.Region)) {
	bp := blockBufs.Get().(*[]grid.Region)
	blocks := reg.AppendBlocks((*bp)[:0], bx, by)
	if len(blocks) == 1 {
		f(0, blocks[0])
	} else {
		par.ForWorkers(len(blocks), func(w, i int) { f(w, blocks[i]) })
	}
	*bp = blocks[:0]
	blockBufs.Put(bp)
}

// RunSpatial executes the spatially-blocked baseline schedule: for every
// timestep, the full grid is stepped in parallel blocks; the sparse
// operators are then applied — fused (precomputed scheme) or unfused
// (the paper's Listing 1 baseline) according to fused.
func RunSpatial(p Propagator, blockX, blockY int, fused bool) {
	p.SetBlocks(blockX, blockY)
	nx, ny := p.GridShape()
	// The raw region extends past the domain by the propagator's phase
	// offset so that laggard phases (which shift their region back before
	// clamping) still cover the full domain.
	off := p.MaxPhaseOffset()
	full := grid.Region{X0: 0, X1: nx + off, Y0: 0, Y1: ny + off}
	nt := p.Steps()
	r := obs.Active()
	sp := r.Spans()
	for t := 0; t < nt; t++ {
		var stepStart time.Time
		if sp.On() {
			stepStart = time.Now()
		}
		p.Step(t, full, fused)
		if !fused {
			if r != nil {
				sparseStart := time.Now()
				p.ApplySparse(t)
				r.AddPhase(obs.PhaseSparse, time.Since(sparseStart))
			} else {
				p.ApplySparse(t)
			}
		}
		if sp.On() {
			sp.Complete(fmt.Sprintf("step %d", t), "spatial", 0, stepStart, time.Since(stepStart),
				map[string]any{"t": t})
		}
		if r != nil {
			r.StepsDone(t+1, nt)
		}
	}
}

// FaultSkewDelta perturbs the wavefront skew used by RunWTBRange. It exists
// solely for the differential-verification harness (internal/verify), which
// sets it to −1 to prove the schedule-equivalence oracle detects the
// dependency violations an off-by-one in the wavefront offset causes;
// production code must leave it zero. It must not be mutated while a
// schedule is running.
var FaultSkewDelta int

// RunWTB executes the wave-front temporal blocking schedule of Listing 6.
//
// For each time tile [t0, t0+tt): space tiles are visited sequentially in
// lexicographic order; tile (bx, by) carries its points through all tt
// local timesteps, its region shifting by −TimeSkew per local step k (the
// wavefront angle of Fig. 7). In-place two-level wavefield buffers remain
// consistent because, at the moment tile (bx,by) performs local step k,
// every value it reads was produced by this tile or an earlier tile at the
// correct time level and has not yet been overwritten — the skew makes all
// inter-tile dependencies point lexicographically backwards. Sparse
// operators are always fused under WTB (that is the point of the paper).
func RunWTB(p Propagator, cfg Config) error {
	return RunWTBRange(p, cfg, 0, p.Steps())
}

// RunWTBRange runs the WTB schedule over the time range [tFrom, tTo) only.
// Callers that interleave tiles with other work — e.g. halo exchanges in a
// distributed decomposition — drive one time tile at a time through this
// entry point.
func RunWTBRange(p Propagator, cfg Config, tFrom, tTo int) error {
	if err := cfg.Validate(p); err != nil {
		return err
	}
	p.SetBlocks(cfg.BlockX, cfg.BlockY)

	// Observability: counters are looked up once outside the tile loops; the
	// span sinks (Chrome tracer and/or flight recorder) get one span per
	// (time-tile, space-tile) plus one per time tile. All of it is skipped
	// (r == nil) when observability is off.
	r := obs.Active()
	sp := r.Spans()
	var cTimeTiles, cTiles, cSkipped *obs.Counter
	if r != nil {
		cTimeTiles = r.Counter("wtb_time_tiles")
		cTiles = r.Counter("wtb_space_tiles")
		cSkipped = r.Counter("wtb_subtiles_skipped")
	}

	for t0 := tFrom; t0 < tTo; t0 += cfg.TT {
		tt := min(cfg.TT, tTo-t0)
		var ttStart time.Time
		var phasesBefore [obs.NumPhases]int64
		if r != nil {
			cTimeTiles.Add(1)
			ttStart = time.Now()
			if sp.On() {
				phasesBefore = r.PhaseWalls()
			}
		}
		tg := NewTileGrid(p, cfg, tt)
		for bx := 0; bx < tg.NBX; bx++ {
			for by := 0; by < tg.NBY; by++ {
				var tileStart time.Time
				if sp.On() {
					tileStart = time.Now()
				}
				worked := false
				for k := 0; k < tt; k++ {
					if tg.Empty(bx, by, k) {
						if cSkipped != nil {
							cSkipped.Add(1)
						}
						continue
					}
					worked = true
					p.Step(t0+k, tg.Raw(bx, by, k), true)
				}
				if r != nil && worked {
					cTiles.Add(1)
					if sp.On() {
						// No worker field: this loop runs the wavefront's
						// tiles sequentially, so there is no worker
						// attribution to record.
						sp.Complete(fmt.Sprintf("tile %d,%d", bx, by), "wtb", 1,
							tileStart, time.Since(tileStart),
							map[string]any{"bx": bx, "by": by, "t0": t0, "t1": t0 + tt})
					}
				}
			}
		}
		if r != nil {
			if sp.On() {
				args := map[string]any{"t0": t0, "t1": t0 + tt}
				after := r.PhaseWalls()
				for ph := obs.Phase(0); ph < obs.NumPhases; ph++ {
					if d := after[ph] - phasesBefore[ph]; d > 0 {
						args[ph.String()+"_ms"] = float64(d) / 1e6
					}
				}
				sp.Complete(fmt.Sprintf("time-tile %d..%d", t0, t0+tt), "wtb", 0,
					ttStart, time.Since(ttStart), args)
			}
			r.StepsDone(t0+tt, p.Steps())
		}
	}
	return nil
}
