package tiling

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"wavetile/internal/par"
)

// withWorkers raises the par pool size for a test so the pipelined
// schedule actually runs tiles concurrently even on a single-CPU host.
func withWorkers(t *testing.T, w int) {
	t.Helper()
	old := par.Workers
	par.Workers = w
	t.Cleanup(func() { par.Workers = old })
}

func TestWTBPipelinedCoversExactlyOnceSinglePhase(t *testing.T) {
	withWorkers(t, 4)
	cases := []struct {
		nx, ny, nt, skew int
		cfg              Config
	}{
		{32, 32, 9, 2, Config{TT: 4, TileX: 8, TileY: 8, BlockX: 4, BlockY: 4}},
		{40, 24, 11, 4, Config{TT: 3, TileX: 16, TileY: 8, BlockX: 8, BlockY: 8}},
		{17, 33, 5, 1, Config{TT: 5, TileX: 7, TileY: 9, BlockX: 3, BlockY: 5}},
		{16, 16, 16, 2, Config{TT: 16, TileX: 16, TileY: 16, BlockX: 16, BlockY: 16}},
		{64, 16, 6, 6, Config{TT: 2, TileX: 12, TileY: 16, BlockX: 4, BlockY: 4}},
	}
	for _, c := range cases {
		m := newMock(c.nx, c.ny, c.nt, c.skew, []int{0})
		if err := RunWTBPipelined(m, c.cfg); err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		m.assertExactlyOnce(t)
	}
}

func TestWTBPipelinedCoversExactlyOnceMultiPhase(t *testing.T) {
	withWorkers(t, 4)
	for _, r := range []int{1, 2, 3} {
		m := newMock(36, 28, 7, 2*r, []int{0, r})
		cfg := Config{TT: 3, TileX: 4 * r, TileY: 6 * r, BlockX: 5, BlockY: 3}
		if err := RunWTBPipelined(m, cfg); err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		m.assertExactlyOnce(t)
	}
}

// TestWTBPipelinedCoverageProperty mirrors TestWTBCoverageProperty for the
// task-graph runner: random legal configurations must preserve the
// exactly-once invariant under concurrent tile execution.
func TestWTBPipelinedCoverageProperty(t *testing.T) {
	withWorkers(t, 4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		skew := 1 + rng.Intn(4)
		phases := []int{0}
		if rng.Intn(2) == 1 { // elastic-like
			phases = []int{0, skew}
			skew *= 2
		}
		nx := 2*skew + 1 + rng.Intn(40)
		ny := 2*skew + 1 + rng.Intn(40)
		nt := 1 + rng.Intn(9)
		cfg := Config{
			TT:     1 + rng.Intn(5),
			TileX:  2*skew + rng.Intn(20),
			TileY:  2*skew + rng.Intn(20),
			BlockX: 1 + rng.Intn(12),
			BlockY: 1 + rng.Intn(12),
		}
		m := newMock(nx, ny, nt, skew, phases)
		if err := RunWTBPipelined(m, cfg); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for p := range m.counts {
			for _, c := range m.counts[p] {
				if c != 1 {
					t.Logf("seed %d cfg %+v nx=%d ny=%d nt=%d skew=%d phases=%v: coverage violation",
						seed, cfg, nx, ny, nt, skew, phases)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestWTBPipelinedDependencyStamps runs the symbolic time-level checker
// under the concurrent schedule: any tile executing before a predecessor
// it reads from (or overwriting a value a neighbour still needs) shows up
// as a stale/fresh stamp. This is the direct test that the task graph's
// edge set is sufficient.
func TestWTBPipelinedDependencyStamps(t *testing.T) {
	withWorkers(t, 4)
	for _, r := range []int{1, 2, 4} {
		for _, cfg := range []Config{
			{TT: 4, TileX: 4 * r, TileY: 4 * r, BlockX: 8, BlockY: 8},
			{TT: 7, TileX: 2 * r, TileY: 2 * r, BlockX: 4, BlockY: 4},
			{TT: 16, TileX: 6 * r, TileY: 4 * r, BlockX: 8, BlockY: 8},
		} {
			s := newStampPingPong(14*r, 10*r, 9, r)
			if err := RunWTBPipelined(s, cfg); err != nil {
				t.Fatal(err)
			}
			if len(s.errs) > 0 {
				t.Fatalf("ping-pong r=%d %v: %v", r, cfg, s.errs)
			}
		}
	}
	for _, r := range []int{1, 2, 4} {
		for _, cfg := range []Config{
			{TT: 4, TileX: 4 * r, TileY: 4 * r, BlockX: 8, BlockY: 8},
			{TT: 9, TileX: 6 * r, TileY: 4 * r, BlockX: 8, BlockY: 8},
		} {
			s := newStampProp(14*r, 12*r, 9, r, 2, []int{0, r})
			if err := RunWTBPipelined(s, cfg); err != nil {
				t.Fatal(err)
			}
			if len(s.errs) > 0 {
				t.Fatalf("two-phase r=%d %v: %v", r, cfg, s.errs)
			}
		}
	}
}

func TestWTBPipelinedRangeComposes(t *testing.T) {
	withWorkers(t, 4)
	m := newMock(24, 20, 12, 2, []int{0})
	cfg := Config{TT: 3, TileX: 8, TileY: 8, BlockX: 4, BlockY: 4}
	for t0 := 0; t0 < 12; t0 += 4 {
		if err := RunWTBPipelinedRange(m, cfg, t0, t0+4); err != nil {
			t.Fatal(err)
		}
	}
	m.assertExactlyOnce(t)
}

// TestWTBPipelinedHookFiresPerTask asserts OnTaskDone runs exactly once
// per non-empty space-time tile — the contract the dist overlap path's
// boundary countdowns depend on.
func TestWTBPipelinedHookFiresPerTask(t *testing.T) {
	withWorkers(t, 4)
	m := newMock(30, 26, 10, 2, []int{0})
	cfg := Config{TT: 4, TileX: 8, TileY: 8, BlockX: 8, BlockY: 8}
	var mu sync.Mutex
	seen := map[[3]int]int{}
	var calls atomic.Int64
	h := PipelineHooks{OnTaskDone: func(bx, by, k int) {
		calls.Add(1)
		mu.Lock()
		seen[[3]int{bx, by, k}]++
		mu.Unlock()
	}}
	if err := RunWTBPipelinedHooked(m, cfg, 0, m.nt, h); err != nil {
		t.Fatal(err)
	}
	m.assertExactlyOnce(t)
	want := 0
	for t0 := 0; t0 < m.nt; t0 += cfg.TT {
		tt := min(cfg.TT, m.nt-t0)
		tg := NewTileGrid(m, cfg, tt)
		for bx := 0; bx < tg.NBX; bx++ {
			for by := 0; by < tg.NBY; by++ {
				for k := 0; k < tt; k++ {
					if !tg.Empty(bx, by, k) {
						want++
					}
				}
			}
		}
	}
	if got := int(calls.Load()); got != want {
		t.Fatalf("hook fired %d times, want %d", got, want)
	}
	for key, n := range seen {
		if n != m.nt/cfg.TT && n > 3 { // same (bx,by,k) recurs once per time tile
			t.Fatalf("hook for %v fired %d times", key, n)
		}
	}
}
