package tiling

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"wavetile/internal/grid"
)

// mockProp is a counting propagator: it records how many times every
// (phase, t, x, y) cell is stepped, so tests can assert the schedules cover
// each cell exactly once — the structural correctness of Listing 6.
type mockProp struct {
	nx, ny, nt  int
	skew        int
	phaseOffs   []int // per-phase region offsets (0 for single phase)
	mu          sync.Mutex
	counts      [][]int32 // [phase][t*nx*ny + x*ny + y]
	blockX      int
	blockY      int
	sparseCount []int32       // fused sparse applications per (t)
	sparseDelay time.Duration // artificial ApplySparse cost (obs tests)
}

func newMock(nx, ny, nt, skew int, phaseOffs []int) *mockProp {
	m := &mockProp{nx: nx, ny: ny, nt: nt, skew: skew, phaseOffs: phaseOffs}
	m.counts = make([][]int32, len(phaseOffs))
	for p := range m.counts {
		m.counts[p] = make([]int32, nt*nx*ny)
	}
	m.sparseCount = make([]int32, nt)
	return m
}

func (m *mockProp) GridShape() (int, int) { return m.nx, m.ny }
func (m *mockProp) Steps() int            { return m.nt }
func (m *mockProp) TimeSkew() int         { return m.skew }
func (m *mockProp) MaxPhaseOffset() int {
	o := 0
	for _, v := range m.phaseOffs {
		if v > o {
			o = v
		}
	}
	return o
}
func (m *mockProp) MinTile() int         { return 2 * m.skew }
func (m *mockProp) SetBlocks(bx, by int) { m.blockX, m.blockY = bx, by }
func (m *mockProp) ApplySparse(t int) {
	if m.sparseDelay > 0 {
		time.Sleep(m.sparseDelay)
	}
	m.sparseCount[t]++
}

func (m *mockProp) Step(t int, raw grid.Region, fused bool) {
	for p, off := range m.phaseOffs {
		reg := raw.Shift(-off, -off).Clamp(m.nx, m.ny)
		if reg.Empty() {
			continue
		}
		ForBlocks(reg, m.blockX, m.blockY, func(b grid.Region) {
			m.mu.Lock()
			for x := b.X0; x < b.X1; x++ {
				for y := b.Y0; y < b.Y1; y++ {
					m.counts[p][(t*m.nx+x)*m.ny+y]++
				}
			}
			m.mu.Unlock()
		})
	}
}

func (m *mockProp) assertExactlyOnce(t *testing.T) {
	t.Helper()
	for p := range m.counts {
		for i, c := range m.counts[p] {
			if c != 1 {
				tt := i / (m.nx * m.ny)
				rem := i % (m.nx * m.ny)
				t.Fatalf("phase %d t=%d x=%d y=%d stepped %d times, want 1",
					p, tt, rem/m.ny, rem%m.ny, c)
			}
		}
	}
}

func TestSpatialCoversExactlyOnce(t *testing.T) {
	m := newMock(19, 23, 7, 2, []int{0})
	RunSpatial(m, 5, 4, false)
	m.assertExactlyOnce(t)
	for tt, c := range m.sparseCount {
		if c != 1 {
			t.Fatalf("ApplySparse at t=%d called %d times", tt, c)
		}
	}
}

func TestSpatialCoversExactlyOnceMultiPhase(t *testing.T) {
	// Regression: the stress phase of the elastic propagator shifts its
	// region back by the radius before clamping; the spatial schedule must
	// extend the raw region so the last rows/columns are still covered.
	for _, r := range []int{1, 2, 6} {
		m := newMock(21, 17, 4, 2*r, []int{0, r})
		RunSpatial(m, 8, 8, true)
		m.assertExactlyOnce(t)
	}
}

func TestWTBCoversExactlyOnceSinglePhase(t *testing.T) {
	cases := []struct {
		nx, ny, nt, skew int
		cfg              Config
	}{
		{32, 32, 9, 2, Config{TT: 4, TileX: 8, TileY: 8, BlockX: 4, BlockY: 4}},
		{40, 24, 11, 4, Config{TT: 3, TileX: 16, TileY: 8, BlockX: 8, BlockY: 8}},
		{17, 33, 5, 1, Config{TT: 5, TileX: 7, TileY: 9, BlockX: 3, BlockY: 5}},
		{16, 16, 16, 2, Config{TT: 16, TileX: 16, TileY: 16, BlockX: 16, BlockY: 16}},
		{64, 16, 6, 6, Config{TT: 2, TileX: 12, TileY: 16, BlockX: 4, BlockY: 4}},
	}
	for _, c := range cases {
		m := newMock(c.nx, c.ny, c.nt, c.skew, []int{0})
		if err := RunWTB(m, c.cfg); err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		m.assertExactlyOnce(t)
	}
}

func TestWTBCoversExactlyOnceMultiPhase(t *testing.T) {
	// Elastic-like: two phases, the second trailing by the radius, skew 2r.
	for _, r := range []int{1, 2, 3} {
		m := newMock(36, 28, 7, 2*r, []int{0, r})
		cfg := Config{TT: 3, TileX: 4 * r, TileY: 6 * r, BlockX: 5, BlockY: 3}
		if err := RunWTB(m, cfg); err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		m.assertExactlyOnce(t)
	}
}

// TestWTBCoverageProperty drives random legal configurations through the WTB
// schedule and asserts the exactly-once invariant.
func TestWTBCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		skew := 1 + rng.Intn(4)
		phases := []int{0}
		if rng.Intn(2) == 1 { // elastic-like
			phases = []int{0, skew}
			skew *= 2
		}
		nx := 2*skew + 1 + rng.Intn(40)
		ny := 2*skew + 1 + rng.Intn(40)
		nt := 1 + rng.Intn(9)
		cfg := Config{
			TT:     1 + rng.Intn(5),
			TileX:  2*skew + rng.Intn(20),
			TileY:  2*skew + rng.Intn(20),
			BlockX: 1 + rng.Intn(12),
			BlockY: 1 + rng.Intn(12),
		}
		m := newMock(nx, ny, nt, skew, phases)
		if err := RunWTB(m, cfg); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for p := range m.counts {
			for _, c := range m.counts[p] {
				if c != 1 {
					t.Logf("seed %d cfg %+v nx=%d ny=%d nt=%d skew=%d phases=%v: coverage violation",
						seed, cfg, nx, ny, nt, skew, phases)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	m := newMock(16, 16, 2, 2, []int{0})
	if err := (Config{TT: 0, TileX: 8, TileY: 8}).Validate(m); err == nil {
		t.Fatal("TT=0 accepted")
	}
	if err := (Config{TT: 1, TileX: 3, TileY: 8}).Validate(m); err == nil {
		t.Fatal("tile below margin accepted")
	}
	if err := (Config{TT: 1, TileX: 4, TileY: 4}).Validate(m); err != nil {
		t.Fatalf("legal config rejected: %v", err)
	}
	if err := RunWTB(m, Config{TT: 0, TileX: 8, TileY: 8}); err == nil {
		t.Fatal("RunWTB accepted invalid config")
	}
}

func TestForBlocksCoversRegion(t *testing.T) {
	reg := grid.Region{X0: 3, X1: 29, Y0: 1, Y1: 18}
	var mu sync.Mutex
	seen := map[[2]int]int{}
	ForBlocks(reg, 7, 5, func(b grid.Region) {
		mu.Lock()
		defer mu.Unlock()
		for x := b.X0; x < b.X1; x++ {
			for y := b.Y0; y < b.Y1; y++ {
				seen[[2]int{x, y}]++
			}
		}
	})
	if len(seen) != reg.NumPoints() {
		t.Fatalf("covered %d points, want %d", len(seen), reg.NumPoints())
	}
	for k, v := range seen {
		if v != 1 {
			t.Fatalf("point %v visited %d times", k, v)
		}
	}
}

func TestRunWTBRangeComposes(t *testing.T) {
	// Driving the schedule one time-range at a time (as the distributed
	// runtime does) must cover exactly what a single full run covers.
	m1 := newMock(24, 20, 12, 2, []int{0})
	cfg := Config{TT: 3, TileX: 8, TileY: 8, BlockX: 4, BlockY: 4}
	if err := RunWTB(m1, cfg); err != nil {
		t.Fatal(err)
	}
	m2 := newMock(24, 20, 12, 2, []int{0})
	for t0 := 0; t0 < 12; t0 += 4 {
		if err := RunWTBRange(m2, cfg, t0, t0+4); err != nil {
			t.Fatal(err)
		}
	}
	m1.assertExactlyOnce(t)
	m2.assertExactlyOnce(t)
}
