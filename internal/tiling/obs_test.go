package tiling

import (
	"strings"
	"testing"
	"time"

	"wavetile/internal/obs"
)

// TestRunWTBObservability runs the WTB schedule against an installed
// registry + tracer and checks the schedule-level counters, the per-time-
// tile spans, and the sparse-phase attribution of the spatial schedule.
func TestRunWTBObservability(t *testing.T) {
	r := obs.NewRegistry()
	restore := obs.Swap(r)
	defer restore()
	tr := r.StartTrace()

	m := newMock(20, 20, 9, 2, []int{0})
	cfg := Config{TT: 4, TileX: 8, TileY: 8, BlockX: 4, BlockY: 4}
	if err := RunWTB(m, cfg); err != nil {
		t.Fatal(err)
	}
	m.assertExactlyOnce(t)

	snap := r.Snapshot()
	wantTT := int64(3) // ceil(9/4)
	if got := snap.Counters["wtb_time_tiles"]; got != wantTT {
		t.Fatalf("wtb_time_tiles = %d, want %d", got, wantTT)
	}
	if snap.Counters["wtb_space_tiles"] <= 0 {
		t.Fatal("no space tiles counted")
	}

	var timeTileSpans, tileSpans int
	for _, ev := range tr.Events() {
		switch {
		case strings.HasPrefix(ev.Name, "time-tile"):
			timeTileSpans++
		case strings.HasPrefix(ev.Name, "tile"):
			tileSpans++
			if ev.Args["t0"] == nil || ev.Args["bx"] == nil {
				t.Fatalf("tile span missing args: %+v", ev.Args)
			}
		}
	}
	if int64(timeTileSpans) != wantTT {
		t.Fatalf("%d time-tile spans, want %d (≥ one per time tile)", timeTileSpans, wantTT)
	}
	if int64(tileSpans) != snap.Counters["wtb_space_tiles"] {
		t.Fatalf("%d tile spans vs %d counted tiles", tileSpans, snap.Counters["wtb_space_tiles"])
	}
}

// TestRunSpatialObservability checks the unfused sparse pass is attributed
// to PhaseSparse and per-step spans are recorded.
func TestRunSpatialObservability(t *testing.T) {
	r := obs.NewRegistry()
	restore := obs.Swap(r)
	defer restore()
	tr := r.StartTrace()

	m := newMock(16, 16, 5, 2, []int{0})
	m.sparseDelay = 200 * time.Microsecond
	RunSpatial(m, 4, 4, false)
	m.assertExactlyOnce(t)

	snap := r.Snapshot()
	if d := snap.Phases[obs.PhaseSparse.String()]; d < 5*m.sparseDelay {
		t.Fatalf("sparse phase = %v, want ≥ %v", d, 5*m.sparseDelay)
	}
	steps := 0
	for _, ev := range tr.Events() {
		if strings.HasPrefix(ev.Name, "step") {
			steps++
		}
	}
	if steps != 5 {
		t.Fatalf("%d step spans, want 5", steps)
	}
}

// TestSchedulesUnobservedUnchanged re-runs both schedules with the registry
// removed: coverage must be identical (the instrumentation must not alter
// scheduling decisions).
func TestSchedulesUnobservedUnchanged(t *testing.T) {
	restore := obs.Swap(nil)
	defer restore()
	m := newMock(20, 20, 9, 2, []int{0})
	if err := RunWTB(m, Config{TT: 4, TileX: 8, TileY: 8, BlockX: 4, BlockY: 4}); err != nil {
		t.Fatal(err)
	}
	m.assertExactlyOnce(t)
}
