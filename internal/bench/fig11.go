package bench

import (
	"fmt"

	"wavetile/internal/roofline"
)

// Figure 11: the cache-aware roofline of the isotropic acoustic model on
// Broadwell, space orders 4, 8 and 12, with one point per (space order,
// schedule). The paper plots cumulative-traffic arithmetic intensity
// against achieved GFLOP/s; here the coordinates come from the simulated
// traffic and the roofline prediction, and the table carries the per-level
// AI so the full CARM plot can be reconstructed.

// RooflinePoint is one marker of the Figure-11 plot.
type RooflinePoint struct {
	Spec     Spec
	Schedule string
	Pred     roofline.Prediction
}

// Fig11 generates the roofline points for the acoustic model at the given
// space orders.
func Fig11(m roofline.Machine, orders []int, o SimOptions) ([]RooflinePoint, error) {
	o.defaults()
	var pts []RooflinePoint
	for _, so := range orders {
		s := Spec{Model: "acoustic", SO: so, N: o.TraceN}
		rows, err := Fig9Sim([]Spec{s}, []roofline.Machine{m}, o)
		if err != nil {
			return nil, err
		}
		pts = append(pts,
			RooflinePoint{Spec: s, Schedule: "spatial", Pred: rows[0].Spatial},
			RooflinePoint{Spec: s, Schedule: "wtb", Pred: rows[0].WTB},
		)
	}
	return pts, nil
}

// Fig11Table formats the points with the machine's ceilings.
func Fig11Table(m roofline.Machine, pts []RooflinePoint) *Table {
	t := &Table{
		Title: fmt.Sprintf("Fig. 11 — cache-aware roofline, acoustic, %s (peak %.0f GF/s, DRAM %.0f GB/s)",
			m.Name, m.PeakGFlops, m.BWGBs[len(m.BWGBs)-1]),
		Header: []string{"kernel", "schedule", "AI_L1 (F/B)", "AI_L2 (F/B)", "AI_DRAM (F/B)", "GFLOP/s", "bound"},
	}
	for _, p := range pts {
		t.Add(p.Spec.Name(), p.Schedule,
			p.Pred.AIs[0], p.Pred.AIs[1], p.Pred.AIs[2],
			p.Pred.GFlops, p.Pred.Bound)
	}
	return t
}
