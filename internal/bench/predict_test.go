package bench

import (
	"testing"

	"wavetile/internal/roofline"
	"wavetile/internal/tiling"
)

func TestTunePredictWTBSmoke(t *testing.T) {
	spec := Spec{Model: "acoustic", SO: 4, N: 32, Steps: 4}
	cal := roofline.Calibrated{Machine: roofline.Broadwell(), BWEff: 0.8, OverheadNSPerPoint: 1}
	o := PredictTuneOptions{TraceN: 24, TraceNt: 2, TopK: 1, TuneSteps: 2}

	res, err := TunePredictWTB(spec, tiling.RunWTB, cal, []int{2}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no candidates ranked")
	}
	measured := 0
	for _, r := range res {
		if r.Predicted.Seconds <= 0 {
			t.Fatalf("no prediction for %s: %+v", r.Cfg, r.Predicted)
		}
		if r.Measured {
			measured++
		}
	}
	if measured != 1 {
		t.Fatalf("TopK=1 must measure exactly one candidate, measured %d", measured)
	}
	if !res[0].Measured || res[0].GPts <= 0 {
		t.Fatalf("winner not confirmed: %+v", res[0])
	}

	// Ranking is deterministic: a second zero-shot pass orders identically.
	o.TopK = 0
	a, err := TunePredictWTB(spec, tiling.RunWTB, cal, []int{2}, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TunePredictWTB(spec, tiling.RunWTB, cal, []int{2}, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Cfg != b[i].Cfg || a[i].Predicted.Seconds != b[i].Predicted.Seconds {
			t.Fatalf("ranking not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCalSamplesSmoke(t *testing.T) {
	m := roofline.Broadwell()
	samples, err := CalSamples(m, []Spec{{Model: "acoustic", SO: 4, N: 24, Steps: 2}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 { // spatial + two WTB shapes
		t.Fatalf("%d samples, want 3", len(samples))
	}
	for _, s := range samples {
		if s.MeasuredSeconds <= 0 || s.Points <= 0 || s.Flops <= 0 {
			t.Fatalf("degenerate sample %+v", s)
		}
		if s.Traffic.Accesses == 0 {
			t.Fatalf("sample %q has no simulated traffic", s.Name)
		}
	}
	// The samples must be fittable.
	if _, _, err := roofline.Fit(m, samples); err != nil {
		t.Fatal(err)
	}
}

func TestPredictBenchSmoke(t *testing.T) {
	spec := Spec{Model: "acoustic", SO: 4, N: 32, Steps: 4}
	cal := roofline.Calibrated{Machine: roofline.Broadwell(), BWEff: 0.8}
	o := PredictTuneOptions{TraceN: 24, TraceNt: 2, TopK: 1, TuneSteps: 2}
	doc, err := PredictBench([]Spec{spec}, cal, []int{2}, o)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Kind != PredictReportKind || len(doc.Rows) != 1 {
		t.Fatalf("bad doc: %+v", doc)
	}
	r := doc.Rows[0]
	if r.Candidates == 0 || r.SweepWinner == "" || r.PredictWinner == "" {
		t.Fatalf("bad row: %+v", r)
	}
	if r.Measured != 1 {
		t.Fatalf("predictor spent %d measurements, want 1", r.Measured)
	}
	if r.SweepGPts <= 0 || r.PredictGPts <= 0 {
		t.Fatalf("missing throughputs: %+v", r)
	}
	// Regret is well-defined: the predict winner exists in the sweep and
	// cannot beat the sweep's own best.
	if r.Regret < -1e-9 {
		t.Fatalf("negative regret %g", r.Regret)
	}
}
