package bench

import (
	"fmt"

	"wavetile/internal/model"
	"wavetile/internal/sparse"
	"wavetile/internal/tiling"
	"wavetile/internal/wave"
	"wavetile/internal/wavelet"
)

// Spec describes one benchmark problem, mirroring the paper's test-case
// setup (§IV-B): a cubic velocity model with absorbing layers, a Ricker
// source wavelet (a single localized source by default; plane/dense layouts
// for the §IV-E corner cases) and a line of receivers.
type Spec struct {
	Model string // "acoustic", "tti", "elastic"
	SO    int    // space order: 4, 8, 12
	N     int    // cubic grid edge (absorbing layers included)
	NBL   int    // absorbing layer width
	Steps int    // timesteps (0 → the paper's 512 ms of wave propagation)

	NSrc      int    // number of sources (default 1)
	SrcLayout string // "single" (default), "plane", "dense"
	NRec      int    // receivers on a line (default 32)
}

// Name labels the spec like the paper's kernels, e.g. "Acoustic O(2,8)".
func (s Spec) Name() string {
	order := 2
	if s.Model == "elastic" {
		order = 1
	}
	label := map[string]string{"acoustic": "Acoustic", "tti": "TTI", "elastic": "Elastic"}[s.Model]
	return fmt.Sprintf("%s O(%d,%d)", label, order, s.SO)
}

// Problem is an instantiated spec.
type Problem struct {
	Spec Spec
	Geom model.Geometry
	Prop tiling.Propagator
	// FlopsPerPoint and PointsPerStep feed the roofline model.
	FlopsPerPoint int
	PointsPerStep int
	// SrcSupports feed the trace generators.
	SrcSupports []sparse.Support
	Reset       func()
}

// spacing follows the paper: 10 m for acoustic/elastic, 20 m for TTI.
func (s Spec) spacing() float64 {
	if s.Model == "tti" {
		return 20
	}
	return 10
}

// sources builds the source layout inside the physical box.
func (s Spec) sources(g model.Geometry) *sparse.Points {
	lo, hi := g.PhysicalBox()
	n := s.NSrc
	if n <= 0 {
		n = 1
	}
	switch s.SrcLayout {
	case "plane":
		return sparse.PlaneSlice(n, lo[2]+0.2*(hi[2]-lo[2]), lo[0], hi[0], lo[1], hi[1])
	case "dense":
		return sparse.DenseVolume(n, lo[0], hi[0], lo[1], hi[1], lo[2], hi[2])
	default:
		c := g.Center()
		return sparse.Single(sparse.Coord{c[0] + 0.37*g.Hx, c[1] - 0.21*g.Hy, lo[2] + 2.3*g.Hz})
	}
}

// Build instantiates the problem: earth model, CFL time axis, sources,
// receivers, propagator.
func (s Spec) Build() (*Problem, error) {
	if s.N <= 0 {
		return nil, fmt.Errorf("bench: grid size not set")
	}
	if s.NBL == 0 {
		s.NBL = 10
	}
	if s.NRec == 0 {
		s.NRec = 32
	}
	h := s.spacing()
	g := model.Geometry{Nx: s.N, Ny: s.N, Nz: s.N, Hx: h, Hy: h, Hz: h, NBL: s.NBL}
	// The paper's layer-cake stand-in for the unspecified velocity model.
	vp := model.Layered(float64(s.N)*h, 1500, 2000, 2500, 3000, 3500)
	const vmax = 3500

	var dt float64
	switch s.Model {
	case "acoustic":
		dt = g.CriticalDtAcoustic(s.SO, vmax, model.DefaultCFL)
	case "tti":
		dt = g.CriticalDtTTI(s.SO, vmax, 0.24, model.DefaultCFL)
	case "elastic":
		dt = g.CriticalDtElastic(s.SO, vmax, model.DefaultCFL)
	default:
		return nil, fmt.Errorf("bench: unknown model %q", s.Model)
	}
	if s.Steps > 0 {
		g.Dt, g.Nt = dt, s.Steps
	} else {
		g.SetTime(0.512, dt) // the paper models 512 ms
	}

	src := s.sources(g)
	wavs := make([][]float32, src.N())
	for i := range wavs {
		wavs[i] = wavelet.RickerSeries(10, g.Nt, g.Dt, 1)
	}
	lo, hi := g.PhysicalBox()
	rec := sparse.Line(s.NRec,
		sparse.Coord{lo[0], (lo[1] + hi[1]) / 2, lo[2] + g.Hz},
		sparse.Coord{hi[0], (lo[1] + hi[1]) / 2, lo[2] + g.Hz})

	p := &Problem{Spec: s, Geom: g, PointsPerStep: g.Nx * g.Ny * g.Nz}
	sup, err := src.Supports(g.Nx, g.Ny, g.Nz, g.Hx, g.Hy, g.Hz)
	if err != nil {
		return nil, err
	}
	p.SrcSupports = sup

	halo := s.SO / 2
	switch s.Model {
	case "acoustic":
		params := model.NewAcoustic(g, halo, vp)
		a, err := wave.NewAcoustic(wave.AcousticOpts{Params: params, SO: s.SO, Src: src, SrcWav: wavs, Rec: rec})
		if err != nil {
			return nil, err
		}
		p.Prop, p.FlopsPerPoint, p.Reset = a, a.FlopsPerPoint(), a.Reset
	case "tti":
		params := model.NewTTI(g, halo, vp,
			model.Homogeneous(0.24), model.Homogeneous(0.12),
			func(x, y, z float64) float64 { return 0.35 },
			func(x, y, z float64) float64 { return 0.25 })
		w, err := wave.NewTTI(wave.TTIOpts{Params: params, SO: s.SO, Src: src, SrcWav: wavs, Rec: rec})
		if err != nil {
			return nil, err
		}
		p.Prop, p.FlopsPerPoint, p.Reset = w, w.FlopsPerPoint(), w.Reset
	case "elastic":
		params := model.NewElastic(g, halo, vp,
			func(x, y, z float64) float64 { return vp(x, y, z) / 1.9 },
			model.Homogeneous(1800))
		e, err := wave.NewElastic(wave.ElasticOpts{Params: params, SO: s.SO, Src: src, SrcWav: wavs, Rec: rec})
		if err != nil {
			return nil, err
		}
		p.Prop, p.FlopsPerPoint, p.Reset = e, e.FlopsPerPoint(), e.Reset
	}
	return p, nil
}

// PaperSpecs returns the nine kernels of the paper's evaluation at the
// given grid size (the paper uses N=512; smaller sizes keep host runs
// tractable) and step budget.
func PaperSpecs(n, steps int) []Spec {
	var out []Spec
	for _, m := range []string{"acoustic", "elastic", "tti"} {
		for _, so := range []int{4, 8, 12} {
			out = append(out, Spec{Model: m, SO: so, N: n, Steps: steps})
		}
	}
	return out
}
