package bench

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wavetile/internal/hostcal"
	"wavetile/internal/obs"
)

func writeFingerprint(t *testing.T, mutate func(*hostcal.Fingerprint)) string {
	t.Helper()
	f := &hostcal.Fingerprint{
		Version: hostcal.Version, Kind: hostcal.Kind,
		CreatedUnixMS: time.Now().UnixMilli(),
		Host:          obs.HostFingerprint(),
		Levels: []hostcal.CacheLevel{
			{Name: "L1", SizeBytes: 32 << 10, Assoc: 8, Source: "sysfs"},
			{Name: "L2", SizeBytes: 1 << 20, Assoc: 16, Source: "sysfs"},
			{Name: "L3", SizeBytes: 16 << 20, Assoc: 16, Shared: true, Source: "sysfs"},
		},
		BWGBs:      []float64{500, 200, 30},
		PeakGFlops: 80,
	}
	if mutate != nil {
		mutate(f)
	}
	path := filepath.Join(t.TempDir(), "hostcal.json")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestResolveMachineHost(t *testing.T) {
	path := writeFingerprint(t, func(f *hostcal.Fingerprint) {
		f.Calibration = &hostcal.Calibration{BWEff: 0.55, OverheadNSPerPoint: 2}
	})
	cal, err := ResolveMachine("host", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(cal.Machine.Name, "host/") {
		t.Fatalf("machine %q not measured", cal.Machine.Name)
	}
	if cal.BWEff != 0.55 || cal.OverheadNSPerPoint != 2 {
		t.Fatalf("calibration not adopted: %+v", cal)
	}
	if cal.Machine.PeakGFlops != 80 || cal.Machine.BWGBs[2] != 30 {
		t.Fatalf("measured ceilings not adopted: %+v", cal.Machine)
	}
	// Auto mode prefers the same fingerprint.
	auto, err := ResolveMachine("", path)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Machine.Name != cal.Machine.Name {
		t.Fatalf("auto resolved %q, host resolved %q", auto.Machine.Name, cal.Machine.Name)
	}
}

func TestResolveMachineHostRequiresValidFingerprint(t *testing.T) {
	// Missing file.
	if _, err := ResolveMachine("host", filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing fingerprint must fail -machine host")
	}
	// Mismatched host: error must surface the mismatch, not fall back.
	path := writeFingerprint(t, func(f *hostcal.Fingerprint) {
		f.Host.CPUs += 13
	})
	_, err := ResolveMachine("host", path)
	if err == nil || !hostcal.IsUnusable(err) {
		t.Fatalf("mismatched fingerprint must surface a typed error, got %v", err)
	}
	// Stale fingerprint likewise.
	path = writeFingerprint(t, func(f *hostcal.Fingerprint) {
		f.CreatedUnixMS = time.Now().Add(-365 * 24 * time.Hour).UnixMilli()
	})
	if _, err := ResolveMachine("host", path); err == nil || !hostcal.IsUnusable(err) {
		t.Fatalf("stale fingerprint must surface a typed error, got %v", err)
	}
}

func TestResolveMachineAutoFallsBackMarked(t *testing.T) {
	cal, err := ResolveMachine("", filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if cal.Machine.Name != PresetMarker+"broadwell" {
		t.Fatalf("fallback machine %q must carry the preset marker", cal.Machine.Name)
	}
	// Stale/mismatched fingerprints also fall back — marked, never silent.
	path := writeFingerprint(t, func(f *hostcal.Fingerprint) {
		f.Host.GOARCH = "riscv64"
	})
	cal, err = ResolveMachine("auto", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(cal.Machine.Name, PresetMarker) {
		t.Fatalf("fallback machine %q unmarked", cal.Machine.Name)
	}
}

func TestResolveMachineExplicitPresets(t *testing.T) {
	for name, want := range map[string]string{"broadwell": "Broadwell", "skylake": "Skylake"} {
		cal, err := ResolveMachine(name, "")
		if err != nil {
			t.Fatal(err)
		}
		if cal.Machine.Name != want {
			t.Fatalf("%s resolved to %q", name, cal.Machine.Name)
		}
		if cal.BWEff != 1 || cal.OverheadNSPerPoint != 0 {
			t.Fatalf("preset must be uncalibrated: %+v", cal)
		}
	}
	if _, err := ResolveMachine("pentium", ""); err == nil {
		t.Fatal("unknown machine accepted")
	}
}
