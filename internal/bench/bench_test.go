package bench

import (
	"strings"
	"testing"

	"wavetile/internal/roofline"
	"wavetile/internal/tiling"
)

func TestTableFormatting(t *testing.T) {
	tb := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tb.Add("x", 1.23456)
	tb.Add("longer", 2)
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "# demo") || !strings.Contains(out, "1.235") {
		t.Fatalf("bad table output:\n%s", out)
	}
	var csv strings.Builder
	tb.FprintCSV(&csv)
	if !strings.Contains(csv.String(), "a,bb") || !strings.Contains(csv.String(), "longer,2") {
		t.Fatalf("bad csv output:\n%s", csv.String())
	}
}

func TestSpecBuildAllModels(t *testing.T) {
	for _, m := range []string{"acoustic", "tti", "elastic"} {
		s := Spec{Model: m, SO: 4, N: 28, Steps: 3}
		p, err := s.Build()
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if p.Prop == nil || p.FlopsPerPoint <= 0 || len(p.SrcSupports) != 1 {
			t.Fatalf("%s: incomplete problem %+v", m, p)
		}
		if p.FlopsPerPoint != flopsPerPoint(m, 4) {
			t.Fatalf("%s: flop formulas disagree: %d vs %d", m, p.FlopsPerPoint, flopsPerPoint(m, 4))
		}
		// Paper naming.
		want := map[string]string{"acoustic": "Acoustic O(2,4)", "tti": "TTI O(2,4)", "elastic": "Elastic O(1,4)"}[m]
		if p.Spec.Name() != want {
			t.Fatalf("name %q want %q", p.Spec.Name(), want)
		}
	}
	if _, err := (Spec{Model: "bogus", SO: 4, N: 24}).Build(); err == nil {
		t.Fatal("bogus model accepted")
	}
}

func TestSpecTimestepCounts(t *testing.T) {
	// §IV-B: 512 ms of propagation; dt from CFL. With our layered 1.5–3.5
	// km/s model the counts land in the few-hundred range like the paper's
	// (228 acoustic / 436 elastic / 587 TTI at their unspecified vmax).
	for _, c := range []struct {
		model    string
		min, max int
	}{
		{"acoustic", 150, 700},
		{"elastic", 200, 1200},
		{"tti", 150, 900},
	} {
		s := Spec{Model: c.model, SO: 8, N: 64}
		p, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		if p.Geom.Nt < c.min || p.Geom.Nt > c.max {
			t.Fatalf("%s: nt=%d outside plausible band [%d,%d]", c.model, p.Geom.Nt, c.min, c.max)
		}
		t.Logf("%s 512ms → nt=%d (dt=%.3gms)", c.model, p.Geom.Nt, p.Geom.Dt*1e3)
	}
}

func TestMeasureSchedules(t *testing.T) {
	s := Spec{Model: "acoustic", SO: 4, N: 32, Steps: 4}
	p, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := MeasureSpatial(p, 8, 8, 1, false)
	if err != nil || sp <= 0 {
		t.Fatalf("spatial: %v %v", sp, err)
	}
	wt, err := MeasureWTB(p, tiling.Config{TT: 4, TileX: 16, TileY: 16, BlockX: 8, BlockY: 8}, 1)
	if err != nil || wt <= 0 {
		t.Fatalf("wtb: %v %v", wt, err)
	}
}

func TestFig9SimSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	// Scaled-cache smoke mode: a 48³ trace against caches shrunk by the
	// row-count ratio, so the DRAM-pressure regime of the full-size run is
	// reproduced cheaply.
	o := SimOptions{TraceN: 48, TraceNt: 6, RefN: 512}
	specs := []Spec{{Model: "acoustic", SO: 4}}
	rows, err := Fig9Sim(specs, []roofline.Machine{roofline.Broadwell()}, o)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	t.Logf("%s on %s: spatial %.2f GPts/s (%s), wtb %.2f GPts/s (%s), speedup %.2fx (cfg %v)",
		r.Spec.Name(), r.Machine, r.Spatial.GPointsPS, r.Spatial.Bound,
		r.WTB.GPointsPS, r.WTB.Bound, r.Speedup, r.BestWTB)
	if r.Speedup < 1.0 {
		t.Fatalf("simulated WTB slower than spatial: %.2f", r.Speedup)
	}
	if r.WTBT.DRAMBytes >= r.SpatialT.DRAMBytes {
		t.Fatalf("WTB did not reduce DRAM traffic: %d vs %d", r.WTBT.DRAMBytes, r.SpatialT.DRAMBytes)
	}
}
