package bench

import (
	"wavetile/internal/roofline"
	"wavetile/internal/tiling"
)

// Figure 10: speedup of the acoustic SO-4 operator over an increasing
// number of sources, for the two placements of §IV-E — sparse (an x–y
// plane slice) and dense (uniform over the volume).

// CornerRow is one Figure-10 measurement.
type CornerRow struct {
	Layout  string
	NSrc    int
	Speedup float64 // WTB vs spatial (wall-clock or predicted)
	Mode    string  // "wall" or machine name
}

// Fig10Wall measures the host wall-clock speedup as the source count grows.
func Fig10Wall(n, steps int, counts []int, cfg tiling.Config, repeats int) ([]CornerRow, error) {
	var rows []CornerRow
	for _, layout := range []string{"plane", "dense"} {
		for _, nsrc := range counts {
			s := Spec{Model: "acoustic", SO: 4, N: n, Steps: steps,
				NSrc: nsrc, SrcLayout: layout}
			p, err := s.Build()
			if err != nil {
				return nil, err
			}
			sp, err := MeasureSpatial(p, 8, 8, repeats, false)
			if err != nil {
				return nil, err
			}
			wt, err := MeasureWTB(p, cfg, repeats)
			if err != nil {
				return nil, err
			}
			rows = append(rows, CornerRow{
				Layout: layout, NSrc: nsrc,
				Speedup: float64(sp) / float64(wt), Mode: "wall",
			})
		}
	}
	return rows, nil
}

// Fig10Sim predicts the speedup-vs-source-count curves on a simulated
// machine: the injection structures grow with the number of affected
// points, adding traffic that the fused WTB path must absorb.
func Fig10Sim(m roofline.Machine, counts []int, o SimOptions) ([]CornerRow, error) {
	o.defaults()
	var rows []CornerRow
	for _, layout := range []string{"plane", "dense"} {
		for _, nsrc := range counts {
			s := Spec{Model: "acoustic", SO: 4, NSrc: nsrc, SrcLayout: layout, N: o.TraceN}
			res, err := Fig9Sim([]Spec{s}, []roofline.Machine{m}, o)
			if err != nil {
				return nil, err
			}
			rows = append(rows, CornerRow{
				Layout: layout, NSrc: nsrc,
				Speedup: res[0].Speedup, Mode: m.Name,
			})
		}
	}
	return rows, nil
}
