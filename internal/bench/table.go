// Package bench is the experiment harness that regenerates the paper's
// evaluation artifacts — Table I (optimal tile/block shapes), Figure 9
// (throughput speedups per model × space order × machine), Figure 10
// (speedup vs. number and placement of sources) and Figure 11 (cache-aware
// roofline) — from this repository's propagators, schedules, cache
// simulator and roofline model. The cmd/ tools and the top-level Go
// benchmarks are thin wrappers around this package.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cols ...any) {
	row := make([]string, len(cols))
	for i, c := range cols {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders an aligned text table.
func (t *Table) Fprint(w io.Writer) {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	line := func(cols []string) {
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = fmt.Sprintf("%-*s", width[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// FprintCSV renders the table as CSV.
func (t *Table) FprintCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Header, ","))
	for _, r := range t.Rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}
