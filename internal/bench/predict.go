package bench

import (
	"time"

	"wavetile/internal/autotune"
	"wavetile/internal/cachesim"
	"wavetile/internal/obs"
	"wavetile/internal/roofline"
	"wavetile/internal/tiling"
)

// ---------------------------------------------------------------------------
// Predictive autotuning: the full sweep (TuneWTB) measures every candidate
// on hardware; TunePredictWTB replays each candidate on a small trace grid
// through the calibrated machine's cache hierarchy, ranks by the roofline
// model, and measures only the top-K. PredictBench runs both and scores the
// predictor (winner agreement, regret) — the PR's validation harness.

// PredictTuneOptions size the predictive tuner.
type PredictTuneOptions struct {
	// TraceN/TraceNt size the per-candidate trace replay (defaults 48/4).
	// The machine's cache capacities are scaled by (TraceN/N)² so the
	// fits/doesn't-fit structure matches the full-size run (see cacheScale).
	TraceN  int
	TraceNt int
	// TopK is how many best-predicted candidates to confirm on hardware;
	// 0 = pure zero-shot ranking.
	TopK int
	// TuneSteps/Repeats control the confirmation measurements (defaults 4/1).
	TuneSteps int
	Repeats   int
}

func (o *PredictTuneOptions) defaults() {
	if o.TraceN == 0 {
		o.TraceN = 48
	}
	if o.TraceNt == 0 {
		o.TraceNt = 4
	}
	if o.TuneSteps == 0 {
		o.TuneSteps = 4
	}
	if o.Repeats == 0 {
		o.Repeats = 1
	}
}

// TunePredictWTB is the predictive counterpart of TuneWTBWith: same
// candidate grid, same schedule executor, but candidates are ranked by
// trace-replay + calibrated roofline instead of wall-clock sweeps, and only
// the top-K are measured. Distinct candidates that clamp to the same trace
// configuration share one replay (memoized), so the model evaluation per
// candidate is O(1) after its clamp class has been traced once.
func TunePredictWTB(spec Spec, exec autotune.Exec, cal roofline.Calibrated, tts []int, o PredictTuneOptions) ([]autotune.PredictResult, error) {
	o.defaults()
	built, err := Spec{
		Model: spec.Model, SO: spec.SO, N: spec.N, NBL: spec.NBL,
		Steps: o.TuneSteps, NSrc: spec.NSrc, SrcLayout: spec.SrcLayout, NRec: spec.NRec,
	}.Build()
	if err != nil {
		return nil, err
	}
	cands := autotune.Candidates(built.Geom.Nx, built.Geom.Ny, built.Prop.MinTile(), tts)

	// Trace-grid machine: cache capacities shrink with the grid so tile
	// working sets keep their fits/doesn't-fit relation to each level.
	scaled := cal
	scaled.Machine.Cache = cal.Machine.Cache.Scaled(cacheScale(SimOptions{TraceN: o.TraceN, RefN: spec.N}))

	sh, err := traceShape(spec, SimOptions{TraceN: o.TraceN, TraceNt: o.TraceNt})
	if err != nil {
		return nil, err
	}
	tracePoints := float64(o.TraceN) * float64(o.TraceN) * float64(o.TraceN) * float64(o.TraceNt)
	flops := float64(flopsPerPoint(spec.Model, spec.SO)) * tracePoints

	memo := map[tiling.Config]cachesim.Traffic{}
	traffic := func(cfg tiling.Config) (cachesim.Traffic, error) {
		h := cachesim.New(scaled.Machine.Cache)
		p, err := traceProp(spec.Model, sh, h)
		if err != nil {
			return cachesim.Traffic{}, err
		}
		key := clampConfig(cfg, p.MinTile(), o.TraceN, o.TraceNt)
		if t, ok := memo[key]; ok {
			return t, nil
		}
		if err := tiling.RunWTB(p, key); err != nil {
			return cachesim.Traffic{}, err
		}
		t := h.Snapshot(spec.Name())
		memo[key] = t
		return t, nil
	}

	runner := func(nt int) (tiling.Propagator, error) {
		built.Reset()
		return built.Prop, nil
	}
	return autotune.TunePredict(scaled, flops, tracePoints, traffic, cands, runner, exec,
		autotune.PredictOptions{TopK: o.TopK, TuneSteps: o.TuneSteps, Repeats: o.Repeats, Points: built.PointsPerStep})
}

// ---------------------------------------------------------------------------
// Calibration samples: measured runs paired with their exact trace replay.

// CalSamples measures a few schedules of each spec on the host and replays
// each on a trace grid of the *same* size through the machine's unscaled
// hierarchy — exact (run, traffic) pairs for roofline.Fit. Specs should be
// small (N ≈ 48–64) with a short step budget so calibration stays quick.
func CalSamples(m roofline.Machine, specs []Spec, repeats int) ([]roofline.CalSample, error) {
	var out []roofline.CalSample
	for _, s := range specs {
		if s.Steps == 0 {
			s.Steps = 6
		}
		p, err := s.Build()
		if err != nil {
			return nil, err
		}
		points := float64(p.PointsPerStep) * float64(p.Geom.Nt)
		flops := float64(p.FlopsPerPoint) * points

		replay := func(run func(tp tiling.Propagator) error) (cachesim.Traffic, error) {
			sh, err := traceShape(s, SimOptions{TraceN: s.N, TraceNt: p.Geom.Nt})
			if err != nil {
				return cachesim.Traffic{}, err
			}
			h := cachesim.New(m.Cache)
			tp, err := traceProp(s.Model, sh, h)
			if err != nil {
				return cachesim.Traffic{}, err
			}
			if err := run(tp); err != nil {
				return cachesim.Traffic{}, err
			}
			return h.Snapshot(s.Name()), nil
		}

		// Spatial baseline.
		el, err := MeasureSpatial(p, 8, 8, repeats, false)
		if err != nil {
			return nil, err
		}
		t, err := replay(func(tp tiling.Propagator) error {
			tiling.RunSpatial(tp, 0, 0, false)
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, roofline.CalSample{
			Name: s.Name() + " spatial", Flops: flops, Points: points,
			Traffic: t, MeasuredSeconds: el.Seconds(),
		})

		// A few WTB shapes spanning shallow/deep time tiles.
		minTile := p.Prop.MinTile()
		for _, cfg := range []tiling.Config{
			{TT: 2, TileX: 32, TileY: 32, BlockX: 8, BlockY: 8},
			{TT: 4, TileX: 32, TileY: 32, BlockX: 8, BlockY: 8},
		} {
			cfg = clampConfig(cfg, minTile, s.N, p.Geom.Nt)
			el, err := MeasureWTB(p, cfg, repeats)
			if err != nil {
				return nil, err
			}
			t, err := replay(func(tp tiling.Propagator) error {
				return tiling.RunWTB(tp, clampConfig(cfg, tp.MinTile(), s.N, p.Geom.Nt))
			})
			if err != nil {
				return nil, err
			}
			out = append(out, roofline.CalSample{
				Name: s.Name() + " " + cfg.String(), Flops: flops, Points: points,
				Traffic: t, MeasuredSeconds: el.Seconds(),
			})
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Sweep-vs-predict validation harness

// PredictReportKind tags the JSON document PredictBench emits.
const PredictReportKind = "wavetile.autotune-predict"

// PredictRow scores the predictor against the full sweep on one scenario.
type PredictRow struct {
	Model      string `json:"model"`
	SO         int    `json:"so"`
	Candidates int    `json:"candidates"`
	// Tuning wall-clock of each strategy, in milliseconds.
	SweepMS   float64 `json:"sweep_ms"`
	PredictMS float64 `json:"predict_ms"`
	// Measured is how many hardware measurements the predictor spent (≤ TopK).
	Measured int `json:"measured"`

	SweepWinner   string `json:"sweep_winner"`
	PredictWinner string `json:"predict_winner"`
	Agree         bool   `json:"agree"`

	// Throughputs of both winners as measured by the sweep, and the regret:
	// 1 − predict-winner GPts ÷ sweep-winner GPts (0 = perfect pick).
	SweepGPts   float64 `json:"sweep_gpts"`
	PredictGPts float64 `json:"predict_gpts"`
	Regret      float64 `json:"regret"`
}

// PredictBenchDoc is the persisted sweep-vs-predict comparison.
type PredictBenchDoc struct {
	Kind    string       `json:"kind"`
	Version int          `json:"version"`
	Host    obs.HostInfo `json:"host"`
	Machine string       `json:"machine"`
	TopK    int          `json:"topk"`
	Rows    []PredictRow `json:"rows"`
}

// PredictBench runs the full sweep and the predictive tuner over each spec
// and scores the predictor. Regret is computed from the sweep's own
// measurements — the predict winner's standing in the exhaustive ranking —
// so it costs no extra runs.
func PredictBench(specs []Spec, cal roofline.Calibrated, tts []int, o PredictTuneOptions) (*PredictBenchDoc, error) {
	o.defaults()
	doc := &PredictBenchDoc{
		Kind: PredictReportKind, Version: 1,
		Host: obs.HostFingerprint(), Machine: cal.Machine.Name, TopK: o.TopK,
	}
	for _, s := range specs {
		start := time.Now()
		sweep, err := TuneWTB(s, o.TuneSteps, o.Repeats, tts)
		if err != nil {
			return nil, err
		}
		sweepMS := time.Since(start).Seconds() * 1e3

		start = time.Now()
		pred, err := TunePredictWTB(s, tiling.RunWTB, cal, tts, o)
		if err != nil {
			return nil, err
		}
		predictMS := time.Since(start).Seconds() * 1e3

		byCfg := make(map[tiling.Config]autotune.Result, len(sweep))
		for _, r := range sweep {
			byCfg[r.Cfg] = r
		}
		row := PredictRow{
			Model: s.Model, SO: s.SO, Candidates: len(sweep),
			SweepMS: sweepMS, PredictMS: predictMS,
			SweepWinner:   sweep[0].Cfg.String(),
			PredictWinner: pred[0].Cfg.String(),
			Agree:         sweep[0].Cfg == pred[0].Cfg,
			SweepGPts:     sweep[0].GPts,
		}
		for _, r := range pred {
			if r.Measured {
				row.Measured++
			}
		}
		if picked, ok := byCfg[pred[0].Cfg]; ok {
			row.PredictGPts = picked.GPts
			if sweep[0].GPts > 0 {
				row.Regret = 1 - picked.GPts/sweep[0].GPts
			}
		}
		doc.Rows = append(doc.Rows, row)
	}
	return doc, nil
}
