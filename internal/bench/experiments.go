package bench

import (
	"fmt"
	"time"

	"wavetile/internal/autotune"
	"wavetile/internal/cachesim"
	"wavetile/internal/model"
	"wavetile/internal/roofline"
	"wavetile/internal/tiling"
	"wavetile/internal/trace"
)

// ---------------------------------------------------------------------------
// Wall-clock measurement (host)

// timeSchedule measures one schedule run (best of `repeats`).
func timeSchedule(p *Problem, run func() error, repeats int) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < repeats; i++ {
		p.Reset()
		start := time.Now()
		if err := run(); err != nil {
			return 0, err
		}
		el := time.Since(start)
		if best == 0 || el < best {
			best = el
		}
	}
	return best, nil
}

// gpts converts a duration into GPoints/s.
func gpts(points, steps int, d time.Duration) float64 {
	return float64(points) * float64(steps) / d.Seconds() / 1e9
}

// MeasureSpatial times the spatially-blocked baseline. The paper's
// reference code runs the original, unfused off-the-grid operators
// (Listing 1) after each blocked timestep, so fused defaults to false in
// the figure harnesses.
func MeasureSpatial(p *Problem, blockX, blockY, repeats int, fused bool) (time.Duration, error) {
	return timeSchedule(p, func() error {
		tiling.RunSpatial(p.Prop, blockX, blockY, fused)
		return nil
	}, repeats)
}

// MeasureWTB times one WTB configuration.
func MeasureWTB(p *Problem, cfg tiling.Config, repeats int) (time.Duration, error) {
	return timeSchedule(p, func() error {
		return tiling.RunWTB(p.Prop, cfg)
	}, repeats)
}

// MeasurePipelined times one WTB configuration under the task-graph
// runtime (tiling.RunWTBPipelined) — same tile shapes, no per-level
// barrier.
func MeasurePipelined(p *Problem, cfg tiling.Config, repeats int) (time.Duration, error) {
	return timeSchedule(p, func() error {
		return tiling.RunWTBPipelined(p.Prop, cfg)
	}, repeats)
}

// TuneWTB autotunes the WTB parameters on the real propagator over a
// truncated time axis and returns the winning configuration with its
// measured results (Table I procedure). It sweeps tiling.RunWTB; use
// TuneWTBWith to sweep another runtime over the same grid.
func TuneWTB(spec Spec, tuneSteps, repeats int, tts []int) ([]autotune.Result, error) {
	return TuneWTBWith(spec, tiling.RunWTB, tuneSteps, repeats, tts)
}

// TuneWTBWith is TuneWTB with an explicit schedule executor (e.g.
// tiling.RunWTBPipelined).
func TuneWTBWith(spec Spec, exec autotune.Exec, tuneSteps, repeats int, tts []int) ([]autotune.Result, error) {
	built, err := Spec{
		Model: spec.Model, SO: spec.SO, N: spec.N, NBL: spec.NBL,
		Steps: tuneSteps, NSrc: spec.NSrc, SrcLayout: spec.SrcLayout, NRec: spec.NRec,
	}.Build()
	if err != nil {
		return nil, err
	}
	cands := autotune.Candidates(built.Geom.Nx, built.Geom.Ny, built.Prop.MinTile(), tts)
	runner := func(nt int) (tiling.Propagator, error) {
		built.Reset()
		return built.Prop, nil
	}
	return autotune.TuneWith(runner, exec, tuneSteps, repeats, built.PointsPerStep, cands)
}

// TuneKernels sweeps the generated kernel variants (base, y2, …) of one
// spec under the spatially-blocked schedule and returns results sorted
// fastest-first. An error is returned when the spec's radius only has the
// generic fallback — the condition the kernel generator exists to prevent
// at the paper's space orders.
func TuneKernels(spec Spec, tuneSteps, repeats int) ([]autotune.KernelResult, error) {
	built, err := Spec{
		Model: spec.Model, SO: spec.SO, N: spec.N, NBL: spec.NBL,
		Steps: tuneSteps, NSrc: spec.NSrc, SrcLayout: spec.SrcLayout, NRec: spec.NRec,
	}.Build()
	if err != nil {
		return nil, err
	}
	runner := func(nt int) (tiling.Propagator, error) {
		built.Reset()
		return built.Prop, nil
	}
	exec := func(p tiling.Propagator, _ tiling.Config) error {
		tiling.RunSpatial(p, 8, 8, true)
		return nil
	}
	return autotune.TuneKernelVariants(runner, exec, tiling.Config{}, tuneSteps, repeats, built.PointsPerStep)
}

// WallRow holds one Figure-9-style wall-clock measurement. PipeGP and
// PipeSpeedup report the task-graph runtime (RunWTBPipelined) at the same
// tuned tile shape as WTBGP, so the two columns isolate the scheduling
// change from the tile-shape choice.
type WallRow struct {
	Spec        Spec
	SpatialGP   float64
	WTBGP       float64
	PipeGP      float64
	Speedup     float64 // spatial / WTB
	PipeSpeedup float64 // spatial / pipelined
	Best        tiling.Config
}

// Fig9Wall measures the WTB-vs-spatial speedup on the host for every spec:
// a brief tile autotune, then timed runs of all three schedules (spatial,
// barriered WTB, pipelined WTB).
func Fig9Wall(specs []Spec, tuneSteps, repeats int, tts []int) ([]WallRow, error) {
	var rows []WallRow
	for _, s := range specs {
		tuned, err := TuneWTB(s, tuneSteps, 1, tts)
		if err != nil {
			return nil, err
		}
		best := tuned[0].Cfg
		p, err := s.Build()
		if err != nil {
			return nil, err
		}
		sp, err := MeasureSpatial(p, 8, 8, repeats, false)
		if err != nil {
			return nil, err
		}
		wt, err := MeasureWTB(p, best, repeats)
		if err != nil {
			return nil, err
		}
		pl, err := MeasurePipelined(p, best, repeats)
		if err != nil {
			return nil, err
		}
		rows = append(rows, WallRow{
			Spec:        s,
			SpatialGP:   gpts(p.PointsPerStep, p.Geom.Nt, sp),
			WTBGP:       gpts(p.PointsPerStep, p.Geom.Nt, wt),
			PipeGP:      gpts(p.PointsPerStep, p.Geom.Nt, pl),
			Speedup:     float64(sp) / float64(wt),
			PipeSpeedup: float64(sp) / float64(pl),
			Best:        best,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Cache-simulated prediction (Broadwell / Skylake)

// SimOptions size the trace runs.
type SimOptions struct {
	// TraceN is the trace grid edge (default 160). The default is chosen so
	// that every propagator's working set exceeds the largest LLC modelled
	// (acoustic: 5 arrays · 160³ · 4 B ≈ 82 MB > 50 MB), the regime the
	// paper's 512³ grids operate in; traffic *ratios* between schedules are
	// grid-size invariant in that regime, so the full cache hierarchy is
	// simulated unscaled.
	TraceN  int
	TraceNt int // traced timesteps (default 6)
	// RefN, when > 0, switches to scaled-cache mode: capacities shrink by
	// the row-count ratio (TraceN/RefN)². Unscaled (RefN = 0) is the
	// recommended mode; scaling exists for quick, small-grid smoke runs.
	RefN int
}

func (o *SimOptions) defaults() {
	if o.TraceN == 0 {
		o.TraceN = 160
	}
	if o.TraceNt == 0 {
		o.TraceNt = 6
	}
}

// traceShape computes the trace-grid shape and source supports of a spec
// once; building the (heavy) full Problem per traced candidate would waste
// O(N³) field construction on data that never changes.
func traceShape(s Spec, o SimOptions) (trace.Shape, error) {
	spec := s
	spec.N = o.TraceN
	spec.NBL = 4
	spec.Steps = o.TraceNt
	spec.NRec = 1
	g := model.Geometry{
		Nx: o.TraceN, Ny: o.TraceN, Nz: o.TraceN,
		Hx: spec.spacing(), Hy: spec.spacing(), Hz: spec.spacing(),
		NBL: spec.NBL,
	}
	src := spec.sources(g)
	sup, err := src.Supports(g.Nx, g.Ny, g.Nz, g.Hx, g.Hy, g.Hz)
	if err != nil {
		return trace.Shape{}, err
	}
	return trace.Shape{
		Nx: o.TraceN, Ny: o.TraceN, Nz: o.TraceN,
		SO: s.SO, Nt: o.TraceNt, SrcSupports: sup,
	}, nil
}

// traceProp builds the trace propagator for a precomputed shape.
func traceProp(m string, sh trace.Shape, sink trace.Sink) (tiling.Propagator, error) {
	switch m {
	case "acoustic":
		return trace.NewAcoustic(sh, sink), nil
	case "tti":
		return trace.NewTTI(sh, sink), nil
	case "elastic":
		return trace.NewElastic(sh, sink), nil
	}
	return nil, fmt.Errorf("bench: unknown model %q", m)
}

// simCandidates are the WTB shapes tried per machine in simulation; tile
// sizes are relative to the trace grid.
func simCandidates(traceN, minTile int) []tiling.Config {
	var out []tiling.Config
	for _, tt := range []int{4, 8} {
		for _, tx := range []int{16, 32, 64} {
			if tx < minTile || tx > traceN {
				continue
			}
			out = append(out, tiling.Config{TT: tt, TileX: tx, TileY: tx, BlockX: 8, BlockY: 8})
		}
	}
	return out
}

// SimRow is one Figure-9-style simulated prediction.
type SimRow struct {
	Spec     Spec
	Machine  string
	Spatial  roofline.Prediction
	WTB      roofline.Prediction
	Speedup  float64
	BestWTB  tiling.Config
	SpatialT cachesim.Traffic
	WTBT     cachesim.Traffic
}

// Fig9Sim predicts the WTB-vs-spatial speedup for every spec on the given
// machines by replaying both schedules' access traces through the machine's
// (working-set-scaled) cache hierarchy and applying the roofline model. WTB
// parameters are "autotuned" in simulation: every candidate is traced and
// the fastest predicted configuration wins, mirroring §IV-C.
func Fig9Sim(specs []Spec, machines []roofline.Machine, o SimOptions) ([]SimRow, error) {
	o.defaults()
	scale := cacheScale(o)
	var rows []SimRow
	for _, s := range specs {
		for _, m := range machines {
			cacheCfg := m.Cache.Scaled(scale)

			sh, err := traceShape(s, o)
			if err != nil {
				return nil, err
			}
			flops := float64(flopsPerPoint(s.Model, s.SO)) *
				float64(sh.Nx*sh.Ny*sh.Nz) * float64(sh.Nt)
			runTrace := func(run func(p tiling.Propagator) error) (cachesim.Traffic, error) {
				h := cachesim.New(cacheCfg)
				p, err := traceProp(s.Model, sh, h)
				if err != nil {
					return cachesim.Traffic{}, err
				}
				if err := run(p); err != nil {
					return cachesim.Traffic{}, err
				}
				return h.Snapshot(s.Name()), nil
			}

			spT, err := runTrace(func(p tiling.Propagator) error {
				tiling.RunSpatial(p, 0, 0, false) // unfused Listing-1 baseline
				return nil
			})
			if err != nil {
				return nil, err
			}
			points := float64(o.TraceN*o.TraceN*o.TraceN) * float64(o.TraceNt)
			spPred := roofline.Predict(m, flops, points, spT)

			var bestPred roofline.Prediction
			var bestCfg tiling.Config
			var bestT cachesim.Traffic
			minTile := 2 * (s.SO / 2)
			for _, cfg := range simCandidates(o.TraceN, minTile) {
				cfg := cfg
				wtT, err := runTrace(func(p tiling.Propagator) error {
					return tiling.RunWTB(p, cfg)
				})
				if err != nil {
					return nil, err
				}
				pred := roofline.Predict(m, flops, points, wtT)
				if bestPred.Seconds == 0 || pred.Seconds < bestPred.Seconds {
					bestPred, bestCfg, bestT = pred, cfg, wtT
				}
			}
			rows = append(rows, SimRow{
				Spec: s, Machine: m.Name,
				Spatial: spPred, WTB: bestPred,
				Speedup: spPred.Seconds / bestPred.Seconds,
				BestWTB: bestCfg, SpatialT: spT, WTBT: bestT,
			})
		}
	}
	return rows, nil
}

// cacheScale maps the trace grid onto the reference machine's caches. The
// working set of one wavefront tile-step is (tile_x·tile_y)·nz·arrays·4B:
// tile areas and nz shrink with the trace grid, but the stencil radius —
// and with it the halo geometry that decides how much of a tile is reusable
// — does not. Scaling capacity by the row-count ratio (area, s²) rather
// than the volume ratio (s³) keeps the rows-per-cache measure, and thereby
// the fits/doesn't-fit structure of both schedules, aligned with the
// full-size machine.
func cacheScale(o SimOptions) float64 {
	if o.RefN <= 0 {
		return 1
	}
	s := float64(o.TraceN) / float64(o.RefN)
	return s * s
}

// flopsPerPoint mirrors the propagators' operation counts (wave.*
// FlopsPerPoint) without instantiating full wavefields.
func flopsPerPoint(model string, so int) int {
	r := so / 2
	switch model {
	case "acoustic":
		return 1 + 12*r + 7
	case "tti":
		pure := 3 * (4*r + 1)
		cross := 3 * (6*r*r + 1)
		return 2*(pure+cross) + 30
	case "elastic":
		return 54*r + 33
	}
	return 0
}
