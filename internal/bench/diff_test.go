package bench

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const wallJSON = `{
  "mode": "wall",
  "rows": [
    {"Spec": {"Model": "acoustic", "SO": 4}, "SpatialGP": 0.20, "WTBGP": 0.21, "PipeGP": 0.22},
    {"Spec": {"Model": "acoustic", "SO": 8}, "SpatialGP": 0.12, "WTBGP": 0.13, "PipeGP": 0.0}
  ]
}`

func TestLoadBenchFileWavebenchWall(t *testing.T) {
	f, err := LoadBenchFile(writeTemp(t, "wall.json", wallJSON))
	if err != nil {
		t.Fatal(err)
	}
	if f.Format != "wavebench-json" {
		t.Fatalf("format = %q", f.Format)
	}
	want := map[SeriesKey]float64{
		{"acoustic", 4, "spatial"}:       0.20,
		{"acoustic", 4, "wtb"}:           0.21,
		{"acoustic", 4, "wtb-pipelined"}: 0.22,
		{"acoustic", 8, "spatial"}:       0.12,
		{"acoustic", 8, "wtb"}:           0.13,
	}
	if len(f.Series) != len(want) {
		t.Fatalf("series = %v, want %d entries (zero PipeGP must be dropped)", f.Series, len(want))
	}
	for k, v := range want {
		if f.Series[k] != v {
			t.Errorf("%s = %g, want %g", k, f.Series[k], v)
		}
	}
}

func TestLoadBenchFileTrajectoryMaxOnDuplicates(t *testing.T) {
	// Two rows for the same kernel at different worker counts: the loader
	// keeps the max (best-of convention).
	const traj = `{
	  "pr": 5,
	  "rows": [
	    {"model": "acoustic", "so": 4, "workers": 1, "wtb_gpts_after": 0.20, "pipelined_gpts_after": 0.21},
	    {"model": "acoustic", "so": 4, "workers": 2, "wtb_gpts_after": 0.18, "pipelined_gpts_after": 0.23},
	    {"note": "non-kernel row must be skipped"}
	  ]
	}`
	f, err := LoadBenchFile(writeTemp(t, "traj.json", traj))
	if err != nil {
		t.Fatal(err)
	}
	if f.Format != "trajectory" {
		t.Fatalf("format = %q", f.Format)
	}
	if got := f.Series[SeriesKey{"acoustic", 4, "wtb"}]; got != 0.20 {
		t.Fatalf("wtb = %g, want max 0.20", got)
	}
	if got := f.Series[SeriesKey{"acoustic", 4, "wtb-pipelined"}]; got != 0.23 {
		t.Fatalf("pipelined = %g, want max 0.23", got)
	}
}

func TestLoadBenchFileTrajectorySurveySeries(t *testing.T) {
	// cmd/survey -json rows: shots/s for the per-shot loop and the batch
	// engine load as survey-seq / survey-batch series.
	const traj = `{
	  "pr": 8,
	  "rows": [
	    {"model": "acoustic", "so": 4, "shots": 6,
	     "survey_seq_sps_after": 12.5, "survey_batch_sps_after": 28.0},
	    {"model": "tti", "so": 4, "shots": 6,
	     "survey_seq_sps_after": 1.5}
	  ]
	}`
	f, err := LoadBenchFile(writeTemp(t, "survey.json", traj))
	if err != nil {
		t.Fatal(err)
	}
	if f.Format != "trajectory" {
		t.Fatalf("format = %q", f.Format)
	}
	if got := f.Series[SeriesKey{"acoustic", 4, "survey-seq"}]; got != 12.5 {
		t.Fatalf("survey-seq = %g, want 12.5", got)
	}
	if got := f.Series[SeriesKey{"acoustic", 4, "survey-batch"}]; got != 28.0 {
		t.Fatalf("survey-batch = %g, want 28.0", got)
	}
	if _, ok := f.Series[SeriesKey{"tti", 4, "survey-batch"}]; ok {
		t.Fatal("absent batch column must not produce a series")
	}
}

func TestLoadBenchFileReportFormats(t *testing.T) {
	const rep = `{
	  "version": 1, "kind": "wavetile.run-report",
	  "host": {"goarch": "amd64", "cpus": 4},
	  "run": {"physics": "acoustic", "space_order": 8, "schedule": "wtb"},
	  "gpoints_per_sec": 0.5
	}`
	single, err := LoadBenchFile(writeTemp(t, "rep.json", rep))
	if err != nil {
		t.Fatal(err)
	}
	if single.Format != "report" || single.Series[SeriesKey{"acoustic", 8, "wtb"}] != 0.5 {
		t.Fatalf("single report: %+v", single)
	}
	if len(single.Hosts) != 1 {
		t.Fatalf("host fingerprint not collected: %v", single.Hosts)
	}

	arr, err := LoadBenchFile(writeTemp(t, "reps.json", "["+rep+","+rep+"]"))
	if err != nil {
		t.Fatal(err)
	}
	if arr.Format != "report-array" || arr.Series[SeriesKey{"acoustic", 8, "wtb"}] != 0.5 {
		t.Fatalf("report array: %+v", arr)
	}
}

func TestLoadBenchFileAutotunePredict(t *testing.T) {
	const doc = `{
	  "kind": "wavetile.autotune-predict", "version": 1,
	  "host": {"goarch": "amd64", "cpus": 4},
	  "machine": "host/amd64-4c", "topk": 1,
	  "rows": [
	    {"model": "acoustic", "so": 4, "candidates": 256,
	     "sweep_ms": 9000, "predict_ms": 400, "measured": 1,
	     "sweep_winner": "TT=8 tile=32x32 block=8x8",
	     "predict_winner": "TT=8 tile=32x32 block=8x8", "agree": true,
	     "sweep_gpts": 0.25, "predict_gpts": 0.25, "regret": 0},
	    {"model": "tti", "so": 8, "candidates": 128,
	     "sweep_ms": 30000, "predict_ms": 900, "measured": 1,
	     "sweep_winner": "TT=8 tile=32x32 block=8x8",
	     "predict_winner": "TT=8 tile=64x64 block=8x8", "agree": false,
	     "sweep_gpts": 0.10, "predict_gpts": 0.095, "regret": 0.05}
	  ]
	}`
	f, err := LoadBenchFile(writeTemp(t, "predict.json", doc))
	if err != nil {
		t.Fatal(err)
	}
	if f.Format != "autotune-predict" {
		t.Fatalf("format = %q", f.Format)
	}
	want := map[SeriesKey]float64{
		{"acoustic", 4, "autotune-sweep"}:   0.25,
		{"acoustic", 4, "autotune-predict"}: 0.25,
		{"tti", 8, "autotune-sweep"}:        0.10,
		{"tti", 8, "autotune-predict"}:      0.095,
	}
	if len(f.Series) != len(want) {
		t.Fatalf("series = %v, want %d entries", f.Series, len(want))
	}
	for k, v := range want {
		if f.Series[k] != v {
			t.Errorf("%s = %g, want %g", k, f.Series[k], v)
		}
	}
	if len(f.Hosts) != 1 {
		t.Fatalf("host fingerprint not collected: %v", f.Hosts)
	}
	// Two predict artifacts diff cleanly against each other.
	g, err := LoadBenchFile(writeTemp(t, "predict2.json", doc))
	if err != nil {
		t.Fatal(err)
	}
	d := Diff(f, g, DiffOptions{})
	if len(d.Pairs) != 4 || d.Regression || d.Improvement {
		t.Fatalf("self-diff: %+v", d)
	}
}

func TestLoadBenchFileRejectsGarbage(t *testing.T) {
	if _, err := LoadBenchFile(writeTemp(t, "bad.json", `{"hello": 1}`)); err == nil {
		t.Fatal("unrecognized document must error")
	}
	if _, err := LoadBenchFile(writeTemp(t, "notjson.json", "nope")); err == nil {
		t.Fatal("invalid JSON must error")
	}
}

func TestDiffIdenticalFilesIsNull(t *testing.T) {
	p := writeTemp(t, "a.json", wallJSON)
	f1, err := LoadBenchFile(p)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := LoadBenchFile(p)
	if err != nil {
		t.Fatal(err)
	}
	d := Diff(f1, f2, DiffOptions{})
	if d.GeoMeanRatio != 1 || d.PValue != 1 {
		t.Fatalf("identical files: geomean %g p %g, want 1/1", d.GeoMeanRatio, d.PValue)
	}
	if d.Significant || d.Regression || d.Improvement {
		t.Fatalf("identical files flagged: %+v", d)
	}
}

// scaled produces a copy of f with every series multiplied by factor.
func scaled(f *BenchFile, factor float64) *BenchFile {
	out := &BenchFile{Path: f.Path, Format: f.Format, Series: map[SeriesKey]float64{}}
	for k, v := range f.Series {
		out.Series[k] = v * factor
	}
	return out
}

func TestDiffDetectsLargeUniformRegression(t *testing.T) {
	f, err := LoadBenchFile(writeTemp(t, "a.json", wallJSON))
	if err != nil {
		t.Fatal(err)
	}
	d := Diff(f, scaled(f, 0.5), DiffOptions{Alpha: 0.10, MinEffect: 0.02})
	if math.Abs(d.GeoMeanRatio-0.5) > 1e-9 {
		t.Fatalf("geomean = %g, want 0.5", d.GeoMeanRatio)
	}
	// 5 pairs all moving the same way: exact sign-flip p = 2/2^5 = 0.0625.
	if math.Abs(d.PValue-0.0625) > 1e-9 {
		t.Fatalf("p = %g, want 0.0625", d.PValue)
	}
	if !d.Regression || d.Improvement {
		t.Fatalf("halved throughput not flagged: %+v", d)
	}
	d = Diff(f, scaled(f, 2.0), DiffOptions{Alpha: 0.10, MinEffect: 0.02})
	if !d.Improvement || d.Regression {
		t.Fatalf("doubled throughput not flagged improvement: %+v", d)
	}
}

func TestDiffSmallSampleCannotBeSignificant(t *testing.T) {
	// 3 pairs: the exact sign-flip test bottoms out at p = 2/8 = 0.25, so
	// even a uniform 2x regression cannot clear alpha=0.05 — the property
	// that keeps the tiny CI smoke gate deterministic.
	old := &BenchFile{Series: map[SeriesKey]float64{
		{"acoustic", 4, "spatial"}:       0.2,
		{"acoustic", 4, "wtb"}:           0.2,
		{"acoustic", 4, "wtb-pipelined"}: 0.2,
	}}
	d := Diff(old, scaled(old, 0.5), DiffOptions{})
	if d.PValue != 0.25 {
		t.Fatalf("p = %g, want exactly 0.25", d.PValue)
	}
	if d.Significant || d.Regression {
		t.Fatalf("3-pair diff must never be significant at 0.05: %+v", d)
	}
}

func TestDiffDisjointSeries(t *testing.T) {
	old := &BenchFile{Series: map[SeriesKey]float64{{"acoustic", 4, "wtb"}: 0.2}}
	new_ := &BenchFile{Series: map[SeriesKey]float64{{"elastic", 4, "wtb"}: 0.2}}
	d := Diff(old, new_, DiffOptions{})
	if len(d.Pairs) != 0 || len(d.OnlyOld) != 1 || len(d.OnlyNew) != 1 {
		t.Fatalf("disjoint diff: %+v", d)
	}
	if d.PValue != 1 || d.GeoMeanRatio != 1 || d.Regression {
		t.Fatalf("no pairs must be a null result: %+v", d)
	}
}

func TestDiffHostMismatchWarns(t *testing.T) {
	a := &BenchFile{Series: map[SeriesKey]float64{{"acoustic", 4, "wtb"}: 0.2}, Hosts: []string{"hostA"}}
	b := &BenchFile{Series: map[SeriesKey]float64{{"acoustic", 4, "wtb"}: 0.3}, Hosts: []string{"hostB"}}
	if d := Diff(a, b, DiffOptions{}); !d.HostMismatch {
		t.Fatal("differing fingerprints must set HostMismatch")
	}
	b.Hosts = []string{"hostA"}
	if d := Diff(a, b, DiffOptions{}); d.HostMismatch {
		t.Fatal("matching fingerprints must not set HostMismatch")
	}
}

func TestSignFlipPNormalApproximationAgreesWithExact(t *testing.T) {
	// At n=20 (the exact/approx boundary) both methods must roughly agree
	// for a mixed sample.
	logs := make([]float64, 20)
	for i := range logs {
		logs[i] = 0.03
		if i%4 == 3 {
			logs[i] = -0.02
		}
	}
	exact := signFlipP(logs)
	// Force the approximation path with a 21st zero-effect pair (adds
	// nothing to the sums).
	approx := signFlipP(append(append([]float64{}, logs...), 0))
	if exact <= 0 || exact >= 1 {
		t.Fatalf("exact p out of range: %g", exact)
	}
	if math.Abs(exact-approx) > 0.05 {
		t.Fatalf("exact %g vs approx %g diverge", exact, approx)
	}
}

func TestDiffCommittedTrajectories(t *testing.T) {
	// The real artifacts: PR3 vs PR5 committed bench trajectories. Guarded
	// so a future repo layout change skips instead of failing.
	oldF, err := LoadBenchFile("../../BENCH_PR3.json")
	if err != nil {
		t.Skipf("BENCH_PR3.json not loadable: %v", err)
	}
	newF, err := LoadBenchFile("../../BENCH_PR5.json")
	if err != nil {
		t.Skipf("BENCH_PR5.json not loadable: %v", err)
	}
	d := Diff(oldF, newF, DiffOptions{})
	if len(d.Pairs) == 0 {
		t.Fatal("committed trajectories share no series")
	}
	for _, p := range d.Pairs {
		if p.Key.Model != "acoustic" {
			t.Errorf("unexpected paired model %s (PR5 measured acoustic only)", p.Key)
		}
		if p.Ratio <= 0 || math.IsInf(p.Ratio, 0) || math.IsNaN(p.Ratio) {
			t.Errorf("degenerate ratio for %s: %g", p.Key, p.Ratio)
		}
	}
	if d.PValue < 0 || d.PValue > 1 {
		t.Fatalf("p out of range: %g", d.PValue)
	}
	var sb strings.Builder
	d.Fprint(&sb, "BENCH_PR3.json", "BENCH_PR5.json")
	out := sb.String()
	if !strings.Contains(out, "acoustic/so4/wtb") || !strings.Contains(out, "geomean") {
		t.Fatalf("Fprint output incomplete:\n%s", out)
	}
}
