package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// ---------------------------------------------------------------------------
// Bench regression diffing: load two benchmark artifacts, pair their series,
// and decide — with a paired significance test — whether throughput moved.

// SeriesKey identifies one comparable throughput series across bench
// artifacts: a kernel (model, space order) under one schedule. Grid size,
// steps and worker count are deliberately not part of the key — the tool
// compares whatever configurations both files ran, and it is the caller's
// job (enforced for run reports via the host fingerprint) to diff runs of
// like against like.
type SeriesKey struct {
	Model    string `json:"model"`
	SO       int    `json:"so"`
	Schedule string `json:"schedule"`
}

func (k SeriesKey) String() string {
	return fmt.Sprintf("%s/so%d/%s", k.Model, k.SO, k.Schedule)
}

// BenchFile is one loaded benchmark artifact reduced to GPts/s series.
type BenchFile struct {
	Path   string
	Format string // "wavebench-json", "trajectory", "report", "report-array", "autotune-predict"
	Series map[SeriesKey]float64
	// Hosts collects host fingerprints seen in the artifact (report formats
	// only), so the differ can warn when comparing across machines.
	Hosts []string
}

// put records a series value, keeping the maximum on duplicate keys: the
// trajectory files repeat (model, so) at several worker counts, and best-of
// is the measurement convention everywhere else in this package.
func (f *BenchFile) put(k SeriesKey, v float64) {
	if v <= 0 {
		return
	}
	if prev, ok := f.Series[k]; !ok || v > prev {
		f.Series[k] = v
	}
}

// LoadBenchFile reads any of the repo's benchmark JSON artifacts and
// reduces it to comparable throughput series:
//
//   - `wavebench -mode wall -json` output (benchJSON with WallRow rows);
//   - `wavebench -mode sim -json` output (SimRow rows; series are keyed
//     per simulated machine, e.g. schedule "wtb@Broadwell");
//   - committed BENCH_PR*.json trajectory files (rows with model/so and
//     *_gpts_after columns — the "after" side is loaded, since that is the
//     trajectory point the file documents);
//   - a single obs.Report or a JSON array of them (`wavebench -report`);
//   - `autotune -predict -compare -json` sweep-vs-predict documents
//     (kind "wavetile.autotune-predict"; series "autotune-sweep" and
//     "autotune-predict" carry each winner's measured throughput).
//
// The format is sniffed from the document structure, not the filename.
func LoadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	f := &BenchFile{Path: path, Series: map[SeriesKey]float64{}}

	// A top-level array is a report array; anything else is an object.
	var probe any
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	switch doc := probe.(type) {
	case []any:
		f.Format = "report-array"
		for i := range doc {
			rep, ok := asReport(doc[i])
			if !ok {
				return nil, fmt.Errorf("bench: %s: array element %d is not a run report", path, i)
			}
			f.addReport(rep)
		}
		return f, nil
	case map[string]any:
		if kind, _ := doc["kind"].(string); kind == "wavetile.run-report" {
			rep, ok := asReport(probe)
			if !ok {
				return nil, fmt.Errorf("bench: %s: malformed run report", path)
			}
			f.Format = "report"
			f.addReport(rep)
			return f, nil
		}
		if kind, _ := doc["kind"].(string); kind == PredictReportKind {
			f.Format = "autotune-predict"
			if host, ok := doc["host"].(map[string]any); ok {
				if fp, err := json.Marshal(host); err == nil {
					f.Hosts = appendUnique(f.Hosts, string(fp))
				}
			}
			rows, _ := doc["rows"].([]any)
			return f, f.addPredictRows(path, rows)
		}
		if rows, ok := doc["rows"].([]any); ok {
			if _, isBench := doc["mode"]; isBench {
				f.Format = "wavebench-json"
				mode, _ := doc["mode"].(string)
				return f, f.addWavebenchRows(path, mode, rows)
			}
			f.Format = "trajectory"
			return f, f.addTrajectoryRows(path, rows)
		}
	}
	return nil, fmt.Errorf("bench: %s: unrecognized benchmark document", path)
}

// reportDoc is the subset of obs.Report the differ consumes; decoding into
// it (rather than importing the full schema) keeps old artifacts readable
// as the schema grows.
type reportDoc struct {
	Run struct {
		Physics    string `json:"physics"`
		SpaceOrder int    `json:"space_order"`
		Schedule   string `json:"schedule"`
	} `json:"run"`
	Host          map[string]any `json:"host"`
	GPointsPerSec float64        `json:"gpoints_per_sec"`
}

func asReport(v any) (reportDoc, bool) {
	raw, err := json.Marshal(v)
	if err != nil {
		return reportDoc{}, false
	}
	var rep reportDoc
	if err := json.Unmarshal(raw, &rep); err != nil || rep.Run.Physics == "" {
		return reportDoc{}, false
	}
	return rep, true
}

func (f *BenchFile) addReport(rep reportDoc) {
	f.put(SeriesKey{Model: rep.Run.Physics, SO: rep.Run.SpaceOrder, Schedule: rep.Run.Schedule},
		rep.GPointsPerSec)
	if len(rep.Host) > 0 {
		if fp, err := json.Marshal(rep.Host); err == nil {
			f.Hosts = appendUnique(f.Hosts, string(fp))
		}
	}
}

func appendUnique(xs []string, x string) []string {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}

// addWavebenchRows loads `wavebench -json` rows (WallRow or SimRow shapes).
func (f *BenchFile) addWavebenchRows(path, mode string, rows []any) error {
	for i, rv := range rows {
		row, ok := rv.(map[string]any)
		if !ok {
			return fmt.Errorf("bench: %s: row %d is not an object", path, i)
		}
		spec, _ := row["Spec"].(map[string]any)
		if spec == nil {
			return fmt.Errorf("bench: %s: row %d has no Spec", path, i)
		}
		model, _ := spec["Model"].(string)
		so := int(num(spec["SO"]))
		switch mode {
		case "wall":
			f.put(SeriesKey{model, so, "spatial"}, num(row["SpatialGP"]))
			f.put(SeriesKey{model, so, "wtb"}, num(row["WTBGP"]))
			f.put(SeriesKey{model, so, "wtb-pipelined"}, num(row["PipeGP"]))
		case "sim":
			machine, _ := row["Machine"].(string)
			if sp, ok := row["Spatial"].(map[string]any); ok {
				f.put(SeriesKey{model, so, "spatial@" + machine}, num(sp["GPointsPS"]))
			}
			if wt, ok := row["WTB"].(map[string]any); ok {
				f.put(SeriesKey{model, so, "wtb@" + machine}, num(wt["GPointsPS"]))
			}
		default:
			return fmt.Errorf("bench: %s: unknown wavebench mode %q", path, mode)
		}
	}
	return nil
}

// addTrajectoryRows loads committed BENCH_PR*.json rows; the *_gpts_after
// columns are the trajectory point the file documents.
func (f *BenchFile) addTrajectoryRows(path string, rows []any) error {
	for i, rv := range rows {
		row, ok := rv.(map[string]any)
		if !ok {
			return fmt.Errorf("bench: %s: row %d is not an object", path, i)
		}
		model, _ := row["model"].(string)
		if model == "" {
			// Non-kernel rows (e.g. dist benchmarks) are not comparable
			// series; skip rather than fail the whole file.
			continue
		}
		so := int(num(row["so"]))
		f.put(SeriesKey{model, so, "spatial"}, num(row["spatial_gpts_after"]))
		f.put(SeriesKey{model, so, "wtb"}, num(row["wtb_gpts_after"]))
		f.put(SeriesKey{model, so, "wtb-pipelined"}, num(row["pipelined_gpts_after"]))
		// Survey trajectory rows (cmd/survey -json) carry shots/s for the
		// per-shot baseline loop and the batch engine; the units differ from
		// GPts/s but pair consistently across artifacts of the same shape.
		f.put(SeriesKey{model, so, "survey-seq"}, num(row["survey_seq_sps_after"]))
		f.put(SeriesKey{model, so, "survey-batch"}, num(row["survey_batch_sps_after"]))
	}
	return nil
}

// addPredictRows loads PredictBench sweep-vs-predict rows (see predict.go):
// the sweep winner's and the predicted winner's measured throughput become
// paired series, so a benchdiff of two predict artifacts tracks both the
// hardware and the predictor's picking quality across revisions.
func (f *BenchFile) addPredictRows(path string, rows []any) error {
	for i, rv := range rows {
		row, ok := rv.(map[string]any)
		if !ok {
			return fmt.Errorf("bench: %s: row %d is not an object", path, i)
		}
		model, _ := row["model"].(string)
		if model == "" {
			return fmt.Errorf("bench: %s: row %d has no model", path, i)
		}
		so := int(num(row["so"]))
		f.put(SeriesKey{model, so, "autotune-sweep"}, num(row["sweep_gpts"]))
		f.put(SeriesKey{model, so, "autotune-predict"}, num(row["predict_gpts"]))
	}
	return nil
}

func num(v any) float64 {
	x, _ := v.(float64)
	return x
}

// DiffOptions tune the regression decision.
type DiffOptions struct {
	// Alpha is the significance level of the paired sign-flip test
	// (default 0.05).
	Alpha float64
	// MinEffect is the minimum geometric-mean throughput change that
	// counts as a real move (default 0.02 = 2%); smaller shifts are noise
	// regardless of p-value.
	MinEffect float64
}

func (o *DiffOptions) defaults() {
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	if o.MinEffect == 0 {
		o.MinEffect = 0.02
	}
}

// Pair is one series measured in both files.
type Pair struct {
	Key      SeriesKey
	Old, New float64
	Ratio    float64 // New / Old
}

// DiffResult is the outcome of comparing two bench artifacts.
type DiffResult struct {
	Pairs   []Pair
	OnlyOld []SeriesKey // series present in the old file only
	OnlyNew []SeriesKey

	// GeoMeanRatio is the geometric mean of New/Old over the pairs — the
	// single "how much faster/slower" number.
	GeoMeanRatio float64
	// PValue is the paired sign-flip permutation p-value for the null
	// hypothesis that throughput did not change.
	PValue float64
	// Significant means PValue ≤ Alpha AND |GeoMeanRatio − 1| ≥ MinEffect.
	Significant bool
	Regression  bool // significant and slower
	Improvement bool // significant and faster
	// HostMismatch is set when both sides carry host fingerprints and they
	// differ — cross-host ratios are not paired samples.
	HostMismatch bool
}

// Diff pairs the two files' series and runs the significance test.
func Diff(oldF, newF *BenchFile, o DiffOptions) DiffResult {
	o.defaults()
	var d DiffResult
	keys := make([]SeriesKey, 0, len(oldF.Series))
	for k := range oldF.Series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		if a.SO != b.SO {
			return a.SO < b.SO
		}
		return a.Schedule < b.Schedule
	})
	var logs []float64
	for _, k := range keys {
		ov := oldF.Series[k]
		nv, ok := newF.Series[k]
		if !ok {
			d.OnlyOld = append(d.OnlyOld, k)
			continue
		}
		p := Pair{Key: k, Old: ov, New: nv, Ratio: nv / ov}
		d.Pairs = append(d.Pairs, p)
		logs = append(logs, math.Log(p.Ratio))
	}
	for k := range newF.Series {
		if _, ok := oldF.Series[k]; !ok {
			d.OnlyNew = append(d.OnlyNew, k)
		}
	}
	sort.Slice(d.OnlyNew, func(i, j int) bool { return d.OnlyNew[i].String() < d.OnlyNew[j].String() })

	if len(logs) == 0 {
		d.GeoMeanRatio = 1
		d.PValue = 1
		return d
	}
	sum := 0.0
	for _, l := range logs {
		sum += l
	}
	d.GeoMeanRatio = math.Exp(sum / float64(len(logs)))
	d.PValue = signFlipP(logs)
	effect := math.Abs(d.GeoMeanRatio - 1)
	d.Significant = d.PValue <= o.Alpha && effect >= o.MinEffect
	if d.Significant {
		d.Regression = d.GeoMeanRatio < 1
		d.Improvement = d.GeoMeanRatio > 1
	}
	if len(oldF.Hosts) > 0 && len(newF.Hosts) > 0 &&
		!(len(oldF.Hosts) == 1 && len(newF.Hosts) == 1 && oldF.Hosts[0] == newF.Hosts[0]) {
		d.HostMismatch = true
	}
	return d
}

// signFlipP is the paired sign-flip permutation test on log-ratios: under
// the null hypothesis (no change), each pair's log-ratio is symmetric
// around zero, so every sign assignment of the observed magnitudes is
// equally likely. The p-value is the fraction of the 2^n assignments whose
// |sum| reaches the observed |sum| — exact (and deterministic) for n ≤ 20,
// a normal approximation beyond.
//
// With few pairs the exact test is conservative by construction: n = 3
// identical-direction moves cannot reach p < 0.25, which is what keeps the
// back-to-back same-binary smoke gate from flaking.
func signFlipP(logs []float64) float64 {
	n := len(logs)
	if n == 0 {
		return 1
	}
	var obs float64
	allZero := true
	for _, l := range logs {
		obs += l
		if l != 0 {
			allZero = false
		}
	}
	if allZero {
		return 1
	}
	obs = math.Abs(obs)
	const eps = 1e-12
	if n <= 20 {
		hits := 0
		total := 1 << n
		for mask := 0; mask < total; mask++ {
			var s float64
			for i, l := range logs {
				if mask&(1<<i) != 0 {
					s -= l
				} else {
					s += l
				}
			}
			if math.Abs(s) >= obs-eps {
				hits++
			}
		}
		return float64(hits) / float64(total)
	}
	// Normal approximation: under the null, sum = Σ±|l_i| has mean 0 and
	// variance Σ l_i²  (sign flips are independent).
	var v float64
	for _, l := range logs {
		v += l * l
	}
	if v == 0 {
		return 1
	}
	z := obs / math.Sqrt(v)
	return math.Erfc(z / math.Sqrt2)
}

// Fprint renders the diff as an aligned human-readable table plus verdict.
func (d DiffResult) Fprint(w io.Writer, oldPath, newPath string) {
	fmt.Fprintf(w, "benchdiff: %s → %s\n", oldPath, newPath)
	if d.HostMismatch {
		fmt.Fprintln(w, "WARNING: host fingerprints differ — ratios are not paired samples")
	}
	if len(d.Pairs) > 0 {
		fmt.Fprintf(w, "%-28s %14s %14s %9s\n", "series", "old GPts/s", "new GPts/s", "ratio")
		for _, p := range d.Pairs {
			fmt.Fprintf(w, "%-28s %14.4f %14.4f %8.3fx\n", p.Key, p.Old, p.New, p.Ratio)
		}
	}
	for _, k := range d.OnlyOld {
		fmt.Fprintf(w, "%-28s only in old file\n", k)
	}
	for _, k := range d.OnlyNew {
		fmt.Fprintf(w, "%-28s only in new file\n", k)
	}
	switch {
	case len(d.Pairs) == 0:
		fmt.Fprintln(w, "no comparable series")
	case d.Regression:
		fmt.Fprintf(w, "REGRESSION: geomean %.3fx (%.1f%% slower), p=%.4g\n",
			d.GeoMeanRatio, 100*(1-d.GeoMeanRatio), d.PValue)
	case d.Improvement:
		fmt.Fprintf(w, "improvement: geomean %.3fx (%.1f%% faster), p=%.4g\n",
			d.GeoMeanRatio, 100*(d.GeoMeanRatio-1), d.PValue)
	default:
		fmt.Fprintf(w, "no significant change: geomean %.3fx, p=%.4g\n", d.GeoMeanRatio, d.PValue)
	}
}
