package bench

import (
	"fmt"
	"strings"

	"wavetile/internal/cachesim"
	"wavetile/internal/hostcal"
	"wavetile/internal/model"
	"wavetile/internal/obs"
	"wavetile/internal/roofline"
	"wavetile/internal/tiling"
)

// ---------------------------------------------------------------------------
// Roofline attribution: joining a measured run against the cache-simulated
// prediction for the same (physics, order, schedule, config) point.

// MachineByName resolves a *preset* roofline machine model by
// (case-insensitive) name. ResolveMachine is the host-aware superset.
func MachineByName(name string) (roofline.Machine, error) {
	switch strings.ToLower(name) {
	case "", "broadwell":
		return roofline.Broadwell(), nil
	case "skylake":
		return roofline.Skylake(), nil
	}
	return roofline.Machine{}, fmt.Errorf("bench: unknown roofline machine %q (want broadwell or skylake)", name)
}

// PresetMarker prefixes the machine name when attribution falls back to a
// paper preset because no measured host fingerprint was available — so a
// report reader can always tell a measured machine ("host/…") from an
// assumed one ("preset/…").
const PresetMarker = "preset/"

// ResolveMachine turns a machine selector into a calibrated roofline model:
//
//   - "" (auto): the measured host fingerprint when a valid one is found at
//     calPath (or hostcal.DefaultPath()), with its fitted calibration if
//     present; otherwise the Broadwell preset renamed "preset/broadwell" so
//     the fallback is explicit in every report.
//   - "host": the measured fingerprint, required — a missing, mismatched or
//     stale fingerprint is a surfaced error, never a silent preset.
//   - "broadwell" / "skylake": the paper presets, by name.
//
// calPath "" means hostcal.DefaultPath().
func ResolveMachine(name, calPath string) (roofline.Calibrated, error) {
	if calPath == "" {
		calPath = hostcal.DefaultPath()
	}
	switch strings.ToLower(name) {
	case "", "auto":
		if cal, err := hostcal.LoadChecked(calPath); err == nil {
			return roofline.CalibratedFromCal(cal), nil
		}
		m := roofline.Broadwell()
		m.Name = PresetMarker + "broadwell"
		return roofline.Calibrated{Machine: m, BWEff: 1}, nil
	case "host":
		cal, err := hostcal.LoadChecked(calPath)
		if err != nil {
			return roofline.Calibrated{}, fmt.Errorf("bench: -machine host needs a valid fingerprint (run `make hostcal`): %w", err)
		}
		return roofline.CalibratedFromCal(cal), nil
	}
	m, err := MachineByName(name)
	if err != nil {
		return roofline.Calibrated{}, err
	}
	return roofline.Calibrated{Machine: m, BWEff: 1}, nil
}

// AttributeOptions size the attribution replay. The defaults are smaller
// than SimOptions' figure-grade trace grid: attribution runs inline after a
// measurement (a -report flag, a post-Run call), so it trades a little
// traffic-ratio fidelity for a sub-second replay.
type AttributeOptions struct {
	// Machine selects the roofline model: "" (auto: measured host
	// fingerprint when available, else the marked Broadwell preset),
	// "host", "broadwell" or "skylake" — see ResolveMachine.
	Machine string
	// HostcalPath overrides the fingerprint location ("" →
	// hostcal.DefaultPath()).
	HostcalPath string
	TraceN      int // trace grid edge (default 64)
	TraceNt     int // traced timesteps (default 4)
}

func (o *AttributeOptions) defaults() {
	if o.TraceN == 0 {
		o.TraceN = 64
	}
	if o.TraceNt == 0 {
		o.TraceNt = 4
	}
}

// Attribute replays the schedule of one measured run on a reduced trace
// grid through the machine's cache hierarchy, applies the roofline model,
// and joins the prediction with the measurement:
//
//   - AchievedFraction = measured GPts/s ÷ model-predicted GPts/s, the
//     headline "how close to the paper's model did this run get" number;
//   - ModelDRAMBytes = the simulated DRAM traffic scaled from the trace
//     grid to the run's point count;
//   - EffectiveDRAMGBs = that traffic moved at the measured throughput,
//     i.e. the run's effective memory bandwidth under the model.
//
// schedule is a Result/RunInfo schedule string: "spatial",
// "spatial-unfused", "spatial+snapshots", "wtb" or "wtb-pipelined". The
// pipelined runtime is replayed through the sequential RunWTB — it visits
// the identical space-time tiles (the trace sink is not concurrency-safe),
// so the traffic is the same. cfg is consulted for the WTB schedules only
// and is clamped to the trace grid (TT to TraceNt, tiles into
// [MinTile, TraceN]).
//
// runPoints and measuredGPts come from the measurement being attributed.
func Attribute(spec Spec, schedule string, cfg tiling.Config, measuredGPts float64, runPoints int64, o AttributeOptions) (*obs.RooflineAttribution, error) {
	o.defaults()
	cal, err := ResolveMachine(o.Machine, o.HostcalPath)
	if err != nil {
		return nil, err
	}
	m := cal.Machine

	sh, err := traceShape(spec, SimOptions{TraceN: o.TraceN, TraceNt: o.TraceNt})
	if err != nil {
		return nil, err
	}
	h := cachesim.New(m.Cache)
	p, err := traceProp(spec.Model, sh, h)
	if err != nil {
		return nil, err
	}

	switch schedule {
	case "spatial", "spatial+snapshots":
		tiling.RunSpatial(p, 0, 0, true)
	case "spatial-unfused":
		tiling.RunSpatial(p, 0, 0, false)
	case "wtb", "wtb-pipelined":
		if err := tiling.RunWTB(p, clampConfig(cfg, p.MinTile(), o.TraceN, o.TraceNt)); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("bench: cannot attribute schedule %q", schedule)
	}
	traffic := h.Snapshot(spec.Name())

	tracePoints := float64(o.TraceN) * float64(o.TraceN) * float64(o.TraceN) * float64(o.TraceNt)
	flops := float64(flopsPerPoint(spec.Model, spec.SO)) * tracePoints
	pred := cal.Predict(flops, tracePoints, traffic)

	att := &obs.RooflineAttribution{
		Machine:            m.Name,
		TraceN:             o.TraceN,
		TraceNt:            o.TraceNt,
		PredictedGPointsPS: pred.GPointsPS,
		PredictedBound:     pred.Bound,
		MachineDRAMGBs:     m.BWGBs[len(m.BWGBs)-1],
	}
	// Record the calibration behind the prediction when it deviates from
	// the identity model.
	if cal.BWEff > 0 && cal.BWEff != 1 {
		att.BWEff = cal.BWEff
	}
	if cal.OverheadNSPerPoint > 0 {
		att.OverheadNSPerPoint = cal.OverheadNSPerPoint
	}
	if pred.GPointsPS > 0 {
		att.AchievedFraction = measuredGPts / pred.GPointsPS
	}
	bytesPerPoint := float64(traffic.DRAMBytes) / tracePoints
	att.ModelDRAMBytes = uint64(bytesPerPoint * float64(runPoints))
	// GB/s = (bytes/point) × (1e9 points/s) / 1e9 — the factors cancel.
	att.EffectiveDRAMGBs = bytesPerPoint * measuredGPts
	if att.MachineDRAMGBs > 0 {
		att.BandwidthFraction = att.EffectiveDRAMGBs / att.MachineDRAMGBs
	}
	return att, nil
}

// clampConfig maps a run-scale WTB configuration onto the trace grid so the
// replay keeps the schedule's character (deep time tile, wide space tile)
// while staying legal at the reduced size.
func clampConfig(cfg tiling.Config, minTile, traceN, traceNt int) tiling.Config {
	c := cfg
	if c.TT < 1 {
		c.TT = traceNt
	}
	if c.TT > traceNt {
		c.TT = traceNt
	}
	clampTile := func(t int) int {
		if t < minTile {
			return minTile
		}
		if t > traceN {
			return traceN
		}
		return t
	}
	c.TileX, c.TileY = clampTile(c.TileX), clampTile(c.TileY)
	if c.BlockX < 1 {
		c.BlockX = 8
	}
	if c.BlockY < 1 {
		c.BlockY = 8
	}
	return c
}

// TimeAxis computes the spec's CFL time axis (dt, nt) without instantiating
// wavefields, for report writers that have a WallRow but not a built
// Problem.
func (s Spec) TimeAxis() (float64, int, error) {
	if s.NBL == 0 {
		s.NBL = 10
	}
	h := s.spacing()
	g := model.Geometry{Nx: s.N, Ny: s.N, Nz: s.N, Hx: h, Hy: h, Hz: h, NBL: s.NBL}
	const vmax = 3500
	var dt float64
	switch s.Model {
	case "acoustic":
		dt = g.CriticalDtAcoustic(s.SO, vmax, model.DefaultCFL)
	case "tti":
		dt = g.CriticalDtTTI(s.SO, vmax, 0.24, model.DefaultCFL)
	case "elastic":
		dt = g.CriticalDtElastic(s.SO, vmax, model.DefaultCFL)
	default:
		return 0, 0, fmt.Errorf("bench: unknown model %q", s.Model)
	}
	if s.Steps > 0 {
		return dt, s.Steps, nil
	}
	g.SetTime(0.512, dt)
	return g.Dt, g.Nt, nil
}

// WallReports converts Fig9Wall rows into run reports — one per (spec,
// schedule) measurement, each joined against the roofline model — so a
// bench sweep leaves the same machine-readable artifacts as a single
// attributed run.
func WallReports(rows []WallRow, o AttributeOptions) ([]*obs.Report, error) {
	var out []*obs.Report
	for _, row := range rows {
		dt, nt, err := row.Spec.TimeAxis()
		if err != nil {
			return nil, err
		}
		points := int64(row.Spec.N) * int64(row.Spec.N) * int64(row.Spec.N) * int64(nt)
		for _, meas := range []struct {
			schedule string
			gpts     float64
			cfg      tiling.Config
		}{
			{"spatial-unfused", row.SpatialGP, tiling.Config{}},
			{"wtb", row.WTBGP, row.Best},
			{"wtb-pipelined", row.PipeGP, row.Best},
		} {
			if meas.gpts == 0 {
				continue
			}
			rep := obs.NewReport()
			rep.Run = obs.RunInfo{
				Physics:    row.Spec.Model,
				SpaceOrder: row.Spec.SO,
				Shape:      [3]int{row.Spec.N, row.Spec.N, row.Spec.N},
				Spacing:    [3]float64{row.Spec.spacing(), row.Spec.spacing(), row.Spec.spacing()},
				Steps:      nt,
				DtSeconds:  dt,
				Schedule:   meas.schedule,
				Sources:    max(row.Spec.NSrc, 1),
				Receivers:  row.Spec.NRec,
			}
			if meas.schedule != "spatial-unfused" {
				rep.Run.Config = meas.cfg.String()
			}
			rep.Points = points
			rep.GPointsPerSec = meas.gpts
			if meas.gpts > 0 {
				rep.ElapsedNS = int64(float64(points) / (meas.gpts * 1e9) * 1e9)
			}
			att, err := Attribute(row.Spec, meas.schedule, meas.cfg, meas.gpts, points, o)
			if err != nil {
				return nil, err
			}
			rep.Roofline = att
			out = append(out, rep)
		}
	}
	return out, nil
}
