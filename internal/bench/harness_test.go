package bench

import (
	"testing"

	"wavetile/internal/roofline"
	"wavetile/internal/tiling"
)

func TestTuneWTBSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	res, err := TuneWTB(Spec{Model: "acoustic", SO: 4, N: 48}, 2, 1, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no tuning results")
	}
	for i := 1; i < len(res); i++ {
		if res[i].Elapsed < res[i-1].Elapsed {
			t.Fatal("tuning results not sorted")
		}
	}
}

func TestFig9WallSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	rows, err := Fig9Wall([]Spec{{Model: "acoustic", SO: 4, N: 40, Steps: 4}}, 2, 1, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].SpatialGP <= 0 || rows[0].WTBGP <= 0 {
		t.Fatalf("bad rows: %+v", rows)
	}
}

func TestFig10WallSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	cfg := tiling.Config{TT: 4, TileX: 16, TileY: 16, BlockX: 8, BlockY: 8}
	rows, err := Fig10Wall(40, 4, []int{1, 16}, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 layouts × 2 counts
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 0 || r.Mode != "wall" {
			t.Fatalf("bad row: %+v", r)
		}
	}
}

func TestFig11Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	pts, err := Fig11(roofline.Broadwell(), []int{4}, SimOptions{TraceN: 40, TraceNt: 4, RefN: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d roofline points", len(pts))
	}
	tb := Fig11Table(roofline.Broadwell(), pts)
	if len(tb.Rows) != 2 || len(tb.Header) != 7 {
		t.Fatalf("table %dx%d", len(tb.Rows), len(tb.Header))
	}
	for _, p := range pts {
		if p.Pred.GFlops <= 0 || len(p.Pred.AIs) != 3 {
			t.Fatalf("bad prediction: %+v", p.Pred)
		}
	}
}

func TestFig10SimSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	rows, err := Fig10Sim(roofline.Broadwell(), []int{1, 256},
		SimOptions{TraceN: 40, TraceNt: 4, RefN: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 0 || r.Mode != "Broadwell" {
			t.Fatalf("bad row: %+v", r)
		}
	}
}

func TestPaperSpecs(t *testing.T) {
	specs := PaperSpecs(512, 0)
	if len(specs) != 9 {
		t.Fatalf("%d specs, want 9", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		seen[s.Name()] = true
	}
	for _, want := range []string{"Acoustic O(2,4)", "Elastic O(1,12)", "TTI O(2,8)"} {
		if !seen[want] {
			t.Fatalf("missing spec %s", want)
		}
	}
}
