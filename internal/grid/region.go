package grid

import "fmt"

// Region is a half-open rectangle [X0,X1) × [Y0,Y1) in the x–y plane of a
// grid. The z dimension is always streamed in full by the kernels, following
// the paper's loop structure (blocking and tiling act on x and y only;
// Listings 4–6).
//
// Regions produced by the wave-front temporal-blocking schedule may extend
// beyond the grid before clamping: the skewing shifts raw tile rectangles
// left/up as the time index inside a tile advances, and per-field phase
// offsets shift them further (Fig. 8b). Propagators clamp per phase.
type Region struct {
	X0, X1, Y0, Y1 int
}

// FullRegion returns the region covering an nx × ny interior.
func FullRegion(nx, ny int) Region { return Region{0, nx, 0, ny} }

// Empty reports whether r contains no points.
func (r Region) Empty() bool { return r.X0 >= r.X1 || r.Y0 >= r.Y1 }

// NumPoints returns the number of (x, y) columns in r, 0 if empty.
func (r Region) NumPoints() int {
	if r.Empty() {
		return 0
	}
	return (r.X1 - r.X0) * (r.Y1 - r.Y0)
}

// Clamp intersects r with [0,nx) × [0,ny).
func (r Region) Clamp(nx, ny int) Region {
	if r.X0 < 0 {
		r.X0 = 0
	}
	if r.Y0 < 0 {
		r.Y0 = 0
	}
	if r.X1 > nx {
		r.X1 = nx
	}
	if r.Y1 > ny {
		r.Y1 = ny
	}
	return r
}

// Shift translates r by (dx, dy).
func (r Region) Shift(dx, dy int) Region {
	return Region{r.X0 + dx, r.X1 + dx, r.Y0 + dy, r.Y1 + dy}
}

// Intersect returns the intersection of r and o (possibly empty).
func (r Region) Intersect(o Region) Region {
	return Region{
		max(r.X0, o.X0), min(r.X1, o.X1),
		max(r.Y0, o.Y0), min(r.Y1, o.Y1),
	}
}

// Contains reports whether (x, y) lies in r.
func (r Region) Contains(x, y int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

func (r Region) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", r.X0, r.X1, r.Y0, r.Y1)
}

// SplitBlocks cuts r into blocks of at most bx × by columns, in row-major
// order, and returns them. It is the spatial "cache blocking" decomposition
// of the paper's Listing 6 inner loops; the blocks of one region are mutually
// independent and may be executed in parallel.
//
// Non-positive bx/by select the full extent in that dimension.
func (r Region) SplitBlocks(bx, by int) []Region {
	return r.AppendBlocks(nil, bx, by)
}

// AppendBlocks is SplitBlocks appending into dst, so hot schedule loops can
// recycle one buffer per step instead of allocating the block list anew
// (tiling.ForBlocks feeds it from a sync.Pool). Block order and contents
// are identical to SplitBlocks.
func (r Region) AppendBlocks(dst []Region, bx, by int) []Region {
	if r.Empty() {
		return dst
	}
	if bx <= 0 {
		bx = r.X1 - r.X0
	}
	if by <= 0 {
		by = r.Y1 - r.Y0
	}
	for x0 := r.X0; x0 < r.X1; x0 += bx {
		x1 := min(x0+bx, r.X1)
		for y0 := r.Y0; y0 < r.Y1; y0 += by {
			dst = append(dst, Region{x0, x1, y0, min(y0+by, r.Y1)})
		}
	}
	return dst
}
