// Package grid provides the 3-D single-precision grid substrate used by all
// finite-difference propagators in this repository.
//
// Grids are stored flat with the z dimension contiguous ("z fastest"), the
// layout assumed throughout the paper's listings: a stencil streams along z
// while x and y carry the blocking/tiling loops. Each grid is padded on all
// six faces by a halo of configurable width so that stencil kernels can read
// past the interior without bounds checks; halo values are zero and act as
// homogeneous Dirichlet data (the absorbing damping layers of the models make
// the physical influence of this choice negligible, exactly as in the paper's
// test setup).
package grid

import (
	"fmt"
	"math"

	"wavetile/internal/par"
)

// Grid is a 3-D float32 field with halo padding.
//
// Interior points are addressed with coordinates x ∈ [0,Nx), y ∈ [0,Ny),
// z ∈ [0,Nz). The flat index of an interior point is
//
//	(x+H)*SX + (y+H)*SY + (z+H)
//
// where SX and SY are the padded strides. Kernels are expected to hoist the
// row slice for a given (x, y) and then stream along z.
type Grid struct {
	Nx, Ny, Nz int // interior extent
	H          int // halo width on each side

	SX, SY int // strides: SX = paddedY*paddedZ, SY = paddedZ

	Data []float32
}

// New allocates a zero-filled grid with the given interior shape and halo
// width. It panics on non-positive dimensions or negative halo, since a grid
// of invalid shape is always a programming error.
func New(nx, ny, nz, halo int) *Grid {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("grid: invalid shape %dx%dx%d", nx, ny, nz))
	}
	if halo < 0 {
		panic(fmt.Sprintf("grid: negative halo %d", halo))
	}
	px, py, pz := nx+2*halo, ny+2*halo, nz+2*halo
	return &Grid{
		Nx: nx, Ny: ny, Nz: nz,
		H:  halo,
		SX: py * pz, SY: pz,
		Data: make([]float32, px*py*pz),
	}
}

// Idx returns the flat index of interior point (x, y, z).
func (g *Grid) Idx(x, y, z int) int {
	return (x+g.H)*g.SX + (y+g.H)*g.SY + (z + g.H)
}

// At returns the value at interior point (x, y, z).
func (g *Grid) At(x, y, z int) float32 { return g.Data[g.Idx(x, y, z)] }

// Set stores v at interior point (x, y, z).
func (g *Grid) Set(x, y, z int, v float32) { g.Data[g.Idx(x, y, z)] = v }

// Row returns the interior z-row at (x, y) as a slice of length Nz.
// Writing through the slice mutates the grid.
func (g *Grid) Row(x, y int) []float32 {
	base := g.Idx(x, y, 0)
	return g.Data[base : base+g.Nz]
}

// Fill sets every interior point to v, leaving the halo untouched.
func (g *Grid) Fill(v float32) {
	for x := 0; x < g.Nx; x++ {
		for y := 0; y < g.Ny; y++ {
			row := g.Row(x, y)
			for z := range row {
				row[z] = v
			}
		}
	}
}

// FillFunc sets every interior point to f(x, y, z). The x-slabs are filled
// in parallel, so f must be safe to call concurrently from several
// goroutines (pure functions of the coordinates always are).
func (g *Grid) FillFunc(f func(x, y, z int) float32) {
	par.For(g.Nx, func(x int) {
		for y := 0; y < g.Ny; y++ {
			row := g.Row(x, y)
			for z := range row {
				row[z] = f(x, y, z)
			}
		}
	})
}

// Clone returns a deep copy of g. Large model grids are cloned once per
// schedule comparison, so the copy is spread over the parallel workers by
// padded x-plane.
func (g *Grid) Clone() *Grid {
	c := *g
	c.Data = make([]float32, len(g.Data))
	px := len(g.Data) / g.SX
	par.For(px, func(xp int) {
		copy(c.Data[xp*g.SX:][:g.SX], g.Data[xp*g.SX:][:g.SX])
	})
	return &c
}

// CopyFrom overwrites g's whole buffer (halo included) with o's contents,
// one padded x-plane per parallel work item. It panics on shape mismatch,
// like MaxAbsDiff: restoring state into a grid of the wrong layout is
// always a programming error. After CopyFrom the two grids are bitwise
// identical, which is what checkpoint restore needs — a restored wavefield
// must be indistinguishable from the one that was snapshotted.
func (g *Grid) CopyFrom(o *Grid) {
	if !g.SameShape(o) {
		panic("grid: CopyFrom on grids of different shape")
	}
	px := len(g.Data) / g.SX
	par.For(px, func(xp int) {
		copy(g.Data[xp*g.SX:][:g.SX], o.Data[xp*g.SX:][:g.SX])
	})
}

// Zero clears the whole buffer, halo included, one padded x-plane per
// parallel work item.
func (g *Grid) Zero() {
	px := len(g.Data) / g.SX
	par.For(px, func(xp int) {
		plane := g.Data[xp*g.SX:][:g.SX]
		for i := range plane {
			plane[i] = 0
		}
	})
}

// SameShape reports whether o has identical interior shape and halo.
func (g *Grid) SameShape(o *Grid) bool {
	return g.Nx == o.Nx && g.Ny == o.Ny && g.Nz == o.Nz && g.H == o.H
}

// MaxAbsDiff returns the maximum absolute pointwise difference between the
// interiors of g and o, and the coordinates where it is attained. It panics
// if shapes differ.
func (g *Grid) MaxAbsDiff(o *Grid) (diff float64, x, y, z int) {
	if !g.SameShape(o) {
		panic("grid: MaxAbsDiff on grids of different shape")
	}
	for xi := 0; xi < g.Nx; xi++ {
		for yi := 0; yi < g.Ny; yi++ {
			a, b := g.Row(xi, yi), o.Row(xi, yi)
			for zi := range a {
				d := math.Abs(float64(a[zi]) - float64(b[zi]))
				if d > diff {
					diff, x, y, z = d, xi, yi, zi
				}
			}
		}
	}
	return diff, x, y, z
}

// Equal reports whether the interiors of g and o are bitwise identical.
func (g *Grid) Equal(o *Grid) bool {
	if !g.SameShape(o) {
		return false
	}
	for x := 0; x < g.Nx; x++ {
		for y := 0; y < g.Ny; y++ {
			a, b := g.Row(x, y), o.Row(x, y)
			for z := range a {
				if a[z] != b[z] {
					return false
				}
			}
		}
	}
	return true
}

// MaxAbs returns the maximum absolute value over the interior.
func (g *Grid) MaxAbs() float64 {
	m := 0.0
	for x := 0; x < g.Nx; x++ {
		for y := 0; y < g.Ny; y++ {
			row := g.Row(x, y)
			for _, v := range row {
				if d := math.Abs(float64(v)); d > m {
					m = d
				}
			}
		}
	}
	return m
}

// SumSq returns the sum of squares over the interior (a discrete energy
// proxy used by the physics sanity tests).
func (g *Grid) SumSq() float64 {
	s := 0.0
	for x := 0; x < g.Nx; x++ {
		for y := 0; y < g.Ny; y++ {
			row := g.Row(x, y)
			for _, v := range row {
				s += float64(v) * float64(v)
			}
		}
	}
	return s
}

// HasNaN reports whether any interior value is NaN or infinite.
func (g *Grid) HasNaN() bool {
	for x := 0; x < g.Nx; x++ {
		for y := 0; y < g.Ny; y++ {
			row := g.Row(x, y)
			for _, v := range row {
				f := float64(v)
				if math.IsNaN(f) || math.IsInf(f, 0) {
					return true
				}
			}
		}
	}
	return false
}
