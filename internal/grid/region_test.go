package grid

import (
	"testing"
	"testing/quick"
)

func TestRegionBasics(t *testing.T) {
	r := Region{2, 6, 3, 5}
	if r.Empty() || r.NumPoints() != 8 {
		t.Fatalf("NumPoints %d", r.NumPoints())
	}
	if !r.Contains(2, 3) || !r.Contains(5, 4) || r.Contains(6, 3) || r.Contains(2, 5) {
		t.Fatal("Contains wrong at boundaries")
	}
	if (Region{4, 4, 0, 9}).NumPoints() != 0 {
		t.Fatal("empty region has points")
	}
	if got := r.Shift(-1, 2); got != (Region{1, 5, 5, 7}) {
		t.Fatalf("Shift got %v", got)
	}
	if got := r.Intersect(Region{4, 9, 0, 4}); got != (Region{4, 6, 3, 4}) {
		t.Fatalf("Intersect got %v", got)
	}
	if s := r.String(); s != "[2,6)x[3,5)" {
		t.Fatalf("String %q", s)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ in, want Region }{
		{Region{-3, 4, -1, 10}, Region{0, 4, 0, 8}},
		{Region{5, 20, 2, 3}, Region{5, 10, 2, 3}},
		{Region{-5, -1, 0, 8}, Region{0, -1, 0, 8}}, // stays empty
	}
	for _, c := range cases {
		got := c.in.Clamp(10, 8)
		if got != c.want && !(got.Empty() && c.want.Empty()) {
			t.Fatalf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSplitBlocksEdges(t *testing.T) {
	if SplitBlocks := (Region{0, 0, 0, 5}).SplitBlocks(2, 2); SplitBlocks != nil {
		t.Fatal("empty region split returned blocks")
	}
	// Non-positive block sizes take the full extent.
	b := (Region{1, 9, 2, 7}).SplitBlocks(0, -1)
	if len(b) != 1 || b[0] != (Region{1, 9, 2, 7}) {
		t.Fatalf("full-extent split got %v", b)
	}
}

// Property: SplitBlocks partitions the region — blocks are disjoint, cover
// every point, stay within bounds, and respect the block shape.
func TestSplitBlocksPartitionProperty(t *testing.T) {
	f := func(x0, w, y0, h int16, bx, by uint8) bool {
		r := Region{int(x0 % 50), 0, int(y0 % 50), 0}
		r.X1 = r.X0 + int(w%40)
		r.Y1 = r.Y0 + int(h%40)
		blocks := r.SplitBlocks(int(bx%12), int(by%12))
		seen := map[[2]int]bool{}
		for _, b := range blocks {
			if b.Empty() {
				return false
			}
			if b.X0 < r.X0 || b.X1 > r.X1 || b.Y0 < r.Y0 || b.Y1 > r.Y1 {
				return false
			}
			for x := b.X0; x < b.X1; x++ {
				for y := b.Y0; y < b.Y1; y++ {
					if seen[[2]int{x, y}] {
						return false
					}
					seen[[2]int{x, y}] = true
				}
			}
		}
		return len(seen) == r.NumPoints()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
