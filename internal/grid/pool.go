package grid

import (
	"sync"
	"sync/atomic"
)

// Pool recycles wavefield-sized grids across the shots of a survey. Grids
// are keyed by their full shape (interior extent + halo), so a Get can only
// ever be satisfied by a buffer of the exact layout the caller would have
// allocated — there is no partial reuse and no reshaping.
//
// Grids returned by Get are always fully zeroed (halo included), exactly
// like a fresh New, so pooled and freshly allocated wavefields are
// indistinguishable to the propagators — the property the batched-vs-
// sequential bitwise oracle rests on. The zeroing happens on the Get path
// (not Put) so that grids parked in the pool cost no work until needed.
//
// All methods are safe for concurrent use. A nil *Pool is valid and simply
// allocates: every Get falls through to New and every Put drops the grid,
// which lets pooling be threaded through constructors unconditionally.
type Pool struct {
	mu   sync.Mutex
	free map[poolKey][]*Grid

	hits   atomic.Int64 // Gets satisfied by recycling
	misses atomic.Int64 // Gets that had to allocate
	puts   atomic.Int64 // grids returned via Put
}

type poolKey struct {
	nx, ny, nz, halo int
}

// NewPool returns an empty grid pool.
func NewPool() *Pool {
	return &Pool{free: map[poolKey][]*Grid{}}
}

// Get returns a zeroed grid of the given shape, recycling a previously Put
// buffer when one of the exact shape is available. A nil pool allocates.
func (p *Pool) Get(nx, ny, nz, halo int) *Grid {
	if p == nil {
		return New(nx, ny, nz, halo)
	}
	k := poolKey{nx, ny, nz, halo}
	p.mu.Lock()
	list := p.free[k]
	var g *Grid
	if n := len(list); n > 0 {
		g = list[n-1]
		list[n-1] = nil
		p.free[k] = list[:n-1]
	}
	p.mu.Unlock()
	if g == nil {
		p.misses.Add(1)
		return New(nx, ny, nz, halo)
	}
	p.hits.Add(1)
	g.Zero()
	return g
}

// Put returns a grid to the pool for later reuse. The caller must not touch
// g afterwards. A nil pool (or a nil grid) drops it.
func (p *Pool) Put(g *Grid) {
	if p == nil || g == nil {
		return
	}
	p.puts.Add(1)
	k := poolKey{g.Nx, g.Ny, g.Nz, g.H}
	p.mu.Lock()
	p.free[k] = append(p.free[k], g)
	p.mu.Unlock()
}

// Balance reports the cumulative Get and Put counts. A caller that checks
// the pool out and back in symmetrically — e.g. a survey lane releasing its
// wavefields on close, even after an error or cancellation — leaves
// gets == puts; a nonzero difference means grids leaked out of the pool's
// custody. The simulation service asserts this after cancelling a job.
func (p *Pool) Balance() (gets, puts int64) {
	if p == nil {
		return 0, 0
	}
	return p.hits.Load() + p.misses.Load(), p.puts.Load()
}

// Stats reports the cumulative hit (recycled) and miss (allocated) counts
// of Get. Survey drivers diff these around a run to attribute steady-state
// allocation behaviour.
func (p *Pool) Stats() (hits, misses int64) {
	if p == nil {
		return 0, 0
	}
	return p.hits.Load(), p.misses.Load()
}
