package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapesAndStrides(t *testing.T) {
	g := New(5, 7, 11, 3)
	if g.SY != 11+6 || g.SX != (7+6)*(11+6) {
		t.Fatalf("strides SX=%d SY=%d", g.SX, g.SY)
	}
	if len(g.Data) != (5+6)*(7+6)*(11+6) {
		t.Fatalf("buffer size %d", len(g.Data))
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, c := range [][4]int{{0, 1, 1, 0}, {1, -1, 1, 0}, {1, 1, 0, 0}, {1, 1, 1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", c)
				}
			}()
			New(c[0], c[1], c[2], c[3])
		}()
	}
}

func TestIdxRoundTrip(t *testing.T) {
	g := New(4, 5, 6, 2)
	seen := map[int]bool{}
	for x := 0; x < 4; x++ {
		for y := 0; y < 5; y++ {
			for z := 0; z < 6; z++ {
				i := g.Idx(x, y, z)
				if seen[i] {
					t.Fatalf("duplicate index %d at (%d,%d,%d)", i, x, y, z)
				}
				seen[i] = true
				g.Set(x, y, z, float32(i))
				if g.At(x, y, z) != float32(i) {
					t.Fatalf("roundtrip failed at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

func TestRowAliasesData(t *testing.T) {
	g := New(3, 3, 8, 1)
	row := g.Row(1, 2)
	if len(row) != 8 {
		t.Fatalf("row length %d", len(row))
	}
	row[5] = 42
	if g.At(1, 2, 5) != 42 {
		t.Fatal("Row does not alias grid storage")
	}
}

func TestFillLeavesHaloZero(t *testing.T) {
	g := New(3, 3, 3, 2)
	g.Fill(7)
	sum := float32(0)
	for _, v := range g.Data {
		sum += v
	}
	if sum != 7*27 {
		t.Fatalf("halo was written: total %g, want %g", sum, float32(7*27))
	}
}

func TestCloneEqualAndDiff(t *testing.T) {
	g := New(4, 4, 4, 1)
	g.FillFunc(func(x, y, z int) float32 { return float32(x*16 + y*4 + z) })
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(2, 3, 1, -99)
	if g.Equal(c) {
		t.Fatal("modified clone still equal")
	}
	d, x, y, z := g.MaxAbsDiff(c)
	if x != 2 || y != 3 || z != 1 {
		t.Fatalf("MaxAbsDiff at (%d,%d,%d)", x, y, z)
	}
	want := math.Abs(float64(g.At(2, 3, 1)) + 99)
	if math.Abs(d-want) > 1e-12 {
		t.Fatalf("diff %g want %g", d, want)
	}
}

func TestStatsHelpers(t *testing.T) {
	g := New(2, 2, 2, 0)
	g.Set(0, 1, 1, -3)
	g.Set(1, 0, 0, 2)
	if g.MaxAbs() != 3 {
		t.Fatalf("MaxAbs %g", g.MaxAbs())
	}
	if g.SumSq() != 13 {
		t.Fatalf("SumSq %g", g.SumSq())
	}
	if g.HasNaN() {
		t.Fatal("unexpected NaN")
	}
	g.Set(0, 0, 0, float32(math.NaN()))
	if !g.HasNaN() {
		t.Fatal("NaN not detected")
	}
	g.Zero()
	if g.MaxAbs() != 0 || g.HasNaN() {
		t.Fatal("Zero did not clear grid")
	}
}

func TestMaxAbsDiffPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	New(2, 2, 2, 0).MaxAbsDiff(New(2, 2, 3, 0))
}

// Property: Idx is injective and lies within bounds for random shapes.
func TestIdxInjectiveProperty(t *testing.T) {
	f := func(nx, ny, nz, h uint8) bool {
		g := New(int(nx%6)+1, int(ny%6)+1, int(nz%6)+1, int(h%4))
		seen := map[int]bool{}
		for x := 0; x < g.Nx; x++ {
			for y := 0; y < g.Ny; y++ {
				for z := 0; z < g.Nz; z++ {
					i := g.Idx(x, y, z)
					if i < 0 || i >= len(g.Data) || seen[i] {
						return false
					}
					seen[i] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
