package grid

import (
	"sync"
	"testing"
)

func TestPoolRecyclesZeroed(t *testing.T) {
	p := NewPool()
	g := p.Get(8, 9, 10, 2)
	if h, m := p.Stats(); h != 0 || m != 1 {
		t.Fatalf("after first Get: hits=%d misses=%d, want 0/1", h, m)
	}
	g.Set(3, 4, 5, 7)
	g.Data[0] = 9 // dirty the halo too
	p.Put(g)
	r := p.Get(8, 9, 10, 2)
	if r != g {
		t.Fatalf("Get did not recycle the Put grid")
	}
	if h, m := p.Stats(); h != 1 || m != 1 {
		t.Fatalf("after recycled Get: hits=%d misses=%d, want 1/1", h, m)
	}
	for i, v := range r.Data {
		if v != 0 {
			t.Fatalf("recycled grid not zeroed at flat index %d: %g", i, v)
		}
	}
}

func TestPoolShapeKeying(t *testing.T) {
	p := NewPool()
	p.Put(New(8, 8, 8, 2))
	// Same interior, different halo: must not be recycled.
	g := p.Get(8, 8, 8, 3)
	if g.H != 3 {
		t.Fatalf("pool returned halo %d, want 3", g.H)
	}
	if h, m := p.Stats(); h != 0 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 0/1", h, m)
	}
}

func TestPoolNilSafe(t *testing.T) {
	var p *Pool
	g := p.Get(4, 4, 4, 1)
	if g == nil || g.Nx != 4 {
		t.Fatalf("nil pool Get returned %v", g)
	}
	p.Put(g)
	if h, m := p.Stats(); h != 0 || m != 0 {
		t.Fatalf("nil pool stats %d/%d, want 0/0", h, m)
	}
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				g := p.Get(6, 6, 6, 2)
				g.Fill(1)
				p.Put(g)
			}
		}()
	}
	wg.Wait()
	h, m := p.Stats()
	if h+m != 8*50 {
		t.Fatalf("hits+misses = %d, want %d", h+m, 8*50)
	}
}

func TestAppendBlocksMatchesSplitBlocks(t *testing.T) {
	r := Region{X0: 1, X1: 30, Y0: 2, Y1: 17}
	want := r.SplitBlocks(8, 4)
	buf := make([]Region, 0, 4)
	got := r.AppendBlocks(buf[:0], 8, 4)
	if len(got) != len(want) {
		t.Fatalf("AppendBlocks len %d, SplitBlocks len %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("block %d: %v != %v", i, got[i], want[i])
		}
	}
}
