package grid

import "testing"

// FuzzRegion drives the region algebra — the foundation every schedule's
// disjointness guarantee rests on — through arbitrary rectangles and block
// shapes, asserting the partition and clamping laws.
func FuzzRegion(f *testing.F) {
	f.Add(0, 16, 0, 16, 4, 4, 12, 12)
	f.Add(-3, 7, 2, 2, 1, 3, 5, 9)
	f.Add(5, 40, -8, 31, 7, 13, 20, 20)
	f.Fuzz(func(t *testing.T, x0, x1, y0, y1, bx, by, nx, ny int) {
		// Bound the universe so the dense cover check stays cheap.
		clampTo := func(v, lo, hi int) int {
			if v < lo {
				return lo
			}
			if v > hi {
				return hi
			}
			return v
		}
		x0, x1 = clampTo(x0, -64, 64), clampTo(x1, -64, 64)
		y0, y1 = clampTo(y0, -64, 64), clampTo(y1, -64, 64)
		bx, by = clampTo(bx, -4, 32), clampTo(by, -4, 32)
		nx, ny = clampTo(nx, 1, 64), clampTo(ny, 1, 64)
		r := Region{X0: x0, X1: x1, Y0: y0, Y1: y1}

		// SplitBlocks must partition r exactly: every point covered once.
		if bx > 0 && by > 0 {
			blocks := r.SplitBlocks(bx, by)
			total := 0
			for _, b := range blocks {
				if b.Empty() {
					t.Fatalf("SplitBlocks(%v, %d, %d) emitted empty block %v", r, bx, by, b)
				}
				if b.X0 < r.X0 || b.X1 > r.X1 || b.Y0 < r.Y0 || b.Y1 > r.Y1 {
					t.Fatalf("block %v escapes region %v", b, r)
				}
				if b.X1-b.X0 > bx || b.Y1-b.Y0 > by {
					t.Fatalf("block %v exceeds requested shape %dx%d", b, bx, by)
				}
				total += b.NumPoints()
			}
			if total != r.NumPoints() {
				t.Fatalf("SplitBlocks(%v, %d, %d): blocks cover %d columns, region has %d",
					r, bx, by, total, r.NumPoints())
			}
			// Pairwise disjoint (point count equality + containment already
			// implies it only if no overlaps; check directly on small sets).
			for i := range blocks {
				for j := i + 1; j < len(blocks); j++ {
					if !blocks[i].Intersect(blocks[j]).Empty() {
						t.Fatalf("blocks %v and %v overlap", blocks[i], blocks[j])
					}
				}
			}
		}

		// Clamp agrees with intersecting the full domain, and is idempotent.
		c := r.Clamp(nx, ny)
		ifull := r.Intersect(FullRegion(nx, ny))
		if c.NumPoints() != ifull.NumPoints() {
			t.Fatalf("Clamp(%v, %d, %d) = %v disagrees with Intersect(full) = %v", r, nx, ny, c, ifull)
		}
		if !c.Empty() && c != ifull {
			t.Fatalf("Clamp(%v, %d, %d) = %v, want %v", r, nx, ny, c, ifull)
		}
		if c2 := c.Clamp(nx, ny); c2 != c {
			t.Fatalf("Clamp not idempotent: %v → %v", c, c2)
		}
		// Clamped region lies inside the domain.
		if !c.Empty() && (c.X0 < 0 || c.X1 > nx || c.Y0 < 0 || c.Y1 > ny) {
			t.Fatalf("Clamp(%v, %d, %d) = %v escapes the domain", r, nx, ny, c)
		}

		// Shift is exactly invertible and preserves the point count.
		sh := r.Shift(bx, by).Shift(-bx, -by)
		if sh != r {
			t.Fatalf("Shift not invertible: %v → %v", r, sh)
		}
	})
}
