package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wavetile/internal/obs"
)

// TestCrashResumeBitwiseIdentical is the headline fault test: a runner is
// killed mid-job (after two checkpoint writes, between time-tile boundaries
// of shot 1), a fresh server over the same checkpoint directory reloads the
// job file, and the completed survey — finished shots replayed from records,
// the interrupted shot restored from its wavefield checkpoint — is bitwise
// identical to a run that was never interrupted.
func TestCrashResumeBitwiseIdentical(t *testing.T) {
	spec := testSpec("acoustic", "wtb", 3)
	want := directRecords(t, spec)
	dir := t.TempDir()

	// Server 1: crash after the 2nd checkpoint write. With 16 steps, a time
	// tile of 4 and a cadence of 2 tiles there is exactly one interior
	// checkpoint per shot (t=8), so the crash lands in shot 1: shot 0 has
	// completed, shot 1 is mid-flight with persisted wavefields.
	reg1 := obs.NewRegistry()
	restore := obs.Swap(reg1)
	s1 := New(Config{
		Runners:               1,
		CheckpointDir:         dir,
		CheckpointEveryTiles:  2,
		CrashAfterCheckpoints: 2,
		Registry:              reg1,
	})
	ts1 := httptest.NewServer(s1.Handler())
	id := submitJob(t, ts1, spec)

	deadline := time.Now().Add(60 * time.Second)
	for {
		if st := s1.job(id).status(); st.State == StateInterrupted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never interrupted; state %q", s1.job(id).status().State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := s1.job(id).status()
	if st.ShotsDone == 0 || st.ShotsDone >= len(spec.Shots) {
		t.Fatalf("crash should land mid-survey; %d/%d shots done", st.ShotsDone, len(spec.Shots))
	}
	if st.Checkpoints == 0 {
		t.Fatal("no checkpoints written before the crash")
	}
	ts1.Close()
	s1.Close()
	restore()
	if _, err := os.Stat(filepath.Join(dir, id+".job")); err != nil {
		t.Fatalf("job file missing after crash: %v", err)
	}

	// Server 2: same directory, no fault injection. Resume re-queues the
	// interrupted job under its original ID.
	s2, ts2, reg2 := newTestServer(t, Config{Runners: 1, CheckpointDir: dir, CheckpointEveryTiles: 2})
	n, err := s2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("resumed %d jobs, want 1", n)
	}

	recs, state := collectResults(t, ts2, id)
	if state != string(StateDone) {
		t.Fatalf("resumed job finished in state %q", state)
	}
	if len(recs) != len(want) {
		t.Fatalf("%d records after resume, want %d", len(recs), len(want))
	}
	seen := map[int]bool{}
	for _, rec := range recs {
		if seen[rec.Shot] {
			t.Fatalf("shot %d streamed twice", rec.Shot)
		}
		seen[rec.Shot] = true
		assertBitwise(t, want[rec.Shot], rec.Receivers, rec.Shot)
	}
	snap := reg2.Snapshot()
	if snap.Counters[MetricJobsResumed] != 1 {
		t.Fatalf("jobs_resumed = %d", snap.Counters[MetricJobsResumed])
	}
	// Clean completion removes the job file.
	if _, err := os.Stat(filepath.Join(dir, id+".job")); !os.IsNotExist(err) {
		t.Fatalf("job file still present after clean completion: %v", err)
	}
	// The resumed run must not have re-executed the completed shot:
	// runs_total counts actual propagations, not skipped replays.
	series := obs.SeriesName("runs_total", "physics", "acoustic", "schedule", "wtb")
	if got := snap.Counters[series]; got != int64(len(spec.Shots)-st.ShotsDone) {
		t.Fatalf("resumed run propagated %d shots, want %d", got, len(spec.Shots)-st.ShotsDone)
	}
}

// TestResumeSkipsCorruptJobFile: a truncated job file must not wedge
// startup — it is skipped and counted.
func TestResumeSkipsCorruptJobFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-000042.job"), []byte("not a job file"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, _, reg := newTestServer(t, Config{Runners: 1, CheckpointDir: dir})
	n, err := srv.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("resumed %d jobs from a corrupt file", n)
	}
	if c := reg.Snapshot().Counters["serve_checkpoint_errors"]; c != 1 {
		t.Fatalf("checkpoint_errors = %d, want 1", c)
	}
}

// TestQueueSaturation429: with one runner held hostage and a queue of one,
// the third submission must be rejected with 429 + Retry-After, and the
// two accepted jobs must still finish once the runner is released.
func TestQueueSaturation429(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	srv, ts, reg := newTestServer(t, Config{
		Runners:  1,
		QueueCap: 1,
		BeforeJob: func(j *Job) {
			started <- j.ID
			<-release
		},
	})

	spec := func() *JobSpec { return testSpec("acoustic", "spatial", 1) }
	idA := submitJob(t, ts, spec())
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("runner never picked up job A")
	}
	idB := submitJob(t, ts, spec()) // fills the single queue slot

	body, _ := json.Marshal(spec())
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if c := reg.Snapshot().Counters[MetricAdmissionRejected]; c != 1 {
		t.Fatalf("admission_rejected = %d, want 1", c)
	}

	close(release)
	for _, id := range []string{idA, idB} {
		if st := waitTerminal(t, srv, id, 60*time.Second); st.State != StateDone {
			t.Fatalf("job %s finished in state %q", id, st.State)
		}
	}
}

// TestCancelRunningJob: DELETE on a running job terminates it promptly,
// the stream trailer reports cancelled, and the wavefield pool stays
// balanced (no leaked grids from the aborted lanes). The BeforeJob hook
// holds the runner until the cancel has been issued, so the cancellation
// deterministically races ahead of the survey instead of losing a footrace
// to a sub-millisecond job.
func TestCancelRunningJob(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	srv, ts, reg := newTestServer(t, Config{
		Runners: 1,
		BeforeJob: func(j *Job) {
			started <- j.ID
			<-release
		},
	})

	id := submitJob(t, ts, testSpec("acoustic", "wtb", 8))
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("runner never started the job")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	close(release)

	if st := waitTerminal(t, srv, id, 60*time.Second); st.State != StateCancelled {
		t.Fatalf("state %q after cancel, want cancelled", st.State)
	}
	if _, state, err := readResults(ts, id); err != nil {
		t.Fatal(err)
	} else if state != string(StateCancelled) {
		t.Fatalf("stream trailer state %q, want cancelled", state)
	}

	snap := reg.Snapshot()
	if c := snap.Counters[MetricJobsCancelled]; c != 1 {
		t.Fatalf("jobs_cancelled = %d, want 1", c)
	}
	if leaks := snap.Counters["serve_pool_leaks"]; leaks != 0 {
		t.Fatalf("pooled grids leaked on cancel: %d", leaks)
	}
	if active := snap.Gauges[MetricJobsActive]; active != 0 {
		t.Fatalf("jobs_active gauge %d after cancel", active)
	}
}

// TestCancelQueuedJob: a job cancelled while still queued never runs.
func TestCancelQueuedJob(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	srv, ts, _ := newTestServer(t, Config{
		Runners:  1,
		QueueCap: 4,
		BeforeJob: func(j *Job) {
			started <- j.ID
			<-release
		},
	})
	defer close(release)

	idA := submitJob(t, ts, testSpec("acoustic", "spatial", 1))
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("runner never picked up job A")
	}
	idB := submitJob(t, ts, testSpec("acoustic", "spatial", 1))

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+idB, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("queued cancel: status %d, want 200", resp.StatusCode)
	}
	if st := srv.job(idB).status(); st.State != StateCancelled {
		t.Fatalf("queued job state %q after cancel", st.State)
	}
	// Job B must never reach a runner.
	select {
	case got := <-started:
		if got == idB {
			t.Fatal("cancelled queued job was dispatched anyway")
		}
	default:
	}
	_ = idA
}
