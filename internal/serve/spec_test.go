package serve

import (
	"errors"
	"strings"
	"testing"

	"wavetile/wavesim"
)

func mustDecode(t *testing.T, body string) *JobSpec {
	t.Helper()
	spec, err := DecodeJobSpec(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestDecodeJobSpecRejections(t *testing.T) {
	cases := []struct{ name, body string }{
		{"empty", ""},
		{"not json", "]]]"},
		{"wrong type", `{"steps": "ten"}`},
		{"unknown field", `{"stepz": 10}`},
		{"trailing data", `{"steps": 10} {"steps": 11}`},
		{"truncated", `{"steps": 10`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeJobSpec(strings.NewReader(tc.body))
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("got %v, want a *SpecError", err)
			}
		})
	}
}

func TestDecodeJobSpecBodyCap(t *testing.T) {
	// A body larger than maxSpecBytes is truncated by the limit reader and
	// must fail as a typed spec error, not hang or allocate unboundedly.
	huge := `{"name": "` + strings.Repeat("x", maxSpecBytes) + `"}`
	_, err := DecodeJobSpec(strings.NewReader(huge))
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("oversized body: got %v, want a *SpecError", err)
	}
}

// TestBuildRejections drives Build through every validation branch and
// asserts the error is typed and names the offending field.
func TestBuildRejections(t *testing.T) {
	valid := func() *JobSpec { return testSpec("acoustic", "wtb", 1) }
	cases := []struct {
		name   string
		mutate func(*JobSpec)
		field  string
	}{
		{"bad physics", func(s *JobSpec) { s.Physics = "quantum" }, "physics"},
		{"odd order", func(s *JobSpec) { s.SpaceOrder = 3 }, "space_order"},
		{"order over limit", func(s *JobSpec) { s.SpaceOrder = 64 }, "space_order"},
		{"shape too small", func(s *JobSpec) { s.Shape = [3]int{4, 36, 36} }, "shape"},
		{"zero shape", func(s *JobSpec) { s.Shape = [3]int{0, 0, 0} }, "shape"},
		{"points budget", func(s *JobSpec) { s.Shape = [3]int{2048, 2048, 2048} }, "shape"},
		{"negative nbl", func(s *JobSpec) { s.NBL = -1 }, "nbl"},
		{"zero spacing", func(s *JobSpec) { s.Spacing = [3]float64{0, 10, 10} }, "spacing"},
		{"nan spacing", func(s *JobSpec) { s.Spacing[2] = nan() }, "spacing"},
		{"zero steps", func(s *JobSpec) { s.Steps = 0 }, "steps"},
		{"steps over limit", func(s *JobSpec) { s.Steps = 1 << 30 }, "steps"},
		{"inf f0", func(s *JobSpec) { s.SourceF0 = inf() }, "source_f0"},
		{"no shots", func(s *JobSpec) { s.Shots = nil }, "shots"},
		{"no sources", func(s *JobSpec) { s.Shots = []ShotSpec{{}} }, "shots[0].sources"},
		{"nan source", func(s *JobSpec) { s.Shots[0].Sources[0][1] = nan() }, "shots[0].sources"},
		{"nan receiver", func(s *JobSpec) { s.Receivers[2][0] = nan() }, "receivers"},
		{"bad concurrency", func(s *JobSpec) { s.Concurrency = -1 }, "concurrency"},
		{"bad model kind", func(s *JobSpec) { s.Model.Kind = "salt dome" }, "model.kind"},
		{"zero velocity", func(s *JobSpec) { s.Model = ModelSpec{Kind: "homogeneous", V: 0} }, "model.v"},
		{"nan layer", func(s *JobSpec) { s.Model.Values[1] = nan() }, "model.values"},
		{"no zmax", func(s *JobSpec) { s.Model.ZMax = 0 }, "model.zmax"},
		{"bad schedule kind", func(s *JobSpec) { s.Schedule.Kind = "diamond" }, "schedule.kind"},
		{"time tile range", func(s *JobSpec) { s.Schedule.TimeTile = 1000 }, "schedule.time_tile"},
		{"tile extents", func(s *JobSpec) { s.Schedule.TileX = 1 << 20 }, "schedule"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := valid()
			tc.mutate(spec)
			_, err := spec.Build(Limits{})
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("got %v, want a *SpecError", err)
			}
			if se.Field != tc.field {
				t.Fatalf("error names field %q, want %q (%v)", se.Field, tc.field, se)
			}
		})
	}
}

func nan() float64 { return nanVal }
func inf() float64 { return infVal }

// Non-constant NaN/Inf so the literals above stay legal Go (a constant
// expression may not overflow).
var (
	nanVal = func() float64 { z := 0.0; return z / z }()
	infVal = func() float64 { z := 0.0; return 1 / z }()
)

// TestBuildValid lowers a good spec and checks the wavesim values.
func TestBuildValid(t *testing.T) {
	spec := testSpec("elastic", "wtb-pipelined", 2)
	built, err := spec.Build(Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if built.Base.Steps != 16 || built.Base.SpaceOrder != 4 || built.Base.NBL != 4 {
		t.Fatalf("base = %+v", built.Base)
	}
	if len(built.Shots) != 2 || len(built.Shots[0].Sources) != 3 {
		t.Fatalf("shots lowered wrong: %+v", built.Shots)
	}
	if len(built.Base.Receivers) != 6 {
		t.Fatalf("%d receivers", len(built.Base.Receivers))
	}
	if _, ok := built.Sched.(wavesim.WTBPipelined); !ok {
		t.Fatalf("schedule lowered to %T, want WTBPipelined", built.Sched)
	}
}

// TestNewSurveyMapsGeometryErrorsToSpecError: a structurally fine spec that
// wavesim rejects (source placed outside the model) must still surface as a
// typed 400, since the fault lies in the spec.
func TestNewSurveyMapsGeometryErrorsToSpecError(t *testing.T) {
	spec := testSpec("acoustic", "wtb", 1)
	spec.Shots[0].Sources[0] = [3]float64{1e9, 150.7, 110.1}
	built, err := spec.Build(Limits{})
	if err != nil {
		t.Fatalf("Build should pass structural checks: %v", err)
	}
	_, _, err = built.NewSurvey()
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want a *SpecError", err)
	}
}

// TestNewSurveyDefaultsTiles: unset WTB knobs come back legal for the
// propagator (tile extents at least the dependency margin).
func TestNewSurveyDefaultsTiles(t *testing.T) {
	spec := testSpec("acoustic", "wtb", 1)
	spec.Schedule = ScheduleSpec{Kind: "wtb"} // everything defaulted
	built, err := spec.Build(Limits{})
	if err != nil {
		t.Fatal(err)
	}
	sv, sched, err := built.NewSurvey()
	if err != nil {
		t.Fatal(err)
	}
	wtb, ok := sched.(wavesim.WTB)
	if !ok {
		t.Fatalf("schedule type %T", sched)
	}
	if wtb.TimeTile == 0 || wtb.TileX < sv.MinTile() || wtb.TileY < sv.MinTile() {
		t.Fatalf("defaulted schedule still degenerate: %+v (min tile %d)", wtb, sv.MinTile())
	}
}
