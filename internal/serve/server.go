package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"wavetile/internal/obs"
)

// Metric names the service adds to the shared /metrics exposition.
const (
	MetricQueueDepth        = "serve_queue_depth"        // gauge: jobs waiting
	MetricJobsActive        = "serve_jobs_active"        // gauge: jobs running
	MetricAdmissionRejected = "serve_admission_rejected" // counter: 429s
	MetricJobsDone          = "serve_jobs_done"
	MetricJobsFailed        = "serve_jobs_failed"
	MetricJobsCancelled     = "serve_jobs_cancelled"
	MetricJobsInterrupted   = "serve_jobs_interrupted" // crash-injected exits
	MetricJobsResumed       = "serve_jobs_resumed"     // jobs reloaded from disk
	MetricCheckpointWrites  = "serve_checkpoint_writes"
	MetricCheckpointBytes   = "serve_checkpoint_bytes"
)

// Config sizes the service.
type Config struct {
	// QueueCap bounds admission (default 16): a full queue answers 429
	// with a Retry-After estimated from recent job durations.
	QueueCap int
	// Runners is the number of concurrent job executors (default 1).
	Runners int
	// Limits bound what one job may request (zero fields take defaults).
	Limits Limits
	// CheckpointDir, when set, persists running jobs (spec, finished shot
	// records, mid-flight checkpoints) so a crashed process resumes them
	// via Resume. Empty disables persistence.
	CheckpointDir string
	// CheckpointEveryTiles is the periodic checkpoint cadence in time
	// tiles (default 2 when CheckpointDir is set, else 0).
	CheckpointEveryTiles int
	// Registry receives the serve_* metrics (default obs.Active()).
	Registry *obs.Registry

	// BeforeJob, when non-nil, runs in the runner goroutine just before a
	// job executes. Fault-injection tests use it to hold runners hostage
	// (queue saturation) or to synchronize with a canceller.
	BeforeJob func(j *Job)
	// CrashAfterCheckpoints > 0 makes a runner abandon its job — no
	// cleanup, job file left on disk — after that many checkpoint writes,
	// simulating an eviction mid-flight for the resume fault tests.
	CrashAfterCheckpoints int
}

// Server is the simulation service. Create with New, mount Handler, stop
// with Drain or Close.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	queue *jobQueue

	mu   sync.Mutex
	jobs map[string]*Job

	nextID   atomic.Int64
	draining atomic.Bool
	ewmaNS   atomic.Int64 // smoothed job duration, for Retry-After
	wg       sync.WaitGroup
}

// New starts cfg.Runners runner goroutines and returns the service.
func New(cfg Config) *Server {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.Runners <= 0 {
		cfg.Runners = 1
	}
	if cfg.CheckpointDir != "" && cfg.CheckpointEveryTiles == 0 {
		cfg.CheckpointEveryTiles = 2
	}
	cfg.Limits = cfg.Limits.withDefaults()
	s := &Server{cfg: cfg, reg: cfg.Registry, queue: newJobQueue(cfg.QueueCap), jobs: map[string]*Job{}}
	if s.reg == nil {
		s.reg = obs.Active()
	}
	for i := 0; i < cfg.Runners; i++ {
		s.wg.Add(1)
		go s.runnerLoop()
	}
	return s
}

func (s *Server) count(name string, n int64) {
	if s.reg != nil {
		s.reg.Counter(name).Add(n)
	}
}

func (s *Server) gaugeAdd(name string, n int64) {
	if s.reg != nil {
		s.reg.Gauge(name).Add(n)
	}
}

func (s *Server) noteQueueDepth() {
	if s.reg != nil {
		s.reg.Gauge(MetricQueueDepth).Set(int64(s.queue.depth()))
	}
}

// Handler mounts the job API next to the obs debug/telemetry routes, so
// one mux (and one scrape of /metrics) covers schedules and service:
//
//	POST   /v1/jobs              submit (202 {id}, 400 typed spec error,
//	                             429 + Retry-After at capacity, 503 draining)
//	GET    /v1/jobs/{id}         status JSON
//	GET    /v1/jobs/{id}/results NDJSON stream: one ShotRecord per line as
//	                             shots finish, then a {"done":true,...} trailer
//	DELETE /v1/jobs/{id}         cancel (dequeue, or stop a running job)
func (s *Server) Handler() http.Handler {
	mux := obs.DebugMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining"})
		return
	}
	spec, err := DecodeJobSpec(r.Body)
	if err == nil {
		// Full validation — structural limits, then wavesim's own geometry
		// checks — before the job is allowed near the queue.
		var built *BuiltJob
		if built, err = spec.Build(s.cfg.Limits); err == nil {
			_, _, err = built.NewSurvey()
		}
	}
	if err != nil {
		var se *SpecError
		if errors.As(err, &se) {
			writeJSON(w, http.StatusBadRequest, se)
		} else {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		}
		return
	}

	j := newJob(fmt.Sprintf("job-%06d", s.nextID.Add(1)), spec)
	if err := s.queue.push(j, false); err != nil {
		s.count(MetricAdmissionRejected, 1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "queue full"})
		return
	}
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.mu.Unlock()
	s.noteQueueDepth()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.ID})
}

// retryAfterSeconds estimates when a queue slot frees up: the smoothed
// job duration times the jobs ahead per runner. Before any job has
// finished it falls back to a flat 5 seconds.
func (s *Server) retryAfterSeconds() int {
	ewma := s.ewmaNS.Load()
	if ewma <= 0 {
		return 5
	}
	ahead := s.queue.depth() + 1
	secs := int(time.Duration(ewma).Seconds()*float64(ahead)/float64(s.cfg.Runners)) + 1
	return min(max(secs, 1), 3600)
}

func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// A streamer blocked waiting for the next shot must notice the client
	// going away; the watcher turns request-context cancellation into a
	// cond broadcast.
	ctx := r.Context()
	watcherDone := make(chan struct{})
	defer func() { <-watcherDone }()
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	go func() {
		defer close(watcherDone)
		<-watchCtx.Done()
		j.wake()
	}()

	st := j.stream(func(rec ShotRecord) bool {
		if err := enc.Encode(rec); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}, func() bool { return ctx.Err() == nil })
	if ctx.Err() != nil {
		return
	}
	final := j.status()
	_ = enc.Encode(map[string]any{"done": true, "state": st, "error": final.Error})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	if s.queue.remove(j.ID) {
		// Never started: cancel is immediate.
		j.setState(StateCancelled, nil)
		s.count(MetricJobsCancelled, 1)
		s.noteQueueDepth()
		s.removeJobFile(j)
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel() // runner maps the context error to StateCancelled
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// Jobs snapshots the known jobs' statuses (tests and tooling).
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.status())
	}
	return out
}

// Drain stops admission (503), lets queued and running jobs finish, and
// waits for the runners. If ctx expires first, running jobs are cancelled
// and the wait resumes until the runners exit.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.close()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelRunning()
		<-done
		return ctx.Err()
	}
}

// Close cancels everything and waits for the runners.
func (s *Server) Close() {
	s.draining.Store(true)
	s.queue.close()
	s.cancelRunning()
	s.wg.Wait()
}

func (s *Server) cancelRunning() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
}
