package serve

import (
	"context"
	"sync"

	"wavetile/wavesim"
)

// JobState is the lifecycle of a job. queued → running → one of the
// terminal states; interrupted is the crash-recovery state a persisted
// checkpoint reloads into before Resume re-queues it.
type JobState string

const (
	StateQueued      JobState = "queued"
	StateRunning     JobState = "running"
	StateDone        JobState = "done"
	StateFailed      JobState = "failed"
	StateCancelled   JobState = "cancelled"
	StateInterrupted JobState = "interrupted"
)

func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// ShotRecord is one shot's streamed result. Receiver samples are float32
// and Go marshals them with the shortest representation that round-trips
// the 32-bit value, so the NDJSON stream preserves records bitwise — the
// property the end-to-end oracle test leans on.
type ShotRecord struct {
	Shot          int         `json:"shot"`
	ElapsedNS     int64       `json:"elapsed_ns"`
	GPointsPerSec float64     `json:"gpoints_per_sec"`
	Receivers     [][]float32 `json:"receivers"`
}

// JobStatus is the GET /v1/jobs/{id} body.
type JobStatus struct {
	ID          string   `json:"id"`
	Name        string   `json:"name,omitempty"`
	State       JobState `json:"state"`
	Priority    int      `json:"priority"`
	ShotsTotal  int      `json:"shots_total"`
	ShotsDone   int      `json:"shots_done"`
	Checkpoints int      `json:"checkpoints"` // checkpoint writes so far
	Error       string   `json:"error,omitempty"`
}

// Job is one submitted survey. Its mutable state is guarded by mu; cond
// broadcasts on every record append and state change so result streamers
// wake without polling.
type Job struct {
	ID       string
	Name     string
	Priority int
	Spec     *JobSpec

	mu    sync.Mutex
	cond  *sync.Cond
	state JobState
	errS  string

	records   []ShotRecord // completion order
	completed map[int]bool // shot → finished (survives crash via the job file)
	ckpts     map[int]*wavesim.ShotCheckpoint
	ckptCount int

	cancel context.CancelFunc // set while running

	persistMu sync.Mutex // serializes job-file writes
}

func newJob(id string, spec *JobSpec) *Job {
	j := &Job{
		ID:        id,
		Name:      spec.Name,
		Priority:  spec.Priority,
		Spec:      spec,
		state:     StateQueued,
		completed: map[int]bool{},
		ckpts:     map[int]*wavesim.ShotCheckpoint{},
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// setState transitions the job, recording err on failure, and wakes
// streamers. Terminal states are sticky: a cancel racing normal completion
// keeps whichever state landed first.
func (j *Job) setState(s JobState, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.state = s
	if err != nil {
		j.errS = err.Error()
	}
	j.cond.Broadcast()
}

// appendRecord adds a completed shot's result and wakes streamers.
func (j *Job) appendRecord(rec ShotRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.records = append(j.records, rec)
	j.completed[rec.Shot] = true
	j.cond.Broadcast()
}

// noteCheckpoint stores a mid-flight checkpoint for resume.
func (j *Job) noteCheckpoint(ck *wavesim.ShotCheckpoint) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.ckpts[ck.Shot] = ck
	j.ckptCount++
}

// status snapshots the job for the status endpoint.
func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:          j.ID,
		Name:        j.Name,
		State:       j.state,
		Priority:    j.Priority,
		ShotsTotal:  len(j.Spec.Shots),
		ShotsDone:   len(j.records),
		Checkpoints: j.ckptCount,
		Error:       j.errS,
	}
}

// resumeState snapshots what a restarted run must skip and restore.
func (j *Job) resumeState() (completed map[int]bool, ckpts map[int]*wavesim.ShotCheckpoint) {
	j.mu.Lock()
	defer j.mu.Unlock()
	completed = make(map[int]bool, len(j.completed))
	for s := range j.completed {
		completed[s] = true
	}
	ckpts = make(map[int]*wavesim.ShotCheckpoint, len(j.ckpts))
	for s, ck := range j.ckpts {
		if !completed[s] {
			ckpts[s] = ck
		}
	}
	return completed, ckpts
}

// stream invokes emit for every record in completion order, blocking for
// new ones until the job reaches a terminal state or wait returns false
// (the client went away). It returns the job's final state once all
// records emitted so far have been delivered.
func (j *Job) stream(emit func(ShotRecord) bool, wait func() bool) JobState {
	next := 0
	for {
		j.mu.Lock()
		for next >= len(j.records) && !j.state.terminal() {
			j.cond.Wait()
			if !wait() {
				st := j.state
				j.mu.Unlock()
				return st
			}
		}
		var rec ShotRecord
		have := next < len(j.records)
		if have {
			rec = j.records[next]
			next++
		}
		st := j.state
		j.mu.Unlock()
		if have {
			if !emit(rec) {
				return st
			}
			continue
		}
		return st
	}
}

// wake prods any streamer blocked in stream's cond.Wait — used to notice
// request-context cancellation promptly.
func (j *Job) wake() {
	j.mu.Lock()
	j.cond.Broadcast()
	j.mu.Unlock()
}
