package serve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"wavetile/wavesim"
)

// Job persistence: one file per running job under Config.CheckpointDir.
//
// Layout of <id>.job:
//
//	line 1  JSON header: id, name, priority, the full job spec, and every
//	        finished shot's record (receiver rows included)
//	u32     number of mid-flight shot checkpoints
//	blobs   each a wavesim.ShotCheckpoint in its binary codec (which wraps
//	        the verify snapshot format, CRC-protected)
//
// Files are written to a temp name and renamed into place, so a crash
// mid-write leaves the previous consistent file. Receiver floats round-trip
// the JSON header bitwise (shortest-repr float32 marshalling), and the
// checkpoint blobs are raw IEEE bits, so a resumed job continues from
// state indistinguishable from the crashed run's.

const jobFileVersion = 1

type jobFileHeader struct {
	Version  int          `json:"version"`
	ID       string       `json:"id"`
	Name     string       `json:"name,omitempty"`
	Priority int          `json:"priority"`
	Spec     *JobSpec     `json:"spec"`
	Records  []ShotRecord `json:"records"`
}

// fileSnapshot captures the job's persistable state under its lock.
func (j *Job) fileSnapshot() (jobFileHeader, []*wavesim.ShotCheckpoint) {
	j.mu.Lock()
	defer j.mu.Unlock()
	hdr := jobFileHeader{
		Version:  jobFileVersion,
		ID:       j.ID,
		Name:     j.Name,
		Priority: j.Priority,
		Spec:     j.Spec,
		Records:  append([]ShotRecord(nil), j.records...),
	}
	cks := make([]*wavesim.ShotCheckpoint, 0, len(j.ckpts))
	for shot, ck := range j.ckpts {
		if !j.completed[shot] {
			cks = append(cks, ck)
		}
	}
	sort.Slice(cks, func(a, b int) bool { return cks[a].Shot < cks[b].Shot })
	return hdr, cks
}

func (s *Server) jobFilePath(id string) string {
	return filepath.Join(s.cfg.CheckpointDir, id+".job")
}

// persistJob writes the job's current state atomically. Serialized per
// job (concurrent lanes may checkpoint simultaneously); errors are
// recorded as a counter rather than failing the run — losing a checkpoint
// only costs resume granularity, never correctness.
func (s *Server) persistJob(j *Job) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	j.persistMu.Lock()
	defer j.persistMu.Unlock()
	n, err := s.writeJobFile(j)
	if err != nil {
		s.count("serve_checkpoint_errors", 1)
		return
	}
	s.count(MetricCheckpointWrites, 1)
	s.count(MetricCheckpointBytes, n)
}

func (s *Server) writeJobFile(j *Job) (int64, error) {
	hdr, cks := j.fileSnapshot()
	path := s.jobFilePath(j.ID)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	ok := false
	defer func() {
		if !ok {
			f.Close()
			os.Remove(tmp)
		}
	}()
	hb, err := json.Marshal(hdr)
	if err != nil {
		return 0, err
	}
	if _, err := w.Write(append(hb, '\n')); err != nil {
		return 0, err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(cks))); err != nil {
		return 0, err
	}
	for _, ck := range cks {
		if err := ck.Encode(w); err != nil {
			return 0, err
		}
	}
	if err := w.Flush(); err != nil {
		return 0, err
	}
	size, _ := f.Seek(0, io.SeekCurrent)
	if err := f.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	ok = true
	return size, nil
}

// removeJobFile deletes the persisted state once a job reaches a clean
// terminal state.
func (s *Server) removeJobFile(j *Job) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	j.persistMu.Lock()
	defer j.persistMu.Unlock()
	os.Remove(s.jobFilePath(j.ID))
}

// loadJobFile reconstructs a job from its persisted state.
func loadJobFile(path string) (*Job, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("serve: %s: header: %w", path, err)
	}
	var hdr jobFileHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return nil, fmt.Errorf("serve: %s: header: %w", path, err)
	}
	if hdr.Version != jobFileVersion || hdr.Spec == nil || hdr.ID == "" {
		return nil, fmt.Errorf("serve: %s: unsupported or incomplete job file", path)
	}
	var nck uint32
	if err := binary.Read(r, binary.LittleEndian, &nck); err != nil {
		return nil, fmt.Errorf("serve: %s: checkpoint count: %w", path, err)
	}
	if nck > 1<<16 {
		return nil, fmt.Errorf("serve: %s: implausible checkpoint count %d", path, nck)
	}
	j := newJob(hdr.ID, hdr.Spec)
	j.Name = hdr.Name
	j.Priority = hdr.Priority
	j.records = hdr.Records
	for _, rec := range hdr.Records {
		j.completed[rec.Shot] = true
	}
	for i := uint32(0); i < nck; i++ {
		ck, err := wavesim.DecodeShotCheckpoint(r)
		if err != nil {
			return nil, fmt.Errorf("serve: %s: checkpoint %d: %w", path, i, err)
		}
		j.ckpts[ck.Shot] = ck
	}
	return j, nil
}

// Resume reloads every persisted job from CheckpointDir and re-queues it:
// finished shots replay from their records, mid-flight shots restore from
// their checkpoints, and the completed survey is bitwise identical to one
// that was never interrupted. Corrupt files are skipped (counted on
// serve_checkpoint_errors) rather than wedging startup. Returns the number
// of jobs re-queued.
func (s *Server) Resume() (int, error) {
	if s.cfg.CheckpointDir == "" {
		return 0, nil
	}
	paths, err := filepath.Glob(filepath.Join(s.cfg.CheckpointDir, "*.job"))
	if err != nil {
		return 0, err
	}
	sort.Strings(paths)
	n := 0
	for _, path := range paths {
		j, err := loadJobFile(path)
		if err != nil {
			s.count("serve_checkpoint_errors", 1)
			continue
		}
		// Keep fresh submissions from colliding with reloaded IDs.
		var seq int64
		if _, err := fmt.Sscanf(j.ID, "job-%d", &seq); err == nil {
			for {
				cur := s.nextID.Load()
				if cur >= seq || s.nextID.CompareAndSwap(cur, seq) {
					break
				}
			}
		}
		s.mu.Lock()
		s.jobs[j.ID] = j
		s.mu.Unlock()
		if err := s.queue.push(j, true); err != nil {
			return n, err
		}
		s.count(MetricJobsResumed, 1)
		n++
	}
	s.noteQueueDepth()
	return n, nil
}
