package serve

import (
	"container/heap"
	"errors"
	"sync"
)

// ErrQueueFull is returned by push when the queue is at capacity — the
// admission handler maps it to 429 + Retry-After.
var ErrQueueFull = errors.New("serve: job queue full")

// errQueueClosed is returned by pop once the queue is closed and drained.
var errQueueClosed = errors.New("serve: job queue closed")

// jobQueue is a bounded priority queue: higher Priority pops first, FIFO
// within a priority level (heap ordered by sequence number). All methods
// are safe for concurrent use; pop blocks until a job or close.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   queueHeap
	cap    int
	seq    uint64
	closed bool
}

type queueItem struct {
	job *Job
	seq uint64
}

func newJobQueue(capacity int) *jobQueue {
	q := &jobQueue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues j, refusing at capacity. force bypasses the bound — used
// when reloading persisted jobs at startup, which must never be dropped
// by an admission race.
func (q *jobQueue) push(j *Job, force bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueClosed
	}
	if !force && q.heap.Len() >= q.cap {
		return ErrQueueFull
	}
	q.seq++
	heap.Push(&q.heap, queueItem{job: j, seq: q.seq})
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available (highest priority first) or the
// queue is closed and empty.
func (q *jobQueue) pop() (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.heap.Len() == 0 {
		if q.closed {
			return nil, errQueueClosed
		}
		q.cond.Wait()
	}
	return heap.Pop(&q.heap).(queueItem).job, nil
}

// remove deletes the queued job with the given id, reporting whether it
// was present (false means it already started running, finished, or never
// existed).
func (q *jobQueue) remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, it := range q.heap {
		if it.job.ID == id {
			heap.Remove(&q.heap, i)
			return true
		}
	}
	return false
}

// depth reports the number of queued jobs.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.heap.Len()
}

// close marks the queue closed: pending jobs still pop (graceful drain),
// new pushes fail, and blocked pops return once empty.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// queueHeap orders by priority descending, then sequence ascending.
type queueHeap []queueItem

func (h queueHeap) Len() int { return len(h) }
func (h queueHeap) Less(i, j int) bool {
	if h[i].job.Priority != h[j].job.Priority {
		return h[i].job.Priority > h[j].job.Priority
	}
	return h[i].seq < h[j].seq
}
func (h queueHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *queueHeap) Push(x any)   { *h = append(*h, x.(queueItem)) }
func (h *queueHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = queueItem{}
	*h = old[:n-1]
	return it
}
