// Package serve is the simulation service: a stdlib-net/http front end
// over wavesim surveys with a bounded priority queue, a runner pool that
// executes jobs through the batch engine, streamed NDJSON results, and
// checkpoint/resume through the verify snapshot codec. Every accepted job
// produces receiver records bitwise identical to a direct wavesim.RunSurvey
// of the same spec — interrupted-and-resumed or not — which the end-to-end
// oracle and fault-injection tests in this package assert.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"wavetile/wavesim"
)

// SpecError is a client-side validation failure: the job spec, not the
// service, is wrong. Handlers map it to a typed 400.
type SpecError struct {
	Field string `json:"field"` // JSON path of the offending field
	Msg   string `json:"msg"`
}

func (e *SpecError) Error() string { return fmt.Sprintf("spec: %s: %s", e.Field, e.Msg) }

func specErrf(field, format string, args ...any) *SpecError {
	return &SpecError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Limits bound what a single job may ask for, enforced *before* any grid
// or time axis is allocated so a hostile spec cannot OOM the service by
// being admitted. Zero values take the listed defaults.
type Limits struct {
	MaxPoints    int64 // grid points incl. boundary layers (default 64M)
	MaxSteps     int   // timesteps (default 10k)
	MaxShots     int   // shots per job (default 256)
	MaxSources   int   // sources per shot (default 1024)
	MaxReceivers int   // receivers (default 4096)
	MaxOrder     int   // space order (default 16)
}

func (l Limits) withDefaults() Limits {
	if l.MaxPoints == 0 {
		l.MaxPoints = 64 << 20
	}
	if l.MaxSteps == 0 {
		l.MaxSteps = 10000
	}
	if l.MaxShots == 0 {
		l.MaxShots = 256
	}
	if l.MaxSources == 0 {
		l.MaxSources = 1024
	}
	if l.MaxReceivers == 0 {
		l.MaxReceivers = 4096
	}
	if l.MaxOrder == 0 {
		l.MaxOrder = 16
	}
	return l
}

// ModelSpec selects one of the earth-model presets. Arbitrary field
// functions cannot cross a JSON boundary; the presets cover the paper's
// test models.
type ModelSpec struct {
	Kind string `json:"kind"` // "homogeneous" | "layered" | "gradient"
	// Homogeneous: V. Gradient: V0, V1, ZMax. Layered: Values, ZMax.
	V      float64   `json:"v,omitempty"`
	V0     float64   `json:"v0,omitempty"`
	V1     float64   `json:"v1,omitempty"`
	ZMax   float64   `json:"zmax,omitempty"`
	Values []float64 `json:"values,omitempty"`
}

// ScheduleSpec selects the execution schedule.
type ScheduleSpec struct {
	Kind     string `json:"kind"` // "spatial" | "wtb" | "wtb-pipelined"
	TimeTile int    `json:"time_tile,omitempty"`
	TileX    int    `json:"tile_x,omitempty"`
	TileY    int    `json:"tile_y,omitempty"`
	BlockX   int    `json:"block_x,omitempty"`
	BlockY   int    `json:"block_y,omitempty"`
}

// ShotSpec is one source configuration.
type ShotSpec struct {
	Sources [][3]float64 `json:"sources"`
}

// JobSpec is the wire format of POST /v1/jobs.
type JobSpec struct {
	Name     string `json:"name,omitempty"`
	Priority int    `json:"priority,omitempty"` // higher runs first

	Physics    string     `json:"physics"`
	SpaceOrder int        `json:"space_order"`
	Shape      [3]int     `json:"shape"`
	Spacing    [3]float64 `json:"spacing"`
	NBL        int        `json:"nbl,omitempty"`
	Steps      int        `json:"steps"`

	Model ModelSpec `json:"model"`

	SourceF0    float64 `json:"source_f0,omitempty"`
	SourceAmp   float64 `json:"source_amp,omitempty"`
	SincSources bool    `json:"sinc_sources,omitempty"`

	Shots     []ShotSpec   `json:"shots"`
	Receivers [][3]float64 `json:"receivers"`

	Schedule    ScheduleSpec `json:"schedule"`
	Concurrency int          `json:"concurrency,omitempty"` // shot lanes (0 = 1)
}

// maxSpecBytes bounds the request body; a job spec is coordinates and
// scalars, so a megabyte is already generous.
const maxSpecBytes = 1 << 20

// DecodeJobSpec parses a job spec from r, rejecting unknown fields and
// trailing garbage. All decode failures come back as *SpecError — the
// decoder is fuzzed on the promise that arbitrary bytes either parse or
// produce a typed error, never a panic.
func DecodeJobSpec(r io.Reader) (*JobSpec, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxSpecBytes))
	dec.DisallowUnknownFields()
	spec := &JobSpec{}
	if err := dec.Decode(spec); err != nil {
		return nil, specErrf("(body)", "invalid JSON: %v", err)
	}
	if dec.More() {
		return nil, specErrf("(body)", "trailing data after the job object")
	}
	return spec, nil
}

// BuiltJob is a validated spec lowered to wavesim values, ready to run.
type BuiltJob struct {
	Spec  *JobSpec
	Base  wavesim.Options
	Shots []wavesim.Shot
	Sched wavesim.Schedule
}

func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func (m ModelSpec) build() (wavesim.FieldFunc, error) {
	switch m.Kind {
	case "homogeneous":
		if !finite(m.V) || m.V <= 0 {
			return nil, specErrf("model.v", "velocity %g must be positive and finite", m.V)
		}
		return wavesim.Homogeneous(m.V), nil
	case "gradient":
		if !finite(m.V0, m.V1, m.ZMax) || m.V0 <= 0 || m.V1 <= 0 || m.ZMax <= 0 {
			return nil, specErrf("model", "gradient needs positive finite v0, v1, zmax")
		}
		return wavesim.Gradient(m.V0, m.V1, m.ZMax), nil
	case "layered":
		if len(m.Values) == 0 || len(m.Values) > 1024 {
			return nil, specErrf("model.values", "layered needs 1..1024 velocities, got %d", len(m.Values))
		}
		for i, v := range m.Values {
			if !finite(v) || v <= 0 {
				return nil, specErrf("model.values", "layer %d velocity %g must be positive and finite", i, v)
			}
		}
		if !finite(m.ZMax) || m.ZMax <= 0 {
			return nil, specErrf("model.zmax", "layered needs a positive finite zmax, got %g", m.ZMax)
		}
		return wavesim.Layered(m.ZMax, m.Values...), nil
	default:
		return nil, specErrf("model.kind", "unknown model kind %q", m.Kind)
	}
}

func coords(field string, pts [][3]float64) ([]wavesim.Coord, error) {
	out := make([]wavesim.Coord, len(pts))
	for i, p := range pts {
		if !finite(p[0], p[1], p[2]) {
			return nil, specErrf(field, "point %d has a non-finite coordinate", i)
		}
		out[i] = wavesim.Coord(p)
	}
	return out, nil
}

// Build validates the spec against lim and lowers it to wavesim values.
// Structural and budget checks run before anything is allocated; the
// final authority on geometry (CFL, placement margins) is wavesim.New,
// whose ErrInvalidOptions/ErrPlacement also surface as *SpecError.
func (s *JobSpec) Build(lim Limits) (*BuiltJob, error) {
	lim = lim.withDefaults()

	var phys wavesim.Physics
	switch s.Physics {
	case "acoustic":
		phys = wavesim.Acoustic
	case "tti":
		phys = wavesim.TTI
	case "elastic":
		phys = wavesim.Elastic
	default:
		return nil, specErrf("physics", "unknown physics %q (want acoustic, tti or elastic)", s.Physics)
	}
	if s.SpaceOrder <= 0 || s.SpaceOrder%2 != 0 || s.SpaceOrder > lim.MaxOrder {
		return nil, specErrf("space_order", "%d must be even, positive and at most %d", s.SpaceOrder, lim.MaxOrder)
	}
	points := int64(1)
	for d, n := range s.Shape {
		if n < 2*s.SpaceOrder {
			return nil, specErrf("shape", "shape[%d]=%d too small for space order %d", d, n, s.SpaceOrder)
		}
		points *= int64(n) + 2*int64(s.NBL)
	}
	if s.NBL < 0 || s.NBL > 1024 {
		return nil, specErrf("nbl", "%d out of range [0, 1024]", s.NBL)
	}
	if points > lim.MaxPoints {
		return nil, specErrf("shape", "%d grid points (incl. boundary layers) exceed the %d budget", points, lim.MaxPoints)
	}
	for d, h := range s.Spacing {
		if !finite(h) || h <= 0 {
			return nil, specErrf("spacing", "spacing[%d]=%g must be positive and finite", d, h)
		}
	}
	if s.Steps <= 0 || s.Steps > lim.MaxSteps {
		return nil, specErrf("steps", "%d out of range [1, %d]", s.Steps, lim.MaxSteps)
	}
	if !finite(s.SourceF0, s.SourceAmp) || s.SourceF0 < 0 {
		return nil, specErrf("source_f0", "wavelet parameters must be finite (f0 ≥ 0)")
	}
	if len(s.Shots) == 0 || len(s.Shots) > lim.MaxShots {
		return nil, specErrf("shots", "%d out of range [1, %d]", len(s.Shots), lim.MaxShots)
	}
	if len(s.Receivers) > lim.MaxReceivers {
		return nil, specErrf("receivers", "%d exceeds the %d budget", len(s.Receivers), lim.MaxReceivers)
	}
	if s.Concurrency < 0 || s.Concurrency > 256 {
		return nil, specErrf("concurrency", "%d out of range [0, 256]", s.Concurrency)
	}

	vp, err := s.Model.build()
	if err != nil {
		return nil, err
	}
	rec, err := coords("receivers", s.Receivers)
	if err != nil {
		return nil, err
	}
	shots := make([]wavesim.Shot, len(s.Shots))
	for i, sh := range s.Shots {
		if len(sh.Sources) == 0 || len(sh.Sources) > lim.MaxSources {
			return nil, specErrf(fmt.Sprintf("shots[%d].sources", i), "%d out of range [1, %d]", len(sh.Sources), lim.MaxSources)
		}
		src, err := coords(fmt.Sprintf("shots[%d].sources", i), sh.Sources)
		if err != nil {
			return nil, err
		}
		shots[i] = wavesim.Shot{Sources: src}
	}

	sched, err := s.Schedule.build()
	if err != nil {
		return nil, err
	}

	base := wavesim.Options{
		Physics:     phys,
		SpaceOrder:  s.SpaceOrder,
		Shape:       s.Shape,
		Spacing:     s.Spacing,
		NBL:         s.NBL,
		Steps:       s.Steps,
		Vp:          vp,
		SourceF0:    s.SourceF0,
		SourceAmp:   s.SourceAmp,
		SincSources: s.SincSources,
		Receivers:   rec,
	}
	return &BuiltJob{Spec: s, Base: base, Shots: shots, Sched: sched}, nil
}

func (c ScheduleSpec) build() (wavesim.Schedule, error) {
	switch c.Kind {
	case "spatial":
		return wavesim.Spatial{BlockX: c.BlockX, BlockY: c.BlockY}, nil
	case "wtb", "wtb-pipelined":
		if c.TimeTile < 0 || c.TimeTile > 64 {
			return nil, specErrf("schedule.time_tile", "%d out of range [0, 64]", c.TimeTile)
		}
		if c.TileX < 0 || c.TileY < 0 || c.TileX > 1<<16 || c.TileY > 1<<16 {
			return nil, specErrf("schedule", "tile extents out of range")
		}
		w := wavesim.WTB{TimeTile: c.TimeTile, TileX: c.TileX, TileY: c.TileY, BlockX: c.BlockX, BlockY: c.BlockY}
		if c.Kind == "wtb" {
			return w, nil
		}
		return wavesim.WTBPipelined(w), nil
	default:
		return nil, specErrf("schedule.kind", "unknown schedule %q (want spatial, wtb or wtb-pipelined)", c.Kind)
	}
}

// NewSurvey builds the runnable survey for a validated job, defaulting
// unset schedule knobs to legal values for the built propagator. wavesim's
// own validation errors (placement, CFL, degenerate geometry) come back as
// *SpecError: they describe the spec, not the service.
func (b *BuiltJob) NewSurvey() (*wavesim.Survey, wavesim.Schedule, error) {
	sv, err := wavesim.NewSurvey(b.Base, b.Shots, wavesim.SurveyOptions{
		Concurrency: max(1, b.Spec.Concurrency),
	})
	if err != nil {
		// Every input to the survey builder came from the spec, so any
		// construction failure — tagged (ErrInvalidOptions, ErrPlacement)
		// or not — describes the spec and maps to a 400.
		return nil, nil, specErrf("(spec)", "%v", err)
	}
	sched := b.Sched
	mt := sv.MinTile()
	switch c := sched.(type) {
	case wavesim.WTB:
		sched = defaultWTB(c, mt)
	case wavesim.WTBPipelined:
		sched = wavesim.WTBPipelined(defaultWTB(wavesim.WTB(c), mt))
	}
	return sv, sched, nil
}

// defaultWTB fills unset WTB knobs: a 4-deep time tile and space tiles of
// at least the dependency margin.
func defaultWTB(c wavesim.WTB, minTile int) wavesim.WTB {
	if c.TimeTile == 0 {
		c.TimeTile = 4
	}
	if c.TileX == 0 {
		c.TileX = max(minTile, 32)
	}
	if c.TileY == 0 {
		c.TileY = max(minTile, 32)
	}
	if c.TileX < minTile {
		c.TileX = minTile
	}
	if c.TileY < minTile {
		c.TileY = minTile
	}
	return c
}
