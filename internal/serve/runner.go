package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"wavetile/wavesim"
)

// ErrCrashInjected marks a fault-injection exit: the runner abandons the
// job exactly as an evicted process would — no terminal state cleanup, the
// persisted job file left behind for Resume.
var ErrCrashInjected = errors.New("serve: injected crash")

func (s *Server) runnerLoop() {
	defer s.wg.Done()
	for {
		j, err := s.queue.pop()
		if err != nil {
			return // queue closed and drained
		}
		s.noteQueueDepth()
		s.runJob(j)
	}
}

// runJob executes one job through the resumable survey runner, streaming
// each finished shot into the job's record list and persisting state at
// every checkpoint boundary.
func (s *Server) runJob(j *Job) {
	s.gaugeAdd(MetricJobsActive, 1)
	defer s.gaugeAdd(MetricJobsActive, -1)

	// The cancel func must be visible before the job can be observed as
	// running (including by the BeforeJob hook): a DELETE racing this
	// transition must find something to call, not a nil no-op.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.mu.Lock()
	j.cancel = cancel
	j.state = StateRunning
	j.mu.Unlock()

	if s.cfg.BeforeJob != nil {
		s.cfg.BeforeJob(j)
	}
	if err := ctx.Err(); err != nil {
		// Cancelled while held at the hook (or between pop and start).
		j.setState(StateCancelled, err)
		s.count(MetricJobsCancelled, 1)
		s.removeJobFile(j)
		return
	}

	start := time.Now()
	err := s.executeJob(ctx, j)

	switch {
	case err == nil:
		j.setState(StateDone, nil)
		s.count(MetricJobsDone, 1)
		s.observeDuration(time.Since(start))
		s.removeJobFile(j)
	case errors.Is(err, ErrCrashInjected):
		// Simulated eviction: leave the job file for Resume. The state is
		// marked for observability only — a real crash records nothing.
		j.setState(StateInterrupted, err)
		s.count(MetricJobsInterrupted, 1)
	case errors.Is(err, context.Canceled):
		j.setState(StateCancelled, err)
		s.count(MetricJobsCancelled, 1)
		s.removeJobFile(j)
	default:
		j.setState(StateFailed, err)
		s.count(MetricJobsFailed, 1)
		s.removeJobFile(j)
	}
}

// executeJob builds the survey from the job's spec and runs the remaining
// shots: completed shots are skipped, checkpointed shots restored — the
// resume path a reloaded job takes after a crash.
func (s *Server) executeJob(ctx context.Context, j *Job) error {
	built, err := j.Spec.Build(s.cfg.Limits)
	if err != nil {
		return err
	}
	sv, sched, err := built.NewSurvey()
	if err != nil {
		return err
	}
	completed, ckpts := j.resumeState()

	var crashed atomic.Bool
	ro := wavesim.ResumeOptions{
		Completed:   completed,
		Checkpoints: ckpts,
		EveryTiles:  s.cfg.CheckpointEveryTiles,
		OnShot: func(shot int, res *wavesim.Result) {
			j.appendRecord(ShotRecord{
				Shot:          shot,
				ElapsedNS:     res.Elapsed.Nanoseconds(),
				GPointsPerSec: res.GPointsPerSec,
				Receivers:     res.Receivers,
			})
			s.persistJob(j)
		},
	}
	if s.cfg.CheckpointEveryTiles > 0 {
		ro.OnCheckpoint = func(ck *wavesim.ShotCheckpoint) error {
			j.noteCheckpoint(ck)
			s.persistJob(j)
			if n := s.cfg.CrashAfterCheckpoints; n > 0 && j.checkpointCount() >= n && crashed.CompareAndSwap(false, true) {
				return ErrCrashInjected
			}
			return nil
		}
	}
	_, err = sv.RunResumable(ctx, sched, ro)
	if gets, puts := sv.PoolBalance(); gets != puts {
		// Pooled wavefields must come back even on error/cancel paths; a
		// leak here is a bug worth failing loudly over.
		s.count("serve_pool_leaks", gets-puts)
	}
	return err
}

// observeDuration folds a finished job's wall time into the Retry-After
// EWMA (¼ new, ¾ history).
func (s *Server) observeDuration(d time.Duration) {
	for {
		old := s.ewmaNS.Load()
		next := d.Nanoseconds()
		if old > 0 {
			next = (3*old + next) / 4
		}
		if s.ewmaNS.CompareAndSwap(old, next) {
			return
		}
	}
}

func (j *Job) checkpointCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ckptCount
}
