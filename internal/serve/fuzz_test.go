package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// FuzzJobSpec drives arbitrary bytes through the full admission-validation
// path: decode, structural Build checks against tight limits, and the
// wavesim survey construction itself. The invariant under fuzz is the one
// the HTTP handler depends on: every failure is a typed *SpecError (a 400),
// and nothing panics or allocates past the configured budgets — limits are
// enforced before any grid memory exists.
func FuzzJobSpec(f *testing.F) {
	// A valid spec (must survive the whole path) and seeds aimed at each
	// validation layer.
	valid, err := json.Marshal(testSpec("acoustic", "wtb", 1))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(``))
	f.Add([]byte(`]]]`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"stepz": 1}`))
	f.Add([]byte(`{"steps": 1} trailing`))
	f.Add([]byte(`{"physics":"acoustic","space_order":3}`))
	f.Add([]byte(`{"physics":"acoustic","space_order":4,"shape":[0,0,0]}`))
	f.Add([]byte(`{"physics":"acoustic","space_order":4,"shape":[1000000,1000000,1000000],"steps":1}`))
	f.Add([]byte(`{"physics":"acoustic","space_order":4,"shape":[16,16,16],"spacing":[1e308,10,10],"steps":4}`))
	f.Add([]byte(`{"physics":"elastic","space_order":4,"shape":[16,16,16],"spacing":[10,10,10],"steps":4,` +
		`"model":{"kind":"homogeneous","v":1500},"shots":[{"sources":[[1e300,0,0]]}],"schedule":{"kind":"wtb"}}`))
	f.Add([]byte(`{"physics":"acoustic","space_order":4,"shape":[16,16,16],"spacing":[10,10,10],"steps":4,` +
		`"model":{"kind":"layered","zmax":160,"values":[1500]},"nbl":-5}`))
	f.Add([]byte(`{"physics":"tti","space_order":4,"shape":[16,16,16],"spacing":[10,10,10],"steps":4,` +
		`"model":{"kind":"gradient","v0":1500,"v1":3000,"zmax":160},` +
		`"shots":[{"sources":[[80,80,80]]}],"schedule":{"kind":"wtb-pipelined","time_tile":-1}}`))

	// Tight limits keep any spec that does pass validation tiny, so the
	// survey construction the fuzzer occasionally reaches stays cheap.
	lim := Limits{MaxPoints: 1 << 16, MaxSteps: 32, MaxShots: 4, MaxSources: 4, MaxReceivers: 8, MaxOrder: 8}

	f.Fuzz(func(t *testing.T, body []byte) {
		spec, err := DecodeJobSpec(bytes.NewReader(body))
		if err != nil {
			assertSpecError(t, err)
			return
		}
		built, err := spec.Build(lim)
		if err != nil {
			assertSpecError(t, err)
			return
		}
		if _, _, err := built.NewSurvey(); err != nil {
			assertSpecError(t, err)
		}
	})
}

func assertSpecError(t *testing.T, err error) {
	t.Helper()
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("validation error is not a *SpecError: %v", err)
	}
	if se.Field == "" || se.Msg == "" {
		t.Fatalf("spec error missing field or message: %+v", se)
	}
}
