package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wavetile/internal/obs"
	"wavetile/wavesim"
)

// testSpec builds a small but physically meaningful job: an off-the-grid
// source array marching along x, a receiver cable, the paper's layered
// velocity model. All schedule knobs are pinned so the direct wavesim run
// and the service resolve to the identical schedule.
func testSpec(physics, schedKind string, nshots int) *JobSpec {
	spec := &JobSpec{
		Name:       "e2e",
		Physics:    physics,
		SpaceOrder: 4,
		Shape:      [3]int{36, 36, 36},
		Spacing:    [3]float64{10, 10, 10},
		NBL:        4,
		Steps:      16,
		Model:      ModelSpec{Kind: "layered", ZMax: 360, Values: []float64{1500, 2500, 3000}},
		SourceF0:   25,
		SourceAmp:  100,
		Schedule:   ScheduleSpec{Kind: schedKind, TimeTile: 4, TileX: 32, TileY: 32, BlockX: 8, BlockY: 8},
	}
	for i := 0; i < 6; i++ {
		spec.Receivers = append(spec.Receivers, [3]float64{60 + float64(i)*46, 170, 60})
	}
	for s := 0; s < nshots; s++ {
		dx := 12.0 * float64(s)
		spec.Shots = append(spec.Shots, ShotSpec{Sources: [][3]float64{
			{120.3 + dx, 150.7, 110.1},
			{150.9 + dx, 150.7, 110.1},
			{135.6 + dx, 170.2, 110.1},
		}})
	}
	return spec
}

// directRecords is the oracle: the same spec run through wavesim.RunSurvey
// with no HTTP, queue, streaming or checkpointing in the way.
func directRecords(t *testing.T, spec *JobSpec) [][][]float32 {
	t.Helper()
	built, err := spec.Build(Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// NewSurvey resolves the same schedule defaults the service applies.
	_, sched, err := built.NewSurvey()
	if err != nil {
		t.Fatal(err)
	}
	res, err := wavesim.RunSurvey(built.Base, built.Shots, sched, wavesim.SurveyOptions{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := make([][][]float32, len(res.Shots))
	for i, r := range res.Shots {
		out[i] = r.Receivers
	}
	return out
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	t.Cleanup(obs.Swap(reg))
	cfg.Registry = reg
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts, reg
}

// postJob submits a spec and returns the HTTP status plus the job id on 202.
func postJob(ts *httptest.Server, spec *JobSpec) (int, string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return 0, "", err
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, "", fmt.Errorf("submit: %d: %s", resp.StatusCode, b)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return resp.StatusCode, "", err
	}
	return resp.StatusCode, out.ID, nil
}

func submitJob(t *testing.T, ts *httptest.Server, spec *JobSpec) string {
	t.Helper()
	_, id, err := postJob(ts, spec)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// streamLine decodes both record and trailer lines of the NDJSON stream.
type streamLine struct {
	ShotRecord
	Done  bool   `json:"done"`
	State string `json:"state"`
	Error string `json:"error"`
}

// readResults streams /results to completion, returning the records and the
// trailer's final state.
func readResults(ts *httptest.Server, id string) ([]ShotRecord, string, error) {
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/results")
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("results: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		return nil, "", fmt.Errorf("results: content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var recs []ShotRecord
	state := ""
	for sc.Scan() {
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, "", fmt.Errorf("bad stream line %q: %w", sc.Text(), err)
		}
		if line.Done {
			state = line.State
			continue
		}
		recs = append(recs, line.ShotRecord)
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	if state == "" {
		return nil, "", fmt.Errorf("stream ended without a trailer")
	}
	return recs, state, nil
}

func collectResults(t *testing.T, ts *httptest.Server, id string) ([]ShotRecord, string) {
	t.Helper()
	recs, state, err := readResults(ts, id)
	if err != nil {
		t.Fatal(err)
	}
	return recs, state
}

// assertBitwise compares two receiver records down to the float32 bits.
func assertBitwise(t *testing.T, want, got [][]float32, shot int) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("shot %d: %d vs %d trace rows", shot, len(want), len(got))
	}
	for ti := range want {
		if len(want[ti]) != len(got[ti]) {
			t.Fatalf("shot %d row %d: %d vs %d receivers", shot, ti, len(want[ti]), len(got[ti]))
		}
		for r := range want[ti] {
			if math.Float32bits(want[ti][r]) != math.Float32bits(got[ti][r]) {
				t.Fatalf("shot %d receiver %d t=%d: direct %x vs served %x",
					shot, r, ti, math.Float32bits(want[ti][r]), math.Float32bits(got[ti][r]))
			}
		}
	}
}

func fetchMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func waitTerminal(t *testing.T, srv *Server, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j := srv.job(id)
		if j == nil {
			t.Fatalf("job %s vanished", id)
		}
		st := j.status()
		if st.State.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEndToEndOracle: a job submitted over HTTP, executed through the
// queue/runner/batch stack and streamed back as NDJSON must be bitwise
// identical to a direct wavesim.RunSurvey of the same spec — for acoustic,
// elastic, and the pipelined schedule.
func TestEndToEndOracle(t *testing.T) {
	cases := []struct{ physics, sched string }{
		{"acoustic", "wtb"},
		{"elastic", "wtb"},
		{"acoustic", "wtb-pipelined"},
	}
	for _, tc := range cases {
		t.Run(tc.physics+"/"+tc.sched, func(t *testing.T) {
			spec := testSpec(tc.physics, tc.sched, 3)
			want := directRecords(t, spec)

			_, ts, _ := newTestServer(t, Config{Runners: 1})
			id := submitJob(t, ts, spec)
			recs, state := collectResults(t, ts, id)
			if state != string(StateDone) {
				t.Fatalf("final state %q", state)
			}
			if len(recs) != len(want) {
				t.Fatalf("%d records streamed, want %d", len(recs), len(want))
			}
			for _, rec := range recs {
				assertBitwise(t, want[rec.Shot], rec.Receivers, rec.Shot)
			}

			// One scrape of the shared mux carries both the schedule series
			// and the service's own.
			m := fetchMetrics(t, ts)
			for _, series := range []string{
				"wavetile_serve_jobs_done 1",
				"wavetile_serve_queue_depth 0",
				"wavetile_serve_jobs_active 0",
				"wavetile_survey_shots_done 3",
			} {
				if !strings.Contains(m, series) {
					t.Fatalf("/metrics missing %q:\n%s", series, m)
				}
			}
		})
	}
}

// TestStatusEndpoint covers the status projection and 404s.
func TestStatusEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Runners: 1})
	id := submitJob(t, ts, testSpec("acoustic", "spatial", 2))
	if _, state := collectResults(t, ts, id); state != string(StateDone) {
		t.Fatalf("state %q", state)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID != id || st.State != StateDone || st.ShotsDone != 2 || st.ShotsTotal != 2 {
		t.Fatalf("status = %+v", st)
	}
	resp2, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: status %d", resp2.StatusCode)
	}
}

// TestConcurrentSubmittersAndCanceller is the -race workout: many clients
// submitting, streaming, and cancelling against a two-runner server while
// /metrics is scraped. Every accepted job must reach a terminal state,
// nothing may fail, and the pool must stay balanced.
func TestConcurrentSubmittersAndCanceller(t *testing.T) {
	small := func() *JobSpec {
		s := testSpec("acoustic", "spatial", 1)
		s.Shape = [3]int{16, 16, 16}
		s.Steps = 4
		s.Model = ModelSpec{Kind: "homogeneous", V: 1500}
		s.Receivers = [][3]float64{{40, 80, 40}, {110, 80, 40}}
		s.Shots = []ShotSpec{{Sources: [][3]float64{{75.3, 70.7, 50.1}}}}
		return s
	}

	srv, ts, reg := newTestServer(t, Config{Runners: 2, QueueCap: 64})
	const clients, jobsPerClient = 4, 3
	ids := make(chan string, clients*jobsPerClient)
	errs := make(chan error, clients*jobsPerClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < jobsPerClient; k++ {
				_, id, err := postJob(ts, small())
				if err != nil {
					errs <- err
					return
				}
				ids <- id
				if k%2 == 0 {
					// Race a cancel against the run.
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
					if resp, err := http.DefaultClient.Do(req); err == nil {
						resp.Body.Close()
					}
				} else if _, _, err := readResults(ts, id); err != nil {
					errs <- err
					return
				}
				if resp, err := http.Get(ts.URL + "/metrics"); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	close(ids)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	n := 0
	for id := range ids {
		waitTerminal(t, srv, id, 30*time.Second)
		n++
	}
	if n != clients*jobsPerClient {
		t.Fatalf("only %d jobs accepted, want %d", n, clients*jobsPerClient)
	}
	snap := reg.Snapshot()
	total := snap.Counters[MetricJobsDone] + snap.Counters[MetricJobsCancelled]
	if total != clients*jobsPerClient {
		t.Fatalf("terminal counters sum to %d, want %d (done=%d cancelled=%d failed=%d)",
			total, clients*jobsPerClient,
			snap.Counters[MetricJobsDone], snap.Counters[MetricJobsCancelled], snap.Counters[MetricJobsFailed])
	}
	if snap.Counters[MetricJobsFailed] != 0 {
		t.Fatalf("%d jobs failed during the race run", snap.Counters[MetricJobsFailed])
	}
	if leaks := snap.Counters["serve_pool_leaks"]; leaks != 0 {
		t.Fatalf("pooled grids leaked: %d", leaks)
	}
	if active := snap.Gauges[MetricJobsActive]; active != 0 {
		t.Fatalf("jobs_active gauge %d after all jobs terminal", active)
	}
}

// TestDrainFinishesAcceptedJobs: Drain refuses new work but completes what
// was admitted.
func TestDrainFinishesAcceptedJobs(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{Runners: 1, QueueCap: 8})
	var ids []string
	for i := 0; i < 2; i++ {
		ids = append(ids, submitJob(t, ts, testSpec("acoustic", "spatial", 1)))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		if st := srv.job(id).status(); st.State != StateDone {
			t.Fatalf("job %s state %q after drain", id, st.State)
		}
	}
	// Post-drain admission answers 503.
	body, _ := json.Marshal(testSpec("acoustic", "spatial", 1))
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: status %d, want 503", resp.StatusCode)
	}
}
