package serve

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func queuedJob(id string, priority int) *Job {
	j := newJob(id, &JobSpec{Priority: priority})
	j.Priority = priority
	return j
}

func TestQueuePriorityOrder(t *testing.T) {
	q := newJobQueue(16)
	for i, p := range []int{0, 5, -3, 5, 1} {
		if err := q.push(queuedJob(fmt.Sprintf("j%d", i), p), false); err != nil {
			t.Fatal(err)
		}
	}
	// Priority descending; the two priority-5 jobs keep submission order.
	want := []string{"j1", "j3", "j4", "j0", "j2"}
	for _, id := range want {
		j, err := q.pop()
		if err != nil {
			t.Fatal(err)
		}
		if j.ID != id {
			t.Fatalf("popped %s, want %s", j.ID, id)
		}
	}
}

func TestQueueFIFOWithinLevel(t *testing.T) {
	q := newJobQueue(64)
	for i := 0; i < 32; i++ {
		if err := q.push(queuedJob(fmt.Sprintf("j%02d", i), 7), false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		j, err := q.pop()
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("j%02d", i); j.ID != want {
			t.Fatalf("popped %s at position %d, want %s", j.ID, i, want)
		}
	}
}

func TestQueueBoundAndForce(t *testing.T) {
	q := newJobQueue(2)
	if err := q.push(queuedJob("a", 0), false); err != nil {
		t.Fatal(err)
	}
	if err := q.push(queuedJob("b", 0), false); err != nil {
		t.Fatal(err)
	}
	if err := q.push(queuedJob("c", 0), false); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	// Resume pushes bypass the bound: reloaded jobs must never be dropped.
	if err := q.push(queuedJob("d", 0), true); err != nil {
		t.Fatalf("forced push: %v", err)
	}
	if got := q.depth(); got != 3 {
		t.Fatalf("depth %d, want 3", got)
	}
}

func TestQueueRemove(t *testing.T) {
	q := newJobQueue(8)
	for _, id := range []string{"a", "b", "c"} {
		if err := q.push(queuedJob(id, 0), false); err != nil {
			t.Fatal(err)
		}
	}
	if !q.remove("b") {
		t.Fatal("remove(b) = false")
	}
	if q.remove("b") || q.remove("zzz") {
		t.Fatal("remove of absent job reported true")
	}
	var got []string
	for i := 0; i < 2; i++ {
		j, err := q.pop()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, j.ID)
	}
	if got[0] != "a" || got[1] != "c" {
		t.Fatalf("popped %v after remove, want [a c]", got)
	}
}

func TestQueueCloseDrainsThenFails(t *testing.T) {
	q := newJobQueue(8)
	if err := q.push(queuedJob("a", 0), false); err != nil {
		t.Fatal(err)
	}
	q.close()
	// Pending work still pops (graceful drain)...
	if j, err := q.pop(); err != nil || j.ID != "a" {
		t.Fatalf("pop after close = %v, %v", j, err)
	}
	// ...then pops fail, and pushes (forced or not) are refused.
	if _, err := q.pop(); !errors.Is(err, errQueueClosed) {
		t.Fatalf("drained pop: %v", err)
	}
	if err := q.push(queuedJob("b", 0), true); !errors.Is(err, errQueueClosed) {
		t.Fatalf("push after close: %v", err)
	}
}

func TestQueueCloseWakesBlockedPop(t *testing.T) {
	q := newJobQueue(8)
	done := make(chan error, 1)
	go func() {
		_, err := q.pop()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the pop block
	q.close()
	select {
	case err := <-done:
		if !errors.Is(err, errQueueClosed) {
			t.Fatalf("blocked pop returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not wake the blocked pop")
	}
}
