package core

import (
	"math"
	"testing"

	"wavetile/internal/grid"
	"wavetile/internal/sparse"
)

func TestSamplerMatchesDirectInterpolation(t *testing.T) {
	// Fused sampling + gather must equal the Listing-1 receiver
	// interpolation on the same wavefield.
	n, h, nt := 10, 10.0, 5
	rec := &sparse.Points{Coords: []sparse.Coord{
		{13.7, 25.2, 31.9}, {40, 40, 40}, {81.2, 11.4, 66.6},
	}}
	sup := supportsFor(t, rec, n, h)
	m := BuildMasks(n, n, n, sup)
	s := NewSampler(m, nt)

	u := grid.New(n, n, n, 0)
	for tt := 0; tt < nt; tt++ {
		u.FillFunc(func(x, y, z int) float32 {
			return float32(tt+1) * float32(math.Sin(float64(x*31+y*17+z*7)))
		})
		s.SampleRegion(tt, u, grid.FullRegion(n, n))

		direct := make([]float32, rec.N())
		sparse.Interpolate(u, sup, direct)

		traces, err := s.GatherReceivers(sup)
		if err != nil {
			t.Fatal(err)
		}
		for r := range direct {
			if math.Abs(float64(traces[tt][r]-direct[r])) > 1e-5 {
				t.Fatalf("t=%d rec %d: fused %g direct %g", tt, r, traces[tt][r], direct[r])
			}
		}
	}
}

func TestSampleRegionPartialCoverage(t *testing.T) {
	// Sampling in two disjoint regions equals sampling the full region.
	n, h := 10, 10.0
	rec := &sparse.Points{Coords: []sparse.Coord{{13.7, 25.2, 31.9}, {71, 82, 13}}}
	sup := supportsFor(t, rec, n, h)
	m := BuildMasks(n, n, n, sup)
	u := grid.New(n, n, n, 0)
	u.FillFunc(func(x, y, z int) float32 { return float32(x*100 + y*10 + z) })

	whole := NewSampler(m, 1)
	whole.SampleRegion(0, u, grid.FullRegion(n, n))
	split := NewSampler(m, 1)
	split.SampleRegion(0, u, grid.Region{X0: 0, X1: 4, Y0: 0, Y1: n})
	split.SampleRegion(0, u, grid.Region{X0: 4, X1: n, Y0: 0, Y1: n})

	for id := 0; id < m.Npts; id++ {
		if whole.Data[0][id] != split.Data[0][id] {
			t.Fatalf("id %d: whole %g split %g", id, whole.Data[0][id], split.Data[0][id])
		}
	}
}

func TestGatherReceiversForeignSupport(t *testing.T) {
	n, h := 8, 10.0
	rec := sparse.Single(sparse.Coord{23, 34, 45})
	m := BuildMasks(n, n, n, supportsFor(t, rec, n, h))
	s := NewSampler(m, 2)
	other := supportsFor(t, sparse.Single(sparse.Coord{61, 61, 61}), n, h)
	if _, err := s.GatherReceivers(other); err == nil {
		t.Fatal("foreign receiver support accepted")
	}
}
