package core

import (
	"math"
	"testing"

	"wavetile/internal/grid"
	"wavetile/internal/sparse"
)

func movingSups(t *testing.T, n int, h float64, nt int) [][]sparse.Support {
	t.Helper()
	out := make([][]sparse.Support, nt)
	for tt := 0; tt < nt; tt++ {
		pts := &sparse.Points{Coords: []sparse.Coord{
			{20 + 3*float64(tt) + 0.4, 30, 25},
			{50, 20 + 2*float64(tt) + 0.7, 35},
		}}
		sup, err := pts.Supports(n, n, n, h, h, h)
		if err != nil {
			t.Fatal(err)
		}
		out[tt] = sup
	}
	return out
}

func TestBuildMovingMasksUnion(t *testing.T) {
	n, h, nt := 12, 10.0, 5
	sups := movingSups(t, n, h, nt)
	m := BuildMovingMasks(n, n, n, sups)
	// Every support corner of every step must have an ID.
	for tt := range sups {
		for s := range sups[tt] {
			sp := &sups[tt][s]
			for c := 0; c < 8; c++ {
				if _, ok := m.ID(int(sp.X[c]), int(sp.Y[c]), int(sp.Z[c])); !ok {
					t.Fatalf("t=%d corner (%d,%d,%d) missing", tt, sp.X[c], sp.Y[c], sp.Z[c])
				}
			}
		}
	}
	// A moving source covers more unique points than a static one.
	if m.Npts <= 16 {
		t.Fatalf("union Npts = %d, want > 16", m.Npts)
	}
}

func TestDecomposeMovingMatchesPerStepScatter(t *testing.T) {
	n, h, nt := 12, 10.0, 5
	sups := movingSups(t, n, h, nt)
	m := BuildMovingMasks(n, n, n, sups)
	wav := [][]float32{
		{1, 2, 3, 4, 5},
		{10, 20, 30, 40, 50},
	}
	scale := func(x, y, z int) float32 { return 0.5 }
	dcmp, err := m.DecomposeMovingWavelets(sups, wav, nt, scale)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < nt; tt++ {
		direct := grid.New(n, n, n, 0)
		amps := []float32{wav[0][tt], wav[1][tt]}
		sparse.Inject(direct, sups[tt], amps, scale)
		fused := grid.New(n, n, n, 0)
		m.InjectRegion(fused, grid.FullRegion(n, n), dcmp[tt])
		d, x, y, z := direct.MaxAbsDiff(fused)
		if d > 1e-4*math.Max(direct.MaxAbs(), 1) {
			t.Fatalf("t=%d diff %g at (%d,%d,%d)", tt, d, x, y, z)
		}
	}
}

func TestDecomposeMovingErrors(t *testing.T) {
	n, h, nt := 12, 10.0, 4
	sups := movingSups(t, n, h, nt)
	m := BuildMovingMasks(n, n, n, sups)
	one := func(x, y, z int) float32 { return 1 }
	if _, err := m.DecomposeMovingWavelets(sups[:2], [][]float32{{1}, {1}}, nt, one); err == nil {
		t.Fatal("short support list accepted")
	}
	if _, err := m.DecomposeMovingWavelets(sups, [][]float32{{1, 2, 3, 4}}, nt, one); err == nil {
		t.Fatal("wavelet count mismatch accepted")
	}
	if _, err := m.DecomposeMovingWavelets(sups, [][]float32{{1}, {1}}, nt, one); err == nil {
		t.Fatal("short wavelets accepted")
	}
}
