package core

import (
	"fmt"

	"wavetile/internal/grid"
	"wavetile/internal/sparse"
)

// Sampler is the receiver-side counterpart of the injection scheme: the
// paper's "measurement interpolation" (Fig. 3b) fused into the grid loops.
//
// Inside a space-time tile a wavefield value u[t][x,y,z] is transient — it
// is overwritten two (or one) timesteps later — so a receiver cannot simply
// interpolate after the time loop. The Sampler records the value of u at
// every receiver-affected grid point at the moment the point's update for
// timestep t is finalized inside the tile. The per-point recordings
// Data[t][id] are the receiver analogue of src_dcmp; the actual receiver
// traces (weighted sums over each receiver's support) are gathered after the
// time loop by GatherReceivers, at negligible cost.
type Sampler struct {
	M *Masks
	// Data[t][id] is the wavefield value at affected point id, time index t.
	Data [][]float32
}

// NewSampler prepares storage for nt time slices of point recordings.
func NewSampler(m *Masks, nt int) *Sampler {
	s := &Sampler{M: m, Data: make([][]float32, nt)}
	buf := make([]float32, nt*m.Npts)
	for t := range s.Data {
		s.Data[t], buf = buf[:m.Npts:m.Npts], buf[m.Npts:]
	}
	return s
}

// SampleRegion records u at every receiver-affected point inside reg for
// time index t. Mirrors InjectRegion: compressed column iteration, and
// race-free across the disjoint blocks of a schedule.
func (s *Sampler) SampleRegion(t int, u *grid.Grid, reg grid.Region) {
	m := s.M
	if m.Npts == 0 {
		return
	}
	dst := s.Data[t]
	for x := reg.X0; x < reg.X1; x++ {
		rowBase := x * m.Ny
		for y := reg.Y0; y < reg.Y1; y++ {
			cnt := int(m.NNZ[rowBase+y])
			if cnt == 0 {
				continue
			}
			sp := (rowBase + y) * m.MaxNNZ
			row := u.Row(x, y)
			for j := 0; j < cnt; j++ {
				dst[m.SpID[sp+j]] = row[m.SpZ[sp+j]]
			}
		}
	}
}

// GatherReceivers converts the point recordings into receiver traces:
// out[t][r] = Σ_c w_c · Data[t][id(support corner c of receiver r)].
// This is the off-line completion of the fused measurement interpolation.
func (s *Sampler) GatherReceivers(sups []sparse.Support) ([][]float32, error) {
	nt := len(s.Data)
	out := make([][]float32, nt)
	buf := make([]float32, nt*len(sups))
	for t := range out {
		out[t], buf = buf[:len(sups):len(sups)], buf[len(sups):]
	}
	type cw struct {
		id int32
		w  float64
	}
	corners := make([][8]cw, len(sups))
	for r := range sups {
		sp := &sups[r]
		for c := 0; c < 8; c++ {
			id, ok := s.M.ID(int(sp.X[c]), int(sp.Y[c]), int(sp.Z[c]))
			if !ok {
				return nil, fmt.Errorf("core: receiver %d corner (%d,%d,%d) missing from masks",
					r, sp.X[c], sp.Y[c], sp.Z[c])
			}
			corners[r][c] = cw{id, sp.W[c]}
		}
	}
	for t := 0; t < nt; t++ {
		data := s.Data[t]
		row := out[t]
		for r := range corners {
			acc := 0.0
			for c := 0; c < 8; c++ {
				acc += corners[r][c].w * float64(data[corners[r][c].id])
			}
			row[r] = float32(acc)
		}
	}
	return out, nil
}
