package core

import (
	"math"
	"testing"
	"testing/quick"

	"wavetile/internal/grid"
	"wavetile/internal/sparse"
)

func supportsFor(t *testing.T, pts *sparse.Points, n int, h float64) []sparse.Support {
	t.Helper()
	sup, err := pts.Supports(n, n, n, h, h, h)
	if err != nil {
		t.Fatal(err)
	}
	return sup
}

func TestBuildMasksSingleSource(t *testing.T) {
	n, h := 8, 10.0
	pts := sparse.Single(sparse.Coord{23, 34, 45}) // strictly off-grid in all dims
	m := BuildMasks(n, n, n, supportsFor(t, pts, n, h))
	if m.Npts != 8 {
		t.Fatalf("Npts = %d, want 8", m.Npts)
	}
	// IDs ascend in x→y→z scan order (Fig. 5c).
	for id := 1; id < m.Npts; id++ {
		a := (int(m.PointX[id-1])*n+int(m.PointY[id-1]))*n + int(m.PointZ[id-1])
		b := (int(m.PointX[id])*n+int(m.PointY[id]))*n + int(m.PointZ[id])
		if b <= a {
			t.Fatalf("IDs not ascending in scan order at %d", id)
		}
	}
	// nnz_mask: columns (2,3),(2,4),(3,3),(3,4) hold 2 affected z each.
	for _, c := range [][2]int{{2, 3}, {2, 4}, {3, 3}, {3, 4}} {
		if got := m.NNZ[c[0]*n+c[1]]; got != 2 {
			t.Fatalf("NNZ[%v] = %d, want 2", c, got)
		}
	}
	if m.MaxNNZ != 2 {
		t.Fatalf("MaxNNZ = %d", m.MaxNNZ)
	}
}

func TestBuildMasksOverlappingSources(t *testing.T) {
	// Two sources sharing grid points collapse onto unique IDs ("quite
	// common to encounter points being affected by more than one source").
	n, h := 8, 10.0
	pts := &sparse.Points{Coords: []sparse.Coord{{23, 34, 45}, {26, 34, 45}}}
	m := BuildMasks(n, n, n, supportsFor(t, pts, n, h))
	// x supports: {2,3} and {2,3} → same; total unique = 8, not 16.
	if m.Npts != 8 {
		t.Fatalf("Npts = %d, want 8 (deduplicated)", m.Npts)
	}
}

func TestDenseSMAndSID(t *testing.T) {
	n, h := 6, 10.0
	pts := sparse.Single(sparse.Coord{12.5, 21, 33})
	m := BuildMasks(n, n, n, supportsFor(t, pts, n, h))
	sm, sid := m.DenseSM(), m.DenseSID()
	ones, ids := 0, 0
	for i := range sm {
		if sm[i] == 1 {
			ones++
		}
		if sid[i] >= 0 {
			ids++
			if sm[i] != 1 {
				t.Fatal("SID set where SM is 0")
			}
		}
	}
	if ones != m.Npts || ids != m.Npts {
		t.Fatalf("SM ones %d, SID ids %d, want %d", ones, ids, m.Npts)
	}
	// ID lookup is consistent with the dense SID.
	for id := 0; id < m.Npts; id++ {
		x, y, z := int(m.PointX[id]), int(m.PointY[id]), int(m.PointZ[id])
		got, ok := m.ID(x, y, z)
		if !ok || got != int32(id) {
			t.Fatalf("ID(%d,%d,%d) = %d,%v; want %d", x, y, z, got, ok, id)
		}
		if sid[(x*n+y)*n+z] != int32(id) {
			t.Fatal("dense SID disagrees with ID lookup")
		}
	}
	if _, ok := m.ID(0, 0, 0); ok {
		t.Fatal("untouched point has an ID")
	}
}

func TestCompressedStructureConsistency(t *testing.T) {
	// SpZ/SpID agree with per-column scans of the dense SID for a messy
	// multi-source layout.
	n, h := 10, 5.0
	pts := sparse.DenseVolume(17, 2, 43, 2, 43, 2, 43)
	m := BuildMasks(n, n, n, supportsFor(t, pts, n, h))
	sid := m.DenseSID()
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			var zs []int32
			for z := 0; z < n; z++ {
				if sid[(x*n+y)*n+z] >= 0 {
					zs = append(zs, int32(z))
				}
			}
			cnt := int(m.NNZ[x*n+y])
			if cnt != len(zs) {
				t.Fatalf("col (%d,%d): NNZ %d, want %d", x, y, cnt, len(zs))
			}
			for j := 0; j < cnt; j++ {
				z := m.SpZ[(x*n+y)*m.MaxNNZ+j]
				id := m.SpID[(x*n+y)*m.MaxNNZ+j]
				if z != zs[j] {
					t.Fatalf("col (%d,%d) entry %d: z %d, want %d", x, y, j, z, zs[j])
				}
				if sid[(x*n+y)*n+int(z)] != id {
					t.Fatalf("col (%d,%d) entry %d: id mismatch", x, y, j)
				}
			}
		}
	}
}

func TestDecomposePreservesTotalInjection(t *testing.T) {
	// Injecting the decomposed wavefield must equal the direct off-grid
	// injection (Listing 3 ≡ Listing 1, up to FP association).
	n, h, nt := 9, 10.0, 6
	pts := &sparse.Points{Coords: []sparse.Coord{{23, 34, 45}, {26.2, 34, 45}, {61.7, 13.3, 57.9}}}
	sup := supportsFor(t, pts, n, h)
	m := BuildMasks(n, n, n, sup)

	wav := make([][]float32, len(sup))
	for s := range wav {
		wav[s] = make([]float32, nt)
		for t2 := range wav[s] {
			wav[s][t2] = float32(s+1) * float32(t2*t2+1)
		}
	}
	scale := func(x, y, z int) float32 { return float32(1+x) * 0.25 }
	dcmp, err := m.DecomposeWavelets(sup, wav, nt, scale)
	if err != nil {
		t.Fatal(err)
	}

	for tt := 0; tt < nt; tt++ {
		direct := grid.New(n, n, n, 0)
		amps := make([]float32, len(sup))
		for s := range amps {
			amps[s] = wav[s][tt]
		}
		sparse.Inject(direct, sup, amps, scale)

		fused := grid.New(n, n, n, 0)
		m.InjectRegion(fused, grid.FullRegion(n, n), dcmp[tt])

		d, x, y, z := direct.MaxAbsDiff(fused)
		if d > 1e-3 {
			t.Fatalf("t=%d: direct vs decomposed differ by %g at (%d,%d,%d)", tt, d, x, y, z)
		}
	}
}

func TestInjectRegionRespectsRegion(t *testing.T) {
	n, h := 8, 10.0
	pts := sparse.Single(sparse.Coord{23, 34, 45}) // support x ∈ {2,3}
	sup := supportsFor(t, pts, n, h)
	m := BuildMasks(n, n, n, sup)
	wav := [][]float32{{1}}
	dcmp, _ := m.DecomposeWavelets(sup, wav, 1, func(x, y, z int) float32 { return 1 })

	u := grid.New(n, n, n, 0)
	m.InjectRegion(u, grid.Region{X0: 0, X1: 3, Y0: 0, Y1: n}, dcmp[0]) // only x<3
	for x := 3; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				if u.At(x, y, z) != 0 {
					t.Fatalf("injection leaked outside region at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
	// Two disjoint regions = full injection.
	m.InjectRegion(u, grid.Region{X0: 3, X1: n, Y0: 0, Y1: n}, dcmp[0])
	total := 0.0
	for _, v := range u.Data {
		total += float64(v)
	}
	if math.Abs(total-1) > 1e-6 {
		t.Fatalf("total injected %g, want 1", total)
	}
}

func TestDecomposeErrors(t *testing.T) {
	n, h := 8, 10.0
	pts := sparse.Single(sparse.Coord{23, 34, 45})
	sup := supportsFor(t, pts, n, h)
	m := BuildMasks(n, n, n, sup)
	if _, err := m.DecomposeWavelets(sup, nil, 4, func(x, y, z int) float32 { return 1 }); err == nil {
		t.Fatal("mismatched wavelet count accepted")
	}
	if _, err := m.DecomposeWavelets(sup, [][]float32{{1, 2}}, 4, func(x, y, z int) float32 { return 1 }); err == nil {
		t.Fatal("short wavelet accepted")
	}
	// Supports not present in the masks are rejected.
	other := supportsFor(t, sparse.Single(sparse.Coord{61, 61, 61}), n, h)
	if _, err := m.DecomposeWavelets(other, [][]float32{{1, 2, 3, 4}}, 4, func(x, y, z int) float32 { return 1 }); err == nil {
		t.Fatal("foreign support accepted")
	}
}

func TestEmptyMasks(t *testing.T) {
	m := BuildMasks(5, 5, 5, nil)
	if m.Npts != 0 || m.MaxNNZ != 0 {
		t.Fatalf("empty masks: Npts=%d MaxNNZ=%d", m.Npts, m.MaxNNZ)
	}
	u := grid.New(5, 5, 5, 0)
	m.InjectRegion(u, grid.FullRegion(5, 5), nil) // must not panic
	if u.MaxAbs() != 0 {
		t.Fatal("empty injection wrote data")
	}
}

// Property: Npts equals the number of distinct support corners, and the sum
// of NNZ equals Npts, for random source clouds.
func TestMasksCountsProperty(t *testing.T) {
	f := func(seed uint32) bool {
		n, h := 11, 10.0
		cnt := int(seed%9) + 1
		pts := sparse.DenseVolume(cnt, 1, float64(n-1)*h-1, 1, float64(n-1)*h-1, 1, float64(n-1)*h-1)
		// Perturb deterministically by seed so clouds differ.
		for i := range pts.Coords {
			pts.Coords[i][0] = math.Mod(pts.Coords[i][0]+float64(seed%97), float64(n-1)*h)
		}
		sup, err := pts.Supports(n, n, n, h, h, h)
		if err != nil {
			return false
		}
		m := BuildMasks(n, n, n, sup)
		distinct := map[[3]int32]bool{}
		for i := range sup {
			for c := 0; c < 8; c++ {
				distinct[[3]int32{sup[i].X[c], sup[i].Y[c], sup[i].Z[c]}] = true
			}
		}
		if m.Npts != len(distinct) {
			return false
		}
		total := int32(0)
		for _, v := range m.NNZ {
			total += v
		}
		return int(total) == m.Npts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
