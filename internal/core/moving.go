package core

import (
	"fmt"

	"wavetile/internal/sparse"
)

// Moving sources. The paper assumes "the sources' coordinates are constant
// across our models' time-domain though this may not always be the case.
// However, Devito's API can support the moving sources' case, and our
// algorithm is independent of it." (§II-A). This file realizes that claim:
// a moving source contributes a different support at each timestep; the
// masks are built over the union of all supports, and the decomposed
// wavefield src_dcmp[t][id] — which is already time-indexed — absorbs the
// motion entirely. The fused injection of Listing 5 and the temporal
// blocking schedules need no change whatsoever.

// BuildMovingMasks builds masks from per-timestep supports:
// supsByStep[t][s] is the support of source s at timestep t.
func BuildMovingMasks(nx, ny, nz int, supsByStep [][]sparse.Support) *Masks {
	var all []sparse.Support
	for _, sups := range supsByStep {
		all = append(all, sups...)
	}
	return BuildMasks(nx, ny, nz, all)
}

// DecomposeMovingWavelets is the moving-source analogue of
// DecomposeWavelets: for each timestep it scatters each source's amplitude
// through that timestep's support.
func (m *Masks) DecomposeMovingWavelets(supsByStep [][]sparse.Support, wav [][]float32, nt int, scale sparse.ScaleFunc) ([][]float32, error) {
	if len(supsByStep) < nt {
		return nil, fmt.Errorf("core: %d support steps for %d timesteps", len(supsByStep), nt)
	}
	dcmp := make([][]float32, nt)
	buf := make([]float32, nt*m.Npts)
	for t := range dcmp {
		dcmp[t], buf = buf[:m.Npts:m.Npts], buf[m.Npts:]
	}
	for t := 0; t < nt; t++ {
		sups := supsByStep[t]
		if len(sups) != len(wav) {
			return nil, fmt.Errorf("core: step %d has %d supports but %d wavelets", t, len(sups), len(wav))
		}
		for s := range sups {
			if len(wav[s]) < nt {
				return nil, fmt.Errorf("core: wavelet %d has %d samples, need %d", s, len(wav[s]), nt)
			}
			sp := &sups[s]
			for c := 0; c < 8; c++ {
				x, y, z := int(sp.X[c]), int(sp.Y[c]), int(sp.Z[c])
				id, ok := m.ID(x, y, z)
				if !ok {
					return nil, fmt.Errorf("core: support point (%d,%d,%d) missing from masks", x, y, z)
				}
				dcmp[t][id] += float32(sp.W[c]) * scale(x, y, z) * wav[s][t]
			}
		}
	}
	return dcmp, nil
}
