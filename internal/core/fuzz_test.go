package core

import (
	"math/rand"
	"testing"

	"wavetile/internal/grid"
	"wavetile/internal/sparse"
)

// FuzzMasks drives the precomputation scheme (Listing 2 → Fig. 5 → Listing
// 5) with random point clouds, asserting the structural invariants every
// fused schedule depends on: SID uniqueness and scan order, nnz/Sp_SID
// consistency, dense/compressed agreement, and region-split injection
// equivalence.
func FuzzMasks(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(12))
	f.Add(int64(99), uint8(1), uint8(5))
	f.Add(int64(7), uint8(20), uint8(20))
	f.Fuzz(func(t *testing.T, seed int64, npts, dim uint8) {
		n := 4 + int(dim%24) // grid edge 4..27
		np := int(npts % 24) // 0..23 off-the-grid points
		rng := rand.New(rand.NewSource(seed))
		pts := &sparse.Points{}
		for i := 0; i < np; i++ {
			pts.Coords = append(pts.Coords, sparse.Coord{
				rng.Float64() * float64(n-1),
				rng.Float64() * float64(n-1),
				rng.Float64() * float64(n-1),
			})
		}
		sups, err := pts.Supports(n, n, n, 1, 1, 1)
		if err != nil {
			t.Fatalf("supports: %v", err)
		}
		m := BuildMasks(n, n, n, sups)

		// SID: ascending scan order, one ID per distinct affected point,
		// and ID() round-trips for every ID.
		seen := map[[3]int32]bool{}
		prevKey := int64(-1)
		for id := 0; id < m.Npts; id++ {
			x, y, z := m.PointX[id], m.PointY[id], m.PointZ[id]
			k := (int64(x)*int64(n)+int64(y))*int64(n) + int64(z)
			if k <= prevKey {
				t.Fatalf("SID %d at (%d,%d,%d) breaks scan order", id, x, y, z)
			}
			prevKey = k
			if seen[[3]int32{x, y, z}] {
				t.Fatalf("grid point (%d,%d,%d) has two IDs", x, y, z)
			}
			seen[[3]int32{x, y, z}] = true
			got, ok := m.ID(int(x), int(y), int(z))
			if !ok || got != int32(id) {
				t.Fatalf("ID round-trip failed at (%d,%d,%d): got %d,%v want %d", x, y, z, got, ok, id)
			}
		}
		// Every support corner maps to some ID.
		for i := range sups {
			for c := 0; c < 8; c++ {
				if _, ok := m.ID(int(sups[i].X[c]), int(sups[i].Y[c]), int(sups[i].Z[c])); !ok {
					t.Fatalf("support corner (%d,%d,%d) missing from masks",
						sups[i].X[c], sups[i].Y[c], sups[i].Z[c])
				}
			}
		}

		// nnz_mask sums to Npts; MaxNNZ is the true column maximum; Sp_SID
		// columns are ascending in z with matching IDs.
		sum, maxnnz := 0, 0
		for col, cnt := range m.NNZ {
			sum += int(cnt)
			if int(cnt) > maxnnz {
				maxnnz = int(cnt)
			}
			for j := 0; j < int(cnt); j++ {
				z := m.SpZ[col*m.MaxNNZ+j]
				id := m.SpID[col*m.MaxNNZ+j]
				if j > 0 && z <= m.SpZ[col*m.MaxNNZ+j-1] {
					t.Fatalf("column %d: Sp_SID z entries not ascending", col)
				}
				x, y := col/n, col%n
				if got, ok := m.ID(x, y, int(z)); !ok || got != id {
					t.Fatalf("column %d entry %d: SpID %d disagrees with ID map", col, j, id)
				}
			}
		}
		if sum != m.Npts {
			t.Fatalf("nnz_mask sums to %d, Npts is %d", sum, m.Npts)
		}
		if maxnnz != m.MaxNNZ {
			t.Fatalf("MaxNNZ %d, columns say %d", m.MaxNNZ, maxnnz)
		}

		// Dense materializations agree with the compressed structures.
		sm, sid := m.DenseSM(), m.DenseSID()
		for i := range sm {
			if (sm[i] == 1) != (sid[i] >= 0) {
				t.Fatalf("DenseSM and DenseSID disagree at linear index %d", i)
			}
		}

		// Injection through any region split equals full-region injection,
		// bitwise — the disjointness property that makes fusion legal.
		if m.Npts > 0 {
			src := make([]float32, m.Npts)
			for i := range src {
				src[i] = rng.Float32()*2 - 1
			}
			full := grid.New(n, n, n, 0)
			m.InjectRegion(full, grid.FullRegion(n, n), src)
			split := grid.New(n, n, n, 0)
			bx, by := 1+int(dim%5), 1+int(npts%5)
			for _, b := range grid.FullRegion(n, n).SplitBlocks(bx, by) {
				m.InjectRegion(split, b, src)
			}
			if !full.Equal(split) {
				t.Fatalf("split-region injection differs from full-region injection (blocks %dx%d)", bx, by)
			}
		}
	})
}
