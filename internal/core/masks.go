// Package core implements the paper's primary contribution: the
// precomputation scheme that aligns sparse off-the-grid operators (source
// injection, receiver measurement interpolation) with the computational
// grid, so that their effect can be fused into the stencil loop nest and
// temporal blocking becomes legal (paper §II-A, Listings 2–5, Figs. 5–6).
//
// The pipeline is:
//
//  1. Iterate the sources' coordinates and record the indices of affected
//     grid points (Listing 2) — BuildMasks.
//  2. Generate a sparse binary mask (SM) and unique ascending IDs (SID) for
//     every affected point (Fig. 5b/5c) — Masks.
//  3. Decompose the off-the-grid wavefields into per-affected-point,
//     grid-aligned wavefields src_dcmp[t][id] (Listing 3, Fig. 5d) —
//     DecomposeWavelets.
//  4. Fuse the injection into the kernel's iteration space (Listing 4) —
//     InjectRegion, called by the propagators inside their blocked loops.
//  5. Reduce the iteration space with nnz_mask and Sp_SID so only affected
//     z entries are visited (Listing 5, Fig. 6) — the compressed layout is
//     what InjectRegion iterates.
//
// Receivers get the symmetric treatment: Sampler records the wavefield value
// at every affected grid point while it is live inside a space-time tile;
// the receiver traces are gathered from the recorded point wavefields after
// the time loop (GatherReceivers).
package core

import (
	"fmt"

	"wavetile/internal/grid"
	"wavetile/internal/sparse"
)

// Masks holds the grid-aligned description of a set of off-the-grid points:
// the unique affected grid points (npts of them, identified by ascending IDs
// in x→y→z scan order, the paper's SID) and the compressed per-column
// iteration structures nnz_mask and Sp_SID of Listing 5.
type Masks struct {
	Nx, Ny, Nz int
	Npts       int

	// PointX/Y/Z give the grid coordinates of each ID (the inverse of SID).
	PointX, PointY, PointZ []int32

	// NNZ is the paper's nnz_mask: NNZ[x*Ny+y] counts the affected z
	// entries in column (x, y).
	NNZ []int32
	// MaxNNZ is the deepest column; SpZ/SpID are rectangular with this depth.
	MaxNNZ int
	// SpZ is the paper's Sp_SID: SpZ[(x*Ny+y)*MaxNNZ + j] is the z index of
	// the j-th affected entry of column (x, y), for j < NNZ[x*Ny+y].
	SpZ []int32
	// SpID carries the matching unique ID, so the fused loop reads the
	// decomposed wavefield with a single indirection.
	SpID []int32

	idOf map[int64]int32 // (x,y,z) key → ID; npts entries
}

func key(nx, ny, nz int, x, y, z int32) int64 {
	return (int64(x)*int64(ny)+int64(y))*int64(nz) + int64(z)
}

// BuildMasks performs steps 1–2 and 5 of the scheme for the given supports
// (one per off-the-grid point, from sparse.Points.Supports). Duplicate grid
// points — "it is quite common to encounter points being affected by more
// than one source" — collapse onto a single ID. IDs ascend in x→y→z scan
// order as in Fig. 5c.
func BuildMasks(nx, ny, nz int, sups []sparse.Support) *Masks {
	m := &Masks{
		Nx: nx, Ny: ny, Nz: nz,
		NNZ:  make([]int32, nx*ny),
		idOf: make(map[int64]int32),
	}
	// Step 1–2: mark affected points in a transient bitset (the SM binary
	// mask; kept packed since only its nonzero structure matters from here
	// on).
	bits := make([]uint64, (nx*ny*nz+63)/64)
	for i := range sups {
		sp := &sups[i]
		for c := 0; c < 8; c++ {
			k := key(nx, ny, nz, sp.X[c], sp.Y[c], sp.Z[c])
			bits[k>>6] |= 1 << uint(k&63)
		}
	}
	// Scan in ascending order, assigning IDs and column counts.
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			col := (int64(x)*int64(ny) + int64(y)) * int64(nz)
			for z := 0; z < nz; z++ {
				k := col + int64(z)
				if bits[k>>6]&(1<<uint(k&63)) == 0 {
					continue
				}
				id := int32(m.Npts)
				m.idOf[k] = id
				m.PointX = append(m.PointX, int32(x))
				m.PointY = append(m.PointY, int32(y))
				m.PointZ = append(m.PointZ, int32(z))
				m.NNZ[x*ny+y]++
				m.Npts++
			}
		}
	}
	// Step 5: compressed per-column z lists (nnz_mask already built).
	for _, c := range m.NNZ {
		if int(c) > m.MaxNNZ {
			m.MaxNNZ = int(c)
		}
	}
	if m.MaxNNZ > 0 {
		m.SpZ = make([]int32, nx*ny*m.MaxNNZ)
		m.SpID = make([]int32, nx*ny*m.MaxNNZ)
		fill := make([]int32, nx*ny)
		for id := 0; id < m.Npts; id++ {
			x, y, z := m.PointX[id], m.PointY[id], m.PointZ[id]
			col := int(x)*ny + int(y)
			j := fill[col]
			m.SpZ[col*m.MaxNNZ+int(j)] = z
			m.SpID[col*m.MaxNNZ+int(j)] = int32(id)
			fill[col] = j + 1
		}
	}
	return m
}

// ID returns the unique ID of grid point (x, y, z) and whether the point is
// affected at all.
func (m *Masks) ID(x, y, z int) (int32, bool) {
	id, ok := m.idOf[key(m.Nx, m.Ny, m.Nz, int32(x), int32(y), int32(z))]
	return id, ok
}

// DenseSM materializes the binary mask SM of Fig. 5b (1 at affected points).
// Intended for tests and illustration on small grids.
func (m *Masks) DenseSM() []uint8 {
	sm := make([]uint8, m.Nx*m.Ny*m.Nz)
	for id := 0; id < m.Npts; id++ {
		sm[(int(m.PointX[id])*m.Ny+int(m.PointY[id]))*m.Nz+int(m.PointZ[id])] = 1
	}
	return sm
}

// DenseSID materializes the ID grid of Fig. 5c, with -1 at unaffected
// points. Intended for tests and illustration on small grids.
func (m *Masks) DenseSID() []int32 {
	sid := make([]int32, m.Nx*m.Ny*m.Nz)
	for i := range sid {
		sid[i] = -1
	}
	for id := 0; id < m.Npts; id++ {
		sid[(int(m.PointX[id])*m.Ny+int(m.PointY[id]))*m.Nz+int(m.PointZ[id])] = int32(id)
	}
	return sid
}

// DecomposeWavelets is Listing 3: it converts per-source wavelets
// (wav[s][t], one series per off-the-grid point whose support is sups[s])
// into per-affected-grid-point wavefields src_dcmp[t][id], folding in the
// interpolation weight and the per-point injection scale (e.g. dt²/m).
// After this step the sources are grid-aligned (Fig. 5d) and the injection
// at time t reduces to u[pt] += src_dcmp[t][SID[pt]].
func (m *Masks) DecomposeWavelets(sups []sparse.Support, wav [][]float32, nt int, scale sparse.ScaleFunc) ([][]float32, error) {
	if len(sups) != len(wav) {
		return nil, fmt.Errorf("core: %d supports but %d wavelets", len(sups), len(wav))
	}
	dcmp := make([][]float32, nt)
	buf := make([]float32, nt*m.Npts)
	for t := range dcmp {
		dcmp[t], buf = buf[:m.Npts:m.Npts], buf[m.Npts:]
	}
	for s := range sups {
		sp := &sups[s]
		if len(wav[s]) < nt {
			return nil, fmt.Errorf("core: wavelet %d has %d samples, need %d", s, len(wav[s]), nt)
		}
		for c := 0; c < 8; c++ {
			x, y, z := int(sp.X[c]), int(sp.Y[c]), int(sp.Z[c])
			id, ok := m.ID(x, y, z)
			if !ok {
				return nil, fmt.Errorf("core: support point (%d,%d,%d) missing from masks", x, y, z)
			}
			w := float32(sp.W[c]) * scale(x, y, z)
			for t := 0; t < nt; t++ {
				dcmp[t][id] += w * wav[s][t]
			}
		}
	}
	return dcmp, nil
}

// InjectRegion is the fused, compressed source injection of Listing 5,
// restricted to the x–y region reg (which the schedules guarantee is visited
// exactly once per timestep): for every affected point in the region,
// u[x,y,z] += src[id]. src is one time-slice of the decomposed wavefield,
// src_dcmp[t].
//
// Distinct regions touch distinct grid points and distinct IDs, so parallel
// calls on the disjoint blocks of a schedule are race-free.
func (m *Masks) InjectRegion(u *grid.Grid, reg grid.Region, src []float32) {
	if m.Npts == 0 {
		return
	}
	for x := reg.X0; x < reg.X1; x++ {
		rowBase := x * m.Ny
		for y := reg.Y0; y < reg.Y1; y++ {
			cnt := int(m.NNZ[rowBase+y])
			if cnt == 0 {
				continue
			}
			sp := (rowBase + y) * m.MaxNNZ
			row := u.Row(x, y)
			for j := 0; j < cnt; j++ {
				row[m.SpZ[sp+j]] += src[m.SpID[sp+j]]
			}
		}
	}
}
