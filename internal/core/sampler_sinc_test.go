package core

import (
	"math"
	"math/rand"
	"testing"

	"wavetile/internal/grid"
	"wavetile/internal/sparse"
)

// Sampler coverage for the two hard off-the-grid regimes: Kaiser-windowed
// sinc receiver supports (64 weight groups per receiver instead of 1) and
// masks built over a moving source's union footprint (points that are only
// live at some timesteps).

// TestSamplerSincReceivers checks the fused sampling path under windowed-
// sinc measurement interpolation: recording the 8³-point supports and
// summing their gathered groups must match the direct wide interpolation.
func TestSamplerSincReceivers(t *testing.T) {
	n, h, nt := 18, 10.0, 4
	rec := &sparse.Points{Coords: []sparse.Coord{
		{71.3, 80.2, 93.7}, {60, 60, 60}, {88.8, 77.1, 65.4},
	}}
	sup, groups, err := rec.SincSupports(n, n, n, h, h, h)
	if err != nil {
		t.Fatal(err)
	}
	if groups != 64 {
		t.Fatalf("sinc supports pack %d groups per receiver, want 64 (8³/8)", groups)
	}
	m := BuildMasks(n, n, n, sup)
	s := NewSampler(m, nt)

	rng := rand.New(rand.NewSource(11))
	u := grid.New(n, n, n, 0)
	for tt := 0; tt < nt; tt++ {
		u.FillFunc(func(x, y, z int) float32 {
			return float32(math.Sin(float64(x*13+y*7+z*3)+float64(tt))) * (1 + rng.Float32())
		})
		s.SampleRegion(tt, u, grid.FullRegion(n, n))

		got, err := s.GatherReceivers(sup)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rec.N(); r++ {
			// Sum the receiver's groups as wave.SparseOps.Receivers does.
			var fused float32
			for g := 0; g < groups; g++ {
				fused += got[tt][r*groups+g]
			}
			// Direct: the full 512-point weighted sum from the wide support.
			ws, err := sparse.SincSupport(rec.Coords[r], n, n, n, h, h, h)
			if err != nil {
				t.Fatal(err)
			}
			direct := 0.0
			for i := range ws.W {
				direct += ws.W[i] * float64(u.At(int(ws.X[i]), int(ws.Y[i]), int(ws.Z[i])))
			}
			if d := math.Abs(float64(fused) - direct); d > 1e-4*math.Max(1, math.Abs(direct)) {
				t.Fatalf("t=%d rec %d: fused sinc sample %g, direct %g (diff %g)", tt, r, fused, direct, d)
			}
		}
	}
}

// TestSamplerOnMovingUnionMasks attaches the sampler to masks built over a
// moving source's union footprint. Every affected point must record the
// wavefield value of the timestep being sampled — including points whose
// source only visits them at other timesteps — so fused WTB tiles can
// sample mid-tile without knowing which points are "currently" live.
func TestSamplerOnMovingUnionMasks(t *testing.T) {
	n, h, nt := 14, 10.0, 6
	// A tow path crossing several cells: position at step tt.
	coordAt := func(tt int) sparse.Coord {
		f := float64(tt) / float64(nt)
		return sparse.Coord{25 + 70*f, 33 + 40*f, 41 + 55*f}
	}
	supsByStep := make([][]sparse.Support, nt)
	for tt := 0; tt < nt; tt++ {
		pts := sparse.Single(coordAt(tt))
		sup, err := pts.Supports(n, n, n, h, h, h)
		if err != nil {
			t.Fatal(err)
		}
		supsByStep[tt] = sup
	}
	m := BuildMovingMasks(n, n, n, supsByStep)
	// The union must cover every step's corners and hold more points than
	// any single step's 8-point support.
	if m.Npts <= 8 {
		t.Fatalf("union masks hold %d points; the path should touch more than one support", m.Npts)
	}
	for tt := 0; tt < nt; tt++ {
		for i := range supsByStep[tt] {
			sp := &supsByStep[tt][i]
			for c := 0; c < 8; c++ {
				if _, ok := m.ID(int(sp.X[c]), int(sp.Y[c]), int(sp.Z[c])); !ok {
					t.Fatalf("step %d corner (%d,%d,%d) missing from union masks", tt, sp.X[c], sp.Y[c], sp.Z[c])
				}
			}
		}
	}

	s := NewSampler(m, nt)
	u := grid.New(n, n, n, 0)
	for tt := 0; tt < nt; tt++ {
		u.FillFunc(func(x, y, z int) float32 { return float32((x*100 + y*10 + z) * (tt + 1)) })
		s.SampleRegion(tt, u, grid.FullRegion(n, n))
		// Every union point records this step's value, live or not.
		for id := 0; id < m.Npts; id++ {
			x, y, z := int(m.PointX[id]), int(m.PointY[id]), int(m.PointZ[id])
			if want := float32((x*100 + y*10 + z) * (tt + 1)); s.Data[tt][id] != want {
				t.Fatalf("t=%d id=%d at (%d,%d,%d): recorded %g, want %g", tt, id, x, y, z, s.Data[tt][id], want)
			}
		}
	}

	// The per-step interpolation through the union sampler matches direct
	// interpolation with that step's own support — the property the moving
	// receiver-side path would rely on.
	for tt := 0; tt < nt; tt++ {
		u.FillFunc(func(x, y, z int) float32 { return float32((x*100 + y*10 + z) * (tt + 1)) })
		traces, err := s.GatherReceivers(supsByStep[tt])
		if err != nil {
			t.Fatal(err)
		}
		direct := make([]float32, 1)
		sparse.Interpolate(u, supsByStep[tt], direct)
		if traces[tt][0] != direct[0] {
			t.Fatalf("t=%d: union-mask gather %g, direct %g", tt, traces[tt][0], direct[0])
		}
	}
}
