package autotune

import (
	"testing"

	"wavetile/internal/grid"
	"wavetile/internal/tiling"
)

// sleepProp is a propagator whose Step cost depends on the configuration in
// a controlled way: it counts Step invocations, so configurations creating
// more (smaller, more-clamped) tiles take measurably longer in aggregate
// work executed by the tuner.
type sleepProp struct {
	nx, ny, nt int
	calls      int
}

func (s *sleepProp) GridShape() (int, int) { return s.nx, s.ny }
func (s *sleepProp) Steps() int            { return s.nt }
func (s *sleepProp) TimeSkew() int         { return 2 }
func (s *sleepProp) MaxPhaseOffset() int   { return 0 }
func (s *sleepProp) MinTile() int          { return 4 }
func (s *sleepProp) SetBlocks(bx, by int)  {}
func (s *sleepProp) ApplySparse(int)       {}
func (s *sleepProp) Step(t int, r grid.Region, fused bool) {
	// Simulate per-tile overhead plus per-point work.
	s.calls++
	reg := r.Clamp(s.nx, s.ny)
	sink := 0
	for i := 0; i < reg.NumPoints()+500; i++ {
		sink += i
	}
	_ = sink
}

func TestCandidatesRespectConstraints(t *testing.T) {
	cands := Candidates(128, 96, 16, []int{8, 16})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range cands {
		if c.TileX < 16 || c.TileY < 16 {
			t.Fatalf("candidate below margin: %v", c)
		}
		if c.TileX > 128 || c.TileY > 96 {
			t.Fatalf("candidate beyond grid: %v", c)
		}
		if c.BlockX > c.TileX || c.BlockY > c.TileY {
			t.Fatalf("block exceeds tile: %v", c)
		}
		if c.TT != 8 && c.TT != 16 {
			t.Fatalf("unexpected TT: %v", c)
		}
	}
}

func TestCandidatesEmptyWhenImpossible(t *testing.T) {
	if cands := Candidates(8, 8, 64, []int{8}); len(cands) != 0 {
		t.Fatalf("impossible margin produced candidates: %d", len(cands))
	}
}

func TestTuneReturnsSortedResults(t *testing.T) {
	p := &sleepProp{nx: 64, ny: 64, nt: 4}
	run := func(nt int) (tiling.Propagator, error) { return p, nil }
	cands := []tiling.Config{
		{TT: 4, TileX: 8, TileY: 8, BlockX: 8, BlockY: 8},
		{TT: 4, TileX: 32, TileY: 32, BlockX: 8, BlockY: 8},
		{TT: 4, TileX: 64, TileY: 64, BlockX: 8, BlockY: 8},
	}
	res, err := Tune(run, 4, 2, 64*64, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(cands) {
		t.Fatalf("%d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Elapsed < res[i-1].Elapsed {
			t.Fatal("results not sorted by time")
		}
	}
	for _, r := range res {
		if r.GPts <= 0 {
			t.Fatalf("non-positive throughput: %+v", r)
		}
	}
	best, err := Best(run, 4, 1, 64*64, cands)
	if err != nil {
		t.Fatal(err)
	}
	if best.TileX == 0 {
		t.Fatal("empty best config")
	}
}

func TestTuneNoCandidates(t *testing.T) {
	if _, err := Tune(func(int) (tiling.Propagator, error) { return nil, nil }, 1, 1, 1, nil); err == nil {
		t.Fatal("empty candidate list accepted")
	}
}
