package autotune

import (
	"fmt"
	"sort"
	"time"

	"wavetile/internal/cachesim"
	"wavetile/internal/roofline"
	"wavetile/internal/tiling"
)

// ---------------------------------------------------------------------------
// Predictive tuning: rank the sweep grid by calibrated-roofline evaluation,
// measure only the top-K candidates. The full sweep runs every candidate on
// hardware (minutes); the predictor replays each candidate's schedule on a
// small trace grid through the cache simulator (milliseconds) and evaluates
// a measured-machine roofline — an O(1)-cost model evaluation per candidate
// in place of a wall-clock measurement.

// TrafficFn returns the simulated cache traffic of one schedule
// configuration — typically a memoized trace-grid replay supplied by
// internal/bench, so autotune stays independent of the physics packages.
type TrafficFn func(tiling.Config) (cachesim.Traffic, error)

// PredictOptions controls TunePredict.
type PredictOptions struct {
	// TopK is how many of the best-predicted candidates to confirm with
	// wall-clock measurements. 0 is pure zero-shot: trust the model, run
	// nothing.
	TopK int
	// TuneSteps and Repeats control the confirmation measurements, exactly
	// as in TuneWith.
	TuneSteps int
	Repeats   int
	// Points is the grid points updated per timestep (for GPts/s of the
	// confirmation runs).
	Points int
}

// PredictResult is one candidate's predicted — and possibly measured —
// standing.
type PredictResult struct {
	Cfg       tiling.Config
	Predicted roofline.Prediction
	// PredRank is the candidate's position (0 = best) in the model ranking.
	PredRank int
	// Measured is set on the top-K candidates that were confirmed on
	// hardware; Elapsed/GPts are only meaningful when it is.
	Measured bool
	Elapsed  time.Duration
	GPts     float64
}

// TunePredict ranks every candidate by the calibrated roofline — replaying
// its schedule through the cache simulator via traffic — and measures only
// the TopK best-predicted ones. flops and points are the per-run totals the
// predictions are evaluated at (matching the trace runs behind traffic; only
// the ranking matters, and it transfers to the full grid).
//
// The returned slice is winner-first: measured candidates sorted by measured
// time, then the rest sorted by predicted time. With TopK = 0 the order is
// purely model-ranked. The ranking is deterministic: stable in the candidate
// order on predicted-time ties, and the cache simulation itself is exact.
func TunePredict(cal roofline.Calibrated, flops, points float64, traffic TrafficFn,
	cands []tiling.Config, run Runner, exec Exec, o PredictOptions) ([]PredictResult, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("autotune: no candidates")
	}
	results := make([]PredictResult, 0, len(cands))
	for _, cfg := range cands {
		t, err := traffic(cfg)
		if err != nil {
			return nil, fmt.Errorf("autotune: trace replay of %s: %w", cfg, err)
		}
		results = append(results, PredictResult{Cfg: cfg, Predicted: cal.Predict(flops, points, t)})
	}
	sort.SliceStable(results, func(i, j int) bool {
		return results[i].Predicted.Seconds < results[j].Predicted.Seconds
	})
	for i := range results {
		results[i].PredRank = i
	}

	k := o.TopK
	if k > len(results) {
		k = len(results)
	}
	if k > 0 {
		repeats := o.Repeats
		if repeats < 1 {
			repeats = 1
		}
		for i := 0; i < k; i++ {
			best := time.Duration(0)
			for r := 0; r < repeats; r++ {
				p, err := run(o.TuneSteps)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				if err := exec(p, results[i].Cfg); err != nil {
					return nil, err
				}
				el := time.Since(start)
				if best == 0 || el < best {
					best = el
				}
			}
			results[i].Measured = true
			results[i].Elapsed = best
			results[i].GPts = float64(o.Points) * float64(o.TuneSteps) / best.Seconds() / 1e9
		}
		// Within the measured prefix, the wall clock has the final word.
		sort.SliceStable(results[:k], func(i, j int) bool {
			return results[i].Elapsed < results[j].Elapsed
		})
	}
	return results, nil
}
