package autotune

import (
	"testing"

	"wavetile/internal/cachesim"
	"wavetile/internal/grid"
	"wavetile/internal/roofline"
	"wavetile/internal/tiling"
)

// fakeTraffic gives each configuration a deterministic DRAM cost keyed on
// TT: deeper time tiles → less traffic, mirroring temporal blocking.
func fakeTraffic(cfg tiling.Config) (cachesim.Traffic, error) {
	lines := uint64(1e9) / uint64(cfg.TT) / cachesim.LineSize
	return cachesim.Traffic{
		Boundary:  []uint64{4 * lines, 2 * lines, lines},
		DRAMBytes: lines * cachesim.LineSize,
	}, nil
}

func predictCands() []tiling.Config {
	return []tiling.Config{
		{TT: 1, TileX: 32, TileY: 32, BlockX: 8, BlockY: 8},
		{TT: 8, TileX: 32, TileY: 32, BlockX: 8, BlockY: 8},
		{TT: 2, TileX: 64, TileY: 64, BlockX: 8, BlockY: 8},
		{TT: 4, TileX: 64, TileY: 64, BlockX: 8, BlockY: 8},
	}
}

func TestTunePredictZeroShot(t *testing.T) {
	runs := 0
	run := func(nt int) (tiling.Propagator, error) {
		runs++
		return &sleepProp{nx: 64, ny: 64, nt: nt}, nil
	}
	exec := func(p tiling.Propagator, cfg tiling.Config) error { return nil }
	cal := roofline.Calibrated{Machine: roofline.Broadwell(), BWEff: 0.8, OverheadNSPerPoint: 1}
	res, err := TunePredict(cal, 1e8, 1e7, fakeTraffic, predictCands(), run, exec,
		PredictOptions{TopK: 0})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 0 {
		t.Fatalf("zero-shot mode ran %d measurements", runs)
	}
	if len(res) != 4 {
		t.Fatalf("%d results", len(res))
	}
	// Least traffic (deepest TT) must be predicted fastest.
	if res[0].Cfg.TT != 8 {
		t.Fatalf("predicted winner TT=%d, want 8", res[0].Cfg.TT)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Predicted.Seconds < res[i-1].Predicted.Seconds {
			t.Fatal("not sorted by predicted time")
		}
		if res[i].PredRank != i {
			t.Fatalf("rank %d at position %d", res[i].PredRank, i)
		}
		if res[i].Measured {
			t.Fatal("zero-shot result marked measured")
		}
	}
}

func TestTunePredictMeasuresOnlyTopK(t *testing.T) {
	const k, repeats = 2, 2
	runs := 0
	run := func(nt int) (tiling.Propagator, error) {
		runs++
		return &sleepProp{nx: 64, ny: 64, nt: nt}, nil
	}
	exec := func(p tiling.Propagator, cfg tiling.Config) error {
		// Touch the propagator the way a real schedule would.
		p.Step(0, grid.Region{X0: 0, X1: 16, Y0: 0, Y1: 16}, false)
		return nil
	}
	cal := roofline.Calibrated{Machine: roofline.Broadwell(), BWEff: 1}
	res, err := TunePredict(cal, 1e8, 1e7, fakeTraffic, predictCands(), run, exec,
		PredictOptions{TopK: k, TuneSteps: 4, Repeats: repeats, Points: 64 * 64})
	if err != nil {
		t.Fatal(err)
	}
	if runs != k*repeats {
		t.Fatalf("ran %d measurements, want exactly TopK·Repeats = %d", runs, k*repeats)
	}
	measured := 0
	for _, r := range res {
		if r.Measured {
			measured++
			if r.Elapsed <= 0 || r.GPts <= 0 {
				t.Fatalf("measured entry without timing: %+v", r)
			}
		}
	}
	if measured != k {
		t.Fatalf("%d measured entries, want %d", measured, k)
	}
	// Measured candidates lead the result, ordered by wall clock.
	if !res[0].Measured || !res[1].Measured || res[2].Measured {
		t.Fatalf("measured prefix broken: %v %v %v", res[0].Measured, res[1].Measured, res[2].Measured)
	}
	if res[1].Elapsed < res[0].Elapsed {
		t.Fatal("measured prefix not sorted by elapsed")
	}
}

func TestTunePredictTopKExceedingCandidates(t *testing.T) {
	run := func(nt int) (tiling.Propagator, error) {
		return &sleepProp{nx: 64, ny: 64, nt: nt}, nil
	}
	exec := func(p tiling.Propagator, cfg tiling.Config) error { return nil }
	cal := roofline.Calibrated{Machine: roofline.Broadwell()}
	res, err := TunePredict(cal, 1e8, 1e7, fakeTraffic, predictCands(), run, exec,
		PredictOptions{TopK: 100, TuneSteps: 1, Points: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if !r.Measured {
			t.Fatal("TopK beyond candidate count must measure everything")
		}
	}
}

func TestTunePredictDeterministicRanking(t *testing.T) {
	cal := roofline.Calibrated{Machine: roofline.Broadwell(), BWEff: 0.7, OverheadNSPerPoint: 2}
	rank := func() []tiling.Config {
		res, err := TunePredict(cal, 1e8, 1e7, fakeTraffic, predictCands(), nil, nil,
			PredictOptions{TopK: 0})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]tiling.Config, len(res))
		for i, r := range res {
			out[i] = r.Cfg
		}
		return out
	}
	a, b := rank(), rank()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ranking not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTunePredictEmptyCandidates(t *testing.T) {
	_, err := TunePredict(roofline.Calibrated{Machine: roofline.Broadwell()},
		1, 1, fakeTraffic, nil, nil, nil, PredictOptions{})
	if err == nil {
		t.Fatal("empty candidate list accepted")
	}
}
