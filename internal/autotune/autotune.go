// Package autotune sweeps the wave-front temporal-blocking parameter space
// — time-tile depth, tile shape, block shape — and picks the fastest
// configuration, reproducing the paper's §IV-C procedure ("we swept over
// the whole parameter space to find the global performance maxima") that
// yields the optimal tile/block shapes of Table I.
package autotune

import (
	"fmt"
	"sort"
	"time"

	"wavetile/internal/tiling"
)

// Result records one measured configuration.
type Result struct {
	Cfg     tiling.Config
	Elapsed time.Duration
	GPts    float64 // GPoints/s over the tuning run
}

// Candidates builds the sweep grid: tiles from the dependency margin up to
// the domain edge in powers of two, the paper's block shapes, and the given
// time-tile depths. Illegal combinations (tile below margin) are dropped.
func Candidates(nx, ny, minTile int, tts []int) []tiling.Config {
	tileSizes := []int{16, 32, 40, 48, 56, 64, 128, 256}
	blockSizes := []int{4, 8, 12, 16}
	var out []tiling.Config
	for _, tt := range tts {
		for _, tx := range tileSizes {
			if tx < minTile || tx > nx {
				continue
			}
			for _, ty := range tileSizes {
				if ty < minTile || ty > ny {
					continue
				}
				for _, bx := range blockSizes {
					if bx > tx {
						continue
					}
					for _, by := range blockSizes {
						if by > ty {
							continue
						}
						out = append(out, tiling.Config{TT: tt, TileX: tx, TileY: ty, BlockX: bx, BlockY: by})
					}
				}
			}
		}
	}
	return out
}

// Runner builds a fresh (or reset) propagator limited to nt timesteps for
// one tuning measurement.
type Runner func(nt int) (tiling.Propagator, error)

// Exec runs one schedule configuration on a propagator — the quantity being
// tuned. tiling.RunWTB and tiling.RunWTBPipelined both satisfy it, so the
// same sweep grid tunes either the sequential-tile or the task-graph
// runtime.
type Exec func(tiling.Propagator, tiling.Config) error

// Tune measures every candidate over tuneSteps timesteps (repeats times,
// best-of) and returns all results sorted fastest-first. points is the
// number of grid points updated per timestep (for GPts/s). The schedule
// executed is tiling.RunWTB; use TuneWith to sweep a different runtime.
func Tune(run Runner, tuneSteps, repeats int, points int, cands []tiling.Config) ([]Result, error) {
	return TuneWith(run, tiling.RunWTB, tuneSteps, repeats, points, cands)
}

// TuneWith is Tune with an explicit schedule executor.
func TuneWith(run Runner, exec Exec, tuneSteps, repeats int, points int, cands []tiling.Config) ([]Result, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("autotune: no candidates")
	}
	if repeats < 1 {
		repeats = 1
	}
	results := make([]Result, 0, len(cands))
	for _, cfg := range cands {
		best := time.Duration(0)
		for r := 0; r < repeats; r++ {
			p, err := run(tuneSteps)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if err := exec(p, cfg); err != nil {
				return nil, err
			}
			el := time.Since(start)
			if best == 0 || el < best {
				best = el
			}
		}
		results = append(results, Result{
			Cfg:     cfg,
			Elapsed: best,
			GPts:    float64(points) * float64(tuneSteps) / best.Seconds() / 1e9,
		})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Elapsed < results[j].Elapsed })
	return results, nil
}

// Best is a convenience wrapper returning only the winning configuration.
func Best(run Runner, tuneSteps, repeats, points int, cands []tiling.Config) (tiling.Config, error) {
	res, err := Tune(run, tuneSteps, repeats, points, cands)
	if err != nil {
		return tiling.Config{}, err
	}
	return res[0].Cfg, nil
}
