package autotune

import (
	"testing"

	"wavetile/internal/grid"
	"wavetile/internal/tiling"
)

// kernProp is a fake kernel-tunable propagator: variant "fast" does less
// per-step busywork than "slow", so the tuner must rank it first.
type kernProp struct {
	sleepProp
	variants []string
	variant  string
	work     map[string]int
}

func (k *kernProp) KernelVariants() []string { return k.variants }
func (k *kernProp) SetKernelVariant(v string) error {
	k.variant = v
	return nil
}
func (k *kernProp) Step(t int, r grid.Region, fused bool) {
	sink := 0
	for i := 0; i < k.work[k.variant]; i++ {
		sink += i
	}
	_ = sink
}

func kernRunner(variants []string) Runner {
	return func(nt int) (tiling.Propagator, error) {
		return &kernProp{
			sleepProp: sleepProp{nx: 32, ny: 32, nt: nt},
			variants:  variants,
			work:      map[string]int{"fast": 2_000, "slow": 2_000_000},
		}, nil
	}
}

func execSpatial(p tiling.Propagator, _ tiling.Config) error {
	tiling.RunSpatial(p, 16, 16, true)
	return nil
}

func TestTuneKernelVariantsRanksFastest(t *testing.T) {
	res, err := TuneKernelVariants(kernRunner([]string{"slow", "fast"}), execSpatial, tiling.Config{}, 4, 2, 32*32)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	if res[0].Variant != "fast" {
		t.Fatalf("winner = %q, want fast (order %v)", res[0].Variant, res)
	}
	if res[0].Elapsed <= 0 || res[0].GPts <= 0 {
		t.Fatalf("degenerate measurement: %+v", res[0])
	}
	best, err := BestKernelVariant(kernRunner([]string{"slow", "fast"}), execSpatial, tiling.Config{}, 4, 2, 32*32)
	if err != nil {
		t.Fatal(err)
	}
	if best != "fast" {
		t.Fatalf("BestKernelVariant = %q, want fast", best)
	}
}

func TestTuneKernelVariantsErrors(t *testing.T) {
	// Generic-only radius: no variants to sweep is an error, not a win.
	if _, err := TuneKernelVariants(kernRunner(nil), execSpatial, tiling.Config{}, 2, 1, 32*32); err == nil {
		t.Fatal("expected error for empty variant list")
	}
	// Propagator without the kernel-variant surface.
	plain := func(nt int) (tiling.Propagator, error) {
		return &sleepProp{nx: 32, ny: 32, nt: nt}, nil
	}
	if _, err := TuneKernelVariants(plain, execSpatial, tiling.Config{}, 2, 1, 32*32); err == nil {
		t.Fatal("expected error for non-tunable propagator")
	}
}
