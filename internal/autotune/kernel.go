package autotune

import (
	"fmt"
	"sort"
	"time"

	"wavetile/internal/tiling"
)

// KernelTunable is the kernel-variant surface the generated-kernel
// dispatch exposes (implemented by all three wave propagators and by
// wavesim.Simulation). Variants are bitwise-identical per point — only
// loop structure differs — so sweeping them is a pure performance choice
// with no numerical consequences.
type KernelTunable interface {
	KernelVariants() []string
	SetKernelVariant(string) error
}

// KernelResult records one measured kernel variant.
type KernelResult struct {
	Variant string
	Elapsed time.Duration
	GPts    float64
}

// TuneKernelVariants measures every generated kernel variant of the
// propagators built by run under the given schedule executor and config
// (use a zero Config with an Exec that ignores it to tune the spatial
// schedule), returning results sorted fastest-first. The propagator must
// implement KernelTunable; an empty variant list (generic-only radius)
// returns an error rather than a hollow win.
func TuneKernelVariants(run Runner, exec Exec, cfg tiling.Config, tuneSteps, repeats, points int) ([]KernelResult, error) {
	probe, err := run(tuneSteps)
	if err != nil {
		return nil, err
	}
	kt, ok := probe.(KernelTunable)
	if !ok {
		return nil, fmt.Errorf("autotune: propagator %T has no kernel variants", probe)
	}
	variants := kt.KernelVariants()
	if len(variants) == 0 {
		return nil, fmt.Errorf("autotune: no generated kernel variants for this radius (generic fallback only)")
	}
	if repeats < 1 {
		repeats = 1
	}
	results := make([]KernelResult, 0, len(variants))
	for _, v := range variants {
		best := time.Duration(0)
		for r := 0; r < repeats; r++ {
			p, err := run(tuneSteps)
			if err != nil {
				return nil, err
			}
			if err := p.(KernelTunable).SetKernelVariant(v); err != nil {
				return nil, err
			}
			start := time.Now()
			if err := exec(p, cfg); err != nil {
				return nil, err
			}
			el := time.Since(start)
			if best == 0 || el < best {
				best = el
			}
		}
		results = append(results, KernelResult{
			Variant: v,
			Elapsed: best,
			GPts:    float64(points) * float64(tuneSteps) / best.Seconds() / 1e9,
		})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Elapsed < results[j].Elapsed })
	return results, nil
}

// BestKernelVariant returns only the winning variant name.
func BestKernelVariant(run Runner, exec Exec, cfg tiling.Config, tuneSteps, repeats, points int) (string, error) {
	res, err := TuneKernelVariants(run, exec, cfg, tuneSteps, repeats, points)
	if err != nil {
		return "", err
	}
	return res[0].Variant, nil
}
