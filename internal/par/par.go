// Package par is the shared-memory parallel runtime of the repository: a
// dynamically scheduled parallel-for over a fixed worker count, the
// stand-in for the paper's "OpenMP shared-memory parallelism with dynamic
// scheduling". Work items are claimed in small chunks off an atomic counter,
// so uneven item costs (clamped edge blocks, sparse-operator blocks) balance
// automatically.
//
// Worker goroutines are persistent: the first parallel call lazily starts a
// pool of up to Workers−1 helpers that park on a channel between calls, so
// the wave-front temporal-blocking schedule — which issues one parallel-for
// per space tile per local timestep, thousands per run — pays a channel
// wake-up per helper instead of a goroutine spawn + teardown per call.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers is the degree of parallelism used by For. It defaults to
// GOMAXPROCS and may be lowered (e.g. to 1) to serialize execution for
// debugging, or raised to grow the persistent pool; values < 1 are treated
// as 1. It must not be mutated concurrently with parallel calls.
var Workers = runtime.GOMAXPROCS(0)

// For invokes f(i) for every i in [0, n), distributing iterations across
// workers with dynamic chunked claiming. It returns when all iterations are
// complete. f must be safe for concurrent calls with distinct i.
//
// Zero and negative n return immediately; n == 1 (or Workers == 1) runs
// inline on the calling goroutine without touching the pool, so nested or
// degenerate calls cost nothing beyond the function call. Nesting is safe:
// each call owns its claim counter, and a nested call that finds every pool
// helper busy (the usual case when called from inside a pool worker) simply
// runs its iterations inline on the caller. A panic in f is re-raised on
// the calling goroutine with its original panic value once every claimed
// iteration has finished; it never deadlocks the pool.
func For(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	w := clampWorkers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	run(n, w, 0, func(_, i int) { f(i) })
}

// ForChunked is For with an explicit claim-chunk size: workers grab
// iterations grain at a time off the shared counter. grain < 1 selects
// the adaptive default max(1, n/(8·w)) — see BenchmarkForGrain in this
// package for the measurements behind that formula. Use a small grain
// (1) when item costs are large or wildly uneven (whole stencil tiles),
// and a larger grain when items are tiny and uniform enough that claim
// traffic dominates.
func ForChunked(n, grain int, f func(i int)) {
	if n <= 0 {
		return
	}
	w := clampWorkers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	run(n, w, int64(grain), func(_, i int) { f(i) })
}

// ForWorkers is For with the claiming worker's index (0 ≤ worker < the
// effective worker count) passed to f alongside the iteration index, so
// instrumented callers can attribute work per worker. The inline fast paths
// report worker 0; the calling goroutine always participates as worker 0.
func ForWorkers(n int, f func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := clampWorkers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	run(n, w, 0, f)
}

// clampWorkers returns the effective worker count for n items.
func clampWorkers(n int) int {
	w := Workers
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	return w
}

// ---------------------------------------------------------------------------
// Persistent pool

// work hands tasks to parked pool helpers. The channel is unbuffered on
// purpose: a non-blocking send succeeds only when a helper is actually
// parked in receive, which is exactly the "is anyone idle?" question the
// dispatcher needs answered — busy helpers (e.g. during nested calls) are
// simply not recruited.
var work = make(chan *task)

var (
	poolMu   sync.Mutex
	poolSize int // persistent helpers spawned so far
)

// task is one parallel-for invocation. Iterations are claimed in chunks off
// next; done counts finished iterations and the claimer that completes the
// last one closes fin.
type task struct {
	f     func(worker, i int)
	n     int64
	chunk int64
	next  atomic.Int64
	done  atomic.Int64
	ids   atomic.Int64 // helper worker-id allocator (caller is 0)
	fin   chan struct{}
	pan   atomic.Pointer[panicked]
}

// panicked records the first panic raised inside f, with the stack of the
// goroutine that raised it.
type panicked struct {
	val   any
	stack []byte
}

// run executes n iterations over w workers: up to w−1 parked helpers are
// woken (or lazily spawned), and the caller claims chunks alongside them as
// worker 0. chunk < 1 selects the adaptive default: roughly 8 chunks per
// worker keeps the claim counter off the coherence hot path on large n
// while preserving dynamic load balancing; small n (the many-small-blocks
// WTB path) degenerates to chunk 1, i.e. pure dynamic scheduling.
func run(n, w int, chunk int64, f func(worker, i int)) {
	t := &task{f: f, n: int64(n), fin: make(chan struct{})}
	if chunk < 1 {
		chunk = int64(n) / int64(8*w)
	}
	t.chunk = chunk
	if t.chunk < 1 {
		t.chunk = 1
	}
	dispatch(t, w-1)
	t.claim(0)
	<-t.fin
	if p := t.pan.Load(); p != nil {
		panic(p.val)
	}
}

// dispatch recruits up to helpers pool workers for t: parked helpers are
// woken with a non-blocking send; if none is parked and the pool is below
// its cap, a new persistent helper is spawned with t as its first
// assignment. When neither is possible the remaining share of the work
// falls to the caller and any recruited helpers — never to a blocked send.
func dispatch(t *task, helpers int) {
	for h := 0; h < helpers; h++ {
		select {
		case work <- t:
			continue
		default:
		}
		if !spawn(t) {
			return
		}
	}
}

// spawn starts a new persistent pool helper whose first assignment is t.
// The pool is capped at Workers−1 helpers: the caller of a parallel-for is
// always the w-th worker, and refusing to grow past the cap is what makes
// nested calls from pool workers run inline instead of oversubscribing.
func spawn(t *task) bool {
	limit := Workers - 1
	poolMu.Lock()
	if poolSize >= limit {
		poolMu.Unlock()
		return false
	}
	poolSize++
	poolMu.Unlock()
	go func() {
		t.claimHelper()
		for t := range work {
			t.claimHelper()
		}
	}()
	return true
}

// claimHelper runs the claim loop with a freshly allocated helper id
// (1 ≤ id ≤ helpers recruited, so ids stay below the effective worker
// count).
func (t *task) claimHelper() { t.claim(int(t.ids.Add(1))) }

// claim repeatedly grabs chunks of iterations until the counter is
// exhausted. The claimer that finishes the task's last iteration closes
// fin; claimed chunks always count as done even if f panicked, so the
// caller can never be left waiting.
func (t *task) claim(worker int) {
	for {
		start := t.next.Add(t.chunk) - t.chunk
		if start >= t.n {
			return
		}
		end := start + t.chunk
		if end > t.n {
			end = t.n
		}
		t.exec(worker, start, end)
		if t.done.Add(end-start) == t.n {
			close(t.fin)
		}
	}
}

// exec runs one claimed chunk, capturing the first panic instead of letting
// it kill the helper goroutine (or unwind the caller mid-claim).
func (t *task) exec(worker int, start, end int64) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 8192)
			buf = buf[:runtime.Stack(buf, false)]
			t.pan.CompareAndSwap(nil, &panicked{val: r, stack: buf})
		}
	}()
	for i := start; i < end; i++ {
		t.f(worker, int(i))
	}
}
