// Package par is the shared-memory parallel runtime of the repository: a
// dynamically scheduled parallel-for over a fixed worker count, the
// stand-in for the paper's "OpenMP shared-memory parallelism with dynamic
// scheduling". Work items are claimed with an atomic counter, so uneven item
// costs (clamped edge blocks, sparse-operator blocks) balance automatically.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers is the degree of parallelism used by For. It defaults to
// GOMAXPROCS and may be lowered (e.g. to 1) to serialize execution for
// debugging; values < 1 are treated as 1.
var Workers = runtime.GOMAXPROCS(0)

// For invokes f(i) for every i in [0, n), distributing iterations across
// workers with dynamic (work-stealing-by-counter) scheduling. It returns
// when all iterations are complete. f must be safe for concurrent calls with
// distinct i.
//
// Zero and negative n return immediately; n == 1 (or Workers == 1) runs
// inline on the calling goroutine without spawning anything, so nested or
// degenerate calls cost nothing beyond the function call. Nesting is safe:
// each call owns its claim counter and wait group.
func For(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	w := clampWorkers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				f(int(i))
			}
		}()
	}
	wg.Wait()
}

// ForWorkers is For with the claiming worker's index (0 ≤ worker < the
// effective worker count) passed to f alongside the iteration index, so
// instrumented callers can attribute work per worker. The inline fast paths
// report worker 0.
func ForWorkers(n int, f func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := clampWorkers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				f(worker, int(i))
			}
		}(g)
	}
	wg.Wait()
}

// clampWorkers returns the effective worker count for n items.
func clampWorkers(n int) int {
	w := Workers
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	return w
}
