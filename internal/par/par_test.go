package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForVisitsAll(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		var visited atomic.Int64
		seen := make([]atomic.Bool, n)
		For(n, func(i int) {
			if seen[i].Swap(true) {
				t.Errorf("n=%d: index %d visited twice", n, i)
			}
			visited.Add(1)
		})
		if visited.Load() != int64(n) {
			t.Fatalf("n=%d: visited %d", n, visited.Load())
		}
	}
}

func TestForNegative(t *testing.T) {
	called := false
	For(-5, func(int) { called = true })
	if called {
		t.Fatal("callback invoked for negative n")
	}
}

func TestForSingleWorker(t *testing.T) {
	old := Workers
	defer func() { Workers = old }()
	Workers = 1
	order := []int{}
	For(5, func(i int) { order = append(order, i) }) // must be sequential: no race
	for i, v := range order {
		if v != i {
			t.Fatalf("single worker not in order: %v", order)
		}
	}
	Workers = 0 // treated as 1
	count := 0
	For(3, func(int) { count++ })
	if count != 3 {
		t.Fatalf("Workers=0: count %d", count)
	}
}

// TestForNoGoroutinesForDegenerateCalls asserts the zero-length and
// single-item fast paths run inline: no worker goroutines are spawned.
func TestForNoGoroutinesForDegenerateCalls(t *testing.T) {
	time.Sleep(10 * time.Millisecond) // let goroutines of earlier tests drain
	before := runtime.NumGoroutine()
	For(0, func(int) { t.Error("called for n=0") })
	ForWorkers(0, func(int, int) { t.Error("called for n=0") })
	For(-1, func(int) { t.Error("called for n<0") })
	ran := 0
	For(1, func(int) {
		// Inline execution: the goroutine count does not grow *during* f.
		if g := runtime.NumGoroutine(); g > before {
			t.Errorf("n=1 spawned goroutines: %d -> %d", before, g)
		}
		ran++
	})
	if ran != 1 {
		t.Fatal("n=1 not executed")
	}
}

// TestForNested asserts nested parallel-fors complete without deadlock and
// visit every (outer, inner) pair exactly once.
func TestForNested(t *testing.T) {
	const outer, inner = 8, 16
	var cells [outer * inner]atomic.Int32
	done := make(chan struct{})
	go func() {
		For(outer, func(i int) {
			For(inner, func(j int) {
				cells[i*inner+j].Add(1)
			})
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested For deadlocked")
	}
	for i := range cells {
		if c := cells[i].Load(); c != 1 {
			t.Fatalf("cell %d visited %d times", i, c)
		}
	}
}

// TestForWorkersCoverage asserts ForWorkers visits every index once with
// in-range worker ids.
func TestForWorkersCoverage(t *testing.T) {
	const n = 500
	seen := make([]atomic.Bool, n)
	var badWorker atomic.Bool
	ForWorkers(n, func(w, i int) {
		if w < 0 || w >= max(Workers, 1) {
			badWorker.Store(true)
		}
		if seen[i].Swap(true) {
			t.Errorf("index %d visited twice", i)
		}
	})
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("index %d not visited", i)
		}
	}
	if badWorker.Load() {
		t.Fatal("worker id out of range")
	}
}
