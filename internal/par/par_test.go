package par

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForVisitsAll(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		var visited atomic.Int64
		seen := make([]atomic.Bool, n)
		For(n, func(i int) {
			if seen[i].Swap(true) {
				t.Errorf("n=%d: index %d visited twice", n, i)
			}
			visited.Add(1)
		})
		if visited.Load() != int64(n) {
			t.Fatalf("n=%d: visited %d", n, visited.Load())
		}
	}
}

func TestForNegative(t *testing.T) {
	called := false
	For(-5, func(int) { called = true })
	if called {
		t.Fatal("callback invoked for negative n")
	}
}

func TestForSingleWorker(t *testing.T) {
	old := Workers
	defer func() { Workers = old }()
	Workers = 1
	order := []int{}
	For(5, func(i int) { order = append(order, i) }) // must be sequential: no race
	for i, v := range order {
		if v != i {
			t.Fatalf("single worker not in order: %v", order)
		}
	}
	Workers = 0 // treated as 1
	count := 0
	For(3, func(int) { count++ })
	if count != 3 {
		t.Fatalf("Workers=0: count %d", count)
	}
}

// TestForNoGoroutinesForDegenerateCalls asserts the zero-length and
// single-item fast paths run inline: no worker goroutines are spawned.
func TestForNoGoroutinesForDegenerateCalls(t *testing.T) {
	time.Sleep(10 * time.Millisecond) // let goroutines of earlier tests drain
	before := runtime.NumGoroutine()
	For(0, func(int) { t.Error("called for n=0") })
	ForWorkers(0, func(int, int) { t.Error("called for n=0") })
	For(-1, func(int) { t.Error("called for n<0") })
	ran := 0
	For(1, func(int) {
		// Inline execution: the goroutine count does not grow *during* f.
		if g := runtime.NumGoroutine(); g > before {
			t.Errorf("n=1 spawned goroutines: %d -> %d", before, g)
		}
		ran++
	})
	if ran != 1 {
		t.Fatal("n=1 not executed")
	}
}

// TestForNested asserts nested parallel-fors complete without deadlock and
// visit every (outer, inner) pair exactly once.
func TestForNested(t *testing.T) {
	const outer, inner = 8, 16
	var cells [outer * inner]atomic.Int32
	done := make(chan struct{})
	go func() {
		For(outer, func(i int) {
			For(inner, func(j int) {
				cells[i*inner+j].Add(1)
			})
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested For deadlocked")
	}
	for i := range cells {
		if c := cells[i].Load(); c != 1 {
			t.Fatalf("cell %d visited %d times", i, c)
		}
	}
}

// setWorkers forces the pool degree for a test and restores it afterwards,
// so pool paths are exercised even on single-CPU hosts.
func setWorkers(t *testing.T, w int) {
	t.Helper()
	old := Workers
	Workers = w
	t.Cleanup(func() { Workers = old })
}

// TestPoolNestedFromWorker drives nested parallel-fors through the
// persistent pool: the outer call occupies every helper, so the inner calls
// must run inline on their pool workers rather than deadlocking on an idle
// helper that will never come.
func TestPoolNestedFromWorker(t *testing.T) {
	setWorkers(t, 4)
	const outer, inner = 8, 64
	var cells [outer * inner]atomic.Int32
	done := make(chan struct{})
	go func() {
		For(outer, func(i int) {
			For(inner, func(j int) {
				cells[i*inner+j].Add(1)
			})
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested For through the pool deadlocked")
	}
	for i := range cells {
		if c := cells[i].Load(); c != 1 {
			t.Fatalf("cell %d visited %d times", i, c)
		}
	}
}

// TestPoolWorkersRaisedLowered re-sizes Workers between calls: the pool must
// keep full coverage and in-range worker ids as it grows on demand and
// ignores surplus parked helpers when shrunk.
func TestPoolWorkersRaisedLowered(t *testing.T) {
	for _, w := range []int{2, 6, 3, 1, 5} {
		setWorkers(t, w)
		const n = 777
		seen := make([]atomic.Int32, n)
		var badWorker atomic.Int32
		ForWorkers(n, func(worker, i int) {
			if worker < 0 || worker >= w {
				badWorker.Store(int32(worker) + 1)
			}
			seen[i].Add(1)
		})
		if b := badWorker.Load(); b != 0 {
			t.Fatalf("Workers=%d: worker id %d out of range", w, b-1)
		}
		for i := range seen {
			if c := seen[i].Load(); c != 1 {
				t.Fatalf("Workers=%d: index %d visited %d times", w, i, c)
			}
		}
	}
}

// TestPoolPanicPropagates asserts a panic inside f is re-raised on the
// caller with its original value — not swallowed, not a deadlock, and not a
// crash of a helper goroutine — and that the pool stays usable afterwards.
func TestPoolPanicPropagates(t *testing.T) {
	setWorkers(t, 4)
	type marker struct{ i int }
	res := make(chan any, 1)
	go func() {
		defer func() { res <- recover() }()
		For(100, func(i int) {
			if i == 37 {
				panic(marker{i})
			}
		})
		res <- nil
	}()
	select {
	case r := <-res:
		m, ok := r.(marker)
		if !ok || m.i != 37 {
			t.Fatalf("recovered %#v, want marker{37}", r)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("panicking For deadlocked")
	}
	// The pool must still schedule work after a panic.
	var visited atomic.Int64
	For(50, func(int) { visited.Add(1) })
	if visited.Load() != 50 {
		t.Fatalf("pool broken after panic: visited %d/50", visited.Load())
	}
}

// TestPoolPanicInline asserts the single-worker inline path panics through
// unchanged.
func TestPoolPanicInline(t *testing.T) {
	setWorkers(t, 1)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	For(3, func(i int) {
		if i == 1 {
			panic("boom")
		}
	})
	t.Fatal("panic not propagated")
}

// TestPoolChunkedClaiming exercises the chunk>1 claim path (n large enough
// that n/(8·w) > 1) plus the tail chunk, checking exact coverage.
func TestPoolChunkedClaiming(t *testing.T) {
	setWorkers(t, 3)
	for _, n := range []int{24*3*8 + 1, 10000, 97} {
		seen := make([]atomic.Int32, n)
		For(n, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if c := seen[i].Load(); c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

// TestPoolConcurrentCallers runs parallel-fors from several goroutines at
// once: tasks compete for the same parked helpers and must each retain
// exact coverage.
func TestPoolConcurrentCallers(t *testing.T) {
	setWorkers(t, 4)
	const callers, n = 6, 500
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		go func() {
			seen := make([]atomic.Int32, n)
			For(n, func(i int) { seen[i].Add(1) })
			for i := range seen {
				if v := seen[i].Load(); v != 1 {
					errs <- fmt.Errorf("index %d visited %d times", i, v)
					return
				}
			}
			errs <- nil
		}()
	}
	for c := 0; c < callers; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestForWorkersCoverage asserts ForWorkers visits every index once with
// in-range worker ids.
func TestForWorkersCoverage(t *testing.T) {
	const n = 500
	seen := make([]atomic.Bool, n)
	var badWorker atomic.Bool
	ForWorkers(n, func(w, i int) {
		if w < 0 || w >= max(Workers, 1) {
			badWorker.Store(true)
		}
		if seen[i].Swap(true) {
			t.Errorf("index %d visited twice", i)
		}
	})
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("index %d not visited", i)
		}
	}
	if badWorker.Load() {
		t.Fatal("worker id out of range")
	}
}
