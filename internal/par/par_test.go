package par

import (
	"sync/atomic"
	"testing"
)

func TestForVisitsAll(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		var visited atomic.Int64
		seen := make([]atomic.Bool, n)
		For(n, func(i int) {
			if seen[i].Swap(true) {
				t.Errorf("n=%d: index %d visited twice", n, i)
			}
			visited.Add(1)
		})
		if visited.Load() != int64(n) {
			t.Fatalf("n=%d: visited %d", n, visited.Load())
		}
	}
}

func TestForNegative(t *testing.T) {
	called := false
	For(-5, func(int) { called = true })
	if called {
		t.Fatal("callback invoked for negative n")
	}
}

func TestForSingleWorker(t *testing.T) {
	old := Workers
	defer func() { Workers = old }()
	Workers = 1
	order := []int{}
	For(5, func(i int) { order = append(order, i) }) // must be sequential: no race
	for i, v := range order {
		if v != i {
			t.Fatalf("single worker not in order: %v", order)
		}
	}
	Workers = 0 // treated as 1
	count := 0
	For(3, func(int) { count++ })
	if count != 3 {
		t.Fatalf("Workers=0: count %d", count)
	}
}
