package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForChunkedVisitsAll(t *testing.T) {
	old := Workers
	Workers = 4
	defer func() { Workers = old }()
	for _, grain := range []int{-1, 0, 1, 3, 7, 64, 1000} {
		n := 137
		var mu sync.Mutex
		seen := make([]int, n)
		ForChunked(n, grain, func(i int) {
			mu.Lock()
			seen[i]++
			mu.Unlock()
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("grain %d: index %d visited %d times", grain, i, c)
			}
		}
	}
}

func TestForChunkedGrainBoundsClaims(t *testing.T) {
	// With grain g, a worker that claims once executes up to g consecutive
	// indices; verify runs are contiguous in grain-sized groups by checking
	// that each group [k·g, (k+1)·g) is executed by a single worker.
	old := Workers
	Workers = 4
	defer func() { Workers = old }()
	n, grain := 96, 8
	owner := make([]int64, n)
	var id atomic.Int64
	gid := make([]atomic.Int64, n/grain)
	ForChunked(n, grain, func(i int) {
		g := i / grain
		if v := gid[g].Load(); v == 0 {
			gid[g].CompareAndSwap(0, id.Add(1))
		}
		owner[i] = gid[g].Load()
	})
	for g := 0; g < n/grain; g++ {
		want := owner[g*grain]
		for i := g * grain; i < (g+1)*grain; i++ {
			if owner[i] != want {
				t.Fatalf("group %d split across claims: owner[%d]=%d, want %d", g, i, owner[i], want)
			}
		}
	}
}

// BenchmarkForGrain measures the parallel-for claim overhead across grain
// sizes for a cheap uniform body — the measurement behind the adaptive
// default chunk max(1, n/(8·w)) used by For. On a machine with w workers
// and n ≫ w items, grain 1 maximizes claim traffic (one atomic RMW per
// item), while grain n/w eliminates dynamic balancing entirely; n/(8·w)
// sits at the flat part of the curve: claim traffic amortized ~8× below
// the n/w extreme while still leaving 8 chunks per worker for load
// balancing. Run with -cpu to see the effect of worker count.
func BenchmarkForGrain(b *testing.B) {
	const n = 4096
	sink := make([]float32, n)
	w := Workers
	if w < 1 {
		w = 1
	}
	grains := map[string]int{
		"grain=1":       1,
		"grain=4":       4,
		"grain=16":      16,
		"grain=n_8w":    max(1, n/(8*w)),
		"grain=n_w":     max(1, n/w),
		"grain=default": 0,
	}
	for name, g := range grains {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ForChunked(n, g, func(j int) {
					sink[j] += float32(j)
				})
			}
		})
	}
}
