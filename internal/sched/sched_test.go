package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"wavetile/internal/obs"
	"wavetile/internal/par"
)

// withWorkers raises the par pool size for the duration of a test so the
// parallel runner actually runs concurrently even on a single-CPU host.
func withWorkers(t *testing.T, w int) {
	t.Helper()
	old := par.Workers
	par.Workers = w
	t.Cleanup(func() { par.Workers = old })
}

// preds lists the in-range predecessors of (bx, by, k) under the full edge
// set — an independent re-statement of the graph the implementation builds.
func preds(bx, by, k int, sameStep bool) [][3]int {
	var p [][3]int
	add := func(x, y, kk int) {
		if x >= 0 && y >= 0 && kk >= 0 {
			p = append(p, [3]int{x, y, kk})
		}
	}
	add(bx, by, k-1)
	if sameStep {
		add(bx-1, by, k)
		add(bx, by-1, k)
	} else {
		add(bx-1, by, k-1)
		add(bx, by-1, k-1)
		add(bx-1, by-1, k-1)
	}
	return p
}

func TestGraphExecutesAllTasksOnce(t *testing.T) {
	withWorkers(t, 4)
	shapes := []struct{ nbx, nby, tt int }{
		{1, 1, 1}, {1, 1, 5}, {4, 1, 3}, {1, 4, 3}, {3, 5, 4}, {6, 6, 2},
	}
	for _, sameStep := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			for _, sh := range shapes {
				name := fmt.Sprintf("sameStep=%v/w=%d/%dx%dx%d", sameStep, workers, sh.nbx, sh.nby, sh.tt)
				t.Run(name, func(t *testing.T) {
					empty := func(bx, by, k int) bool { return bx == sh.nbx-1 && k < sh.tt-1 }
					g := NewTileGraph(sh.nbx, sh.nby, sh.tt, sameStep, empty)
					var mu sync.Mutex
					counts := make(map[[3]int]int)
					g.Run(workers, func(_, bx, by, k int) {
						mu.Lock()
						counts[[3]int{bx, by, k}]++
						mu.Unlock()
					})
					want := 0
					for bx := 0; bx < sh.nbx; bx++ {
						for by := 0; by < sh.nby; by++ {
							for k := 0; k < sh.tt; k++ {
								if empty(bx, by, k) {
									if counts[[3]int{bx, by, k}] != 0 {
										t.Errorf("empty task (%d,%d,%d) executed", bx, by, k)
									}
									continue
								}
								want++
								if c := counts[[3]int{bx, by, k}]; c != 1 {
									t.Errorf("task (%d,%d,%d) executed %d times, want 1", bx, by, k, c)
								}
							}
						}
					}
					total := 0
					for _, c := range counts {
						total += c
					}
					if total != want {
						t.Errorf("total executions %d, want %d", total, want)
					}
				})
			}
		}
	}
}

func TestDependencyOrderRespected(t *testing.T) {
	withWorkers(t, 4)
	for _, sameStep := range []bool{false, true} {
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("sameStep=%v/w=%d", sameStep, workers), func(t *testing.T) {
				nbx, nby, tt := 5, 4, 6
				g := NewTileGraph(nbx, nby, tt, sameStep, nil)
				done := make([]atomic.Bool, nbx*nby*tt)
				var violations atomic.Int64
				g.Run(workers, func(_, bx, by, k int) {
					for _, p := range preds(bx, by, k, sameStep) {
						if !done[g.id(p[0], p[1], p[2])].Load() {
							violations.Add(1)
						}
					}
					done[g.id(bx, by, k)].Store(true)
				})
				if v := violations.Load(); v != 0 {
					t.Errorf("%d dependency violations", v)
				}
			})
		}
	}
}

// TestSerialMatchesLexicographicOrder pins the serial runner to the exact
// tile order of the sequential WTB schedule (Listing 6): for bx, for by,
// for k — the chained LIFO drain must not merely be a topological order,
// it must be *the* cache-friendly one.
func TestSerialMatchesLexicographicOrder(t *testing.T) {
	for _, sameStep := range []bool{false, true} {
		t.Run(fmt.Sprintf("sameStep=%v", sameStep), func(t *testing.T) {
			nbx, nby, tt := 4, 3, 3
			empty := func(bx, by, k int) bool { return bx == 0 && by == 0 && k == 0 }
			g := NewTileGraph(nbx, nby, tt, sameStep, empty)
			var got [][3]int
			g.Run(1, func(_, bx, by, k int) { got = append(got, [3]int{bx, by, k}) })
			var want [][3]int
			for bx := 0; bx < nbx; bx++ {
				for by := 0; by < nby; by++ {
					for k := 0; k < tt; k++ {
						if !empty(bx, by, k) {
							want = append(want, [3]int{bx, by, k})
						}
					}
				}
			}
			if len(got) != len(want) {
				t.Fatalf("executed %d tasks, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("order diverges at %d: got %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestAdversarialExposesDroppedEdge proves the fault-injection mode is
// sharp: for every edge class the graph supports, dropping it must cause
// at least one task to execute before the predecessor that edge would
// have ordered it after. Without this, a dropped edge could be masked by
// a coincidentally safe execution order and the verify harness would
// "pass" a broken graph.
func TestAdversarialExposesDroppedEdge(t *testing.T) {
	cases := []struct {
		sameStep bool
		class    EdgeClass
	}{
		{false, EdgeOwn}, {false, EdgeLeft}, {false, EdgeUp}, {false, EdgeDiag},
		{true, EdgeOwn}, {true, EdgeLeft}, {true, EdgeUp},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("sameStep=%v/%s", c.sameStep, c.class), func(t *testing.T) {
			FaultDropEdge = c.class
			g := NewTileGraph(4, 3, 3, c.sameStep, nil)
			FaultDropEdge = EdgeNone
			order := make(map[[3]int]int)
			g.Run(4, func(_, bx, by, k int) { order[[3]int{bx, by, k}] = len(order) })
			if len(order) != g.Tasks() {
				t.Fatalf("executed %d tasks, want %d", len(order), g.Tasks())
			}
			violated := false
			for id := 0; id < g.Tasks(); id++ {
				bx, by, k := g.Coords(id)
				px, py, pk := bx, by, k
				switch c.class {
				case EdgeOwn:
					pk--
				case EdgeLeft:
					px--
					if !c.sameStep {
						pk--
					}
				case EdgeUp:
					py--
					if !c.sameStep {
						pk--
					}
				case EdgeDiag:
					px, py, pk = bx-1, by-1, k-1
				}
				if px < 0 || py < 0 || pk < 0 {
					continue
				}
				if order[[3]int{bx, by, k}] < order[[3]int{px, py, pk}] {
					violated = true
				}
			}
			if !violated {
				t.Errorf("dropping %s edges produced no ordering violation; fault mode is not sharp", c.class)
			}
		})
	}
}

func TestPanicPropagates(t *testing.T) {
	withWorkers(t, 4)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("w=%d", workers), func(t *testing.T) {
			g := NewTileGraph(4, 4, 3, false, nil)
			defer func() {
				if r := recover(); r == nil {
					t.Fatal("panic in exec did not propagate")
				}
			}()
			g.Run(workers, func(_, bx, by, k int) {
				if bx == 2 && by == 2 && k == 1 {
					panic("boom")
				}
			})
		})
	}
}

func TestMetrics(t *testing.T) {
	withWorkers(t, 4)
	restore := obs.Swap(obs.NewRegistry())
	defer restore()
	empty := func(bx, by, k int) bool { return bx == 3 && by == 2 }
	g := NewTileGraph(4, 3, 3, false, empty)
	g.Run(4, func(_, _, _, _ int) {})
	r := obs.Active()
	if got := r.Counter("sched_tasks").Load(); got != int64(4*3*3-3) {
		t.Errorf("sched_tasks = %d, want %d", got, 4*3*3-3)
	}
	if got := r.Counter("sched_tasks_empty").Load(); got != 3 {
		t.Errorf("sched_tasks_empty = %d, want 3", got)
	}
}
