// Package sched is a task-graph runtime for wave-front temporal blocking:
// the space-time tiles (bx, by, k) of one WTB time tile become tasks with
// atomic dependency counters, and tasks whose counters hit zero drain
// through the persistent internal/par pool with no global barriers. The
// paper's Listing 6 walks the skewed tiles sequentially; Malas et al.
// (multicore wavefront diamond blocking) show the same tiles may execute
// concurrently once the inter-tile dependencies are made explicit — that
// graph is what TileGraph encodes.
//
// # Dependency edges
//
// Two edge sets cover the repository's propagators, selected by sameStep:
//
//   - Ping-pong buffers (acoustic, TTI: MaxPhaseOffset() == 0). Local step
//     k of a tile reads level k−1 values from its own footprint plus a
//     skew-wide halo reaching one tile left/up. Predecessors of (bx, by, k):
//
//     (bx, by, k−1)  own    (bx−1, by, k−1)  left
//     (bx, by−1, k−1) up    (bx−1, by−1, k−1) diag
//
//     The diagonal edge is NOT transitively implied — left and up
//     predecessors of (bx,by,k) sit at k−1 and do not depend on
//     (bx−1,by−1,k−1) at the same level. No same-step edges exist: at a
//     fixed k, distinct tiles write disjoint regions of the same buffer
//     and read only the other buffer.
//
//   - In-place two-level updates (elastic: MaxPhaseOffset() > 0). Phases
//     update their fields in place, so a tile's step k overwrites values
//     its right/down neighbours still need at step k — the classic WTB
//     anti-dependency, resolved in Listing 6 by the lexicographic order.
//     Predecessors of (bx, by, k):
//
//     (bx, by, k−1)  own    (bx−1, by, k)  left    (bx, by−1, k)  up
//
//     The same-step left/up edges are sharp (the skewed footprints
//     overlap by exactly the phase offset), while diagonal-same-step is
//     transitively implied by left∘up.
//
// Any execution respecting these edges performs the exact same kernel
// invocations on the exact same points as the sequential schedule, and
// every grid point is written by exactly one task per time level, so
// results are bitwise identical regardless of interleaving — the property
// internal/verify asserts, and the reason FaultDropEdge exists: dropping
// one edge class must produce divergence the oracle catches, proving each
// edge is load-bearing rather than conservative.
package sched

import (
	"sync"
	"sync/atomic"

	"wavetile/internal/obs"
	"wavetile/internal/par"
)

// EdgeClass names one class of dependency edge in a TileGraph.
type EdgeClass int

// Edge classes. EdgeDiag exists only in ping-pong (sameStep == false)
// graphs; EdgeLeft/EdgeUp connect same-k tiles in in-place graphs and
// (k−1)-level tiles in ping-pong graphs.
const (
	EdgeNone EdgeClass = iota
	EdgeOwn            // (bx, by, k−1)
	EdgeLeft           // (bx−1, by, k) in-place; (bx−1, by, k−1) ping-pong
	EdgeUp             // (bx, by−1, k) in-place; (bx, by−1, k−1) ping-pong
	EdgeDiag           // (bx−1, by−1, k−1), ping-pong only
)

func (e EdgeClass) String() string {
	switch e {
	case EdgeNone:
		return "none"
	case EdgeOwn:
		return "own"
	case EdgeLeft:
		return "left"
	case EdgeUp:
		return "up"
	case EdgeDiag:
		return "diag"
	}
	return "?"
}

// FaultDropEdge removes one dependency-edge class from graphs built while
// it is set. It exists solely for the differential-verification harness
// (internal/verify), which uses it to prove every edge class is sharp: a
// graph missing an edge must produce results the schedule-equivalence
// oracle flags. Graphs built under a fault run in a deterministic
// adversarial order that executes racy tasks before the predecessor the
// dropped edge would have ordered them after, so the violation manifests
// even on one worker. Production code must leave it EdgeNone; it must not
// be mutated while graphs are being built or run.
var FaultDropEdge EdgeClass

// TileGraph is the dependency graph of one WTB time tile: nbx×nby space
// tiles each carried through tt local steps. Build one per time tile with
// NewTileGraph and execute it with Run; graphs are single-use.
type TileGraph struct {
	nbx, nby, tt int
	sameStep     bool // in-place edge set (left/up at same k) vs ping-pong
	drop         EdgeClass
	empty        []bool // tasks outside the domain: flow through the graph, skip exec
	indeg        []atomic.Int32
}

// NewTileGraph builds the dependency graph for an nbx×nby×tt tile block.
// sameStep selects the in-place edge set (propagators with
// MaxPhaseOffset() > 0); empty reports tiles that cannot intersect the
// domain (they still flow through the graph so successor counters stay
// uniform, but their execution is skipped). empty may be nil.
func NewTileGraph(nbx, nby, tt int, sameStep bool, empty func(bx, by, k int) bool) *TileGraph {
	n := nbx * nby * tt
	g := &TileGraph{
		nbx: nbx, nby: nby, tt: tt,
		sameStep: sameStep,
		drop:     FaultDropEdge,
		empty:    make([]bool, n),
		indeg:    make([]atomic.Int32, n),
	}
	for k := 0; k < tt; k++ {
		for bx := 0; bx < nbx; bx++ {
			for by := 0; by < nby; by++ {
				id := g.id(bx, by, k)
				if empty != nil {
					g.empty[id] = empty(bx, by, k)
				}
				d := int32(0)
				count := func(px, py, pk int, class EdgeClass) {
					if class != g.drop && px >= 0 && py >= 0 && pk >= 0 {
						d++
					}
				}
				count(bx, by, k-1, EdgeOwn)
				if sameStep {
					count(bx-1, by, k, EdgeLeft)
					count(bx, by-1, k, EdgeUp)
				} else {
					count(bx-1, by, k-1, EdgeLeft)
					count(bx, by-1, k-1, EdgeUp)
					count(bx-1, by-1, k-1, EdgeDiag)
				}
				g.indeg[id].Store(d)
			}
		}
	}
	return g
}

// Tasks returns the total task count nbx·nby·tt (empty tasks included).
func (g *TileGraph) Tasks() int { return g.nbx * g.nby * g.tt }

// id encodes (bx, by, k) so that ascending order at fixed k is the
// lexicographic (bx, by) order of Listing 6 — the serial runner pops in
// ascending order and therefore reproduces the paper's tile order exactly.
func (g *TileGraph) id(bx, by, k int) int { return (k*g.nbx+bx)*g.nby + by }

// Coords decodes a task id.
func (g *TileGraph) Coords(id int) (bx, by, k int) {
	by = id % g.nby
	bx = (id / g.nby) % g.nbx
	k = id / (g.nby * g.nbx)
	return
}

// metrics holds the scheduler's obs instruments; nil when obs is off.
type metrics struct {
	tasks, emptyTasks, steals, stalls, chained *obs.Counter
	ready                                      *obs.Gauge
	fl                                         *obs.Flight
}

func newMetrics() *metrics {
	r := obs.Active()
	if r == nil {
		return nil
	}
	return &metrics{
		tasks:      r.Counter("sched_tasks"),
		emptyTasks: r.Counter("sched_tasks_empty"),
		steals:     r.Counter("sched_steals"),
		stalls:     r.Counter("sched_stalls"),
		chained:    r.Counter("sched_chained"),
		ready:      r.Gauge("sched_ready"),
		fl:         r.Flight(),
	}
}

// Run executes every task of the graph in dependency order. exec is called
// once per non-empty task with the index of the executing worker
// (0 ≤ worker < workers); it must be safe for concurrent calls on distinct
// tasks. Run returns when all tasks (and their exec calls) have completed.
//
// workers ≤ 1 runs a serial schedule that chains each tile through its
// local steps in exactly the lexicographic order of RunWTB — the pipelined
// schedule degrades to the sequential one, not to a slower shuffle of it.
// Graphs built under FaultDropEdge run a deterministic single-threaded
// adversarial order instead (see FaultDropEdge).
func (g *TileGraph) Run(workers int, exec func(worker, bx, by, k int)) {
	if g.Tasks() == 0 {
		return
	}
	m := newMetrics()
	switch {
	case g.drop != EdgeNone:
		g.runAdversarial(m, exec)
	case workers <= 1:
		g.runSerial(m, exec)
	default:
		g.runParallel(m, workers, exec)
	}
}

// execOne runs a single task (skipping empty ones) and counts it.
func (g *TileGraph) execOne(m *metrics, w, id int, exec func(worker, bx, by, k int)) {
	if g.empty[id] {
		if m != nil {
			m.emptyTasks.Add(1)
		}
		return
	}
	if m != nil {
		m.tasks.Add(1)
	}
	bx, by, k := g.Coords(id)
	exec(w, bx, by, k)
}

// forReadySuccs decrements the dependency counters of id's successors and
// calls visit for each that becomes ready; own reports whether the ready
// successor is the same tile at k+1 (the cache-friendly chain candidate).
func (g *TileGraph) forReadySuccs(id int, visit func(succ int, own bool)) {
	bx, by, k := g.Coords(id)
	dec := func(sx, sy, sk int, class EdgeClass) {
		if class == g.drop || sx >= g.nbx || sy >= g.nby || sk >= g.tt {
			return
		}
		s := g.id(sx, sy, sk)
		if g.indeg[s].Add(-1) == 0 {
			visit(s, class == EdgeOwn)
		}
	}
	dec(bx, by, k+1, EdgeOwn)
	if g.sameStep {
		dec(bx+1, by, k, EdgeLeft)
		dec(bx, by+1, k, EdgeUp)
	} else {
		dec(bx+1, by+1, k+1, EdgeDiag)
		dec(bx+1, by, k+1, EdgeLeft)
		dec(bx, by+1, k+1, EdgeUp)
	}
}

// runSerial drains the graph on the calling goroutine. Ready tasks are
// kept on a LIFO stack seeded in reverse id order, and a completed task
// chains directly into its own-(k+1) successor when that successor became
// ready — together these reproduce the exact for-bx/for-by/for-k order of
// the sequential WTB schedule, preserving its cache behaviour.
func (g *TileGraph) runSerial(m *metrics, exec func(worker, bx, by, k int)) {
	n := g.Tasks()
	stack := make([]int32, 0, g.nbx*g.nby)
	for id := n - 1; id >= 0; id-- {
		if g.indeg[id].Load() == 0 {
			stack = append(stack, int32(id))
		}
	}
	for len(stack) > 0 {
		id := int(stack[len(stack)-1])
		stack = stack[:len(stack)-1]
		for id >= 0 {
			g.execOne(m, 0, id, exec)
			next := -1
			g.forReadySuccs(id, func(s int, own bool) {
				if own {
					next = s
				} else {
					stack = append(stack, int32(s))
				}
			})
			if next >= 0 && m != nil {
				m.chained.Add(1)
			}
			id = next
		}
	}
}

// runAdversarial executes the graph single-threaded in a deterministic
// order chosen to be as hostile as possible to the dropped edge class:
// among ready tasks it prefers one whose dropped predecessor has not yet
// executed, so the reordering the missing edge permits actually happens
// (a naive max-id or min-id order can coincidentally respect a dropped
// edge through the remaining edges and mask the fault). Used only by the
// verification harness via FaultDropEdge.
func (g *TileGraph) runAdversarial(m *metrics, exec func(worker, bx, by, k int)) {
	n := g.Tasks()
	completed := make([]bool, n)
	var ready []int32
	for id := 0; id < n; id++ {
		if g.indeg[id].Load() == 0 {
			ready = append(ready, int32(id))
		}
	}
	for len(ready) > 0 {
		pick := -1
		for i, id := range ready {
			if g.droppedPredPending(int(id), completed) {
				pick = i
				break
			}
		}
		if pick < 0 {
			pick = 0
			for i := 1; i < len(ready); i++ {
				if g.fallbackBefore(int(ready[i]), int(ready[pick])) {
					pick = i
				}
			}
		}
		id := int(ready[pick])
		ready[pick] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		g.execOne(m, 0, id, exec)
		completed[id] = true
		g.forReadySuccs(id, func(s int, _ bool) {
			ready = append(ready, int32(s))
		})
	}
}

// fallbackBefore orders the ready set when no racy task exists yet; its
// job is to *manufacture* a racy task by delaying the dropped-edge
// predecessors as long as possible. For ping-pong left (pred (bx−1,by,k−1))
// the order sweeps columns right-to-left with ascending by inside a
// column, so the diagonal predecessor (bx−1,by−1,k−1) of a task completes
// before its left predecessor (bx−1,by,k−1); ping-pong up is the
// transpose. Every other class is exposed by descending id (for diag,
// (0,0,k−1) then executes after the left/up predecessors it under-cuts;
// for own and the in-place classes the racy-preference rule alone already
// fires on the initially ready set).
func (g *TileGraph) fallbackBefore(a, b int) bool {
	ax, ay, ak := g.Coords(a)
	bx, by, bk := g.Coords(b)
	if !g.sameStep {
		switch g.drop {
		case EdgeLeft:
			if ax != bx {
				return ax > bx
			}
			if ay != by {
				return ay < by
			}
			return ak < bk
		case EdgeUp:
			if ay != by {
				return ay > by
			}
			if ax != bx {
				return ax < bx
			}
			return ak < bk
		}
	}
	return a > b
}

// droppedPredPending reports whether id's predecessor along the dropped
// edge class exists and has not executed yet — i.e. executing id now
// violates the order the dropped edge would have enforced.
func (g *TileGraph) droppedPredPending(id int, completed []bool) bool {
	bx, by, k := g.Coords(id)
	px, py, pk := bx, by, k
	switch g.drop {
	case EdgeOwn:
		pk = k - 1
	case EdgeLeft:
		px = bx - 1
		if !g.sameStep {
			pk = k - 1
		}
	case EdgeUp:
		py = by - 1
		if !g.sameStep {
			pk = k - 1
		}
	case EdgeDiag:
		if g.sameStep {
			return false
		}
		px, py, pk = bx-1, by-1, k-1
	default:
		return false
	}
	if px < 0 || py < 0 || pk < 0 {
		return false
	}
	return !completed[g.id(px, py, pk)]
}

// ---------------------------------------------------------------------------
// Parallel runner

// deque is one worker's ready-task queue: the owner pushes and pops at the
// tail (LIFO, preserving the serial runner's depth-first cache order),
// thieves take from the head (FIFO, stealing the oldest — most independent
// — work). Graphs are small (tens to thousands of tasks), so a mutex per
// operation is far below the cost of one tile step.
type deque struct {
	mu  sync.Mutex
	buf []int32
}

func (d *deque) push(id int32) {
	d.mu.Lock()
	d.buf = append(d.buf, id)
	d.mu.Unlock()
}

func (d *deque) popTail() (int32, bool) {
	d.mu.Lock()
	n := len(d.buf)
	if n == 0 {
		d.mu.Unlock()
		return 0, false
	}
	id := d.buf[n-1]
	d.buf = d.buf[:n-1]
	d.mu.Unlock()
	return id, true
}

func (d *deque) stealHead() (int32, bool) {
	d.mu.Lock()
	if len(d.buf) == 0 {
		d.mu.Unlock()
		return 0, false
	}
	id := d.buf[0]
	d.buf = d.buf[1:]
	d.mu.Unlock()
	return id, true
}

// parRun is the state of one parallel graph execution.
type parRun struct {
	g    *TileGraph
	m    *metrics
	exec func(worker, bx, by, k int)
	dq   []deque

	pending   atomic.Int64 // tasks pushed to deques and not yet claimed
	remaining atomic.Int64 // tasks not yet completed

	mu       sync.Mutex
	cond     *sync.Cond
	sleepers int
	done     bool
}

// runParallel drains the graph across workers worker loops driven by the
// persistent par pool. Ready tasks live on per-worker deques; idle workers
// steal, then park on a condition variable. The park protocol is
// lost-wakeup-free: a parker re-checks pending under the mutex before
// waiting, and a producer increments pending before taking the mutex to
// broadcast, so either the parker sees the new task or the producer sees
// the sleeper.
func (g *TileGraph) runParallel(m *metrics, workers int, exec func(worker, bx, by, k int)) {
	r := &parRun{g: g, m: m, exec: exec, dq: make([]deque, workers)}
	r.cond = sync.NewCond(&r.mu)
	r.remaining.Store(int64(g.Tasks()))
	seeds := 0
	for id, n := 0, g.Tasks(); id < n; id++ {
		if g.indeg[id].Load() == 0 {
			r.dq[seeds%workers].push(int32(id))
			seeds++
		}
	}
	r.pending.Store(int64(seeds))
	// ForWorkers may run several drain iterations on one goroutine when the
	// pool is busy; that is safe — worker ids are unique per goroutine, a
	// drain exits only once every task completed, and the steal scan covers
	// deques whose nominal owner never ran.
	par.ForWorkers(workers, func(w, _ int) { r.drain(w) })
}

// drain is one worker's scheduling loop: pop own tail, else steal, else
// park until new work is produced or the run completes.
func (r *parRun) drain(w int) {
	for {
		id, ok := r.dq[w].popTail()
		if !ok {
			id, ok = r.steal(w)
		}
		if !ok {
			if !r.park(w) {
				return
			}
			continue
		}
		if n := r.pending.Add(-1); r.m != nil {
			r.m.ready.Set(n)
		}
		r.runChain(w, id)
	}
}

func (r *parRun) steal(w int) (int32, bool) {
	for i := 1; i < len(r.dq); i++ {
		if id, ok := r.dq[(w+i)%len(r.dq)].stealHead(); ok {
			if r.m != nil {
				r.m.steals.Add(1)
			}
			return id, true
		}
	}
	return 0, false
}

// park blocks until pending work appears or the run is done; it returns
// false when the worker should exit. The stall counter measures how often
// workers ran dry — the scheduler's analogue of barrier idle time.
func (r *parRun) park(w int) bool {
	r.mu.Lock()
	for r.pending.Load() == 0 && !r.done {
		r.sleepers++
		if r.m != nil {
			r.m.stalls.Add(1)
			r.m.fl.Event("sched stall", "sched", map[string]any{"worker": w, "sleepers": r.sleepers})
		}
		r.cond.Wait()
		r.sleepers--
	}
	done := r.done
	r.mu.Unlock()
	return !done
}

// runChain executes a claimed task and chains through its own-(k+1)
// successors while they are ready, exactly like the serial runner. A panic
// in exec marks the run done (releasing parked workers) before
// propagating, so the pool's panic plumbing re-raises it at the caller
// instead of deadlocking.
func (r *parRun) runChain(w int, id int32) {
	defer func() {
		if p := recover(); p != nil {
			r.mu.Lock()
			r.done = true
			r.cond.Broadcast()
			r.mu.Unlock()
			panic(p)
		}
	}()
	for t := int(id); t >= 0; {
		r.g.execOne(r.m, w, t, r.exec)
		t = r.complete(w, t)
	}
}

// complete retires a task: successors that became ready are pushed to the
// executing worker's deque (waking sleepers), except the own-(k+1)
// successor, which is returned for inline chaining. The last completion
// marks the run done and releases every parked worker.
func (r *parRun) complete(w, id int) int {
	next := -1
	pushed := 0
	r.g.forReadySuccs(id, func(s int, own bool) {
		if own {
			next = s
			return
		}
		r.dq[w].push(int32(s))
		pushed++
	})
	if pushed > 0 {
		if n := r.pending.Add(int64(pushed)); r.m != nil {
			r.m.ready.Set(n)
		}
		r.mu.Lock()
		if r.sleepers > 0 {
			r.cond.Broadcast()
		}
		r.mu.Unlock()
	}
	if next >= 0 && r.m != nil {
		r.m.chained.Add(1)
	}
	if r.remaining.Add(-1) == 0 {
		r.mu.Lock()
		r.done = true
		r.cond.Broadcast()
		r.mu.Unlock()
	}
	return next
}
