package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// get drives one request through the handler without a real listener.
func get(t *testing.T, h http.Handler, path string) (int, string, http.Header) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, _ := io.ReadAll(res.Body)
	return res.StatusCode, string(body), res.Header
}

func TestMetricsEndpointWithRegistry(t *testing.T) {
	r := NewRegistry()
	r.AddStep(1000)
	r.Counter("wtb_time_tiles").Add(3)
	r.Counter(SeriesName("runs_total", "physics", "acoustic", "schedule", "wtb")).Add(1)
	r.Gauge("sched_ready").Set(5)
	r.AddPhase(PhaseStencil, 250*time.Millisecond)
	r.StartFlight(8).Event("ev", "test", nil)
	defer Swap(r)()

	code, body, hdr := get(t, DebugHandler(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	for _, want := range []string{
		"# TYPE wavetile_steps_total counter",
		"wavetile_steps_total 1",
		"wavetile_points_total 1000",
		"wavetile_wtb_time_tiles 3",
		`wavetile_runs_total{physics="acoustic",schedule="wtb"} 1`,
		"wavetile_sched_ready 5",
		`wavetile_phase_seconds_total{phase="stencil"} 0.25`,
		`wavetile_recorder_events{recorder="flight"} 1`,
		"wavetile_goroutines",
		"wavetile_heap_alloc_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

func TestMetricsEndpointWithoutRegistry(t *testing.T) {
	defer Swap(nil)()
	code, body, _ := get(t, DebugHandler(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics must stay scrapeable with no registry, got %d", code)
	}
	if !strings.Contains(body, "wavetile_goroutines") {
		t.Fatalf("runtime families missing:\n%s", body)
	}
	if strings.Contains(body, "wavetile_steps_total") {
		t.Fatalf("registry families must be absent with no registry:\n%s", body)
	}
}

func TestDebugObsEndpoints(t *testing.T) {
	r := NewRegistry()
	r.AddStep(7)
	r.StartTrace().Complete("tile", "wtb", 0, time.Now(), time.Millisecond, nil)
	r.StartFlight(8).Event("ev", "test", nil)
	defer Swap(r)()

	h := DebugHandler()
	if code, body, hdr := get(t, h, "/debug/obs"); code != http.StatusOK ||
		hdr.Get("Content-Type") != "application/json" || !strings.Contains(body, `"points": 7`) {
		t.Fatalf("/debug/obs: code %d body %s", code, body)
	}
	if code, body, _ := get(t, h, "/debug/obs/trace"); code != http.StatusOK ||
		!strings.Contains(body, `"tile"`) {
		t.Fatalf("/debug/obs/trace: code %d body %s", code, body)
	}
	if code, body, _ := get(t, h, "/debug/obs/flight"); code != http.StatusOK ||
		!strings.Contains(body, `"recorded": 1`) {
		t.Fatalf("/debug/obs/flight: code %d body %s", code, body)
	}
}

func TestDebugObsEndpoints503WhenDisabled(t *testing.T) {
	defer Swap(nil)()
	h := DebugHandler()
	for _, path := range []string{"/debug/obs", "/debug/obs/trace", "/debug/obs/flight"} {
		if code, _, _ := get(t, h, path); code != http.StatusServiceUnavailable {
			t.Errorf("%s with no registry: code %d, want 503", path, code)
		}
	}
}

func TestDebugObsRecorders503WhenNotInstalled(t *testing.T) {
	// Registry active but neither tracer nor flight installed.
	defer Swap(NewRegistry())()
	h := DebugHandler()
	for _, path := range []string{"/debug/obs/trace", "/debug/obs/flight"} {
		if code, _, _ := get(t, h, path); code != http.StatusServiceUnavailable {
			t.Errorf("%s with no recorder: code %d, want 503", path, code)
		}
	}
}

func TestServeDebugCloseReleasesListener(t *testing.T) {
	s, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr + "/metrics")
	if err != nil {
		t.Fatalf("server not reachable at %s: %v", s.Addr, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The address must be rebindable immediately — the listener is gone.
	s2, err := ServeDebug(s.Addr)
	if err != nil {
		t.Fatalf("address not released after Close: %v", err)
	}
	defer s2.Close()

	var nilSrv *DebugServer
	if err := nilSrv.Close(); err != nil {
		t.Fatal("nil DebugServer.Close must be a no-op")
	}
}
