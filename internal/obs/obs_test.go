package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"wavetile/internal/obs"
	"wavetile/internal/par"
)

// TestCounterAtomicUnderParFor hammers one counter from the parallel
// runtime the hot paths use and asserts no increments are lost.
func TestCounterAtomicUnderParFor(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("hits")
	const n, per = 2048, 64
	par.For(n, func(int) {
		for j := 0; j < per; j++ {
			c.Add(1)
		}
	})
	if got := c.Load(); got != n*per {
		t.Fatalf("counter = %d, want %d", got, n*per)
	}
	if got := r.Snapshot().Counters["hits"]; got != n*per {
		t.Fatalf("snapshot counter = %d, want %d", got, n*per)
	}
}

// TestWorkerBusyUnderParFor drives Section.Observe from concurrent workers
// and checks the per-worker table survives the race detector and sums up.
func TestWorkerBusyUnderParFor(t *testing.T) {
	r := obs.NewRegistry()
	restore := obs.Swap(r)
	defer restore()
	sec := obs.SectionStart()
	if sec == nil {
		t.Fatal("SectionStart returned nil with an active registry")
	}
	par.ForWorkers(256, func(w, i int) {
		sec.Observe(obs.PhaseStencil, w, time.Now().Add(-time.Millisecond))
	})
	sec.End()
	var total time.Duration
	for _, row := range r.Snapshot().Workers {
		total += row[obs.PhaseStencil.String()]
	}
	if total < 256*time.Millisecond {
		t.Fatalf("worker busy total = %v, want ≥ %v", total, 256*time.Millisecond)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &obs.Histogram{}
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},            // < 1µs
		{time.Microsecond, 1},                 // [1, 2) µs
		{3 * time.Microsecond, 2},             // [2, 4) µs
		{1000 * time.Microsecond, 10},         // [512, 1024) µs
		{24 * time.Hour, obs.HistBuckets - 1}, // clamped into the last bucket
	}
	for _, c := range cases {
		h.Observe(c.d)
	}
	var hs obs.HistSnapshot
	{
		r := obs.NewRegistry()
		rh := r.Histogram("h")
		for _, c := range cases {
			rh.Observe(c.d)
		}
		hs = r.Snapshot().Histograms["h"]
	}
	if hs.Count != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", hs.Count, len(cases))
	}
	want := map[int]int64{}
	for _, c := range cases {
		want[c.bucket]++
	}
	for i, n := range hs.Buckets {
		if n != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
	// Bounds are monotone and bucket 1's bound is 2µs (covers [1,2)µs... the
	// *exclusive upper* bound of bucket i is 2^i µs).
	if obs.HistBucketBound(0) != time.Microsecond || obs.HistBucketBound(1) != 2*time.Microsecond {
		t.Fatalf("bucket bounds: %v %v", obs.HistBucketBound(0), obs.HistBucketBound(1))
	}
	for i := 1; i < obs.HistBuckets-1; i++ {
		if obs.HistBucketBound(i) <= obs.HistBucketBound(i-1) {
			t.Fatalf("bounds not monotone at %d", i)
		}
	}
}

// TestDisabledIsNoOp asserts the disabled path does nothing: SectionStart
// returns nil, every nil-section method is safe, and none of it allocates.
func TestDisabledIsNoOp(t *testing.T) {
	restore := obs.Swap(nil)
	defer restore()
	if obs.Active() != nil {
		t.Fatal("Active() != nil after Swap(nil)")
	}
	sec := obs.SectionStart()
	if sec != nil {
		t.Fatal("SectionStart() != nil while disabled")
	}
	// All no-op paths must be panic-free.
	sec.Observe(obs.PhaseStencil, 0, time.Now())
	sec.End()
	if sec.Registry() != nil {
		t.Fatal("nil section has a registry")
	}
	var nilReg *obs.Registry
	if nilReg.Tracer() != nil {
		t.Fatal("nil registry has a tracer")
	}
	allocs := testing.AllocsPerRun(100, func() {
		s := obs.SectionStart()
		s.Observe(obs.PhaseInject, 1, time.Time{})
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocates %.1f objects/op, want 0", allocs)
	}
}

// TestSectionAttribution checks End distributes a section's wall time over
// phases proportionally to busy time, so phase sums track wall clock.
func TestSectionAttribution(t *testing.T) {
	r := obs.NewRegistry()
	restore := obs.Swap(r)
	defer restore()
	sec := obs.SectionStart()
	// Fabricate 30ms stencil + 10ms inject busy time via backdated starts.
	sec.Observe(obs.PhaseStencil, 0, time.Now().Add(-30*time.Millisecond))
	sec.Observe(obs.PhaseInject, 1, time.Now().Add(-10*time.Millisecond))
	time.Sleep(2 * time.Millisecond) // give the section a measurable wall
	sec.End()

	snap := r.Snapshot()
	st := snap.Phases[obs.PhaseStencil.String()]
	in := snap.Phases[obs.PhaseInject.String()]
	if st <= 0 || in <= 0 {
		t.Fatalf("phases not attributed: stencil=%v inject=%v", st, in)
	}
	ratio := float64(st) / float64(in)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("stencil/inject ratio = %.2f, want ≈ 3 (busy-proportional)", ratio)
	}
	// Attributed total never exceeds the section wall time.
	if tot := snap.PhaseTotal(); tot > time.Second {
		t.Fatalf("attributed %v, far beyond plausible wall", tot)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("c").Add(5)
	r.AddStep(100)
	r.AddPhase(obs.PhaseSparse, 7*time.Millisecond)
	before := r.Snapshot()
	r.Counter("c").Add(3)
	r.AddStep(50)
	r.AddPhase(obs.PhaseSparse, time.Millisecond)
	d := r.Snapshot().DeltaFrom(before)
	if d.Counters["c"] != 3 || d.Counters["steps"] != 1 || d.Counters["points"] != 50 {
		t.Fatalf("bad counter delta: %+v", d.Counters)
	}
	if d.Phases[obs.PhaseSparse.String()] != time.Millisecond {
		t.Fatalf("bad phase delta: %v", d.Phases)
	}
}

func TestTracerChromeJSON(t *testing.T) {
	r := obs.NewRegistry()
	tr := r.StartTrace()
	if r.StartTrace() != tr {
		t.Fatal("StartTrace not idempotent")
	}
	start := time.Now()
	tr.Complete("tile 0,0", "wtb", 1, start, 2*time.Millisecond, map[string]any{"bx": 0})
	tr.Complete("time-tile 0..8", "wtb", 0, start, 5*time.Millisecond, nil)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "X" || doc.TraceEvents[0].Dur != 2000 {
		t.Fatalf("bad first event: %+v", doc.TraceEvents[0])
	}
	var nilTr *obs.Tracer
	nilTr.Complete("x", "", 0, start, 0, nil) // no-op, no panic
	if nilTr.Len() != 0 || nilTr.Dropped() != 0 {
		t.Fatal("nil tracer reports events")
	}
}

func TestProgressThrottle(t *testing.T) {
	r := obs.NewRegistry()
	r.EnableProgress(nil, time.Hour) // throttled: nothing should emit after t=0
	r.StepsDone(1, 10)               // must not panic and must be cheap
	r.StepsDone(2, 10)
}
