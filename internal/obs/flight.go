package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// DefaultFlightCapacity is the ring size StartFlight uses when the caller
// passes a non-positive capacity: large enough to hold several time tiles
// of schedule spans, small enough (~1 MB of events) to be irrelevant to a
// multi-hour survey's memory budget.
const DefaultFlightCapacity = 8192

// FlightEvent is one record of the flight recorder: a completed span
// (DurUS > 0) or an instantaneous event. Timestamps are microseconds since
// the recorder started, matching the Chrome tracer's clock convention.
type FlightEvent struct {
	Seq   uint64         `json:"seq"` // monotone; exposes how much history was overwritten
	TSUS  float64        `json:"ts_us"`
	DurUS float64        `json:"dur_us,omitempty"`
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// Flight is a fixed-size ring buffer of recent tracer spans and events.
// Where the Chrome Tracer keeps every span until its hard cap and is meant
// for offline analysis of one bounded run, the flight recorder keeps only
// the most recent Capacity records at O(1) cost per record — the black box
// a multi-hour survey run can afford to leave on, dumpable at any moment
// via /debug/obs/flight or on panic.
type Flight struct {
	start time.Time

	mu  sync.Mutex
	buf []FlightEvent
	n   uint64 // total records ever written; buf slot = (n-1) % cap
}

// StartFlight installs (or returns the already-installed) flight recorder
// on r with the given ring capacity (≤ 0 selects DefaultFlightCapacity).
// Like StartTrace it is idempotent: the first capacity wins.
func (r *Registry) StartFlight(capacity int) *Flight {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	f := &Flight{start: time.Now(), buf: make([]FlightEvent, 0, capacity)}
	if r.flight.CompareAndSwap(nil, f) {
		return f
	}
	return r.flight.Load()
}

// Flight returns the installed flight recorder, or nil when off. Safe on a
// nil registry.
func (r *Registry) Flight() *Flight {
	if r == nil {
		return nil
	}
	return r.flight.Load()
}

// Record appends a completed span that started at start and lasted d,
// overwriting the oldest record once the ring is full. A nil recorder is a
// no-op.
func (f *Flight) Record(name, cat string, tid int, start time.Time, d time.Duration, args map[string]any) {
	if f == nil {
		return
	}
	ev := FlightEvent{
		TSUS:  float64(start.Sub(f.start).Nanoseconds()) / 1e3,
		DurUS: float64(d.Nanoseconds()) / 1e3,
		Name:  name, Cat: cat, TID: tid, Args: args,
	}
	f.push(ev)
}

// Event appends an instantaneous event (no duration) stamped now.
func (f *Flight) Event(name, cat string, args map[string]any) {
	if f == nil {
		return
	}
	f.push(FlightEvent{
		TSUS: float64(time.Since(f.start).Nanoseconds()) / 1e3,
		Name: name, Cat: cat, Args: args,
	})
}

func (f *Flight) push(ev FlightEvent) {
	f.mu.Lock()
	ev.Seq = f.n
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, ev)
	} else {
		f.buf[f.n%uint64(cap(f.buf))] = ev
	}
	f.n++
	f.mu.Unlock()
}

// Capacity returns the ring size.
func (f *Flight) Capacity() int {
	if f == nil {
		return 0
	}
	return cap(f.buf)
}

// Recorded returns how many records were ever written (including ones the
// ring has since overwritten).
func (f *Flight) Recorded() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Events returns the surviving records in chronological order.
func (f *Flight) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.n <= uint64(cap(f.buf)) {
		return append([]FlightEvent(nil), f.buf...)
	}
	head := int(f.n % uint64(cap(f.buf))) // oldest surviving record
	out := make([]FlightEvent, 0, cap(f.buf))
	out = append(out, f.buf[head:]...)
	return append(out, f.buf[:head]...)
}

// flightDump is the JSON document WriteJSON emits.
type flightDump struct {
	Capacity int           `json:"capacity"`
	Recorded uint64        `json:"recorded"`
	Dropped  uint64        `json:"dropped"` // overwritten, no longer in the ring
	Events   []FlightEvent `json:"events"`
}

// WriteJSON dumps the recorder state and surviving events as one JSON
// object.
func (f *Flight) WriteJSON(w io.Writer) error {
	evs := f.Events()
	d := flightDump{Capacity: f.Capacity(), Recorded: f.Recorded(), Events: evs}
	d.Dropped = d.Recorded - uint64(len(evs))
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// DumpFlightOnPanic returns a function to defer at the top of a run driver:
// if the goroutine panics, the active registry's flight recorder is dumped
// to w before the panic is re-raised, so the last moments of a crashed
// multi-hour run are not lost with the process.
//
//	defer obs.DumpFlightOnPanic(os.Stderr)()
func DumpFlightOnPanic(w io.Writer) func() {
	return func() {
		p := recover()
		if p == nil {
			return
		}
		if f := Active().Flight(); f != nil {
			fmt.Fprintf(w, "obs: flight recorder dump after panic %v:\n", p)
			if err := f.WriteJSON(w); err != nil {
				fmt.Fprintf(w, "obs: flight dump failed: %v\n", err)
			}
		}
		panic(p)
	}
}

// SpanRecorder fans one completed schedule span out to the installed span
// sinks: the unbounded Chrome tracer (full-fidelity offline analysis of a
// bounded run), the flight recorder (bounded recent history for long runs),
// or both. Schedules fetch one per run — the zero value is a no-op, so the
// uninstrumented path stays a nil registry check plus two nil comparisons.
type SpanRecorder struct {
	tr *Tracer
	fl *Flight
}

// Spans returns the registry's span sinks; safe on a nil registry.
func (r *Registry) Spans() SpanRecorder {
	if r == nil {
		return SpanRecorder{}
	}
	return SpanRecorder{tr: r.tracer.Load(), fl: r.flight.Load()}
}

// On reports whether any span sink is installed — callers use it to skip
// clock readings and args-map construction entirely.
func (s SpanRecorder) On() bool { return s.tr != nil || s.fl != nil }

// Complete records one completed span in every installed sink.
func (s SpanRecorder) Complete(name, cat string, tid int, start time.Time, d time.Duration, args map[string]any) {
	s.tr.Complete(name, cat, tid, start, d, args)
	s.fl.Record(name, cat, tid, start, d, args)
}

// Event records an instantaneous event. Only the flight recorder keeps
// instants (the Chrome tracer stores complete spans only).
func (s SpanRecorder) Event(name, cat string, args map[string]any) {
	s.fl.Event(name, cat, args)
}
