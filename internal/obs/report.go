package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"
)

// ReportVersion is the schema version stamped into every Report. Consumers
// (benchdiff, the future roofline-v2 autotune trainer) key compatibility
// decisions off it; bump it on breaking field changes.
const ReportVersion = 1

// ReportKind tags run-report JSON documents so flexible readers can tell
// them apart from bench tables and trace dumps.
const ReportKind = "wavetile.run-report"

// HostInfo fingerprints the machine a run executed on. Reports from
// different hosts must never be compared as paired samples; the fingerprint
// is what lets tooling refuse to.
type HostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers,omitempty"` // par.Workers at run time, when the producer knows it
}

// HostFingerprint captures the current process's host identity.
func HostFingerprint() HostInfo {
	return HostInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// RunInfo records the configuration of the measured run.
type RunInfo struct {
	Physics    string     `json:"physics"`
	SpaceOrder int        `json:"space_order"`
	Shape      [3]int     `json:"shape"`
	Spacing    [3]float64 `json:"spacing,omitempty"`
	Steps      int        `json:"steps"`
	DtSeconds  float64    `json:"dt_seconds,omitempty"`
	Schedule   string     `json:"schedule"`
	Config     string     `json:"config,omitempty"` // schedule parameters, e.g. "TT=8 tile=32x32 block=8x8"
	// Kernel is the dispatched stencil kernel ("physics/rN/variant");
	// variant "generic" marks the radius-generic slow path.
	Kernel string `json:"kernel,omitempty"`
	Sources    int        `json:"sources,omitempty"`
	Receivers  int        `json:"receivers,omitempty"`
}

// RooflineAttribution joins one measured run against the cache-simulated
// roofline prediction for the same (physics, order, schedule, config)
// point: where the model says the run should sit, and what fraction of
// that the run achieved. These are the measured-vs-predicted datapoints
// the roofline-v2 predictive autotuner trains on.
type RooflineAttribution struct {
	// Machine is the roofline machine model the prediction used: a measured
	// host fingerprint ("host/<goarch>-<N>c", from internal/hostcal) when one
	// is available, else an explicitly marked paper preset
	// ("preset/broadwell"). With a preset, AchievedFraction is a fraction
	// *of that model* — stable for trend tracking, not a host utilization
	// figure; with a measured machine it is a genuine host fraction.
	Machine string `json:"machine"`
	// TraceN/TraceNt size the reduced trace grid the prediction replayed.
	TraceN  int `json:"trace_n"`
	TraceNt int `json:"trace_nt"`

	// BWEff and OverheadNSPerPoint record the calibrated-roofline parameters
	// (internal/roofline.Calibrated) behind the prediction; absent when the
	// prediction is uncalibrated.
	BWEff              float64 `json:"bw_eff,omitempty"`
	OverheadNSPerPoint float64 `json:"overhead_ns_per_point,omitempty"`

	PredictedGPointsPS float64 `json:"predicted_gpoints_per_sec"`
	PredictedBound     string  `json:"predicted_bound"` // "compute", "L2→L1", "L3→L2", "DRAM"
	// AchievedFraction = measured GPts/s ÷ predicted GPts/s.
	AchievedFraction float64 `json:"achieved_fraction"`

	// ModelDRAMBytes is the simulated DRAM traffic scaled from the trace
	// grid to the run's point count; EffectiveDRAMGBs is that traffic
	// moved in the measured wall time — the run's effective memory
	// bandwidth under the model's traffic estimate.
	ModelDRAMBytes    uint64  `json:"model_dram_bytes"`
	EffectiveDRAMGBs  float64 `json:"effective_dram_gb_per_s"`
	MachineDRAMGBs    float64 `json:"machine_dram_gb_per_s"`
	BandwidthFraction float64 `json:"bandwidth_fraction"` // effective ÷ machine ceiling
}

// Report is the machine-readable record of one propagation run: config,
// host fingerprint, measured timings and counters, and (when attributed)
// the roofline join. It is the interchange format between the run drivers
// (wavesim, propagate, wavebench), the regression gate (benchdiff) and the
// future predictive autotuner.
type Report struct {
	Version       int      `json:"version"`
	Kind          string   `json:"kind"`
	CreatedUnixMS int64    `json:"created_unix_ms"`
	Host          HostInfo `json:"host"`
	Run           RunInfo  `json:"run"`

	ElapsedNS     int64   `json:"elapsed_ns"`
	Points        int64   `json:"points"`
	GPointsPerSec float64 `json:"gpoints_per_sec"`

	PhasesNS map[string]int64 `json:"phases_ns,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`

	Roofline *RooflineAttribution `json:"roofline,omitempty"`
}

// NewReport returns a report stamped with version, kind, creation time and
// the current host fingerprint.
func NewReport() *Report {
	return &Report{
		Version:       ReportVersion,
		Kind:          ReportKind,
		CreatedUnixMS: time.Now().UnixMilli(),
		Host:          HostFingerprint(),
	}
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: write report: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write report: %w", err)
	}
	return f.Close()
}

// ReadReportFile parses a report written by WriteFile.
func ReadReportFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("obs: read report %s: %w", path, err)
	}
	if r.Kind != "" && r.Kind != ReportKind {
		return nil, fmt.Errorf("obs: %s is a %q document, not a run report", path, r.Kind)
	}
	return &r, nil
}
