package obs

import (
	"log/slog"
	"sync/atomic"
	"time"
)

// progress throttles and emits structured run-progress records.
type progress struct {
	log   *slog.Logger
	every int64 // ns between records
	start time.Time

	lastLog atomic.Int64 // ns since start of the last emitted record
}

// EnableProgress makes the schedules emit a structured progress record
// (steps done, steps/s, live GPts/s, ETA) through l at most once per
// `every`. A nil logger uses slog.Default().
func (r *Registry) EnableProgress(l *slog.Logger, every time.Duration) {
	if l == nil {
		l = slog.Default()
	}
	if every <= 0 {
		every = 2 * time.Second
	}
	r.prog.Store(&progress{log: l, every: every.Nanoseconds(), start: time.Now()})
}

// StepsDone reports cumulative schedule progress: done of total timesteps
// are complete. Called by the run drivers (once per timestep under the
// spatial schedule, once per time tile under WTB); it no-ops unless
// EnableProgress was called and the throttle interval has passed.
func (r *Registry) StepsDone(done, total int) {
	p := r.prog.Load()
	if p == nil {
		return
	}
	now := time.Since(p.start).Nanoseconds()
	last := p.lastLog.Load()
	if now-last < p.every || !p.lastLog.CompareAndSwap(last, now) {
		return
	}
	elapsed := float64(now) / 1e9
	if elapsed <= 0 || done <= 0 {
		return
	}
	rate := float64(done) / elapsed
	eta := time.Duration(float64(total-done) / rate * 1e9).Round(time.Second)
	p.log.Info("propagation progress",
		"steps", done,
		"total", total,
		"steps_per_s", float64(int(rate*10))/10,
		"gpts_per_s", float64(int(float64(r.points.Load())/elapsed/1e9*1000))/1000,
		"eta", eta.String(),
	)
}
