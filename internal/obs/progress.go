package obs

import (
	"log/slog"
	"sync/atomic"
	"time"
)

// progress throttles and emits structured run-progress records.
type progress struct {
	log   *slog.Logger
	every int64 // ns between records
	start time.Time

	lastLog atomic.Int64 // ns since start of the last emitted record
}

// EnableProgress makes the schedules emit a structured progress record
// (steps done, steps/s, live GPts/s, ETA) through l at most once per
// `every`. A nil logger uses slog.Default().
func (r *Registry) EnableProgress(l *slog.Logger, every time.Duration) {
	if l == nil {
		l = slog.Default()
	}
	if every <= 0 {
		every = 2 * time.Second
	}
	r.prog.Store(&progress{log: l, every: every.Nanoseconds(), start: time.Now()})
}

// Meter reports throttled progress over an arbitrary unit sequence — the
// shots of a survey, the jobs of a sweep — independent of the per-run step
// progress StepsDone provides. Where StepsDone is fed by the schedules and
// measures one propagation, a Meter belongs to the driver looping *over*
// runs, so a multi-shot survey can report shot-level ETA while each shot
// separately reports step-level ETA.
type Meter struct {
	log   *slog.Logger
	label string
	total int
	every int64
	start time.Time

	lastLog atomic.Int64
}

// NewMeter returns a progress meter over total units, logging through l (nil
// uses slog.Default()) at most once per `every` (≤ 0 defaults to 2s). The
// final unit always logs, throttle regardless.
func NewMeter(l *slog.Logger, label string, total int, every time.Duration) *Meter {
	if l == nil {
		l = slog.Default()
	}
	if every <= 0 {
		every = 2 * time.Second
	}
	return &Meter{log: l, label: label, total: total, every: every.Nanoseconds(), start: time.Now()}
}

// Done reports that `done` of the meter's units are complete, emitting a
// structured record (rate, mean seconds per unit, ETA) if the throttle
// interval has passed or the sequence just finished.
func (m *Meter) Done(done int) {
	if m == nil || done <= 0 {
		return
	}
	now := time.Since(m.start).Nanoseconds()
	if done < m.total {
		last := m.lastLog.Load()
		if now-last < m.every || !m.lastLog.CompareAndSwap(last, now) {
			return
		}
	}
	elapsed := float64(now) / 1e9
	if elapsed <= 0 {
		return
	}
	rate := float64(done) / elapsed
	eta := time.Duration(float64(m.total-done) / rate * 1e9).Round(time.Second)
	m.log.Info(m.label+" progress",
		"done", done,
		"total", m.total,
		"sec_per_unit", float64(int(elapsed/float64(done)*100))/100,
		"eta", eta.String(),
	)
}

// StepsDone reports cumulative schedule progress: done of total timesteps
// are complete. Called by the run drivers (once per timestep under the
// spatial schedule, once per time tile under WTB); it no-ops unless
// EnableProgress was called and the throttle interval has passed.
func (r *Registry) StepsDone(done, total int) {
	p := r.prog.Load()
	if p == nil {
		return
	}
	now := time.Since(p.start).Nanoseconds()
	last := p.lastLog.Load()
	if now-last < p.every || !p.lastLog.CompareAndSwap(last, now) {
		return
	}
	elapsed := float64(now) / 1e9
	if elapsed <= 0 || done <= 0 {
		return
	}
	rate := float64(done) / elapsed
	eta := time.Duration(float64(total-done) / rate * 1e9).Round(time.Second)
	p.log.Info("propagation progress",
		"steps", done,
		"total", total,
		"steps_per_s", float64(int(rate*10))/10,
		"gpts_per_s", float64(int(float64(r.points.Load())/elapsed/1e9*1000))/1000,
		"eta", eta.String(),
	)
}
