// Package obs is the observability layer of the repository: atomic
// counters, gauges and duration histograms (labeled series via SeriesName)
// behind a Registry snapshot API, per-phase wall-clock attribution for the
// hot paths (stencil update, fused injection, fused sampling, unfused
// sparse operators), a tile-schedule tracer exporting Chrome trace_event
// JSON, a fixed-size flight recorder for bounded-memory span history on
// long runs, structured progress logging via log/slog, machine-readable
// roofline-attributed run reports (Report), and an opt-in debug HTTP server
// exposing pprof, expvar and a Prometheus /metrics endpoint.
//
// Observability is off by default and near-zero-overhead when off: every
// instrumentation site begins with a single atomic pointer load (Active)
// and a nil check, and takes no clock readings, allocations or locks on the
// disabled path. Enabling is done by installing a Registry with SetActive
// (or Swap); the schedules in internal/tiling and the propagators in
// internal/wave then feed it.
//
// The registry is process-global (like runtime/trace): two simultaneously
// observed simulations in one process share — and therefore mix — one
// registry. Snapshot deltas (Snapshot.DeltaFrom) recover per-run numbers
// for the common sequential case.
package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one instrumented work category of a propagation run.
type Phase uint8

// The measured phases. PhaseStencil is the finite-difference grid update;
// PhaseInject and PhaseSample are the fused sparse source injection and
// receiver sampling (Listings 4–5 of the paper); PhaseSparse is the unfused
// Listing-1 baseline sparse pass applied between timesteps.
const (
	PhaseStencil Phase = iota
	PhaseInject
	PhaseSample
	PhaseSparse
	NumPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseStencil:
		return "stencil"
	case PhaseInject:
		return "inject"
	case PhaseSample:
		return "sample"
	case PhaseSparse:
		return "sparse"
	}
	return "unknown"
}

// PhaseOverhead is the snapshot key under which run drivers report
// unattributed schedule time: wall time minus the measured phases
// (fork/join, tile-loop bookkeeping, skipped-tile scanning).
const PhaseOverhead = "overhead"

// active is the process-global registry; nil means observability is off.
var active atomic.Pointer[Registry]

// Active returns the installed registry, or nil when observability is off.
// It is the single check every instrumentation site performs.
func Active() *Registry { return active.Load() }

// SetActive installs r as the process-global registry (nil disables).
func SetActive(r *Registry) { active.Store(r) }

// Swap installs r and returns a func restoring the previous registry.
func Swap(r *Registry) func() {
	prev := active.Swap(r)
	return func() { active.Store(prev) }
}

// workerSlot accumulates one worker's busy nanoseconds per phase. Slots are
// padded to a cache line so concurrent workers don't false-share.
type workerSlot struct {
	busy [NumPhases]atomic.Int64
	_    [(64 - (int(NumPhases)*8)%64) % 64]byte
}

// Registry collects every observable of a run. All methods are safe for
// concurrent use; the hot-path ones (phase and worker accumulation, counter
// Add) are single atomic operations.
type Registry struct {
	// First-class hot counters, updated once per propagator Step.
	steps  atomic.Int64
	points atomic.Int64

	// Wall time attributed to each phase (see Section).
	phaseWall [NumPhases]atomic.Int64

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// Per-worker busy time, indexed by the par worker id (clamped into
	// range; ids beyond the preallocated slots share the last one).
	workers []workerSlot

	tracer atomic.Pointer[Tracer]
	flight atomic.Pointer[Flight]
	prog   atomic.Pointer[progress]
}

// NewRegistry returns an empty registry sized for the host's parallelism.
func NewRegistry() *Registry {
	n := runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		workers:  make([]workerSlot, n),
	}
}

// Counter returns the named counter, creating it on first use. Callers on
// hot paths should look the counter up once and hold the pointer.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named duration histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// AddStep records one propagator Step invocation of n grid-point updates.
func (r *Registry) AddStep(points int64) {
	r.steps.Add(1)
	r.points.Add(points)
}

// Points returns the cumulative grid-point updates recorded by AddStep.
func (r *Registry) Points() int64 { return r.points.Load() }

// AddPhase attributes d of wall time directly to phase p — used by run
// drivers for phases they time sequentially (e.g. the unfused sparse pass).
func (r *Registry) AddPhase(p Phase, d time.Duration) {
	if d > 0 {
		r.phaseWall[p].Add(d.Nanoseconds())
	}
}

// PhaseWalls returns the wall nanoseconds attributed to each phase so far.
func (r *Registry) PhaseWalls() [NumPhases]int64 {
	var w [NumPhases]int64
	for p := range w {
		w[p] = r.phaseWall[p].Load()
	}
	return w
}

// addWorkerBusy charges ns of busy time to phase p on worker w.
func (r *Registry) addWorkerBusy(p Phase, w int, ns int64) {
	if w < 0 {
		w = 0
	}
	if w >= len(r.workers) {
		w = len(r.workers) - 1
	}
	r.workers[w].busy[p].Add(ns)
}

// Section attributes the wall time of one parallel region (one propagator
// Step) to phases. Block workers call Observe concurrently, charging their
// busy time per phase; End then distributes the section's *wall* time over
// the phases in proportion to busy time, so that summing phase durations
// across a run reproduces the run's wall clock (±rounding) even though the
// workers' busy totals overlap in real time.
//
// A nil *Section is a valid no-op, so callers on the disabled path pay only
// the Active() load in SectionStart.
type Section struct {
	r     *Registry
	start time.Time
	busy  [NumPhases]atomic.Int64
}

// SectionStart opens a section against the active registry, or returns nil
// (a no-op section) when observability is off.
func SectionStart() *Section {
	r := Active()
	if r == nil {
		return nil
	}
	return &Section{r: r, start: time.Now()}
}

// Registry returns the registry the section reports to (nil for no-op).
func (s *Section) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.r
}

// Observe charges the time elapsed since start to phase p on behalf of
// worker w. Safe for concurrent calls with distinct or equal w.
func (s *Section) Observe(p Phase, w int, start time.Time) {
	if s == nil {
		return
	}
	ns := time.Since(start).Nanoseconds()
	if ns <= 0 {
		return
	}
	s.busy[p].Add(ns)
	s.r.addWorkerBusy(p, w, ns)
}

// End closes the section and distributes its wall time over the observed
// phases proportionally to busy time. Sections with no observations leave
// their wall time unattributed (it surfaces as PhaseOverhead residual).
func (s *Section) End() {
	if s == nil {
		return
	}
	wall := time.Since(s.start).Nanoseconds()
	if wall <= 0 {
		return
	}
	var busy [NumPhases]int64
	var total int64
	for p := range s.busy {
		busy[p] = s.busy[p].Load()
		total += busy[p]
	}
	if total == 0 {
		return
	}
	for p := Phase(0); p < NumPhases; p++ {
		if busy[p] == 0 {
			continue
		}
		share := int64(float64(wall) * float64(busy[p]) / float64(total))
		s.r.phaseWall[p].Add(share)
	}
}
