package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomically settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistBuckets is the bucket count of a Histogram: bucket 0 holds
// observations below 1µs, bucket i ≥ 1 holds [2^(i-1), 2^i) µs, and the
// last bucket absorbs everything at or above 2^(HistBuckets-2) µs
// (≈ 2.3 hours), so no observation is dropped.
const HistBuckets = 34

// Histogram is a lock-free duration histogram over exponentially growing
// microsecond buckets, plus an exact count and sum.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// histBucket maps a duration to its bucket index.
func histBucket(d time.Duration) int {
	us := d.Nanoseconds() / 1e3
	if us <= 0 {
		return 0
	}
	i := bits.Len64(uint64(us))
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	return i
}

// HistBucketBound returns the exclusive upper bound of bucket i; the last
// bucket is unbounded and reports a zero duration.
func HistBucketBound(i int) time.Duration {
	if i < 0 || i >= HistBuckets-1 {
		return 0
	}
	return time.Duration(1<<uint(i)) * time.Microsecond
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[histBucket(d)].Add(1)
	h.count.Add(1)
	if ns := d.Nanoseconds(); ns > 0 {
		h.sum.Add(ns)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Buckets [HistBuckets]int64 `json:"buckets"`
	Count   int64              `json:"count"`
	SumNS   int64              `json:"sum_ns"`
}

// Snapshot is a consistent-enough point-in-time copy of a registry: each
// value is read atomically (the set of values is not mutually atomic, which
// is fine for monotone counters).
type Snapshot struct {
	Counters   map[string]int64           `json:"counters"`
	Gauges     map[string]int64           `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot    `json:"histograms,omitempty"`
	Phases     map[string]time.Duration   `json:"phases"`
	Workers    []map[string]time.Duration `json:"workers,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Phases:   map[string]time.Duration{},
	}
	s.Counters["steps"] = r.steps.Load()
	s.Counters["points"] = r.points.Load()
	for p := Phase(0); p < NumPhases; p++ {
		s.Phases[p.String()] = time.Duration(r.phaseWall[p].Load())
	}

	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for k, v := range counters {
		s.Counters[k] = v.Load()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Load()
	}
	if len(hists) > 0 {
		s.Histograms = map[string]HistSnapshot{}
		for k, h := range hists {
			var hs HistSnapshot
			for i := range hs.Buckets {
				hs.Buckets[i] = h.buckets[i].Load()
			}
			hs.Count = h.count.Load()
			hs.SumNS = h.sum.Load()
			s.Histograms[k] = hs
		}
	}

	// Per-worker busy table, trimmed to workers that did anything.
	for w := range r.workers {
		var row map[string]time.Duration
		for p := Phase(0); p < NumPhases; p++ {
			if ns := r.workers[w].busy[p].Load(); ns > 0 {
				if row == nil {
					row = map[string]time.Duration{}
				}
				row[p.String()] = time.Duration(ns)
			}
		}
		if row != nil {
			for len(s.Workers) < w {
				s.Workers = append(s.Workers, nil)
			}
			s.Workers = append(s.Workers, row)
		}
	}
	return s
}

// PhaseTotal sums the attributed phase durations of the snapshot.
func (s Snapshot) PhaseTotal() time.Duration {
	var t time.Duration
	for _, d := range s.Phases {
		t += d
	}
	return t
}

// DeltaFrom subtracts an earlier snapshot's counters and phases, recovering
// the numbers of one run on a shared registry. Gauges, histograms and the
// worker table are taken from s unchanged (they are either instantaneous or
// not meaningfully subtractable).
func (s Snapshot) DeltaFrom(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     s.Gauges,
		Histograms: s.Histograms,
		Phases:     map[string]time.Duration{},
		Workers:    s.Workers,
	}
	for k, v := range s.Counters {
		d.Counters[k] = v - prev.Counters[k]
	}
	for k, v := range s.Phases {
		d.Phases[k] = v - prev.Phases[k]
	}
	return d
}
