package obs

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
)

// promNamespace prefixes every exported metric family.
const promNamespace = "wavetile"

// SeriesName builds a labeled metric name — name{k1="v1",k2="v2"} — from
// key/value pairs, with labels sorted by key so one label set always maps
// to one series string. Registry counters/gauges/histograms created under
// such names become labeled Prometheus series on /metrics; instrumentation
// sites use it for per-propagator and per-schedule breakdowns:
//
//	reg.Counter(obs.SeriesName("runs_total", "physics", "acoustic", "schedule", "wtb")).Add(1)
//
// An odd trailing key is dropped. Label values must not contain '"' or
// newlines (none of the repo's label values — physics, schedule names — do).
func SeriesName(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	type label struct{ k, v string }
	labels := make([]label, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		labels = append(labels, label{kv[i], kv[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].k < labels[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", promSanitize(l.k), l.v)
	}
	b.WriteByte('}')
	return b.String()
}

// splitSeries separates a series string into its base name and label block
// ("" when unlabeled). The label block keeps its braces' content verbatim.
func splitSeries(series string) (base, labels string) {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i], strings.TrimSuffix(series[i+1:], "}")
	}
	return series, ""
}

// promSanitize maps an arbitrary metric or label name onto the Prometheus
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func promSanitize(name string) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFamily groups the series of one metric family for exposition.
type promFamily struct {
	name  string // fully qualified (namespace + sanitized base)
	typ   string // "counter" | "gauge"
	lines []string
}

// WriteProm writes the registry's state — plus Go runtime stats — in the
// Prometheus text exposition format (version 0.0.4). It is the body of the
// /metrics endpoint; reg may be nil, in which case only the runtime family
// is emitted (the process is scrapeable even before a run installs a
// registry).
func WriteProm(w io.Writer, reg *Registry) error {
	var fams []promFamily

	if reg != nil {
		snap := reg.Snapshot()

		counters := promFamilies("counter", snap.Counters, func(v int64) string {
			return fmt.Sprintf("%d", v)
		})
		// The two first-class counters keep their historical snapshot keys
		// but gain the conventional _total suffix on the wire.
		counters = renameFamily(counters, promNamespace+"_steps", promNamespace+"_steps_total")
		counters = renameFamily(counters, promNamespace+"_points", promNamespace+"_points_total")
		fams = append(fams, counters...)
		fams = append(fams, promFamilies("gauge", snap.Gauges, func(v int64) string {
			return fmt.Sprintf("%d", v)
		})...)

		phases := promFamily{name: promNamespace + "_phase_seconds_total", typ: "counter"}
		for _, p := range sortedKeys(snap.Phases) {
			phases.lines = append(phases.lines,
				fmt.Sprintf("%s{phase=%q} %g", phases.name, p, snap.Phases[p].Seconds()))
		}
		fams = append(fams, phases)

		if len(snap.Workers) > 0 {
			busy := promFamily{name: promNamespace + "_worker_busy_seconds_total", typ: "counter"}
			for wi, row := range snap.Workers {
				for _, p := range sortedKeys(row) {
					busy.lines = append(busy.lines,
						fmt.Sprintf("%s{worker=\"%d\",phase=%q} %g", busy.name, wi, p, row[p].Seconds()))
				}
			}
			fams = append(fams, busy)
		}

		for _, name := range sortedKeys(snap.Histograms) {
			fams = append(fams, promHistogram(name, snap.Histograms[name]))
		}

		recorders := promFamily{name: promNamespace + "_recorder_events", typ: "gauge"}
		if tr := reg.Tracer(); tr != nil {
			recorders.lines = append(recorders.lines,
				fmt.Sprintf("%s{recorder=\"trace\"} %d", recorders.name, tr.Len()))
		}
		if fl := reg.Flight(); fl != nil {
			recorders.lines = append(recorders.lines,
				fmt.Sprintf("%s{recorder=\"flight\"} %d", recorders.name, fl.Recorded()))
		}
		if len(recorders.lines) > 0 {
			fams = append(fams, recorders)
		}
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rt := []promFamily{
		{name: promNamespace + "_goroutines", typ: "gauge",
			lines: []string{fmt.Sprintf("%s_goroutines %d", promNamespace, runtime.NumGoroutine())}},
		{name: promNamespace + "_gomaxprocs", typ: "gauge",
			lines: []string{fmt.Sprintf("%s_gomaxprocs %d", promNamespace, runtime.GOMAXPROCS(0))}},
		{name: promNamespace + "_heap_alloc_bytes", typ: "gauge",
			lines: []string{fmt.Sprintf("%s_heap_alloc_bytes %d", promNamespace, ms.HeapAlloc)}},
		{name: promNamespace + "_heap_sys_bytes", typ: "gauge",
			lines: []string{fmt.Sprintf("%s_heap_sys_bytes %d", promNamespace, ms.HeapSys)}},
		{name: promNamespace + "_gc_cycles_total", typ: "counter",
			lines: []string{fmt.Sprintf("%s_gc_cycles_total %d", promNamespace, ms.NumGC)}},
		{name: promNamespace + "_gc_pause_seconds_total", typ: "counter",
			lines: []string{fmt.Sprintf("%s_gc_pause_seconds_total %g", promNamespace, float64(ms.PauseTotalNs)/1e9)}},
	}
	fams = append(fams, rt...)

	for _, f := range fams {
		if len(f.lines) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, l := range f.lines {
			if _, err := fmt.Fprintln(w, l); err != nil {
				return err
			}
		}
	}
	return nil
}

// promFamilies converts one snapshot map into exposition families, merging
// labeled series (created via SeriesName) of the same base name into one
// family.
func promFamilies[V any](typ string, m map[string]V, format func(V) string) []promFamily {
	byBase := map[string]*promFamily{}
	var order []string
	for _, series := range sortedKeys(m) {
		base, labels := splitSeries(series)
		name := promNamespace + "_" + promSanitize(base)
		f := byBase[name]
		if f == nil {
			f = &promFamily{name: name, typ: typ}
			byBase[name] = f
			order = append(order, name)
		}
		line := f.name
		if labels != "" {
			line += "{" + labels + "}"
		}
		f.lines = append(f.lines, line+" "+format(m[series]))
	}
	sort.Strings(order)
	out := make([]promFamily, 0, len(order))
	for _, name := range order {
		out = append(out, *byBase[name])
	}
	return out
}

// renameFamily renames one family in place (wire-name adjustments).
func renameFamily(fams []promFamily, from, to string) []promFamily {
	for i := range fams {
		if fams[i].name != from {
			continue
		}
		for j, l := range fams[i].lines {
			fams[i].lines[j] = to + strings.TrimPrefix(l, from)
		}
		fams[i].name = to
	}
	return fams
}

// promHistogram renders one duration histogram as a Prometheus histogram in
// seconds: cumulative buckets with exponential le bounds, then +Inf, _sum
// and _count.
func promHistogram(name string, h HistSnapshot) promFamily {
	f := promFamily{name: promNamespace + "_" + promSanitize(name) + "_seconds", typ: "histogram"}
	cum := int64(0)
	for i := 0; i < HistBuckets-1; i++ {
		cum += h.Buckets[i]
		if h.Buckets[i] == 0 && i > 0 && cum == 0 {
			continue // skip leading empty buckets to keep the page readable
		}
		f.lines = append(f.lines, fmt.Sprintf("%s_bucket{le=\"%g\"} %d",
			f.name, HistBucketBound(i).Seconds(), cum))
	}
	cum += h.Buckets[HistBuckets-1]
	f.lines = append(f.lines,
		fmt.Sprintf("%s_bucket{le=\"+Inf\"} %d", f.name, cum),
		fmt.Sprintf("%s_sum %g", f.name, float64(h.SumNS)/1e9),
		fmt.Sprintf("%s_count %d", f.name, h.Count))
	return f
}

// sortedKeys returns m's keys in sorted order (deterministic exposition).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
