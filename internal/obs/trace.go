package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// maxTraceEvents caps the tracer's buffer; events beyond the cap are
// counted as dropped instead of growing memory without bound (an autotune
// sweep can drive thousands of WTB runs through one registry).
const maxTraceEvents = 1 << 20

// TraceEvent is one Chrome trace_event record ("ph":"X" complete events
// only). Timestamps and durations are microseconds, per the format.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer records schedule spans — each (time-tile, space-tile) execution of
// the WTB schedule and each timestep of the spatial schedule — for export
// as Chrome trace_event JSON, loadable in chrome://tracing or Perfetto.
type Tracer struct {
	start time.Time

	mu      sync.Mutex
	events  []TraceEvent
	dropped int
}

// StartTrace installs (or returns the already-installed) tracer on r; the
// schedules in internal/tiling begin recording spans once one is present.
func (r *Registry) StartTrace() *Tracer {
	t := &Tracer{start: time.Now()}
	if r.tracer.CompareAndSwap(nil, t) {
		return t
	}
	return r.tracer.Load()
}

// Tracer returns the installed tracer, or nil when tracing is off.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer.Load()
}

// Complete records a complete span that started at start and lasted d, on
// virtual thread tid. Safe for concurrent use; a nil tracer is a no-op.
func (t *Tracer) Complete(name, cat string, tid int, start time.Time, d time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	ev := TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS:   float64(start.Sub(t.start).Nanoseconds()) / 1e3,
		Dur:  float64(d.Nanoseconds()) / 1e3,
		TID:  tid,
		Args: args,
	}
	t.mu.Lock()
	if len(t.events) >= maxTraceEvents {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many spans were discarded after the buffer filled.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the recorded spans (tests, custom exporters).
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// WriteChrome writes the spans as a Chrome trace_event JSON object.
func (t *Tracer) WriteChrome(w io.Writer) error {
	doc := struct {
		TraceEvents     []TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		Dropped         int          `json:"droppedEventCount,omitempty"`
	}{
		TraceEvents:     t.Events(),
		DisplayTimeUnit: "ms",
		Dropped:         t.Dropped(),
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
