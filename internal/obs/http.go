package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the one-time expvar publication: expvar.Publish panics
// on duplicate names, and ServeDebug may be called more than once.
var expvarOnce sync.Once

// ServeDebug starts an HTTP debug server on addr (e.g. "localhost:6060")
// exposing
//
//	/debug/pprof/...   the standard runtime profiles
//	/debug/vars        expvar, including an "obs" var with the live snapshot
//	/debug/obs         the active registry's snapshot as JSON
//	/debug/obs/trace   the recorded schedule spans as Chrome trace JSON
//
// The snapshot endpoints read the *active* registry at request time, so a
// long run can be inspected live. Returns the bound address (useful with
// ":0") after the listener is up; the server itself runs until process
// exit.
func ServeDebug(addr string) (string, error) {
	expvarOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any {
			if r := Active(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		r := Active()
		if r == nil {
			http.Error(w, "observability disabled (no active registry)", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/obs/trace", func(w http.ResponseWriter, _ *http.Request) {
		t := Active().Tracer()
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteChrome(w)
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug server: %w", err)
	}
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}
