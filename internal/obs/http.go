package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the one-time expvar publication: expvar.Publish panics
// on duplicate names, and the handler may be built more than once.
var expvarOnce sync.Once

// DebugHandler returns the debug/telemetry HTTP handler that ServeDebug
// serves:
//
//	/metrics           Prometheus text exposition: registry counters,
//	                   gauges, histograms (labeled series included), phase
//	                   and per-worker seconds, plus Go runtime stats.
//	                   Always 200; runtime-only before a registry is active.
//	/debug/pprof/...   the standard runtime profiles
//	/debug/vars        expvar, including an "obs" var with the live snapshot
//	/debug/obs         the active registry's snapshot as JSON
//	/debug/obs/trace   the recorded schedule spans as Chrome trace JSON
//	/debug/obs/flight  the flight recorder's ring contents as JSON
//
// The snapshot endpoints read the *active* registry at request time, so a
// long run can be inspected live; endpoints whose recorder is not installed
// answer 503. Exposed separately from ServeDebug so tests can drive the
// endpoints through net/http/httptest without binding a real listener.
func DebugHandler() http.Handler {
	return DebugMux()
}

// DebugMux returns the debug/telemetry routes as a concrete *ServeMux so
// callers can mount additional routes beside them — the simulation service
// hangs its /v1/jobs API off this mux, which is how one scrape of /metrics
// covers both the schedules' counters and the service's queue series.
// Every call builds a fresh mux; handlers read process-global state.
func DebugMux() *http.ServeMux {
	expvarOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any {
			if r := Active(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteProm(w, Active())
	})
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		r := Active()
		if r == nil {
			http.Error(w, "observability disabled (no active registry)", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/obs/trace", func(w http.ResponseWriter, _ *http.Request) {
		t := Active().Tracer()
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteChrome(w)
	})
	mux.HandleFunc("/debug/obs/flight", func(w http.ResponseWriter, _ *http.Request) {
		f := Active().Flight()
		if f == nil {
			http.Error(w, "flight recorder disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = f.WriteJSON(w)
	})
	return mux
}

// DebugServer is a running debug/telemetry HTTP server. Close shuts the
// listener down and unblocks the serve goroutine, so tests and short-lived
// tools do not leak sockets for the remainder of the process.
type DebugServer struct {
	Addr string // bound address, resolved (useful with ":0")
	srv  *http.Server
}

// Close immediately shuts the server down, closing its listener and any
// open connections.
func (s *DebugServer) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// ServeDebug starts the debug/telemetry HTTP server (see DebugHandler for
// the routes) on addr, e.g. "localhost:6060". It returns once the listener
// is up; the server runs until Close is called (or process exit).
func ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	s := &DebugServer{Addr: ln.Addr().String(), srv: &http.Server{Handler: DebugHandler()}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}
