package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestFlightNilSafety(t *testing.T) {
	var f *Flight
	f.Record("x", "c", 0, time.Now(), time.Millisecond, nil)
	f.Event("x", "c", nil)
	if f.Capacity() != 0 || f.Recorded() != 0 || f.Events() != nil {
		t.Fatal("nil Flight accessors must be zero-valued no-ops")
	}
	var nilReg *Registry
	if nilReg.Flight() != nil {
		t.Fatal("nil Registry.Flight() must return nil")
	}
	sp := nilReg.Spans()
	if sp.On() {
		t.Fatal("nil registry SpanRecorder must be off")
	}
	sp.Complete("x", "c", 0, time.Now(), time.Millisecond, nil) // must not panic
	sp.Event("x", "c", nil)
}

func TestFlightStartIdempotent(t *testing.T) {
	r := NewRegistry()
	f1 := r.StartFlight(16)
	f2 := r.StartFlight(999)
	if f1 != f2 {
		t.Fatal("StartFlight must be idempotent")
	}
	if f1.Capacity() != 16 {
		t.Fatalf("first capacity wins: got %d, want 16", f1.Capacity())
	}
	if r.StartFlight(0) != f1 || r.Flight() != f1 {
		t.Fatal("Flight() must return the installed recorder")
	}
}

func TestFlightDefaultCapacity(t *testing.T) {
	f := NewRegistry().StartFlight(0)
	if f.Capacity() != DefaultFlightCapacity {
		t.Fatalf("capacity = %d, want %d", f.Capacity(), DefaultFlightCapacity)
	}
}

func TestFlightRingWrapKeepsNewestInOrder(t *testing.T) {
	const capacity, total = 8, 21
	f := NewRegistry().StartFlight(capacity)
	for i := 0; i < total; i++ {
		f.Event("ev", "test", map[string]any{"i": i})
	}
	if got := f.Recorded(); got != total {
		t.Fatalf("Recorded = %d, want %d", got, total)
	}
	evs := f.Events()
	if len(evs) != capacity {
		t.Fatalf("surviving events = %d, want %d", len(evs), capacity)
	}
	for j, ev := range evs {
		wantSeq := uint64(total - capacity + j)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d: Seq = %d, want %d (chronological oldest-first)", j, ev.Seq, wantSeq)
		}
		if got, ok := ev.Args["i"].(int); !ok || uint64(got) != wantSeq {
			t.Fatalf("event %d: args mismatch: %v", j, ev.Args)
		}
	}
}

func TestFlightWriteJSONDump(t *testing.T) {
	f := NewRegistry().StartFlight(4)
	start := time.Now()
	for i := 0; i < 6; i++ {
		f.Record("span", "sched", i, start, 2*time.Millisecond, map[string]any{"k": i})
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Capacity int           `json:"capacity"`
		Recorded uint64        `json:"recorded"`
		Dropped  uint64        `json:"dropped"`
		Events   []FlightEvent `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if dump.Capacity != 4 || dump.Recorded != 6 || dump.Dropped != 2 || len(dump.Events) != 4 {
		t.Fatalf("dump = cap %d rec %d drop %d events %d, want 4/6/2/4",
			dump.Capacity, dump.Recorded, dump.Dropped, len(dump.Events))
	}
	if dump.Events[0].DurUS != 2000 {
		t.Fatalf("span duration lost: %v", dump.Events[0])
	}
}

func TestDumpFlightOnPanic(t *testing.T) {
	r := NewRegistry()
	r.StartFlight(8).Event("before crash", "test", nil)
	restore := Swap(r)
	defer restore()

	var out bytes.Buffer
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic must be re-raised")
			}
		}()
		defer DumpFlightOnPanic(&out)()
		panic("boom")
	}()
	s := out.String()
	if !strings.Contains(s, "boom") || !strings.Contains(s, "before crash") {
		t.Fatalf("panic dump missing content:\n%s", s)
	}
}

func TestDumpFlightOnPanicNoPanicIsSilent(t *testing.T) {
	var out bytes.Buffer
	func() {
		defer DumpFlightOnPanic(&out)()
	}()
	if out.Len() != 0 {
		t.Fatalf("no panic must write nothing, got %q", out.String())
	}
}

func TestSpanRecorderFansOutToBothSinks(t *testing.T) {
	r := NewRegistry()
	tr := r.StartTrace()
	fl := r.StartFlight(16)
	sp := r.Spans()
	if !sp.On() {
		t.Fatal("SpanRecorder must be on with sinks installed")
	}
	sp.Complete("tile 0,0", "wtb", 1, time.Now(), time.Millisecond, map[string]any{"bx": 0})
	sp.Event("stall", "sched", nil)
	if tr.Len() != 1 {
		t.Fatalf("tracer got %d spans, want 1 (instants are flight-only)", tr.Len())
	}
	if fl.Recorded() != 2 {
		t.Fatalf("flight got %d records, want 2 (span + instant)", fl.Recorded())
	}
}

func TestSpanRecorderSingleSink(t *testing.T) {
	r := NewRegistry()
	fl := r.StartFlight(16)
	sp := r.Spans()
	if !sp.On() {
		t.Fatal("flight-only SpanRecorder must be on")
	}
	sp.Complete("x", "c", 0, time.Now(), time.Millisecond, nil)
	if fl.Recorded() != 1 {
		t.Fatalf("flight got %d records, want 1", fl.Recorded())
	}
}
