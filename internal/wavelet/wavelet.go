// Package wavelet provides the source time signatures used by the wave
// propagators. The paper injects "one time-dependent, spatially localized
// seismic source wavelet"; the de-facto standard in seismic modelling (and in
// Devito's examples) is the Ricker wavelet implemented here.
package wavelet

import "math"

// Ricker evaluates a Ricker wavelet of peak frequency f0 (Hz) at time t
// (seconds), delayed so that the peak sits at t0 = 1/f0:
//
//	r(t) = (1 − 2π²f0²(t−t0)²) · exp(−π²f0²(t−t0)²)
func Ricker(f0, t float64) float64 {
	a := math.Pi * f0 * (t - 1/f0)
	a *= a
	return (1 - 2*a) * math.Exp(-a)
}

// RickerSeries samples a Ricker wavelet of peak frequency f0 (Hz) at nt
// timesteps of dt seconds each, optionally scaled by amp.
func RickerSeries(f0 float64, nt int, dt, amp float64) []float32 {
	out := make([]float32, nt)
	for i := range out {
		out[i] = float32(amp * Ricker(f0, float64(i)*dt))
	}
	return out
}

// Gaussian evaluates a Gaussian pulse of width parameter sigma centered at
// t0. It is used by tests that need a strictly positive, smooth signature.
func Gaussian(sigma, t0, t float64) float64 {
	d := (t - t0) / sigma
	return math.Exp(-0.5 * d * d)
}
