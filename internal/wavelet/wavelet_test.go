package wavelet

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRickerPeak(t *testing.T) {
	// Peak of amplitude 1 at t0 = 1/f0.
	for _, f0 := range []float64{5, 10, 25} {
		if got := Ricker(f0, 1/f0); math.Abs(got-1) > 1e-14 {
			t.Fatalf("f0=%g: peak %g", f0, got)
		}
		// Strictly smaller on either side.
		if Ricker(f0, 1/f0+1e-3) >= 1 || Ricker(f0, 1/f0-1e-3) >= 1 {
			t.Fatalf("f0=%g: peak not a maximum", f0)
		}
	}
}

func TestRickerZeroCrossings(t *testing.T) {
	// r(t) = 0 where π²f0²(t−t0)² = 1/2.
	f0 := 12.0
	off := math.Sqrt(0.5) / (math.Pi * f0)
	for _, tt := range []float64{1/f0 - off, 1/f0 + off} {
		if got := Ricker(f0, tt); math.Abs(got) > 1e-12 {
			t.Fatalf("zero crossing at %g: %g", tt, got)
		}
	}
}

func TestRickerBounded(t *testing.T) {
	f := func(f0u, tu uint16) bool {
		f0 := 1 + float64(f0u%100)
		tt := float64(tu) / 1000
		v := Ricker(f0, tt)
		return v <= 1+1e-12 && v >= -2*math.Exp(-1.5)-1e-9 // min of (1-2a)e^-a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRickerSeries(t *testing.T) {
	s := RickerSeries(10, 100, 0.001, 2.5)
	if len(s) != 100 {
		t.Fatalf("len %d", len(s))
	}
	// Sample 100 (t=0.1s = 1/f0) would be the peak; with 100 samples the max
	// should still be close to it near the end.
	if s[99] <= 0 {
		t.Fatalf("ramp toward peak should be positive, got %g", s[99])
	}
	if float64(s[99]) > 2.5+1e-6 {
		t.Fatalf("amplitude exceeds scale: %g", s[99])
	}
}

func TestGaussian(t *testing.T) {
	if Gaussian(0.1, 0.5, 0.5) != 1 {
		t.Fatal("Gaussian peak not 1")
	}
	if Gaussian(0.1, 0.5, 0.6) >= 1 || Gaussian(0.1, 0.5, 0.6) <= 0 {
		t.Fatal("Gaussian off-peak out of (0,1)")
	}
	if math.Abs(Gaussian(0.2, 0, 0.2)-math.Exp(-0.5)) > 1e-15 {
		t.Fatal("Gaussian value at one sigma")
	}
}
