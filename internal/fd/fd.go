// Package fd generates finite-difference coefficients of arbitrary even
// accuracy order for the derivative operators used by the wave propagators:
// central first and second derivatives on a collocated grid (acoustic, TTI)
// and staggered first derivatives on half-offset grids (elastic, Virieux
// velocity–stress).
//
// Coefficients are derived in float64 by solving the Taylor-moment linear
// system directly (a small dense solve), then handed to the kernels as
// float32. Closed-form values for the common orders are cross-checked in the
// tests.
package fd

import "fmt"

// SecondDeriv returns the symmetric coefficients c[0..M] of the central
// second-derivative stencil of accuracy order `order` (= 2M, must be even and
// positive):
//
//	f''(x) ≈ (1/h²) · ( c[0]·f(x) + Σ_{k=1..M} c[k]·(f(x+kh) + f(x−kh)) )
//
// The moment conditions are Σ_k w_k k^{2j} matching the 2nd derivative:
// for j = 0..M, c[0]·δ_{j0} + Σ 2·c[k]·k^{2j}/(2j)! = δ_{j1}.
func SecondDeriv(order int) []float64 {
	m := radiusFor(order)
	// Unknowns: c[0..M]. Equations j = 0..M:
	//   c0*I(j==0) + Σ_{k=1..M} 2*c_k * k^(2j)/(2j)! = δ_{j,1}
	n := m + 1
	a := make([][]float64, n)
	b := make([]float64, n)
	for j := 0; j < n; j++ {
		a[j] = make([]float64, n)
		if j == 0 {
			a[j][0] = 1
			for k := 1; k <= m; k++ {
				a[j][k] = 2
			}
			continue
		}
		fact := factorial(2 * j)
		for k := 1; k <= m; k++ {
			a[j][k] = 2 * powInt(float64(k), 2*j) / fact
		}
		if j == 1 {
			b[j] = 1
		}
	}
	return solve(a, b)
}

// FirstDeriv returns the antisymmetric coefficients c[1..M] (index 0 unused,
// zero) of the central first-derivative stencil of accuracy order 2M:
//
//	f'(x) ≈ (1/h) · Σ_{k=1..M} c[k]·(f(x+kh) − f(x−kh))
func FirstDeriv(order int) []float64 {
	m := radiusFor(order)
	// Equations j = 0..M-1: Σ_k 2*c_k * k^(2j+1)/(2j+1)! = δ_{j,0}
	a := make([][]float64, m)
	b := make([]float64, m)
	for j := 0; j < m; j++ {
		a[j] = make([]float64, m)
		fact := factorial(2*j + 1)
		for k := 1; k <= m; k++ {
			a[j][k-1] = 2 * powInt(float64(k), 2*j+1) / fact
		}
	}
	if m > 0 {
		b[0] = 1
	}
	c := solve(a, b)
	out := make([]float64, m+1)
	copy(out[1:], c)
	return out
}

// StaggeredFirstDeriv returns the coefficients c[1..M] (index 0 unused) of
// the staggered first-derivative stencil of accuracy order 2M, evaluated at a
// half-grid offset:
//
//	f'(x+h/2) ≈ (1/h) · Σ_{k=1..M} c[k]·(f(x+kh) − f(x−(k−1)h))
//
// i.e. sample offsets ±(k−1/2)h around the evaluation point.
func StaggeredFirstDeriv(order int) []float64 {
	m := radiusFor(order)
	// Offsets s_k = k-1/2. Equations j = 0..M-1:
	//   Σ_k 2*c_k * s_k^(2j+1)/(2j+1)! = δ_{j,0}
	a := make([][]float64, m)
	b := make([]float64, m)
	for j := 0; j < m; j++ {
		a[j] = make([]float64, m)
		fact := factorial(2*j + 1)
		for k := 1; k <= m; k++ {
			s := float64(k) - 0.5
			a[j][k-1] = 2 * powInt(s, 2*j+1) / fact
		}
	}
	if m > 0 {
		b[0] = 1
	}
	c := solve(a, b)
	out := make([]float64, m+1)
	copy(out[1:], c)
	return out
}

// Radius returns the stencil radius M of a space order (order/2).
func Radius(order int) int { return radiusFor(order) }

// ToF32 converts a float64 coefficient slice to float32, optionally scaling
// every entry by s first (used to fold 1/h or 1/h² into the coefficients).
func ToF32(c []float64, s float64) []float32 {
	out := make([]float32, len(c))
	for i, v := range c {
		out[i] = float32(v * s)
	}
	return out
}

// AbsSum returns Σ|c_k| counting symmetric halves twice and the center once,
// with `center` indicating whether c[0] is a center weight (second
// derivative) or unused (first derivative). It bounds the operator's symbol
// and feeds the CFL stability estimates in internal/model.
func AbsSum(c []float64, center bool) float64 {
	s := 0.0
	for k, v := range c {
		a := v
		if a < 0 {
			a = -a
		}
		if k == 0 {
			if center {
				s += a
			}
			continue
		}
		s += 2 * a
	}
	return s
}

func radiusFor(order int) int {
	if order <= 0 || order%2 != 0 {
		panic(fmt.Sprintf("fd: space order must be positive and even, got %d", order))
	}
	return order / 2
}

func factorial(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}

func powInt(x float64, n int) float64 {
	p := 1.0
	for i := 0; i < n; i++ {
		p *= x
	}
	return p
}
