package fd

import (
	"math"
	"testing"
)

// Native fuzz targets for the coefficient tables. The fuzzer drives the
// space order through every even value the solver accepts; the properties
// are the defining moment conditions of the Taylor construction, so any
// change to the linear solve that still passes here is a correct table.

// fuzzOrder maps arbitrary fuzz input onto a legal even order in [2, 16].
func fuzzOrder(x uint8) int { return 2 + 2*int(x%8) }

// FuzzSecondDeriv checks the second-derivative stencil: symmetry, a zero
// row sum (constants have zero second derivative), exactness on x² (the
// defining normalization), and annihilation of all even powers up to the
// order.
func FuzzSecondDeriv(f *testing.F) {
	f.Add(uint8(1))
	f.Add(uint8(3))
	f.Fuzz(func(t *testing.T, x uint8) {
		order := fuzzOrder(x)
		c := SecondDeriv(order)
		m := Radius(order)
		if len(c) != m+1 {
			t.Fatalf("order %d: got %d coefficients, want %d", order, len(c), m+1)
		}
		// Row sum: c0 + 2Σck must vanish (derivative of a constant).
		sum := c[0]
		for k := 1; k <= m; k++ {
			sum += 2 * c[k]
		}
		if math.Abs(sum) > 1e-10 {
			t.Errorf("order %d: constant not annihilated: row sum %g", order, sum)
		}
		// Even moments: Σ 2·ck·k^(2j) = {order-2 zeros, and 1 at j=1 (×2/2!)}.
		for j := 1; 2*j <= order; j++ {
			mom := 0.0
			for k := 1; k <= m; k++ {
				mom += 2 * c[k] * math.Pow(float64(k), float64(2*j))
			}
			want := 0.0
			if j == 1 {
				want = 2 // d²/dx² x² = 2 with factorial folded in
			}
			if math.Abs(mom-want) > 1e-8*math.Max(1, momentScale(c, 2*j, m)) {
				t.Errorf("order %d: moment 2j=%d = %g, want %g", order, 2*j, mom, want)
			}
		}
	})
}

// FuzzFirstDeriv checks the centered first-derivative stencil: exactness on
// x (moment 1) and annihilation of odd powers up to the order.
func FuzzFirstDeriv(f *testing.F) {
	f.Add(uint8(0))
	f.Add(uint8(5))
	f.Fuzz(func(t *testing.T, x uint8) {
		order := fuzzOrder(x)
		c := FirstDeriv(order)
		m := Radius(order)
		if len(c) != m+1 {
			t.Fatalf("order %d: got %d coefficients, want %d", order, len(c), m+1)
		}
		if c[0] != 0 {
			t.Errorf("order %d: centered first derivative has nonzero center %g", order, c[0])
		}
		for j := 0; 2*j+1 <= order-1; j++ {
			p := 2*j + 1
			mom := 0.0
			for k := 1; k <= m; k++ {
				mom += 2 * c[k] * math.Pow(float64(k), float64(p))
			}
			want := 0.0
			if p == 1 {
				want = 1 // d/dx x = 1
			}
			if math.Abs(mom-want) > 1e-8*math.Max(1, momentScale(c, p, m)) {
				t.Errorf("order %d: moment p=%d = %g, want %g", order, p, mom, want)
			}
		}
	})
}

// FuzzStaggeredFirstDeriv checks the staggered stencil at half-point
// offsets: exactness on x and annihilation of higher odd powers.
func FuzzStaggeredFirstDeriv(f *testing.F) {
	f.Add(uint8(2))
	f.Add(uint8(7))
	f.Fuzz(func(t *testing.T, x uint8) {
		order := fuzzOrder(x)
		c := StaggeredFirstDeriv(order)
		m := Radius(order)
		if len(c) != m+1 {
			t.Fatalf("order %d: got %d coefficients, want %d", order, len(c), m+1)
		}
		if c[0] != 0 {
			t.Errorf("order %d: staggered stencil has nonzero unused slot %g", order, c[0])
		}
		for j := 0; 2*j+1 <= order-1; j++ {
			p := 2*j + 1
			mom := 0.0
			for k := 1; k <= m; k++ {
				off := float64(k) - 0.5
				mom += 2 * c[k] * math.Pow(off, float64(p))
			}
			want := 0.0
			if p == 1 {
				want = 1
			}
			if math.Abs(mom-want) > 1e-8*math.Max(1, staggeredScale(c, p, m)) {
				t.Errorf("order %d: staggered moment p=%d = %g, want %g", order, p, mom, want)
			}
		}
	})
}

// momentScale bounds the cancellation magnitude of a moment sum, so the
// tolerance tracks the condition of the high-order solves.
func momentScale(c []float64, p, m int) float64 {
	s := 0.0
	for k := 1; k <= m; k++ {
		s += 2 * math.Abs(c[k]) * math.Pow(float64(k), float64(p))
	}
	return s
}

func staggeredScale(c []float64, p, m int) float64 {
	s := 0.0
	for k := 1; k <= m; k++ {
		s += 2 * math.Abs(c[k]) * math.Pow(float64(k)-0.5, float64(p))
	}
	return s
}
