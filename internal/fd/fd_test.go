package fd

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSecondDerivKnownValues(t *testing.T) {
	cases := map[int][]float64{
		2: {-2, 1},
		4: {-5.0 / 2, 4.0 / 3, -1.0 / 12},
		6: {-49.0 / 18, 3.0 / 2, -3.0 / 20, 1.0 / 90},
		8: {-205.0 / 72, 8.0 / 5, -1.0 / 5, 8.0 / 315, -1.0 / 560},
	}
	for order, want := range cases {
		got := SecondDeriv(order)
		if len(got) != len(want) {
			t.Fatalf("order %d: %d coeffs, want %d", order, len(got), len(want))
		}
		for k := range want {
			if !approx(got[k], want[k], 1e-12) {
				t.Fatalf("order %d c[%d] = %.15g, want %.15g", order, k, got[k], want[k])
			}
		}
	}
}

func TestFirstDerivKnownValues(t *testing.T) {
	got := FirstDeriv(4)
	want := []float64{0, 2.0 / 3, -1.0 / 12}
	for k := range want {
		if !approx(got[k], want[k], 1e-12) {
			t.Fatalf("c[%d] = %.15g, want %.15g", k, got[k], want[k])
		}
	}
}

func TestStaggeredKnownValues(t *testing.T) {
	// Standard staggered-grid coefficients.
	got := StaggeredFirstDeriv(4)
	want := []float64{0, 9.0 / 8, -1.0 / 24}
	for k := range want {
		if !approx(got[k], want[k], 1e-12) {
			t.Fatalf("c[%d] = %.15g, want %.15g", k, got[k], want[k])
		}
	}
	if got := StaggeredFirstDeriv(2); !approx(got[1], 1, 1e-14) {
		t.Fatalf("SO2 staggered c1 = %g", got[1])
	}
}

// applySecond evaluates the stencil on samples of f around x0 with step h.
func applySecond(c []float64, f func(float64) float64, x0, h float64) float64 {
	acc := c[0] * f(x0)
	for k := 1; k < len(c); k++ {
		acc += c[k] * (f(x0+float64(k)*h) + f(x0-float64(k)*h))
	}
	return acc / (h * h)
}

func TestSecondDerivPolynomialExactness(t *testing.T) {
	// A stencil of accuracy order 2M differentiates polynomials up to degree
	// 2M+1 exactly.
	for _, order := range []int{2, 4, 6, 8, 12} {
		c := SecondDeriv(order)
		for deg := 0; deg <= order+1; deg++ {
			deg := deg
			f := func(x float64) float64 { return math.Pow(x, float64(deg)) }
			x0, h := 0.7, 0.01
			want := 0.0
			if deg >= 2 {
				want = float64(deg) * float64(deg-1) * math.Pow(x0, float64(deg-2))
			}
			got := applySecond(c, f, x0, h)
			if !approx(got, want, 1e-5*math.Max(1, math.Abs(want))) {
				t.Fatalf("order %d deg %d: got %g want %g", order, deg, got, want)
			}
		}
	}
}

func TestFirstDerivPolynomialExactness(t *testing.T) {
	for _, order := range []int{2, 4, 8, 12} {
		c := FirstDeriv(order)
		for deg := 0; deg <= order; deg++ {
			deg := deg
			x0, h := 0.31, 0.01
			acc := 0.0
			for k := 1; k < len(c); k++ {
				acc += c[k] * (math.Pow(x0+float64(k)*h, float64(deg)) - math.Pow(x0-float64(k)*h, float64(deg)))
			}
			acc /= h
			want := 0.0
			if deg >= 1 {
				want = float64(deg) * math.Pow(x0, float64(deg-1))
			}
			if !approx(acc, want, 1e-6*math.Max(1, math.Abs(want))) {
				t.Fatalf("order %d deg %d: got %g want %g", order, deg, acc, want)
			}
		}
	}
}

func TestStaggeredPolynomialExactness(t *testing.T) {
	// Staggered derivative evaluated at x0+h/2 from integer samples.
	for _, order := range []int{2, 4, 8, 12} {
		c := StaggeredFirstDeriv(order)
		for deg := 0; deg < order; deg++ {
			x0, h := 0.09, 0.01
			eval := x0 + h/2
			acc := 0.0
			for k := 1; k < len(c); k++ {
				acc += c[k] * (math.Pow(x0+float64(k)*h, float64(deg)) - math.Pow(x0-float64(k-1)*h, float64(deg)))
			}
			acc /= h
			want := 0.0
			if deg >= 1 {
				want = float64(deg) * math.Pow(eval, float64(deg-1))
			}
			if !approx(acc, want, 1e-6*math.Max(1, math.Abs(want))) {
				t.Fatalf("order %d deg %d: got %g want %g", order, deg, acc, want)
			}
		}
	}
}

func TestSecondDerivSumRule(t *testing.T) {
	// Weights of a derivative stencil sum to zero (constants annihilated).
	f := func(m uint8) bool {
		order := 2 * (int(m%8) + 1)
		c := SecondDeriv(order)
		sum := c[0]
		for k := 1; k < len(c); k++ {
			sum += 2 * c[k]
		}
		return math.Abs(sum) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSecondDerivSignPattern(t *testing.T) {
	// c0 < 0 and the off-center coefficients alternate in sign.
	for _, order := range []int{2, 4, 8, 12, 16} {
		c := SecondDeriv(order)
		if c[0] >= 0 {
			t.Fatalf("order %d: c0 = %g not negative", order, c[0])
		}
		for k := 1; k < len(c); k++ {
			want := 1.0
			if k%2 == 0 {
				want = -1
			}
			if c[k]*want <= 0 {
				t.Fatalf("order %d: c[%d] = %g has wrong sign", order, k, c[k])
			}
		}
	}
}

func TestRadiusAndPanics(t *testing.T) {
	if Radius(8) != 4 {
		t.Fatal("Radius(8)")
	}
	for _, bad := range []int{0, -2, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("order %d did not panic", bad)
				}
			}()
			SecondDeriv(bad)
		}()
	}
}

func TestToF32AndAbsSum(t *testing.T) {
	c := []float64{-2, 1}
	f := ToF32(c, 0.5)
	if f[0] != -1 || f[1] != 0.5 {
		t.Fatalf("ToF32 got %v", f)
	}
	if AbsSum(c, true) != 4 {
		t.Fatalf("AbsSum center %g", AbsSum(c, true))
	}
	if AbsSum([]float64{0, 1, -0.25}, false) != 2.5 {
		t.Fatalf("AbsSum no-center %g", AbsSum([]float64{0, 1, -0.25}, false))
	}
}

func TestSolveSingularPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("singular system did not panic")
		}
	}()
	solve([][]float64{{1, 2}, {2, 4}}, []float64{1, 1})
}

func TestSolveKnownSystem(t *testing.T) {
	x := solve([][]float64{{2, 1, 0}, {1, 3, 1}, {0, 1, 2}}, []float64{4, 10, 8})
	want := []float64{1, 2, 3}
	for i := range want {
		if !approx(x[i], want[i], 1e-12) {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}
