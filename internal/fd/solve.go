package fd

import (
	"fmt"
	"math"
)

// solve returns x with a·x = b using Gaussian elimination with partial
// pivoting. The moment systems solved here are tiny (≤ 8×8) and well
// conditioned for the space orders of interest, but the pivoting keeps the
// generator usable for exotic orders too. It panics on a singular system
// because that can only arise from a malformed moment matrix, i.e. a bug.
func solve(a [][]float64, b []float64) []float64 {
	n := len(a)
	// Work on copies: callers may reuse their matrices.
	m := make([][]float64, n)
	for i := range a {
		m[i] = append([]float64(nil), a[i]...)
		if len(m[i]) != n {
			panic("fd: non-square system")
		}
	}
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, pmax := col, math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r][col]); v > pmax {
				piv, pmax = r, v
			}
		}
		if pmax == 0 {
			panic(fmt.Sprintf("fd: singular moment system at column %d", col))
		}
		m[col], m[piv] = m[piv], m[col]
		x[col], x[piv] = x[piv], x[col]

		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		for c := col + 1; c < n; c++ {
			s -= m[col][c] * x[c]
		}
		x[col] = s / m[col][col]
	}
	return x
}
