package roofline

import (
	"math"
	"testing"

	"wavetile/internal/cachesim"
	"wavetile/internal/hostcal"
	"wavetile/internal/obs"
)

// testFingerprint is a hand-built measured-host document — what hostcal
// would produce, with round numbers for checkable conversions.
func testFingerprint() *hostcal.Fingerprint {
	return &hostcal.Fingerprint{
		Version: hostcal.Version, Kind: hostcal.Kind,
		Host: obs.HostInfo{GOOS: "linux", GOARCH: "amd64", CPUs: 8},
		Levels: []hostcal.CacheLevel{
			{Name: "L1", SizeBytes: 48 << 10, Assoc: 12, Source: "sysfs"},
			{Name: "L2", SizeBytes: 2 << 20, Assoc: 16, Source: "sysfs"},
			{Name: "L3", SizeBytes: 32 << 20, Assoc: 16, Shared: true, Source: "sysfs"},
		},
		BWGBs:      []float64{800, 400, 40},
		PeakGFlops: 120,
	}
}

func TestMachineFromCal(t *testing.T) {
	cal := testFingerprint()
	m := MachineFromCal(cal)
	if m.Name != "host/amd64-8c" || m.Cache.Name != m.Name {
		t.Fatalf("machine name %q / cache name %q", m.Name, m.Cache.Name)
	}
	if len(m.Cache.Levels) != 3 || len(m.BWGBs) != 3 {
		t.Fatalf("level/bandwidth counts: %d/%d", len(m.Cache.Levels), len(m.BWGBs))
	}
	if m.Cache.Levels[1].SizeBytes != 2<<20 || m.Cache.Levels[1].Assoc != 16 {
		t.Fatalf("L2 not carried over: %+v", m.Cache.Levels[1])
	}
	if m.PeakGFlops != 120 || m.BWGBs[2] != 40 {
		t.Fatalf("ceilings not carried over: peak %g dram %g", m.PeakGFlops, m.BWGBs[2])
	}
	// BWGBs must be a copy, not an alias of the fingerprint slice.
	m.BWGBs[0] = -1
	if cal.BWGBs[0] != 800 {
		t.Fatal("MachineFromCal aliased the fingerprint's bandwidth slice")
	}
}

func TestMachineFromCalClampsDegenerateGeometry(t *testing.T) {
	cal := testFingerprint()
	cal.Levels = []hostcal.CacheLevel{{Name: "L1", SizeBytes: 100, Assoc: 0, Source: "probe"}}
	cal.BWGBs = []float64{50}
	m := MachineFromCal(cal)
	l := m.Cache.Levels[0]
	if l.Assoc < 1 || l.SizeBytes < cachesim.LineSize*l.Assoc {
		t.Fatalf("degenerate geometry not clamped: %+v", l)
	}
	// The clamped machine must be simulable.
	h := cachesim.New(m.Cache)
	h.Access(0, false)
	h.Access(cachesim.LineSize, true)
	if tr := h.Snapshot("t"); tr.Accesses != 2 {
		t.Fatalf("clamped machine not simulable: %+v", tr)
	}
}

// --- Predict edge cases (zero traffic, zero flops, single-level machines) ---

func TestPredictZeroTraffic(t *testing.T) {
	m := Broadwell()
	p := Predict(m, 1e9, 1e9, cachesim.Traffic{Boundary: []uint64{0, 0, 0}})
	if p.Bound != "compute" {
		t.Fatalf("zero traffic must be compute-bound, got %s", p.Bound)
	}
	want := 1e9 / (m.PeakGFlops * 1e9)
	if math.Abs(p.Seconds-want)/want > 1e-12 {
		t.Fatalf("seconds %g want %g", p.Seconds, want)
	}
	for i, ai := range p.AIs {
		if ai != 0 {
			t.Fatalf("AI[%d] = %g for zero traffic", i, ai)
		}
	}
}

func TestPredictZeroFlops(t *testing.T) {
	m := Broadwell()
	lines := uint64(1e9 / cachesim.LineSize)
	p := Predict(m, 0, 1e8, traffic(lines, lines, lines))
	if p.Bound != "DRAM" {
		t.Fatalf("bound %s", p.Bound)
	}
	if p.GFlops != 0 || p.GPointsPS <= 0 {
		t.Fatalf("GFlops %g GPts %g", p.GFlops, p.GPointsPS)
	}
	if math.IsNaN(p.Seconds) || math.IsInf(p.Seconds, 0) {
		t.Fatalf("seconds %g", p.Seconds)
	}
}

func TestPredictAllZero(t *testing.T) {
	// Nothing executed: the prediction must be all zeros, never NaN/Inf.
	p := Predict(Broadwell(), 0, 0, cachesim.Traffic{Boundary: []uint64{0, 0, 0}})
	if p.Seconds != 0 || p.GFlops != 0 || p.GPointsPS != 0 {
		t.Fatalf("all-zero kernel: %+v", p)
	}
}

func TestPredictSingleLevelMachine(t *testing.T) {
	m := Machine{
		Name: "flat",
		Cache: cachesim.Config{Name: "flat", Levels: []cachesim.LevelSpec{
			{Name: "L1", SizeBytes: 32 << 10, Assoc: 8},
		}},
		PeakGFlops: 100,
		BWGBs:      []float64{20},
	}
	lines := uint64(1e9 / cachesim.LineSize)
	p := Predict(m, 1e6, 1e6, cachesim.Traffic{Boundary: []uint64{lines}})
	// A single-level machine has exactly one boundary, and it is DRAM.
	if p.Bound != "DRAM" {
		t.Fatalf("bound %s", p.Bound)
	}
	want := 1e9 / (20 * 1e9)
	if math.Abs(p.Seconds-want)/want > 1e-12 {
		t.Fatalf("seconds %g want %g", p.Seconds, want)
	}
	if len(p.AIs) != 1 {
		t.Fatalf("AIs %v", p.AIs)
	}
}

func TestPredictBoundaryNamesFromCacheLevels(t *testing.T) {
	m := MachineFromCal(testFingerprint())
	lines := uint64(1e12 / cachesim.LineSize)
	// Dominant L2→L1 traffic must be labelled with the measured level names.
	p := Predict(m, 1, 1, cachesim.Traffic{Boundary: []uint64{lines, 1, 1}})
	if p.Bound != "L2→L1" {
		t.Fatalf("bound %q", p.Bound)
	}
}

// --- Calibrated predictor ---

func TestCalibratedIdentityMatchesPredict(t *testing.T) {
	m := Broadwell()
	tr := traffic(5000, 3000, 1000)
	base := Predict(m, 3e8, 1e8, tr)
	for _, c := range []Calibrated{
		{Machine: m},            // zero value: uncalibrated
		{Machine: m, BWEff: 1},  // explicit identity
		{Machine: m, BWEff: -2}, // out of range clamps to identity
	} {
		got := c.Predict(3e8, 1e8, tr)
		if got.Seconds != base.Seconds || got.Bound != base.Bound ||
			got.GFlops != base.GFlops || got.GPointsPS != base.GPointsPS ||
			got.Machine != base.Machine {
			t.Fatalf("identity calibration diverged: %+v vs %+v", got, base)
		}
	}
}

func TestCalibratedAppliesParameters(t *testing.T) {
	m := Broadwell()
	lines := uint64(10e9 / cachesim.LineSize)
	tr := traffic(lines, lines, lines)
	base := Predict(m, 1e9, 1e9, tr) // DRAM-bound
	c := Calibrated{Machine: m, BWEff: 0.5, OverheadNSPerPoint: 2}
	got := c.Predict(1e9, 1e9, tr)
	want := base.Seconds/0.5 + 1e9*2*1e-9
	if math.Abs(got.Seconds-want)/want > 1e-12 {
		t.Fatalf("seconds %g want %g", got.Seconds, want)
	}
	if got.Machine != m.Name {
		t.Fatalf("machine renamed to %q", got.Machine)
	}
	if wantG := 1e9 / got.Seconds / 1e9; math.Abs(got.GPointsPS-wantG) > 1e-12 {
		t.Fatalf("GPts %g want %g", got.GPointsPS, wantG)
	}
}

func TestCalibratedFromCal(t *testing.T) {
	cal := testFingerprint()
	c := CalibratedFromCal(cal)
	if c.BWEff != 1 || c.OverheadNSPerPoint != 0 {
		t.Fatalf("uncalibrated fingerprint must yield identity params: %+v", c)
	}
	cal.Calibration = &hostcal.Calibration{BWEff: 0.62, OverheadNSPerPoint: 1.5}
	c = CalibratedFromCal(cal)
	if c.BWEff != 0.62 || c.OverheadNSPerPoint != 1.5 {
		t.Fatalf("fitted params not adopted: %+v", c)
	}
}

// --- Fit ---

// synthSamples generates measured times from known ground-truth parameters
// so Fit's recovery can be checked exactly.
func synthSamples(m Machine, eff, ovhNS float64) []CalSample {
	// Bytes and points must not be collinear across samples, or the
	// bandwidth and overhead terms are indistinguishable and the fit is
	// underdetermined — exactly like real runs mixing schedules whose
	// traffic-per-point differs.
	shapes := []struct{ mbytes, points float64 }{
		{50, 1e6}, {100, 5e7}, {400, 2e6}, {800, 1e8},
	}
	var out []CalSample
	for i, sh := range shapes {
		lines := uint64(sh.mbytes * 1e6 / cachesim.LineSize)
		s := CalSample{
			Name:    "s" + string(rune('0'+i)),
			Flops:   1e6, // negligible: memory-bound, eff identifiable
			Points:  sh.points,
			Traffic: traffic(4*lines, 2*lines, lines),
		}
		sec := 0.0
		if m.PeakGFlops > 0 {
			sec = s.Flops / (m.PeakGFlops * 1e9)
		}
		for j, bw := range m.BWGBs {
			if t := float64(s.Traffic.BytesAt(j)) / (bw * eff * 1e9); t > sec {
				sec = t
			}
		}
		s.MeasuredSeconds = sec + s.Points*1e-9*ovhNS
		out = append(out, s)
	}
	return out
}

func TestFitRecoversKnownParameters(t *testing.T) {
	m := Broadwell()
	const trueEff, trueOvh = 0.74, 2.5 // eff on the coarse scan grid
	samples := synthSamples(m, trueEff, trueOvh)
	c, info, err := Fit(m, samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.BWEff-trueEff) > 1e-9 {
		t.Fatalf("BWEff %g want %g", c.BWEff, trueEff)
	}
	if math.Abs(c.OverheadNSPerPoint-trueOvh)/trueOvh > 1e-6 {
		t.Fatalf("overhead %g want %g", c.OverheadNSPerPoint, trueOvh)
	}
	if info.Samples != len(samples) || info.RMSRel > 1e-6 {
		t.Fatalf("fit info %+v", info)
	}
}

func TestFitOffGridParameter(t *testing.T) {
	// The refinement pass must land within one fine-grid step (0.001) of an
	// off-grid ground truth.
	m := Broadwell()
	c, _, err := Fit(m, synthSamples(m, 0.7365, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.BWEff-0.7365) > 0.001+1e-9 {
		t.Fatalf("BWEff %g want ≈0.7365", c.BWEff)
	}
}

func TestFitDeterministic(t *testing.T) {
	// Same machine, same samples → bit-identical parameters, run to run.
	m := MachineFromCal(testFingerprint())
	samples := synthSamples(m, 0.58, 3.25)
	a, ai, err := Fit(m, samples)
	if err != nil {
		t.Fatal(err)
	}
	b, bi, err := Fit(m, samples)
	if err != nil {
		t.Fatal(err)
	}
	if a.BWEff != b.BWEff || a.OverheadNSPerPoint != b.OverheadNSPerPoint || ai != bi {
		t.Fatalf("fit not deterministic: %+v/%+v vs %+v/%+v", a, ai, b, bi)
	}
	// And the downstream prediction is equally pinned.
	tr := traffic(1000, 500, 200)
	if pa, pb := a.Predict(1e8, 1e7, tr), b.Predict(1e8, 1e7, tr); pa.Seconds != pb.Seconds {
		t.Fatalf("prediction not deterministic: %g vs %g", pa.Seconds, pb.Seconds)
	}
}

func TestFitOverheadClampedNonNegative(t *testing.T) {
	// Measurements faster than the pure roofline (negative residuals) must
	// clamp the overhead at zero, not go negative.
	m := Broadwell()
	samples := synthSamples(m, 1.0, 0)
	for i := range samples {
		samples[i].MeasuredSeconds *= 0.5
	}
	c, _, err := Fit(m, samples)
	if err != nil {
		t.Fatal(err)
	}
	if c.OverheadNSPerPoint < 0 {
		t.Fatalf("negative overhead %g", c.OverheadNSPerPoint)
	}
}

func TestFitRejectsDegenerateInput(t *testing.T) {
	m := Broadwell()
	if _, _, err := Fit(m, synthSamples(m, 0.8, 1)[:1]); err == nil {
		t.Fatal("single sample must error")
	}
	bad := synthSamples(m, 0.8, 1)
	bad[1].MeasuredSeconds = 0
	if _, _, err := Fit(m, bad); err == nil {
		t.Fatal("zero measured time must error")
	}
	bad = synthSamples(m, 0.8, 1)
	bad[0].Points = 0
	if _, _, err := Fit(m, bad); err == nil {
		t.Fatal("zero points must error")
	}
}
