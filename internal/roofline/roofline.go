// Package roofline converts simulated memory traffic (internal/cachesim +
// internal/trace) into predicted kernel throughput on the paper's two
// evaluation machines, following the cache-aware roofline model the paper
// uses for Figure 11: a kernel is limited by the tightest of the compute
// ceiling and the per-boundary bandwidth ceilings,
//
//	time = max( flops/peak, bytes_{L2→L1}/bw₁, bytes_{L3→L2}/bw₂, bytes_DRAM/bw₃ )
//
// The machine parameters are nominal figures for the paper's Azure SKUs;
// they position the ceilings, while the WTB-vs-spatial *ratio* — the result
// being reproduced — is driven by the simulated traffic.
package roofline

import (
	"fmt"

	"wavetile/internal/cachesim"
)

// Machine couples a cache configuration with compute and bandwidth ceilings.
type Machine struct {
	Name  string
	Cache cachesim.Config
	// PeakGFlops is the *sustained* stencil compute ceiling, not the
	// nominal FMA peak: stencil kernels on these parts plateau far below
	// nominal (imperfect FMA balance, division in the damped update,
	// dispatch overheads) — the paper's own Fig. 11 places its kernels in
	// the tens of GFLOP/s. The values here are calibrated so the
	// spatial-baseline points sit where that figure puts them; they control
	// where gains fade with rising space order, while the WTB-vs-spatial
	// ratio itself comes from the simulated traffic.
	PeakGFlops float64
	BWGBs      []float64 // per-boundary bandwidth: L2→L1, L3→L2, DRAM
}

// Broadwell models the paper's Standard_E16s_v3: one socket of 8 Intel
// E5-2673 v4 cores at 2.3 GHz with AVX2.
func Broadwell() Machine {
	return Machine{
		Name:       "Broadwell",
		Cache:      cachesim.Broadwell(),
		PeakGFlops: 150,                      // sustained stencil ceiling
		BWGBs:      []float64{1100, 560, 65}, // aggregate L1-fill, L2-fill, DRAM GB/s
	}
}

// Skylake models the paper's Standard_E32s_v3: one socket of 16 Intel
// Platinum 8171M cores at 2.1 GHz with AVX-512 (twice the cores, wider
// vectors, AVX-512 frequency throttling).
func Skylake() Machine {
	return Machine{
		Name:       "Skylake",
		Cache:      cachesim.Skylake(),
		PeakGFlops: 200,
		BWGBs:      []float64{2600, 1300, 90},
	}
}

// Prediction is the roofline evaluation of one kernel run.
type Prediction struct {
	Machine   string
	Seconds   float64 // predicted execution time
	GFlops    float64 // achieved flop rate at that time
	GPointsPS float64 // throughput in GPoints/s
	Bound     string  // which ceiling binds ("compute", "L2→L1", "L3→L2", "DRAM")
	// AIs[i] is the arithmetic intensity (flops/byte) at each boundary,
	// the x-coordinates of the cache-aware roofline plot (Fig. 11).
	AIs []float64
}

// Predict evaluates the roofline for a kernel that executed the given flop
// count and points with the simulated traffic.
func Predict(m Machine, flops, points float64, t cachesim.Traffic) Prediction {
	p := Prediction{Machine: m.Name, Bound: "compute"}
	if m.PeakGFlops > 0 {
		p.Seconds = flops / (m.PeakGFlops * 1e9)
	}
	for i, bw := range m.BWGBs {
		bytes := float64(t.BytesAt(i))
		if bytes > 0 {
			p.AIs = append(p.AIs, flops/bytes)
		} else {
			p.AIs = append(p.AIs, 0)
		}
		if bw <= 0 {
			continue
		}
		sec := bytes / (bw * 1e9)
		if sec > p.Seconds {
			p.Seconds = sec
			p.Bound = boundaryName(m, i)
		}
	}
	if p.Seconds > 0 {
		p.GFlops = flops / p.Seconds / 1e9
		p.GPointsPS = points / p.Seconds / 1e9
	}
	return p
}

// boundaryName labels bandwidth boundary i for any hierarchy depth: fills
// into level i come from level i+1, and the outermost boundary is DRAM. For
// the three-level presets this yields the familiar "L2→L1", "L3→L2", "DRAM".
func boundaryName(m Machine, i int) string {
	if i == len(m.BWGBs)-1 {
		return "DRAM"
	}
	if i+1 < len(m.Cache.Levels) {
		return m.Cache.Levels[i+1].Name + "→" + m.Cache.Levels[i].Name
	}
	return fmt.Sprintf("boundary%d", i)
}
