package roofline

import (
	"fmt"
	"math"

	"wavetile/internal/cachesim"
	"wavetile/internal/hostcal"
)

// ---------------------------------------------------------------------------
// Roofline V2: machines built from measurement, and a 2-parameter
// calibrated predictor.
//
// The presets above (Broadwell/Skylake) position ceilings by the paper's
// nominal SKU figures plus hand-tuned sustained-compute numbers. The V2
// design replaces those magic numbers with a measured host fingerprint
// (internal/hostcal) and reduces calibration to exactly two parameters:
//
//	time = max( flops/peak, max_i bytes_i/(bw_i · BWEff) ) + points · Overhead
//
// BWEff — one bandwidth-efficiency factor. Stencil access streams never
// reach STREAM bandwidth (strided row sets, write-allocate traffic the
// STREAM convention doesn't count, TLB pressure); one multiplicative
// factor on every measured ceiling absorbs that, following the BwEff
// constant of the Roofline-V2 design in SNIPPETS.md.
//
// Overhead — one per-point schedule overhead. Tiling loop nests, source
// injection, bounds clamping and the parallel runtime all cost time the
// traffic model cannot see; it scales with points updated, not with bytes
// moved, so it gets its own linear term.
//
// Both are fitted by deterministic least squares from a handful of
// measured runs (Fit); everything else is measured hardware.

// MachineFromCal constructs a roofline Machine from a measured host
// fingerprint: cache geometry, per-boundary bandwidths and the
// floating-point ceiling all come from measurement rather than presets.
func MachineFromCal(cal *hostcal.Fingerprint) Machine {
	cfg := cachesim.Config{Name: cal.MachineName()}
	for _, l := range cal.Levels {
		assoc := l.Assoc
		if assoc < 1 {
			assoc = 1
		}
		size := l.SizeBytes
		if size < cachesim.LineSize*assoc {
			size = cachesim.LineSize * assoc
		}
		cfg.Levels = append(cfg.Levels, cachesim.LevelSpec{
			Name: l.Name, SizeBytes: size, Assoc: assoc,
		})
	}
	return Machine{
		Name:       cal.MachineName(),
		Cache:      cfg,
		PeakGFlops: cal.PeakGFlops,
		BWGBs:      append([]float64(nil), cal.BWGBs...),
	}
}

// Calibrated is a machine plus the two fitted parameters. The zero values
// of both parameters select the uncalibrated model: Predict with BWEff ≤ 0
// (or > 1) treats it as 1, and a non-positive overhead adds nothing, so a
// Calibrated{Machine: m} behaves exactly like Predict(m, ...).
type Calibrated struct {
	Machine            Machine
	BWEff              float64
	OverheadNSPerPoint float64
}

// CalibratedFromCal couples the measured machine with the fingerprint's
// fitted parameters (identity parameters when the fingerprint has not been
// calibrated yet).
func CalibratedFromCal(cal *hostcal.Fingerprint) Calibrated {
	c := Calibrated{Machine: MachineFromCal(cal), BWEff: 1}
	if cal.Calibration != nil {
		c.BWEff = cal.Calibration.BWEff
		c.OverheadNSPerPoint = cal.Calibration.OverheadNSPerPoint
	}
	return c
}

// effBW returns the clamped bandwidth-efficiency factor.
func (c Calibrated) effBW() float64 {
	if c.BWEff <= 0 || c.BWEff > 1 {
		return 1
	}
	return c.BWEff
}

// Predict evaluates the calibrated roofline for a kernel that executes the
// given flop and point counts with the simulated traffic. It is Predict
// with every bandwidth ceiling scaled by BWEff and the per-point overhead
// added on top; deterministic given (machine, parameters, traffic).
func (c Calibrated) Predict(flops, points float64, t cachesim.Traffic) Prediction {
	m := c.Machine
	eff := c.effBW()
	scaled := m
	scaled.BWGBs = make([]float64, len(m.BWGBs))
	for i, bw := range m.BWGBs {
		scaled.BWGBs[i] = bw * eff
	}
	p := Predict(scaled, flops, points, t)
	p.Machine = m.Name
	if c.OverheadNSPerPoint > 0 && points > 0 {
		p.Seconds += points * c.OverheadNSPerPoint * 1e-9
		if p.Seconds > 0 {
			p.GFlops = flops / p.Seconds / 1e9
			p.GPointsPS = points / p.Seconds / 1e9
		}
	}
	return p
}

// CalSample is one measured run paired with its simulated traffic — a
// training point for Fit.
type CalSample struct {
	Name            string
	Flops, Points   float64
	Traffic         cachesim.Traffic
	MeasuredSeconds float64
}

// FitInfo reports the quality of a calibration fit.
type FitInfo struct {
	Samples int
	// RMSRel is the root-mean-square relative error of the fitted model
	// over the training samples.
	RMSRel float64
}

// Fit determines the two calibration parameters by least squares over
// measured runs: for each candidate BWEff on a fixed grid the optimal
// overhead has a closed form (the residual model is linear in it), so the
// search is a deterministic 1-D scan plus a refinement pass — same
// samples, same fingerprint, same parameters, bit for bit.
//
// At least two samples are required (two parameters); more samples over
// different schedules and orders condition the fit better.
func Fit(m Machine, samples []CalSample) (Calibrated, FitInfo, error) {
	if len(samples) < 2 {
		return Calibrated{}, FitInfo{}, fmt.Errorf("roofline: fit needs ≥ 2 samples, got %d", len(samples))
	}
	for _, s := range samples {
		if s.MeasuredSeconds <= 0 || s.Points <= 0 {
			return Calibrated{}, FitInfo{}, fmt.Errorf("roofline: fit sample %q is degenerate (%.3gs, %.3g points)",
				s.Name, s.MeasuredSeconds, s.Points)
		}
	}

	// base(e) per sample: model time before overhead at efficiency e.
	base := func(e float64, s CalSample) float64 {
		t := 0.0
		if m.PeakGFlops > 0 {
			t = s.Flops / (m.PeakGFlops * 1e9)
		}
		for i, bw := range m.BWGBs {
			if bw <= 0 {
				continue
			}
			if sec := float64(s.Traffic.BytesAt(i)) / (bw * e * 1e9); sec > t {
				t = sec
			}
		}
		return t
	}
	// For fixed e, the least-squares overhead (ns/point, clamped ≥ 0) and
	// the resulting sum of squared errors.
	sse := func(e float64) (float64, float64) {
		var num, den float64
		for _, s := range samples {
			n := s.Points * 1e-9 // seconds per ns-of-overhead
			num += n * (s.MeasuredSeconds - base(e, s))
			den += n * n
		}
		ovh := 0.0
		if den > 0 && num > 0 {
			ovh = num / den
		}
		var err2 float64
		for _, s := range samples {
			r := s.MeasuredSeconds - base(e, s) - s.Points*1e-9*ovh
			err2 += r * r
		}
		return ovh, err2
	}

	bestE, bestOvh, bestErr := 1.0, 0.0, math.Inf(1)
	scan := func(lo, hi, step float64) {
		for e := lo; e <= hi+1e-12; e += step {
			ovh, err2 := sse(e)
			// Strict < keeps the scan deterministic and, on ties, prefers
			// the earlier (coarser-grid) candidate.
			if err2 < bestErr {
				bestE, bestOvh, bestErr = e, ovh, err2
			}
		}
	}
	scan(0.02, 1.0, 0.02)
	lo, hi := bestE-0.019, bestE+0.019
	if lo < 0.001 {
		lo = 0.001
	}
	if hi > 1.0 {
		hi = 1.0
	}
	scan(lo, hi, 0.001)

	cal := Calibrated{Machine: m, BWEff: bestE, OverheadNSPerPoint: bestOvh}
	var rel float64
	for _, s := range samples {
		pred := base(bestE, s) + s.Points*1e-9*bestOvh
		r := (pred - s.MeasuredSeconds) / s.MeasuredSeconds
		rel += r * r
	}
	info := FitInfo{Samples: len(samples), RMSRel: math.Sqrt(rel / float64(len(samples)))}
	return cal, info, nil
}
