package roofline

import (
	"math"
	"testing"

	"wavetile/internal/cachesim"
)

func traffic(l1, l2, dram uint64) cachesim.Traffic {
	return cachesim.Traffic{
		Boundary:  []uint64{l1, l2, dram},
		DRAMBytes: dram * cachesim.LineSize,
	}
}

func TestPredictDRAMBound(t *testing.T) {
	m := Broadwell()
	// 1 GF of work, 10 GB of DRAM traffic → clearly DRAM-bound.
	lines := uint64(10e9 / cachesim.LineSize)
	p := Predict(m, 1e9, 1e9, traffic(lines, lines, lines))
	if p.Bound != "DRAM" {
		t.Fatalf("bound %s", p.Bound)
	}
	want := 10e9 / (m.BWGBs[2] * 1e9)
	if math.Abs(p.Seconds-want)/want > 1e-9 {
		t.Fatalf("seconds %g want %g", p.Seconds, want)
	}
	if math.Abs(p.GPointsPS-1e9/p.Seconds/1e9) > 1e-9 {
		t.Fatalf("GPts %g", p.GPointsPS)
	}
}

func TestPredictComputeBound(t *testing.T) {
	m := Broadwell()
	// Huge flop count, one cache line of traffic.
	p := Predict(m, 1e12, 1e9, traffic(1, 1, 1))
	if p.Bound != "compute" {
		t.Fatalf("bound %s", p.Bound)
	}
	if math.Abs(p.GFlops-m.PeakGFlops)/m.PeakGFlops > 1e-9 {
		t.Fatalf("GFlops %g want peak %g", p.GFlops, m.PeakGFlops)
	}
}

func TestPredictAIs(t *testing.T) {
	m := Skylake()
	lines := uint64(1e9 / cachesim.LineSize)
	p := Predict(m, 2e9, 1, traffic(lines, 2*lines, 4*lines))
	if math.Abs(p.AIs[0]-2.0) > 1e-9 || math.Abs(p.AIs[1]-1.0) > 1e-9 || math.Abs(p.AIs[2]-0.5) > 1e-9 {
		t.Fatalf("AIs %v", p.AIs)
	}
}

func TestMachinesSane(t *testing.T) {
	for _, m := range []Machine{Broadwell(), Skylake()} {
		if m.PeakGFlops <= 0 || len(m.BWGBs) != len(m.Cache.Levels) {
			t.Fatalf("%s: inconsistent machine", m.Name)
		}
		// Bandwidths decrease away from the core.
		for i := 1; i < len(m.BWGBs); i++ {
			if m.BWGBs[i] >= m.BWGBs[i-1] {
				t.Fatalf("%s: bandwidths not decreasing: %v", m.Name, m.BWGBs)
			}
		}
	}
	// Skylake has more compute and DRAM bandwidth than Broadwell (16 vs 8
	// cores), matching the paper's relative platform ordering.
	if Skylake().PeakGFlops <= Broadwell().PeakGFlops {
		t.Fatal("Skylake not faster than Broadwell")
	}
}

func TestMoreTrafficNeverFaster(t *testing.T) {
	m := Broadwell()
	base := Predict(m, 1e9, 1e9, traffic(1000, 1000, 1000))
	worse := Predict(m, 1e9, 1e9, traffic(2000, 2000, 2000))
	if worse.Seconds < base.Seconds {
		t.Fatal("more traffic predicted faster")
	}
}
