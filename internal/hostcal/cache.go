package hostcal

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// sysfsCacheRoot is the Linux cache-topology directory for cpu0; a
// variable so tests can point it at a fixture tree.
var sysfsCacheRoot = "/sys/devices/system/cpu/cpu0/cache"

// DetectCaches returns the host data-cache hierarchy, innermost first. On
// Linux it reads sysfs; elsewhere (or when sysfs is absent) it falls back
// to a latency probe, and as a last resort to a generic default geometry.
// The Source field of each level records which path produced it.
func DetectCaches() []CacheLevel {
	if runtime.GOOS == "linux" {
		if levels, err := sysfsLevels(sysfsCacheRoot); err == nil && len(levels) > 0 {
			return levels
		}
	}
	if levels := probeLevels(256 << 20); len(levels) > 0 {
		return levels
	}
	return defaultLevels()
}

// sysfsLevels parses /sys/devices/system/cpu/cpu0/cache/index*/: one entry
// per Data or Unified cache level, with size, associativity and whether the
// level is shared across cores.
func sysfsLevels(root string) ([]CacheLevel, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	byLevel := map[int]CacheLevel{}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "index") {
			continue
		}
		dir := filepath.Join(root, e.Name())
		typ := readTrim(dir, "type")
		if typ != "Data" && typ != "Unified" {
			continue
		}
		lvl, err := strconv.Atoi(readTrim(dir, "level"))
		if err != nil || lvl < 1 {
			continue
		}
		size, err := parseSize(readTrim(dir, "size"))
		if err != nil || size < 4096 {
			continue
		}
		assoc, err := strconv.Atoi(readTrim(dir, "ways_of_associativity"))
		if err != nil || assoc < 1 {
			assoc = 8 // missing or fully-associative: a sane default
		}
		if maxAssoc := size / 64; assoc > maxAssoc {
			assoc = maxAssoc
		}
		shared := cpuListLen(readTrim(dir, "shared_cpu_list")) > 1
		if prev, ok := byLevel[lvl]; ok && prev.SizeBytes >= size {
			continue // keep the larger view if duplicated
		}
		byLevel[lvl] = CacheLevel{
			Name:      fmt.Sprintf("L%d", lvl),
			SizeBytes: size,
			Assoc:     assoc,
			Shared:    shared,
			Source:    "sysfs",
		}
	}
	if len(byLevel) == 0 {
		return nil, fmt.Errorf("hostcal: no data caches under %s", root)
	}
	lvls := make([]int, 0, len(byLevel))
	for l := range byLevel {
		lvls = append(lvls, l)
	}
	sort.Ints(lvls)
	out := make([]CacheLevel, 0, len(lvls))
	for _, l := range lvls {
		out = append(out, byLevel[l])
	}
	return out, nil
}

func readTrim(dir, name string) string {
	b, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(b))
}

// parseSize parses sysfs cache sizes like "32K", "1024K", "36M".
func parseSize(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("hostcal: empty size")
	}
	mult := 1
	switch s[len(s)-1] {
	case 'K', 'k':
		mult, s = 1<<10, s[:len(s)-1]
	case 'M', 'm':
		mult, s = 1<<20, s[:len(s)-1]
	case 'G', 'g':
		mult, s = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

// cpuListLen counts the CPUs in a sysfs cpulist string ("0-3,8-11" → 8).
func cpuListLen(s string) int {
	if s == "" {
		return 0
	}
	n := 0
	for _, part := range strings.Split(s, ",") {
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.Atoi(strings.TrimSpace(lo))
			b, err2 := strconv.Atoi(strings.TrimSpace(hi))
			if err1 == nil && err2 == nil && b >= a {
				n += b - a + 1
			}
		} else if part != "" {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Latency-probe fallback

// probeLevels estimates cache capacities by pointer-chasing working sets
// from 16 KiB up to maxBytes and looking for latency steps: each plateau is
// a level, each jump a capacity boundary. Coarser than sysfs (associativity
// is assumed, the last level is assumed shared) but hardware-truthful about
// the sizes that matter to the traffic model.
func probeLevels(maxBytes int) []CacheLevel {
	type point struct {
		bytes int
		ns    float64
	}
	var pts []point
	for sz := 16 << 10; sz <= maxBytes; sz *= 2 {
		pts = append(pts, point{sz, chaseNS(sz)})
	}
	if len(pts) < 3 {
		return nil
	}
	// A jump of ≥ 1.6× from the running plateau marks a boundary; the
	// plateau's last size is the level capacity.
	var out []CacheLevel
	plateau := pts[0].ns
	lastBoundary := 0
	for i := 1; i < len(pts); i++ {
		if pts[i].ns >= 1.6*plateau && pts[i-1].bytes > lastBoundary {
			out = append(out, CacheLevel{
				Name:      fmt.Sprintf("L%d", len(out)+1),
				SizeBytes: pts[i-1].bytes,
				Assoc:     8,
				Source:    "probe",
			})
			lastBoundary = pts[i-1].bytes
			if len(out) == 3 {
				break
			}
		}
		// Track the plateau as a slowly-adapting reference.
		plateau = 0.5*plateau + 0.5*pts[i].ns
	}
	if len(out) == 0 {
		return nil
	}
	out[len(out)-1].Shared = true
	return out
}

// chaseNS measures the average dependent-load latency over a working set of
// the given size using a deterministic pseudo-random cyclic permutation.
func chaseNS(bytes int) float64 {
	n := bytes / 8
	if n < 16 {
		n = 16
	}
	next := make([]int64, n)
	// Sattolo's algorithm with a fixed LCG: a single cycle covering all
	// slots, visiting them in pseudo-random order.
	perm := make([]int64, n)
	for i := range perm {
		perm[i] = int64(i)
	}
	state := uint64(0x9E3779B97F4A7C15)
	rnd := func(limit int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(limit))
	}
	for i := n - 1; i > 0; i-- {
		j := rnd(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < n-1; i++ {
		next[perm[i]] = perm[i+1]
	}
	next[perm[n-1]] = perm[0]

	steps := 4 * n
	if steps < 1<<16 {
		steps = 1 << 16
	}
	p := int64(0)
	for i := 0; i < n; i++ { // warm the set
		p = next[p]
	}
	start := time.Now()
	for i := 0; i < steps; i++ {
		p = next[p]
	}
	el := time.Since(start)
	chaseSink += p
	return float64(el.Nanoseconds()) / float64(steps)
}

var chaseSink int64

// defaultLevels is the no-information fallback: a generic three-level
// server geometry, explicitly marked so consumers can tell it was never
// measured.
func defaultLevels() []CacheLevel {
	return []CacheLevel{
		{Name: "L1", SizeBytes: 32 << 10, Assoc: 8, Source: "default"},
		{Name: "L2", SizeBytes: 512 << 10, Assoc: 8, Source: "default"},
		{Name: "L3", SizeBytes: 32 << 20, Assoc: 16, Shared: true, Source: "default"},
	}
}
