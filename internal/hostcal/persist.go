package hostcal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"wavetile/internal/obs"
)

// EnvPath is the environment variable overriding the fingerprint location
// (tests and CI point it at scratch paths; an empty value is ignored).
const EnvPath = "WAVETILE_HOSTCAL"

// DefaultMaxAge is how old a fingerprint may grow before Check reports it
// stale: hardware doesn't drift, but kernels, governors and firmware do.
const DefaultMaxAge = 90 * 24 * time.Hour

// DefaultPath returns the canonical fingerprint location:
// $WAVETILE_HOSTCAL if set, else ~/.cache/wavesim/hostcal.json (honoring
// XDG_CACHE_HOME).
func DefaultPath() string {
	if p := os.Getenv(EnvPath); p != "" {
		return p
	}
	cache := os.Getenv("XDG_CACHE_HOME")
	if cache == "" {
		home, err := os.UserHomeDir()
		if err != nil {
			return "hostcal.json" // last resort: working directory
		}
		cache = filepath.Join(home, ".cache")
	}
	return filepath.Join(cache, "wavesim", "hostcal.json")
}

// Save writes the fingerprint as indented JSON via an atomic
// temp-file+rename, creating parent directories as needed.
func (f *Fingerprint) Save(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("hostcal: save: %w", err)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("hostcal: save: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("hostcal: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("hostcal: save: %w", err)
	}
	return nil
}

// Load reads a fingerprint, validating schema and structural sanity but
// not host identity — use Check (or LoadChecked) for that.
func Load(path string) (*Fingerprint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("hostcal: %w", err)
	}
	var f Fingerprint
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("hostcal: %s: %w", path, err)
	}
	if f.Kind != "" && f.Kind != Kind {
		return nil, fmt.Errorf("hostcal: %s is a %q document, not a host fingerprint", path, f.Kind)
	}
	if f.Version != Version {
		return nil, fmt.Errorf("hostcal: %s has schema version %d, want %d — re-run `make hostcal`",
			path, f.Version, Version)
	}
	if len(f.Levels) == 0 || len(f.BWGBs) != len(f.Levels) {
		return nil, fmt.Errorf("hostcal: %s: malformed fingerprint (%d levels, %d bandwidths)",
			path, len(f.Levels), len(f.BWGBs))
	}
	return &f, nil
}

// MismatchError reports a fingerprint that was measured on a different
// host than the one asking for it.
type MismatchError struct {
	Field      string
	Have, Want string
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("hostcal: fingerprint %s is %q but this host is %q — re-run `make hostcal`",
		e.Field, e.Have, e.Want)
}

// StaleError reports a fingerprint older than the allowed age.
type StaleError struct {
	Age    time.Duration
	MaxAge time.Duration
}

func (e *StaleError) Error() string {
	return fmt.Sprintf("hostcal: fingerprint is %.0fd old (max %.0fd) — re-run `make hostcal`",
		e.Age.Hours()/24, e.MaxAge.Hours()/24)
}

// Check validates the fingerprint against a host identity (normally
// obs.HostFingerprint()) and an age limit (0 → DefaultMaxAge). A mismatch
// or stale fingerprint is surfaced as a typed error, never silently used:
// callers either refuse (-machine host) or fall back to an explicitly
// marked preset.
func (f *Fingerprint) Check(host obs.HostInfo, maxAge time.Duration, now time.Time) error {
	if f.Host.GOOS != host.GOOS {
		return &MismatchError{"GOOS", f.Host.GOOS, host.GOOS}
	}
	if f.Host.GOARCH != host.GOARCH {
		return &MismatchError{"GOARCH", f.Host.GOARCH, host.GOARCH}
	}
	if f.Host.CPUs != host.CPUs {
		return &MismatchError{"CPU count", fmt.Sprint(f.Host.CPUs), fmt.Sprint(host.CPUs)}
	}
	if maxAge <= 0 {
		maxAge = DefaultMaxAge
	}
	if age := now.Sub(time.UnixMilli(f.CreatedUnixMS)); age > maxAge {
		return &StaleError{Age: age, MaxAge: maxAge}
	}
	return nil
}

// LoadChecked loads a fingerprint and validates it against the current
// host and the default age limit.
func LoadChecked(path string) (*Fingerprint, error) {
	f, err := Load(path)
	if err != nil {
		return nil, err
	}
	if err := f.Check(obs.HostFingerprint(), 0, time.Now()); err != nil {
		return nil, err
	}
	return f, nil
}

// IsUnusable reports whether err marks a fingerprint that exists but must
// not be used on this host (mismatch or stale) — as opposed to one that
// simply doesn't exist yet.
func IsUnusable(err error) bool {
	var m *MismatchError
	var s *StaleError
	return errors.As(err, &m) || errors.As(err, &s)
}
