package hostcal

import (
	"time"

	"wavetile/internal/par"
)

// ---------------------------------------------------------------------------
// STREAM-style sustained bandwidth

// streamKernel runs one pass of a STREAM kernel over every worker's span.
// Workers own contiguous [lo, hi) element ranges so each streams its own
// slice of the arrays, the same decomposition the stencil kernels use.
type streamKernel func(a, b, c []float32, s float32)

func kCopy(a, b, c []float32, s float32) {
	copy(b, a)
}

func kScale(a, b, c []float32, s float32) {
	for i := range b {
		b[i] = s * a[i]
	}
}

func kTriad(a, b, c []float32, s float32) {
	for i := range a {
		a[i] = b[i] + s*c[i]
	}
}

// timeStream times reps full passes of k over n-element arrays split across
// workers, returning the best single-pass duration. Arrays are initialized
// (touched) before timing so page faults stay out of the measurement.
func timeStream(n, workers, reps int, k streamKernel) time.Duration {
	a := make([]float32, n)
	b := make([]float32, n)
	c := make([]float32, n)
	for i := range a {
		a[i] = 1
		b[i] = 2
		c[i] = 0.5
	}
	span := func(w int) (int, int) {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		return lo, hi
	}
	run := func() {
		par.For(workers, func(w int) {
			lo, hi := span(w)
			k(a[lo:hi], b[lo:hi], c[lo:hi], 1.000001)
		})
	}
	run() // warm-up: faults pages, spins the pool up
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		run()
		el := time.Since(start)
		if best == 0 || el < best {
			best = el
		}
	}
	return best
}

// gbs converts bytes moved in d to GB/s.
func gbs(bytes float64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return bytes / d.Seconds() / 1e9
}

// measureStream runs the three STREAM kernels over a working set sized
// well past the LLC (Options.MinDRAMBuf), so fills come from memory.
func measureStream(o Options) Stream {
	// Three arrays of n float32 must cover the DRAM working set.
	n := o.MinDRAMBuf / (3 * 4)
	bytesPerPass := float64(n) * 4
	reps := o.TargetBytes / int(2*bytesPerPass)
	if reps < 1 {
		reps = 1
	}
	reps *= o.Repeats
	return Stream{
		CopyGBs:  gbs(2*bytesPerPass, timeStream(n, o.Workers, reps, kCopy)),
		ScaleGBs: gbs(2*bytesPerPass, timeStream(n, o.Workers, reps, kScale)),
		TriadGBs: gbs(3*bytesPerPass, timeStream(n, o.Workers, reps, kTriad)),
	}
}

// measureBoundaryBW estimates the sustained bandwidth at each hierarchy
// boundary: boundary i (fills into level i) is measured with a triad whose
// working set overflows level i but fits in level i+1, so the streams are
// served from the next level down. Private levels aggregate across cores
// (each worker owns its own resident buffers); the shared LLC is split.
// The last boundary (DRAM) uses a working set past the LLC.
func measureBoundaryBW(levels []CacheLevel, o Options) []float64 {
	out := make([]float64, len(levels))
	for i := range levels {
		var perWorker int // triad working-set bytes per worker
		workers := o.Workers
		if i == len(levels)-1 {
			// DRAM boundary: overflow the LLC.
			perWorker = o.MinDRAMBuf / workers
		} else {
			src := levels[i+1]
			budget := src.SizeBytes / 2 // stay clear of other residents
			if src.Shared {
				perWorker = budget / workers
			} else {
				perWorker = budget
			}
			// The set must overflow the level being filled past, or the
			// probe measures level i instead of the boundary below it.
			if need := 2 * levels[i].SizeBytes; perWorker < need {
				perWorker = need
				if src.Shared && workers > 1 {
					// Shrink the worker count until the shared source
					// level still holds every worker's set.
					workers = budget / perWorker
					if workers < 1 {
						workers = 1
					}
				}
			}
		}
		n := perWorker / (3 * 4)
		if n < 1024 {
			n = 1024
		}
		bytesPerPass := float64(n) * 4 * float64(workers)
		reps := o.TargetBytes / int(3*bytesPerPass)
		if reps < 1 {
			reps = 1
		}
		reps *= o.Repeats
		out[i] = gbs(3*bytesPerPass, timeLevelTriad(n, workers, reps))
	}
	return out
}

// timeLevelTriad is timeStream's per-level analogue: every worker owns a
// private n-element triple sized to be resident in the level under test,
// and repeats the triad over it. One "pass" is every worker covering its
// buffers once.
func timeLevelTriad(n, workers, reps int) time.Duration {
	bufs := make([][3][]float32, workers)
	for w := range bufs {
		bufs[w] = [3][]float32{
			make([]float32, n), make([]float32, n), make([]float32, n),
		}
		for i := 0; i < n; i++ {
			bufs[w][0][i], bufs[w][1][i], bufs[w][2][i] = 1, 2, 0.5
		}
	}
	run := func(inner int) {
		par.For(workers, func(w int) {
			a, b, c := bufs[w][0], bufs[w][1], bufs[w][2]
			for r := 0; r < inner; r++ {
				kTriad(a, b, c, 1.000001)
			}
		})
	}
	run(1)
	// Time all reps in one parallel region: per-level passes are far too
	// short (microseconds) to time individually.
	start := time.Now()
	run(reps)
	el := time.Since(start)
	return el / time.Duration(reps)
}

// ---------------------------------------------------------------------------
// Peak-FLOPs microbenchmark

// flopsSink defeats dead-code elimination of the FMA chains.
var flopsSink float32

// fmaChain runs iters iterations of 8 independent multiply-add chains —
// FMA-shaped (a·x + c), wide enough to fill the FP pipeline rather than
// serialize on the dependency latency of a single chain. 16 flops per
// iteration. The recurrence converges to c/(1−x) ≈ 0.14, so values stay
// normal (no denormal stalls) for any iteration count.
func fmaChain(iters int, seed float32) float32 {
	x := float32(0.999993)
	c := float32(1e-6)
	a0 := seed + 0.1
	a1 := seed + 0.2
	a2 := seed + 0.3
	a3 := seed + 0.4
	a4 := seed + 0.5
	a5 := seed + 0.6
	a6 := seed + 0.7
	a7 := seed + 0.8
	for i := 0; i < iters; i++ {
		a0 = a0*x + c
		a1 = a1*x + c
		a2 = a2*x + c
		a3 = a3*x + c
		a4 = a4*x + c
		a5 = a5*x + c
		a6 = a6*x + c
		a7 = a7*x + c
	}
	return a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7
}

const flopsPerIter = 16

// measureFlops times the chain on one core and on all workers
// concurrently, returning (single-core, aggregate) sustained GFLOP/s.
func measureFlops(o Options) (core, aggregate float64) {
	time1 := func(iters int) time.Duration {
		start := time.Now()
		flopsSink += fmaChain(iters, 0.5)
		return time.Since(start)
	}
	timeAll := func(iters int) time.Duration {
		sinks := make([]float32, o.Workers)
		start := time.Now()
		par.For(o.Workers, func(w int) {
			sinks[w] = fmaChain(iters, 0.3+float32(w)*0.01)
		})
		el := time.Since(start)
		for _, s := range sinks {
			flopsSink += s
		}
		return el
	}
	time1(o.FlopIters / 8) // warm-up
	timeAll(o.FlopIters / 8)
	bestC, bestA := time.Duration(0), time.Duration(0)
	for r := 0; r < o.Repeats; r++ {
		if d := time1(o.FlopIters); bestC == 0 || d < bestC {
			bestC = d
		}
		if d := timeAll(o.FlopIters); bestA == 0 || d < bestA {
			bestA = d
		}
	}
	fl := float64(o.FlopIters) * flopsPerIter
	core = fl / bestC.Seconds() / 1e9
	aggregate = fl * float64(o.Workers) / bestA.Seconds() / 1e9
	return core, aggregate
}
