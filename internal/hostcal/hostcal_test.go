package hostcal

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"wavetile/internal/obs"
)

// writeSysfs builds a fake cpu0/cache tree.
func writeSysfs(t *testing.T, root string, entries []map[string]string) {
	t.Helper()
	for i, e := range entries {
		dir := filepath.Join(root, "index"+string(rune('0'+i)))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for k, v := range e {
			if err := os.WriteFile(filepath.Join(dir, k), []byte(v+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestSysfsLevels(t *testing.T) {
	root := t.TempDir()
	writeSysfs(t, root, []map[string]string{
		{"level": "1", "type": "Data", "size": "48K", "ways_of_associativity": "12", "shared_cpu_list": "0"},
		{"level": "1", "type": "Instruction", "size": "32K", "ways_of_associativity": "8", "shared_cpu_list": "0"},
		{"level": "2", "type": "Unified", "size": "2048K", "ways_of_associativity": "16", "shared_cpu_list": "0"},
		{"level": "3", "type": "Unified", "size": "36M", "ways_of_associativity": "11", "shared_cpu_list": "0-15"},
	})
	levels, err := sysfsLevels(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 {
		t.Fatalf("got %d levels, want 3 (instruction cache must be skipped): %+v", len(levels), levels)
	}
	want := []CacheLevel{
		{Name: "L1", SizeBytes: 48 << 10, Assoc: 12, Shared: false, Source: "sysfs"},
		{Name: "L2", SizeBytes: 2048 << 10, Assoc: 16, Shared: false, Source: "sysfs"},
		{Name: "L3", SizeBytes: 36 << 20, Assoc: 11, Shared: true, Source: "sysfs"},
	}
	for i, w := range want {
		if levels[i] != w {
			t.Fatalf("level %d = %+v, want %+v", i, levels[i], w)
		}
	}
}

func TestSysfsLevelsMissingWays(t *testing.T) {
	root := t.TempDir()
	writeSysfs(t, root, []map[string]string{
		{"level": "1", "type": "Data", "size": "32K", "shared_cpu_list": "0"},
	})
	levels, err := sysfsLevels(root)
	if err != nil {
		t.Fatal(err)
	}
	if levels[0].Assoc != 8 {
		t.Fatalf("missing ways file must default associativity to 8, got %d", levels[0].Assoc)
	}
}

func TestCPUListLen(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{
		{"", 0}, {"0", 1}, {"0-3", 4}, {"0-3,8-11", 8}, {"0,32", 2},
	} {
		if got := cpuListLen(tc.in); got != tc.want {
			t.Errorf("cpuListLen(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// testOptions keeps measurement runs fast enough for unit tests while
// still exercising every code path.
func testOptions() Options {
	return Options{
		Quick:       true,
		TargetBytes: 8 << 20,
		MinDRAMBuf:  24 << 20,
		FlopIters:   2e6,
		Repeats:     1,
	}
}

// TestMeasureSane checks the full measurement path produces a structurally
// valid, physically plausible fingerprint.
func TestMeasureSane(t *testing.T) {
	f, err := Measure(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if f.Version != Version || f.Kind != Kind || !f.Quick {
		t.Fatalf("bad header: %+v", f)
	}
	if len(f.Levels) == 0 || len(f.BWGBs) != len(f.Levels) {
		t.Fatalf("levels/bandwidths mismatch: %d levels, %d bandwidths", len(f.Levels), len(f.BWGBs))
	}
	for i, bw := range f.BWGBs {
		if bw <= 0 || bw > 1e5 {
			t.Fatalf("implausible bandwidth %.3g GB/s at boundary %d", bw, i)
		}
	}
	if f.Stream.Best() <= 0 {
		t.Fatalf("no stream result: %+v", f.Stream)
	}
	if f.CoreGFlops <= 0 || f.PeakGFlops <= 0 || f.PeakGFlops < f.CoreGFlops/2 {
		t.Fatalf("implausible flops: core %.3g aggregate %.3g", f.CoreGFlops, f.PeakGFlops)
	}
	if f.MachineName() == "" || f.MachineName()[:5] != "host/" {
		t.Fatalf("machine name %q must carry the host/ prefix", f.MachineName())
	}
}

// TestMeasureReproducible is the reproducibility acceptance check at test
// scale: two back-to-back measurements must agree within a (generous,
// noise-tolerant) factor — the full-scale equivalent is two `make hostcal`
// runs agreeing, which average far more iterations.
func TestMeasureReproducible(t *testing.T) {
	a, err := Measure(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	within := func(name string, x, y, tol float64) {
		t.Helper()
		r := x / y
		if r < 1/tol || r > tol {
			t.Errorf("%s not reproducible: %.3g vs %.3g (ratio %.2f, tol %.1fx)", name, x, y, r, tol)
		}
	}
	within("DRAM bandwidth", a.BWGBs[len(a.BWGBs)-1], b.BWGBs[len(b.BWGBs)-1], 2.5)
	within("core GFLOP/s", a.CoreGFlops, b.CoreGFlops, 2.5)
	within("aggregate GFLOP/s", a.PeakGFlops, b.PeakGFlops, 2.5)
	if len(a.Levels) != len(b.Levels) {
		t.Errorf("cache detection not stable: %d vs %d levels", len(a.Levels), len(b.Levels))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	f, err := Measure(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sub", "hostcal.json")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	g, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.CreatedUnixMS != f.CreatedUnixMS || g.PeakGFlops != f.PeakGFlops ||
		len(g.Levels) != len(f.Levels) || g.BWGBs[0] != f.BWGBs[0] {
		t.Fatalf("round trip lost data: %+v vs %+v", g, f)
	}
	if err := g.Check(obs.HostFingerprint(), 0, time.Now()); err != nil {
		t.Fatalf("fresh same-host fingerprint must check clean: %v", err)
	}
}

// TestCheckSurfacesMismatchAndStaleness: a fingerprint from another host or
// era must be rejected with a typed, actionable error — never silently used.
func TestCheckSurfacesMismatchAndStaleness(t *testing.T) {
	f := &Fingerprint{
		Version: Version, Kind: Kind,
		CreatedUnixMS: time.Now().UnixMilli(),
		Host:          obs.HostFingerprint(),
		Levels:        defaultLevels(),
		BWGBs:         []float64{100, 50, 10},
	}
	host := obs.HostFingerprint()

	wrongArch := *f
	wrongArch.Host.GOARCH = "riscv64"
	if err := wrongArch.Check(host, 0, time.Now()); err == nil || !IsUnusable(err) {
		t.Fatalf("arch mismatch must surface a typed error, got %v", err)
	}
	wrongCPUs := *f
	wrongCPUs.Host.CPUs = host.CPUs + 7
	if err := wrongCPUs.Check(host, 0, time.Now()); err == nil || !IsUnusable(err) {
		t.Fatalf("CPU-count mismatch must surface a typed error, got %v", err)
	}
	if err := f.Check(host, time.Hour, time.Now().Add(48*time.Hour)); err == nil || !IsUnusable(err) {
		t.Fatalf("stale fingerprint must surface a typed error, got %v", err)
	}
	if err := f.Check(host, 0, time.Now()); err != nil {
		t.Fatalf("matching fresh fingerprint must pass: %v", err)
	}
}

func TestLoadRejectsBadDocuments(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file must error")
	}
	if _, err := Load(write("garbage.json", "{nope")); err == nil {
		t.Fatal("malformed JSON must error")
	}
	if _, err := Load(write("kind.json", `{"version":1,"kind":"wavetile.run-report"}`)); err == nil {
		t.Fatal("wrong kind must error")
	}
	if _, err := Load(write("ver.json", `{"version":99,"kind":"wavetile.hostcal"}`)); err == nil {
		t.Fatal("future schema version must error")
	}
	if _, err := Load(write("shape.json",
		`{"version":1,"kind":"wavetile.hostcal","levels":[{"name":"L1","size_bytes":32768,"assoc":8}],"bw_gb_per_s":[]}`)); err == nil {
		t.Fatal("levels/bandwidth length mismatch must error")
	}
}

func TestDefaultPathEnvOverride(t *testing.T) {
	t.Setenv(EnvPath, "/tmp/xyz/hostcal.json")
	if got := DefaultPath(); got != "/tmp/xyz/hostcal.json" {
		t.Fatalf("env override ignored: %q", got)
	}
	t.Setenv(EnvPath, "")
	t.Setenv("XDG_CACHE_HOME", "/tmp/xdg")
	if got := DefaultPath(); got != "/tmp/xdg/wavesim/hostcal.json" {
		t.Fatalf("XDG path wrong: %q", got)
	}
}

func TestParseSize(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{
		{"32K", 32 << 10}, {"2048K", 2048 << 10}, {"36M", 36 << 20}, {"64", 64},
	} {
		got, err := parseSize(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
	if _, err := parseSize(""); err == nil {
		t.Error("empty size must error")
	}
}
