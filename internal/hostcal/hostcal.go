// Package hostcal characterizes the host this process runs on: sustained
// memory bandwidth (STREAM-style copy/scale/triad microbenchmarks through
// internal/par), per-core and aggregate floating-point throughput
// (FMA-shaped multiply-add chains), and the cache geometry (sysfs on Linux,
// a latency-probe fallback elsewhere). The result is a schema-versioned
// JSON fingerprint persisted at ~/.cache/wavesim/hostcal.json.
//
// The fingerprint is the measured half of the Roofline-V2 design
// (SNIPPETS.md): hardware limits are measured once per host instead of
// hard-coded per paper SKU, and everything downstream —
// roofline.MachineFromCal, the 2-parameter calibrated predictor, and
// autotune.TunePredict — is a deterministic function of the fingerprint.
// Reports and predictions therefore attribute against the machine the run
// actually executed on, with the paper's Broadwell/Skylake presets demoted
// to an explicitly marked fallback.
package hostcal

import (
	"fmt"
	"time"

	"wavetile/internal/obs"
	"wavetile/internal/par"
)

// Version is the fingerprint schema version; bump on breaking changes.
const Version = 1

// Kind tags hostcal JSON documents.
const Kind = "wavetile.hostcal"

// CacheLevel describes one level of the host cache hierarchy.
type CacheLevel struct {
	Name      string `json:"name"` // "L1", "L2", "L3"
	SizeBytes int    `json:"size_bytes"`
	Assoc     int    `json:"assoc"`
	// Shared marks a level shared across cores (the LLC); private levels
	// aggregate bandwidth across cores, shared ones do not.
	Shared bool `json:"shared"`
	// Source records how the geometry was obtained: "sysfs", "probe" or
	// "default".
	Source string `json:"source"`
}

// Stream holds the DRAM-scale STREAM results in GB/s. Byte counts follow
// the STREAM convention (copy/scale move 2 elements, triad 3); the
// write-allocate read of the store stream is not counted, so the figures
// are comparable to published STREAM numbers and slightly below the raw
// bus traffic.
type Stream struct {
	CopyGBs  float64 `json:"copy_gb_per_s"`
	ScaleGBs float64 `json:"scale_gb_per_s"`
	TriadGBs float64 `json:"triad_gb_per_s"`
}

// Best returns the highest of the three kernels — the sustained-bandwidth
// ceiling the roofline model uses.
func (s Stream) Best() float64 {
	b := s.CopyGBs
	if s.ScaleGBs > b {
		b = s.ScaleGBs
	}
	if s.TriadGBs > b {
		b = s.TriadGBs
	}
	return b
}

// Calibration holds the two fitted model parameters of the Roofline-V2
// predictor (see roofline.Fit): a bandwidth-efficiency factor applied to
// every measured ceiling, and a per-point schedule overhead. Exactly these
// two are fitted; everything else in the fingerprint is measured.
type Calibration struct {
	BWEff              float64 `json:"bw_eff"`
	OverheadNSPerPoint float64 `json:"overhead_ns_per_point"`
	Samples            int     `json:"samples"`
	RMSRel             float64 `json:"rms_rel"` // relative RMS error of the fit
	FittedUnixMS       int64   `json:"fitted_unix_ms"`
}

// Fingerprint is the persisted host characterization.
type Fingerprint struct {
	Version       int          `json:"version"`
	Kind          string       `json:"kind"`
	CreatedUnixMS int64        `json:"created_unix_ms"`
	Host          obs.HostInfo `json:"host"`
	// Quick marks a reduced-iteration (smoke) measurement; quick
	// fingerprints position ceilings less precisely and are not meant to
	// be compared against full ones.
	Quick bool `json:"quick,omitempty"`

	Levels []CacheLevel `json:"levels"`
	// BWGBs is the sustained bandwidth at each hierarchy boundary,
	// innermost first (L2→L1, L3→L2, …, DRAM) — the measured analogue of
	// roofline.Machine.BWGBs.
	BWGBs  []float64 `json:"bw_gb_per_s"`
	Stream Stream    `json:"stream"`

	// PeakGFlops is the measured aggregate sustained FP32 multiply-add
	// throughput (all cores); CoreGFlops is a single core's.
	PeakGFlops float64 `json:"peak_gflops"`
	CoreGFlops float64 `json:"core_gflops"`

	// Calibration is present once `roofline -calibrate` has fitted the
	// 2-parameter predictor against measured runs on this host.
	Calibration *Calibration `json:"calibration,omitempty"`
}

// MachineName is the roofline machine label of a measured host, e.g.
// "host/amd64-16c". The "host/" prefix is what report consumers key on to
// distinguish measured machines from the "preset/..." paper models.
func (f *Fingerprint) MachineName() string {
	return fmt.Sprintf("host/%s-%dc", f.Host.GOARCH, f.Host.CPUs)
}

// Options size a measurement run.
type Options struct {
	// Quick selects the reduced-iteration smoke profile: smaller buffers
	// and fewer repetitions, seconds instead of tens of seconds. The
	// resulting fingerprint is marked Quick.
	Quick bool
	// Workers overrides the parallel width (default par.Workers).
	Workers int
	// TargetBytes is the approximate number of bytes each bandwidth
	// timing streams (default 1 GiB full, 96 MiB quick). More bytes
	// average over more noise.
	TargetBytes int
	// MinDRAMBuf floors the DRAM working set (default 4× LLC full,
	// 1.5× LLC quick — always well past the LLC).
	MinDRAMBuf int
	// FlopIters is the FMA-chain trip count per timing (default 6e7 full,
	// 8e6 quick; 16 flops per iteration).
	FlopIters int
	// Repeats is the best-of count per timing (default 3 full, 1 quick).
	Repeats int
}

func (o *Options) defaults(llc int) {
	if o.Workers <= 0 {
		o.Workers = par.Workers
	}
	if o.Repeats <= 0 {
		o.Repeats = 3
		if o.Quick {
			o.Repeats = 1
		}
	}
	if o.TargetBytes <= 0 {
		o.TargetBytes = 1 << 30
		if o.Quick {
			o.TargetBytes = 96 << 20
		}
	}
	if o.MinDRAMBuf <= 0 {
		factor := 4.0
		if o.Quick {
			factor = 1.5
		}
		o.MinDRAMBuf = int(factor * float64(llc))
		if min := 64 << 20; o.MinDRAMBuf < min {
			o.MinDRAMBuf = min
		}
	}
	if o.FlopIters <= 0 {
		o.FlopIters = 6e7
		if o.Quick {
			o.FlopIters = 8e6
		}
	}
}

// Measure characterizes the current host: cache geometry, per-boundary
// sustained bandwidth, DRAM-scale STREAM figures, and FP throughput. It is
// the expensive half of the predictive autotuner — run once per host (make
// hostcal) and persisted; everything downstream is pure computation on the
// returned fingerprint.
func Measure(o Options) (*Fingerprint, error) {
	levels := DetectCaches()
	if len(levels) == 0 {
		return nil, fmt.Errorf("hostcal: no cache levels detected")
	}
	llc := levels[len(levels)-1].SizeBytes
	o.defaults(llc)

	f := &Fingerprint{
		Version:       Version,
		Kind:          Kind,
		CreatedUnixMS: time.Now().UnixMilli(),
		Host:          obs.HostFingerprint(),
		Quick:         o.Quick,
		Levels:        levels,
	}
	f.Host.Workers = o.Workers

	f.Stream = measureStream(o)
	f.BWGBs = measureBoundaryBW(levels, o)
	// The last boundary is DRAM: prefer the dedicated STREAM figure (it
	// streams a larger working set than the generic boundary probe).
	if n := len(f.BWGBs); n > 0 {
		if best := f.Stream.Best(); best > 0 {
			f.BWGBs[n-1] = best
		}
	}

	core, agg := measureFlops(o)
	f.CoreGFlops, f.PeakGFlops = core, agg

	for i, bw := range f.BWGBs {
		if bw <= 0 {
			return nil, fmt.Errorf("hostcal: degenerate bandwidth %.3g GB/s at boundary %d", bw, i)
		}
	}
	if f.PeakGFlops <= 0 || f.CoreGFlops <= 0 {
		return nil, fmt.Errorf("hostcal: degenerate flops measurement (%.3g / %.3g GFLOP/s)",
			f.CoreGFlops, f.PeakGFlops)
	}
	return f, nil
}
