package wave

import (
	"math"
	"testing"
)

// ftzBranchy is the comparison form the branchless ftz replaced; it is the
// reference the bit-mask implementation must match bit for bit.
func ftzBranchy(v float32) float32 {
	if v < flushEps && v > -flushEps {
		return 0
	}
	return v
}

// TestFlushBitsMatchesEps pins the hardcoded bit pattern to the threshold.
func TestFlushBitsMatchesEps(t *testing.T) {
	if got := math.Float32bits(flushEps); got != flushBits {
		t.Fatalf("flushBits = %#08x, want math.Float32bits(flushEps) = %#08x", flushBits, got)
	}
}

// TestFtzBitIdentical sweeps denormal, normal, negative, boundary, NaN and
// Inf inputs and asserts the branchless flush returns bit-identical results
// to the branchy comparison form.
func TestFtzBitIdentical(t *testing.T) {
	cases := []float32{
		0, float32(math.Copysign(0, -1)), // ±0
		math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32, // extreme denormals
		1e-44, -1e-44, 1e-39, -1e-39, // denormals
		1.1754944e-38, -1.1754944e-38, // smallest normals
		1e-31, -1e-31, // normal but below threshold
		flushEps, -flushEps, // exactly at threshold (kept: strict <)
		math.Float32frombits(flushBits - 1), // one ulp below threshold
		math.Float32frombits(flushBits + 1), // one ulp above threshold
		1e-29, -1e-29, 1, -1, 3.5e12, -3.5e12,
		math.MaxFloat32, -math.MaxFloat32,
		float32(math.Inf(1)), float32(math.Inf(-1)),
		float32(math.NaN()), float32(-math.Sqrt(-1)),
		math.Float32frombits(0x7FC00001), // quiet NaN with payload
		math.Float32frombits(0xFF800001), // signalling NaN pattern
	}
	for _, v := range cases {
		want := math.Float32bits(ftzBranchy(v))
		got := math.Float32bits(ftz(v))
		if got != want {
			t.Errorf("ftz(%g / %#08x) = %#08x, want %#08x",
				v, math.Float32bits(v), got, want)
		}
	}
}

// TestFtzAppliedInEveryVariant runs every generated kernel variant and the
// generic fallback across all physics × space orders and asserts no
// wavefield store survived in the flush band (0, flushEps): the generator
// must wrap ftz around every store exactly as the generic path does, or
// denormal stragglers would reappear — and differ between variants.
func TestFtzAppliedInEveryVariant(t *testing.T) {
	for _, c := range variantCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			probe := c.build(t)
			for _, v := range append(probe.KernelVariants(), KernelGeneric) {
				p := runVariant(t, c, v)
				for name, f := range p.Fields() {
					for z, val := range f.Data {
						a := math.Abs(float64(val))
						if a != 0 && a < float64(flushEps) {
							t.Fatalf("variant %s field %s: unflushed denormal %g at flat index %d",
								v, name, val, z)
						}
					}
				}
			}
		})
	}
}

// TestFtzBitIdenticalSweep walks the whole float32 exponent range (both
// signs, several mantissa patterns each) so the boundary logic is checked
// far beyond the handpicked cases.
func TestFtzBitIdenticalSweep(t *testing.T) {
	for exp := uint32(0); exp < 256; exp++ {
		for _, man := range []uint32{0, 1, 0x400000, 0x7FFFFF} {
			for _, sign := range []uint32{0, 0x80000000} {
				bits := sign | exp<<23 | man
				v := math.Float32frombits(bits)
				want := math.Float32bits(ftzBranchy(v))
				got := math.Float32bits(ftz(v))
				if got != want {
					t.Fatalf("ftz(%#08x) = %#08x, want %#08x", bits, got, want)
				}
			}
		}
	}
}
