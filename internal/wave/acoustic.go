package wave

import (
	"fmt"
	"time"

	"wavetile/internal/fd"
	"wavetile/internal/grid"
	"wavetile/internal/model"
	"wavetile/internal/obs"
	"wavetile/internal/sparse"
	"wavetile/internal/tiling"
)

// Acoustic is the isotropic acoustic propagator (§III-A): the single scalar
// PDE m·∂²u/∂t² − Δu = q with sponge damping, discretized with a 2nd-order
// leapfrog in time and a symmetric stencil of configurable space order. The
// damped update, per point,
//
//	u⁺ = (2u − (1−σdt)·u⁻ + (dt²/m)·Δₕu + injection) / (1+σdt)
//
// is evaluated with precomputed per-point factors dm1 = 1−σdt,
// dp1i = 1/(1+σdt) and mdt2 = dt²/m. Wavefields use two in-place buffers
// (u⁺ overwrites u⁻), the memory layout temporal blocking relies on (Fig. 7).
type Acoustic struct {
	P  *model.AcousticParams
	SO int // space order
	R  int // stencil radius = SO/2

	U [2]*grid.Grid // ping-pong wavefields; U[t&1] holds time index t

	cx, cy, cz []float32 // 2nd-derivative coefficients folded with 1/h²
	c0         float32   // combined center coefficient

	dm1, dp1i, mdt2 *grid.Grid

	Ops *SparseOps

	blockX, blockY int
	kern           func(t int, reg grid.Region)
	ks             kernState
}

// AcousticOpts configures NewAcoustic.
type AcousticOpts struct {
	Params *model.AcousticParams
	SO     int // space order: positive even; the paper uses 4, 8, 12
	Src    *sparse.Points
	SrcWav [][]float32 // one wavelet series (≥ nt samples) per source
	Rec    *sparse.Points
	// SincSource selects Kaiser-windowed sinc injection (8³-point support)
	// instead of trilinear.
	SincSource bool
	// SincReceivers selects Kaiser-windowed sinc measurement interpolation.
	SincReceivers bool
}

// NewAcoustic builds the propagator, precomputing the update factors and the
// sparse-operator structures (masks, decomposed wavefields, sampler).
func NewAcoustic(o AcousticOpts) (*Acoustic, error) {
	p := o.Params
	g := p.Geom
	if g.Nt <= 0 || g.Dt <= 0 {
		return nil, fmt.Errorf("wave: geometry time axis not set (nt=%d dt=%g)", g.Nt, g.Dt)
	}
	r := fd.Radius(o.SO)
	if p.M.H < r {
		return nil, fmt.Errorf("wave: model halo %d smaller than stencil radius %d", p.M.H, r)
	}
	a := &Acoustic{P: p, SO: o.SO, R: r, blockX: 8, blockY: 8}
	a.U[0] = grid.New(g.Nx, g.Ny, g.Nz, r)
	a.U[1] = grid.New(g.Nx, g.Ny, g.Nz, r)

	c := fd.SecondDeriv(o.SO)
	a.cx = fd.ToF32(c, 1/(g.Hx*g.Hx))
	a.cy = fd.ToF32(c, 1/(g.Hy*g.Hy))
	a.cz = fd.ToF32(c, 1/(g.Hz*g.Hz))
	a.c0 = a.cx[0] + a.cy[0] + a.cz[0]

	a.dm1 = grid.New(g.Nx, g.Ny, g.Nz, r)
	a.dp1i = grid.New(g.Nx, g.Ny, g.Nz, r)
	a.mdt2 = grid.New(g.Nx, g.Ny, g.Nz, r)
	dt := float32(g.Dt)
	a.dm1.FillFunc(func(x, y, z int) float32 { return 1 - p.Damp.At(x, y, z)*dt })
	a.dp1i.FillFunc(func(x, y, z int) float32 { return 1 / (1 + p.Damp.At(x, y, z)*dt) })
	a.mdt2.FillFunc(func(x, y, z int) float32 { return dt * dt / p.M.At(x, y, z) })

	scale := func(x, y, z int) float32 { return a.mdt2.At(x, y, z) }
	ops, err := newSparseOps(g.Nx, g.Ny, g.Nz, g.Hx, g.Hy, g.Hz, g.Nt, o.Src, o.SrcWav, o.Rec, scale, o.SincSource, o.SincReceivers)
	if err != nil {
		return nil, err
	}
	a.Ops = ops

	a.selectKernel()
	return a, nil
}

// --- tiling.Propagator ---

// GridShape returns the tiled (x, y) extents.
func (a *Acoustic) GridShape() (int, int) { return a.P.Geom.Nx, a.P.Geom.Ny }

// Steps returns the number of timesteps.
func (a *Acoustic) Steps() int { return a.P.Geom.Nt }

// TimeSkew returns the per-timestep wavefront shift (the stencil radius).
func (a *Acoustic) TimeSkew() int { return a.R }

// MaxPhaseOffset is 0: the acoustic update is single-phase.
func (a *Acoustic) MaxPhaseOffset() int { return 0 }

// MinTile returns the dependency margin for legal tiles (2·radius).
func (a *Acoustic) MinTile() int { return 2 * a.R }

// SetBlocks fixes the parallel sub-block shape.
func (a *Acoustic) SetBlocks(bx, by int) { a.blockX, a.blockY = bx, by }

// Step advances u from time index t to t+1 on the clamped region, applying
// fused injection and receiver sampling per block when fused is set.
func (a *Acoustic) Step(t int, raw grid.Region, fused bool) {
	if a.ks.generic {
		a.ks.noteStep()
	}
	g := a.P.Geom
	reg := raw.Clamp(g.Nx, g.Ny)
	if reg.Empty() {
		return
	}
	a.Ops.setFused(fused)
	un := a.U[(t+1)&1]
	if sec := obs.SectionStart(); sec != nil {
		a.stepObserved(sec, t, reg, fused, un)
		return
	}
	tiling.ForBlocks(reg, a.blockX, a.blockY, func(b grid.Region) {
		a.kern(t, b)
		if fused {
			a.Ops.InjectFused(un, t, b)
			a.Ops.SampleFused(un, t, b)
		}
	})
}

// stepObserved is Step's instrumented twin: identical work in identical
// order, with per-block phase timings attributed per worker and the block
// update duration fed to the "block_ns" histogram.
func (a *Acoustic) stepObserved(sec *obs.Section, t int, reg grid.Region, fused bool, un *grid.Grid) {
	r := sec.Registry()
	hist := r.Histogram("block_ns")
	tiling.ForBlocksIndexed(reg, a.blockX, a.blockY, func(w int, b grid.Region) {
		t0 := time.Now()
		a.kern(t, b)
		sec.Observe(obs.PhaseStencil, w, t0)
		if fused {
			t1 := time.Now()
			a.Ops.InjectFused(un, t, b)
			sec.Observe(obs.PhaseInject, w, t1)
			t2 := time.Now()
			a.Ops.SampleFused(un, t, b)
			sec.Observe(obs.PhaseSample, w, t2)
		}
		hist.Observe(time.Since(t0))
	})
	r.AddStep(int64(reg.NumPoints()) * int64(a.P.Geom.Nz))
	sec.End()
}

// ApplySparse runs the Listing-1 baseline sparse operators after a full
// unfused timestep.
func (a *Acoustic) ApplySparse(t int) {
	un := a.U[(t+1)&1]
	a.Ops.InjectBaseline(un, t)
	a.Ops.InterpolateBaseline(un, t)
}

// --- inspection & lifecycle ---

// Wavefield returns the grid holding time index t values.
func (a *Acoustic) Wavefield(t int) *grid.Grid { return a.U[t&1] }

// Final returns the wavefield at the final time index (Steps()).
func (a *Acoustic) Final() *grid.Grid { return a.U[a.P.Geom.Nt&1] }

// Fields returns the wavefield buffers for whole-state comparison.
func (a *Acoustic) Fields() map[string]*grid.Grid {
	return map[string]*grid.Grid{"u0": a.U[0], "u1": a.U[1]}
}

// Reset zeroes all run state so the propagator can be re-run.
func (a *Acoustic) Reset() {
	a.U[0].Zero()
	a.U[1].Zero()
	a.Ops.Reset()
}

// FlopsPerPoint returns the per-point floating-point operation count of the
// update, used by the roofline model.
func (a *Acoustic) FlopsPerPoint() int {
	// Laplacian: center mul + R per dim × (add,add,mul,acc → 4) × 3 dims,
	// plus the 6-op damped leapfrog combination.
	return 1 + 12*a.R + 7
}

// PointsPerStep returns the grid points updated per timestep.
func (a *Acoustic) PointsPerStep() int {
	g := a.P.Geom
	return g.Nx * g.Ny * g.Nz
}

// kernelGeneric is the radius-generic damped leapfrog update. The
// specialized kernels below unroll the coefficient loop for the paper's
// space orders; all variants compute the identical expression.
func (a *Acoustic) kernelGeneric(t int, reg grid.Region) {
	u := a.U[t&1]
	un := a.U[(t+1)&1]
	nz := u.Nz
	sx, sy := u.SX, u.SY
	ud, und := u.Data, un.Data
	dm1, dp1i, mdt2 := a.dm1.Data, a.dp1i.Data, a.mdt2.Data
	r := a.R
	for x := reg.X0; x < reg.X1; x++ {
		for y := reg.Y0; y < reg.Y1; y++ {
			base := u.Idx(x, y, 0)
			for z := 0; z < nz; z++ {
				i := base + z
				lap := a.c0 * ud[i]
				for k := 1; k <= r; k++ {
					lap += a.cx[k]*(ud[i+k*sx]+ud[i-k*sx]) +
						a.cy[k]*(ud[i+k*sy]+ud[i-k*sy]) +
						a.cz[k]*(ud[i+k]+ud[i-k])
				}
				und[i] = ftz((2*ud[i] - dm1[i]*und[i] + mdt2[i]*lap) * dp1i[i])
			}
		}
	}
}
