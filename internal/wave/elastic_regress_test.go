package wave

import (
	"testing"

	"wavetile/internal/model"
	"wavetile/internal/tiling"
)

// TestElasticImpulseWTBExact is the regression test for the multi-phase
// spatial-schedule bug: with an impulse initial stress on an undamped tiny
// grid, the wavefront's leading edge reaches the far rows/columns on the
// last timestep, and any region mishandling at the domain edge (e.g. the
// stress phase losing its trailing rows, or a stale velocity read) shows up
// as an exact-equality failure between the spatial and WTB schedules.
func TestElasticImpulseWTBExact(t *testing.T) {
	n := 14
	for nt := 1; nt <= 8; nt++ {
		g := model.Geometry{Nx: n, Ny: n, Nz: 6, Hx: 10, Hy: 10, Hz: 10, NBL: 0}
		dt := g.CriticalDtElastic(2, 3000, model.DefaultCFL)
		g.SetTime(float64(nt)*dt, dt)
		g.Nt = nt
		params := model.NewElastic(g, 1,
			model.Homogeneous(2000), model.Homogeneous(1000), model.Homogeneous(1800))
		mk := func() *Elastic {
			e, err := NewElastic(ElasticOpts{Params: params, SO: 2})
			if err != nil {
				t.Fatal(err)
			}
			e.Txx.Set(6, 6, 2, 1e6)
			e.Tyy.Set(6, 6, 2, 1e6)
			e.Tzz.Set(6, 6, 2, 1e6)
			return e
		}
		ref := mk()
		tiling.RunSpatial(ref, 100, 100, true)
		for _, cfg := range []tiling.Config{
			{TT: nt, TileX: 4, TileY: 4, BlockX: 100, BlockY: 100},
			{TT: 3, TileX: 6, TileY: 4, BlockX: 3, BlockY: 3},
		} {
			wtb := mk()
			if err := tiling.RunWTB(wtb, cfg); err != nil {
				t.Fatal(err)
			}
			for name, f := range ref.Fields() {
				o := wtb.Fields()[name]
				if !f.Equal(o) {
					_, x, y, z := f.MaxAbsDiff(o)
					t.Fatalf("nt=%d %v: field %s differs at (%d,%d,%d): %g vs %g",
						nt, cfg, name, x, y, z, f.At(x, y, z), o.At(x, y, z))
				}
			}
		}
	}
}
