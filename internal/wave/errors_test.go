package wave

import (
	"testing"

	"wavetile/internal/model"
	"wavetile/internal/sparse"
)

func TestConstructorValidation(t *testing.T) {
	g := model.Geometry{Nx: 24, Ny: 24, Nz: 24, Hx: 10, Hy: 10, Hz: 10, NBL: 2}
	// Time axis unset.
	p := model.NewAcoustic(g, 2, model.Homogeneous(2000))
	if _, err := NewAcoustic(AcousticOpts{Params: p, SO: 4}); err == nil {
		t.Fatal("unset time axis accepted (acoustic)")
	}
	tp := model.NewTTI(g, 2, model.Homogeneous(2000), model.Homogeneous(0.2),
		model.Homogeneous(0.1), model.Homogeneous(0.3), model.Homogeneous(0.2))
	if _, err := NewTTI(TTIOpts{Params: tp, SO: 4}); err == nil {
		t.Fatal("unset time axis accepted (tti)")
	}
	ep := model.NewElastic(g, 2, model.Homogeneous(2000), model.Homogeneous(1000), model.Homogeneous(1800))
	if _, err := NewElastic(ElasticOpts{Params: ep, SO: 4}); err == nil {
		t.Fatal("unset time axis accepted (elastic)")
	}

	// Halo smaller than the stencil radius.
	g.SetTime(0.01, 0.001)
	p2 := model.NewAcoustic(g, 2, model.Homogeneous(2000))
	if _, err := NewAcoustic(AcousticOpts{Params: p2, SO: 12}); err == nil {
		t.Fatal("undersized halo accepted (acoustic)")
	}
	tp2 := model.NewTTI(g, 2, model.Homogeneous(2000), model.Homogeneous(0.2),
		model.Homogeneous(0.1), model.Homogeneous(0.3), model.Homogeneous(0.2))
	if _, err := NewTTI(TTIOpts{Params: tp2, SO: 12}); err == nil {
		t.Fatal("undersized halo accepted (tti)")
	}
	ep2 := model.NewElastic(g, 2, model.Homogeneous(2000), model.Homogeneous(1000), model.Homogeneous(1800))
	if _, err := NewElastic(ElasticOpts{Params: ep2, SO: 12}); err == nil {
		t.Fatal("undersized halo accepted (elastic)")
	}
}

func TestSparseOpsValidation(t *testing.T) {
	g := model.Geometry{Nx: 24, Ny: 24, Nz: 24, Hx: 10, Hy: 10, Hz: 10, NBL: 2}
	g.SetTime(0.01, 0.001)
	params := model.NewAcoustic(g, 2, model.Homogeneous(2000))
	src := sparse.Single(sparse.Coord{115, 115, 115})
	// Wavelet count mismatch.
	if _, err := NewAcoustic(AcousticOpts{Params: params, SO: 4, Src: src}); err == nil {
		t.Fatal("missing wavelets accepted")
	}
	// Out-of-hull source.
	bad := sparse.Single(sparse.Coord{-5, 115, 115})
	if _, err := NewAcoustic(AcousticOpts{Params: params, SO: 4, Src: bad,
		SrcWav: [][]float32{make([]float32, g.Nt)}}); err == nil {
		t.Fatal("out-of-hull source accepted")
	}
	// Out-of-hull receiver.
	if _, err := NewAcoustic(AcousticOpts{Params: params, SO: 4, Rec: bad}); err == nil {
		t.Fatal("out-of-hull receiver accepted")
	}
	// Moving sources: mismatched wavelets.
	a, err := NewAcoustic(AcousticOpts{Params: params, SO: 4, Src: src,
		SrcWav: [][]float32{make([]float32, g.Nt)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Ops.SetMovingSources(g.Nx, g.Ny, g.Nz, g.Hx, g.Hy, g.Hz,
		func(t int) *sparse.Points { return src }, nil); err == nil {
		t.Fatal("moving sources with no wavelets accepted")
	}
	if err := a.Ops.SetMovingSources(g.Nx, g.Ny, g.Nz, g.Hx, g.Hy, g.Hz,
		func(t int) *sparse.Points { return bad },
		[][]float32{make([]float32, g.Nt)}); err == nil {
		t.Fatal("moving sources leaving the hull accepted")
	}
}
