package wave

import (
	"fmt"
	"math"
	"testing"

	"wavetile/internal/grid"
	"wavetile/internal/model"
	"wavetile/internal/sparse"
	"wavetile/internal/tiling"
	"wavetile/internal/wavelet"
)

// The tests in this file assert the paper's central correctness claim: after
// precomputing the sparse off-the-grid operators, wave-front temporal
// blocking computes the same wavefields as the spatially-blocked schedule.
// With fused operators the two schedules run identical per-point arithmetic
// in a different order, so equality is required to be bitwise; the fused
// path versus the Listing-1 off-the-grid baseline differs only in
// accumulation order of the injected amplitudes, so equality is to FP
// tolerance there.

type testProp interface {
	tiling.Propagator
	Fields() map[string]*grid.Grid
	Reset()
}

func smallGeom(n int, so int) model.Geometry {
	g := model.Geometry{Nx: n, Ny: n, Nz: n, Hx: 10, Hy: 10, Hz: 10, NBL: 4}
	return g
}

func buildAcoustic(t *testing.T, n, so int, nsrc int) *Acoustic {
	t.Helper()
	g := smallGeom(n, so)
	dt := g.CriticalDtAcoustic(so, 3000, model.DefaultCFL)
	g.SetTime(float64(24)*dt, dt) // a couple dozen steps
	params := model.NewAcoustic(g, so/2, model.Layered(float64(n)*g.Hz, 1500, 2500, 3000))

	lo, hi := g.PhysicalBox()
	src := sparse.PlaneSlice(nsrc, lo[2]+0.37*(hi[2]-lo[2]), lo[0], hi[0], lo[1], hi[1])
	wav := make([][]float32, src.N())
	for i := range wav {
		wav[i] = wavelet.RickerSeries(2.0/(float64(g.Nt)*g.Dt), g.Nt, g.Dt, 1e3)
	}
	rec := sparse.Line(7, sparse.Coord{lo[0] + 3, lo[1] + 5, lo[2] + 11},
		sparse.Coord{hi[0] - 3, hi[1] - 5, lo[2] + 11})
	a, err := NewAcoustic(AcousticOpts{Params: params, SO: so, Src: src, SrcWav: wav, Rec: rec})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func buildTTI(t *testing.T, n, so int) *TTI {
	t.Helper()
	g := smallGeom(n, so)
	dt := g.CriticalDtTTI(so, 3000, 0.24, model.DefaultCFL)
	g.SetTime(float64(12)*dt, dt)
	params := model.NewTTI(g, so/2,
		model.Layered(float64(n)*g.Hz, 1500, 2500, 3000),
		model.Homogeneous(0.24), model.Homogeneous(0.12),
		func(x, y, z float64) float64 { return 0.3 + 0.001*z },
		func(x, y, z float64) float64 { return 0.2 + 0.0005*x },
	)
	lo, hi := g.PhysicalBox()
	src := sparse.Single(sparse.Coord{(lo[0] + hi[0]) / 2.1, (lo[1] + hi[1]) / 1.9, lo[2] + 21})
	wav := [][]float32{wavelet.RickerSeries(2.0/(float64(g.Nt)*g.Dt), g.Nt, g.Dt, 1e3)}
	rec := sparse.Line(5, sparse.Coord{lo[0] + 3, lo[1] + 5, lo[2] + 11},
		sparse.Coord{hi[0] - 3, hi[1] - 5, lo[2] + 11})
	w, err := NewTTI(TTIOpts{Params: params, SO: so, Src: src, SrcWav: wav, Rec: rec})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func buildElastic(t *testing.T, n, so int) *Elastic {
	t.Helper()
	g := smallGeom(n, so)
	dt := g.CriticalDtElastic(so, 3000, model.DefaultCFL)
	g.SetTime(float64(16)*dt, dt)
	params := model.NewElastic(g, so/2,
		model.Layered(float64(n)*g.Hz, 1500, 2500, 3000),
		model.Layered(float64(n)*g.Hz, 800, 1300, 1700),
		model.Homogeneous(1800),
	)
	lo, hi := g.PhysicalBox()
	src := sparse.Single(sparse.Coord{(lo[0] + hi[0]) / 2.1, (lo[1] + hi[1]) / 1.9, lo[2] + 21})
	wav := [][]float32{wavelet.RickerSeries(2.0/(float64(g.Nt)*g.Dt), g.Nt, g.Dt, 1e6)}
	rec := sparse.Line(5, sparse.Coord{lo[0] + 3, lo[1] + 5, lo[2] + 11},
		sparse.Coord{hi[0] - 3, hi[1] - 5, lo[2] + 11})
	e, err := NewElastic(ElasticOpts{Params: params, SO: so, Src: src, SrcWav: wav, Rec: rec})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// snapshot copies all wavefields and receiver traces after a run.
func snapshot(t *testing.T, p testProp, ops *SparseOps) (map[string]*grid.Grid, [][]float32) {
	t.Helper()
	fields := map[string]*grid.Grid{}
	for name, f := range p.Fields() {
		fields[name] = f.Clone()
		if f.HasNaN() {
			t.Fatalf("field %s contains NaN/Inf after run", name)
		}
	}
	rec, err := ops.Receivers()
	if err != nil {
		t.Fatal(err)
	}
	recCopy := make([][]float32, len(rec))
	for i := range rec {
		recCopy[i] = append([]float32(nil), rec[i]...)
	}
	return fields, recCopy
}

func assertBitwise(t *testing.T, ctx string, a, b map[string]*grid.Grid) {
	t.Helper()
	for name := range a {
		if !a[name].Equal(b[name]) {
			d, x, y, z := a[name].MaxAbsDiff(b[name])
			t.Fatalf("%s: field %s differs (max |Δ|=%g at %d,%d,%d)", ctx, name, d, x, y, z)
		}
	}
}

func assertRecBitwise(t *testing.T, ctx string, a, b [][]float32) {
	t.Helper()
	for ti := range a {
		for r := range a[ti] {
			if a[ti][r] != b[ti][r] {
				t.Fatalf("%s: receiver %d at t=%d differs: %g vs %g", ctx, r, ti, a[ti][r], b[ti][r])
			}
		}
	}
}

func assertClose(t *testing.T, ctx string, a, b map[string]*grid.Grid, rel float64) {
	t.Helper()
	for name := range a {
		d, x, y, z := a[name].MaxAbsDiff(b[name])
		scale := math.Max(a[name].MaxAbs(), 1e-30)
		if d > rel*scale {
			t.Fatalf("%s: field %s relative diff %g > %g at (%d,%d,%d)", ctx, name, d/scale, rel, x, y, z)
		}
	}
}

func runEquivalence(t *testing.T, p testProp, ops *SparseOps, cfgs []tiling.Config) {
	t.Helper()
	// Reference: fused spatially-blocked run.
	p.Reset()
	tiling.RunSpatial(p, 8, 8, true)
	refFields, refRec := snapshot(t, p, ops)
	if maxOver(refFields) == 0 {
		t.Fatal("reference run produced an all-zero wavefield; test is vacuous")
	}

	// Listing-1 baseline (unfused) agrees to tolerance.
	p.Reset()
	tiling.RunSpatial(p, 8, 8, false)
	baseFields, _ := snapshot(t, p, ops)
	assertClose(t, "fused-vs-baseline", refFields, baseFields, 2e-5)

	// WTB runs agree bitwise.
	for _, cfg := range cfgs {
		p.Reset()
		if err := tiling.RunWTB(p, cfg); err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		f, r := snapshot(t, p, ops)
		assertBitwise(t, fmt.Sprintf("wtb %v", cfg), refFields, f)
		assertRecBitwise(t, fmt.Sprintf("wtb rec %v", cfg), refRec, r)
	}
}

func maxOver(fields map[string]*grid.Grid) float64 {
	m := 0.0
	for _, f := range fields {
		if v := f.MaxAbs(); v > m {
			m = v
		}
	}
	return m
}

func TestAcousticEquivalence(t *testing.T) {
	for _, so := range []int{4, 8, 12} {
		so := so
		t.Run(fmt.Sprintf("SO%d", so), func(t *testing.T) {
			a := buildAcoustic(t, 36, so, 3)
			r := a.R
			cfgs := []tiling.Config{
				{TT: 4, TileX: 2 * r, TileY: 2 * r, BlockX: 4, BlockY: 4}, // minimum legal tile
				{TT: 3, TileX: 16, TileY: 12, BlockX: 8, BlockY: 8},
				{TT: 8, TileX: 20, TileY: 20, BlockX: 5, BlockY: 20},
				{TT: 1, TileX: 16, TileY: 16, BlockX: 8, BlockY: 8}, // degenerate: spatial
				{TT: 64, TileX: 36, TileY: 36, BlockX: 8, BlockY: 8},
			}
			runEquivalence(t, a, a.Ops, cfgs)
		})
	}
}

func TestAcousticEquivalenceManySources(t *testing.T) {
	a := buildAcoustic(t, 32, 4, 40) // dense-ish plane of sources
	cfgs := []tiling.Config{
		{TT: 5, TileX: 12, TileY: 12, BlockX: 6, BlockY: 6},
	}
	runEquivalence(t, a, a.Ops, cfgs)
}

func TestTTIEquivalence(t *testing.T) {
	for _, so := range []int{4, 8, 12} {
		so := so
		t.Run(fmt.Sprintf("SO%d", so), func(t *testing.T) {
			w := buildTTI(t, 30, so)
			r := w.R
			cfgs := []tiling.Config{
				{TT: 3, TileX: 2 * r, TileY: 4 * r, BlockX: 4, BlockY: 4},
				{TT: 6, TileX: 14, TileY: 14, BlockX: 7, BlockY: 7},
			}
			runEquivalence(t, w, w.Ops, cfgs)
		})
	}
}

func TestElasticEquivalence(t *testing.T) {
	for _, so := range []int{4, 8, 12} {
		so := so
		t.Run(fmt.Sprintf("SO%d", so), func(t *testing.T) {
			e := buildElastic(t, 30, so)
			r := e.R
			cfgs := []tiling.Config{
				{TT: 3, TileX: 2 * r, TileY: 4 * r, BlockX: 4, BlockY: 4},
				{TT: 5, TileX: max(12, 2*r), TileY: max(10, 2*r), BlockX: 6, BlockY: 5},
				{TT: 2, TileX: 16, TileY: 16, BlockX: 8, BlockY: 8},
			}
			runEquivalence(t, e, e.Ops, cfgs)
		})
	}
}
