package wave

import (
	"math"
	"testing"

	"wavetile/internal/model"
	"wavetile/internal/sparse"
	"wavetile/internal/tiling"
	"wavetile/internal/wavelet"
)

// TestSincReceiversEquivalence: the fused measurement interpolation remains
// schedule-independent with windowed-sinc receivers, and the gathered
// traces stay close to trilinear ones (both measure the same wavefield).
func TestSincReceiversEquivalence(t *testing.T) {
	n, so := 36, 4
	g := model.Geometry{Nx: n, Ny: n, Nz: n, Hx: 10, Hy: 10, Hz: 10, NBL: 4}
	dt := g.CriticalDtAcoustic(so, 3000, model.DefaultCFL)
	g.SetTime(44*dt, dt)
	params := model.NewAcoustic(g, so/2, model.Layered(float64(n)*10, 1500, 2500, 3000))
	c := g.Center()
	src := sparse.Single(sparse.Coord{c[0] + 3.7, c[1] - 2.1, c[2] + 1.3})
	wav := [][]float32{wavelet.RickerSeries(1.0/(float64(g.Nt)*g.Dt), g.Nt, g.Dt, 1e3)}
	// Receivers well inside the hull (sinc radius margin).
	rec := sparse.Line(4, sparse.Coord{c[0] - 60, c[1] + 41, c[2] - 52},
		sparse.Coord{c[0] + 60, c[1] + 41, c[2] - 52})

	build := func(sincRec bool) *Acoustic {
		a, err := NewAcoustic(AcousticOpts{
			Params: params, SO: so, Src: src, SrcWav: wav, Rec: rec,
			SincReceivers: sincRec,
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	a := build(true)
	tiling.RunSpatial(a, 8, 8, true)
	refRec, err := a.Ops.Receivers()
	if err != nil {
		t.Fatal(err)
	}
	if len(refRec[0]) != 4 {
		t.Fatalf("sinc receiver groups not re-summed: %d traces", len(refRec[0]))
	}
	a.Reset()
	if err := tiling.RunWTB(a, tiling.Config{TT: 6, TileX: 12, TileY: 12, BlockX: 6, BlockY: 6}); err != nil {
		t.Fatal(err)
	}
	wtbRec, err := a.Ops.Receivers()
	if err != nil {
		t.Fatal(err)
	}
	for ti := range refRec {
		for r := range refRec[ti] {
			if refRec[ti][r] != wtbRec[ti][r] {
				t.Fatalf("sinc receivers differ between schedules at t=%d r=%d", ti, r)
			}
		}
	}

	// Compare against trilinear receivers on the same wavefield. The two
	// apertures (8 points vs 8³ points) measure a short-wavelength field
	// differently, so this is an order-of-magnitude sanity bound, not an
	// identity.
	tri := build(false)
	tiling.RunSpatial(tri, 8, 8, true)
	triRec, err := tri.Ops.Receivers()
	if err != nil {
		t.Fatal(err)
	}
	peakS, peakT := 0.0, 0.0
	for ti := range refRec {
		for r := range refRec[ti] {
			if v := math.Abs(float64(refRec[ti][r])); v > peakS {
				peakS = v
			}
			if v := math.Abs(float64(triRec[ti][r])); v > peakT {
				peakT = v
			}
		}
	}
	if peakS == 0 || peakT == 0 {
		t.Fatal("silent receivers")
	}
	ratio := peakS / peakT
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("sinc vs trilinear receiver peaks differ wildly: %g vs %g", peakS, peakT)
	}
}
