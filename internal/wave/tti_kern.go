package wave

import "wavetile/internal/grid"

// kernelR2 is the radius-2 (space order 4) specialization of the TTI
// update: pure and cross second derivatives fully unrolled, matching the
// generic kernel's expressions up to floating-point re-association.
func (w *TTI) kernelR2(t int, reg grid.Region) {
	p := w.Pw[t&1]
	pn := w.Pw[(t+1)&1]
	q := w.Qw[t&1]
	qn := w.Qw[(t+1)&1]
	nz := p.Nz
	sx, sy := p.SX, p.SY
	pd, pnd, qd, qnd := p.Data, pn.Data, q.Data, qn.Data
	aa, bb, cc := w.aa.Data, w.bb.Data, w.cc.Data
	e2, sqd := w.e2.Data, w.sqd.Data
	dm1, dp1i, mdt2 := w.dm1.Data, w.dp1i.Data, w.mdt2.Data
	x20, x21, x22 := w.c2x[0], w.c2x[1], w.c2x[2]
	y20, y21, y22 := w.c2y[0], w.c2y[1], w.c2y[2]
	z20, z21, z22 := w.c2z[0], w.c2z[1], w.c2z[2]
	dx1, dx2 := w.d1x[1], w.d1x[2]
	dy1, dy2 := w.d1y[1], w.d1y[2]
	dz1, dz2 := w.d1z[1], w.d1z[2]

	// gzz evaluates the rotated second derivative of f at i with the
	// unrolled 2-point first-derivative cross terms.
	gzz := func(f []float32, i int, a, b, c float32) (float32, float32) {
		xx := x20*f[i] + x21*(f[i+sx]+f[i-sx]) + x22*(f[i+2*sx]+f[i-2*sx])
		yy := y20*f[i] + y21*(f[i+sy]+f[i-sy]) + y22*(f[i+2*sy]+f[i-2*sy])
		zz := z20*f[i] + z21*(f[i+1]+f[i-1]) + z22*(f[i+2]+f[i-2])

		cxy := dx1*(dy1*(f[i+sx+sy]-f[i+sx-sy]-f[i-sx+sy]+f[i-sx-sy])+
			dy2*(f[i+sx+2*sy]-f[i+sx-2*sy]-f[i-sx+2*sy]+f[i-sx-2*sy])) +
			dx2*(dy1*(f[i+2*sx+sy]-f[i+2*sx-sy]-f[i-2*sx+sy]+f[i-2*sx-sy])+
				dy2*(f[i+2*sx+2*sy]-f[i+2*sx-2*sy]-f[i-2*sx+2*sy]+f[i-2*sx-2*sy]))
		cxz := dx1*(dz1*(f[i+sx+1]-f[i+sx-1]-f[i-sx+1]+f[i-sx-1])+
			dz2*(f[i+sx+2]-f[i+sx-2]-f[i-sx+2]+f[i-sx-2])) +
			dx2*(dz1*(f[i+2*sx+1]-f[i+2*sx-1]-f[i-2*sx+1]+f[i-2*sx-1])+
				dz2*(f[i+2*sx+2]-f[i+2*sx-2]-f[i-2*sx+2]+f[i-2*sx-2]))
		cyz := dy1*(dz1*(f[i+sy+1]-f[i+sy-1]-f[i-sy+1]+f[i-sy-1])+
			dz2*(f[i+sy+2]-f[i+sy-2]-f[i-sy+2]+f[i-sy-2])) +
			dy2*(dz1*(f[i+2*sy+1]-f[i+2*sy-1]-f[i-2*sy+1]+f[i-2*sy-1])+
				dz2*(f[i+2*sy+2]-f[i+2*sy-2]-f[i-2*sy+2]+f[i-2*sy-2]))

		g := a*a*xx + b*b*yy + c*c*zz + 2*a*b*cxy + 2*a*c*cxz + 2*b*c*cyz
		return g, xx + yy + zz
	}

	for x := reg.X0; x < reg.X1; x++ {
		for y := reg.Y0; y < reg.Y1; y++ {
			base := p.Idx(x, y, 0)
			for z := 0; z < nz; z++ {
				i := base + z
				a, b, c := aa[i], bb[i], cc[i]
				gzzP, lapP := gzz(pd, i, a, b, c)
				hp := lapP - gzzP
				gzzQ, _ := gzz(qd, i, a, b, c)
				pv := (2*pd[i] - dm1[i]*pnd[i] + mdt2[i]*(e2[i]*hp+sqd[i]*gzzQ)) * dp1i[i]
				if pv < flushEps && pv > -flushEps {
					pv = 0
				}
				pnd[i] = pv
				qv := (2*qd[i] - dm1[i]*qnd[i] + mdt2[i]*(sqd[i]*hp+gzzQ)) * dp1i[i]
				if qv < flushEps && qv > -flushEps {
					qv = 0
				}
				qnd[i] = qv
			}
		}
	}
}
