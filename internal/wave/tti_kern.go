package wave

import "wavetile/internal/grid"

// kernelR2 is the radius-2 (space order 4) specialization of the TTI
// update: pure and cross second derivatives fully unrolled, matching the
// generic kernel's expressions up to floating-point re-association.
//
// The rotated second derivative (gzz in the generic kernel) is inlined
// straight-line for both wavefields rather than shared through a closure:
// closure calls carry their own slice-length values through SSA, which
// blocks the prove pass, while the flat form below follows the BCE
// discipline (`make bce-check`) — one per-row sub-slice of length nz per
// (dx,dy,dz) stencil offset, all indexed with the bare induction variable.
func (w *TTI) kernelR2(t int, reg grid.Region) {
	p := w.Pw[t&1]
	pn := w.Pw[(t+1)&1]
	q := w.Qw[t&1]
	qn := w.Qw[(t+1)&1]
	nz := p.Nz
	sx, sy := p.SX, p.SY
	pd, pnd, qd, qnd := p.Data, pn.Data, q.Data, qn.Data
	aaD, bbD, ccD := w.aa.Data, w.bb.Data, w.cc.Data
	e2D, sqdD := w.e2.Data, w.sqd.Data
	dm1D, dp1iD, mdt2D := w.dm1.Data, w.dp1i.Data, w.mdt2.Data
	c2x, c2y, c2z := w.c2x[:3], w.c2y[:3], w.c2z[:3]
	x20, x21, x22 := c2x[0], c2x[1], c2x[2]
	y20, y21, y22 := c2y[0], c2y[1], c2y[2]
	z20, z21, z22 := c2z[0], c2z[1], c2z[2]
	d1x, d1y, d1z := w.d1x[:3], w.d1y[:3], w.d1z[:3]
	dx1, dx2 := d1x[1], d1x[2]
	dy1, dy2 := d1y[1], d1y[2]
	dz1, dz2 := d1z[1], d1z[2]

	for x := reg.X0; x < reg.X1; x++ {
		for y := reg.Y0; y < reg.Y1; y++ {
			o := p.Idx(x, y, 0)

			pc := pd[o:][:nz]
			pXp1, pXm1 := pd[o+sx:][:nz], pd[o-sx:][:nz]
			pXp2, pXm2 := pd[o+2*sx:][:nz], pd[o-2*sx:][:nz]
			pYp1, pYm1 := pd[o+sy:][:nz], pd[o-sy:][:nz]
			pYp2, pYm2 := pd[o+2*sy:][:nz], pd[o-2*sy:][:nz]
			pZp1, pZm1 := pd[o+1:][:nz], pd[o-1:][:nz]
			pZp2, pZm2 := pd[o+2:][:nz], pd[o-2:][:nz]
			pXp1Yp1, pXp1Ym1 := pd[o+sx+sy:][:nz], pd[o+sx-sy:][:nz]
			pXm1Yp1, pXm1Ym1 := pd[o-sx+sy:][:nz], pd[o-sx-sy:][:nz]
			pXp1Yp2, pXp1Ym2 := pd[o+sx+2*sy:][:nz], pd[o+sx-2*sy:][:nz]
			pXm1Yp2, pXm1Ym2 := pd[o-sx+2*sy:][:nz], pd[o-sx-2*sy:][:nz]
			pXp2Yp1, pXp2Ym1 := pd[o+2*sx+sy:][:nz], pd[o+2*sx-sy:][:nz]
			pXm2Yp1, pXm2Ym1 := pd[o-2*sx+sy:][:nz], pd[o-2*sx-sy:][:nz]
			pXp2Yp2, pXp2Ym2 := pd[o+2*sx+2*sy:][:nz], pd[o+2*sx-2*sy:][:nz]
			pXm2Yp2, pXm2Ym2 := pd[o-2*sx+2*sy:][:nz], pd[o-2*sx-2*sy:][:nz]
			pXp1Zp1, pXp1Zm1 := pd[o+sx+1:][:nz], pd[o+sx-1:][:nz]
			pXm1Zp1, pXm1Zm1 := pd[o-sx+1:][:nz], pd[o-sx-1:][:nz]
			pXp1Zp2, pXp1Zm2 := pd[o+sx+2:][:nz], pd[o+sx-2:][:nz]
			pXm1Zp2, pXm1Zm2 := pd[o-sx+2:][:nz], pd[o-sx-2:][:nz]
			pXp2Zp1, pXp2Zm1 := pd[o+2*sx+1:][:nz], pd[o+2*sx-1:][:nz]
			pXm2Zp1, pXm2Zm1 := pd[o-2*sx+1:][:nz], pd[o-2*sx-1:][:nz]
			pXp2Zp2, pXp2Zm2 := pd[o+2*sx+2:][:nz], pd[o+2*sx-2:][:nz]
			pXm2Zp2, pXm2Zm2 := pd[o-2*sx+2:][:nz], pd[o-2*sx-2:][:nz]
			pYp1Zp1, pYp1Zm1 := pd[o+sy+1:][:nz], pd[o+sy-1:][:nz]
			pYm1Zp1, pYm1Zm1 := pd[o-sy+1:][:nz], pd[o-sy-1:][:nz]
			pYp1Zp2, pYp1Zm2 := pd[o+sy+2:][:nz], pd[o+sy-2:][:nz]
			pYm1Zp2, pYm1Zm2 := pd[o-sy+2:][:nz], pd[o-sy-2:][:nz]
			pYp2Zp1, pYp2Zm1 := pd[o+2*sy+1:][:nz], pd[o+2*sy-1:][:nz]
			pYm2Zp1, pYm2Zm1 := pd[o-2*sy+1:][:nz], pd[o-2*sy-1:][:nz]
			pYp2Zp2, pYp2Zm2 := pd[o+2*sy+2:][:nz], pd[o+2*sy-2:][:nz]
			pYm2Zp2, pYm2Zm2 := pd[o-2*sy+2:][:nz], pd[o-2*sy-2:][:nz]

			qc := qd[o:][:nz]
			qXp1, qXm1 := qd[o+sx:][:nz], qd[o-sx:][:nz]
			qXp2, qXm2 := qd[o+2*sx:][:nz], qd[o-2*sx:][:nz]
			qYp1, qYm1 := qd[o+sy:][:nz], qd[o-sy:][:nz]
			qYp2, qYm2 := qd[o+2*sy:][:nz], qd[o-2*sy:][:nz]
			qZp1, qZm1 := qd[o+1:][:nz], qd[o-1:][:nz]
			qZp2, qZm2 := qd[o+2:][:nz], qd[o-2:][:nz]
			qXp1Yp1, qXp1Ym1 := qd[o+sx+sy:][:nz], qd[o+sx-sy:][:nz]
			qXm1Yp1, qXm1Ym1 := qd[o-sx+sy:][:nz], qd[o-sx-sy:][:nz]
			qXp1Yp2, qXp1Ym2 := qd[o+sx+2*sy:][:nz], qd[o+sx-2*sy:][:nz]
			qXm1Yp2, qXm1Ym2 := qd[o-sx+2*sy:][:nz], qd[o-sx-2*sy:][:nz]
			qXp2Yp1, qXp2Ym1 := qd[o+2*sx+sy:][:nz], qd[o+2*sx-sy:][:nz]
			qXm2Yp1, qXm2Ym1 := qd[o-2*sx+sy:][:nz], qd[o-2*sx-sy:][:nz]
			qXp2Yp2, qXp2Ym2 := qd[o+2*sx+2*sy:][:nz], qd[o+2*sx-2*sy:][:nz]
			qXm2Yp2, qXm2Ym2 := qd[o-2*sx+2*sy:][:nz], qd[o-2*sx-2*sy:][:nz]
			qXp1Zp1, qXp1Zm1 := qd[o+sx+1:][:nz], qd[o+sx-1:][:nz]
			qXm1Zp1, qXm1Zm1 := qd[o-sx+1:][:nz], qd[o-sx-1:][:nz]
			qXp1Zp2, qXp1Zm2 := qd[o+sx+2:][:nz], qd[o+sx-2:][:nz]
			qXm1Zp2, qXm1Zm2 := qd[o-sx+2:][:nz], qd[o-sx-2:][:nz]
			qXp2Zp1, qXp2Zm1 := qd[o+2*sx+1:][:nz], qd[o+2*sx-1:][:nz]
			qXm2Zp1, qXm2Zm1 := qd[o-2*sx+1:][:nz], qd[o-2*sx-1:][:nz]
			qXp2Zp2, qXp2Zm2 := qd[o+2*sx+2:][:nz], qd[o+2*sx-2:][:nz]
			qXm2Zp2, qXm2Zm2 := qd[o-2*sx+2:][:nz], qd[o-2*sx-2:][:nz]
			qYp1Zp1, qYp1Zm1 := qd[o+sy+1:][:nz], qd[o+sy-1:][:nz]
			qYm1Zp1, qYm1Zm1 := qd[o-sy+1:][:nz], qd[o-sy-1:][:nz]
			qYp1Zp2, qYp1Zm2 := qd[o+sy+2:][:nz], qd[o+sy-2:][:nz]
			qYm1Zp2, qYm1Zm2 := qd[o-sy+2:][:nz], qd[o-sy-2:][:nz]
			qYp2Zp1, qYp2Zm1 := qd[o+2*sy+1:][:nz], qd[o+2*sy-1:][:nz]
			qYm2Zp1, qYm2Zm1 := qd[o-2*sy+1:][:nz], qd[o-2*sy-1:][:nz]
			qYp2Zp2, qYp2Zm2 := qd[o+2*sy+2:][:nz], qd[o+2*sy-2:][:nz]
			qYm2Zp2, qYm2Zm2 := qd[o-2*sy+2:][:nz], qd[o-2*sy-2:][:nz]

			pnc, qnc := pnd[o:][:nz], qnd[o:][:nz]
			aa, bb, cc := aaD[o:][:nz], bbD[o:][:nz], ccD[o:][:nz]
			e2, sqd := e2D[o:][:nz], sqdD[o:][:nz]
			dm1, dp1i, mdt2 := dm1D[o:][:nz], dp1iD[o:][:nz], mdt2D[o:][:nz]

			for z := range pnc {
				a, b, c := aa[z], bb[z], cc[z]

				xxP := x20*pc[z] + x21*(pXp1[z]+pXm1[z]) + x22*(pXp2[z]+pXm2[z])
				yyP := y20*pc[z] + y21*(pYp1[z]+pYm1[z]) + y22*(pYp2[z]+pYm2[z])
				zzP := z20*pc[z] + z21*(pZp1[z]+pZm1[z]) + z22*(pZp2[z]+pZm2[z])
				cxyP := dx1*(dy1*(pXp1Yp1[z]-pXp1Ym1[z]-pXm1Yp1[z]+pXm1Ym1[z])+
					dy2*(pXp1Yp2[z]-pXp1Ym2[z]-pXm1Yp2[z]+pXm1Ym2[z])) +
					dx2*(dy1*(pXp2Yp1[z]-pXp2Ym1[z]-pXm2Yp1[z]+pXm2Ym1[z])+
						dy2*(pXp2Yp2[z]-pXp2Ym2[z]-pXm2Yp2[z]+pXm2Ym2[z]))
				cxzP := dx1*(dz1*(pXp1Zp1[z]-pXp1Zm1[z]-pXm1Zp1[z]+pXm1Zm1[z])+
					dz2*(pXp1Zp2[z]-pXp1Zm2[z]-pXm1Zp2[z]+pXm1Zm2[z])) +
					dx2*(dz1*(pXp2Zp1[z]-pXp2Zm1[z]-pXm2Zp1[z]+pXm2Zm1[z])+
						dz2*(pXp2Zp2[z]-pXp2Zm2[z]-pXm2Zp2[z]+pXm2Zm2[z]))
				cyzP := dy1*(dz1*(pYp1Zp1[z]-pYp1Zm1[z]-pYm1Zp1[z]+pYm1Zm1[z])+
					dz2*(pYp1Zp2[z]-pYp1Zm2[z]-pYm1Zp2[z]+pYm1Zm2[z])) +
					dy2*(dz1*(pYp2Zp1[z]-pYp2Zm1[z]-pYm2Zp1[z]+pYm2Zm1[z])+
						dz2*(pYp2Zp2[z]-pYp2Zm2[z]-pYm2Zp2[z]+pYm2Zm2[z]))
				gzzP := a*a*xxP + b*b*yyP + c*c*zzP + 2*a*b*cxyP + 2*a*c*cxzP + 2*b*c*cyzP
				hp := xxP + yyP + zzP - gzzP

				xxQ := x20*qc[z] + x21*(qXp1[z]+qXm1[z]) + x22*(qXp2[z]+qXm2[z])
				yyQ := y20*qc[z] + y21*(qYp1[z]+qYm1[z]) + y22*(qYp2[z]+qYm2[z])
				zzQ := z20*qc[z] + z21*(qZp1[z]+qZm1[z]) + z22*(qZp2[z]+qZm2[z])
				cxyQ := dx1*(dy1*(qXp1Yp1[z]-qXp1Ym1[z]-qXm1Yp1[z]+qXm1Ym1[z])+
					dy2*(qXp1Yp2[z]-qXp1Ym2[z]-qXm1Yp2[z]+qXm1Ym2[z])) +
					dx2*(dy1*(qXp2Yp1[z]-qXp2Ym1[z]-qXm2Yp1[z]+qXm2Ym1[z])+
						dy2*(qXp2Yp2[z]-qXp2Ym2[z]-qXm2Yp2[z]+qXm2Ym2[z]))
				cxzQ := dx1*(dz1*(qXp1Zp1[z]-qXp1Zm1[z]-qXm1Zp1[z]+qXm1Zm1[z])+
					dz2*(qXp1Zp2[z]-qXp1Zm2[z]-qXm1Zp2[z]+qXm1Zm2[z])) +
					dx2*(dz1*(qXp2Zp1[z]-qXp2Zm1[z]-qXm2Zp1[z]+qXm2Zm1[z])+
						dz2*(qXp2Zp2[z]-qXp2Zm2[z]-qXm2Zp2[z]+qXm2Zm2[z]))
				cyzQ := dy1*(dz1*(qYp1Zp1[z]-qYp1Zm1[z]-qYm1Zp1[z]+qYm1Zm1[z])+
					dz2*(qYp1Zp2[z]-qYp1Zm2[z]-qYm1Zp2[z]+qYm1Zm2[z])) +
					dy2*(dz1*(qYp2Zp1[z]-qYp2Zm1[z]-qYm2Zp1[z]+qYm2Zm1[z])+
						dz2*(qYp2Zp2[z]-qYp2Zm2[z]-qYm2Zp2[z]+qYm2Zm2[z]))
				gzzQ := a*a*xxQ + b*b*yyQ + c*c*zzQ + 2*a*b*cxyQ + 2*a*c*cxzQ + 2*b*c*cyzQ

				pnc[z] = ftz((2*pc[z] - dm1[z]*pnc[z] + mdt2[z]*(e2[z]*hp+sqd[z]*gzzQ)) * dp1i[z])
				qnc[z] = ftz((2*qc[z] - dm1[z]*qnc[z] + mdt2[z]*(sqd[z]*hp+gzzQ)) * dp1i[z])
			}
		}
	}
}
