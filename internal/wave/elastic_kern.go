package wave

import "wavetile/internal/grid"

// Radius-2 (space order 4) specializations of the elastic kernels: the
// staggered-derivative closures of the generic path are unrolled into
// straight-line code, the form Devito's code generation emits. The
// expressions match velKernel/stressKernel exactly up to floating-point
// re-association of the derivative accumulations.

func (e *Elastic) velKernelR2(reg grid.Region) {
	nz := e.Vx.Nz
	sx, sy := e.Vx.SX, e.Vx.SY
	vx, vy, vz := e.Vx.Data, e.Vy.Data, e.Vz.Data
	txx, tyy, tzz := e.Txx.Data, e.Tyy.Data, e.Tzz.Data
	txy, txz, tyz := e.Txy.Data, e.Txz.Data, e.Tyz.Data
	bdt, taper := e.bdt.Data, e.taper.Data
	cx1, cx2 := e.csx[1], e.csx[2]
	cy1, cy2 := e.csy[1], e.csy[2]
	cz1, cz2 := e.csz[1], e.csz[2]
	for x := reg.X0; x < reg.X1; x++ {
		for y := reg.Y0; y < reg.Y1; y++ {
			base := e.Vx.Idx(x, y, 0)
			for z := 0; z < nz; z++ {
				i := base + z
				dxfTxx := cx1*(txx[i+sx]-txx[i]) + cx2*(txx[i+2*sx]-txx[i-sx])
				dybTxy := cy1*(txy[i]-txy[i-sy]) + cy2*(txy[i+sy]-txy[i-2*sy])
				dzbTxz := cz1*(txz[i]-txz[i-1]) + cz2*(txz[i+1]-txz[i-2])
				vx[i] = ftz((vx[i] + bdt[i]*(dxfTxx+dybTxy+dzbTxz)) * taper[i])

				dxbTxy := cx1*(txy[i]-txy[i-sx]) + cx2*(txy[i+sx]-txy[i-2*sx])
				dyfTyy := cy1*(tyy[i+sy]-tyy[i]) + cy2*(tyy[i+2*sy]-tyy[i-sy])
				dzbTyz := cz1*(tyz[i]-tyz[i-1]) + cz2*(tyz[i+1]-tyz[i-2])
				vy[i] = ftz((vy[i] + bdt[i]*(dxbTxy+dyfTyy+dzbTyz)) * taper[i])

				dxbTxz := cx1*(txz[i]-txz[i-sx]) + cx2*(txz[i+sx]-txz[i-2*sx])
				dybTyz := cy1*(tyz[i]-tyz[i-sy]) + cy2*(tyz[i+sy]-tyz[i-2*sy])
				dzfTzz := cz1*(tzz[i+1]-tzz[i]) + cz2*(tzz[i+2]-tzz[i-1])
				vz[i] = ftz((vz[i] + bdt[i]*(dxbTxz+dybTyz+dzfTzz)) * taper[i])
			}
		}
	}
}

func (e *Elastic) stressKernelR2(reg grid.Region) {
	nz := e.Vx.Nz
	sx, sy := e.Vx.SX, e.Vx.SY
	vx, vy, vz := e.Vx.Data, e.Vy.Data, e.Vz.Data
	txx, tyy, tzz := e.Txx.Data, e.Tyy.Data, e.Tzz.Data
	txy, txz, tyz := e.Txy.Data, e.Txz.Data, e.Tyz.Data
	l2mdt, lamdt, mudt, taper := e.l2mdt.Data, e.lamdt.Data, e.mudt.Data, e.taper.Data
	cx1, cx2 := e.csx[1], e.csx[2]
	cy1, cy2 := e.csy[1], e.csy[2]
	cz1, cz2 := e.csz[1], e.csz[2]
	for x := reg.X0; x < reg.X1; x++ {
		for y := reg.Y0; y < reg.Y1; y++ {
			base := e.Vx.Idx(x, y, 0)
			for z := 0; z < nz; z++ {
				i := base + z
				dvxdx := cx1*(vx[i]-vx[i-sx]) + cx2*(vx[i+sx]-vx[i-2*sx])
				dvydy := cy1*(vy[i]-vy[i-sy]) + cy2*(vy[i+sy]-vy[i-2*sy])
				dvzdz := cz1*(vz[i]-vz[i-1]) + cz2*(vz[i+1]-vz[i-2])
				txx[i] = ftz((txx[i] + l2mdt[i]*dvxdx + lamdt[i]*(dvydy+dvzdz)) * taper[i])
				tyy[i] = ftz((tyy[i] + l2mdt[i]*dvydy + lamdt[i]*(dvxdx+dvzdz)) * taper[i])
				tzz[i] = ftz((tzz[i] + l2mdt[i]*dvzdz + lamdt[i]*(dvxdx+dvydy)) * taper[i])

				dxfVy := cx1*(vy[i+sx]-vy[i]) + cx2*(vy[i+2*sx]-vy[i-sx])
				dyfVx := cy1*(vx[i+sy]-vx[i]) + cy2*(vx[i+2*sy]-vx[i-sy])
				txy[i] = ftz((txy[i] + mudt[i]*(dxfVy+dyfVx)) * taper[i])

				dxfVz := cx1*(vz[i+sx]-vz[i]) + cx2*(vz[i+2*sx]-vz[i-sx])
				dzfVx := cz1*(vx[i+1]-vx[i]) + cz2*(vx[i+2]-vx[i-1])
				txz[i] = ftz((txz[i] + mudt[i]*(dxfVz+dzfVx)) * taper[i])

				dyfVz := cy1*(vz[i+sy]-vz[i]) + cy2*(vz[i+2*sy]-vz[i-sy])
				dzfVy := cz1*(vy[i+1]-vy[i]) + cz2*(vy[i+2]-vy[i-1])
				tyz[i] = ftz((tyz[i] + mudt[i]*(dyfVz+dzfVy)) * taper[i])
			}
		}
	}
}
