package wave

import "wavetile/internal/grid"

// Radius-2 (space order 4) specializations of the elastic kernels: the
// staggered-derivative closures of the generic path are unrolled into
// straight-line code, the form Devito's code generation emits. The
// expressions match velKernel/stressKernel exactly up to floating-point
// re-association of the derivative accumulations.
//
// Like the acoustic specializations, the kernels follow the BCE discipline
// (`make bce-check`): one per-row sub-slice of length nz per field offset,
// indexed with the bare induction variable, so the z stream carries no
// bounds checks.

func (e *Elastic) velKernelR2(reg grid.Region) {
	nz := e.Vx.Nz
	sx, sy := e.Vx.SX, e.Vx.SY
	vx, vy, vz := e.Vx.Data, e.Vy.Data, e.Vz.Data
	txx, tyy, tzz := e.Txx.Data, e.Tyy.Data, e.Tzz.Data
	txy, txz, tyz := e.Txy.Data, e.Txz.Data, e.Tyz.Data
	bdtD, taperD := e.bdt.Data, e.taper.Data
	csx, csy, csz := e.csx[:3], e.csy[:3], e.csz[:3]
	cx1, cx2 := csx[1], csx[2]
	cy1, cy2 := csy[1], csy[2]
	cz1, cz2 := csz[1], csz[2]
	for x := reg.X0; x < reg.X1; x++ {
		for y := reg.Y0; y < reg.Y1; y++ {
			o := e.Vx.Idx(x, y, 0)
			vxc, vyc, vzc := vx[o:][:nz], vy[o:][:nz], vz[o:][:nz]
			bdt, taper := bdtD[o:][:nz], taperD[o:][:nz]

			txxc, txxXp1 := txx[o:][:nz], txx[o+sx:][:nz]
			txxXp2, txxXm1 := txx[o+2*sx:][:nz], txx[o-sx:][:nz]

			txyc := txy[o:][:nz]
			txyXp1, txyXm1, txyXm2 := txy[o+sx:][:nz], txy[o-sx:][:nz], txy[o-2*sx:][:nz]
			txyYp1, txyYm1, txyYm2 := txy[o+sy:][:nz], txy[o-sy:][:nz], txy[o-2*sy:][:nz]

			txzc := txz[o:][:nz]
			txzXp1, txzXm1, txzXm2 := txz[o+sx:][:nz], txz[o-sx:][:nz], txz[o-2*sx:][:nz]
			txzZp1, txzZm1, txzZm2 := txz[o+1:][:nz], txz[o-1:][:nz], txz[o-2:][:nz]

			tyyc, tyyYp1 := tyy[o:][:nz], tyy[o+sy:][:nz]
			tyyYp2, tyyYm1 := tyy[o+2*sy:][:nz], tyy[o-sy:][:nz]

			tyzc := tyz[o:][:nz]
			tyzYp1, tyzYm1, tyzYm2 := tyz[o+sy:][:nz], tyz[o-sy:][:nz], tyz[o-2*sy:][:nz]
			tyzZp1, tyzZm1, tyzZm2 := tyz[o+1:][:nz], tyz[o-1:][:nz], tyz[o-2:][:nz]

			tzzc, tzzZp1 := tzz[o:][:nz], tzz[o+1:][:nz]
			tzzZp2, tzzZm1 := tzz[o+2:][:nz], tzz[o-1:][:nz]

			for z := range vxc {
				dxfTxx := cx1*(txxXp1[z]-txxc[z]) + cx2*(txxXp2[z]-txxXm1[z])
				dybTxy := cy1*(txyc[z]-txyYm1[z]) + cy2*(txyYp1[z]-txyYm2[z])
				dzbTxz := cz1*(txzc[z]-txzZm1[z]) + cz2*(txzZp1[z]-txzZm2[z])
				vxc[z] = ftz((vxc[z] + bdt[z]*(dxfTxx+dybTxy+dzbTxz)) * taper[z])

				dxbTxy := cx1*(txyc[z]-txyXm1[z]) + cx2*(txyXp1[z]-txyXm2[z])
				dyfTyy := cy1*(tyyYp1[z]-tyyc[z]) + cy2*(tyyYp2[z]-tyyYm1[z])
				dzbTyz := cz1*(tyzc[z]-tyzZm1[z]) + cz2*(tyzZp1[z]-tyzZm2[z])
				vyc[z] = ftz((vyc[z] + bdt[z]*(dxbTxy+dyfTyy+dzbTyz)) * taper[z])

				dxbTxz := cx1*(txzc[z]-txzXm1[z]) + cx2*(txzXp1[z]-txzXm2[z])
				dybTyz := cy1*(tyzc[z]-tyzYm1[z]) + cy2*(tyzYp1[z]-tyzYm2[z])
				dzfTzz := cz1*(tzzZp1[z]-tzzc[z]) + cz2*(tzzZp2[z]-tzzZm1[z])
				vzc[z] = ftz((vzc[z] + bdt[z]*(dxbTxz+dybTyz+dzfTzz)) * taper[z])
			}
		}
	}
}

func (e *Elastic) stressKernelR2(reg grid.Region) {
	nz := e.Vx.Nz
	sx, sy := e.Vx.SX, e.Vx.SY
	vx, vy, vz := e.Vx.Data, e.Vy.Data, e.Vz.Data
	txx, tyy, tzz := e.Txx.Data, e.Tyy.Data, e.Tzz.Data
	txy, txz, tyz := e.Txy.Data, e.Txz.Data, e.Tyz.Data
	l2mdtD, lamdtD, mudtD, taperD := e.l2mdt.Data, e.lamdt.Data, e.mudt.Data, e.taper.Data
	csx, csy, csz := e.csx[:3], e.csy[:3], e.csz[:3]
	cx1, cx2 := csx[1], csx[2]
	cy1, cy2 := csy[1], csy[2]
	cz1, cz2 := csz[1], csz[2]
	for x := reg.X0; x < reg.X1; x++ {
		for y := reg.Y0; y < reg.Y1; y++ {
			o := e.Vx.Idx(x, y, 0)
			vxc := vx[o:][:nz]
			vxXp1, vxXm1, vxXm2 := vx[o+sx:][:nz], vx[o-sx:][:nz], vx[o-2*sx:][:nz]
			vxYp1, vxYp2, vxYm1 := vx[o+sy:][:nz], vx[o+2*sy:][:nz], vx[o-sy:][:nz]
			vxZp1, vxZp2, vxZm1 := vx[o+1:][:nz], vx[o+2:][:nz], vx[o-1:][:nz]

			vyc := vy[o:][:nz]
			vyXp1, vyXp2, vyXm1 := vy[o+sx:][:nz], vy[o+2*sx:][:nz], vy[o-sx:][:nz]
			vyYp1, vyYm1, vyYm2 := vy[o+sy:][:nz], vy[o-sy:][:nz], vy[o-2*sy:][:nz]
			vyZp1, vyZp2, vyZm1 := vy[o+1:][:nz], vy[o+2:][:nz], vy[o-1:][:nz]

			vzc := vz[o:][:nz]
			vzXp1, vzXp2, vzXm1 := vz[o+sx:][:nz], vz[o+2*sx:][:nz], vz[o-sx:][:nz]
			vzYp1, vzYp2, vzYm1 := vz[o+sy:][:nz], vz[o+2*sy:][:nz], vz[o-sy:][:nz]
			vzZp1, vzZm1, vzZm2 := vz[o+1:][:nz], vz[o-1:][:nz], vz[o-2:][:nz]

			txxc, tyyc, tzzc := txx[o:][:nz], tyy[o:][:nz], tzz[o:][:nz]
			txyc, txzc, tyzc := txy[o:][:nz], txz[o:][:nz], tyz[o:][:nz]
			l2mdt, lamdt := l2mdtD[o:][:nz], lamdtD[o:][:nz]
			mudt, taper := mudtD[o:][:nz], taperD[o:][:nz]

			for z := range txxc {
				dvxdx := cx1*(vxc[z]-vxXm1[z]) + cx2*(vxXp1[z]-vxXm2[z])
				dvydy := cy1*(vyc[z]-vyYm1[z]) + cy2*(vyYp1[z]-vyYm2[z])
				dvzdz := cz1*(vzc[z]-vzZm1[z]) + cz2*(vzZp1[z]-vzZm2[z])
				txxc[z] = ftz((txxc[z] + l2mdt[z]*dvxdx + lamdt[z]*(dvydy+dvzdz)) * taper[z])
				tyyc[z] = ftz((tyyc[z] + l2mdt[z]*dvydy + lamdt[z]*(dvxdx+dvzdz)) * taper[z])
				tzzc[z] = ftz((tzzc[z] + l2mdt[z]*dvzdz + lamdt[z]*(dvxdx+dvydy)) * taper[z])

				dxfVy := cx1*(vyXp1[z]-vyc[z]) + cx2*(vyXp2[z]-vyXm1[z])
				dyfVx := cy1*(vxYp1[z]-vxc[z]) + cy2*(vxYp2[z]-vxYm1[z])
				txyc[z] = ftz((txyc[z] + mudt[z]*(dxfVy+dyfVx)) * taper[z])

				dxfVz := cx1*(vzXp1[z]-vzc[z]) + cx2*(vzXp2[z]-vzXm1[z])
				dzfVx := cz1*(vxZp1[z]-vxc[z]) + cz2*(vxZp2[z]-vxZm1[z])
				txzc[z] = ftz((txzc[z] + mudt[z]*(dxfVz+dzfVx)) * taper[z])

				dyfVz := cy1*(vzYp1[z]-vzc[z]) + cy2*(vzYp2[z]-vzYm1[z])
				dzfVy := cz1*(vyZp1[z]-vyc[z]) + cz2*(vyZp2[z]-vyZm1[z])
				tyzc[z] = ftz((tyzc[z] + mudt[z]*(dyfVz+dzfVy)) * taper[z])
			}
		}
	}
}
