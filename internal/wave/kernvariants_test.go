package wave

import (
	"fmt"
	"math"
	"testing"

	"wavetile/internal/tiling"
)

// TestKernelVariantsAgree cross-checks the radius-specialized acoustic
// kernels (R2/R4/R6) against the radius-generic implementation: the same
// problem run with each must agree to FP-reassociation tolerance (the
// specializations reorder the Laplacian accumulation, nothing else).
func TestKernelVariantsAgree(t *testing.T) {
	for _, so := range []int{4, 8, 12} {
		so := so
		t.Run(fmt.Sprintf("SO%d", so), func(t *testing.T) {
			spec := build(t, so)
			if fmt.Sprintf("%p", spec.kern) == fmt.Sprintf("%p", spec.kernelGeneric) {
				t.Fatalf("SO%d has no specialized kernel", so)
			}
			tiling.RunSpatial(spec, 8, 8, true)

			gen := build(t, so)
			gen.kern = gen.kernelGeneric
			tiling.RunSpatial(gen, 8, 8, true)

			d, x, y, z := spec.Final().MaxAbsDiff(gen.Final())
			scale := math.Max(gen.Final().MaxAbs(), 1e-30)
			if scale == 0 {
				t.Fatal("silent field")
			}
			if d > 1e-5*scale {
				t.Fatalf("variants disagree: rel %g at (%d,%d,%d)", d/scale, x, y, z)
			}
		})
	}
}

func build(t *testing.T, so int) *Acoustic {
	t.Helper()
	return buildAcoustic(t, 32, so, 2)
}

// TestElasticKernelVariantsAgree cross-checks the unrolled SO-4 elastic
// kernels against the generic staggered implementation.
func TestElasticKernelVariantsAgree(t *testing.T) {
	spec := buildElastic(t, 28, 4)
	if spec.velKern == nil {
		t.Fatal("no kernel selected")
	}
	tiling.RunSpatial(spec, 8, 8, true)

	gen := buildElastic(t, 28, 4)
	gen.velKern, gen.stressKern = gen.velKernel, gen.stressKernel
	tiling.RunSpatial(gen, 8, 8, true)

	for name, f := range spec.Fields() {
		d, x, y, z := f.MaxAbsDiff(gen.Fields()[name])
		scale := math.Max(gen.Fields()[name].MaxAbs(), 1e-30)
		if d > 1e-5*math.Max(scale, 1e-12) {
			t.Fatalf("field %s: variants disagree rel %g at (%d,%d,%d)", name, d/scale, x, y, z)
		}
	}
}

// TestTTIKernelVariantsAgree cross-checks the unrolled SO-4 TTI kernel
// against the generic rotated-Laplacian implementation.
func TestTTIKernelVariantsAgree(t *testing.T) {
	spec := buildTTI(t, 26, 4)
	tiling.RunSpatial(spec, 8, 8, true)

	gen := buildTTI(t, 26, 4)
	gen.kern = gen.kernel
	tiling.RunSpatial(gen, 8, 8, true)

	for name, f := range spec.Fields() {
		d, x, y, z := f.MaxAbsDiff(gen.Fields()[name])
		scale := math.Max(gen.Fields()[name].MaxAbs(), 1e-30)
		if d > 1e-5*math.Max(scale, 1e-12) {
			t.Fatalf("field %s: variants disagree rel %g at (%d,%d,%d)", name, d/scale, x, y, z)
		}
	}
}
