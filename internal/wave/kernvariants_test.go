package wave

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"wavetile/internal/grid"
	"wavetile/internal/obs"
	"wavetile/internal/tiling"
)

// kernProp is the slice of propagator surface the variant tests drive: run
// under a schedule, switch kernel variants, and read the fields back.
type kernProp interface {
	tiling.Propagator
	SetKernelVariant(string) error
	KernelName() string
	KernelVariants() []string
	Fields() map[string]*grid.Grid
}

// variantCase builds one (physics, space order) propagator instance.
type variantCase struct {
	name  string
	so    int
	build func(t *testing.T) kernProp
}

// variantCases covers every generated physics × radius pair at every space
// order the paper uses (4, 8, 12 — radii 2, 4, 6).
func variantCases() []variantCase {
	var cases []variantCase
	for _, so := range []int{4, 8, 12} {
		so := so
		cases = append(cases,
			variantCase{fmt.Sprintf("acoustic/SO%d", so), so,
				func(t *testing.T) kernProp { return buildAcoustic(t, 32, so, 2) }},
			variantCase{fmt.Sprintf("elastic/SO%d", so), so,
				func(t *testing.T) kernProp { return buildElastic(t, 28, so) }},
			variantCase{fmt.Sprintf("tti/SO%d", so), so,
				func(t *testing.T) kernProp { return buildTTI(t, 26, so) }},
		)
	}
	return cases
}

func runVariant(t *testing.T, c variantCase, variant string) kernProp {
	t.Helper()
	p := c.build(t)
	if err := p.SetKernelVariant(variant); err != nil {
		t.Fatalf("SetKernelVariant(%q): %v", variant, err)
	}
	if got := p.KernelName(); !strings.HasSuffix(got, "/"+variant) {
		t.Fatalf("KernelName() = %q, want suffix /%s", got, variant)
	}
	tiling.RunSpatial(p, 8, 8, true)
	return p
}

// TestKernelVariantsAgree table-drives every generated physics × radius ×
// variant kernel against the radius-generic implementation: each variant
// must agree with generic to FP-reassociation tolerance (the generated
// kernels reorder derivative accumulations, nothing else), and the y2
// row-pipelined variant must match base bitwise (identical per-point
// arithmetic — the property that makes autotune variant switching safe
// under the schedule-equivalence oracle).
func TestKernelVariantsAgree(t *testing.T) {
	for _, c := range variantCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			probe := c.build(t)
			variants := probe.KernelVariants()
			if len(variants) == 0 {
				t.Fatalf("%s: no generated kernel variants (silent generic fallback)", c.name)
			}
			if strings.HasSuffix(probe.KernelName(), "/"+KernelGeneric) {
				t.Fatalf("%s: default dispatch selected the generic kernel", c.name)
			}

			gen := c.build(t)
			if err := gen.SetKernelVariant(KernelGeneric); err != nil {
				t.Fatalf("pin generic: %v", err)
			}
			tiling.RunSpatial(gen, 8, 8, true)
			genFields := gen.Fields()

			results := make(map[string]kernProp, len(variants))
			for _, v := range variants {
				p := runVariant(t, c, v)
				results[v] = p
				for name, f := range p.Fields() {
					ref := genFields[name]
					d, x, y, z := f.MaxAbsDiff(ref)
					scale := math.Max(ref.MaxAbs(), 1e-30)
					if d > 1e-5*math.Max(scale, 1e-12) {
						t.Fatalf("%s variant %s field %s: disagrees with generic, rel %g at (%d,%d,%d)",
							c.name, v, name, d/scale, x, y, z)
					}
				}
			}

			base, ok := results[KernelBase]
			if !ok {
				t.Fatalf("%s: no %q variant generated", c.name, KernelBase)
			}
			for _, v := range variants {
				if v == KernelBase {
					continue
				}
				for name, f := range results[v].Fields() {
					if d, x, y, z := f.MaxAbsDiff(base.Fields()[name]); d != 0 {
						t.Fatalf("%s variant %s field %s: not bitwise equal to base, |Δ|=%g at (%d,%d,%d)",
							c.name, v, name, d, x, y, z)
					}
				}
			}
		})
	}
}

// TestUnsupportedRadiusFallsBackObservably builds a propagator at a space
// order outside the generated set (SO-16) and checks the contract for
// unspecialized radii: dispatch lands on the generic kernel, KernelName
// says so, KernelVariants is empty, and running steps bumps the
// kernel_generic_steps counter when observability is installed.
func TestUnsupportedRadiusFallsBackObservably(t *testing.T) {
	p := buildAcoustic(t, 36, 16, 1)
	if got := p.KernelName(); got != "acoustic/r8/generic" {
		t.Fatalf("KernelName() = %q, want acoustic/r8/generic", got)
	}
	if vs := p.KernelVariants(); len(vs) != 0 {
		t.Fatalf("KernelVariants() = %v, want none at radius 8", vs)
	}

	r := obs.NewRegistry()
	restore := obs.Swap(r)
	defer restore()
	p.Step(0, grid.Region{X0: 8, X1: 24, Y0: 8, Y1: 24}, false)
	if got := r.Counter(CounterGenericSteps).Load(); got != 1 {
		t.Fatalf("%s = %d after one generic Step, want 1", CounterGenericSteps, got)
	}

	// A generated radius must never touch the counter.
	sp := buildAcoustic(t, 32, 8, 1)
	sp.Step(0, grid.Region{X0: 8, X1: 24, Y0: 8, Y1: 24}, false)
	if got := r.Counter(CounterGenericSteps).Load(); got != 1 {
		t.Fatalf("%s = %d after specialized Step, want still 1", CounterGenericSteps, got)
	}
}

// TestSetKernelVariantRejectsUnknown checks that a bogus variant is an
// error and leaves the previous selection installed.
func TestSetKernelVariantRejectsUnknown(t *testing.T) {
	p := buildAcoustic(t, 32, 8, 1)
	before := p.KernelName()
	if err := p.SetKernelVariant("no-such-variant"); err == nil {
		t.Fatal("SetKernelVariant accepted an unknown variant")
	}
	if got := p.KernelName(); got != before {
		t.Fatalf("failed SetKernelVariant changed selection: %q → %q", before, got)
	}
}
