// Package wave implements the three finite-difference wave propagators the
// paper evaluates (§III): isotropic acoustic, anisotropic acoustic (TTI) and
// isotropic elastic, each for configurable even space orders (the paper uses
// 4, 8, 12). Every propagator satisfies tiling.Propagator, so it can run
// under either the spatially-blocked baseline or wave-front temporal
// blocking, with the sparse off-the-grid operators executed either unfused
// (Listing 1) or fused through the precomputation scheme of internal/core
// (Listings 4–5).
//
// Both schedules call the exact same per-point kernel code; temporal
// blocking only reorders which points are computed when, so spatial and WTB
// runs with fused sparse operators produce bitwise identical wavefields and
// receiver data — the invariant exploited by the test-suite.
package wave

import (
	"fmt"
	"math"

	"wavetile/internal/core"
	"wavetile/internal/grid"
	"wavetile/internal/sparse"
)

// SparseOps bundles one propagator's off-the-grid machinery: the original
// off-grid description (for the Listing-1 baseline path) and the precomputed
// grid-aligned structures (for the fused path).
type SparseOps struct {
	Nt int

	// Grid dimensions the supports/masks were built for, kept so per-shot
	// source bundles (PrecomputeSources) are constructed over exactly the
	// geometry of the owning propagator.
	nx, ny, nz int
	hx, hy, hz float64

	// Source side.
	SrcSup  []sparse.Support
	SrcWav  [][]float32 // [s][nt] wavelet per source
	SrcMask *core.Masks
	SrcD    [][]float32 // src_dcmp: [t][id]
	// SrcSupByStep, when non-nil, holds per-timestep supports for moving
	// sources; the baseline injection then scatters through the support of
	// the current timestep. The fused path is untouched: src_dcmp already
	// carries the motion.
	SrcSupByStep [][]sparse.Support

	// Receiver side.
	RecSup    []sparse.Support
	RecMask   *core.Masks
	Sampler   *core.Sampler
	recDirect [][]float32 // baseline receiver traces [t][r]

	scale     sparse.ScaleFunc
	fused     bool // whether the last run used the fused path
	recGroups int  // support groups per receiver (1 trilinear, 64 sinc)
	ampBuf    []float32
}

// NewSparseOps precomputes masks, decomposed wavefields and sampler storage
// for a set of sources (with per-source wavelets) and receivers on an
// nx×ny×nz grid with the given spacing. scale is the per-grid-point
// injection scale (e.g. dt²/m). sinc selects Kaiser-windowed sinc source
// injection (Hicks 2002) instead of trilinear — the scheme is oblivious to
// the interpolation order, exactly as the paper claims.
func NewSparseOps(nx, ny, nz int, hx, hy, hz float64, nt int,
	src *sparse.Points, srcWav [][]float32, rec *sparse.Points, scale sparse.ScaleFunc,
	sinc bool) (*SparseOps, error) {
	return newSparseOps(nx, ny, nz, hx, hy, hz, nt, src, srcWav, rec, scale, sinc, false)
}

// newSparseOps additionally supports windowed-sinc receivers (recSinc):
// the receiver-side masks and sampler are then built over the 8³-point
// sinc supports, and GatherReceivers sums each receiver's groups.
func newSparseOps(nx, ny, nz int, hx, hy, hz float64, nt int,
	src *sparse.Points, srcWav [][]float32, rec *sparse.Points, scale sparse.ScaleFunc,
	sinc, recSinc bool) (*SparseOps, error) {

	s := &SparseOps{Nt: nt, nx: nx, ny: ny, nz: nz, hx: hx, hy: hy, hz: hz, scale: scale}
	bundle, err := buildSourceBundle(nx, ny, nz, hx, hy, hz, nt, src, srcWav, scale, sinc)
	if err != nil {
		return nil, err
	}
	s.InstallSources(bundle)
	if rec != nil && rec.N() > 0 {
		var sup []sparse.Support
		var err error
		if recSinc {
			sup, s.recGroups, err = rec.SincSupports(nx, ny, nz, hx, hy, hz)
			if err != nil {
				return nil, fmt.Errorf("wave: sinc receiver supports: %w", err)
			}
		} else {
			s.recGroups = 1
			sup, err = rec.Supports(nx, ny, nz, hx, hy, hz)
			if err != nil {
				return nil, fmt.Errorf("wave: receiver supports: %w", err)
			}
		}
		s.RecSup = sup
		s.RecMask = core.BuildMasks(nx, ny, nz, sup)
		s.Sampler = core.NewSampler(s.RecMask, nt)
		s.recDirect = make([][]float32, nt)
		for t := range s.recDirect {
			s.recDirect[t] = make([]float32, len(sup))
		}
	}
	return s, nil
}

// SourceBundle is one shot's precomputed source-side state: off-the-grid
// supports, wavelets, the grid-aligned injection masks (SM/SID of the
// paper) and the decomposed per-timestep injection wavefield src_dcmp.
// Bundles are immutable after construction and independent of any
// propagator's wavefields, so a survey driver can precompute all shots up
// front (in parallel) and install each onto a propagator clone just before
// its run.
type SourceBundle struct {
	Sup  []sparse.Support
	Wav  [][]float32
	Mask *core.Masks
	D    [][]float32 // src_dcmp: [t][id]
}

// buildSourceBundle is the single construction path for source-side state.
// Both NewSparseOps and PrecomputeSources go through it, which is what
// makes a precomputed-then-installed bundle bitwise identical to the one a
// fresh propagator would build for the same sources: the support order, the
// deterministic x→y→z mask ID assignment of BuildMasks and the
// accumulation order of DecomposeWavelets are all shared code.
func buildSourceBundle(nx, ny, nz int, hx, hy, hz float64, nt int,
	src *sparse.Points, srcWav [][]float32, scale sparse.ScaleFunc, sinc bool) (*SourceBundle, error) {
	b := &SourceBundle{}
	if src == nil || src.N() == 0 {
		b.Mask = core.BuildMasks(nx, ny, nz, nil)
		b.D = make([][]float32, nt)
		return b, nil
	}
	if len(srcWav) != src.N() {
		return nil, fmt.Errorf("wave: %d sources but %d wavelets", src.N(), len(srcWav))
	}
	var sup []sparse.Support
	var err error
	if sinc {
		var per int
		sup, per, err = src.SincSupports(nx, ny, nz, hx, hy, hz)
		if err != nil {
			return nil, fmt.Errorf("wave: sinc source supports: %w", err)
		}
		// Each source expands into `per` weight groups sharing its
		// wavelet; replicate so the pipeline stays interpolation-blind.
		wide := make([][]float32, 0, len(sup))
		for i := range srcWav {
			for j := 0; j < per; j++ {
				wide = append(wide, srcWav[i])
			}
		}
		srcWav = wide
	} else {
		sup, err = src.Supports(nx, ny, nz, hx, hy, hz)
		if err != nil {
			return nil, fmt.Errorf("wave: source supports: %w", err)
		}
	}
	b.Sup = sup
	b.Wav = srcWav
	b.Mask = core.BuildMasks(nx, ny, nz, sup)
	b.D, err = b.Mask.DecomposeWavelets(sup, srcWav, nt, scale)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// PrecomputeSources builds a shot's source bundle over this bundle's grid
// geometry and injection scale without touching any live run state, so it
// is safe to call concurrently (the scale closure only reads immutable
// factor grids) and ahead of time — the amortized per-shot setup of a
// multi-shot survey.
func (s *SparseOps) PrecomputeSources(src *sparse.Points, srcWav [][]float32, sinc bool) (*SourceBundle, error) {
	return buildSourceBundle(s.nx, s.ny, s.nz, s.hx, s.hy, s.hz, s.Nt, src, srcWav, s.scale, sinc)
}

// InstallSources swaps the source side of s to the precomputed bundle.
// Receiver-side state is untouched; per-timestep moving-source supports are
// cleared (bundles describe static shots). The caller must Reset the owning
// propagator before the next run, as after any source change.
func (s *SparseOps) InstallSources(b *SourceBundle) {
	s.SrcSup = b.Sup
	s.SrcWav = b.Wav
	s.SrcMask = b.Mask
	s.SrcD = b.D
	s.SrcSupByStep = nil
}

// cloneShared returns a SparseOps sharing every shot-invariant structure
// with s — receiver supports, masks and grouping, the injection scale, the
// grid geometry — while giving the clone its own recording state (sampler
// data, baseline traces, amplitude scratch) and an empty source side. The
// clone is what a survey lane runs shots through: InstallSources switches
// shots, and concurrent lanes never share mutable state.
func (s *SparseOps) cloneShared() *SparseOps {
	c := &SparseOps{
		Nt: s.Nt,
		nx: s.nx, ny: s.ny, nz: s.nz,
		hx: s.hx, hy: s.hy, hz: s.hz,
		scale:     s.scale,
		recGroups: s.recGroups,
		RecSup:    s.RecSup,
		RecMask:   s.RecMask,
	}
	// Empty source side until InstallSources.
	c.SrcMask = core.BuildMasks(s.nx, s.ny, s.nz, nil)
	c.SrcD = make([][]float32, s.Nt)
	if s.RecMask != nil && s.Sampler != nil {
		c.Sampler = core.NewSampler(s.RecMask, s.Nt)
		c.recDirect = make([][]float32, s.Nt)
		for t := range c.recDirect {
			c.recDirect[t] = make([]float32, len(s.RecSup))
		}
	}
	return c
}

// SetMovingSources switches the sparse-operator bundle to per-timestep
// source positions: coordsAt(t) gives every source's position at timestep
// t. Masks and the decomposed wavefield are rebuilt over the union of all
// positions; schedules and fused loops are oblivious to the change.
func (s *SparseOps) SetMovingSources(nx, ny, nz int, hx, hy, hz float64,
	coordsAt func(t int) *sparse.Points, srcWav [][]float32) error {
	supsByStep := make([][]sparse.Support, s.Nt)
	for t := 0; t < s.Nt; t++ {
		pts := coordsAt(t)
		if pts.N() != len(srcWav) {
			return fmt.Errorf("wave: step %d has %d sources but %d wavelets", t, pts.N(), len(srcWav))
		}
		sup, err := pts.Supports(nx, ny, nz, hx, hy, hz)
		if err != nil {
			return fmt.Errorf("wave: moving source supports at t=%d: %w", t, err)
		}
		supsByStep[t] = sup
	}
	s.SrcSupByStep = supsByStep
	s.SrcWav = srcWav
	s.SrcMask = core.BuildMovingMasks(nx, ny, nz, supsByStep)
	dcmp, err := s.SrcMask.DecomposeMovingWavelets(supsByStep, srcWav, s.Nt, s.scale)
	if err != nil {
		return err
	}
	s.SrcD = dcmp
	return nil
}

// setFused records which sparse-operator path the current run uses, so
// Receivers knows where to gather from. Called once per (single-threaded)
// Step invocation, never from parallel block workers.
func (s *SparseOps) setFused(v bool) {
	if s.fused != v {
		s.fused = v
	}
}

// InjectFused applies the fused, compressed injection for the step that
// computes time index t+1, restricted to reg.
func (s *SparseOps) InjectFused(u *grid.Grid, t int, reg grid.Region) {
	if s.SrcMask.Npts == 0 {
		return
	}
	s.SrcMask.InjectRegion(u, reg, s.SrcD[t])
}

// SampleFused records receiver-affected points of u (holding time index
// t+1 values) inside reg.
func (s *SparseOps) SampleFused(u *grid.Grid, t int, reg grid.Region) {
	if s.Sampler == nil {
		return
	}
	s.Sampler.SampleRegion(t, u, reg)
}

// wavAt gathers each source's amplitude at time index t for the baseline
// injection path.
func (s *SparseOps) wavAt(t int) []float32 {
	if cap(s.ampBuf) < len(s.SrcWav) {
		s.ampBuf = make([]float32, len(s.SrcWav))
	}
	amps := s.ampBuf[:len(s.SrcWav)]
	for i := range s.SrcWav {
		amps[i] = s.SrcWav[i][t]
	}
	return amps
}

// InjectBaseline performs the paper's Listing-1 off-the-grid injection into
// u (holding time index t+1 values).
func (s *SparseOps) InjectBaseline(u *grid.Grid, t int) {
	if s.SrcSupByStep != nil {
		sparse.Inject(u, s.SrcSupByStep[t], s.wavAt(t), s.scale)
		return
	}
	if len(s.SrcSup) == 0 {
		return
	}
	sparse.Inject(u, s.SrcSup, s.wavAt(t), s.scale)
}

// InterpolateBaseline performs the Listing-1 receiver interpolation from u.
func (s *SparseOps) InterpolateBaseline(u *grid.Grid, t int) {
	if len(s.RecSup) == 0 {
		return
	}
	sparse.Interpolate(u, s.RecSup, s.recDirect[t])
}

// Receivers returns the receiver traces of the last run, [t][r]; trace index
// t holds the measurement of wavefield time index t+1. Returns nil when no
// receivers are attached.
func (s *SparseOps) Receivers() ([][]float32, error) {
	if s.RecSup == nil {
		return nil, nil
	}
	var per [][]float32
	if s.fused {
		g, err := s.Sampler.GatherReceivers(s.RecSup)
		if err != nil {
			return nil, err
		}
		per = g
	} else {
		// Copy: recDirect is live run state and would otherwise be zeroed
		// under the caller's feet by the next Reset.
		per = make([][]float32, len(s.recDirect))
		for t := range per {
			per[t] = append([]float32(nil), s.recDirect[t]...)
		}
	}
	if s.recGroups <= 1 {
		return per, nil
	}
	// Sum sinc support groups back into one trace per receiver.
	nr := len(s.RecSup) / s.recGroups
	out := make([][]float32, len(per))
	for t := range per {
		out[t] = make([]float32, nr)
		for r := 0; r < nr; r++ {
			acc := float32(0)
			for g := 0; g < s.recGroups; g++ {
				acc += per[t][r*s.recGroups+g]
			}
			out[t][r] = acc
		}
	}
	return out, nil
}

// Reset clears per-run sampler/receiver state (wavefields are reset by the
// propagators).
func (s *SparseOps) Reset() {
	if s.Sampler != nil {
		for _, row := range s.Sampler.Data {
			for i := range row {
				row[i] = 0
			}
		}
	}
	for _, row := range s.recDirect {
		for i := range row {
			row[i] = 0
		}
	}
}

// flushEps is the flush-to-zero threshold applied to every wavefield
// update. Stencil leading edges generate subnormal float32 tails whose
// arithmetic is 10–100× slower on x86 (Go cannot enable hardware FTZ/DAZ,
// which the paper's C toolchain gets from the compiler); flushing values
// thirty orders of magnitude below signal level restores the intended cost
// model without measurable physical effect. The flush is part of the
// per-point update and identical under every schedule, so the bitwise
// schedule-equivalence property is preserved.
const flushEps = 1e-30

// flushBits is math.Float32bits(flushEps); ftz_test.go asserts the two stay
// in sync. Keeping it a constant lets ftz compile to four branch-free
// integer ops.
const flushBits = 0x0DA24260

// ftz flushes values below flushEps in magnitude to +0, branchlessly.
//
// The magnitude bits of v (sign masked off) order like the floats they
// encode, so |v| < flushEps ⟺ magBits < flushBits; the subtraction's sign
// bit, smeared into a full-width mask, then selects between the original
// bits and zero. NaN and ±Inf have magnitude bits above every finite
// threshold and pass through untouched; −0 flushes to +0, exactly like the
// branchy comparison form it replaces (ftz_test.go proves bit-identity over
// denormal/normal/negative/NaN inputs). Keeping the per-point flush free of
// compare-and-branch matters in the kernels' z-stream loops, where the
// branch sits between every FMA group.
func ftz(v float32) float32 {
	b := math.Float32bits(v)
	flush := uint32(int32(b&0x7FFFFFFF-flushBits) >> 31) // all-ones iff |v| < flushEps
	return math.Float32frombits(b &^ flush)
}
