package wave

import (
	"testing"

	"wavetile/internal/model"
	"wavetile/internal/sparse"
	"wavetile/internal/tiling"
	"wavetile/internal/wavelet"
)

// TestMovingSourceEquivalence realizes the paper's §II-A remark that the
// scheme is independent of moving sources: a source towed through the model
// (new off-the-grid position every timestep) still yields bitwise identical
// wavefields under WTB and spatial scheduling, and matches the per-step
// scattered baseline to FP tolerance.
func TestMovingSourceEquivalence(t *testing.T) {
	n, so := 36, 4
	g := model.Geometry{Nx: n, Ny: n, Nz: n, Hx: 10, Hy: 10, Hz: 10, NBL: 4}
	dt := g.CriticalDtAcoustic(so, 3000, model.DefaultCFL)
	g.SetTime(20*dt, dt)
	params := model.NewAcoustic(g, so/2, model.Layered(float64(n)*10, 1500, 2500, 3000))
	lo, hi := g.PhysicalBox()

	// Build the propagator with a placeholder static source, then switch
	// it to a towed path: the source crosses a third of the model during
	// the run, crossing many block and tile boundaries.
	src := sparse.Single(sparse.Coord{(lo[0] + hi[0]) / 2, (lo[1] + hi[1]) / 2, lo[2] + 21})
	wav := [][]float32{wavelet.RickerSeries(2.0/(float64(g.Nt)*g.Dt), g.Nt, g.Dt, 1e3)}
	rec := sparse.Line(5, sparse.Coord{lo[0] + 3, lo[1] + 5, lo[2] + 11},
		sparse.Coord{hi[0] - 3, hi[1] - 5, lo[2] + 11})
	a, err := NewAcoustic(AcousticOpts{Params: params, SO: so, Src: src, SrcWav: wav, Rec: rec})
	if err != nil {
		t.Fatal(err)
	}
	path := func(tt int) *sparse.Points {
		frac := float64(tt) / float64(g.Nt)
		return sparse.Single(sparse.Coord{
			lo[0] + (0.2+0.3*frac)*(hi[0]-lo[0]) + 0.37,
			lo[1] + (0.6-0.2*frac)*(hi[1]-lo[1]) - 0.21,
			lo[2] + 21.3,
		})
	}
	if err := a.Ops.SetMovingSources(g.Nx, g.Ny, g.Nz, g.Hx, g.Hy, g.Hz, path, wav); err != nil {
		t.Fatal(err)
	}
	// A moving source touches many more unique grid points than a static
	// one (8 per distinct position).
	if a.Ops.SrcMask.Npts <= 8 {
		t.Fatalf("moving source Npts = %d, expected far more than 8", a.Ops.SrcMask.Npts)
	}
	cfgs := []tiling.Config{
		{TT: 4, TileX: 2 * a.R, TileY: 2 * a.R, BlockX: 4, BlockY: 4},
		{TT: 10, TileX: 16, TileY: 12, BlockX: 8, BlockY: 8},
	}
	runEquivalence(t, a, a.Ops, cfgs)
}
