package wave

import (
	"testing"

	"wavetile/internal/model"
	"wavetile/internal/sparse"
	"wavetile/internal/tiling"
	"wavetile/internal/wavelet"
)

// TestSincInjectionEquivalence exercises the paper's claim that the
// precomputation scheme is independent of the injection type: with a
// Kaiser-windowed sinc source (8³-point support instead of 8), the WTB and
// spatial schedules must still be bitwise identical, and the fused path
// must still match the scattered baseline to FP tolerance.
func TestSincInjectionEquivalence(t *testing.T) {
	n, so := 36, 8
	g := model.Geometry{Nx: n, Ny: n, Nz: n, Hx: 10, Hy: 10, Hz: 10, NBL: 4}
	dt := g.CriticalDtAcoustic(so, 3000, model.DefaultCFL)
	g.SetTime(20*dt, dt)
	params := model.NewAcoustic(g, so/2, model.Layered(float64(n)*10, 1500, 2500, 3000))
	c := g.Center()
	src := sparse.Single(sparse.Coord{c[0] + 3.7, c[1] - 2.1, c[2] + 1.3})
	wav := [][]float32{wavelet.RickerSeries(2.0/(float64(g.Nt)*g.Dt), g.Nt, g.Dt, 1e3)}
	lo, hi := g.PhysicalBox()
	rec := sparse.Line(5, sparse.Coord{lo[0] + 3, lo[1] + 5, lo[2] + 11},
		sparse.Coord{hi[0] - 3, hi[1] - 5, lo[2] + 11})
	a, err := NewAcoustic(AcousticOpts{
		Params: params, SO: so, Src: src, SrcWav: wav, Rec: rec, SincSource: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A single sinc source decomposes into 8³ grid-aligned point sources.
	if a.Ops.SrcMask.Npts != 512 {
		t.Fatalf("sinc source Npts = %d, want 512", a.Ops.SrcMask.Npts)
	}
	cfgs := []tiling.Config{
		{TT: 5, TileX: 12, TileY: 16, BlockX: 6, BlockY: 8},
		{TT: 20, TileX: 36, TileY: 36, BlockX: 8, BlockY: 8},
	}
	runEquivalence(t, a, a.Ops, cfgs)
}

// TestSincSharperThanTrilinear verifies the physical motivation: on the
// same setup, the sinc-injected wavefield has (slightly) different detail
// than the trilinear one — they agree at the percent level away from the
// source but are not identical operators.
func TestSincSharperThanTrilinear(t *testing.T) {
	n, so := 32, 4
	g := model.Geometry{Nx: n, Ny: n, Nz: n, Hx: 10, Hy: 10, Hz: 10, NBL: 4}
	dt := g.CriticalDtAcoustic(so, 2000, model.DefaultCFL)
	g.SetTime(14*dt, dt)
	params := model.NewAcoustic(g, so/2, model.Homogeneous(2000))
	c := g.Center()
	src := sparse.Single(sparse.Coord{c[0] + 4.2, c[1], c[2]})
	wav := [][]float32{wavelet.RickerSeries(2.0/(float64(g.Nt)*g.Dt), g.Nt, g.Dt, 1e3)}
	build := func(sinc bool) *Acoustic {
		a, err := NewAcoustic(AcousticOpts{Params: params, SO: so, Src: src, SrcWav: wav, SincSource: sinc})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	tri := build(false)
	tiling.RunSpatial(tri, 8, 8, true)
	snc := build(true)
	tiling.RunSpatial(snc, 8, 8, true)
	// Near the source the two injection footprints differ by construction;
	// in the far field (≥ 8 cells away) both represent the same physical
	// monopole and must agree closely.
	scale := tri.Final().MaxAbs()
	if scale == 0 {
		t.Fatal("degenerate comparison")
	}
	aint := func(v int) int {
		if v < 0 {
			return -v
		}
		return v
	}
	near, farDiff := 0.0, 0.0
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				d := float64(tri.Final().At(x, y, z) - snc.Final().At(x, y, z))
				if d < 0 {
					d = -d
				}
				dist := max(aint(x-n/2), max(aint(y-n/2), aint(z-n/2)))
				if dist >= 8 {
					if d > farDiff {
						farDiff = d
					}
				} else if d > near {
					near = d
				}
			}
		}
	}
	if near == 0 {
		t.Fatal("injection footprints identical; sinc not active")
	}
	if farDiff > 0.05*scale {
		t.Fatalf("far-field disagreement %g of %g", farDiff, scale)
	}
}
