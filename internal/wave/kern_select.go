package wave

import (
	"fmt"
	"log"
	"sync"

	"wavetile/internal/grid"
	"wavetile/internal/obs"
)

// Kernel variant names. The generated registry (kern_registry.go) maps
// (radius, variant) → kernel function; dispatch happens through
// SetKernelVariant so a propagator can never silently run an unintended
// kernel: either a generated kernel exists for the radius and is installed,
// or the propagator is explicitly marked generic and every Step through it
// is counted and logged.
const (
	// KernelBase is the straight per-offset row-sub-slice kernel, the
	// default for every generated radius.
	KernelBase = "base"
	// KernelY2 software-pipelines two adjacent y rows through one z pass —
	// bitwise-identical per point, selectable by autotune.
	KernelY2 = "y2"
	// KernelGeneric names the radius-generic fallback. It is selectable
	// explicitly (the differential tests pin it to compare against the
	// generated kernels) and is otherwise only reached when no generated
	// kernel exists for the propagator's radius.
	KernelGeneric = "generic"
)

// CounterGenericSteps is the obs counter incremented once per Step executed
// through the radius-generic fallback kernel. A nonzero value in a run
// report means the run did not use a specialized kernel — the silent
// high-order slow path this counter was added to expose.
const CounterGenericSteps = "kernel_generic_steps"

// kernState tracks which kernel a propagator dispatches to, for reporting
// (KernelName) and for making the generic fallback observable.
type kernState struct {
	physics string
	radius  int
	variant string // a generated variant name, or KernelGeneric
	generic bool
	forced  bool // generic was requested, not fallen back to
	once    sync.Once
}

func (k *kernState) set(variant string, forced bool) {
	k.variant = variant
	k.generic = variant == KernelGeneric
	k.forced = forced
}

// name reports the dispatched kernel as "physics/rN/variant", or
// "physics/rN/generic" for the fallback.
func (k *kernState) name() string {
	return fmt.Sprintf("%s/r%d/%s", k.physics, k.radius, k.variant)
}

// noteStep records one Step dispatched through the generic kernel: it bumps
// the kernel_generic_steps counter when observability is installed and, for
// a genuine fallback (not an explicitly requested generic), logs once per
// propagator so the slow path is visible even without obs.
func (k *kernState) noteStep() {
	if reg := obs.Active(); reg != nil {
		reg.Counter(CounterGenericSteps).Add(1)
	}
	if k.forced {
		return
	}
	k.once.Do(func() {
		log.Printf("wave: %s has no specialized kernel for radius %d (space order %d); running the radius-generic fallback",
			k.physics, k.radius, 2*k.radius)
	})
}

// variantNames returns the generated variant names available at radius r,
// in kernVariantOrder.
func variantNames[K any](table map[int]map[string]K, r int) []string {
	m := table[r]
	out := make([]string, 0, len(m))
	for _, v := range kernVariantOrder {
		if _, ok := m[v]; ok {
			out = append(out, v)
		}
	}
	return out
}

// --- Acoustic ---

// KernelVariants lists the generated kernel variants selectable at this
// propagator's radius (empty when only the generic fallback exists).
func (a *Acoustic) KernelVariants() []string { return variantNames(acousticKernelTable, a.R) }

// KernelName reports the dispatched kernel as "acoustic/rN/variant".
func (a *Acoustic) KernelName() string { return a.ks.name() }

// SetKernelVariant installs the named generated kernel variant (KernelBase,
// KernelY2, …) or, for KernelGeneric, the radius-generic fallback. A
// variant that is not generated for this radius is an error; the previous
// selection stays installed.
func (a *Acoustic) SetKernelVariant(v string) error {
	if v == KernelGeneric {
		a.kern = a.kernelGeneric
		a.ks.set(KernelGeneric, true)
		return nil
	}
	fn, ok := acousticKernelTable[a.R][v]
	if !ok {
		return fmt.Errorf("wave: no generated acoustic kernel for radius %d variant %q (have %v)",
			a.R, v, a.KernelVariants())
	}
	a.kern = func(t int, reg grid.Region) { fn(a, t, reg) }
	a.ks.set(v, false)
	return nil
}

// selectKernel wires the default kernel at construction: the base generated
// variant when the registry covers the radius, else the observable generic
// fallback. Because dispatch only flows through here and SetKernelVariant,
// an unspecialized radius cannot be reached silently.
func (a *Acoustic) selectKernel() {
	a.ks.physics, a.ks.radius = "acoustic", a.R
	if err := a.SetKernelVariant(KernelBase); err != nil {
		a.kern = a.kernelGeneric
		a.ks.set(KernelGeneric, false)
	}
}

// --- Elastic ---

// KernelVariants lists the generated kernel variants selectable at this
// propagator's radius (empty when only the generic fallback exists).
func (e *Elastic) KernelVariants() []string { return variantNames(elasticKernelTable, e.R) }

// KernelName reports the dispatched kernel as "elastic/rN/variant".
func (e *Elastic) KernelName() string { return e.ks.name() }

// SetKernelVariant installs the named generated kernel pair (velocity and
// stress phases switch together) or the generic fallback; see
// (*Acoustic).SetKernelVariant.
func (e *Elastic) SetKernelVariant(v string) error {
	if v == KernelGeneric {
		e.velKern, e.stressKern = e.velKernelGeneric, e.stressKernelGeneric
		e.ks.set(KernelGeneric, true)
		return nil
	}
	pair, ok := elasticKernelTable[e.R][v]
	if !ok {
		return fmt.Errorf("wave: no generated elastic kernel for radius %d variant %q (have %v)",
			e.R, v, e.KernelVariants())
	}
	e.velKern = func(reg grid.Region) { pair.vel(e, reg) }
	e.stressKern = func(reg grid.Region) { pair.stress(e, reg) }
	e.ks.set(v, false)
	return nil
}

func (e *Elastic) selectKernel() {
	e.ks.physics, e.ks.radius = "elastic", e.R
	if err := e.SetKernelVariant(KernelBase); err != nil {
		e.velKern, e.stressKern = e.velKernelGeneric, e.stressKernelGeneric
		e.ks.set(KernelGeneric, false)
	}
}

// --- TTI ---

// KernelVariants lists the generated kernel variants selectable at this
// propagator's radius (empty when only the generic fallback exists).
func (w *TTI) KernelVariants() []string { return variantNames(ttiKernelTable, w.R) }

// KernelName reports the dispatched kernel as "tti/rN/variant".
func (w *TTI) KernelName() string { return w.ks.name() }

// SetKernelVariant installs the named generated kernel variant or the
// generic fallback; see (*Acoustic).SetKernelVariant.
func (w *TTI) SetKernelVariant(v string) error {
	if v == KernelGeneric {
		w.kern = w.kernelGeneric
		w.ks.set(KernelGeneric, true)
		return nil
	}
	fn, ok := ttiKernelTable[w.R][v]
	if !ok {
		return fmt.Errorf("wave: no generated TTI kernel for radius %d variant %q (have %v)",
			w.R, v, w.KernelVariants())
	}
	w.kern = func(t int, reg grid.Region) { fn(w, t, reg) }
	w.ks.set(v, false)
	return nil
}

func (w *TTI) selectKernel() {
	w.ks.physics, w.ks.radius = "tti", w.R
	if err := w.SetKernelVariant(KernelBase); err != nil {
		w.kern = w.kernelGeneric
		w.ks.set(KernelGeneric, false)
	}
}
