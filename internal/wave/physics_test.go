package wave

import (
	"math"
	"testing"

	"wavetile/internal/grid"
	"wavetile/internal/model"
	"wavetile/internal/sparse"
	"wavetile/internal/tiling"
	"wavetile/internal/wavelet"
)

// Physics sanity checks: the propagators are not just internally consistent
// between schedules; they model waves. These tests validate stability under
// the CFL bound, causality (finite propagation speed), absorbing-layer decay
// and receiver plausibility on the acoustic kernel, plus basic stability for
// TTI and elastic.

func TestAcousticStabilityAtCFL(t *testing.T) {
	n := 32
	g := model.Geometry{Nx: n, Ny: n, Nz: n, Hx: 10, Hy: 10, Hz: 10, NBL: 4}
	dt := g.CriticalDtAcoustic(8, 3000, model.DefaultCFL)
	g.SetTime(200*dt, dt)
	params := model.NewAcoustic(g, 4, model.Layered(float64(n)*10, 1500, 3000))
	c := g.Center()
	src := sparse.Single(sparse.Coord{c[0] + 1.2, c[1] - 0.7, c[2] + 3.3})
	wav := [][]float32{wavelet.RickerSeries(25/(float64(g.Nt)*g.Dt), g.Nt, g.Dt, 1)}
	a, err := NewAcoustic(AcousticOpts{Params: params, SO: 8, Src: src, SrcWav: wav})
	if err != nil {
		t.Fatal(err)
	}
	tiling.RunSpatial(a, 8, 8, true)
	if a.Final().HasNaN() {
		t.Fatal("NaN after 200 CFL-bounded steps")
	}
	if a.Final().MaxAbs() > 1e6 {
		t.Fatalf("field blew up: max %g", a.Final().MaxAbs())
	}
}

func TestAcousticCausality(t *testing.T) {
	// The wavefront must not outrun c·t (with a small stencil-width slack).
	n := 48
	v := 2000.0
	g := model.Geometry{Nx: n, Ny: n, Nz: n, Hx: 10, Hy: 10, Hz: 10, NBL: 0}
	dt := g.CriticalDtAcoustic(4, v, model.DefaultCFL)
	nsteps := 20
	g.SetTime(float64(nsteps)*dt, dt)
	g.Nt = nsteps
	params := model.NewAcoustic(g, 2, model.Homogeneous(v))
	c := g.Center()
	src := sparse.Single(sparse.Coord{c[0], c[1], c[2]})
	wav := [][]float32{wavelet.RickerSeries(2/(float64(g.Nt)*g.Dt), g.Nt, g.Dt, 1e3)}
	a, err := NewAcoustic(AcousticOpts{Params: params, SO: 4, Src: src, SrcWav: wav})
	if err != nil {
		t.Fatal(err)
	}
	tiling.RunSpatial(a, 8, 8, true)
	u := a.Final()
	umax := u.MaxAbs()
	// Strict causality holds for the discrete dependence cone: influence
	// travels at most R cells per timestep (plus one cell of interpolation
	// support). Beyond the physical front c·t the discrete solution may
	// carry numerical tails, but they must be utterly negligible.
	cone := (float64(a.R*nsteps) + 1) * 10
	front := v*float64(nsteps)*dt + 4*10*float64(a.R)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				d := math.Max(math.Abs(float64(x)*10-c[0]),
					math.Max(math.Abs(float64(y)*10-c[1]), math.Abs(float64(z)*10-c[2])))
				val := math.Abs(float64(u.At(x, y, z)))
				if d > cone && val != 0 {
					t.Fatalf("signal outside discrete cone at L∞ distance %g > %g: u(%d,%d,%d)=%g",
						d, cone, x, y, z, val)
				}
				if d > front && val > 1e-6*umax {
					t.Fatalf("non-negligible signal beyond physical front at %g > %g: u(%d,%d,%d)=%g (max %g)",
						d, front, x, y, z, val, umax)
				}
			}
		}
	}
	// And the wave did move: nonzero well away from the source.
	moved := false
	for x := 0; x < n && !moved; x++ {
		d := math.Abs(float64(x)*10 - c[0])
		if d > v*float64(nsteps)*dt/2 && u.At(x, n/2, n/2) != 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("wave did not propagate")
	}
}

func TestAcousticDampingAbsorbs(t *testing.T) {
	// With absorbing layers, late-time energy must be far below peak energy
	// (the wave leaves the domain instead of reflecting).
	n := 36
	v := 1500.0
	g := model.Geometry{Nx: n, Ny: n, Nz: n, Hx: 10, Hy: 10, Hz: 10, NBL: 10}
	dt := g.CriticalDtAcoustic(4, v, model.DefaultCFL)
	g.SetTime(400*dt, dt)
	params := model.NewAcoustic(g, 2, model.Homogeneous(v))
	c := g.Center()
	src := sparse.Single(sparse.Coord{c[0], c[1], c[2]})
	f0 := 30 / (float64(g.Nt) * g.Dt)
	wav := [][]float32{wavelet.RickerSeries(f0, g.Nt, g.Dt, 1e3)}
	a, err := NewAcoustic(AcousticOpts{Params: params, SO: 4, Src: src, SrcWav: wav})
	if err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for tt := 0; tt < g.Nt; tt++ {
		a.Step(tt, fullRaw(a), true)
		if e := a.Wavefield(tt + 1).SumSq(); e > peak {
			peak = e
		}
	}
	final := a.Final().SumSq()
	if peak == 0 {
		t.Fatal("no energy injected")
	}
	if final > peak/50 {
		t.Fatalf("absorbing layers ineffective: final/peak = %g", final/peak)
	}
}

func fullRaw(p tiling.Propagator) grid.Region {
	nx, ny := p.GridShape()
	off := p.MaxPhaseOffset()
	return grid.Region{X0: 0, X1: nx + off, Y0: 0, Y1: ny + off}
}

func TestAcousticReceiversRecordArrival(t *testing.T) {
	// A receiver at distance d sees (almost) nothing before d/v and a clear
	// signal after.
	n := 40
	v := 2000.0
	g := model.Geometry{Nx: n, Ny: n, Nz: n, Hx: 10, Hy: 10, Hz: 10, NBL: 0}
	dt := g.CriticalDtAcoustic(4, v, model.DefaultCFL)
	g.SetTime(300*dt, dt)
	params := model.NewAcoustic(g, 2, model.Homogeneous(v))
	c := g.Center()
	src := sparse.Single(sparse.Coord{c[0], c[1], c[2]})
	rec := sparse.Single(sparse.Coord{c[0] + 150, c[1], c[2]}) // 150 m away
	f0 := 40 / (float64(g.Nt) * g.Dt)
	wav := [][]float32{wavelet.RickerSeries(f0, g.Nt, g.Dt, 1e3)}
	a, err := NewAcoustic(AcousticOpts{Params: params, SO: 4, Src: src, SrcWav: wav, Rec: rec})
	if err != nil {
		t.Fatal(err)
	}
	tiling.RunSpatial(a, 8, 8, true)
	traces, err := a.Ops.Receivers()
	if err != nil {
		t.Fatal(err)
	}
	arrival := 150 / v // seconds
	maxAll, maxEarly := 0.0, 0.0
	for tt := range traces {
		v := math.Abs(float64(traces[tt][0]))
		if v > maxAll {
			maxAll = v
		}
		// Generous margin: stencil halo spreads the front a little.
		if float64(tt)*dt < arrival*0.6 && v > maxEarly {
			maxEarly = v
		}
	}
	if maxAll == 0 {
		t.Fatal("receiver recorded nothing")
	}
	if maxEarly > maxAll*1e-3 {
		t.Fatalf("acausal receiver energy: early %g vs max %g", maxEarly, maxAll)
	}
}

func TestTTIStability(t *testing.T) {
	w := buildTTI(t, 24, 4)
	tiling.RunSpatial(w, 8, 8, true)
	for name, f := range w.Fields() {
		if f.HasNaN() {
			t.Fatalf("TTI field %s has NaN", name)
		}
	}
	if w.WavefieldP(w.Steps()).MaxAbs() == 0 {
		t.Fatal("TTI propagated nothing")
	}
}

func TestTTIReducesToAcousticWhenIsotropic(t *testing.T) {
	// With ε = δ = θ = φ = 0 the TTI system collapses to p = q solving the
	// isotropic acoustic equation: p and q must coincide, and the p field
	// must match an acoustic run with the same setup.
	n, so := 24, 4
	g := model.Geometry{Nx: n, Ny: n, Nz: n, Hx: 10, Hy: 10, Hz: 10, NBL: 4}
	dt := g.CriticalDtAcoustic(so, 2000, model.DefaultCFL) * 0.9
	g.SetTime(16*dt, dt)
	zero := model.Homogeneous(0)
	tp := model.NewTTI(g, so/2, model.Homogeneous(2000), zero, zero, zero, zero)
	c := g.Center()
	src := sparse.Single(sparse.Coord{c[0] + 1.5, c[1], c[2]})
	wav := [][]float32{wavelet.RickerSeries(2/(float64(g.Nt)*g.Dt), g.Nt, g.Dt, 1e3)}
	w, err := NewTTI(TTIOpts{Params: tp, SO: so, Src: src, SrcWav: wav})
	if err != nil {
		t.Fatal(err)
	}
	tiling.RunSpatial(w, 8, 8, true)
	d, x, y, z := w.Pw[0].MaxAbsDiff(w.Qw[0])
	scale := math.Max(w.Pw[0].MaxAbs(), 1e-30)
	if d > 1e-5*scale {
		t.Fatalf("isotropic TTI: p≠q, rel diff %g at (%d,%d,%d)", d/scale, x, y, z)
	}

	ap := model.NewAcoustic(g, so/2, model.Homogeneous(2000))
	a, err := NewAcoustic(AcousticOpts{Params: ap, SO: so, Src: src, SrcWav: wav})
	if err != nil {
		t.Fatal(err)
	}
	tiling.RunSpatial(a, 8, 8, true)
	d, x, y, z = w.Pw[0].MaxAbsDiff(a.U[0])
	if d > 1e-4*scale {
		t.Fatalf("isotropic TTI ≠ acoustic: rel diff %g at (%d,%d,%d)", d/scale, x, y, z)
	}
}

func TestElasticStability(t *testing.T) {
	e := buildElastic(t, 24, 4)
	tiling.RunSpatial(e, 8, 8, true)
	for name, f := range e.Fields() {
		if f.HasNaN() {
			t.Fatalf("elastic field %s has NaN", name)
		}
	}
	if e.Vz.MaxAbs() == 0 {
		t.Fatal("elastic propagated nothing")
	}
}

func TestElasticShearSymmetry(t *testing.T) {
	// With a centered explosive source in a homogeneous medium, the x↔y
	// symmetry of the setup must be reflected in the stress fields.
	n := 20
	g := model.Geometry{Nx: n, Ny: n, Nz: n, Hx: 10, Hy: 10, Hz: 10, NBL: 0}
	dt := g.CriticalDtElastic(4, 2000, model.DefaultCFL)
	g.SetTime(10*dt, dt)
	params := model.NewElastic(g, 2, model.Homogeneous(2000), model.Homogeneous(1000), model.Homogeneous(1800))
	// Source exactly on a grid point so the support is symmetric.
	src := sparse.Single(sparse.Coord{90, 90, 90})
	wav := [][]float32{wavelet.RickerSeries(2/(float64(g.Nt)*g.Dt), g.Nt, g.Dt, 1e6)}
	e, err := NewElastic(ElasticOpts{Params: params, SO: 4, Src: src, SrcWav: wav})
	if err != nil {
		t.Fatal(err)
	}
	tiling.RunSpatial(e, 8, 8, true)
	// txx(x,y,z) == tyy(y,x,z) under x↔y swap.
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				a := float64(e.Txx.At(x, y, z))
				b := float64(e.Tyy.At(y, x, z))
				if math.Abs(a-b) > 1e-6*math.Max(1, e.Txx.MaxAbs()) {
					t.Fatalf("x↔y symmetry broken at (%d,%d,%d): %g vs %g", x, y, z, a, b)
				}
			}
		}
	}
}
