package wave

import (
	"fmt"
	"time"

	"wavetile/internal/fd"
	"wavetile/internal/grid"
	"wavetile/internal/model"
	"wavetile/internal/obs"
	"wavetile/internal/sparse"
	"wavetile/internal/tiling"
)

// Elastic is the isotropic elastic propagator (§III-C): the Virieux
// velocity–stress formulation on a staggered grid,
//
//	ρ·∂v/∂t = ∇·τ
//	∂τ/∂t   = λ·tr(∇v)·I + μ(∇v + ∇vᵀ)
//
// a first-order-in-time coupled system of a vector field v (3 components)
// and a symmetric tensor field τ (6 components) — nine wavefields, the
// "drastically increased data movement" case of the paper. Each timestep
// runs two phases: velocities from stresses, then stresses from the fresh
// velocities. Under wave-front temporal blocking the stress phase trails the
// velocity phase by the stencil radius (the shifted wavefront angle of the
// multi-grid scheme, Fig. 8b), and the per-timestep skew is twice the
// radius. Absorbing boundaries use a Cerjan multiplicative taper.
type Elastic struct {
	P  *model.ElasticParams
	SO int
	R  int

	Vx, Vy, Vz                     *grid.Grid
	Txx, Tyy, Tzz, Txy, Txz, Tyz   *grid.Grid
	bdt, l2mdt, lamdt, mudt, taper *grid.Grid

	cs            []float32 // staggered coefficients; csx/csy/csz fold in 1/h
	csx, csy, csz []float32

	Ops *SparseOps

	blockX, blockY int

	velKern, stressKern func(grid.Region)
	ks                  kernState
}

// ElasticOpts configures NewElastic.
type ElasticOpts struct {
	Params *model.ElasticParams
	SO     int
	Src    *sparse.Points
	SrcWav [][]float32
	Rec    *sparse.Points
	// SincSource selects Kaiser-windowed sinc injection.
	SincSource bool
}

// NewElastic builds the propagator. Sources are explosive: injected into the
// diagonal stresses τxx, τyy, τzz scaled by dt; receivers measure vz.
func NewElastic(o ElasticOpts) (*Elastic, error) {
	p := o.Params
	g := p.Geom
	if g.Nt <= 0 || g.Dt <= 0 {
		return nil, fmt.Errorf("wave: geometry time axis not set (nt=%d dt=%g)", g.Nt, g.Dt)
	}
	r := fd.Radius(o.SO)
	if p.Lam.H < r {
		return nil, fmt.Errorf("wave: model halo %d smaller than stencil radius %d", p.Lam.H, r)
	}
	e := &Elastic{P: p, SO: o.SO, R: r, blockX: 8, blockY: 8}
	mk := func() *grid.Grid { return grid.New(g.Nx, g.Ny, g.Nz, r) }
	e.Vx, e.Vy, e.Vz = mk(), mk(), mk()
	e.Txx, e.Tyy, e.Tzz = mk(), mk(), mk()
	e.Txy, e.Txz, e.Tyz = mk(), mk(), mk()

	cs := fd.StaggeredFirstDeriv(o.SO)
	e.cs = fd.ToF32(cs, 1)
	e.csx = fd.ToF32(cs, 1/g.Hx)
	e.csy = fd.ToF32(cs, 1/g.Hy)
	e.csz = fd.ToF32(cs, 1/g.Hz)

	dt := float32(g.Dt)
	e.bdt, e.l2mdt, e.lamdt, e.mudt, e.taper = mk(), mk(), mk(), mk(), mk()
	e.bdt.FillFunc(func(x, y, z int) float32 { return dt * p.Buoy.At(x, y, z) })
	e.l2mdt.FillFunc(func(x, y, z int) float32 {
		return dt * (p.Lam.At(x, y, z) + 2*p.Mu.At(x, y, z))
	})
	e.lamdt.FillFunc(func(x, y, z int) float32 { return dt * p.Lam.At(x, y, z) })
	e.mudt.FillFunc(func(x, y, z int) float32 { return dt * p.Mu.At(x, y, z) })
	e.taper.FillFunc(func(x, y, z int) float32 { return p.Taper.At(x, y, z) })

	scale := func(x, y, z int) float32 { return dt }
	ops, err := NewSparseOps(g.Nx, g.Ny, g.Nz, g.Hx, g.Hy, g.Hz, g.Nt, o.Src, o.SrcWav, o.Rec, scale, o.SincSource)
	if err != nil {
		return nil, err
	}
	e.Ops = ops
	e.selectKernel()
	return e, nil
}

// --- tiling.Propagator ---

// GridShape returns the tiled (x, y) extents.
func (e *Elastic) GridShape() (int, int) { return e.P.Geom.Nx, e.P.Geom.Ny }

// Steps returns the number of timesteps.
func (e *Elastic) Steps() int { return e.P.Geom.Nt }

// TimeSkew is 2·radius: the velocity and stress phases each consume a halo
// of radius points per timestep.
func (e *Elastic) TimeSkew() int { return 2 * e.R }

// MaxPhaseOffset is the stencil radius: the stress phase trails the
// velocity phase by r (Fig. 8b).
func (e *Elastic) MaxPhaseOffset() int { return e.R }

// MinTile returns the dependency margin for legal tiles.
func (e *Elastic) MinTile() int { return 2 * e.R }

// SetBlocks fixes the parallel sub-block shape.
func (e *Elastic) SetBlocks(bx, by int) { e.blockX, e.blockY = bx, by }

// Step advances all nine fields from time index t to t+1 on the raw region:
// first the velocity phase on the clamped base region, then the stress
// phase on the region shifted back by the radius.
func (e *Elastic) Step(t int, raw grid.Region, fused bool) {
	if e.ks.generic {
		e.ks.noteStep()
	}
	g := e.P.Geom
	e.Ops.setFused(fused)
	vreg := raw.Clamp(g.Nx, g.Ny)
	sreg := raw.Shift(-e.R, -e.R).Clamp(g.Nx, g.Ny)
	if sec := obs.SectionStart(); sec != nil {
		e.stepObserved(sec, t, vreg, sreg, fused)
		return
	}
	if !vreg.Empty() {
		tiling.ForBlocks(vreg, e.blockX, e.blockY, func(b grid.Region) {
			e.velKern(b)
			if fused {
				e.Ops.SampleFused(e.Vz, t, b)
			}
		})
	}
	if !sreg.Empty() {
		tiling.ForBlocks(sreg, e.blockX, e.blockY, func(b grid.Region) {
			e.stressKern(b)
			if fused {
				e.Ops.InjectFused(e.Txx, t, b)
				e.Ops.InjectFused(e.Tyy, t, b)
				e.Ops.InjectFused(e.Tzz, t, b)
			}
		})
	}
}

// stepObserved is Step's instrumented twin: one section spans both the
// velocity and stress phases (both count as PhaseStencil; sampling and
// injection are attributed to their own phases).
func (e *Elastic) stepObserved(sec *obs.Section, t int, vreg, sreg grid.Region, fused bool) {
	r := sec.Registry()
	hist := r.Histogram("block_ns")
	if !vreg.Empty() {
		tiling.ForBlocksIndexed(vreg, e.blockX, e.blockY, func(w int, b grid.Region) {
			t0 := time.Now()
			e.velKern(b)
			sec.Observe(obs.PhaseStencil, w, t0)
			if fused {
				t1 := time.Now()
				e.Ops.SampleFused(e.Vz, t, b)
				sec.Observe(obs.PhaseSample, w, t1)
			}
			hist.Observe(time.Since(t0))
		})
	}
	if !sreg.Empty() {
		tiling.ForBlocksIndexed(sreg, e.blockX, e.blockY, func(w int, b grid.Region) {
			t0 := time.Now()
			e.stressKern(b)
			sec.Observe(obs.PhaseStencil, w, t0)
			if fused {
				t1 := time.Now()
				e.Ops.InjectFused(e.Txx, t, b)
				e.Ops.InjectFused(e.Tyy, t, b)
				e.Ops.InjectFused(e.Tzz, t, b)
				sec.Observe(obs.PhaseInject, w, t1)
			}
			hist.Observe(time.Since(t0))
		})
	}
	nz := int64(e.P.Geom.Nz)
	r.AddStep(int64(vreg.NumPoints())*nz + int64(sreg.NumPoints())*nz)
	sec.End()
}

// ApplySparse runs the Listing-1 baseline sparse operators: explosive
// injection into the diagonal stresses and vz interpolation.
func (e *Elastic) ApplySparse(t int) {
	e.Ops.InjectBaseline(e.Txx, t)
	sparseInjectInto(e.Tyy, e.Ops, t)
	sparseInjectInto(e.Tzz, e.Ops, t)
	if len(e.Ops.RecSup) > 0 {
		sparse.Interpolate(e.Vz, e.Ops.RecSup, e.Ops.recDirect[t])
	}
}

// --- inspection & lifecycle ---

// Fields returns all wavefield buffers for whole-state comparison.
func (e *Elastic) Fields() map[string]*grid.Grid {
	return map[string]*grid.Grid{
		"vx": e.Vx, "vy": e.Vy, "vz": e.Vz,
		"txx": e.Txx, "tyy": e.Tyy, "tzz": e.Tzz,
		"txy": e.Txy, "txz": e.Txz, "tyz": e.Tyz,
	}
}

// Reset zeroes all run state.
func (e *Elastic) Reset() {
	for _, f := range e.Fields() {
		f.Zero()
	}
	e.Ops.Reset()
}

// FlopsPerPoint returns the per-point operation count across both phases.
func (e *Elastic) FlopsPerPoint() int { return 54*e.R + 33 }

// PointsPerStep returns the grid points updated per timestep.
func (e *Elastic) PointsPerStep() int {
	g := e.P.Geom
	return g.Nx * g.Ny * g.Nz
}

// velKernelGeneric updates vx, vy, vz from the stresses on reg at any
// radius; the generated kernels specialize it per radius.
//
// Staggering: vx lives at (i+½,j,k), vy at (i,j+½,k), vz at (i,j,k+½);
// diagonal stresses at (i,j,k), τxy at (i+½,j+½,k), τxz at (i+½,j,k+½),
// τyz at (i,j+½,k+½). df computes a staggered derivative a half cell up
// (forward), db a half cell down (backward).
func (e *Elastic) velKernelGeneric(reg grid.Region) {
	nz := e.Vx.Nz
	sx, sy := e.Vx.SX, e.Vx.SY
	vx, vy, vz := e.Vx.Data, e.Vy.Data, e.Vz.Data
	txx, tyy, tzz := e.Txx.Data, e.Tyy.Data, e.Tzz.Data
	txy, txz, tyz := e.Txy.Data, e.Txz.Data, e.Tyz.Data
	bdt, taper := e.bdt.Data, e.taper.Data
	r := e.R
	csx, csy, csz := e.csx, e.csy, e.csz

	df := func(f []float32, i, s int, c []float32) float32 {
		var acc float32
		for k := 1; k <= r; k++ {
			acc += c[k] * (f[i+k*s] - f[i-(k-1)*s])
		}
		return acc
	}
	db := func(f []float32, i, s int, c []float32) float32 {
		var acc float32
		for k := 1; k <= r; k++ {
			acc += c[k] * (f[i+(k-1)*s] - f[i-k*s])
		}
		return acc
	}

	for x := reg.X0; x < reg.X1; x++ {
		for y := reg.Y0; y < reg.Y1; y++ {
			base := e.Vx.Idx(x, y, 0)
			for z := 0; z < nz; z++ {
				i := base + z
				vx[i] = ftz((vx[i] + bdt[i]*(df(txx, i, sx, csx)+db(txy, i, sy, csy)+db(txz, i, 1, csz))) * taper[i])
				vy[i] = ftz((vy[i] + bdt[i]*(db(txy, i, sx, csx)+df(tyy, i, sy, csy)+db(tyz, i, 1, csz))) * taper[i])
				vz[i] = ftz((vz[i] + bdt[i]*(db(txz, i, sx, csx)+db(tyz, i, sy, csy)+df(tzz, i, 1, csz))) * taper[i])
			}
		}
	}
}

// stressKernelGeneric updates the six stresses from the fresh velocities on
// reg at any radius; the generated kernels specialize it per radius.
func (e *Elastic) stressKernelGeneric(reg grid.Region) {
	nz := e.Vx.Nz
	sx, sy := e.Vx.SX, e.Vx.SY
	vx, vy, vz := e.Vx.Data, e.Vy.Data, e.Vz.Data
	txx, tyy, tzz := e.Txx.Data, e.Tyy.Data, e.Tzz.Data
	txy, txz, tyz := e.Txy.Data, e.Txz.Data, e.Tyz.Data
	l2mdt, lamdt, mudt, taper := e.l2mdt.Data, e.lamdt.Data, e.mudt.Data, e.taper.Data
	r := e.R
	csx, csy, csz := e.csx, e.csy, e.csz

	df := func(f []float32, i, s int, c []float32) float32 {
		var acc float32
		for k := 1; k <= r; k++ {
			acc += c[k] * (f[i+k*s] - f[i-(k-1)*s])
		}
		return acc
	}
	db := func(f []float32, i, s int, c []float32) float32 {
		var acc float32
		for k := 1; k <= r; k++ {
			acc += c[k] * (f[i+(k-1)*s] - f[i-k*s])
		}
		return acc
	}

	for x := reg.X0; x < reg.X1; x++ {
		for y := reg.Y0; y < reg.Y1; y++ {
			base := e.Vx.Idx(x, y, 0)
			for z := 0; z < nz; z++ {
				i := base + z
				dvxdx := db(vx, i, sx, csx)
				dvydy := db(vy, i, sy, csy)
				dvzdz := db(vz, i, 1, csz)
				txx[i] = ftz((txx[i] + l2mdt[i]*dvxdx + lamdt[i]*(dvydy+dvzdz)) * taper[i])
				tyy[i] = ftz((tyy[i] + l2mdt[i]*dvydy + lamdt[i]*(dvxdx+dvzdz)) * taper[i])
				tzz[i] = ftz((tzz[i] + l2mdt[i]*dvzdz + lamdt[i]*(dvxdx+dvydy)) * taper[i])
				txy[i] = ftz((txy[i] + mudt[i]*(df(vy, i, sx, csx)+df(vx, i, sy, csy))) * taper[i])
				txz[i] = ftz((txz[i] + mudt[i]*(df(vz, i, sx, csx)+df(vx, i, 1, csz))) * taper[i])
				tyz[i] = ftz((tyz[i] + mudt[i]*(df(vz, i, sy, csy)+df(vy, i, 1, csz))) * taper[i])
			}
		}
	}
}
