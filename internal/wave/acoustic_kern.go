package wave

import "wavetile/internal/grid"

// Radius-specialized acoustic kernels. These unroll the coefficient loop of
// kernelGeneric for the paper's most common space orders (4 and 8) so the
// compiler can keep coefficients in registers and schedule the z-streaming
// loop tightly. Each variant evaluates the same per-point expression as
// kernelGeneric; a propagator instance always uses a single variant, so
// schedule comparisons remain bitwise exact.

func (a *Acoustic) kernelR2(t int, reg grid.Region) {
	u := a.U[t&1]
	un := a.U[(t+1)&1]
	nz := u.Nz
	sx, sy := u.SX, u.SY
	ud, und := u.Data, un.Data
	dm1, dp1i, mdt2 := a.dm1.Data, a.dp1i.Data, a.mdt2.Data
	c0 := a.c0
	cx1, cx2 := a.cx[1], a.cx[2]
	cy1, cy2 := a.cy[1], a.cy[2]
	cz1, cz2 := a.cz[1], a.cz[2]
	for x := reg.X0; x < reg.X1; x++ {
		for y := reg.Y0; y < reg.Y1; y++ {
			base := u.Idx(x, y, 0)
			for z := 0; z < nz; z++ {
				i := base + z
				lap := c0*ud[i] +
					cx1*(ud[i+sx]+ud[i-sx]) + cx2*(ud[i+2*sx]+ud[i-2*sx]) +
					cy1*(ud[i+sy]+ud[i-sy]) + cy2*(ud[i+2*sy]+ud[i-2*sy]) +
					cz1*(ud[i+1]+ud[i-1]) + cz2*(ud[i+2]+ud[i-2])
				v := (2*ud[i] - dm1[i]*und[i] + mdt2[i]*lap) * dp1i[i]
				if v < flushEps && v > -flushEps {
					v = 0
				}
				und[i] = v
			}
		}
	}
}

func (a *Acoustic) kernelR4(t int, reg grid.Region) {
	u := a.U[t&1]
	un := a.U[(t+1)&1]
	nz := u.Nz
	sx, sy := u.SX, u.SY
	ud, und := u.Data, un.Data
	dm1, dp1i, mdt2 := a.dm1.Data, a.dp1i.Data, a.mdt2.Data
	c0 := a.c0
	cx1, cx2, cx3, cx4 := a.cx[1], a.cx[2], a.cx[3], a.cx[4]
	cy1, cy2, cy3, cy4 := a.cy[1], a.cy[2], a.cy[3], a.cy[4]
	cz1, cz2, cz3, cz4 := a.cz[1], a.cz[2], a.cz[3], a.cz[4]
	for x := reg.X0; x < reg.X1; x++ {
		for y := reg.Y0; y < reg.Y1; y++ {
			base := u.Idx(x, y, 0)
			for z := 0; z < nz; z++ {
				i := base + z
				lap := c0*ud[i] +
					cx1*(ud[i+sx]+ud[i-sx]) + cx2*(ud[i+2*sx]+ud[i-2*sx]) +
					cx3*(ud[i+3*sx]+ud[i-3*sx]) + cx4*(ud[i+4*sx]+ud[i-4*sx]) +
					cy1*(ud[i+sy]+ud[i-sy]) + cy2*(ud[i+2*sy]+ud[i-2*sy]) +
					cy3*(ud[i+3*sy]+ud[i-3*sy]) + cy4*(ud[i+4*sy]+ud[i-4*sy]) +
					cz1*(ud[i+1]+ud[i-1]) + cz2*(ud[i+2]+ud[i-2]) +
					cz3*(ud[i+3]+ud[i-3]) + cz4*(ud[i+4]+ud[i-4])
				v := (2*ud[i] - dm1[i]*und[i] + mdt2[i]*lap) * dp1i[i]
				if v < flushEps && v > -flushEps {
					v = 0
				}
				und[i] = v
			}
		}
	}
}

func (a *Acoustic) kernelR6(t int, reg grid.Region) {
	u := a.U[t&1]
	un := a.U[(t+1)&1]
	nz := u.Nz
	sx, sy := u.SX, u.SY
	ud, und := u.Data, un.Data
	dm1, dp1i, mdt2 := a.dm1.Data, a.dp1i.Data, a.mdt2.Data
	c0 := a.c0
	cx1, cx2, cx3, cx4, cx5, cx6 := a.cx[1], a.cx[2], a.cx[3], a.cx[4], a.cx[5], a.cx[6]
	cy1, cy2, cy3, cy4, cy5, cy6 := a.cy[1], a.cy[2], a.cy[3], a.cy[4], a.cy[5], a.cy[6]
	cz1, cz2, cz3, cz4, cz5, cz6 := a.cz[1], a.cz[2], a.cz[3], a.cz[4], a.cz[5], a.cz[6]
	for x := reg.X0; x < reg.X1; x++ {
		for y := reg.Y0; y < reg.Y1; y++ {
			base := u.Idx(x, y, 0)
			for z := 0; z < nz; z++ {
				i := base + z
				lap := c0*ud[i] +
					cx1*(ud[i+sx]+ud[i-sx]) + cx2*(ud[i+2*sx]+ud[i-2*sx]) +
					cx3*(ud[i+3*sx]+ud[i-3*sx]) + cx4*(ud[i+4*sx]+ud[i-4*sx]) +
					cx5*(ud[i+5*sx]+ud[i-5*sx]) + cx6*(ud[i+6*sx]+ud[i-6*sx]) +
					cy1*(ud[i+sy]+ud[i-sy]) + cy2*(ud[i+2*sy]+ud[i-2*sy]) +
					cy3*(ud[i+3*sy]+ud[i-3*sy]) + cy4*(ud[i+4*sy]+ud[i-4*sy]) +
					cy5*(ud[i+5*sy]+ud[i-5*sy]) + cy6*(ud[i+6*sy]+ud[i-6*sy]) +
					cz1*(ud[i+1]+ud[i-1]) + cz2*(ud[i+2]+ud[i-2]) +
					cz3*(ud[i+3]+ud[i-3]) + cz4*(ud[i+4]+ud[i-4]) +
					cz5*(ud[i+5]+ud[i-5]) + cz6*(ud[i+6]+ud[i-6])
				v := (2*ud[i] - dm1[i]*und[i] + mdt2[i]*lap) * dp1i[i]
				if v < flushEps && v > -flushEps {
					v = 0
				}
				und[i] = v
			}
		}
	}
}
