package wave

import "wavetile/internal/grid"

// Radius-specialized acoustic kernels. These unroll the coefficient loop of
// kernelGeneric for the paper's most common space orders (4 and 8) so the
// compiler can keep coefficients in registers and schedule the z-streaming
// loop tightly. Each variant evaluates the same per-point expression as
// kernelGeneric; a propagator instance always uses a single variant, so
// schedule comparisons remain bitwise exact.
//
// BCE discipline (enforced by `make bce-check`): every stencil offset is
// hoisted into a per-row sub-slice of length exactly nz before the z loop,
// and the loop indexes all of them with the bare induction variable. The
// prove pass then sees one shared length for every access and eliminates
// all bounds checks from the stream; offset arithmetic inside the loop
// (e.g. row[z+1]) would defeat it. The row slicing itself may emit
// IsSliceInBounds — that is setup cost, once per row, and allowed.

func (a *Acoustic) kernelR2(t int, reg grid.Region) {
	u := a.U[t&1]
	un := a.U[(t+1)&1]
	nz := u.Nz
	sx, sy := u.SX, u.SY
	ud, und := u.Data, un.Data
	dm1d, dp1id, mdt2d := a.dm1.Data, a.dp1i.Data, a.mdt2.Data
	c0 := a.c0
	cx, cy, cz := a.cx[:3], a.cy[:3], a.cz[:3]
	cx1, cx2 := cx[1], cx[2]
	cy1, cy2 := cy[1], cy[2]
	cz1, cz2 := cz[1], cz[2]
	for x := reg.X0; x < reg.X1; x++ {
		for y := reg.Y0; y < reg.Y1; y++ {
			o := u.Idx(x, y, 0)
			uc := ud[o:][:nz]
			xp1, xm1 := ud[o+sx:][:nz], ud[o-sx:][:nz]
			xp2, xm2 := ud[o+2*sx:][:nz], ud[o-2*sx:][:nz]
			yp1, ym1 := ud[o+sy:][:nz], ud[o-sy:][:nz]
			yp2, ym2 := ud[o+2*sy:][:nz], ud[o-2*sy:][:nz]
			zp1, zm1 := ud[o+1:][:nz], ud[o-1:][:nz]
			zp2, zm2 := ud[o+2:][:nz], ud[o-2:][:nz]
			un0 := und[o:][:nz]
			dm1, dp1i, mdt2 := dm1d[o:][:nz], dp1id[o:][:nz], mdt2d[o:][:nz]
			for z := range un0 {
				lap := c0*uc[z] +
					cx1*(xp1[z]+xm1[z]) + cx2*(xp2[z]+xm2[z]) +
					cy1*(yp1[z]+ym1[z]) + cy2*(yp2[z]+ym2[z]) +
					cz1*(zp1[z]+zm1[z]) + cz2*(zp2[z]+zm2[z])
				un0[z] = ftz((2*uc[z] - dm1[z]*un0[z] + mdt2[z]*lap) * dp1i[z])
			}
		}
	}
}

func (a *Acoustic) kernelR4(t int, reg grid.Region) {
	u := a.U[t&1]
	un := a.U[(t+1)&1]
	nz := u.Nz
	sx, sy := u.SX, u.SY
	ud, und := u.Data, un.Data
	dm1d, dp1id, mdt2d := a.dm1.Data, a.dp1i.Data, a.mdt2.Data
	c0 := a.c0
	cx, cy, cz := a.cx[:5], a.cy[:5], a.cz[:5]
	cx1, cx2, cx3, cx4 := cx[1], cx[2], cx[3], cx[4]
	cy1, cy2, cy3, cy4 := cy[1], cy[2], cy[3], cy[4]
	cz1, cz2, cz3, cz4 := cz[1], cz[2], cz[3], cz[4]
	for x := reg.X0; x < reg.X1; x++ {
		for y := reg.Y0; y < reg.Y1; y++ {
			o := u.Idx(x, y, 0)
			uc := ud[o:][:nz]
			xp1, xm1 := ud[o+sx:][:nz], ud[o-sx:][:nz]
			xp2, xm2 := ud[o+2*sx:][:nz], ud[o-2*sx:][:nz]
			xp3, xm3 := ud[o+3*sx:][:nz], ud[o-3*sx:][:nz]
			xp4, xm4 := ud[o+4*sx:][:nz], ud[o-4*sx:][:nz]
			yp1, ym1 := ud[o+sy:][:nz], ud[o-sy:][:nz]
			yp2, ym2 := ud[o+2*sy:][:nz], ud[o-2*sy:][:nz]
			yp3, ym3 := ud[o+3*sy:][:nz], ud[o-3*sy:][:nz]
			yp4, ym4 := ud[o+4*sy:][:nz], ud[o-4*sy:][:nz]
			zp1, zm1 := ud[o+1:][:nz], ud[o-1:][:nz]
			zp2, zm2 := ud[o+2:][:nz], ud[o-2:][:nz]
			zp3, zm3 := ud[o+3:][:nz], ud[o-3:][:nz]
			zp4, zm4 := ud[o+4:][:nz], ud[o-4:][:nz]
			un0 := und[o:][:nz]
			dm1, dp1i, mdt2 := dm1d[o:][:nz], dp1id[o:][:nz], mdt2d[o:][:nz]
			for z := range un0 {
				lap := c0*uc[z] +
					cx1*(xp1[z]+xm1[z]) + cx2*(xp2[z]+xm2[z]) +
					cx3*(xp3[z]+xm3[z]) + cx4*(xp4[z]+xm4[z]) +
					cy1*(yp1[z]+ym1[z]) + cy2*(yp2[z]+ym2[z]) +
					cy3*(yp3[z]+ym3[z]) + cy4*(yp4[z]+ym4[z]) +
					cz1*(zp1[z]+zm1[z]) + cz2*(zp2[z]+zm2[z]) +
					cz3*(zp3[z]+zm3[z]) + cz4*(zp4[z]+zm4[z])
				un0[z] = ftz((2*uc[z] - dm1[z]*un0[z] + mdt2[z]*lap) * dp1i[z])
			}
		}
	}
}

func (a *Acoustic) kernelR6(t int, reg grid.Region) {
	u := a.U[t&1]
	un := a.U[(t+1)&1]
	nz := u.Nz
	sx, sy := u.SX, u.SY
	ud, und := u.Data, un.Data
	dm1d, dp1id, mdt2d := a.dm1.Data, a.dp1i.Data, a.mdt2.Data
	c0 := a.c0
	cx, cy, cz := a.cx[:7], a.cy[:7], a.cz[:7]
	cx1, cx2, cx3, cx4, cx5, cx6 := cx[1], cx[2], cx[3], cx[4], cx[5], cx[6]
	cy1, cy2, cy3, cy4, cy5, cy6 := cy[1], cy[2], cy[3], cy[4], cy[5], cy[6]
	cz1, cz2, cz3, cz4, cz5, cz6 := cz[1], cz[2], cz[3], cz[4], cz[5], cz[6]
	for x := reg.X0; x < reg.X1; x++ {
		for y := reg.Y0; y < reg.Y1; y++ {
			o := u.Idx(x, y, 0)
			uc := ud[o:][:nz]
			xp1, xm1 := ud[o+sx:][:nz], ud[o-sx:][:nz]
			xp2, xm2 := ud[o+2*sx:][:nz], ud[o-2*sx:][:nz]
			xp3, xm3 := ud[o+3*sx:][:nz], ud[o-3*sx:][:nz]
			xp4, xm4 := ud[o+4*sx:][:nz], ud[o-4*sx:][:nz]
			xp5, xm5 := ud[o+5*sx:][:nz], ud[o-5*sx:][:nz]
			xp6, xm6 := ud[o+6*sx:][:nz], ud[o-6*sx:][:nz]
			yp1, ym1 := ud[o+sy:][:nz], ud[o-sy:][:nz]
			yp2, ym2 := ud[o+2*sy:][:nz], ud[o-2*sy:][:nz]
			yp3, ym3 := ud[o+3*sy:][:nz], ud[o-3*sy:][:nz]
			yp4, ym4 := ud[o+4*sy:][:nz], ud[o-4*sy:][:nz]
			yp5, ym5 := ud[o+5*sy:][:nz], ud[o-5*sy:][:nz]
			yp6, ym6 := ud[o+6*sy:][:nz], ud[o-6*sy:][:nz]
			zp1, zm1 := ud[o+1:][:nz], ud[o-1:][:nz]
			zp2, zm2 := ud[o+2:][:nz], ud[o-2:][:nz]
			zp3, zm3 := ud[o+3:][:nz], ud[o-3:][:nz]
			zp4, zm4 := ud[o+4:][:nz], ud[o-4:][:nz]
			zp5, zm5 := ud[o+5:][:nz], ud[o-5:][:nz]
			zp6, zm6 := ud[o+6:][:nz], ud[o-6:][:nz]
			un0 := und[o:][:nz]
			dm1, dp1i, mdt2 := dm1d[o:][:nz], dp1id[o:][:nz], mdt2d[o:][:nz]
			for z := range un0 {
				lap := c0*uc[z] +
					cx1*(xp1[z]+xm1[z]) + cx2*(xp2[z]+xm2[z]) +
					cx3*(xp3[z]+xm3[z]) + cx4*(xp4[z]+xm4[z]) +
					cx5*(xp5[z]+xm5[z]) + cx6*(xp6[z]+xm6[z]) +
					cy1*(yp1[z]+ym1[z]) + cy2*(yp2[z]+ym2[z]) +
					cy3*(yp3[z]+ym3[z]) + cy4*(yp4[z]+ym4[z]) +
					cy5*(yp5[z]+ym5[z]) + cy6*(yp6[z]+ym6[z]) +
					cz1*(zp1[z]+zm1[z]) + cz2*(zp2[z]+zm2[z]) +
					cz3*(zp3[z]+zm3[z]) + cz4*(zp4[z]+zm4[z]) +
					cz5*(zp5[z]+zm5[z]) + cz6*(zp6[z]+zm6[z])
				un0[z] = ftz((2*uc[z] - dm1[z]*un0[z] + mdt2[z]*lap) * dp1i[z])
			}
		}
	}
}
