// Shared-model propagator clones for the multi-shot batch engine.
//
// A survey runs N shots over one immutable earth model. Everything derived
// from the model alone — material factor grids, damping/taper profiles, FD
// coefficient tables, receiver supports/masks — is shot-invariant and is
// shared by reference between a template propagator and its clones; only
// the wavefields, the source side of SparseOps and the recording buffers
// are per-clone. Wavefields come from a grid.Pool so the steady state of a
// survey allocates no grid-sized buffers per shot.
//
// Clones must re-run kernel selection: the dispatched kern closures capture
// their receiver, so a copied closure would silently keep updating the
// template's wavefields.
package wave

import "wavetile/internal/grid"

// copyKernelSelection re-dispatches dst to the same kernel variant src uses.
// selectKernel has already installed the default for dst; only an explicit
// divergence (a pinned y2 variant, a forced generic) needs replaying. The
// error is impossible by construction — src dispatched that variant at the
// same radius — but is surfaced as a panic rather than swallowed.
func copyKernelSelection(dst interface{ SetKernelVariant(string) error }, dstKS, srcKS *kernState) {
	if dstKS.variant == srcKS.variant {
		return
	}
	if err := dst.SetKernelVariant(srcKS.variant); err != nil {
		panic("wave: clone cannot dispatch template kernel variant: " + err.Error())
	}
}

// CloneShared returns an acoustic propagator sharing a's model-derived
// state (params, factor grids, FD coefficients, receiver-side sparse
// structures) with fresh pooled wavefields and its own recording buffers.
// The clone has an empty source side; install a SourceBundle before
// running. Safe to run concurrently with other clones of the same template.
func (a *Acoustic) CloneShared(pool *grid.Pool) *Acoustic {
	g := a.P.Geom
	c := &Acoustic{
		P: a.P, SO: a.SO, R: a.R,
		cx: a.cx, cy: a.cy, cz: a.cz, c0: a.c0,
		dm1: a.dm1, dp1i: a.dp1i, mdt2: a.mdt2,
		blockX: a.blockX, blockY: a.blockY,
	}
	c.U[0] = pool.Get(g.Nx, g.Ny, g.Nz, a.R)
	c.U[1] = pool.Get(g.Nx, g.Ny, g.Nz, a.R)
	c.Ops = a.Ops.cloneShared()
	c.selectKernel()
	copyKernelSelection(c, &c.ks, &a.ks)
	return c
}

// ReleaseGrids returns the clone's wavefields to the pool. The propagator
// must not be run afterwards. Shared model grids are never released.
func (a *Acoustic) ReleaseGrids(pool *grid.Pool) {
	pool.Put(a.U[0])
	pool.Put(a.U[1])
	a.U[0], a.U[1] = nil, nil
}

// CloneShared returns a TTI propagator sharing w's model-derived state with
// fresh pooled wavefields; see (*Acoustic).CloneShared.
func (w *TTI) CloneShared(pool *grid.Pool) *TTI {
	g := w.P.Geom
	c := &TTI{
		P: w.P, SO: w.SO, R: w.R,
		c2x: w.c2x, c2y: w.c2y, c2z: w.c2z,
		d1x: w.d1x, d1y: w.d1y, d1z: w.d1z,
		aa: w.aa, bb: w.bb, cc: w.cc, e2: w.e2, sqd: w.sqd,
		dm1: w.dm1, dp1i: w.dp1i, mdt2: w.mdt2,
		blockX: w.blockX, blockY: w.blockY,
	}
	for i := 0; i < 2; i++ {
		c.Pw[i] = pool.Get(g.Nx, g.Ny, g.Nz, w.R)
		c.Qw[i] = pool.Get(g.Nx, g.Ny, g.Nz, w.R)
	}
	c.Ops = w.Ops.cloneShared()
	c.selectKernel()
	copyKernelSelection(c, &c.ks, &w.ks)
	return c
}

// ReleaseGrids returns the clone's wavefields to the pool; see
// (*Acoustic).ReleaseGrids.
func (w *TTI) ReleaseGrids(pool *grid.Pool) {
	for i := 0; i < 2; i++ {
		pool.Put(w.Pw[i])
		pool.Put(w.Qw[i])
		w.Pw[i], w.Qw[i] = nil, nil
	}
}

// CloneShared returns an elastic propagator sharing e's model-derived state
// with fresh pooled wavefields; see (*Acoustic).CloneShared.
func (e *Elastic) CloneShared(pool *grid.Pool) *Elastic {
	g := e.P.Geom
	c := &Elastic{
		P: e.P, SO: e.SO, R: e.R,
		bdt: e.bdt, l2mdt: e.l2mdt, lamdt: e.lamdt, mudt: e.mudt, taper: e.taper,
		cs: e.cs, csx: e.csx, csy: e.csy, csz: e.csz,
		blockX: e.blockX, blockY: e.blockY,
	}
	mk := func() *grid.Grid { return pool.Get(g.Nx, g.Ny, g.Nz, e.R) }
	c.Vx, c.Vy, c.Vz = mk(), mk(), mk()
	c.Txx, c.Tyy, c.Tzz = mk(), mk(), mk()
	c.Txy, c.Txz, c.Tyz = mk(), mk(), mk()
	c.Ops = e.Ops.cloneShared()
	c.selectKernel()
	copyKernelSelection(c, &c.ks, &e.ks)
	return c
}

// ReleaseGrids returns the clone's wavefields to the pool; see
// (*Acoustic).ReleaseGrids.
func (e *Elastic) ReleaseGrids(pool *grid.Pool) {
	for _, f := range []**grid.Grid{&e.Vx, &e.Vy, &e.Vz, &e.Txx, &e.Tyy, &e.Tzz, &e.Txy, &e.Txz, &e.Tyz} {
		pool.Put(*f)
		*f = nil
	}
}
