package wave

// Kernel code generation: the radius-specialized kernels (acoustic_kern.go,
// elastic_kern.go, tti_kern.go) and their dispatch registry
// (kern_registry.go) are emitted by internal/wave/kerngen — run
// `go generate ./internal/wave` (or `make generate`) after changing the
// generator. The generated files are committed; the CI drift gate
// (`make generate-check`) regenerates and fails on any diff.

//go:generate go run ./kerngen -out .
