package wave

import (
	"fmt"
	"math"
	"time"

	"wavetile/internal/fd"
	"wavetile/internal/grid"
	"wavetile/internal/model"
	"wavetile/internal/obs"
	"wavetile/internal/sparse"
	"wavetile/internal/tiling"
)

// TTI is the anisotropic acoustic propagator (§III-B): the pseudo-acoustic
// tilted-transverse-isotropy system used throughout industrial RTM/FWI — a
// coupled pair of scalar PDEs on wavefields p and q,
//
//	m·p_tt = (1+2ε)·H(p) + √(1+2δ)·G_z̄z̄(q)
//	m·q_tt = √(1+2δ)·H(p) + G_z̄z̄(q)
//
// where G_z̄z̄ is the second derivative along the (spatially varying) tilted
// symmetry axis (tilt θ, azimuth φ) and H = Δ − G_z̄z̄. Expanding the
// rotated operator G_z̄z̄ = (a∂x + b∂y + c∂z)² with a = sinθcosφ,
// b = sinθsinφ, c = cosθ yields the three pure and three cross second
// derivatives evaluated by the kernel — the "drastically increased operation
// count" the paper attributes to TTI. Damping follows the acoustic scheme.
type TTI struct {
	P  *model.TTIParams
	SO int
	R  int

	Pw, Qw [2]*grid.Grid // ping-pong wavefields

	c2x, c2y, c2z []float32 // 2nd-derivative coefficients / h²
	d1x, d1y, d1z []float32 // 1st-derivative coefficients / h (cross terms)

	aa, bb, cc      *grid.Grid // rotation direction cosines
	e2, sqd         *grid.Grid // 1+2ε, √(1+2δ)
	dm1, dp1i, mdt2 *grid.Grid

	Ops *SparseOps

	blockX, blockY int
	kern           func(t int, reg grid.Region)
	ks             kernState
}

// TTIOpts configures NewTTI.
type TTIOpts struct {
	Params *model.TTIParams
	SO     int
	Src    *sparse.Points
	SrcWav [][]float32
	Rec    *sparse.Points
	// SincSource selects Kaiser-windowed sinc injection.
	SincSource bool
}

// NewTTI builds the TTI propagator, precomputing rotation fields, update
// factors, and sparse-operator structures. Sources are injected into both p
// and q (as in Devito's TTI examples); receivers measure p.
func NewTTI(o TTIOpts) (*TTI, error) {
	p := o.Params
	g := p.Geom
	if g.Nt <= 0 || g.Dt <= 0 {
		return nil, fmt.Errorf("wave: geometry time axis not set (nt=%d dt=%g)", g.Nt, g.Dt)
	}
	r := fd.Radius(o.SO)
	if p.M.H < r {
		return nil, fmt.Errorf("wave: model halo %d smaller than stencil radius %d", p.M.H, r)
	}
	w := &TTI{P: p, SO: o.SO, R: r, blockX: 8, blockY: 8}
	for i := 0; i < 2; i++ {
		w.Pw[i] = grid.New(g.Nx, g.Ny, g.Nz, r)
		w.Qw[i] = grid.New(g.Nx, g.Ny, g.Nz, r)
	}

	c2 := fd.SecondDeriv(o.SO)
	w.c2x = fd.ToF32(c2, 1/(g.Hx*g.Hx))
	w.c2y = fd.ToF32(c2, 1/(g.Hy*g.Hy))
	w.c2z = fd.ToF32(c2, 1/(g.Hz*g.Hz))
	d1 := fd.FirstDeriv(o.SO)
	w.d1x = fd.ToF32(d1, 1/g.Hx)
	w.d1y = fd.ToF32(d1, 1/g.Hy)
	w.d1z = fd.ToF32(d1, 1/g.Hz)

	w.aa = grid.New(g.Nx, g.Ny, g.Nz, r)
	w.bb = grid.New(g.Nx, g.Ny, g.Nz, r)
	w.cc = grid.New(g.Nx, g.Ny, g.Nz, r)
	w.e2 = grid.New(g.Nx, g.Ny, g.Nz, r)
	w.sqd = grid.New(g.Nx, g.Ny, g.Nz, r)
	w.dm1 = grid.New(g.Nx, g.Ny, g.Nz, r)
	w.dp1i = grid.New(g.Nx, g.Ny, g.Nz, r)
	w.mdt2 = grid.New(g.Nx, g.Ny, g.Nz, r)
	dt := float32(g.Dt)
	w.aa.FillFunc(func(x, y, z int) float32 {
		th, ph := float64(p.Theta.At(x, y, z)), float64(p.Phi.At(x, y, z))
		return float32(math.Sin(th) * math.Cos(ph))
	})
	w.bb.FillFunc(func(x, y, z int) float32 {
		th, ph := float64(p.Theta.At(x, y, z)), float64(p.Phi.At(x, y, z))
		return float32(math.Sin(th) * math.Sin(ph))
	})
	w.cc.FillFunc(func(x, y, z int) float32 {
		return float32(math.Cos(float64(p.Theta.At(x, y, z))))
	})
	w.e2.FillFunc(func(x, y, z int) float32 { return 1 + 2*p.Epsilon.At(x, y, z) })
	w.sqd.FillFunc(func(x, y, z int) float32 {
		return float32(math.Sqrt(float64(1 + 2*p.Delta.At(x, y, z))))
	})
	w.dm1.FillFunc(func(x, y, z int) float32 { return 1 - p.Damp.At(x, y, z)*dt })
	w.dp1i.FillFunc(func(x, y, z int) float32 { return 1 / (1 + p.Damp.At(x, y, z)*dt) })
	w.mdt2.FillFunc(func(x, y, z int) float32 { return dt * dt / p.M.At(x, y, z) })

	scale := func(x, y, z int) float32 { return w.mdt2.At(x, y, z) }
	ops, err := NewSparseOps(g.Nx, g.Ny, g.Nz, g.Hx, g.Hy, g.Hz, g.Nt, o.Src, o.SrcWav, o.Rec, scale, o.SincSource)
	if err != nil {
		return nil, err
	}
	w.Ops = ops
	w.selectKernel()
	return w, nil
}

// --- tiling.Propagator ---

// GridShape returns the tiled (x, y) extents.
func (w *TTI) GridShape() (int, int) { return w.P.Geom.Nx, w.P.Geom.Ny }

// Steps returns the number of timesteps.
func (w *TTI) Steps() int { return w.P.Geom.Nt }

// TimeSkew returns the per-timestep wavefront shift. p and q advance
// simultaneously from time-t data, so the skew is the stencil radius.
func (w *TTI) TimeSkew() int { return w.R }

// MaxPhaseOffset is 0: both fields update in a single phase.
func (w *TTI) MaxPhaseOffset() int { return 0 }

// MinTile returns the dependency margin for legal tiles.
func (w *TTI) MinTile() int { return 2 * w.R }

// SetBlocks fixes the parallel sub-block shape.
func (w *TTI) SetBlocks(bx, by int) { w.blockX, w.blockY = bx, by }

// Step advances p and q from time index t to t+1 on the clamped region.
func (w *TTI) Step(t int, raw grid.Region, fused bool) {
	if w.ks.generic {
		w.ks.noteStep()
	}
	g := w.P.Geom
	reg := raw.Clamp(g.Nx, g.Ny)
	if reg.Empty() {
		return
	}
	w.Ops.setFused(fused)
	pn, qn := w.Pw[(t+1)&1], w.Qw[(t+1)&1]
	if sec := obs.SectionStart(); sec != nil {
		w.stepObserved(sec, t, reg, fused, pn, qn)
		return
	}
	tiling.ForBlocks(reg, w.blockX, w.blockY, func(b grid.Region) {
		w.kern(t, b)
		if fused {
			w.Ops.InjectFused(pn, t, b)
			w.Ops.InjectFused(qn, t, b)
			w.Ops.SampleFused(pn, t, b)
		}
	})
}

// stepObserved is Step's instrumented twin (see Acoustic.stepObserved).
func (w *TTI) stepObserved(sec *obs.Section, t int, reg grid.Region, fused bool, pn, qn *grid.Grid) {
	r := sec.Registry()
	hist := r.Histogram("block_ns")
	tiling.ForBlocksIndexed(reg, w.blockX, w.blockY, func(wk int, b grid.Region) {
		t0 := time.Now()
		w.kern(t, b)
		sec.Observe(obs.PhaseStencil, wk, t0)
		if fused {
			t1 := time.Now()
			w.Ops.InjectFused(pn, t, b)
			w.Ops.InjectFused(qn, t, b)
			sec.Observe(obs.PhaseInject, wk, t1)
			t2 := time.Now()
			w.Ops.SampleFused(pn, t, b)
			sec.Observe(obs.PhaseSample, wk, t2)
		}
		hist.Observe(time.Since(t0))
	})
	r.AddStep(int64(reg.NumPoints()) * int64(w.P.Geom.Nz))
	sec.End()
}

// ApplySparse runs the Listing-1 baseline sparse operators.
func (w *TTI) ApplySparse(t int) {
	pn, qn := w.Pw[(t+1)&1], w.Qw[(t+1)&1]
	w.Ops.InjectBaseline(pn, t)
	// The q field receives the same injection; replay it via the direct
	// path (fused flag toggling is handled inside InjectBaseline).
	sparseInjectInto(qn, w.Ops, t)
	w.Ops.InterpolateBaseline(pn, t)
}

// sparseInjectInto repeats the baseline injection into a second field,
// honouring the per-timestep supports of moving sources (whose static
// SrcSup is empty).
func sparseInjectInto(u *grid.Grid, ops *SparseOps, t int) {
	if ops.SrcSupByStep != nil {
		sparse.Inject(u, ops.SrcSupByStep[t], ops.wavAt(t), ops.scale)
		return
	}
	if len(ops.SrcSup) == 0 {
		return
	}
	sparse.Inject(u, ops.SrcSup, ops.wavAt(t), ops.scale)
}

// --- inspection & lifecycle ---

// WavefieldP returns the p grid holding time index t values.
func (w *TTI) WavefieldP(t int) *grid.Grid { return w.Pw[t&1] }

// Fields returns all wavefield buffers for whole-state comparison.
func (w *TTI) Fields() map[string]*grid.Grid {
	return map[string]*grid.Grid{
		"p0": w.Pw[0], "p1": w.Pw[1],
		"q0": w.Qw[0], "q1": w.Qw[1],
	}
}

// Reset zeroes all run state.
func (w *TTI) Reset() {
	for i := 0; i < 2; i++ {
		w.Pw[i].Zero()
		w.Qw[i].Zero()
	}
	w.Ops.Reset()
}

// FlopsPerPoint returns the per-point operation count (roofline model).
func (w *TTI) FlopsPerPoint() int {
	r := w.R
	pure := 3 * (4*r + 1)    // xx, yy, zz per field
	cross := 3 * (6*r*r + 1) // xy, xz, yz per field
	return 2*(pure+cross) + 30
}

// PointsPerStep returns the grid points updated per timestep (both fields).
func (w *TTI) PointsPerStep() int {
	g := w.P.Geom
	return g.Nx * g.Ny * g.Nz
}

// kernelGeneric evaluates the coupled rotated-Laplacian update on reg for
// any radius; the generated kernels specialize it per radius.
func (w *TTI) kernelGeneric(t int, reg grid.Region) {
	p := w.Pw[t&1]
	pn := w.Pw[(t+1)&1]
	q := w.Qw[t&1]
	qn := w.Qw[(t+1)&1]
	nz := p.Nz
	sx, sy := p.SX, p.SY
	pd, pnd, qd, qnd := p.Data, pn.Data, q.Data, qn.Data
	aa, bb, cc := w.aa.Data, w.bb.Data, w.cc.Data
	e2, sqd := w.e2.Data, w.sqd.Data
	dm1, dp1i, mdt2 := w.dm1.Data, w.dp1i.Data, w.mdt2.Data
	r := w.R
	c2x, c2y, c2z := w.c2x, w.c2y, w.c2z
	d1x, d1y, d1z := w.d1x, w.d1y, w.d1z

	// secondDerivs accumulates the three pure second derivatives of f at i.
	secondDerivs := func(f []float32, i int) (xx, yy, zz float32) {
		xx = c2x[0] * f[i]
		yy = c2y[0] * f[i]
		zz = c2z[0] * f[i]
		for k := 1; k <= r; k++ {
			xx += c2x[k] * (f[i+k*sx] + f[i-k*sx])
			yy += c2y[k] * (f[i+k*sy] + f[i-k*sy])
			zz += c2z[k] * (f[i+k] + f[i-k])
		}
		return xx, yy, zz
	}
	// cross accumulates the mixed derivative of f along strides s1, s2 with
	// coefficient tables ca, cb.
	cross := func(f []float32, i int, ca, cb []float32, s1, s2 int) float32 {
		var acc float32
		for ki := 1; ki <= r; ki++ {
			a1 := i + ki*s1
			a2 := i - ki*s1
			var inner float32
			for kj := 1; kj <= r; kj++ {
				inner += cb[kj] * (f[a1+kj*s2] - f[a1-kj*s2] - f[a2+kj*s2] + f[a2-kj*s2])
			}
			acc += ca[ki] * inner
		}
		return acc
	}
	gzz := func(f []float32, i int, a, b, c float32) float32 {
		xx, yy, zz := secondDerivs(f, i)
		g := a*a*xx + b*b*yy + c*c*zz
		g += 2 * a * b * cross(f, i, d1x, d1y, sx, sy)
		g += 2 * a * c * cross(f, i, d1x, d1z, sx, 1)
		g += 2 * b * c * cross(f, i, d1y, d1z, sy, 1)
		return g
	}

	for x := reg.X0; x < reg.X1; x++ {
		for y := reg.Y0; y < reg.Y1; y++ {
			base := p.Idx(x, y, 0)
			for z := 0; z < nz; z++ {
				i := base + z
				a, b, c := aa[i], bb[i], cc[i]
				pxx, pyy, pzz := secondDerivs(pd, i)
				gzzP := a*a*pxx + b*b*pyy + c*c*pzz +
					2*a*b*cross(pd, i, d1x, d1y, sx, sy) +
					2*a*c*cross(pd, i, d1x, d1z, sx, 1) +
					2*b*c*cross(pd, i, d1y, d1z, sy, 1)
				hp := (pxx + pyy + pzz) - gzzP
				gzzQ := gzz(qd, i, a, b, c)
				pnd[i] = ftz((2*pd[i] - dm1[i]*pnd[i] + mdt2[i]*(e2[i]*hp+sqd[i]*gzzQ)) * dp1i[i])
				qnd[i] = ftz((2*qd[i] - dm1[i]*qnd[i] + mdt2[i]*(sqd[i]*hp+gzzQ)) * dp1i[i])
			}
		}
	}
}
