package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"wavetile/internal/grid"
)

func TestTrilinearOnGridPoint(t *testing.T) {
	// A coordinate exactly on a grid point puts all weight there.
	s, err := Trilinear(Coord{20, 30, 40}, 8, 8, 8, 10, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for i := 0; i < 8; i++ {
		total += s.W[i]
		if s.W[i] > 0.999 {
			if s.X[i] != 2 || s.Y[i] != 3 || s.Z[i] != 4 {
				t.Fatalf("weight on wrong corner (%d,%d,%d)", s.X[i], s.Y[i], s.Z[i])
			}
		}
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("weights sum %g", total)
	}
}

func TestTrilinearMidpoint(t *testing.T) {
	s, err := Trilinear(Coord{15, 15, 15}, 8, 8, 8, 10, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if math.Abs(s.W[i]-0.125) > 1e-12 {
			t.Fatalf("corner %d weight %g, want 0.125", i, s.W[i])
		}
	}
}

func TestTrilinearPartitionOfUnityProperty(t *testing.T) {
	f := func(ux, uy, uz uint16) bool {
		nx, ny, nz := 12, 9, 15
		h := 7.5
		c := Coord{
			float64(ux) / 65535 * float64(nx-1) * h,
			float64(uy) / 65535 * float64(ny-1) * h,
			float64(uz) / 65535 * float64(nz-1) * h,
		}
		s, err := Trilinear(c, nx, ny, nz, h, h, h)
		if err != nil {
			return false
		}
		total := 0.0
		for i := 0; i < 8; i++ {
			total += s.W[i]
			if s.W[i] < -1e-12 {
				return false
			}
			if s.X[i] < 0 || int(s.X[i]) >= nx || s.Y[i] < 0 || int(s.Y[i]) >= ny || s.Z[i] < 0 || int(s.Z[i]) >= nz {
				return false
			}
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTrilinearReproducesLinearFields(t *testing.T) {
	// Interpolating a linear function of space is exact.
	nx, ny, nz, h := 6, 6, 6, 5.0
	u := grid.New(nx, ny, nz, 0)
	lin := func(x, y, z float64) float64 { return 3 + 2*x - y + 0.5*z }
	u.FillFunc(func(x, y, z int) float32 {
		return float32(lin(float64(x)*h, float64(y)*h, float64(z)*h))
	})
	pts := &Points{Coords: []Coord{{7.3, 11.9, 20.01}, {0, 0, 0}, {25, 25, 25}}}
	sup, err := pts.Supports(nx, ny, nz, h, h, h)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float32, pts.N())
	Interpolate(u, sup, out)
	for i, c := range pts.Coords {
		want := lin(c[0], c[1], c[2])
		if math.Abs(float64(out[i])-want) > 1e-4 {
			t.Fatalf("point %d: got %g want %g", i, out[i], want)
		}
	}
}

func TestTrilinearOutOfHull(t *testing.T) {
	for _, c := range []Coord{{-1, 0, 0}, {0, 71, 0}, {0, 0, 1e9}} {
		if _, err := Trilinear(c, 8, 8, 8, 10, 10, 10); err == nil {
			t.Fatalf("coordinate %v accepted", c)
		}
	}
	if _, err := Trilinear(Coord{1, 1, 1}, 8, 8, 8, 0, 10, 10); err == nil {
		t.Fatal("zero spacing accepted")
	}
}

func TestTrilinearFarFace(t *testing.T) {
	// Exactly on the far face must not index out of bounds.
	s, err := Trilinear(Coord{70, 70, 70}, 8, 8, 8, 10, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := 0; i < 8; i++ {
		if s.X[i] > 7 || s.Y[i] > 7 || s.Z[i] > 7 {
			t.Fatalf("corner out of range (%d,%d,%d)", s.X[i], s.Y[i], s.Z[i])
		}
		sum += s.W[i]
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum %g", sum)
	}
}

func TestInjectScatter(t *testing.T) {
	nx := 6
	u := grid.New(nx, nx, nx, 2)
	pts := &Points{Coords: []Coord{{12.5, 20, 30}}}
	sup, err := pts.Supports(nx, nx, nx, 10, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	Inject(u, sup, []float32{4}, func(x, y, z int) float32 { return 2 })
	// Total injected mass = amp · scale · Σw = 4·2·1 = 8.
	total := 0.0
	for _, v := range u.Data {
		total += float64(v)
	}
	if math.Abs(total-8) > 1e-5 {
		t.Fatalf("total injected %g, want 8", total)
	}
	// Off-grid only in x (12.5 → frac 0.25): corner (1,2,3) gets 0.75·4·2=6,
	// corner (2,2,3) gets 0.25·4·2=2.
	if math.Abs(float64(u.At(1, 2, 3))-6) > 1e-5 || math.Abs(float64(u.At(2, 2, 3))-2) > 1e-5 {
		t.Fatalf("scatter wrong: %g %g", u.At(1, 2, 3), u.At(2, 2, 3))
	}
}

func TestInjectInterpolateAdjointPairing(t *testing.T) {
	// <Inject(e_s), u> == <e_s, Interpolate(u)> for unit scale: injection and
	// interpolation use the same weights.
	nx, h := 7, 10.0
	u := grid.New(nx, nx, nx, 0)
	u.FillFunc(func(x, y, z int) float32 { return float32(x + 2*y + 3*z) })
	pts := &Points{Coords: []Coord{{13.7, 25.2, 31.9}}}
	sup, _ := pts.Supports(nx, nx, nx, h, h, h)

	out := make([]float32, 1)
	Interpolate(u, sup, out)

	v := grid.New(nx, nx, nx, 0)
	Inject(v, sup, []float32{1}, func(x, y, z int) float32 { return 1 })
	dot := 0.0
	for x := 0; x < nx; x++ {
		for y := 0; y < nx; y++ {
			a, b := u.Row(x, y), v.Row(x, y)
			for z := range a {
				dot += float64(a[z]) * float64(b[z])
			}
		}
	}
	if math.Abs(dot-float64(out[0])) > 1e-4 {
		t.Fatalf("adjoint pairing broken: %g vs %g", dot, out[0])
	}
}

func TestGenerators(t *testing.T) {
	p := PlaneSlice(50, 123, 0, 100, 0, 200)
	if p.N() != 50 {
		t.Fatalf("PlaneSlice N=%d", p.N())
	}
	seen := map[Coord]bool{}
	for _, c := range p.Coords {
		if c[2] != 123 {
			t.Fatalf("plane point off plane: %v", c)
		}
		if c[0] < 0 || c[0] > 100 || c[1] < 0 || c[1] > 200 {
			t.Fatalf("point outside box: %v", c)
		}
		if seen[c] {
			t.Fatalf("duplicate point %v", c)
		}
		seen[c] = true
	}

	d := DenseVolume(64, 0, 10, 0, 10, 0, 10)
	if d.N() != 64 {
		t.Fatalf("DenseVolume N=%d", d.N())
	}
	for _, c := range d.Coords {
		for k := 0; k < 3; k++ {
			if c[k] < 0 || c[k] > 10 {
				t.Fatalf("point outside volume: %v", c)
			}
		}
	}

	l := Line(5, Coord{0, 0, 0}, Coord{4, 8, 12})
	if l.Coords[0] != (Coord{0, 0, 0}) || l.Coords[4] != (Coord{4, 8, 12}) {
		t.Fatalf("line endpoints wrong: %v", l.Coords)
	}
	if l.Coords[2] != (Coord{2, 4, 6}) {
		t.Fatalf("line midpoint wrong: %v", l.Coords[2])
	}
	if Line(1, Coord{1, 1, 1}, Coord{3, 3, 3}).Coords[0] != (Coord{2, 2, 2}) {
		t.Fatal("single-point line not at midpoint")
	}
}

func TestHaltonLowDiscrepancy(t *testing.T) {
	// First Halton(base 2) values are 1/2, 1/4, 3/4, 1/8, ...
	want := []float64{0.5, 0.25, 0.75, 0.125, 0.625}
	for i, w := range want {
		if got := halton(i, 2); math.Abs(got-w) > 1e-14 {
			t.Fatalf("halton(%d,2) = %g, want %g", i, got, w)
		}
	}
}
