// Package sparse implements the off-the-grid operators of the paper: sets of
// sparsely located points (sources and receivers) that are not aligned with
// the computational grid, together with the interpolation machinery that
// scatters a source's wavelet onto neighbouring grid points (injection) and
// gathers a receiver's measurement from neighbouring grid points
// (interpolation). See Fig. 3 of the paper.
//
// The package also contains the baseline execution path — the unfused,
// per-timestep loop over sources/receivers of Listing 1 — against which the
// precomputation scheme of internal/core is validated and benchmarked.
package sparse

import (
	"fmt"
	"math"

	"wavetile/internal/grid"
)

// Coord is a physical-space coordinate (same units as the grid spacing).
type Coord [3]float64

// Points is a set of off-the-grid positions.
type Points struct {
	Coords []Coord
}

// N returns the number of points in the set.
func (p *Points) N() int { return len(p.Coords) }

// Support is the grid-aligned footprint of one off-the-grid point: the
// neighbouring grid points it scatters to / gathers from, with the linear
// interpolation weights of Fig. 3. With trilinear interpolation np = 8
// (degenerating to fewer distinct points when a coordinate sits exactly on
// the grid, in which case zero-weight corners are kept for a fixed np).
type Support struct {
	// X, Y, Z are the grid coordinates of the corner points, W the weights.
	X, Y, Z [8]int32
	W       [8]float64
}

// Trilinear computes the 8-point support of physical coordinate c on a grid
// with the given spacing. The grid point (i,j,k) sits at physical
// (i·hx, j·hy, k·hz). Coordinates must fall inside the hull of the interior
// grid: 0 ≤ c[d] ≤ (n_d−1)·h_d; out-of-hull coordinates return an error so
// that misplaced sources fail loudly rather than silently clamping.
func Trilinear(c Coord, nx, ny, nz int, hx, hy, hz float64) (Support, error) {
	var s Support
	dims := [3]int{nx, ny, nz}
	h := [3]float64{hx, hy, hz}
	var base [3]int
	var frac [3]float64
	for d := 0; d < 3; d++ {
		if h[d] <= 0 {
			return s, fmt.Errorf("sparse: non-positive spacing %g in dim %d", h[d], d)
		}
		u := c[d] / h[d]
		// The NaN guard must be explicit: NaN compares false against both
		// hull bounds below and would otherwise flow into Floor/int and
		// produce a wild grid index instead of an error.
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return s, fmt.Errorf("sparse: non-finite coordinate %g in dim %d", c[d], d)
		}
		if u < 0 || u > float64(dims[d]-1) {
			return s, fmt.Errorf("sparse: coordinate %g out of hull [0, %g] in dim %d",
				c[d], float64(dims[d]-1)*h[d], d)
		}
		i := int(math.Floor(u))
		if i > dims[d]-2 { // c exactly on the far face
			i = dims[d] - 2
		}
		if dims[d] == 1 {
			i = 0
		}
		base[d] = i
		frac[d] = u - float64(i)
	}
	n := 0
	for dx := 0; dx < 2; dx++ {
		wx := 1 - frac[0]
		if dx == 1 {
			wx = frac[0]
		}
		for dy := 0; dy < 2; dy++ {
			wy := 1 - frac[1]
			if dy == 1 {
				wy = frac[1]
			}
			for dz := 0; dz < 2; dz++ {
				wz := 1 - frac[2]
				if dz == 1 {
					wz = frac[2]
				}
				s.X[n] = int32(min(base[0]+dx, nx-1))
				s.Y[n] = int32(min(base[1]+dy, ny-1))
				s.Z[n] = int32(min(base[2]+dz, nz-1))
				s.W[n] = wx * wy * wz
				n++
			}
		}
	}
	return s, nil
}

// Supports computes the interpolation support of every point in the set.
func (p *Points) Supports(nx, ny, nz int, hx, hy, hz float64) ([]Support, error) {
	out := make([]Support, p.N())
	for i, c := range p.Coords {
		s, err := Trilinear(c, nx, ny, nz, hx, hy, hz)
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}

// ScaleFunc returns a per-grid-point scale factor applied to injected
// amplitudes (e.g. dt²/m(x) for the acoustic propagators, matching Devito's
// src.inject(expr=src*dt²/m)).
type ScaleFunc func(x, y, z int) float32

// Inject performs the baseline off-the-grid source injection of Listing 1
// for one timestep: for every source s and every supporting grid point i,
//
//	u[xs,ys,zs] += w_i · wavelets[s] · scale(xs,ys,zs)
//
// wavelets holds the amplitude of each source at this timestep.
func Inject(u *grid.Grid, sup []Support, wavelets []float32, scale ScaleFunc) {
	for s := range sup {
		amp := wavelets[s]
		sp := &sup[s]
		for i := 0; i < 8; i++ {
			x, y, z := int(sp.X[i]), int(sp.Y[i]), int(sp.Z[i])
			u.Data[u.Idx(x, y, z)] += float32(sp.W[i]) * amp * scale(x, y, z)
		}
	}
}

// Interpolate performs the baseline receiver measurement of Listing 1 for
// one timestep: out[r] = Σ_i w_i · u[x_i,y_i,z_i] for every receiver r.
func Interpolate(u *grid.Grid, sup []Support, out []float32) {
	for r := range sup {
		sp := &sup[r]
		acc := 0.0
		for i := 0; i < 8; i++ {
			acc += sp.W[i] * float64(u.At(int(sp.X[i]), int(sp.Y[i]), int(sp.Z[i])))
		}
		out[r] = float32(acc)
	}
}
