package sparse

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBesselI0(t *testing.T) {
	// Reference values (Abramowitz & Stegun).
	cases := map[float64]float64{
		0: 1, 1: 1.2660658777520084, 2: 2.2795853023360673, 5: 27.239871823604442,
	}
	for x, want := range cases {
		if got := besselI0(x); math.Abs(got-want)/want > 1e-12 {
			t.Fatalf("I0(%g) = %.15g, want %.15g", x, got, want)
		}
	}
}

func TestKaiserSincOnGridPoint(t *testing.T) {
	// At integer offsets the sinc is 0 except at the origin where it is 1:
	// a source exactly on a grid point injects only there.
	if w := kaiserSinc(0); math.Abs(w-1) > 1e-12 {
		t.Fatalf("center weight %g", w)
	}
	for d := 1; d < SincRadius; d++ {
		if w := kaiserSinc(float64(d)); math.Abs(w) > 1e-12 {
			t.Fatalf("integer offset %d weight %g", d, w)
		}
	}
	if kaiserSinc(SincRadius) != 0 || kaiserSinc(-SincRadius) != 0 {
		t.Fatal("support not compact")
	}
}

func TestSincSupportNormalization(t *testing.T) {
	// Windowed-sinc weights sum to ≈1 for any sub-cell position (the window
	// perturbs the partition of unity only slightly).
	f := func(fx, fy, fz uint16) bool {
		n, h := 24, 10.0
		c := Coord{
			(8 + float64(fx)/65536) * h,
			(9 + float64(fy)/65536) * h,
			(10 + float64(fz)/65536) * h,
		}
		ws, err := SincSupport(c, n, n, n, h, h, h)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, w := range ws.W {
			sum += w
		}
		return math.Abs(sum-1) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSincSupportBoundaryRejected(t *testing.T) {
	n, h := 24, 10.0
	for _, c := range []Coord{{5, 120, 120}, {120, 120, 225}} {
		if _, err := SincSupport(c, n, n, n, h, h, h); err == nil {
			t.Fatalf("near-boundary coordinate %v accepted", c)
		}
	}
}

func TestSincReproducesSmoothField(t *testing.T) {
	// Gathering a band-limited (smooth) field with the sinc weights is far
	// more accurate than trilinear interpolation of a curved function.
	n, h := 32, 10.0
	field := func(x, y, z float64) float64 {
		return math.Sin(x/80) * math.Cos(y/70) * math.Sin(z/90)
	}
	c := Coord{153.7, 161.2, 148.9}
	ws, err := SincSupport(c, n, n, n, h, h, h)
	if err != nil {
		t.Fatal(err)
	}
	acc := 0.0
	for i, w := range ws.W {
		acc += w * field(float64(ws.X[i])*h, float64(ws.Y[i])*h, float64(ws.Z[i])*h)
	}
	want := field(c[0], c[1], c[2])
	if math.Abs(acc-want) > 1e-3*math.Abs(want) {
		t.Fatalf("sinc gather %g, want %g", acc, want)
	}
}

func TestAsSupportsPreservesWeights(t *testing.T) {
	n, h := 24, 10.0
	ws, err := SincSupport(Coord{83.7, 91.2, 88.9}, n, n, n, h, h, h)
	if err != nil {
		t.Fatal(err)
	}
	groups := ws.AsSupports()
	if len(groups) != (2*SincRadius)*(2*SincRadius)*(2*SincRadius)/8 {
		t.Fatalf("%d groups", len(groups))
	}
	sumWide, sumGroups := 0.0, 0.0
	for _, w := range ws.W {
		sumWide += w
	}
	for _, g := range groups {
		for _, w := range g.W {
			sumGroups += w
		}
	}
	if math.Abs(sumWide-sumGroups) > 1e-12 {
		t.Fatalf("weight mass changed: %g vs %g", sumWide, sumGroups)
	}
}

func TestSincSupportsSet(t *testing.T) {
	n, h := 32, 10.0
	pts := &Points{Coords: []Coord{{153.7, 161.2, 148.9}, {101.1, 99.9, 150.0}}}
	sup, per, err := pts.SincSupports(n, n, n, h, h, h)
	if err != nil {
		t.Fatal(err)
	}
	if per != 64 || len(sup) != 128 {
		t.Fatalf("per=%d len=%d", per, len(sup))
	}
}
