package sparse

import "math"

// The generators below build the source layouts of the paper's evaluation:
// a single localized source (§IV-B), an increasing number of sources spread
// over an x–y plane slice of the 3-D grid, and sources densely and uniformly
// located all over the 3-D grid (§IV-E, Fig. 10). Placement is deterministic
// — a Halton low-discrepancy sequence — so every benchmark run sees the same
// geometry, while the fractional offsets keep every point genuinely
// off-the-grid.

// halton returns element i of the Halton sequence with the given base.
func halton(i int, base float64) float64 {
	f, r := 1.0, 0.0
	for n := float64(i + 1); n > 0; n = math.Floor(n / base) {
		f /= base
		r += f * math.Mod(n, base)
	}
	return r
}

// Single returns a one-point set at the given coordinate.
func Single(c Coord) *Points { return &Points{Coords: []Coord{c}} }

// PlaneSlice places n points quasi-uniformly over the x–y plane z = zpos,
// inside the box [lo, hi] in x and y. This is the paper's "increasing number
// of sources located at an x-y plane slice" corner case.
func PlaneSlice(n int, zpos, loX, hiX, loY, hiY float64) *Points {
	p := &Points{Coords: make([]Coord, n)}
	for i := 0; i < n; i++ {
		p.Coords[i] = Coord{
			loX + halton(i, 2)*(hiX-loX),
			loY + halton(i, 3)*(hiY-loY),
			zpos,
		}
	}
	return p
}

// DenseVolume places n points quasi-uniformly over the 3-D box
// [lo, hi]³ — the paper's "densely and uniformly located all over the 3D
// grid" corner case.
func DenseVolume(n int, loX, hiX, loY, hiY, loZ, hiZ float64) *Points {
	p := &Points{Coords: make([]Coord, n)}
	for i := 0; i < n; i++ {
		p.Coords[i] = Coord{
			loX + halton(i, 2)*(hiX-loX),
			loY + halton(i, 3)*(hiY-loY),
			loZ + halton(i, 5)*(hiZ-loZ),
		}
	}
	return p
}

// Line places n points evenly along the segment a→b (receiver cables and
// cross-well arrays in the examples).
func Line(n int, a, b Coord) *Points {
	p := &Points{Coords: make([]Coord, n)}
	for i := 0; i < n; i++ {
		t := 0.5
		if n > 1 {
			t = float64(i) / float64(n-1)
		}
		p.Coords[i] = Coord{
			a[0] + t*(b[0]-a[0]),
			a[1] + t*(b[1]-a[1]),
			a[2] + t*(b[2]-a[2]),
		}
	}
	return p
}
