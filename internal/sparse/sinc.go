package sparse

import (
	"fmt"
	"math"
)

// Higher-order "off-the-grid" interpolation: Kaiser-windowed sinc (Hicks,
// Geophysics 2002), the standard in seismic modelling when trilinear hat
// functions are too dispersive. The paper's scheme is "independent of the
// injection and interpolation type (e.g., non-linear injection)" — this
// implementation exercises that claim: a sinc support spans (2·SincRadius)³
// grid points instead of 8, and flows through the same mask/decompose/fuse
// pipeline.

// SincRadius is the support half-width in grid points per dimension.
const SincRadius = 4

// kaiserB is the Kaiser window shape parameter recommended by Hicks for
// r = 4 monopole sources.
const kaiserB = 6.31

// WideSupport is the grid-aligned footprint of one off-the-grid point under
// windowed-sinc interpolation: (2·SincRadius)³ points with their weights.
type WideSupport struct {
	X, Y, Z []int32
	W       []float64
}

// besselI0 evaluates the modified Bessel function of order zero (series
// expansion; converges quickly for the argument range of Kaiser windows).
func besselI0(x float64) float64 {
	sum, term := 1.0, 1.0
	half := x / 2
	for k := 1; k < 32; k++ {
		term *= (half / float64(k)) * (half / float64(k))
		sum += term
		if term < 1e-16*sum {
			break
		}
	}
	return sum
}

// kaiserSinc evaluates the windowed-sinc weight at offset d (grid units,
// |d| ≤ SincRadius).
func kaiserSinc(d float64) float64 {
	r := float64(SincRadius)
	if d <= -r || d >= r {
		return 0
	}
	sinc := 1.0
	if d != 0 {
		sinc = math.Sin(math.Pi*d) / (math.Pi * d)
	}
	w := besselI0(kaiserB*math.Sqrt(1-(d/r)*(d/r))) / besselI0(kaiserB)
	return sinc * w
}

// SincSupport computes the windowed-sinc support of physical coordinate c.
// The coordinate must sit at least SincRadius points inside the grid hull
// so the support does not spill out (in practice sources live inside the
// absorbing layers, which are much wider).
func SincSupport(c Coord, nx, ny, nz int, hx, hy, hz float64) (WideSupport, error) {
	var s WideSupport
	dims := [3]int{nx, ny, nz}
	h := [3]float64{hx, hy, hz}
	var base [3]int
	var frac [3]float64
	for d := 0; d < 3; d++ {
		if h[d] <= 0 {
			return s, fmt.Errorf("sparse: non-positive spacing %g in dim %d", h[d], d)
		}
		u := c[d] / h[d]
		// NaN compares false against both bounds below; reject it explicitly
		// so a corrupt coordinate errors instead of indexing wildly.
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return s, fmt.Errorf("sparse: non-finite coordinate %g in dim %d", c[d], d)
		}
		if u < float64(SincRadius-1) || u >= float64(dims[d]-SincRadius) {
			return s, fmt.Errorf("sparse: coordinate %g too close to the boundary for sinc radius %d (dim %d)",
				c[d], SincRadius, d)
		}
		base[d] = int(math.Floor(u))
		frac[d] = u - float64(base[d])
	}
	// Per-dimension weights at offsets −(R−1)…R around the base point.
	var wx, wy, wz [2 * SincRadius]float64
	for k := 0; k < 2*SincRadius; k++ {
		off := float64(k - (SincRadius - 1))
		wx[k] = kaiserSinc(off - frac[0])
		wy[k] = kaiserSinc(off - frac[1])
		wz[k] = kaiserSinc(off - frac[2])
	}
	n := 2 * SincRadius
	s.X = make([]int32, 0, n*n*n)
	s.Y = make([]int32, 0, n*n*n)
	s.Z = make([]int32, 0, n*n*n)
	s.W = make([]float64, 0, n*n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				s.X = append(s.X, int32(base[0]+i-(SincRadius-1)))
				s.Y = append(s.Y, int32(base[1]+j-(SincRadius-1)))
				s.Z = append(s.Z, int32(base[2]+k-(SincRadius-1)))
				s.W = append(s.W, wx[i]*wy[j]*wz[k])
			}
		}
	}
	return s, nil
}

// AsSupports converts a wide support into the 8-point Support records the
// mask/decompose pipeline consumes, packing corners in groups of eight
// (zero-weight padding completes the last group). This keeps the
// precomputation scheme oblivious to the interpolation order, exactly as
// the paper claims.
func (s WideSupport) AsSupports() []Support {
	var out []Support
	for i := 0; i < len(s.W); i += 8 {
		var sup Support
		for j := 0; j < 8; j++ {
			if i+j < len(s.W) {
				sup.X[j], sup.Y[j], sup.Z[j] = s.X[i+j], s.Y[i+j], s.Z[i+j]
				sup.W[j] = s.W[i+j]
			} else {
				// Pad with a repeat of the first point at zero weight.
				sup.X[j], sup.Y[j], sup.Z[j] = s.X[i], s.Y[i], s.Z[i]
			}
		}
		out = append(out, sup)
	}
	return out
}

// SincSupports computes wide supports for a whole point set and flattens
// them into Support groups, returning also the group count per point (all
// equal; callers replicating wavelets need it).
func (p *Points) SincSupports(nx, ny, nz int, hx, hy, hz float64) ([]Support, int, error) {
	var out []Support
	per := 0
	for i, c := range p.Coords {
		ws, err := SincSupport(c, nx, ny, nz, hx, hy, hz)
		if err != nil {
			return nil, 0, fmt.Errorf("point %d: %w", i, err)
		}
		groups := ws.AsSupports()
		if per == 0 {
			per = len(groups)
		}
		out = append(out, groups...)
	}
	return out, per, nil
}
