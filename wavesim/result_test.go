package wavesim

import (
	"math"
	"testing"
	"time"

	"wavetile/internal/obs"
)

// TestNewResultZeroElapsed asserts degenerate runs produce well-defined
// results: no NaN/Inf throughput for zero elapsed time or zero points.
func TestNewResultZeroElapsed(t *testing.T) {
	cases := []struct {
		elapsed time.Duration
		points  int64
	}{
		{0, 1000},
		{time.Second, 0},
		{0, 0},
		{-time.Second, 1000},
		{time.Nanosecond, 1 << 50},
	}
	for _, c := range cases {
		res := newResult("spatial", c.elapsed, c.points)
		if math.IsNaN(res.GPointsPerSec) || math.IsInf(res.GPointsPerSec, 0) {
			t.Fatalf("elapsed=%v points=%d: GPointsPerSec = %v", c.elapsed, c.points, res.GPointsPerSec)
		}
		if (c.elapsed <= 0 || c.points <= 0) && res.GPointsPerSec != 0 {
			t.Fatalf("elapsed=%v points=%d: GPointsPerSec = %v, want 0", c.elapsed, c.points, res.GPointsPerSec)
		}
		if res.Points != c.points || res.Elapsed != c.elapsed {
			t.Fatal("fields not carried through")
		}
	}
	if g := newResult("wtb", time.Second, 2e9).GPointsPerSec; math.Abs(g-2) > 1e-9 {
		t.Fatalf("sane run throughput = %v, want 2", g)
	}
}

// observedSim builds a small acoustic simulation with Observe enabled.
func observedSim(t *testing.T) *Simulation {
	t.Helper()
	sim, err := New(Options{
		Physics:    Acoustic,
		SpaceOrder: 4,
		Shape:      [3]int{48, 48, 48},
		Spacing:    [3]float64{10, 10, 10},
		NBL:        6,
		Steps:      8,
		Vp:         Homogeneous(2000),
		Sources:    []Coord{{235, 235, 100}},
		Receivers:  LineCoords(8, Coord{100, 235, 80}, Coord{380, 235, 80}),
		Observe:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestObservedPhasesSumToElapsed runs both schedules with Observe set and
// asserts the phase breakdown exists, sums to Elapsed (the "overhead"
// residual closes the budget), and counts every grid point exactly once —
// the temporal-blocking correctness invariant made visible by obs.
func TestObservedPhasesSumToElapsed(t *testing.T) {
	sim := observedSim(t)
	shape, _, _, nt := sim.Geometry()
	wantPoints := int64(shape[0]) * int64(shape[1]) * int64(shape[2]) * int64(nt)

	for _, sched := range []Schedule{
		Spatial{BlockX: 8, BlockY: 8},
		WTB{TimeTile: 4, TileX: 16, TileY: 16, BlockX: 8, BlockY: 8},
	} {
		res, err := sim.Run(sched)
		if err != nil {
			t.Fatal(err)
		}
		if res.Phases == nil || res.Counters == nil {
			t.Fatalf("%s: no observability data on Result", res.Schedule)
		}
		var sum time.Duration
		for name, d := range res.Phases {
			if d < 0 {
				t.Fatalf("%s: negative phase %s = %v", res.Schedule, name, d)
			}
			sum += d
		}
		// The residual construction makes the sum match Elapsed up to
		// attribution rounding — well inside the 10% acceptance budget.
		if diff := (sum - res.Elapsed).Abs(); diff > res.Elapsed/10+time.Millisecond {
			t.Fatalf("%s: phases sum %v vs elapsed %v", res.Schedule, sum, res.Elapsed)
		}
		if res.Phases["stencil"] <= 0 {
			t.Fatalf("%s: stencil phase not measured: %v", res.Schedule, res.Phases)
		}
		if got := res.Counters["points"]; got != wantPoints {
			t.Fatalf("%s: points counter = %d, want %d (each point exactly once)",
				res.Schedule, got, wantPoints)
		}
	}
}

// TestObserveOffLeavesResultBare asserts the default path attaches nothing.
func TestObserveOffLeavesResultBare(t *testing.T) {
	sim, err := New(Options{
		Physics:    Acoustic,
		SpaceOrder: 4,
		Shape:      [3]int{32, 32, 32},
		Spacing:    [3]float64{10, 10, 10},
		Steps:      2,
		Vp:         Homogeneous(2000),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(Spatial{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases != nil || res.Counters != nil {
		t.Fatal("observability data attached without Observe")
	}
}

// TestObservedRunsStayBitwiseIdentical guards the core paper invariant
// under instrumentation: observed and unobserved runs, spatial and WTB,
// produce identical receiver data.
func TestObservedRunsStayBitwiseIdentical(t *testing.T) {
	mk := func(observe bool) *Simulation {
		sim, err := New(Options{
			Physics:    Acoustic,
			SpaceOrder: 4,
			Shape:      [3]int{40, 40, 40},
			Spacing:    [3]float64{10, 10, 10},
			NBL:        6,
			Steps:      6,
			Vp:         Homogeneous(2000),
			Sources:    []Coord{{195, 195, 100}},
			Receivers:  LineCoords(6, Coord{100, 195, 80}, Coord{300, 195, 80}),
			Observe:    observe,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	ref, err := mk(false).Run(Spatial{BlockX: 8, BlockY: 8})
	if err != nil {
		t.Fatal(err)
	}
	check := func(res *Result, label string) {
		t.Helper()
		for ti := range ref.Receivers {
			for ri := range ref.Receivers[ti] {
				if ref.Receivers[ti][ri] != res.Receivers[ti][ri] {
					t.Fatalf("%s %s: receiver (%d,%d) differs", res.Schedule, label, ti, ri)
				}
			}
		}
	}
	for _, sched := range []Schedule{
		Spatial{BlockX: 8, BlockY: 8},
		WTB{TimeTile: 3, TileX: 16, TileY: 16, BlockX: 8, BlockY: 8},
	} {
		res, err := mk(true).Run(sched)
		if err != nil {
			t.Fatal(err)
		}
		check(res, "observed")
	}

	// Telemetry v2 surfaces must be equally inert: a flight recorder on the
	// global registry, and building a run report after the fact.
	reg := obs.NewRegistry()
	reg.StartFlight(256)
	restore := obs.Swap(reg)
	for _, sched := range []Schedule{
		Spatial{BlockX: 8, BlockY: 8},
		WTB{TimeTile: 3, TileX: 16, TileY: 16, BlockX: 8, BlockY: 8},
	} {
		sim := mk(false)
		res, err := sim.Run(sched)
		if err != nil {
			restore()
			t.Fatal(err)
		}
		check(res, "flight-recorded")
		if _, err := sim.Report(res, ReportOptions{TraceN: 24, TraceNt: 2}); err != nil {
			restore()
			t.Fatal(err)
		}
		check(res, "reported")
	}
	restore()
	if reg.Flight().Recorded() == 0 {
		t.Fatal("flight recorder captured no spans from the observed runs")
	}
}
