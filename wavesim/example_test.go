package wavesim_test

import (
	"fmt"

	"wavetile/wavesim"
)

// Example demonstrates the end-to-end API: build a small acoustic problem
// with one off-the-grid source and a receiver line, run it under both
// schedules, and confirm the records agree bitwise — the paper's
// correctness property.
func Example() {
	sim, err := wavesim.New(wavesim.Options{
		Physics:    wavesim.Acoustic,
		SpaceOrder: 4,
		Shape:      [3]int{32, 32, 32},
		Spacing:    [3]float64{10, 10, 10},
		NBL:        4,
		Steps:      12,
		Vp:         wavesim.Homogeneous(2000),
		SourceF0:   30,
		SourceAmp:  100,
		Sources:    []wavesim.Coord{{155.5, 154.2, 103.7}},
		Receivers:  wavesim.LineCoords(3, wavesim.Coord{60, 155, 60}, wavesim.Coord{250, 155, 60}),
	})
	if err != nil {
		panic(err)
	}
	spatial, err := sim.Run(wavesim.Spatial{BlockX: 8, BlockY: 8})
	if err != nil {
		panic(err)
	}
	wtb, err := sim.Run(wavesim.WTB{TimeTile: 4, TileX: 12, TileY: 12, BlockX: 6, BlockY: 6})
	if err != nil {
		panic(err)
	}
	identical := true
	for t := range spatial.Receivers {
		for r := range spatial.Receivers[t] {
			if spatial.Receivers[t][r] != wtb.Receivers[t][r] {
				identical = false
			}
		}
	}
	fmt.Printf("schedules: %s then %s\n", spatial.Schedule, wtb.Schedule)
	fmt.Printf("records bitwise identical: %v\n", identical)
	// Output:
	// schedules: spatial then wtb
	// records bitwise identical: true
}
