// Package wavesim is the public API of this repository: finite-difference
// wave propagators (isotropic acoustic, anisotropic acoustic/TTI, isotropic
// elastic) with sparse off-the-grid sources and receivers, runnable under
// either spatially-blocked execution or wave-front temporal blocking (WTB)
// enabled by the sparse-operator precomputation scheme of Bisbas et al.,
// "Temporal blocking of finite-difference stencil operators with sparse
// 'off-the-grid' sources" (IPDPS 2021).
//
// A minimal forward model:
//
//	sim, err := wavesim.New(wavesim.Options{
//	    Physics:    wavesim.Acoustic,
//	    SpaceOrder: 8,
//	    Shape:      [3]int{128, 128, 128},
//	    Spacing:    [3]float64{10, 10, 10},
//	    NBL:        10,
//	    TMax:       0.3,
//	    Vp:         wavesim.Layered(1280, 1500, 2500, 3500),
//	    Sources:    []wavesim.Coord{{640, 640, 200}},
//	    Receivers:  wavesim.LineCoords(64, wavesim.Coord{200, 640, 150}, wavesim.Coord{1080, 640, 150}),
//	})
//	res, err := sim.Run(wavesim.WTB{TimeTile: 16, TileX: 32, TileY: 32, BlockX: 8, BlockY: 8})
//	// res.Receivers holds the shot record; res.GPointsPerSec the throughput.
package wavesim

import (
	"fmt"
	"time"

	"wavetile/internal/model"
	"wavetile/internal/sparse"
	"wavetile/internal/tiling"
	"wavetile/internal/wave"
)

// Physics selects the wave equation (paper §III).
type Physics int

// The three propagators evaluated in the paper.
const (
	Acoustic Physics = iota // isotropic acoustic, O(2, so)
	TTI                     // anisotropic acoustic (tilted TI), O(2, so)
	Elastic                 // isotropic elastic velocity–stress, O(1, so)
)

func (p Physics) String() string {
	switch p {
	case Acoustic:
		return "acoustic"
	case TTI:
		return "tti"
	case Elastic:
		return "elastic"
	}
	return fmt.Sprintf("physics(%d)", int(p))
}

// Coord is a physical coordinate in metres.
type Coord = [3]float64

// FieldFunc evaluates a material property at a physical position (metres).
type FieldFunc = func(x, y, z float64) float64

// Homogeneous, Layered and Gradient are re-exported model presets.
func Homogeneous(v float64) FieldFunc { return model.Homogeneous(v) }

// Layered steps through vals at equal z intervals down to zmax.
func Layered(zmax float64, vals ...float64) FieldFunc { return model.Layered(zmax, vals...) }

// Gradient rises linearly from v0 at z=0 to v1 at zmax.
func Gradient(v0, v1, zmax float64) FieldFunc { return model.Gradient(v0, v1, zmax) }

// LineCoords places n points evenly from a to b (receiver cables).
func LineCoords(n int, a, b Coord) []Coord {
	pts := sparse.Line(n, sparse.Coord(a), sparse.Coord(b))
	out := make([]Coord, n)
	for i, c := range pts.Coords {
		out[i] = Coord(c)
	}
	return out
}

// Options configures a simulation.
type Options struct {
	Physics    Physics
	SpaceOrder int        // even, ≥ 2; the paper evaluates 4, 8, 12
	Shape      [3]int     // grid points (absorbing layers included)
	Spacing    [3]float64 // metres
	NBL        int        // absorbing boundary width in points

	// Time axis: TMax seconds simulated with a CFL-stable dt (computed from
	// the model's vmax); Steps, when > 0, overrides the step count and the
	// time axis becomes Steps·dt. DtOverride, when > 0, forces the timestep
	// (it must not exceed the CFL bound) — multi-model workflows such as
	// RTM need one shared time axis across models of different vmax.
	TMax       float64
	Steps      int
	DtOverride float64

	// Material property fields. Vp is required; Vs/Rho default to Vp/2 and
	// 1800 kg/m³ (Elastic), Epsilon/Delta/Theta/Phi default to mild
	// anisotropy (TTI) when nil.
	Vp, Vs, Rho                FieldFunc
	Epsilon, Delta, Theta, Phi FieldFunc

	// Sources and receivers at off-the-grid positions. SourceF0 is the
	// Ricker peak frequency (Hz; default 10) and SourceAmp the amplitude
	// (default 1). SourceWavelets, when non-nil, overrides the generated
	// Ricker series (one per source).
	Sources        []Coord
	Receivers      []Coord
	SourceF0       float64
	SourceAmp      float64
	SourceWavelets [][]float32
	// SincSources selects Kaiser-windowed sinc source injection (8³-point
	// supports, Hicks 2002) instead of trilinear. Sources must then sit at
	// least 4 grid points inside the domain.
	SincSources bool

	// KernelVariant pins a generated stencil kernel variant
	// (wave.KernelBase, wave.KernelY2, or wave.KernelGeneric for the
	// radius-generic reference path). Empty selects the default: the base
	// generated kernel when one exists for the space order, else the
	// observable generic fallback. An unknown variant is an
	// ErrInvalidOptions from New.
	KernelVariant string

	// Observe collects a per-phase wall-time breakdown and counters during
	// Run, returned in Result.Phases / Result.Counters. It costs a few
	// clock readings per parallel block (typically 1–3% of the run); when
	// false (the default) the instrumentation reduces to one atomic load
	// per Step. If a process-global obs registry is already installed
	// (e.g. by a -debug-addr CLI flag), Run reports through it regardless
	// of this flag.
	Observe bool
}

// Simulation is a configured propagator ready to run under any schedule.
type Simulation struct {
	opts Options
	geom model.Geometry
	prop tiling.Propagator
	ops  *wave.SparseOps

	acoustic *wave.Acoustic
	tti      *wave.TTI
	elastic  *wave.Elastic

	// workers caps the pipelined task-graph runner's worker count for this
	// simulation (0 = all of par.Workers). Survey lanes running K shots
	// concurrently set it to Workers/K so the lanes partition the machine;
	// results are bitwise identical for any value. The spatial and WTB
	// schedules parallelize through the shared par pool, whose dynamic
	// chunk claiming balances concurrent lanes without an explicit cap.
	workers int
}

// Spatial is the baseline schedule: per-timestep parallel space blocking,
// with the sparse operators either fused (precomputed scheme) or executed
// as the unfused off-the-grid loops of the paper's Listing 1.
type Spatial struct {
	BlockX, BlockY int
	Unfused        bool // run the Listing-1 baseline sparse operators
}

// WTB is the wave-front temporal blocking schedule (always fused).
type WTB struct {
	TimeTile       int // timesteps per tile
	TileX, TileY   int
	BlockX, BlockY int
}

// WTBPipelined is WTB executed by the task-graph runtime: space-time tiles
// become dependency-counted tasks that drain through the worker pool with no
// global barrier between wave-front levels. Results are bitwise identical to
// WTB; at Workers == 1 it degrades to exactly WTB's sequential tile order.
type WTBPipelined WTB

// Schedule is implemented by Spatial, WTB and WTBPipelined.
type Schedule interface{ schedule() string }

func (Spatial) schedule() string      { return "spatial" }
func (WTB) schedule() string          { return "wtb" }
func (WTBPipelined) schedule() string { return "wtb-pipelined" }

// Result summarizes one run.
type Result struct {
	Schedule string
	// Kernel is the stencil kernel the run dispatched to, as
	// "physics/rN/variant" (variant "generic" = the radius-generic slow
	// path — at paper orders that means a kernel-dispatch bug).
	Kernel        string
	Elapsed       time.Duration
	Points        int64   // grid points × timesteps
	GPointsPerSec float64 // points/s / 1e9 (the paper's throughput metric)
	// Receivers[t][r] is the shot record (time index t+1), nil without
	// receivers.
	Receivers [][]float32

	// Phases breaks Elapsed down by work category when observability was
	// on for the run (Options.Observe or a globally installed registry):
	// "stencil" (grid update), "inject" (fused source injection), "sample"
	// (fused receiver sampling), "sparse" (unfused Listing-1 operators)
	// and "overhead" (schedule bookkeeping and fork/join — the residual,
	// so the phases sum to Elapsed). Nil when observability was off.
	Phases map[string]time.Duration
	// Counters holds the run's counter deltas (e.g. "steps", "points",
	// "wtb_time_tiles"). Nil when observability was off.
	Counters map[string]int64

	// sched is the schedule value the run executed, kept so Report can
	// recover the WTB tile configuration for roofline attribution.
	sched Schedule
}

// newResult assembles a Result with a well-defined throughput: runs with
// zero elapsed time or zero points report 0 GPts/s rather than NaN/Inf.
func newResult(schedule string, elapsed time.Duration, points int64) *Result {
	res := &Result{Schedule: schedule, Elapsed: elapsed, Points: points}
	if elapsed > 0 && points > 0 {
		res.GPointsPerSec = float64(points) / elapsed.Seconds() / 1e9
	}
	return res
}
