package wavesim

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
)

// resumeSchedules builds one schedule of each kind sized for the survey.
func resumeSchedules(sv *Survey) []Schedule {
	mt := sv.template.MinTile()
	return []Schedule{
		Spatial{BlockX: 8, BlockY: 8},
		WTB{TimeTile: 4, TileX: 3 * mt, TileY: 2 * mt, BlockX: 8, BlockY: 8},
		WTBPipelined{TimeTile: 4, TileX: 3 * mt, TileY: 2 * mt, BlockX: 8, BlockY: 8},
	}
}

// TestResumeBitwiseIdentical is the resume oracle: run a survey while
// capturing checkpoints, then re-run it from each shot's mid-flight
// checkpoint (after an Encode/Decode round trip, like the service's
// on-disk path) and assert the resumed receiver records are bitwise
// identical to the uninterrupted run — for every physics × schedule kind.
func TestResumeBitwiseIdentical(t *testing.T) {
	for _, phys := range []Physics{Acoustic, Elastic} {
		base := surveyBase(phys)
		shots := surveyShots(2)
		sv, err := NewSurvey(base, shots, SurveyOptions{Concurrency: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, sched := range resumeSchedules(sv) {
			t.Run(phys.String()+"/"+sched.schedule(), func(t *testing.T) {
				// Uninterrupted run, capturing one mid-flight checkpoint
				// per shot along the way.
				var mu sync.Mutex
				ckpts := map[int]*ShotCheckpoint{}
				full, err := sv.RunResumable(context.Background(), sched, ResumeOptions{
					EveryTiles: 2,
					OnCheckpoint: func(ck *ShotCheckpoint) error {
						// Round-trip through the binary codec so the test
						// covers the exact state a crashed service reloads.
						var buf bytes.Buffer
						if err := ck.Encode(&buf); err != nil {
							return err
						}
						dec, err := DecodeShotCheckpoint(bytes.NewReader(buf.Bytes()))
						if err != nil {
							return err
						}
						mu.Lock()
						ckpts[dec.Shot] = dec // keep the last boundary seen
						mu.Unlock()
						return nil
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(ckpts) != len(shots) {
					t.Fatalf("captured checkpoints for %d shots, want %d", len(ckpts), len(shots))
				}
				// "Crashed" run: every shot restarts from its checkpoint.
				resumed, err := sv.RunResumable(context.Background(), sched, ResumeOptions{
					Checkpoints: ckpts,
				})
				if err != nil {
					t.Fatal(err)
				}
				for s := range shots {
					if ck := ckpts[s]; ck.T <= 0 || ck.T >= sv.template.Steps() {
						t.Fatalf("shot %d checkpoint at t=%d is not mid-flight", s, ck.T)
					}
					assertRecordsEqual(t, full.Shots[s].Receivers, resumed.Shots[s].Receivers, s)
				}
			})
		}
	}
}

// TestRunResumableMatchesRun: with no checkpoints involved, the resumable
// path must be bitwise identical to the plain survey runner.
func TestRunResumableMatchesRun(t *testing.T) {
	base := surveyBase(Acoustic)
	shots := surveyShots(2)
	sv, err := NewSurvey(base, shots, SurveyOptions{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range resumeSchedules(sv) {
		plain, err := sv.Run(sched)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sv.RunResumable(context.Background(), sched, ResumeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for s := range shots {
			assertRecordsEqual(t, plain.Shots[s].Receivers, res.Shots[s].Receivers, s)
		}
	}
}

// TestRunResumableSkipsCompleted: completed shots are not re-run and their
// result slot stays nil; the rest still run.
func TestRunResumableSkipsCompleted(t *testing.T) {
	sv, err := NewSurvey(surveyBase(Acoustic), surveyShots(3), SurveyOptions{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	ran := map[int]bool{}
	res, err := sv.RunResumable(context.Background(), Spatial{BlockX: 8, BlockY: 8}, ResumeOptions{
		Completed: map[int]bool{1: true},
		OnShot: func(shot int, _ *Result) {
			mu.Lock()
			ran[shot] = true
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran[1] || !ran[0] || !ran[2] {
		t.Fatalf("ran = %v, want shots 0 and 2 only", ran)
	}
	if res.Shots[1] != nil {
		t.Fatal("completed shot 1 got a fresh result")
	}
	if res.Shots[0] == nil || res.Shots[2] == nil {
		t.Fatal("pending shots missing results")
	}
}

// TestRunResumableCancelBalancesPool: a cancelled survey still returns
// every pooled wavefield grid — the property the service's job canceller
// asserts through /metrics.
func TestRunResumableCancelBalancesPool(t *testing.T) {
	sv, err := NewSurvey(surveyBase(Acoustic), surveyShots(4), SurveyOptions{Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	_, err = sv.RunResumable(ctx, Spatial{BlockX: 8, BlockY: 8}, ResumeOptions{
		OnShot: func(int, *Result) { cancel() },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if gets, puts := sv.PoolBalance(); gets != puts {
		t.Fatalf("pool unbalanced after cancellation: %d gets, %d puts", gets, puts)
	}
}

// TestRestoreCheckpointRejectsMismatch: checkpoints from the wrong
// schedule phase or the wrong propagator are refused, not silently run.
func TestRestoreCheckpointRejectsMismatch(t *testing.T) {
	sv, err := NewSurvey(surveyBase(Acoustic), surveyShots(1), SurveyOptions{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	sched := WTB{TimeTile: 4, TileX: 3 * sv.MinTile(), TileY: 2 * sv.MinTile(), BlockX: 8, BlockY: 8}
	var got *ShotCheckpoint
	_, err = sv.RunResumable(context.Background(), sched, ResumeOptions{
		EveryTiles: 1,
		OnCheckpoint: func(ck *ShotCheckpoint) error {
			if got == nil {
				got = ck
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Off-boundary T.
	bad := *got
	bad.T = got.T + 1
	if _, err := sv.RunResumable(context.Background(), sched, ResumeOptions{
		Checkpoints: map[int]*ShotCheckpoint{0: &bad},
	}); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("off-boundary checkpoint accepted: %v", err)
	}
	// Wrong physics: an elastic survey rejects an acoustic checkpoint.
	esv, err := NewSurvey(surveyBase(Elastic), surveyShots(1), SurveyOptions{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	esched := WTB{TimeTile: 4, TileX: 3 * esv.MinTile(), TileY: 2 * esv.MinTile(), BlockX: 8, BlockY: 8}
	if _, err := esv.RunResumable(context.Background(), esched, ResumeOptions{
		Checkpoints: map[int]*ShotCheckpoint{0: got},
	}); !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("cross-physics checkpoint accepted: %v", err)
	}
}
