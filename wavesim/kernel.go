package wavesim

import "fmt"

// kernelControl is the kernel-selection surface all three propagators
// implement (see internal/wave/kern_select.go).
type kernelControl interface {
	KernelName() string
	KernelVariants() []string
	SetKernelVariant(string) error
}

// KernelName reports the stencil kernel the simulation dispatches to, as
// "physics/rN/variant" — e.g. "elastic/r4/base", or "tti/r8/generic" when
// no specialized kernel exists for the radius. The same string appears in
// Result.Kernel and report RunInfo, so a run that silently used the slow
// generic path is visible in every artifact.
func (s *Simulation) KernelName() string {
	return s.prop.(kernelControl).KernelName()
}

// KernelVariants lists the generated kernel variants selectable for this
// simulation's physics and space order (empty when only the generic
// fallback exists). Variants compute bitwise-identical per-point results;
// they differ only in loop structure, so switching them is safe mid-study.
func (s *Simulation) KernelVariants() []string {
	return s.prop.(kernelControl).KernelVariants()
}

// SetKernelVariant switches the stencil kernel variant (wave.KernelBase,
// wave.KernelY2, or wave.KernelGeneric to pin the radius-generic path).
// Unknown variants are an error and leave the selection unchanged.
func (s *Simulation) SetKernelVariant(v string) error {
	if err := s.prop.(kernelControl).SetKernelVariant(v); err != nil {
		return fmt.Errorf("wavesim: %w", err)
	}
	return nil
}
