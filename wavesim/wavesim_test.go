package wavesim

import (
	"math"
	"testing"
)

func smallOpts(phys Physics) Options {
	return Options{
		Physics:    phys,
		SpaceOrder: 4,
		Shape:      [3]int{36, 36, 36},
		Spacing:    [3]float64{10, 10, 10},
		NBL:        4,
		Steps:      16,
		Vp:         Layered(360, 1500, 2500, 3000),
		SourceF0:   25,
		SourceAmp:  100,
		Sources:    []Coord{{171, 168, 122}},
		Receivers:  LineCoords(6, Coord{60, 170, 60}, Coord{290, 170, 60}),
	}
}

func TestNewValidation(t *testing.T) {
	cases := []func(*Options){
		func(o *Options) { o.SpaceOrder = 3 },
		func(o *Options) { o.SpaceOrder = 0 },
		func(o *Options) { o.Shape = [3]int{4, 36, 36} },
		func(o *Options) { o.Spacing = [3]float64{0, 10, 10} },
		func(o *Options) { o.Vp = nil },
		func(o *Options) { o.TMax, o.Steps = 0, 0 },
		func(o *Options) { o.SourceWavelets = [][]float32{} },
		func(o *Options) { o.Sources = []Coord{{-50, 0, 0}} },
	}
	for i, mutate := range cases {
		o := smallOpts(Acoustic)
		mutate(&o)
		if _, err := New(o); err == nil {
			t.Fatalf("case %d: invalid options accepted", i)
		}
	}
}

func TestRunSchedulesAgreeBitwise(t *testing.T) {
	for _, phys := range []Physics{Acoustic, TTI, Elastic} {
		phys := phys
		t.Run(phys.String(), func(t *testing.T) {
			sim, err := New(smallOpts(phys))
			if err != nil {
				t.Fatal(err)
			}
			ref, err := sim.Run(Spatial{BlockX: 8, BlockY: 8})
			if err != nil {
				t.Fatal(err)
			}
			if ref.Receivers == nil {
				t.Fatal("no receiver data")
			}
			mt := sim.MinTile()
			wtb, err := sim.Run(WTB{TimeTile: 4, TileX: 3 * mt, TileY: 2 * mt, BlockX: 8, BlockY: 8})
			if err != nil {
				t.Fatal(err)
			}
			pipe, err := sim.Run(WTBPipelined{TimeTile: 4, TileX: 3 * mt, TileY: 2 * mt, BlockX: 8, BlockY: 8})
			if err != nil {
				t.Fatal(err)
			}
			if pipe.Schedule != "wtb-pipelined" {
				t.Fatalf("schedule name %q", pipe.Schedule)
			}
			for ti := range ref.Receivers {
				for r := range ref.Receivers[ti] {
					if ref.Receivers[ti][r] != wtb.Receivers[ti][r] {
						t.Fatalf("receiver %d t=%d: %g vs %g", r, ti,
							ref.Receivers[ti][r], wtb.Receivers[ti][r])
					}
					if ref.Receivers[ti][r] != pipe.Receivers[ti][r] {
						t.Fatalf("pipelined receiver %d t=%d: %g vs %g", r, ti,
							ref.Receivers[ti][r], pipe.Receivers[ti][r])
					}
				}
			}
			if wtb.GPointsPerSec <= 0 || wtb.Points != ref.Points {
				t.Fatalf("bad result accounting: %+v", wtb)
			}
		})
	}
}

func TestUnfusedBaselineClose(t *testing.T) {
	sim, err := New(smallOpts(Acoustic))
	if err != nil {
		t.Fatal(err)
	}
	fused, err := sim.Run(Spatial{})
	if err != nil {
		t.Fatal(err)
	}
	unfused, err := sim.Run(Spatial{Unfused: true})
	if err != nil {
		t.Fatal(err)
	}
	maxAbs := 0.0
	for ti := range fused.Receivers {
		for r := range fused.Receivers[ti] {
			if v := math.Abs(float64(fused.Receivers[ti][r])); v > maxAbs {
				maxAbs = v
			}
		}
	}
	if maxAbs == 0 {
		t.Fatal("silent receivers")
	}
	for ti := range fused.Receivers {
		for r := range fused.Receivers[ti] {
			d := math.Abs(float64(fused.Receivers[ti][r] - unfused.Receivers[ti][r]))
			if d > 1e-4*maxAbs {
				t.Fatalf("fused vs unfused receiver diff %g at t=%d r=%d", d, ti, r)
			}
		}
	}
}

func TestWTBValidatesTiles(t *testing.T) {
	sim, err := New(smallOpts(Acoustic))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(WTB{TimeTile: 4, TileX: 1, TileY: 1, BlockX: 4, BlockY: 4}); err == nil {
		t.Fatal("undersized tiles accepted")
	}
}

func TestGeometryAndHelpers(t *testing.T) {
	sim, err := New(smallOpts(Acoustic))
	if err != nil {
		t.Fatal(err)
	}
	shape, spacing, dt, nt := sim.Geometry()
	if shape != [3]int{36, 36, 36} || spacing != [3]float64{10, 10, 10} {
		t.Fatalf("geometry %v %v", shape, spacing)
	}
	if dt <= 0 || nt != 16 || sim.Dt() != dt || sim.Steps() != 16 {
		t.Fatalf("time axis dt=%g nt=%d", dt, nt)
	}
	if _, err := sim.Run(Spatial{}); err != nil {
		t.Fatal(err)
	}
	sl := sim.WavefieldSlice(12)
	if len(sl) != 36 || len(sl[0]) != 36 {
		t.Fatalf("slice shape %dx%d", len(sl), len(sl[0]))
	}
	if sim.MaxAbsWavefield() == 0 {
		t.Fatal("wavefield silent")
	}
	// TMax path: nt = ceil(tmax/dt)+1.
	o := smallOpts(Acoustic)
	o.Steps = 0
	o.TMax = 0.05
	sim2, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(0.05/sim2.Dt())) + 1
	if sim2.Steps() != want {
		t.Fatalf("TMax nt=%d want %d", sim2.Steps(), want)
	}
}

func TestCoordHelpers(t *testing.T) {
	l := LineCoords(3, Coord{0, 0, 0}, Coord{2, 2, 2})
	if l[1] != (Coord{1, 1, 1}) {
		t.Fatalf("LineCoords midpoint %v", l[1])
	}
	if Homogeneous(5)(1, 2, 3) != 5 {
		t.Fatal("Homogeneous")
	}
	if Gradient(0, 10, 10)(0, 0, 5) != 5 {
		t.Fatal("Gradient")
	}
	if Layered(10, 1, 2)(0, 0, 9) != 2 {
		t.Fatal("Layered")
	}
}

func TestPhysicsString(t *testing.T) {
	if Acoustic.String() != "acoustic" || TTI.String() != "tti" || Elastic.String() != "elastic" {
		t.Fatal("physics names")
	}
	if Physics(99).String() == "" {
		t.Fatal("unknown physics name empty")
	}
}
