package wavesim

import (
	"fmt"

	"wavetile/internal/bench"
	"wavetile/internal/obs"
	"wavetile/internal/par"
	"wavetile/internal/tiling"
)

// ReportOptions configure Simulation.Report.
type ReportOptions struct {
	// Machine selects the roofline machine model the attribution is computed
	// against: "" (auto: the measured host fingerprint when `make hostcal`
	// has produced a valid one, else the Broadwell preset explicitly marked
	// "preset/broadwell"), "host" (fingerprint required), "broadwell" or
	// "skylake".
	Machine string
	// HostcalPath overrides the host-fingerprint location ("" →
	// $WAVETILE_HOSTCAL or ~/.cache/wavesim/hostcal.json).
	HostcalPath string
	// TraceN / TraceNt size the reduced cache-simulation replay (defaults
	// 64 / 4). Larger grids sharpen the traffic estimate at replay cost.
	TraceN, TraceNt int
	// SkipRoofline omits the attribution join — the report then carries
	// config, host and measurements only, and never runs the cache replay.
	SkipRoofline bool
}

// Report assembles the machine-readable run report for a completed Run:
// the simulation's configuration, the host fingerprint, the result's
// measurements (with phase breakdown and counters when observability was
// on), and — unless opted out — the roofline attribution joining the
// measured throughput against the paper's cache-simulated performance
// model for the same schedule.
func (s *Simulation) Report(res *Result, o ReportOptions) (*obs.Report, error) {
	if res == nil {
		return nil, fmt.Errorf("wavesim: Report needs a Run result")
	}
	rep := obs.NewReport()
	rep.Host.Workers = par.Workers
	rep.Run = obs.RunInfo{
		Physics:    s.opts.Physics.String(),
		SpaceOrder: s.opts.SpaceOrder,
		Shape:      s.opts.Shape,
		Spacing:    s.opts.Spacing,
		Steps:      s.geom.Nt,
		DtSeconds:  s.geom.Dt,
		Schedule:   res.Schedule,
		Kernel:     res.Kernel,
		Sources:    len(s.opts.Sources),
		Receivers:  len(s.opts.Receivers),
	}
	rep.ElapsedNS = res.Elapsed.Nanoseconds()
	rep.Points = res.Points
	rep.GPointsPerSec = res.GPointsPerSec
	if res.Phases != nil {
		rep.PhasesNS = make(map[string]int64, len(res.Phases))
		for k, v := range res.Phases {
			rep.PhasesNS[k] = v.Nanoseconds()
		}
	}
	rep.Counters = res.Counters

	schedule, cfg := attributionSchedule(res.sched)
	if cfg.TT > 0 {
		rep.Run.Config = cfg.String()
	}
	if o.SkipRoofline {
		return rep, nil
	}
	spec := bench.Spec{
		Model: s.opts.Physics.String(),
		SO:    s.opts.SpaceOrder,
		N:     s.opts.Shape[0],
		NBL:   s.opts.NBL,
		Steps: s.geom.Nt,
		NSrc:  len(s.opts.Sources),
		NRec:  len(s.opts.Receivers),
	}
	if spec.NSrc > 1 {
		spec.SrcLayout = "dense"
	}
	att, err := bench.Attribute(spec, schedule, cfg, res.GPointsPerSec, res.Points,
		bench.AttributeOptions{Machine: o.Machine, HostcalPath: o.HostcalPath, TraceN: o.TraceN, TraceNt: o.TraceNt})
	if err != nil {
		return nil, fmt.Errorf("wavesim: roofline attribution: %w", err)
	}
	rep.Roofline = att
	return rep, nil
}

// attributionSchedule maps a Result's schedule value onto the replayable
// schedule string and WTB configuration bench.Attribute understands.
func attributionSchedule(sched Schedule) (string, tiling.Config) {
	switch c := sched.(type) {
	case Spatial:
		if c.Unfused {
			return "spatial-unfused", tiling.Config{}
		}
		return "spatial", tiling.Config{}
	case WTB:
		return "wtb", tiling.Config{TT: c.TimeTile, TileX: c.TileX, TileY: c.TileY, BlockX: c.BlockX, BlockY: c.BlockY}
	case WTBPipelined:
		return "wtb-pipelined", tiling.Config{TT: c.TimeTile, TileX: c.TileX, TileY: c.TileY, BlockX: c.BlockX, BlockY: c.BlockY}
	}
	// RunWithSnapshots results and future schedules replay as plain fused
	// spatial — the closest traffic shape.
	return "spatial", tiling.Config{}
}
