package wavesim

import (
	"errors"
	"math"
	"testing"
)

// goodOpts is a small valid configuration the degenerate-input tests start
// from; each test breaks exactly one thing and asserts the typed error.
func goodOpts() Options {
	return Options{
		Physics:    Acoustic,
		SpaceOrder: 4,
		Shape:      [3]int{20, 20, 20},
		Spacing:    [3]float64{10, 10, 10},
		NBL:        2,
		Steps:      4,
		Vp:         Homogeneous(1500),
		Sources:    []Coord{{95, 95, 95}},
		Receivers:  []Coord{{50, 95, 140}},
	}
}

func TestNewRejectsInvalidOptions(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*Options)
		class error
	}{
		{"odd space order", func(o *Options) { o.SpaceOrder = 5 }, ErrInvalidOptions},
		{"zero space order", func(o *Options) { o.SpaceOrder = 0 }, ErrInvalidOptions},
		{"undersized shape", func(o *Options) { o.Shape[1] = 7 }, ErrInvalidOptions},
		{"zero shape", func(o *Options) { o.Shape = [3]int{0, 0, 0} }, ErrInvalidOptions},
		{"negative spacing", func(o *Options) { o.Spacing[0] = -10 }, ErrInvalidOptions},
		{"zero spacing", func(o *Options) { o.Spacing[2] = 0 }, ErrInvalidOptions},
		{"NaN spacing", func(o *Options) { o.Spacing[1] = math.NaN() }, ErrInvalidOptions},
		{"Inf spacing", func(o *Options) { o.Spacing[0] = math.Inf(1) }, ErrInvalidOptions},
		{"missing Vp", func(o *Options) { o.Vp = nil }, ErrInvalidOptions},
		{"negative Steps", func(o *Options) { o.Steps = -3 }, ErrInvalidOptions},
		{"no time axis", func(o *Options) { o.Steps, o.TMax = 0, 0 }, ErrInvalidOptions},
		{"NaN TMax", func(o *Options) { o.Steps, o.TMax = 0, math.NaN() }, ErrInvalidOptions},
		{"Inf TMax", func(o *Options) { o.Steps, o.TMax = 0, math.Inf(1) }, ErrInvalidOptions},
		{"NaN DtOverride", func(o *Options) { o.DtOverride = math.NaN() }, ErrInvalidOptions},
		{"negative DtOverride", func(o *Options) { o.DtOverride = -1e-3 }, ErrInvalidOptions},
		{"DtOverride above CFL", func(o *Options) { o.DtOverride = 10 }, ErrInvalidOptions},
		{"non-positive velocity", func(o *Options) { o.Vp = Homogeneous(0) }, ErrInvalidOptions},
		{"unknown physics", func(o *Options) { o.Physics = Physics(99) }, ErrInvalidOptions},
		{"wavelet count mismatch", func(o *Options) {
			o.SourceWavelets = make([][]float32, 3)
		}, ErrInvalidOptions},

		{"NaN source coordinate", func(o *Options) { o.Sources[0][1] = math.NaN() }, ErrPlacement},
		{"Inf receiver coordinate", func(o *Options) { o.Receivers[0][2] = math.Inf(-1) }, ErrPlacement},
		{"source outside hull", func(o *Options) { o.Sources[0][0] = 191 }, ErrPlacement},
		{"source below hull", func(o *Options) { o.Sources[0][2] = -0.5 }, ErrPlacement},
		{"receiver outside hull", func(o *Options) { o.Receivers[0][0] = 1e6 }, ErrPlacement},
		{"sinc source too close to boundary", func(o *Options) {
			o.SincSources = true
			o.Sources[0] = Coord{10, 95, 95} // u=1 < SincRadius-1
		}, ErrPlacement},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := goodOpts()
			tc.mut(&o)
			_, err := New(o)
			if err == nil {
				t.Fatalf("New accepted the configuration")
			}
			if !errors.Is(err, tc.class) {
				t.Fatalf("error %q is not tagged %v", err, tc.class)
			}
			// The two classes must stay distinguishable.
			other := ErrPlacement
			if tc.class == ErrPlacement {
				other = ErrInvalidOptions
			}
			if errors.Is(err, other) {
				t.Fatalf("error %q tagged with both classes", err)
			}
		})
	}
}

// TestNewAcceptsBoundaryCases pins the legal edge configurations: trilinear
// points exactly on the grid hull, an empty source set, and a sinc source at
// the inner margin.
func TestNewAcceptsBoundaryCases(t *testing.T) {
	o := goodOpts()
	o.Sources = []Coord{{0, 0, 0}}         // hull corner
	o.Receivers = []Coord{{190, 190, 190}} // opposite hull corner (=(n-1)·h)
	sim, err := New(o)
	if err != nil {
		t.Fatalf("hull-corner placement rejected: %v", err)
	}
	if _, err := sim.Run(Spatial{}); err != nil {
		t.Fatalf("run with hull-corner points: %v", err)
	}

	o = goodOpts()
	o.Sources = nil
	o.Receivers = nil
	sim, err = New(o)
	if err != nil {
		t.Fatalf("source-free configuration rejected: %v", err)
	}
	res, err := sim.Run(Spatial{})
	if err != nil {
		t.Fatalf("source-free run: %v", err)
	}
	if res.Receivers != nil {
		t.Fatalf("receiver-free run returned traces")
	}
	if m := sim.MaxAbsWavefield(); m != 0 {
		t.Fatalf("zero sources produced a nonzero field (max %g)", m)
	}

	o = goodOpts()
	o.SincSources = true
	o.Sources = []Coord{{30, 95, 95}} // u=3 = SincRadius-1: first legal position
	if _, err := New(o); err != nil {
		t.Fatalf("sinc source at inner margin rejected: %v", err)
	}
}
