package wavesim

import (
	"math"
	"testing"
)

func TestRunWithSnapshots(t *testing.T) {
	o := smallOpts(Acoustic)
	sim, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	res, snaps, err := sim.RunWithSnapshots(4, 18, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Receivers == nil {
		t.Fatal("snapshot run lost receivers")
	}
	want := (sim.Steps() + 3) / 4
	if len(snaps) != want {
		t.Fatalf("%d snapshots, want %d", len(snaps), want)
	}
	if len(snaps[0]) != 36 || len(snaps[0][0]) != 36 {
		t.Fatalf("snapshot shape %dx%d", len(snaps[0]), len(snaps[0][0]))
	}
	// Energy grows from the injection over the first snapshots.
	e := func(s [][]float32) float64 {
		acc := 0.0
		for _, row := range s {
			for _, v := range row {
				acc += float64(v) * float64(v)
			}
		}
		return acc
	}
	if e(snaps[len(snaps)-1]) == 0 {
		t.Fatal("final snapshot silent")
	}
	// Snapshot-mode receivers match a plain spatial run bitwise.
	ref, err := sim.Run(Spatial{BlockX: 8, BlockY: 8})
	if err != nil {
		t.Fatal(err)
	}
	for ti := range ref.Receivers {
		for r := range ref.Receivers[ti] {
			if ref.Receivers[ti][r] != res.Receivers[ti][r] {
				t.Fatalf("snapshot-mode receiver differs at t=%d r=%d", ti, r)
			}
		}
	}
}

func TestRunWithSnapshotsValidation(t *testing.T) {
	sim, err := New(smallOpts(Acoustic))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.RunWithSnapshots(0, 5, 8, 8); err == nil {
		t.Fatal("every=0 accepted")
	}
	if _, _, err := sim.RunWithSnapshots(2, 99, 8, 8); err == nil {
		t.Fatal("out-of-range plane accepted")
	}
}

func TestDtOverride(t *testing.T) {
	o := smallOpts(Acoustic)
	base, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	o.DtOverride = base.Dt() * 0.5
	sim, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sim.Dt()-base.Dt()*0.5) > 1e-15 {
		t.Fatalf("dt %g, want %g", sim.Dt(), base.Dt()*0.5)
	}
	o.DtOverride = base.Dt() * 2 // beyond CFL
	if _, err := New(o); err == nil {
		t.Fatal("unstable DtOverride accepted")
	}
}

func TestSincSourcesOption(t *testing.T) {
	o := smallOpts(Acoustic)
	o.SincSources = true
	sim, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.Run(Spatial{})
	if err != nil {
		t.Fatal(err)
	}
	wtb, err := sim.Run(WTB{TimeTile: 4, TileX: 12, TileY: 12, BlockX: 6, BlockY: 6})
	if err != nil {
		t.Fatal(err)
	}
	for ti := range ref.Receivers {
		for r := range ref.Receivers[ti] {
			if ref.Receivers[ti][r] != wtb.Receivers[ti][r] {
				t.Fatalf("sinc schedules differ at t=%d r=%d", ti, r)
			}
		}
	}
	// A sinc source near the boundary must be rejected.
	o.Sources = []Coord{{15, 170, 170}}
	if _, err := New(o); err == nil {
		t.Fatal("near-boundary sinc source accepted")
	}
}
