package wavesim

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"wavetile/internal/batch"
	"wavetile/internal/grid"
	"wavetile/internal/obs"
	"wavetile/internal/tiling"
	"wavetile/internal/verify"
)

// Checkpoint/resume for survey shots.
//
// A shot checkpoint captures the propagator's full wavefield state at a
// time-tile boundary plus the receiver rows recorded so far. Restoring the
// fields and re-running the remaining range through the same schedule is
// bitwise identical to never having stopped: the WTB/pipelined range
// runners chunk at multiples of the time-tile depth (the exact tile
// sequence of an uninterrupted run), and source injection and receiver
// sampling index by absolute timestep, so they are oblivious to where the
// run was cut. This is the same replay primitive the verify harness uses
// for first-divergence diagnostics, promoted to a public resume API for
// the simulation service.

// ErrCheckpoint tags malformed or mismatched checkpoints.
var ErrCheckpoint = fmt.Errorf("wavesim: invalid checkpoint")

// ShotCheckpoint is the resumable state of one shot at a time-tile
// boundary: all steps in [0, T) are complete, none after. The wavefield
// payload is deep-copied at capture, so a checkpoint stays valid after the
// simulation that produced it moves on.
type ShotCheckpoint struct {
	Shot int // shot index within the survey
	T    int // completed timesteps

	fields    map[string]*grid.Grid // full padded wavefield buffers
	receivers [][]float32           // receiver rows [0, T), nil without receivers
}

const shotCkptMagic = "WVSHCK1\n"

// Encode writes the checkpoint in a stable binary format: a small header
// (shot, T, receiver rows with a CRC) followed by the wavefields in the
// verify snapshot codec. Float payloads round-trip bitwise.
func (ck *ShotCheckpoint) Encode(w io.Writer) error {
	if _, err := io.WriteString(w, shotCkptMagic); err != nil {
		return err
	}
	hdr := []int64{int64(ck.Shot), int64(ck.T)}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	nrows := len(ck.receivers)
	ncols := 0
	if nrows > 0 {
		ncols = len(ck.receivers[0])
	}
	if err := binary.Write(w, binary.LittleEndian, [2]uint32{uint32(nrows), uint32(ncols)}); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	var scratch [4]byte
	for _, row := range ck.receivers {
		if len(row) != ncols {
			return fmt.Errorf("%w: ragged receiver rows", ErrCheckpoint)
		}
		for _, v := range row {
			binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(v))
			crc.Write(scratch[:])
		}
	}
	if err := binary.Write(w, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	for _, row := range ck.receivers {
		for _, v := range row {
			binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(v))
			if _, err := w.Write(scratch[:]); err != nil {
				return err
			}
		}
	}
	return verify.WriteSnapshot(w, ck.fields)
}

// DecodeShotCheckpoint reads a checkpoint written by Encode. Corruption —
// truncation, bit flips in receiver rows or wavefields — is detected and
// reported rather than resumed from.
func DecodeShotCheckpoint(r io.Reader) (*ShotCheckpoint, error) {
	var magic [len(shotCkptMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: magic: %v", ErrCheckpoint, err)
	}
	if string(magic[:]) != shotCkptMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCheckpoint, magic)
	}
	var hdr [2]int64
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCheckpoint, err)
	}
	var dims [2]uint32
	if err := binary.Read(r, binary.LittleEndian, &dims); err != nil {
		return nil, fmt.Errorf("%w: receiver dims: %v", ErrCheckpoint, err)
	}
	nrows, ncols := int(dims[0]), int(dims[1])
	if hdr[0] < 0 || hdr[1] < 0 || nrows > 1<<24 || ncols > 1<<20 ||
		(nrows > 0 && int64(nrows)*int64(ncols) > 1<<30) {
		return nil, fmt.Errorf("%w: implausible header shot=%d t=%d rows=%d cols=%d",
			ErrCheckpoint, hdr[0], hdr[1], nrows, ncols)
	}
	var wantCRC uint32
	if err := binary.Read(r, binary.LittleEndian, &wantCRC); err != nil {
		return nil, fmt.Errorf("%w: checksum: %v", ErrCheckpoint, err)
	}
	ck := &ShotCheckpoint{Shot: int(hdr[0]), T: int(hdr[1])}
	crc := crc32.NewIEEE()
	if nrows > 0 {
		ck.receivers = make([][]float32, nrows)
		buf := make([]byte, 4*ncols)
		for t := range ck.receivers {
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, fmt.Errorf("%w: receiver row %d: %v", ErrCheckpoint, t, err)
			}
			crc.Write(buf)
			row := make([]float32, ncols)
			for i := range row {
				row[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
			}
			ck.receivers[t] = row
		}
	}
	if crc.Sum32() != wantCRC {
		return nil, fmt.Errorf("%w: receiver rows checksum mismatch", ErrCheckpoint)
	}
	fields, err := verify.ReadSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpoint, err)
	}
	ck.fields = fields
	return ck, nil
}

// ResumeOptions configures a resumable survey run.
type ResumeOptions struct {
	// Completed marks shots that already finished in a previous run; they
	// are skipped entirely (their SurveyResult slot stays nil — the caller
	// kept their records when they first completed).
	Completed map[int]bool
	// Checkpoints holds mid-flight state from a previous run, keyed by
	// shot; those shots restart from their checkpoint's T instead of 0.
	Checkpoints map[int]*ShotCheckpoint
	// EveryTiles is the checkpoint cadence in time tiles (a Spatial
	// schedule counts single timesteps). 0 disables periodic checkpoints.
	EveryTiles int
	// OnCheckpoint receives each periodic checkpoint, from concurrent
	// lanes. An error fails the shot. The checkpoint owns its buffers.
	OnCheckpoint func(*ShotCheckpoint) error
	// OnShot, when non-nil, overrides SurveyOptions.OnShot for this run.
	OnShot func(shot int, res *Result)
}

// tileDepth is the schedule's time-tile granularity: chunking a run at
// multiples of it reproduces the uninterrupted tile sequence exactly.
func tileDepth(sched Schedule) int {
	switch c := sched.(type) {
	case WTB:
		return max(1, c.TimeTile)
	case WTBPipelined:
		return max(1, c.TimeTile)
	default:
		return 1
	}
}

// fields exposes the propagator's live wavefield buffers by name.
func (s *Simulation) fields() map[string]*grid.Grid {
	if f, ok := s.prop.(interface{ Fields() map[string]*grid.Grid }); ok {
		return f.Fields()
	}
	return nil
}

// execScheduleRange drives the propagator over timesteps [t0, t1) only.
// Running a schedule in chunks whose boundaries are multiples of its
// tileDepth is bitwise identical to one uninterrupted execSchedule.
func (s *Simulation) execScheduleRange(sched Schedule, t0, t1 int) error {
	switch c := sched.(type) {
	case Spatial:
		bx, by := c.BlockX, c.BlockY
		if bx == 0 {
			bx = 8
		}
		if by == 0 {
			by = 8
		}
		s.prop.SetBlocks(bx, by)
		nx, ny := s.prop.GridShape()
		off := s.prop.MaxPhaseOffset()
		full := grid.Region{X0: 0, X1: nx + off, Y0: 0, Y1: ny + off}
		for t := t0; t < t1; t++ {
			s.prop.Step(t, full, !c.Unfused)
			if c.Unfused {
				s.prop.ApplySparse(t)
			}
		}
		return nil
	case WTB:
		cfg := tiling.Config{TT: c.TimeTile, TileX: c.TileX, TileY: c.TileY, BlockX: c.BlockX, BlockY: c.BlockY}
		return tiling.RunWTBRange(s.prop, cfg, t0, t1)
	case WTBPipelined:
		cfg := tiling.Config{TT: c.TimeTile, TileX: c.TileX, TileY: c.TileY,
			BlockX: c.BlockX, BlockY: c.BlockY, Workers: s.workers}
		return tiling.RunWTBPipelinedRange(s.prop, cfg, t0, t1)
	default:
		return fmt.Errorf("wavesim: unknown schedule %T", sched)
	}
}

// captureCheckpoint deep-copies the simulation's state at boundary t.
// prefix holds receiver rows carried over from the checkpoint this run
// itself resumed from (nil on a fresh run).
func captureCheckpoint(sim *Simulation, shot, t int, prefix [][]float32) (*ShotCheckpoint, error) {
	live := sim.fields()
	if live == nil {
		return nil, fmt.Errorf("%w: propagator exposes no fields", ErrCheckpoint)
	}
	fields := make(map[string]*grid.Grid, len(live))
	for name, g := range live {
		fields[name] = g.Clone()
	}
	rec, err := sim.ops.Receivers()
	if err != nil {
		return nil, err
	}
	var rows [][]float32
	if rec != nil {
		rows = rec[:min(t, len(rec))]
		for i := range prefix {
			rows[i] = prefix[i]
		}
	}
	return &ShotCheckpoint{Shot: shot, T: t, fields: fields, receivers: rows}, nil
}

// restoreCheckpoint validates ck against sim and sched, then overwrites
// the live wavefields with the checkpointed ones.
func (s *Simulation) restoreCheckpoint(ck *ShotCheckpoint, sched Schedule) error {
	if ck.T < 0 || ck.T >= s.geom.Nt {
		return fmt.Errorf("%w: T=%d outside the %d-step time axis", ErrCheckpoint, ck.T, s.geom.Nt)
	}
	if d := tileDepth(sched); ck.T%d != 0 {
		return fmt.Errorf("%w: T=%d is not a multiple of the schedule's time-tile depth %d", ErrCheckpoint, ck.T, d)
	}
	live := s.fields()
	if len(live) != len(ck.fields) {
		return fmt.Errorf("%w: %d fields for a %d-field propagator", ErrCheckpoint, len(ck.fields), len(live))
	}
	for name, g := range live {
		saved, ok := ck.fields[name]
		if !ok {
			return fmt.Errorf("%w: missing field %q", ErrCheckpoint, name)
		}
		if !g.SameShape(saved) {
			return fmt.Errorf("%w: field %q shape mismatch", ErrCheckpoint, name)
		}
	}
	for name, g := range live {
		g.CopyFrom(ck.fields[name])
	}
	return nil
}

// runShotResumable executes one shot, optionally starting from a
// checkpoint and emitting periodic checkpoints at time-tile boundaries.
func (sv *Survey) runShotResumable(ctx context.Context, sim *Simulation, sched Schedule, shot int, ro ResumeOptions) (*Result, error) {
	sim.ops.InstallSources(sv.bundles[shot])
	sim.Reset()
	nt := sim.geom.Nt
	t0 := 0
	var prefix [][]float32
	if ck := ro.Checkpoints[shot]; ck != nil {
		if err := sim.restoreCheckpoint(ck, sched); err != nil {
			return nil, err
		}
		t0, prefix = ck.T, ck.receivers
	}
	stride := nt
	if ro.EveryTiles > 0 && ro.OnCheckpoint != nil {
		stride = tileDepth(sched) * ro.EveryTiles
	}
	start := time.Now()
	for t := t0; t < nt; {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		end := min(t+stride, nt)
		if err := sim.execScheduleRange(sched, t, end); err != nil {
			return nil, err
		}
		t = end
		if t < nt && ro.OnCheckpoint != nil && ro.EveryTiles > 0 {
			ck, err := captureCheckpoint(sim, shot, t, prefix)
			if err != nil {
				return nil, err
			}
			if err := ro.OnCheckpoint(ck); err != nil {
				return nil, fmt.Errorf("wavesim: shot %d checkpoint at t=%d: %w", shot, t, err)
			}
		}
	}
	elapsed := time.Since(start)
	res := newResult(sched.schedule(), elapsed,
		int64(sim.geom.Nx)*int64(sim.geom.Ny)*int64(sim.geom.Nz)*int64(nt-t0))
	res.sched = sched
	res.Kernel = sim.KernelName()
	if reg := obs.Active(); reg != nil {
		reg.Counter(obs.SeriesName("runs_total",
			"physics", sim.opts.Physics.String(), "schedule", sched.schedule())).Add(1)
	}
	rec, err := sim.ops.Receivers()
	if err != nil {
		return nil, err
	}
	// Rows [0, t0) were recorded before the interruption; this run's
	// sampler has zeros there. Splice the carried-over prefix back in.
	for t := range prefix {
		rec[t] = prefix[t]
	}
	res.Receivers = rec
	return res, nil
}

// resumableLane adapts runShotResumable to batch.Lane.
type resumableLane struct {
	ctx   context.Context
	sv    *Survey
	sim   *Simulation
	sched Schedule
	ro    ResumeOptions
	out   []*Result
}

func (l *resumableLane) SetWorkers(n int) { l.sim.workers = n }

func (l *resumableLane) RunShot(shot int) error {
	if l.ro.Completed[shot] {
		return nil
	}
	res, err := l.sv.runShotResumable(l.ctx, l.sim, l.sched, shot, l.ro)
	if err != nil {
		return err
	}
	l.out[shot] = res
	switch {
	case l.ro.OnShot != nil:
		l.ro.OnShot(shot, res)
	case l.sv.opts.OnShot != nil:
		l.sv.opts.OnShot(shot, res)
	}
	return nil
}

// RunResumable executes the survey with cancellation and checkpoint/resume
// semantics: shots marked Completed are skipped, shots with a Checkpoint
// restart from its boundary, and every running shot emits a checkpoint
// each EveryTiles time tiles. A shot that resumes from a checkpoint
// produces receiver records bitwise identical to an uninterrupted run
// under the same schedule (asserted by TestResumeBitwiseIdentical and,
// end-to-end over HTTP, by the serve fault-injection tests).
func (sv *Survey) RunResumable(ctx context.Context, sched Schedule, ro ResumeOptions) (*SurveyResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	hits0, misses0 := sv.pool.Stats()
	out := make([]*Result, len(sv.shots))
	bres, err := batch.RunContext(ctx, batch.Config{
		Shots:          len(sv.shots),
		Concurrency:    sv.opts.Concurrency,
		MaxConcurrency: sv.opts.MaxConcurrency,
		ProbeShots:     sv.opts.ProbeShots,
	}, batch.Funcs{
		Precompute: sv.precomputeShot,
		NewLane: func(lane int) (batch.Lane, error) {
			return &resumableLane{ctx: ctx, sv: sv, sim: sv.fork(), sched: sched, ro: ro, out: out}, nil
		},
		CloseLane: func(l batch.Lane) { sv.release(l.(*resumableLane).sim) },
	})
	if err != nil {
		return nil, err
	}
	hits1, misses1 := sv.pool.Stats()
	res := &SurveyResult{
		Shots:       out,
		Elapsed:     bres.Elapsed,
		ShotsPerSec: bres.ShotsPerSec,
		Concurrency: bres.Concurrency,
		Precompute:  bres.Precompute,
		PoolHits:    hits1 - hits0,
		PoolMisses:  misses1 - misses0,
		Probes:      bres.Probes,
	}
	if reg := obs.Active(); reg != nil {
		reg.Counter("survey_pool_hits").Add(res.PoolHits)
		reg.Counter("survey_pool_misses").Add(res.PoolMisses)
	}
	return res, nil
}

// PoolBalance reports the survey grid pool's cumulative Get/Put counts.
// After any complete run — including a cancelled or failed one — the two
// are equal: every lane's wavefields go back to the pool on close.
func (sv *Survey) PoolBalance() (gets, puts int64) { return sv.pool.Balance() }
