package wavesim

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"wavetile/internal/obs"
)

// reportSim builds a small observed acoustic simulation at the given order.
func reportSim(t *testing.T, so int) *Simulation {
	t.Helper()
	sim, err := New(Options{
		Physics:    Acoustic,
		SpaceOrder: so,
		Shape:      [3]int{48, 48, 48},
		Spacing:    [3]float64{10, 10, 10},
		NBL:        6,
		Steps:      6,
		Vp:         Homogeneous(2000),
		Sources:    []Coord{{235, 235, 100}},
		Receivers:  LineCoords(8, Coord{100, 235, 80}, Coord{380, 235, 80}),
		Observe:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestReportRooflineAttribution is the acceptance check for the report
// tentpole: acoustic SO-4 and SO-8 runs produce reports whose roofline join
// carries a positive achieved-fraction against the paper's machine model.
func TestReportRooflineAttribution(t *testing.T) {
	for _, so := range []int{4, 8} {
		for _, sched := range []Schedule{
			WTB{TimeTile: 3, TileX: 16, TileY: 16, BlockX: 8, BlockY: 8},
			Spatial{BlockX: 8, BlockY: 8},
		} {
			sim := reportSim(t, so)
			res, err := sim.Run(sched)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sim.Report(res, ReportOptions{TraceN: 24, TraceNt: 2})
			if err != nil {
				t.Fatalf("SO-%d %s: %v", so, res.Schedule, err)
			}
			if rep.Version != obs.ReportVersion || rep.Kind != obs.ReportKind {
				t.Fatalf("SO-%d: bad report header %d/%q", so, rep.Version, rep.Kind)
			}
			if rep.Run.Physics != "acoustic" || rep.Run.SpaceOrder != so || rep.Run.Schedule != res.Schedule {
				t.Fatalf("SO-%d: run info mismatch: %+v", so, rep.Run)
			}
			if rep.GPointsPerSec != res.GPointsPerSec || rep.Points != res.Points {
				t.Fatalf("SO-%d: measurements not carried through", so)
			}
			if len(rep.PhasesNS) == 0 || rep.Counters == nil {
				t.Fatalf("SO-%d: observed run report missing phases/counters", so)
			}
			rf := rep.Roofline
			if rf == nil {
				t.Fatalf("SO-%d %s: no roofline attribution", so, res.Schedule)
			}
			// Auto machine resolution: the measured host fingerprint when one
			// exists, else the Broadwell preset with an explicit marker —
			// never an unmarked preset name.
			if !strings.HasPrefix(rf.Machine, "host/") && rf.Machine != "preset/broadwell" {
				t.Fatalf("SO-%d: unmarked machine %q", so, rf.Machine)
			}
			if rf.TraceN != 24 || rf.TraceNt != 2 {
				t.Fatalf("SO-%d: attribution provenance: %+v", so, rf)
			}
			if rf.PredictedGPointsPS <= 0 || rf.AchievedFraction <= 0 {
				t.Fatalf("SO-%d %s: degenerate attribution: predicted %g achieved %g",
					so, res.Schedule, rf.PredictedGPointsPS, rf.AchievedFraction)
			}
			if rf.ModelDRAMBytes == 0 || rf.EffectiveDRAMGBs <= 0 || rf.BandwidthFraction <= 0 {
				t.Fatalf("SO-%d %s: traffic scaling degenerate: %+v", so, res.Schedule, rf)
			}
			if rf.PredictedBound == "" {
				t.Fatalf("SO-%d: no binding ceiling named", so)
			}
		}
	}
}

// TestReportWTBTracksSchedule asserts reports for WTB runs record the tile
// configuration and that Skylake attribution resolves too.
func TestReportMachineAndConfig(t *testing.T) {
	sim := reportSim(t, 4)
	res, err := sim.Run(WTB{TimeTile: 3, TileX: 16, TileY: 16, BlockX: 8, BlockY: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Report(res, ReportOptions{Machine: "skylake", TraceN: 24, TraceNt: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Roofline.Machine != "Skylake" {
		t.Fatalf("machine = %q", rep.Roofline.Machine)
	}
	if rep.Run.Config == "" {
		t.Fatal("WTB report must record the tile configuration")
	}
	if _, err := sim.Report(res, ReportOptions{Machine: "pentium"}); err == nil {
		t.Fatal("unknown machine must error")
	}
}

// TestReportSkipRoofline covers the measurement-only mode and the
// round-trip through WriteFile/ReadReportFile.
func TestReportRoundTrip(t *testing.T) {
	sim := reportSim(t, 4)
	res, err := sim.Run(Spatial{BlockX: 8, BlockY: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Report(res, ReportOptions{SkipRoofline: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Roofline != nil {
		t.Fatal("SkipRoofline must omit the attribution")
	}

	path := filepath.Join(t.TempDir(), "run.report.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(back)
	if !bytes.Equal(a, b) {
		t.Fatalf("report round-trip changed content:\n%s\nvs\n%s", a, b)
	}

	if _, err := sim.Report(nil, ReportOptions{}); err == nil {
		t.Fatal("nil result must error")
	}
}
