package wavesim

import (
	"context"
	"fmt"
	"time"

	"wavetile/internal/batch"
	"wavetile/internal/grid"
	"wavetile/internal/obs"
	"wavetile/internal/sparse"
	"wavetile/internal/wave"
	"wavetile/internal/wavelet"
)

// Shot is one source configuration of a survey. Receivers, the earth model
// and the time axis are shared across the whole survey (they live in the
// base Options); only the sources move between shots — the seismic
// acquisition geometry of the paper's motivating workload.
type Shot struct {
	Sources []Coord
	// SourceWavelets overrides the generated Ricker series for this shot
	// (one per source). Nil uses the base Options' SourceF0/SourceAmp.
	SourceWavelets [][]float32
}

// SurveyOptions configures the batch execution of a Survey.
type SurveyOptions struct {
	// Concurrency fixes the number of shots run concurrently (K); each
	// runs with Workers/K of the machine under the pipelined schedule.
	// 0 autotunes K by measuring shots/sec on the survey's first shots.
	// 1 runs shots strictly sequentially (still amortized and pooled).
	Concurrency int
	// MaxConcurrency bounds the autotune (0 = worker count).
	MaxConcurrency int
	// ProbeShots is how many shots per lane each autotune candidate
	// measures (default 2); probed shots' results are kept.
	ProbeShots int
	// OnShot, when non-nil, is called as each shot completes. Calls may
	// come from concurrent lanes (never for the same shot twice), so the
	// callback must be safe for concurrent use.
	OnShot func(shot int, res *Result)
}

// Survey runs N shots over one shared, immutable model. Construction does
// all shot-invariant work exactly once — material and damping grids,
// receiver supports/masks, the CFL time axis — and Run precomputes every
// shot's source decomposition up front, then drains the shots through
// pooled propagator clones. Per-shot results are bitwise identical to a
// fresh New-per-shot loop under the same schedule (asserted by the
// batched-vs-sequential oracle test), independent of pooling, concurrency
// or lane assignment.
type Survey struct {
	base     Options
	shots    []Shot
	opts     SurveyOptions
	template *Simulation
	pool     *grid.Pool
	bundles  []*wave.SourceBundle
}

// SurveyResult is the outcome of one Survey.Run.
type SurveyResult struct {
	// Shots holds each shot's Result (receiver record, throughput,
	// kernel), indexed like the shots passed to NewSurvey.
	Shots []*Result

	Elapsed     time.Duration
	ShotsPerSec float64
	// Concurrency is the K the bulk of the survey ran at (the autotuned
	// value when SurveyOptions.Concurrency was 0).
	Concurrency int
	// Precompute is the wall time of the upfront parallel source
	// decomposition across all shots.
	Precompute time.Duration
	// PoolHits/PoolMisses count wavefield-grid requests served by
	// recycling vs by allocation during this run. On a Survey's second
	// and later Runs the steady state is all hits: no wavefield-sized
	// allocation happens per shot.
	PoolHits, PoolMisses int64
	// Probes is the autotune's shots/sec trajectory (nil when K fixed).
	Probes []batch.Probe
}

// NewSurvey validates the shots and builds the shared-model template. The
// base Options' Sources/SourceWavelets must be empty — sources belong to
// the shots.
func NewSurvey(base Options, shots []Shot, opts SurveyOptions) (*Survey, error) {
	if len(shots) == 0 {
		return nil, fmt.Errorf("%w: survey has no shots", ErrInvalidOptions)
	}
	if len(base.Sources) > 0 || base.SourceWavelets != nil {
		return nil, fmt.Errorf("%w: survey base options must not carry sources (put them in Shots)", ErrInvalidOptions)
	}
	for i, sh := range shots {
		if err := checkCoords(fmt.Sprintf("shot %d source", i), sh.Sources, base.Shape, base.Spacing, base.SincSources); err != nil {
			return nil, err
		}
		if sh.SourceWavelets != nil && len(sh.SourceWavelets) != len(sh.Sources) {
			return nil, fmt.Errorf("%w: shot %d has %d wavelets for %d sources",
				ErrInvalidOptions, i, len(sh.SourceWavelets), len(sh.Sources))
		}
	}
	// The template is a full sourceless Simulation: model grids, damping,
	// receiver supports and the time axis are built here, once. Lanes are
	// shared-state clones of it; the template itself never runs, so its
	// (unpooled) wavefields stay zero and pristine.
	template, err := New(base)
	if err != nil {
		return nil, err
	}
	return &Survey{
		base:     base,
		shots:    shots,
		opts:     opts,
		template: template,
		pool:     grid.NewPool(),
		bundles:  make([]*wave.SourceBundle, len(shots)),
	}, nil
}

// Geometry reports the survey's shared discretization.
func (sv *Survey) Geometry() (shape [3]int, spacing [3]float64, dt float64, nt int) {
	return sv.template.Geometry()
}

// Shots returns the number of shots.
func (sv *Survey) Shots() int { return len(sv.shots) }

// MinTile reports the propagator's minimum WTB tile edge (see
// Simulation.MinTile) — surveys need it to build valid WTB schedules.
func (sv *Survey) MinTile() int { return sv.template.MinTile() }

// surveyLane adapts one shared-model Simulation clone to batch.Lane.
type surveyLane struct {
	sv    *Survey
	sim   *Simulation
	sched Schedule
	out   []*Result
}

func (l *surveyLane) SetWorkers(n int) { l.sim.workers = n }

func (l *surveyLane) RunShot(shot int) error {
	l.sim.ops.InstallSources(l.sv.bundles[shot])
	res, err := l.sim.runQuiet(l.sched)
	if err != nil {
		return err
	}
	l.out[shot] = res
	if reg := obs.Active(); reg != nil {
		// Per-shot throughput, scraped as a live gauge (milli-GPts/s to
		// keep the integer metric meaningful at survey problem sizes).
		reg.Gauge("survey_shot_gpts_milli").Set(int64(res.GPointsPerSec * 1000))
	}
	if l.sv.opts.OnShot != nil {
		l.sv.opts.OnShot(shot, res)
	}
	return nil
}

// runQuiet is Run without the per-run observability attribution: with K
// concurrent lanes sharing the process-global registry, snapshot deltas
// would mix lanes, so batch shots report only through atomic counters
// (runs_total, survey_*) and leave Result.Phases/Counters nil.
func (s *Simulation) runQuiet(sched Schedule) (*Result, error) {
	s.Reset()
	start := time.Now()
	if err := s.execSchedule(sched); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	res := newResult(sched.schedule(), elapsed,
		int64(s.geom.Nx)*int64(s.geom.Ny)*int64(s.geom.Nz)*int64(s.geom.Nt))
	res.sched = sched
	res.Kernel = s.KernelName()
	if reg := obs.Active(); reg != nil {
		reg.Counter(obs.SeriesName("runs_total",
			"physics", s.opts.Physics.String(), "schedule", sched.schedule())).Add(1)
	}
	rec, err := s.ops.Receivers()
	if err != nil {
		return nil, err
	}
	res.Receivers = rec
	return res, nil
}

// shotPoints builds the sparse point set for one shot.
func shotPoints(sh Shot) *sparse.Points {
	src := &sparse.Points{}
	for _, c := range sh.Sources {
		src.Coords = append(src.Coords, sparse.Coord(c))
	}
	return src
}

// precomputeShot builds shot i's source bundle through the template's
// sparse ops — the exact code path New takes, so installed bundles are
// bitwise identical to per-shot construction.
func (sv *Survey) precomputeShot(i int) error {
	sh := sv.shots[i]
	wavs := sh.SourceWavelets
	if wavs == nil {
		_, _, dt, nt := sv.template.Geometry()
		f0, amp := sv.base.SourceF0, sv.base.SourceAmp
		if f0 == 0 {
			f0 = 10
		}
		if amp == 0 {
			amp = 1
		}
		wavs = make([][]float32, len(sh.Sources))
		for j := range wavs {
			wavs[j] = wavelet.RickerSeries(f0, nt, dt, amp)
		}
	}
	b, err := sv.template.ops.PrecomputeSources(shotPoints(sh), wavs, sv.base.SincSources)
	if err != nil {
		return err
	}
	sv.bundles[i] = b
	return nil
}

// fork clones the template into a new lane Simulation sharing all
// model-derived state, with wavefields drawn from the survey's pool.
func (sv *Survey) fork() *Simulation {
	t := sv.template
	c := &Simulation{opts: t.opts, geom: t.geom}
	switch {
	case t.acoustic != nil:
		a := t.acoustic.CloneShared(sv.pool)
		c.acoustic, c.prop, c.ops = a, a, a.Ops
	case t.tti != nil:
		w := t.tti.CloneShared(sv.pool)
		c.tti, c.prop, c.ops = w, w, w.Ops
	case t.elastic != nil:
		e := t.elastic.CloneShared(sv.pool)
		c.elastic, c.prop, c.ops = e, e, e.Ops
	}
	return c
}

// release returns a lane's wavefields to the survey pool.
func (sv *Survey) release(s *Simulation) {
	switch {
	case s.acoustic != nil:
		s.acoustic.ReleaseGrids(sv.pool)
	case s.tti != nil:
		s.tti.ReleaseGrids(sv.pool)
	case s.elastic != nil:
		s.elastic.ReleaseGrids(sv.pool)
	}
}

// Run executes every shot under sched and returns the per-shot results
// plus survey-level throughput. Each lane's wavefield grids are taken from
// the survey's buffer pool and returned afterwards, so repeated Runs (and
// autotune lane turnover) recycle instead of reallocating; survey_pool_hits
// / survey_pool_misses / survey_shots_done counters land on the active obs
// registry (and thus /metrics).
func (sv *Survey) Run(sched Schedule) (*SurveyResult, error) {
	return sv.RunContext(context.Background(), sched)
}

// RunContext is Run with external cancellation: once ctx is done no new
// shot is dispatched, in-flight shots finish, lane wavefields return to
// the pool, and the error satisfies errors.Is(err, ctx.Err()).
func (sv *Survey) RunContext(ctx context.Context, sched Schedule) (*SurveyResult, error) {
	hits0, misses0 := sv.pool.Stats()
	out := make([]*Result, len(sv.shots))
	bres, err := batch.RunContext(ctx, batch.Config{
		Shots:          len(sv.shots),
		Concurrency:    sv.opts.Concurrency,
		MaxConcurrency: sv.opts.MaxConcurrency,
		ProbeShots:     sv.opts.ProbeShots,
	}, batch.Funcs{
		Precompute: sv.precomputeShot,
		NewLane: func(lane int) (batch.Lane, error) {
			return &surveyLane{sv: sv, sim: sv.fork(), sched: sched, out: out}, nil
		},
		CloseLane: func(l batch.Lane) { sv.release(l.(*surveyLane).sim) },
	})
	if err != nil {
		return nil, err
	}
	hits1, misses1 := sv.pool.Stats()
	res := &SurveyResult{
		Shots:       out,
		Elapsed:     bres.Elapsed,
		ShotsPerSec: bres.ShotsPerSec,
		Concurrency: bres.Concurrency,
		Precompute:  bres.Precompute,
		PoolHits:    hits1 - hits0,
		PoolMisses:  misses1 - misses0,
		Probes:      bres.Probes,
	}
	if reg := obs.Active(); reg != nil {
		reg.Counter("survey_pool_hits").Add(res.PoolHits)
		reg.Counter("survey_pool_misses").Add(res.PoolMisses)
	}
	return res, nil
}

// RunSurvey is the one-call batch entry point: build a Survey over base
// and shots, run every shot under sched, return the per-shot results.
//
//	res, err := wavesim.RunSurvey(base, shots, wavesim.WTB{...}, wavesim.SurveyOptions{})
func RunSurvey(base Options, shots []Shot, sched Schedule, opts SurveyOptions) (*SurveyResult, error) {
	sv, err := NewSurvey(base, shots, opts)
	if err != nil {
		return nil, err
	}
	return sv.Run(sched)
}
