package wavesim

import "errors"

// Typed error categories returned by New and Run. Callers distinguish them
// with errors.Is; every configuration problem the generator-driven
// verification harness can produce (0 timesteps, non-finite spacing,
// boundary-hugging receivers, NaN coordinates, …) maps onto one of these
// instead of panicking deep inside the build path.
var (
	// ErrInvalidOptions tags structurally invalid Options: bad space order,
	// undersized or non-positive shapes, non-finite or non-positive spacing,
	// a missing Vp field, an empty or unusable time axis, or mismatched
	// wavelet counts.
	ErrInvalidOptions = errors.New("wavesim: invalid options")

	// ErrPlacement tags source/receiver coordinates that cannot be
	// interpolated on the grid: non-finite values, points outside the grid
	// hull, or sinc-interpolated points too close to the boundary for their
	// support.
	ErrPlacement = errors.New("wavesim: off-the-grid point not usable")
)
