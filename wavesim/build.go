package wavesim

import (
	"fmt"
	"math"
	"time"

	"wavetile/internal/grid"
	"wavetile/internal/model"
	"wavetile/internal/obs"
	"wavetile/internal/sparse"
	"wavetile/internal/tiling"
	"wavetile/internal/wave"
	"wavetile/internal/wavelet"
)

// New validates the options, builds the earth model, computes a CFL-stable
// time axis, precomputes the sparse-operator structures and returns a
// runnable Simulation. Invalid configurations — including the degenerate
// corners a generator can produce (0 or negative timesteps, NaN spacing or
// coordinates, points on or beyond the grid boundary) — return errors tagged
// ErrInvalidOptions or ErrPlacement rather than panicking.
func New(o Options) (*Simulation, error) {
	if o.SpaceOrder <= 0 || o.SpaceOrder%2 != 0 {
		return nil, fmt.Errorf("%w: space order must be positive and even, got %d", ErrInvalidOptions, o.SpaceOrder)
	}
	for d := 0; d < 3; d++ {
		if o.Shape[d] < 2*o.SpaceOrder {
			return nil, fmt.Errorf("%w: shape[%d]=%d too small for space order %d", ErrInvalidOptions, d, o.Shape[d], o.SpaceOrder)
		}
		if !(o.Spacing[d] > 0) || math.IsInf(o.Spacing[d], 0) { // catches NaN too
			return nil, fmt.Errorf("%w: spacing[%d]=%g must be positive and finite", ErrInvalidOptions, d, o.Spacing[d])
		}
	}
	if o.Vp == nil {
		return nil, fmt.Errorf("%w: Vp field is required", ErrInvalidOptions)
	}
	if o.Steps < 0 {
		return nil, fmt.Errorf("%w: Steps=%d must not be negative", ErrInvalidOptions, o.Steps)
	}
	if o.Steps == 0 && (!(o.TMax > 0) || math.IsInf(o.TMax, 0)) {
		return nil, fmt.Errorf("%w: set Steps > 0 or a positive finite TMax (got Steps=%d TMax=%g)",
			ErrInvalidOptions, o.Steps, o.TMax)
	}
	if math.IsNaN(o.DtOverride) || math.IsInf(o.DtOverride, 0) || o.DtOverride < 0 {
		return nil, fmt.Errorf("%w: DtOverride=%g must be a non-negative finite value", ErrInvalidOptions, o.DtOverride)
	}
	if err := checkCoords("source", o.Sources, o.Shape, o.Spacing, o.SincSources); err != nil {
		return nil, err
	}
	if err := checkCoords("receiver", o.Receivers, o.Shape, o.Spacing, false); err != nil {
		return nil, err
	}
	if o.SourceF0 == 0 {
		o.SourceF0 = 10
	}
	if o.SourceAmp == 0 {
		o.SourceAmp = 1
	}

	geom := model.Geometry{
		Nx: o.Shape[0], Ny: o.Shape[1], Nz: o.Shape[2],
		Hx: o.Spacing[0], Hy: o.Spacing[1], Hz: o.Spacing[2],
		NBL: o.NBL,
	}
	halo := o.SpaceOrder / 2
	s := &Simulation{opts: o}

	// Probe vmax for the CFL bound (fields re-sample it during build).
	vmax := probeMax(geom, o.Vp)
	if !(vmax > 0) || math.IsInf(vmax, 0) {
		return nil, fmt.Errorf("%w: Vp field probes to vmax=%g; need a positive finite velocity", ErrInvalidOptions, vmax)
	}

	var dt float64
	switch o.Physics {
	case Acoustic:
		dt = geom.CriticalDtAcoustic(o.SpaceOrder, vmax, model.DefaultCFL)
	case TTI:
		epsMax := 0.2
		if o.Epsilon != nil {
			epsMax = probeMax(geom, o.Epsilon)
		}
		dt = geom.CriticalDtTTI(o.SpaceOrder, vmax, epsMax, model.DefaultCFL)
	case Elastic:
		dt = geom.CriticalDtElastic(o.SpaceOrder, vmax, model.DefaultCFL)
	default:
		return nil, fmt.Errorf("%w: unknown physics %v", ErrInvalidOptions, o.Physics)
	}
	if o.DtOverride > 0 {
		if o.DtOverride > dt {
			return nil, fmt.Errorf("%w: DtOverride %g exceeds the CFL bound %g", ErrInvalidOptions, o.DtOverride, dt)
		}
		dt = o.DtOverride
	}
	if o.Steps > 0 {
		geom.Dt = dt
		geom.Nt = o.Steps
	} else {
		geom.SetTime(o.TMax, dt)
	}
	if geom.Nt < 1 {
		return nil, fmt.Errorf("%w: time axis resolves to %d timesteps", ErrInvalidOptions, geom.Nt)
	}
	s.geom = geom

	src := &sparse.Points{}
	for _, c := range o.Sources {
		src.Coords = append(src.Coords, sparse.Coord(c))
	}
	rec := &sparse.Points{}
	for _, c := range o.Receivers {
		rec.Coords = append(rec.Coords, sparse.Coord(c))
	}
	wavs := o.SourceWavelets
	if wavs == nil {
		wavs = make([][]float32, src.N())
		for i := range wavs {
			wavs[i] = wavelet.RickerSeries(o.SourceF0, geom.Nt, geom.Dt, o.SourceAmp)
		}
	} else if len(wavs) != src.N() {
		return nil, fmt.Errorf("%w: %d wavelets for %d sources", ErrInvalidOptions, len(wavs), src.N())
	}

	switch o.Physics {
	case Acoustic:
		params := model.NewAcoustic(geom, halo, o.Vp)
		a, err := wave.NewAcoustic(wave.AcousticOpts{
			Params: params, SO: o.SpaceOrder, Src: src, SrcWav: wavs, Rec: rec,
			SincSource: o.SincSources,
		})
		if err != nil {
			return nil, err
		}
		s.acoustic, s.prop, s.ops = a, a, a.Ops
	case TTI:
		eps := orDefault(o.Epsilon, 0.2)
		del := orDefault(o.Delta, 0.1)
		th := orDefault(o.Theta, 0.35)
		ph := orDefault(o.Phi, 0.25)
		params := model.NewTTI(geom, halo, o.Vp, eps, del, th, ph)
		w, err := wave.NewTTI(wave.TTIOpts{
			Params: params, SO: o.SpaceOrder, Src: src, SrcWav: wavs, Rec: rec,
			SincSource: o.SincSources,
		})
		if err != nil {
			return nil, err
		}
		s.tti, s.prop, s.ops = w, w, w.Ops
	case Elastic:
		vs := o.Vs
		if vs == nil {
			vp := o.Vp
			vs = func(x, y, z float64) float64 { return vp(x, y, z) / 2 }
		}
		rho := o.Rho
		if rho == nil {
			rho = model.Homogeneous(1800)
		}
		params := model.NewElastic(geom, halo, o.Vp, vs, rho)
		e, err := wave.NewElastic(wave.ElasticOpts{
			Params: params, SO: o.SpaceOrder, Src: src, SrcWav: wavs, Rec: rec,
			SincSource: o.SincSources,
		})
		if err != nil {
			return nil, err
		}
		s.elastic, s.prop, s.ops = e, e, e.Ops
	}
	if o.KernelVariant != "" {
		if err := s.SetKernelVariant(o.KernelVariant); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidOptions, err)
		}
	}
	return s, nil
}

// checkCoords validates off-the-grid coordinates up front so that placement
// problems surface as ErrPlacement from New instead of interpolation errors
// (or index panics on NaN) from deep inside the propagator builders. Points
// exactly on the grid boundary are legal for trilinear interpolation (the
// support clamps onto the hull face); sinc supports need SincRadius points of
// margin.
func checkCoords(kind string, pts []Coord, shape [3]int, h [3]float64, sinc bool) error {
	for i, c := range pts {
		for d := 0; d < 3; d++ {
			u := c[d] / h[d]
			if math.IsNaN(u) || math.IsInf(u, 0) {
				return fmt.Errorf("%w: %s %d coordinate[%d]=%g is not finite", ErrPlacement, kind, i, d, c[d])
			}
			if sinc {
				if u < float64(sparse.SincRadius-1) || u >= float64(shape[d]-sparse.SincRadius) {
					return fmt.Errorf("%w: %s %d coordinate[%d]=%g too close to the boundary for sinc radius %d",
						ErrPlacement, kind, i, d, c[d], sparse.SincRadius)
				}
				continue
			}
			if u < 0 || u > float64(shape[d]-1) {
				return fmt.Errorf("%w: %s %d coordinate[%d]=%g outside the grid hull [0, %g]",
					ErrPlacement, kind, i, d, c[d], float64(shape[d]-1)*h[d])
			}
		}
	}
	return nil
}

func orDefault(f FieldFunc, v float64) model.FieldFunc {
	if f != nil {
		return f
	}
	return model.Homogeneous(v)
}

func probeMax(g model.Geometry, f FieldFunc) float64 {
	// Probe coarsely in x and y but at full grid resolution in z: subsurface
	// models are layered in depth, so thin fast layers must not slip between
	// probe points (they would yield an unstable CFL dt). Models with
	// sub-grid lateral structure finer than 1/16 of the domain should pass
	// a DtOverride computed from their true vmax.
	m := 0.0
	for i := 0; i <= 16; i++ {
		for j := 0; j <= 16; j++ {
			for k := 0; k < g.Nz; k++ {
				v := f(float64(i)/16*float64(g.Nx-1)*g.Hx,
					float64(j)/16*float64(g.Ny-1)*g.Hy,
					float64(k)*g.Hz)
				if v > m {
					m = v
				}
			}
		}
	}
	return m
}

// Geometry reports the discretization (shape, spacing, dt, nt).
func (s *Simulation) Geometry() (shape [3]int, spacing [3]float64, dt float64, nt int) {
	return [3]int{s.geom.Nx, s.geom.Ny, s.geom.Nz},
		[3]float64{s.geom.Hx, s.geom.Hy, s.geom.Hz}, s.geom.Dt, s.geom.Nt
}

// Dt returns the CFL-stable timestep in seconds.
func (s *Simulation) Dt() float64 { return s.geom.Dt }

// Steps returns the number of timesteps.
func (s *Simulation) Steps() int { return s.geom.Nt }

// MinTile returns the smallest legal WTB tile edge for this simulation.
func (s *Simulation) MinTile() int { return s.prop.MinTile() }

// Reset clears wavefields and recordings so the simulation can be re-run.
//
// Reset restores exactly the state a freshly built Simulation starts from:
// all wavefield buffers are zeroed (halo included) and the sampler /
// baseline receiver recordings are cleared, while every precomputed
// structure (model factor grids, FD coefficients, sparse masks and the
// decomposed source wavefield) is left intact — none of it depends on run
// state. A run after Reset therefore produces bitwise-identical wavefields
// and receiver records to the first run under the same schedule; Run calls
// Reset itself, so consecutive Runs are independent. The batch engine
// (Survey) leans on this to recycle one propagator across many shots.
func (s *Simulation) Reset() {
	switch {
	case s.acoustic != nil:
		s.acoustic.Reset()
	case s.tti != nil:
		s.tti.Reset()
	case s.elastic != nil:
		s.elastic.Reset()
	}
}

// Run executes the simulation from zero initial conditions under the given
// schedule and returns throughput and receiver data. The simulation is
// Reset first, so consecutive Runs are independent.
//
// With Options.Observe set (or a process-global obs registry installed),
// the returned Result additionally carries the per-phase wall-time
// breakdown and counter deltas of this run.
func (s *Simulation) Run(sched Schedule) (*Result, error) {
	s.Reset()
	reg, restore := s.obsRegistry()
	defer restore()
	var before obs.Snapshot
	if reg != nil {
		before = reg.Snapshot()
	}

	start := time.Now()
	if err := s.execSchedule(sched); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	res := newResult(sched.schedule(), elapsed,
		int64(s.geom.Nx)*int64(s.geom.Ny)*int64(s.geom.Nz)*int64(s.geom.Nt))
	res.sched = sched
	res.Kernel = s.KernelName()
	if reg != nil {
		// One labeled series per (physics, schedule) pair, so a scraped
		// /metrics endpoint can break run counts down without log parsing.
		reg.Counter(obs.SeriesName("runs_total",
			"physics", s.opts.Physics.String(), "schedule", sched.schedule())).Add(1)
		res.attachObs(reg.Snapshot().DeltaFrom(before))
	}
	rec, err := s.ops.Receivers()
	if err != nil {
		return nil, err
	}
	res.Receivers = rec
	return res, nil
}

// execSchedule drives the propagator under sched. It is the single
// schedule dispatch shared by Run and the survey lanes' quiet runs.
func (s *Simulation) execSchedule(sched Schedule) error {
	switch c := sched.(type) {
	case Spatial:
		bx, by := c.BlockX, c.BlockY
		if bx == 0 {
			bx = 8
		}
		if by == 0 {
			by = 8
		}
		tiling.RunSpatial(s.prop, bx, by, !c.Unfused)
		return nil
	case WTB:
		cfg := tiling.Config{TT: c.TimeTile, TileX: c.TileX, TileY: c.TileY, BlockX: c.BlockX, BlockY: c.BlockY}
		return tiling.RunWTB(s.prop, cfg)
	case WTBPipelined:
		cfg := tiling.Config{TT: c.TimeTile, TileX: c.TileX, TileY: c.TileY,
			BlockX: c.BlockX, BlockY: c.BlockY, Workers: s.workers}
		return tiling.RunWTBPipelined(s.prop, cfg)
	default:
		return fmt.Errorf("wavesim: unknown schedule %T", sched)
	}
}

// obsRegistry resolves the registry a run reports to: a process-global one
// if installed, a run-scoped one if Options.Observe is set (restored by the
// returned func), nil otherwise.
func (s *Simulation) obsRegistry() (*obs.Registry, func()) {
	if r := obs.Active(); r != nil {
		return r, func() {}
	}
	if !s.opts.Observe {
		return nil, func() {}
	}
	r := obs.NewRegistry()
	return r, obs.Swap(r)
}

// attachObs fills the Result's Phases and Counters from a run's snapshot
// delta, adding the "overhead" residual so the phases sum to Elapsed.
func (r *Result) attachObs(snap obs.Snapshot) {
	r.Phases = snap.Phases
	r.Counters = snap.Counters
	overhead := r.Elapsed - snap.PhaseTotal()
	if overhead < 0 {
		overhead = 0
	}
	r.Phases[obs.PhaseOverhead] = overhead
}

// WavefieldSlice returns a z-plane of the final main wavefield (pressure u
// for Acoustic, p for TTI, vz for Elastic) as rows[x][y], for plotting and
// snapshot inspection.
func (s *Simulation) WavefieldSlice(z int) [][]float32 {
	var g *grid.Grid
	switch {
	case s.acoustic != nil:
		g = s.acoustic.Final()
	case s.tti != nil:
		g = s.tti.WavefieldP(s.geom.Nt)
	case s.elastic != nil:
		g = s.elastic.Vz
	}
	out := make([][]float32, g.Nx)
	for x := range out {
		out[x] = make([]float32, g.Ny)
		for y := range out[x] {
			out[x][y] = g.At(x, y, z)
		}
	}
	return out
}

// MaxAbsWavefield returns the maximum |u| of the final main wavefield.
func (s *Simulation) MaxAbsWavefield() float64 {
	switch {
	case s.acoustic != nil:
		return s.acoustic.Final().MaxAbs()
	case s.tti != nil:
		return s.tti.WavefieldP(s.geom.Nt).MaxAbs()
	case s.elastic != nil:
		return s.elastic.Vz.MaxAbs()
	}
	return 0
}

// RunWithSnapshots executes the spatially-blocked schedule while capturing
// the main wavefield's x–z plane at y = yPlane every `every` timesteps —
// the hook reverse-time migration and FWI gradient builders need (the
// paper's motivating applications). Snapshot k holds the wavefield at time
// index k·every+1 as [x][z] rows. Temporal blocking keeps interior
// timesteps cache-transient, so snapshotting naturally pairs with the
// spatial schedule.
func (s *Simulation) RunWithSnapshots(every, yPlane, blockX, blockY int) (*Result, [][][]float32, error) {
	if every < 1 || yPlane < 0 || yPlane >= s.geom.Ny {
		return nil, nil, fmt.Errorf("wavesim: bad snapshot spec every=%d y=%d", every, yPlane)
	}
	if blockX == 0 {
		blockX = 8
	}
	if blockY == 0 {
		blockY = 8
	}
	s.Reset()
	reg, restore := s.obsRegistry()
	defer restore()
	var before obs.Snapshot
	if reg != nil {
		before = reg.Snapshot()
	}
	start := time.Now()
	s.prop.SetBlocks(blockX, blockY)
	off := s.prop.MaxPhaseOffset()
	full := grid.Region{X0: 0, X1: s.geom.Nx + off, Y0: 0, Y1: s.geom.Ny + off}
	var snaps [][][]float32
	for t := 0; t < s.geom.Nt; t++ {
		s.prop.Step(t, full, true)
		if t%every == 0 {
			snaps = append(snaps, s.capturePlane(t+1, yPlane))
		}
	}
	elapsed := time.Since(start)
	res := newResult("spatial+snapshots", elapsed,
		int64(s.geom.Nx)*int64(s.geom.Ny)*int64(s.geom.Nz)*int64(s.geom.Nt))
	res.sched = Spatial{BlockX: blockX, BlockY: blockY}
	res.Kernel = s.KernelName()
	if reg != nil {
		res.attachObs(reg.Snapshot().DeltaFrom(before))
	}
	rec, err := s.ops.Receivers()
	if err != nil {
		return nil, nil, err
	}
	res.Receivers = rec
	return res, snaps, nil
}

// capturePlane copies the main wavefield's x–z plane at time index t.
func (s *Simulation) capturePlane(t, y int) [][]float32 {
	var g *grid.Grid
	switch {
	case s.acoustic != nil:
		g = s.acoustic.Wavefield(t)
	case s.tti != nil:
		g = s.tti.WavefieldP(t)
	case s.elastic != nil:
		g = s.elastic.Vz
	}
	out := make([][]float32, g.Nx)
	for x := range out {
		out[x] = append([]float32(nil), g.Row(x, y)...)
	}
	return out
}
