package wavesim

import (
	"io"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"wavetile/internal/obs"
)

// surveyBase is smallOpts without sources: the shared-model side of a
// survey.
func surveyBase(phys Physics) Options {
	o := smallOpts(phys)
	o.Sources = nil
	return o
}

// surveyShots places nshots small off-the-grid source arrays marching
// along x (a miniature sail line).
func surveyShots(nshots int) []Shot {
	shots := make([]Shot, nshots)
	for s := range shots {
		dx := 12.0 * float64(s)
		shots[s] = Shot{Sources: []Coord{
			{120.3 + dx, 150.7, 110.1},
			{150.9 + dx, 150.7, 110.1},
			{135.6 + dx, 170.2, 110.1},
		}}
	}
	return shots
}

// sequentialRecords runs the survey the pre-batch way — one wavesim.New per
// shot — and returns each shot's receiver record. This is the oracle the
// batched engine must match bitwise.
func sequentialRecords(t *testing.T, base Options, shots []Shot, sched Schedule) [][][]float32 {
	t.Helper()
	out := make([][][]float32, len(shots))
	for i, sh := range shots {
		o := base
		o.Sources = sh.Sources
		o.SourceWavelets = sh.SourceWavelets
		sim, err := New(o)
		if err != nil {
			t.Fatalf("shot %d: %v", i, err)
		}
		res, err := sim.Run(sched)
		if err != nil {
			t.Fatalf("shot %d: %v", i, err)
		}
		out[i] = res.Receivers
	}
	return out
}

func assertRecordsEqual(t *testing.T, want, got [][]float32, shot int) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("shot %d: %d vs %d trace steps", shot, len(want), len(got))
	}
	for ti := range want {
		for r := range want[ti] {
			if want[ti][r] != got[ti][r] {
				t.Fatalf("shot %d receiver %d t=%d: sequential %g vs batched %g",
					shot, r, ti, want[ti][r], got[ti][r])
			}
		}
	}
}

// TestSurveyMatchesSequentialBitwise is the batch oracle: batched, pooled,
// concurrent shot execution must be bitwise identical to the per-shot
// wavesim.New loop for every physics × schedule combination.
func TestSurveyMatchesSequentialBitwise(t *testing.T) {
	const nshots = 3
	for _, phys := range []Physics{Acoustic, TTI, Elastic} {
		t.Run(phys.String(), func(t *testing.T) {
			base := surveyBase(phys)
			shots := surveyShots(nshots)
			sv, err := NewSurvey(base, shots, SurveyOptions{Concurrency: 2})
			if err != nil {
				t.Fatal(err)
			}
			mt := sv.template.MinTile()
			scheds := []Schedule{
				Spatial{BlockX: 8, BlockY: 8},
				WTB{TimeTile: 4, TileX: 3 * mt, TileY: 2 * mt, BlockX: 8, BlockY: 8},
				WTBPipelined{TimeTile: 4, TileX: 3 * mt, TileY: 2 * mt, BlockX: 8, BlockY: 8},
			}
			for _, sched := range scheds {
				t.Run(sched.schedule(), func(t *testing.T) {
					want := sequentialRecords(t, base, shots, sched)
					res, err := sv.Run(sched)
					if err != nil {
						t.Fatal(err)
					}
					if res.Concurrency != 2 {
						t.Fatalf("Concurrency = %d, want 2", res.Concurrency)
					}
					for i := range shots {
						if res.Shots[i] == nil {
							t.Fatalf("shot %d has no result", i)
						}
						assertRecordsEqual(t, want[i], res.Shots[i].Receivers, i)
					}
				})
			}
		})
	}
}

// TestSurveyRerunPoolsGrids asserts the pooling contract: a Survey's
// second Run draws every lane wavefield from the pool (all hits, no
// misses) and still matches the oracle bitwise.
func TestSurveyRerunPoolsGrids(t *testing.T) {
	base := surveyBase(Acoustic)
	shots := surveyShots(2)
	sv, err := NewSurvey(base, shots, SurveyOptions{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	sched := Spatial{BlockX: 8, BlockY: 8}
	first, err := sv.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if first.PoolMisses == 0 {
		t.Fatal("first run should allocate lane wavefields (misses > 0)")
	}
	second, err := sv.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if second.PoolMisses != 0 || second.PoolHits == 0 {
		t.Fatalf("second run hits=%d misses=%d, want all-hit steady state",
			second.PoolHits, second.PoolMisses)
	}
	want := sequentialRecords(t, base, shots, sched)
	for i := range shots {
		assertRecordsEqual(t, want[i], second.Shots[i].Receivers, i)
	}
}

// TestResetRerunBitwise pins the Reset reuse semantics the batch engine
// depends on: a Simulation re-run after Reset produces bitwise-identical
// receiver records and final wavefields.
func TestResetRerunBitwise(t *testing.T) {
	for _, phys := range []Physics{Acoustic, TTI, Elastic} {
		t.Run(phys.String(), func(t *testing.T) {
			sim, err := New(smallOpts(phys))
			if err != nil {
				t.Fatal(err)
			}
			sched := Spatial{BlockX: 8, BlockY: 8}
			first, err := sim.Run(sched)
			if err != nil {
				t.Fatal(err)
			}
			wf1 := sim.WavefieldSlice(18)
			// Run calls Reset itself; calling it again must be harmless.
			sim.Reset()
			second, err := sim.Run(sched)
			if err != nil {
				t.Fatal(err)
			}
			wf2 := sim.WavefieldSlice(18)
			assertRecordsEqual(t, first.Receivers, second.Receivers, 0)
			for x := range wf1 {
				for y := range wf1[x] {
					if wf1[x][y] != wf2[x][y] {
						t.Fatalf("wavefield (%d,%d): %g vs %g after Reset re-run",
							x, y, wf1[x][y], wf2[x][y])
					}
				}
			}
		})
	}
}

// TestSurveyAutotune smoke-tests the K autotune path end to end: all shots
// complete exactly once and probes were recorded.
func TestSurveyAutotune(t *testing.T) {
	base := surveyBase(Acoustic)
	shots := surveyShots(6)
	res, err := RunSurvey(base, shots, Spatial{BlockX: 8, BlockY: 8},
		SurveyOptions{MaxConcurrency: 2, ProbeShots: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probes) == 0 {
		t.Fatal("autotune recorded no probes")
	}
	for i, r := range res.Shots {
		if r == nil || r.Receivers == nil {
			t.Fatalf("shot %d missing result", i)
		}
	}
	if res.Concurrency < 1 {
		t.Fatalf("Concurrency = %d", res.Concurrency)
	}
}

// TestSurveySteadyStateAllocations verifies the headline perf claim: once
// a lane is warm, running one more shot allocates no wavefield-sized
// buffers — per-shot heap growth stays far below a single wavefield grid
// (the only allocations left are the returned receiver traces and
// schedule bookkeeping).
func TestSurveySteadyStateAllocations(t *testing.T) {
	base := surveyBase(Acoustic)
	shots := surveyShots(2)
	sv, err := NewSurvey(base, shots, SurveyOptions{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	sched := Spatial{BlockX: 8, BlockY: 8}
	for i := range shots {
		if err := sv.precomputeShot(i); err != nil {
			t.Fatal(err)
		}
	}
	lane := &surveyLane{sv: sv, sim: sv.fork(), sched: sched, out: make([]*Result, len(shots))}
	defer sv.release(lane.sim)
	lane.SetWorkers(1)
	// Warm up: first shots touch lazy paths (sampler gather buffers etc.).
	for i := 0; i < 2; i++ {
		if err := lane.RunShot(i % len(shots)); err != nil {
			t.Fatal(err)
		}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const rounds = 5
	for i := 0; i < rounds; i++ {
		if err := lane.RunShot(i % len(shots)); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	perShot := int64(after.TotalAlloc-before.TotalAlloc) / rounds
	gridBytes := int64(len(lane.sim.acoustic.U[0].Data)) * 4
	if perShot >= gridBytes {
		t.Fatalf("steady-state shot allocates %d B — at least one wavefield grid (%d B); pooling is broken",
			perShot, gridBytes)
	}
	t.Logf("steady-state allocation: %d B/shot (wavefield grid = %d B)", perShot, gridBytes)
}

// TestSurveyCountersOnMetrics asserts the survey counters render on the
// Prometheus /metrics endpoint after a batched run.
func TestSurveyCountersOnMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	defer obs.Swap(reg)()
	base := surveyBase(Acoustic)
	sv, err := NewSurvey(base, surveyShots(2), SurveyOptions{Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Run(Spatial{BlockX: 8, BlockY: 8}); err != nil {
		t.Fatal(err)
	}
	// Re-run so pool hits are nonzero and every counter family appears.
	if _, err := sv.Run(Spatial{BlockX: 8, BlockY: 8}); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	obs.DebugHandler().ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	text := string(body)
	for _, metric := range []string{
		"wavetile_survey_shots_done",
		"wavetile_survey_pool_hits",
		"wavetile_survey_pool_misses",
		"wavetile_survey_precompute_shots",
		"wavetile_survey_precompute_reused",
	} {
		if !strings.Contains(text, metric) {
			t.Fatalf("/metrics missing %s; body:\n%s", metric, text)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["survey_shots_done"]; got != 4 {
		t.Fatalf("survey_shots_done = %d, want 4", got)
	}
	if got := snap.Counters["survey_pool_hits"]; got == 0 {
		t.Fatal("survey_pool_hits = 0 after a re-run")
	}
}

// TestSurveyValidation covers the construction error surface.
func TestSurveyValidation(t *testing.T) {
	base := surveyBase(Acoustic)
	if _, err := NewSurvey(base, nil, SurveyOptions{}); err == nil {
		t.Fatal("empty shot list accepted")
	}
	withSrc := base
	withSrc.Sources = []Coord{{100, 100, 100}}
	if _, err := NewSurvey(withSrc, surveyShots(1), SurveyOptions{}); err == nil {
		t.Fatal("base options with sources accepted")
	}
	bad := surveyShots(1)
	bad[0].Sources[0] = Coord{-50, 0, 0}
	if _, err := NewSurvey(base, bad, SurveyOptions{}); err == nil {
		t.Fatal("out-of-grid shot source accepted")
	}
	short := surveyShots(1)
	short[0].SourceWavelets = [][]float32{make([]float32, 16)}
	if _, err := NewSurvey(base, short, SurveyOptions{}); err == nil {
		t.Fatal("wavelet/source count mismatch accepted")
	}
}

// TestSurveyOnShotCallback checks per-shot completion callbacks fire once
// per shot, under concurrency.
func TestSurveyOnShotCallback(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]int{}
	base := surveyBase(Acoustic)
	shots := surveyShots(4)
	_, err := RunSurvey(base, shots, Spatial{BlockX: 8, BlockY: 8}, SurveyOptions{
		Concurrency: 2,
		OnShot: func(shot int, res *Result) {
			mu.Lock()
			seen[shot]++
			mu.Unlock()
			if res == nil || res.Receivers == nil {
				t.Errorf("shot %d callback without result", shot)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range shots {
		if seen[i] != 1 {
			t.Fatalf("shot %d callback fired %d times", i, seen[i])
		}
	}
}
