module wavetile

go 1.22
