// Elastic two-layer: the velocity–stress propagator over a sediment/basement
// interface, recording vertical particle velocity at the surface. Shows the
// multi-grid (two-phase) wavefront temporal blocking on the nine-field
// elastic system and picks the direct P arrival against theory.
//
//	go run ./examples/elastic2layer
package main

import (
	"fmt"
	"log"
	"math"

	"wavetile/wavesim"
)

func main() {
	const (
		n   = 56
		h   = 10.0
		nbl = 8
	)
	extent := float64(n-1) * h
	center := extent / 2
	iface := 0.55 * extent // interface depth

	vp := func(x, y, z float64) float64 {
		if z < iface {
			return 1800
		}
		return 3200
	}
	vs := func(x, y, z float64) float64 {
		if z < iface {
			return 900
		}
		return 1800
	}

	sim, err := wavesim.New(wavesim.Options{
		Physics:    wavesim.Elastic,
		SpaceOrder: 4,
		Shape:      [3]int{n, n, n},
		Spacing:    [3]float64{h, h, h},
		NBL:        nbl,
		TMax:       0.16,
		Vp:         vp,
		Vs:         vs,
		Rho:        wavesim.Homogeneous(2000),
		SourceF0:   16,
		SourceAmp:  1e3,
		Sources:    []wavesim.Coord{{center + 1.3, center - 2.7, float64(nbl+4) * h}},
		Receivers: wavesim.LineCoords(16,
			wavesim.Coord{center + 60, center, float64(nbl+2) * h},
			wavesim.Coord{center + 210, center, float64(nbl+2) * h}),
	})
	if err != nil {
		log.Fatal(err)
	}
	_, _, dt, nt := sim.Geometry()
	fmt.Printf("elastic O(1,4), %d³ grid, %d steps (dt=%.3f ms)\n", n, nt, dt*1e3)

	res, err := sim.Run(wavesim.WTB{TimeTile: 8, TileX: 16, TileY: 16, BlockX: 8, BlockY: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WTB run: %v (%.3f GPts/s), 9 wavefields, two-phase wavefronts\n",
		res.Elapsed.Round(1e6), res.GPointsPerSec)

	// Direct P-wave arrival check on the vz record: pick the first sample
	// above threshold per receiver and compare with offset/vp.
	srcZ := float64(nbl+4) * h
	recZ := float64(nbl+2) * h
	fmt.Println("\noffset(m)  picked(ms)  direct-P theory(ms)")
	for r := 0; r < 16; r += 3 {
		offset := 60 + 150*float64(r)/15.0
		dist := math.Hypot(offset, srcZ-recZ)
		peak := 0.0
		for t := range res.Receivers {
			if v := math.Abs(float64(res.Receivers[t][r])); v > peak {
				peak = v
			}
		}
		pick := -1.0
		for t := range res.Receivers {
			if math.Abs(float64(res.Receivers[t][r])) > 0.02*peak {
				pick = float64(t+1) * dt * 1e3
				break
			}
		}
		fmt.Printf("%9.0f  %10.1f  %19.1f\n", offset, pick, dist/1800*1e3)
	}
	fmt.Println("\n(picks trail theory slightly: the Ricker onset precedes its peak)")
}
