// Quickstart: propagate a single Ricker source through a layered acoustic
// model, first under the spatially-blocked baseline and then under
// wave-front temporal blocking, verify both produce identical receiver
// data, and print the shot record's strongest arrivals.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"wavetile/wavesim"
)

func main() {
	const (
		n   = 72   // grid points per edge (absorbing layers included)
		h   = 10.0 // metres
		nbl = 8
	)
	center := float64(n-1) * h / 2

	sim, err := wavesim.New(wavesim.Options{
		Physics:    wavesim.Acoustic,
		SpaceOrder: 8,
		Shape:      [3]int{n, n, n},
		Spacing:    [3]float64{h, h, h},
		NBL:        nbl,
		TMax:       0.12, // seconds
		Vp:         wavesim.Layered(float64(n)*h, 1500, 2200, 3000),
		SourceF0:   18,
		SourceAmp:  1,
		// One off-the-grid source near the surface...
		Sources: []wavesim.Coord{{center + 3.7, center - 2.1, float64(nbl+3) * h}},
		// ...and a receiver cable across the model.
		Receivers: wavesim.LineCoords(24,
			wavesim.Coord{float64(nbl+1) * h, center, float64(nbl+2) * h},
			wavesim.Coord{float64(n-nbl-2) * h, center, float64(nbl+2) * h}),
	})
	if err != nil {
		log.Fatal(err)
	}
	_, _, dt, nt := sim.Geometry()
	fmt.Printf("acoustic O(2,8) on %d³ grid: dt=%.3f ms, %d timesteps\n", n, dt*1e3, nt)

	spatial, err := sim.Run(wavesim.Spatial{BlockX: 8, BlockY: 8})
	if err != nil {
		log.Fatal(err)
	}
	wtb, err := sim.Run(wavesim.WTB{TimeTile: 16, TileX: 24, TileY: 24, BlockX: 8, BlockY: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spatial blocking: %8v  (%.3f GPts/s)\n", spatial.Elapsed.Round(1e6), spatial.GPointsPerSec)
	fmt.Printf("temporal blocking: %7v  (%.3f GPts/s)\n", wtb.Elapsed.Round(1e6), wtb.GPointsPerSec)

	// The paper's correctness property: the precomputed sparse operators
	// make the two schedules bitwise identical.
	for t := range spatial.Receivers {
		for r := range spatial.Receivers[t] {
			if spatial.Receivers[t][r] != wtb.Receivers[t][r] {
				log.Fatalf("schedules disagree at t=%d receiver %d", t, r)
			}
		}
	}
	fmt.Println("receiver records from the two schedules are bitwise identical ✓")

	// First-arrival picks: the wave moves out from the centre, so arrival
	// time grows with receiver offset.
	fmt.Println("\nreceiver  first-arrival (ms)  peak amplitude")
	for r := 0; r < len(spatial.Receivers[0]); r += 4 {
		peak, arrival := 0.0, -1
		for t := range spatial.Receivers {
			v := math.Abs(float64(spatial.Receivers[t][r]))
			if v > peak {
				peak = v
			}
			if arrival < 0 && v > 1e-6 {
				arrival = t
			}
		}
		fmt.Printf("%8d  %19.1f  %14.3g\n", r, float64(arrival)*dt*1e3, peak)
	}
}
