// Survey: the workload that motivates the paper — a seismic acquisition
// with *many* simultaneous off-the-grid sources (an airgun array / blended
// acquisition) and a dense receiver carpet, repeated over multiple shot
// positions along a sail line. This is the regime where the Listing-1
// source loop is most intrusive and where the precomputation scheme
// shines: hundreds of sources decompose onto grid-aligned points once per
// shot, and temporal blocking then runs unhindered.
//
// The shots run through wavesim.RunSurvey — the batch engine: the earth
// model, damping profile and receiver supports are built once, every
// shot's source decomposition is precomputed up front in parallel, and
// the propagator's wavefield grids recycle through a buffer pool between
// shots instead of being reallocated.
//
// The survey reports two levels of progress through the obs layer: within
// a shot, the schedule's step-level ETA (obs.EnableProgress); across the
// survey, a shot-level ETA from an obs.Meter driven by the engine's
// per-shot completion callback — the pattern any multi-hour acquisition
// driver needs.
//
//	go run ./examples/survey
package main

import (
	"fmt"
	"log"
	"log/slog"
	"math"
	"os"
	"sync"
	"time"

	"wavetile/internal/obs"
	"wavetile/wavesim"
)

const (
	n      = 64
	h      = 10.0
	nbl    = 8
	nshots = 4 // shot positions along the sail line
)

func main() {
	extent := float64(n-1) * h

	// Shot-level progress: one Meter across the survey; step-level progress
	// inside each shot comes from the registry the schedules report to.
	reg := obs.NewRegistry()
	obs.SetActive(reg)
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	reg.EnableProgress(logger, 2*time.Second)
	meter := obs.NewMeter(logger, "survey", nshots, 2*time.Second)

	// Receiver carpet: 16×16 grid sampled as 4 lines for brevity; fixed for
	// the whole survey (an ocean-bottom layout).
	var receivers []wavesim.Coord
	for i := 0; i < 16; i++ {
		for j := 0; j < 4; j++ {
			receivers = append(receivers, wavesim.Coord{
				0.1*extent + 0.8*extent*float64(i)/15.0,
				0.2*extent + 0.6*extent*float64(j)/3.0,
				float64(nbl+1) * h,
			})
		}
	}

	// The shared-model side of the survey: everything except the sources.
	base := wavesim.Options{
		Physics:    wavesim.Acoustic,
		SpaceOrder: 4,
		Shape:      [3]int{n, n, n},
		Spacing:    [3]float64{h, h, h},
		NBL:        nbl,
		TMax:       0.15,
		Vp:         wavesim.Gradient(1500, 3200, extent),
		SourceF0:   15,
		SourceAmp:  1,
		Receivers:  receivers,
	}
	shots := make([]wavesim.Shot, nshots)
	for s := range shots {
		shots[s] = wavesim.Shot{Sources: shotSources(s, extent)}
	}

	sv, err := wavesim.NewSurvey(base, shots, wavesim.SurveyOptions{
		Concurrency: 1, // one lane: the survey interior stays the hot path
		OnShot: func(shot int, res *wavesim.Result) {
			path := fmt.Sprintf("survey_shot_%02d.csv", shot)
			writeRecord(path, res.Receivers)
			fmt.Printf("shot %d/%d: %8v (%.3f GPts/s) → %s\n",
				shot+1, nshots, res.Elapsed.Round(1e6), res.GPointsPerSec, path)
			meter.Done(shot + 1)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	_, _, dt, nt := sv.Geometry()
	fmt.Printf("survey: %d shots × 49 sources, %d receivers, %d³ grid, %d steps (dt=%.2f ms)\n",
		nshots, len(receivers), n, nt, dt*1e3)

	// Correctness demonstration on shot 0: the paper's unfused Listing-1
	// baseline against the precomputed + temporally blocked path.
	compareSchedules(base, shots[0])

	res, err := sv.Run(wavesim.WTB{TimeTile: 16, TileX: 32, TileY: 32, BlockX: 8, BlockY: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("survey complete: %d shots in %v (%.2f shots/s, precompute %v, pool %d hit / %d miss)\n",
		nshots, res.Elapsed.Round(1e6), res.ShotsPerSec, res.Precompute.Round(1e6),
		res.PoolHits, res.PoolMisses)
}

// shotSources places the 7×7 blended source array for one shot position:
// the array center advances along x per shot (the sail line), every source
// deliberately off-the-grid (fractional offsets).
func shotSources(shot int, extent float64) []wavesim.Coord {
	sail := 0.15 * extent * float64(shot) / float64(nshots)
	lo, hi := 0.15*extent+sail, 0.65*extent+sail
	var sources []wavesim.Coord
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			sources = append(sources, wavesim.Coord{
				lo + (hi-lo)*float64(i)/6.0 + 3.3,
				0.25*extent + 0.5*extent*float64(j)/6.0 + 1.7,
				float64(nbl+2)*h + 4.9,
			})
		}
	}
	return sources
}

// compareSchedules runs the unfused Listing-1 baseline and the precomputed
// WTB path on the same shot and checks the records agree to single-precision
// tolerance (the two paths differ only in FP accumulation order).
func compareSchedules(base wavesim.Options, shot wavesim.Shot) {
	opts := base
	opts.Sources = shot.Sources
	sim, err := wavesim.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := sim.Run(wavesim.Spatial{Unfused: true})
	if err != nil {
		log.Fatal(err)
	}
	wtb, err := sim.Run(wavesim.WTB{TimeTile: 16, TileX: 32, TileY: 32, BlockX: 8, BlockY: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("listing-1 baseline: %8v (%.3f GPts/s)\n", ref.Elapsed.Round(1e6), ref.GPointsPerSec)
	fmt.Printf("precomputed + WTB:  %8v (%.3f GPts/s)\n", wtb.Elapsed.Round(1e6), wtb.GPointsPerSec)

	peak := 0.0
	for t := range ref.Receivers {
		for r := range ref.Receivers[t] {
			if v := math.Abs(float64(ref.Receivers[t][r])); v > peak {
				peak = v
			}
		}
	}
	maxRel := 0.0
	for t := range ref.Receivers {
		for r := range ref.Receivers[t] {
			d := math.Abs(float64(ref.Receivers[t][r]-wtb.Receivers[t][r])) / peak
			if d > maxRel {
				maxRel = d
			}
		}
	}
	fmt.Printf("baseline vs precomputed record: max relative deviation %.2e (FP reassociation only)\n", maxRel)
	if maxRel > 1e-4 {
		log.Fatal("records disagree beyond FP tolerance")
	}
}

var writeMu sync.Mutex

// writeRecord writes one shot's blended record as CSV (rows = timesteps).
// Serialized: OnShot may fire from concurrent lanes.
func writeRecord(path string, rec [][]float32) {
	writeMu.Lock()
	defer writeMu.Unlock()
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	for t := range rec {
		for r, v := range rec[t] {
			if r > 0 {
				fmt.Fprint(f, ",")
			}
			fmt.Fprintf(f, "%g", v)
		}
		fmt.Fprintln(f)
	}
}
