// Survey: the workload that motivates the paper — a seismic acquisition
// with *many* simultaneous off-the-grid sources (an airgun array / blended
// acquisition) and a dense receiver carpet, repeated over multiple shot
// positions along a sail line. This is the regime where the Listing-1
// source loop is most intrusive and where the precomputation scheme
// shines: hundreds of sources decompose onto grid-aligned points once per
// shot, and temporal blocking then runs unhindered.
//
// The shot loop reports two levels of progress through the obs layer:
// within a shot, the schedule's step-level ETA (obs.EnableProgress); across
// the survey, a shot-level ETA from an obs.Meter — the pattern any
// multi-hour acquisition driver needs.
//
//	go run ./examples/survey
package main

import (
	"fmt"
	"log"
	"log/slog"
	"math"
	"os"
	"time"

	"wavetile/internal/obs"
	"wavetile/wavesim"
)

const (
	n      = 64
	h      = 10.0
	nbl    = 8
	nshots = 4 // shot positions along the sail line
)

func main() {
	extent := float64(n-1) * h

	// Shot-level progress: one Meter across the survey; step-level progress
	// inside each shot comes from the registry the schedules report to.
	reg := obs.NewRegistry()
	obs.SetActive(reg)
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	reg.EnableProgress(logger, 2*time.Second)
	meter := obs.NewMeter(logger, "survey", nshots, 2*time.Second)

	// Receiver carpet: 16×16 grid sampled as 4 lines for brevity; fixed for
	// the whole survey (an ocean-bottom layout).
	var receivers []wavesim.Coord
	for i := 0; i < 16; i++ {
		for j := 0; j < 4; j++ {
			receivers = append(receivers, wavesim.Coord{
				0.1*extent + 0.8*extent*float64(i)/15.0,
				0.2*extent + 0.6*extent*float64(j)/3.0,
				float64(nbl+1) * h,
			})
		}
	}

	var nt int
	for shot := 0; shot < nshots; shot++ {
		sim, dt, steps := buildShot(shot, extent, receivers)
		nt = steps
		if shot == 0 {
			fmt.Printf("survey: %d shots × 49 sources, %d receivers, %d³ grid, %d steps (dt=%.2f ms)\n",
				nshots, len(receivers), n, nt, dt*1e3)
			// First shot doubles as the correctness demonstration: the
			// paper's unfused Listing-1 baseline against the precomputed +
			// temporally blocked path.
			compareSchedules(sim)
		}
		wtb, err := sim.Run(wavesim.WTB{TimeTile: 16, TileX: 32, TileY: 32, BlockX: 8, BlockY: 8})
		if err != nil {
			log.Fatal(err)
		}
		path := fmt.Sprintf("survey_shot_%02d.csv", shot)
		writeRecord(path, wtb.Receivers)
		fmt.Printf("shot %d/%d: %8v (%.3f GPts/s) → %s\n",
			shot+1, nshots, wtb.Elapsed.Round(1e6), wtb.GPointsPerSec, path)
		meter.Done(shot + 1)
	}
	fmt.Printf("survey complete: %d shots, %d-step records\n", nshots, nt)
}

// buildShot places the 7×7 blended source array for one shot position: the
// array center advances along x per shot (the sail line), every source
// deliberately off-the-grid (fractional offsets).
func buildShot(shot int, extent float64, receivers []wavesim.Coord) (*wavesim.Simulation, float64, int) {
	sail := 0.15 * extent * float64(shot) / float64(nshots)
	lo, hi := 0.15*extent+sail, 0.65*extent+sail
	var sources []wavesim.Coord
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			sources = append(sources, wavesim.Coord{
				lo + (hi-lo)*float64(i)/6.0 + 3.3,
				0.25*extent + 0.5*extent*float64(j)/6.0 + 1.7,
				float64(nbl+2)*h + 4.9,
			})
		}
	}
	sim, err := wavesim.New(wavesim.Options{
		Physics:    wavesim.Acoustic,
		SpaceOrder: 4,
		Shape:      [3]int{n, n, n},
		Spacing:    [3]float64{h, h, h},
		NBL:        nbl,
		TMax:       0.15,
		Vp:         wavesim.Gradient(1500, 3200, extent),
		SourceF0:   15,
		SourceAmp:  1,
		Sources:    sources,
		Receivers:  receivers,
	})
	if err != nil {
		log.Fatal(err)
	}
	_, _, dt, nt := sim.Geometry()
	return sim, dt, nt
}

// compareSchedules runs the unfused Listing-1 baseline and the precomputed
// WTB path on the same shot and checks the records agree to single-precision
// tolerance (the two paths differ only in FP accumulation order).
func compareSchedules(sim *wavesim.Simulation) {
	base, err := sim.Run(wavesim.Spatial{Unfused: true})
	if err != nil {
		log.Fatal(err)
	}
	wtb, err := sim.Run(wavesim.WTB{TimeTile: 16, TileX: 32, TileY: 32, BlockX: 8, BlockY: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("listing-1 baseline: %8v (%.3f GPts/s)\n", base.Elapsed.Round(1e6), base.GPointsPerSec)
	fmt.Printf("precomputed + WTB:  %8v (%.3f GPts/s)\n", wtb.Elapsed.Round(1e6), wtb.GPointsPerSec)

	peak := 0.0
	for t := range base.Receivers {
		for r := range base.Receivers[t] {
			if v := math.Abs(float64(base.Receivers[t][r])); v > peak {
				peak = v
			}
		}
	}
	maxRel := 0.0
	for t := range base.Receivers {
		for r := range base.Receivers[t] {
			d := math.Abs(float64(base.Receivers[t][r]-wtb.Receivers[t][r])) / peak
			if d > maxRel {
				maxRel = d
			}
		}
	}
	fmt.Printf("baseline vs precomputed record: max relative deviation %.2e (FP reassociation only)\n", maxRel)
	if maxRel > 1e-4 {
		log.Fatal("records disagree beyond FP tolerance")
	}
}

// writeRecord writes one shot's blended record as CSV (rows = timesteps).
func writeRecord(path string, rec [][]float32) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	for t := range rec {
		for r, v := range rec[t] {
			if r > 0 {
				fmt.Fprint(f, ",")
			}
			fmt.Fprintf(f, "%g", v)
		}
		fmt.Fprintln(f)
	}
}
