// Survey: the workload that motivates the paper — a seismic acquisition
// with *many* simultaneous off-the-grid sources (an airgun array / blended
// acquisition) and a dense receiver carpet. This is the regime where the
// Listing-1 source loop is most intrusive and where the precomputation
// scheme shines: hundreds of sources decompose onto grid-aligned points
// once, and temporal blocking then runs unhindered.
//
//	go run ./examples/survey
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"wavetile/wavesim"
)

func main() {
	const (
		n    = 64
		h    = 10.0
		nbl  = 8
		nsrc = 49 // 7×7 source array
	)
	extent := float64(n-1) * h

	// A 7×7 array of sources near the surface, deliberately off-the-grid
	// (fractional offsets), with per-source time shifts (blended shooting).
	var sources []wavesim.Coord
	lo, hi := 0.25*extent, 0.75*extent
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			sources = append(sources, wavesim.Coord{
				lo + (hi-lo)*float64(i)/6.0 + 3.3,
				lo + (hi-lo)*float64(j)/6.0 + 1.7,
				float64(nbl+2)*h + 4.9,
			})
		}
	}

	// Receiver carpet: 16×16 grid sampled as 4 lines for brevity.
	var receivers []wavesim.Coord
	for i := 0; i < 16; i++ {
		for j := 0; j < 4; j++ {
			receivers = append(receivers, wavesim.Coord{
				0.1*extent + 0.8*extent*float64(i)/15.0,
				0.2*extent + 0.6*extent*float64(j)/3.0,
				float64(nbl+1) * h,
			})
		}
	}

	sim, err := wavesim.New(wavesim.Options{
		Physics:    wavesim.Acoustic,
		SpaceOrder: 4,
		Shape:      [3]int{n, n, n},
		Spacing:    [3]float64{h, h, h},
		NBL:        nbl,
		TMax:       0.15,
		Vp:         wavesim.Gradient(1500, 3200, extent),
		SourceF0:   15,
		SourceAmp:  1,
		Sources:    sources,
		Receivers:  receivers,
	})
	if err != nil {
		log.Fatal(err)
	}
	_, _, dt, nt := sim.Geometry()
	fmt.Printf("survey: %d sources, %d receivers, %d³ grid, %d steps (dt=%.2f ms)\n",
		nsrc, len(receivers), n, nt, dt*1e3)

	// The paper's baseline: unfused per-source injection every timestep.
	base, err := sim.Run(wavesim.Spatial{Unfused: true})
	if err != nil {
		log.Fatal(err)
	}
	// Precomputed + temporally blocked.
	wtb, err := sim.Run(wavesim.WTB{TimeTile: 16, TileX: 32, TileY: 32, BlockX: 8, BlockY: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("listing-1 baseline: %8v (%.3f GPts/s)\n", base.Elapsed.Round(1e6), base.GPointsPerSec)
	fmt.Printf("precomputed + WTB:  %8v (%.3f GPts/s)\n", wtb.Elapsed.Round(1e6), wtb.GPointsPerSec)

	// The two sparse-operator paths differ only in floating-point
	// accumulation order: records must agree to single-precision tolerance.
	maxRel := 0.0
	peak := 0.0
	for t := range base.Receivers {
		for r := range base.Receivers[t] {
			if v := math.Abs(float64(base.Receivers[t][r])); v > peak {
				peak = v
			}
		}
	}
	for t := range base.Receivers {
		for r := range base.Receivers[t] {
			d := math.Abs(float64(base.Receivers[t][r]-wtb.Receivers[t][r])) / peak
			if d > maxRel {
				maxRel = d
			}
		}
	}
	fmt.Printf("baseline vs precomputed record: max relative deviation %.2e (FP reassociation only)\n", maxRel)
	if maxRel > 1e-4 {
		log.Fatal("records disagree beyond FP tolerance")
	}

	// Write the blended shot record.
	f, err := os.Create("survey_record.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	for t := range wtb.Receivers {
		for r, v := range wtb.Receivers[t] {
			if r > 0 {
				fmt.Fprint(f, ",")
			}
			fmt.Fprintf(f, "%g", v)
		}
		fmt.Fprintln(f)
	}
	fmt.Printf("wrote %d×%d blended shot record to survey_record.csv\n", nt, len(receivers))
}
