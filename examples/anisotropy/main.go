// Anisotropy: run the isotropic acoustic and the TTI propagator on the same
// homogeneous background and show the anisotropic wavefront distortion — in
// a VTI/TTI medium with ε > 0 the wave travels √(1+2ε)× faster along the
// symmetry plane than along the axis, so the snapshot wavefront is an
// ellipse. The example measures the wavefront extent along x (in-plane) and
// z (symmetry axis) through the source and compares the two propagators.
//
//	go run ./examples/anisotropy
package main

import (
	"fmt"
	"log"
	"math"

	"wavetile/wavesim"
)

const (
	n   = 56
	h   = 10.0
	nbl = 6
)

// extents measures how far (in cells) the wavefront reaches from the grid
// centre along +x and +z, using a common relative threshold against the
// global field maximum.
func extents(sim *wavesim.Simulation) (xr, zr int) {
	c := n / 2
	globalMax := 0.0
	profileX := make([]float64, n) // |u| along x through the centre
	profileZ := make([]float64, n) // |u| along z through the centre
	for z := 0; z < n; z++ {
		sl := sim.WavefieldSlice(z)
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				v := math.Abs(float64(sl[x][y]))
				if v > globalMax {
					globalMax = v
				}
				if z == c && y == c {
					profileX[x] = v
				}
				if x == c && y == c {
					profileZ[z] = v
				}
			}
		}
	}
	thr := 0.02 * globalMax
	for r := 1; r < n/2-1; r++ {
		if profileX[c+r] > thr {
			xr = r
		}
		if profileZ[c+r] > thr {
			zr = r
		}
	}
	return xr, zr
}

func main() {
	center := float64(n-1) * h / 2
	src := []wavesim.Coord{{center, center, center}}

	base := wavesim.Options{
		SpaceOrder: 8,
		Shape:      [3]int{n, n, n},
		Spacing:    [3]float64{h, h, h},
		NBL:        nbl,
		Steps:      54,
		Vp:         wavesim.Homogeneous(2000),
		SourceF0:   22,
		SourceAmp:  1e3,
		Sources:    src,
	}
	sched := wavesim.WTB{TimeTile: 8, TileX: 16, TileY: 16, BlockX: 8, BlockY: 8}

	iso := base
	iso.Physics = wavesim.Acoustic
	isoSim, err := wavesim.New(iso)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := isoSim.Run(sched); err != nil {
		log.Fatal(err)
	}
	isoX, isoZ := extents(isoSim)

	tti := base
	tti.Physics = wavesim.TTI
	tti.Epsilon = wavesim.Homogeneous(0.33) // strong ellipticity
	tti.Delta = wavesim.Homogeneous(0.1)
	tti.Theta = wavesim.Homogeneous(0) // symmetry axis along z
	tti.Phi = wavesim.Homogeneous(0)
	ttiSim, err := wavesim.New(tti)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ttiSim.Run(sched); err != nil {
		log.Fatal(err)
	}
	ttiX, ttiZ := extents(ttiSim)

	fmt.Println("wavefront extent from the source (grid cells):")
	fmt.Printf("  isotropic acoustic: x=%d z=%d (x/z ratio %.2f)\n", isoX, isoZ, float64(isoX)/float64(isoZ))
	fmt.Printf("  TTI (ε=0.33, θ=0):  x=%d z=%d (x/z ratio %.2f)\n", ttiX, ttiZ, float64(ttiX)/float64(ttiZ))
	fmt.Printf("\nwith ε = 0.33 the in-plane velocity is √(1+2ε) ≈ %.2f× the axial one,\n", math.Sqrt(1+2*0.33))
	fmt.Println("so the TTI wavefront is horizontally stretched while the isotropic one is round.")
	if float64(ttiX)/float64(ttiZ) <= float64(isoX)/float64(isoZ) {
		log.Fatal("anisotropic stretching not observed")
	}
}
