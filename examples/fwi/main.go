// FWI: a miniature full-waveform inversion — together with RTM the
// application class motivating the paper (§I). A velocity anomaly is
// recovered by gradient descent on the data misfit:
//
//	for each iteration:
//	  1. forward-model predicted data in the current model (with snapshots),
//	  2. residual = predicted − observed,
//	  3. back-propagate the residual from the receivers (off-the-grid
//	     injection again) and cross-correlate with the forward wavefield
//	     → misfit gradient,
//	  4. update the model against the gradient; the data misfit must drop.
//
// Every wavefield here is produced by the propagators under test; the
// observed data are modelled with wave-front temporal blocking.
//
//	go run ./examples/fwi
package main

import (
	"fmt"
	"log"
	"math"

	"wavetile/wavesim"
)

const (
	n     = 44
	h     = 10.0
	nbl   = 6
	nrec  = 20
	steps = 260
	every = 4
	iters = 4
)

var dtShared float64

// vpModel is a y-extruded velocity model: a base velocity plus an x–z
// perturbation grid updated by the inversion.
type vpModel struct {
	base  float64
	dv    [][]float64 // [x][z] perturbation (m/s)
	cells int
}

func newVpModel(base float64) *vpModel {
	m := &vpModel{base: base, cells: n}
	m.dv = make([][]float64, n)
	for x := range m.dv {
		m.dv[x] = make([]float64, n)
	}
	return m
}

func (m *vpModel) field() wavesim.FieldFunc {
	return func(x, y, z float64) float64 {
		i := int(x/h + 0.5)
		k := int(z/h + 0.5)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		if k < 0 {
			k = 0
		}
		if k >= n {
			k = n - 1
		}
		return m.base + m.dv[i][k]
	}
}

func opts(vp wavesim.FieldFunc, sources []wavesim.Coord, wavelets [][]float32, receivers []wavesim.Coord) wavesim.Options {
	return wavesim.Options{
		Physics:        wavesim.Acoustic,
		SpaceOrder:     4,
		Shape:          [3]int{n, n, n},
		Spacing:        [3]float64{h, h, h},
		NBL:            nbl,
		Steps:          steps,
		DtOverride:     dtShared,
		Vp:             vp,
		SourceF0:       13,
		SourceAmp:      1e2,
		Sources:        sources,
		SourceWavelets: wavelets,
		Receivers:      receivers,
	}
}

func misfit(pred, obs [][]float32) float64 {
	acc := 0.0
	for t := range pred {
		for r := range pred[t] {
			d := float64(pred[t][r] - obs[t][r])
			acc += d * d
		}
	}
	return acc
}

func main() {
	extent := float64(n-1) * h
	center := extent / 2

	// True model: +250 m/s Gaussian blob below the centre.
	trueModel := newVpModel(1500)
	for x := 0; x < n; x++ {
		for z := 0; z < n; z++ {
			dx := (float64(x)*h - center) / 60
			dz := (float64(z)*h - 0.5*extent) / 60
			trueModel.dv[x][z] = 250 * math.Exp(-(dx*dx + dz*dz))
		}
	}
	current := newVpModel(1500) // inversion starts blind

	shot := []wavesim.Coord{{center + 1.7, center, float64(nbl+2) * h}}
	receivers := wavesim.LineCoords(nrec,
		wavesim.Coord{0.2*extent + 1.1, center, float64(nbl+1) * h},
		wavesim.Coord{0.8*extent - 1.1, center, float64(nbl+1) * h})

	// Shared time axis with headroom: the inversion's intermediate models
	// may transiently exceed the true vmax, so the dt bound uses a padded
	// velocity ceiling (updates are clamped to stay below it).
	probe, err := wavesim.New(opts(wavesim.Homogeneous(2100), shot, nil, receivers))
	if err != nil {
		log.Fatal(err)
	}
	dtShared = probe.Dt()

	// Observed data (modelled with temporal blocking).
	obsSim, err := wavesim.New(opts(trueModel.field(), shot, nil, receivers))
	if err != nil {
		log.Fatal(err)
	}
	obsRes, err := obsSim.Run(wavesim.WTB{TimeTile: 16, TileX: 20, TileY: 20, BlockX: 8, BlockY: 8})
	if err != nil {
		log.Fatal(err)
	}
	obs := obsRes.Receivers

	fmt.Printf("FWI: %d³ grid, %d steps, %d receivers, %d iterations\n", n, steps, nrec, iters)
	evalMisfit := func() float64 {
		sim, err := wavesim.New(opts(current.field(), shot, nil, receivers))
		if err != nil {
			log.Fatal(err)
		}
		r, err := sim.Run(wavesim.Spatial{})
		if err != nil {
			log.Fatal(err)
		}
		return misfit(r.Receivers, obs)
	}
	step := 150.0 // m/s per normalized gradient unit (shrinks on backtracking)
	sign := -1.0  // resolved on the first iteration
	var m0 float64
	for it := 0; it < iters; it++ {
		// Forward in the current model, with snapshots and predicted data.
		fwd, err := wavesim.New(opts(current.field(), shot, nil, receivers))
		if err != nil {
			log.Fatal(err)
		}
		fwdRes, fwdSnaps, err := fwd.RunWithSnapshots(every, n/2, 8, 8)
		if err != nil {
			log.Fatal(err)
		}
		m := misfit(fwdRes.Receivers, obs)
		if it == 0 {
			m0 = m
		}
		fmt.Printf("  iter %d: misfit %.4g (%.1f%% of initial)\n", it, m, 100*m/m0)

		// Residual back-propagation.
		resWav := make([][]float32, nrec)
		for r := 0; r < nrec; r++ {
			resWav[r] = make([]float32, steps)
			for t := 0; t < steps; t++ {
				k := len(obs) - 1 - t
				resWav[r][t] = fwdRes.Receivers[k][r] - obs[k][r]
			}
		}
		adj, err := wavesim.New(opts(current.field(), receivers, resWav, nil))
		if err != nil {
			log.Fatal(err)
		}
		_, adjSnaps, err := adj.RunWithSnapshots(every, n/2, 8, 8)
		if err != nil {
			log.Fatal(err)
		}

		// Cross-correlation gradient on the x–z plane, shallow zone muted.
		grad := make([][]float64, n)
		for x := range grad {
			grad[x] = make([]float64, n)
		}
		ns := min(len(fwdSnaps), len(adjSnaps))
		gmax := 0.0
		for k := 0; k < ns; k++ {
			us, ur := fwdSnaps[k], adjSnaps[ns-1-k]
			for x := 0; x < n; x++ {
				for z := nbl + 4; z < n-nbl; z++ {
					grad[x][z] += float64(us[x][z]) * float64(ur[x][z])
					if g := math.Abs(grad[x][z]); g > gmax {
						gmax = g
					}
				}
			}
		}
		if gmax == 0 {
			log.Fatal("zero gradient")
		}
		// Descent step with backtracking: apply sign·α·g/|g|max, keep only
		// updates that reduce the misfit, halving α otherwise. On the first
		// iteration both signs are tried (the correlation sign depends on
		// source conventions).
		saved := make([][]float64, n)
		for x := range saved {
			saved[x] = append([]float64(nil), current.dv[x]...)
		}
		apply := func(sg, alpha float64) {
			for x := 0; x < n; x++ {
				copy(current.dv[x], saved[x])
				for z := 0; z < n; z++ {
					v := current.dv[x][z] + sg*alpha*grad[x][z]/gmax
					// Clamp inside the CFL headroom of the shared dt.
					if v > 550 {
						v = 550
					}
					if v < -550 {
						v = -550
					}
					current.dv[x][z] = v
				}
			}
		}
		signs := []float64{sign}
		if it == 0 {
			signs = []float64{-1, +1}
		}
		improved := false
		for _, sg := range signs {
			for alpha := step; alpha >= step/8 && !improved; alpha /= 2 {
				apply(sg, alpha)
				if evalMisfit() < m {
					improved, sign, step = true, sg, alpha
				}
			}
			if improved {
				break
			}
		}
		if !improved {
			// Restore and stop descending; the final check still runs.
			for x := range saved {
				copy(current.dv[x], saved[x])
			}
			fmt.Println("  line search exhausted; stopping early")
			break
		}
	}

	// Final misfit.
	fin, err := wavesim.New(opts(current.field(), shot, nil, receivers))
	if err != nil {
		log.Fatal(err)
	}
	fr, err := fin.Run(wavesim.Spatial{})
	if err != nil {
		log.Fatal(err)
	}
	mf := misfit(fr.Receivers, obs)
	fmt.Printf("  final:  misfit %.4g (%.1f%% of initial)\n", mf, 100*mf/m0)

	// Recovered anomaly at the blob centre.
	bx, bz := n/2, n/2
	fmt.Printf("\nanomaly at blob centre: true +%.0f m/s, recovered %+.0f m/s\n",
		trueModel.dv[bx][bz], current.dv[bx][bz])
	if mf >= m0 {
		log.Fatal("FWI failed to reduce the data misfit")
	}
	if current.dv[bx][bz] <= 0 {
		log.Fatal("FWI update has the wrong sign at the anomaly")
	}
	fmt.Println("misfit reduced and anomaly sign recovered ✓")
}
