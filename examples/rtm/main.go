// RTM: a miniature reverse-time migration — the application class the paper
// is motivated by ("full-waveform inversion (FWI) and reverse time
// migration (RTM)"). The workflow:
//
//  1. Modelling: generate "observed" data in the true two-layer model,
//     using wave-front temporal blocking (the production-speed stage the
//     paper accelerates).
//
//  2. Source-side wavefield in the smooth migration model, with snapshots.
//
//  3. Receiver-side wavefield: receivers re-injected as sources with the
//     time-reversed observed records (off-the-grid injection again!), with
//     snapshots.
//
//  4. Zero-lag cross-correlation imaging condition: the image lights up
//     where the two wavefields coincide — at the reflector.
//
//     go run ./examples/rtm
package main

import (
	"fmt"
	"log"
	"math"

	"wavetile/wavesim"
)

const (
	n     = 64
	h     = 10.0
	nbl   = 8
	nrec  = 28
	steps = 320
	every = 2
)

// dtShared is the timestep of the fastest model (vmax = 2800 m/s): every
// stage of the workflow must share one time axis so records modelled in the
// true model re-inject correctly in the smooth model.
var dtShared float64

func opts(vp wavesim.FieldFunc, sources []wavesim.Coord, wavelets [][]float32, receivers []wavesim.Coord) wavesim.Options {
	return wavesim.Options{
		Physics:        wavesim.Acoustic,
		SpaceOrder:     8,
		Shape:          [3]int{n, n, n},
		Spacing:        [3]float64{h, h, h},
		NBL:            nbl,
		Steps:          steps,
		DtOverride:     dtShared,
		Vp:             vp,
		SourceF0:       14,
		SourceAmp:      1e2,
		Sources:        sources,
		SourceWavelets: wavelets,
		Receivers:      receivers,
	}
}

func main() {
	extent := float64(n-1) * h
	center := extent / 2
	ifaceZ := 0.55 * extent // true reflector depth

	trueVp := func(x, y, z float64) float64 {
		if z < ifaceZ {
			return 1500
		}
		return 2800
	}
	smoothVp := wavesim.Homogeneous(1500) // migration model: no reflector

	shot := []wavesim.Coord{{center + 2.3, center - 1.1, float64(nbl+3) * h}}
	receivers := wavesim.LineCoords(nrec,
		wavesim.Coord{0.15*extent + 1.7, center, float64(nbl+2) * h},
		wavesim.Coord{0.85*extent - 1.7, center, float64(nbl+2) * h})

	// Fix the shared time axis from the fastest model.
	probe, err := wavesim.New(wavesim.Options{
		Physics: wavesim.Acoustic, SpaceOrder: 8,
		Shape: [3]int{n, n, n}, Spacing: [3]float64{h, h, h}, NBL: nbl,
		Steps: steps, Vp: trueVp,
	})
	if err != nil {
		log.Fatal(err)
	}
	dtShared = probe.Dt()

	// 1. Observed data in the true model (fast path: temporal blocking).
	obsSim, err := wavesim.New(opts(trueVp, shot, nil, receivers))
	if err != nil {
		log.Fatal(err)
	}
	obsRes, err := obsSim.Run(wavesim.WTB{TimeTile: 16, TileX: 32, TileY: 32, BlockX: 8, BlockY: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modelled observed data: %d traces × %d samples (%v, WTB)\n",
		nrec, len(obsRes.Receivers), obsRes.Elapsed.Round(1e6))

	// 2. Source wavefield in the smooth model, with snapshots — and the
	// predicted (direct-wave-only) records in the same model, so the
	// adjoint source below is the data *residual*: observed − direct.
	// Without this subtraction the back-propagated direct arrival swamps
	// the image with source/receiver crosstalk.
	srcSim, err := wavesim.New(opts(smoothVp, shot, nil, receivers))
	if err != nil {
		log.Fatal(err)
	}
	srcRes, srcSnaps, err := srcSim.RunWithSnapshots(every, n/2, 8, 8)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Receiver wavefield: residual records, time-reversed, injected at
	// the receiver positions (sparse off-the-grid injection drives the
	// adjoint too).
	revWav := make([][]float32, nrec)
	for r := 0; r < nrec; r++ {
		revWav[r] = make([]float32, steps)
		for t := 0; t < steps && t < len(obsRes.Receivers); t++ {
			k := len(obsRes.Receivers) - 1 - t
			revWav[r][t] = obsRes.Receivers[k][r] - srcRes.Receivers[k][r]
		}
	}
	recSim, err := wavesim.New(opts(smoothVp, receivers, revWav, nil))
	if err != nil {
		log.Fatal(err)
	}
	_, recSnaps, err := recSim.RunWithSnapshots(every, n/2, 8, 8)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Imaging condition: image(x,z) = Σ_t u_src(t)·u_rec(T−t).
	ns := len(srcSnaps)
	if len(recSnaps) < ns {
		ns = len(recSnaps)
	}
	image := make([][]float64, n)
	for x := range image {
		image[x] = make([]float64, n)
	}
	for k := 0; k < ns; k++ {
		us := srcSnaps[k]
		ur := recSnaps[ns-1-k] // receiver run is already time-reversed
		for x := 0; x < n; x++ {
			for z := 0; z < n; z++ {
				image[x][z] += float64(us[x][z]) * float64(ur[x][z])
			}
		}
	}

	// Depth profile of |image| averaged over the central third of x. The
	// shallow zone is muted (standard practice): the source/receiver
	// direct-wave crosstalk there dwarfs any reflectivity.
	muteZ := int((float64(nbl+3)*h + 120) / h)
	fmt.Printf("\ndepth(m)   image energy (normalized, central x band, mute above %.0f m)\n",
		float64(muteZ)*h)
	prof := make([]float64, n)
	peakZ, peakV := 0, 0.0
	for z := muteZ; z < n-nbl; z++ {
		acc := 0.0
		for x := n / 3; x < 2*n/3; x++ {
			acc += math.Abs(image[x][z])
		}
		prof[z] = acc
		if acc > peakV {
			peakV, peakZ = acc, z
		}
	}
	for z := muteZ; z < n-nbl; z += 2 {
		bar := int(40 * prof[z] / peakV)
		fmt.Printf("%7.0f    %s\n", float64(z)*h, barOf(bar))
	}
	fmt.Printf("\nimage peak at depth %.0f m; true reflector at %.0f m\n",
		float64(peakZ)*h, ifaceZ)
	if math.Abs(float64(peakZ)*h-ifaceZ) > 8*h {
		log.Fatal("RTM image peak far from the true reflector")
	}
	fmt.Println("the migrated image localizes the reflector ✓")
}

func barOf(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "█"
	}
	return s
}
