// Package wavetile reproduces Bisbas et al., "Temporal blocking of
// finite-difference stencil operators with sparse 'off-the-grid' sources"
// (IPDPS 2021): finite-difference wave propagators with off-the-grid
// sources/receivers, the sparse-operator precomputation scheme that makes
// wave-front temporal blocking legal for them, a trace-driven cache
// simulator standing in for the paper's Xeon testbeds, and harnesses that
// regenerate every table and figure of the paper's evaluation.
//
// The public API lives in the wavesim subpackage; see README.md for the
// repository layout and EXPERIMENTS.md for paper-vs-measured results.
package wavetile
