package wavetile_test

// Benchmark harness: one benchmark family per table/figure of the paper's
// evaluation, runnable with
//
//	go test -bench=. -benchmem
//
// Grid sizes default to host-friendly values (the paper uses 512³ on Xeon
// testbeds); the cmd/ tools expose the full-size runs and the simulated
// Broadwell/Skylake predictions. Every benchmark reports the paper's
// throughput metric, GPoints/s, as a custom metric.

import (
	"fmt"
	"testing"

	"wavetile/internal/bench"
	"wavetile/internal/cachesim"
	"wavetile/internal/core"
	"wavetile/internal/dist"
	"wavetile/internal/grid"
	"wavetile/internal/model"
	"wavetile/internal/roofline"
	"wavetile/internal/sparse"
	"wavetile/internal/tiling"
	"wavetile/internal/trace"
	"wavetile/internal/wavelet"
)

const (
	benchN     = 96 // grid edge for kernel benchmarks
	benchSteps = 8  // timesteps per benchmark iteration
)

func buildProblem(b *testing.B, model string, so int, spec func(*bench.Spec)) *bench.Problem {
	b.Helper()
	s := bench.Spec{Model: model, SO: so, N: benchN, Steps: benchSteps}
	if spec != nil {
		spec(&s)
	}
	p, err := s.Build()
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func reportGPts(b *testing.B, p *bench.Problem) {
	pts := float64(p.PointsPerStep) * float64(benchSteps) * float64(b.N)
	b.ReportMetric(pts/b.Elapsed().Seconds()/1e9, "GPts/s")
}

// --- Figure 9: WTB vs spatially-blocked throughput, per model × order ----

func benchSpatial(b *testing.B, model string, so int) {
	p := buildProblem(b, model, so, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Reset()
		tiling.RunSpatial(p.Prop, 8, 8, false) // unfused Listing-1 baseline
	}
	reportGPts(b, p)
}

func benchWTB(b *testing.B, model string, so int, cfg tiling.Config) {
	p := buildProblem(b, model, so, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Reset()
		if err := tiling.RunWTB(p.Prop, cfg); err != nil {
			b.Fatal(err)
		}
	}
	reportGPts(b, p)
}

func BenchmarkFig9(b *testing.B) {
	for _, model := range []string{"acoustic", "elastic", "tti"} {
		for _, so := range []int{4, 8, 12} {
			cfg := tiling.Config{TT: 8, TileX: 32, TileY: 32, BlockX: 8, BlockY: 8}
			if so == 12 {
				cfg.TileX, cfg.TileY = 48, 48
			}
			b.Run(fmt.Sprintf("%s/SO%d/spatial", model, so), func(b *testing.B) {
				benchSpatial(b, model, so)
			})
			b.Run(fmt.Sprintf("%s/SO%d/wtb", model, so), func(b *testing.B) {
				benchWTB(b, model, so, cfg)
			})
		}
	}
}

// --- Table I: tile/block shape ablation (autotune sweep points) ----------

func BenchmarkTableITileShapes(b *testing.B) {
	for _, cfg := range []tiling.Config{
		{TT: 8, TileX: 16, TileY: 16, BlockX: 8, BlockY: 8},
		{TT: 8, TileX: 32, TileY: 32, BlockX: 8, BlockY: 8},
		{TT: 8, TileX: 64, TileY: 64, BlockX: 8, BlockY: 8},
		{TT: 16, TileX: 32, TileY: 32, BlockX: 8, BlockY: 8},
		{TT: 32, TileX: 32, TileY: 32, BlockX: 8, BlockY: 8},
		{TT: 8, TileX: 32, TileY: 32, BlockX: 4, BlockY: 4},
		{TT: 8, TileX: 32, TileY: 32, BlockX: 16, BlockY: 16},
	} {
		b.Run(cfg.String(), func(b *testing.B) {
			benchWTB(b, "acoustic", 8, cfg)
		})
	}
}

// --- Figure 10: source-count corner cases --------------------------------

func BenchmarkFig10Sources(b *testing.B) {
	for _, layout := range []string{"plane", "dense"} {
		for _, nsrc := range []int{1, 64, 1024} {
			b.Run(fmt.Sprintf("%s/%d/wtb", layout, nsrc), func(b *testing.B) {
				p := buildProblem(b, "acoustic", 4, func(s *bench.Spec) {
					s.NSrc, s.SrcLayout = nsrc, layout
				})
				cfg := tiling.Config{TT: 8, TileX: 32, TileY: 32, BlockX: 8, BlockY: 8}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.Reset()
					if err := tiling.RunWTB(p.Prop, cfg); err != nil {
						b.Fatal(err)
					}
				}
				reportGPts(b, p)
			})
		}
	}
}

// --- Figure 11 / simulator: traced DRAM traffic of the two schedules -----

func BenchmarkFig11TraceSim(b *testing.B) {
	for _, sched := range []string{"spatial", "wtb"} {
		b.Run("acoustic/SO4/"+sched, func(b *testing.B) {
			src := sparse.Single(sparse.Coord{250, 250, 250})
			sup, err := src.Supports(64, 64, 64, 10, 10, 10)
			if err != nil {
				b.Fatal(err)
			}
			sh := trace.Shape{Nx: 64, Ny: 64, Nz: 64, SO: 4, Nt: 4, SrcSupports: sup}
			var dram uint64
			for i := 0; i < b.N; i++ {
				h := cachesim.New(roofline.Broadwell().Cache.Scaled(1.0 / 64))
				p := trace.NewAcoustic(sh, h)
				if sched == "spatial" {
					tiling.RunSpatial(p, 0, 0, false)
				} else {
					if err := tiling.RunWTB(p, tiling.Config{TT: 4, TileX: 16, TileY: 16, BlockX: 16, BlockY: 16}); err != nil {
						b.Fatal(err)
					}
				}
				dram = h.Snapshot("t").DRAMBytes
			}
			b.ReportMetric(float64(dram)/1e6, "DRAM-MB/run")
		})
	}
}

// --- Scheme overhead (paper §II: "negligible overhead") ------------------

// BenchmarkInjection compares the cost of the paper's Listing-1 scattered
// injection against the fused, compressed injection of Listing 5, per
// timestep over the full grid.
func BenchmarkInjection(b *testing.B) {
	const n = 128
	src := sparse.PlaneSlice(256, 300, 100, 1100, 100, 1100)
	sup, err := src.Supports(n, n, n, 10, 10, 10)
	if err != nil {
		b.Fatal(err)
	}
	u := grid.New(n, n, n, 2)
	amps := make([]float32, len(sup))
	for i := range amps {
		amps[i] = 1
	}
	one := func(x, y, z int) float32 { return 1 }

	b.Run("listing1-offgrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparse.Inject(u, sup, amps, one)
		}
	})

	m := core.BuildMasks(n, n, n, sup)
	wav := make([][]float32, len(sup))
	for i := range wav {
		wav[i] = []float32{1}
	}
	dcmp, err := m.DecomposeWavelets(sup, wav, 1, one)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("listing5-fused", func(b *testing.B) {
		full := grid.FullRegion(n, n)
		for i := 0; i < b.N; i++ {
			m.InjectRegion(u, full, dcmp[0])
		}
	})
}

// BenchmarkPrecompute measures the one-off cost of the scheme itself: mask
// construction and wavefield decomposition for a 512-source survey over a
// full-length time axis.
func BenchmarkPrecompute(b *testing.B) {
	const n, nt = 128, 512
	src := sparse.DenseVolume(512, 100, 1100, 100, 1100, 100, 1100)
	sup, err := src.Supports(n, n, n, 10, 10, 10)
	if err != nil {
		b.Fatal(err)
	}
	wav := make([][]float32, len(sup))
	for i := range wav {
		wav[i] = make([]float32, nt)
	}
	one := func(x, y, z int) float32 { return 1 }
	b.Run("BuildMasks", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.BuildMasks(n, n, n, sup)
		}
	})
	m := core.BuildMasks(n, n, n, sup)
	b.Run("DecomposeWavelets", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.DecomposeWavelets(sup, wav, nt, one); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Kernel microbenchmarks ----------------------------------------------

func BenchmarkKernelStep(b *testing.B) {
	for _, c := range []struct {
		model string
		so    int
	}{
		{"acoustic", 4}, {"acoustic", 8}, {"acoustic", 12},
		{"tti", 4}, {"elastic", 4},
	} {
		b.Run(fmt.Sprintf("%s/SO%d", c.model, c.so), func(b *testing.B) {
			p := buildProblem(b, c.model, c.so, nil)
			nx, ny := p.Prop.GridShape()
			off := p.Prop.MaxPhaseOffset()
			raw := grid.Region{X0: 0, X1: nx + off, Y0: 0, Y1: ny + off}
			p.Prop.SetBlocks(8, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Prop.Step(i%benchSteps, raw, true)
			}
			pts := float64(p.PointsPerStep) * float64(b.N)
			b.ReportMetric(pts/b.Elapsed().Seconds()/1e9, "GPts/s")
		})
	}
}

// --- Distributed decomposition: communication-avoiding deep halos --------

// BenchmarkDistExchangeModes compares per-step halo exchange against the
// communication-avoiding deep-halo mode (WTB inside each rank, one exchange
// per Depth steps). The custom metric reports halo exchanges per run.
func BenchmarkDistExchangeModes(b *testing.B) {
	g := model.Geometry{Nx: 96, Ny: 64, Nz: 64, Hx: 10, Hy: 10, Hz: 10, NBL: 6}
	dt := g.CriticalDtAcoustic(4, 3000, model.DefaultCFL)
	g.Dt, g.Nt = dt, 16
	vp := model.Layered(960, 1500, 2500, 3000)
	src := sparse.Single(sparse.Coord{475.5, 315.2, 115.7})
	wav := [][]float32{wavelet.RickerSeries(10, g.Nt, g.Dt, 1)}

	for _, c := range []struct {
		name string
		cfg  dist.Config
	}{
		{"perstep", dist.Config{Ranks: 2, Mode: dist.PerStep, BlockX: 8, BlockY: 8}},
		{"deephalo8", dist.Config{Ranks: 2, Mode: dist.DeepHalo, Depth: 8, TileY: 32, BlockX: 8, BlockY: 8}},
	} {
		b.Run(c.name, func(b *testing.B) {
			var ex int
			for i := 0; i < b.N; i++ {
				cl, err := dist.NewAcousticCluster(c.cfg, g, 4, vp, src, wav)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := cl.Run(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				ex = cl.Exchanges()
			}
			b.ReportMetric(float64(ex), "exchanges/run")
		})
	}
}
