GO ?= go

.PHONY: all build test race-obs bench bench-json bce-check fmt vet check

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-heavy packages: the parallel
# runtime, the schedules, and the observability layer they feed.
race-obs:
	$(GO) vet ./...
	$(GO) test -race ./internal/obs/... ./internal/par/... ./internal/tiling/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Wall-clock throughput across model x order x schedule, as JSON rows.
# BENCH_PR3.json in the repo root holds the committed before/after
# trajectory for the PR-3 kernel overhaul, produced from these runs.
BENCH_JSON ?= bench.json
bench-json:
	$(GO) build -o /tmp/wavebench ./cmd/wavebench
	/tmp/wavebench -mode wall -models acoustic,elastic,tti -orders 4,8 \
		-n 96 -steps 8 -tunesteps 2 -json > $(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"

# Bounds-check-elimination gate: the radius-specialized kernels (*_kern.go)
# must compile with zero IsInBounds checks — the per-row sub-slice
# discipline documented in internal/wave/acoustic_kern.go makes the prove
# pass eliminate them all, and this target fails if a kernel edit
# reintroduces any. IsSliceInBounds (once-per-row slicing setup) is allowed.
bce-check:
	@out=$$($(GO) build -gcflags='-d=ssa/check_bce' ./internal/wave 2>&1 | \
		grep '_kern\.go' | grep 'Found IsInBounds'; exit 0); \
	if [ -n "$$out" ]; then \
		echo "bce-check: bounds checks reappeared in radius-specialized kernels:"; \
		echo "$$out"; exit 1; \
	fi; \
	echo "bce-check: kernels are bounds-check free"

check: build vet test race-obs bce-check
