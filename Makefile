GO ?= go

.PHONY: all build test race-obs race-sched race-survey race-serve bench \
	bench-json bench-smoke bench-regress bench-survey bench-autotune \
	bce-check fmt vet check verify fuzz-smoke golden generate \
	generate-check hostcal hostcal-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Race-detector pass over the concurrency-heavy packages: the parallel
# runtime, the schedules, and the observability layer they feed.
race-obs:
	$(GO) vet ./...
	$(GO) test -race ./internal/obs/... ./internal/par/... ./internal/tiling/...

# Race-detector pass over the task-graph scheduler and the overlapped
# distributed exchange built on it: the pipelined WTB runtime (work-stealing
# deques, park/wake protocol) and the dist pack-early/unpack handshake.
race-sched:
	$(GO) test -race ./internal/sched/... ./internal/dist/...

# Race-detector pass over the multi-shot batch engine: concurrent lanes
# (K > 1) over shared immutable model state, the grid pool, and the
# survey counters — exercised through both the batch package's dispatch
# tests and the wavesim survey oracle/autotune tests.
race-survey:
	$(GO) test -race ./internal/batch/...
	$(GO) test -race ./wavesim -run Survey

# Race-detector pass over the simulation service: the HTTP job queue,
# runner pool, result streaming and checkpoint persistence, including the
# end-to-end oracle (HTTP results bitwise equal to a direct survey run),
# the crash/resume fault test, and the concurrent submit/cancel/scrape
# workout with its /metrics accounting assertions. The wavesim resume
# oracle rides along — it proves the checkpoint restore the service's
# resume path is built on.
race-serve:
	$(GO) test -race ./internal/serve/...
	$(GO) test -race ./wavesim -run 'Resum|Checkpoint'

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Wall-clock throughput across model x order x schedule, as JSON rows.
# BENCH_PR3.json in the repo root holds the committed before/after
# trajectory for the PR-3 kernel overhaul, produced from these runs.
BENCH_JSON ?= bench.json
bench-json:
	$(GO) build -o /tmp/wavebench ./cmd/wavebench
	/tmp/wavebench -mode wall -models acoustic,elastic,tti -orders 4,8 \
		-n 96 -steps 8 -tunesteps 2 -json > $(BENCH_JSON)
	@echo "wrote $(BENCH_JSON)"

# Short-iteration benchmark smoke: tiny wall-mode sweep (spatial, WTB and
# pipelined columns) plus the scheduler/dist micro-benchmarks at one
# iteration each. Catches bit-rot in the measurement paths without the
# runtime cost of a real benchmark session.
bench-smoke:
	$(GO) build -o /tmp/wavebench ./cmd/wavebench
	/tmp/wavebench -mode wall -models acoustic -orders 4 \
		-n 48 -steps 4 -tunesteps 2 -schedule both > /dev/null
	$(GO) test ./internal/dist -run '^$$' -bench . -benchtime 1x
	$(GO) test ./internal/par -run '^$$' -bench BenchmarkForGrain -benchtime 1x

# Bench regression smoke gate: two back-to-back runs of the same binary on
# a tiny problem, diffed with the paired sign-flip test. Identical binaries
# should never produce a significant regression at a 10% effect floor — the
# gate catches bit-rot in the bench/diff pipeline itself and, when pointed
# at two real artifacts (benchdiff OLD NEW), real throughput regressions.
# Soft by design in `check` (noise on loaded CI hosts must not fail the
# build); CI runs it as its own job with artifacts uploaded.
bench-regress:
	$(GO) build -o /tmp/wavebench ./cmd/wavebench
	$(GO) build -o /tmp/benchdiff ./cmd/benchdiff
	/tmp/wavebench -mode wall -models acoustic -orders 4 \
		-n 48 -steps 4 -tunesteps 2 -json > /tmp/bench_old.json
	/tmp/wavebench -mode wall -models acoustic -orders 4 \
		-n 48 -steps 4 -tunesteps 2 -json > /tmp/bench_new.json
	/tmp/benchdiff -min-effect 0.10 /tmp/bench_old.json /tmp/bench_new.json

# Survey benchmark: the same N-shot acquisition as a per-shot wavesim.New
# loop vs the batch engine, emitted as benchdiff-compatible trajectory
# rows. BENCH_PR8.json in the repo root is the committed artifact.
BENCH_SURVEY_JSON ?= BENCH_PR8.json
bench-survey:
	$(GO) build -o /tmp/wavesurvey ./cmd/survey
	/tmp/wavesurvey -physics acoustic,elastic,tti -so 4 -n 48 -nbl 6 \
		-steps 12 -shots 6 -schedule wtb -json > $(BENCH_SURVEY_JSON)
	$(GO) run ./cmd/benchdiff $(BENCH_SURVEY_JSON) $(BENCH_SURVEY_JSON)
	@echo "wrote $(BENCH_SURVEY_JSON)"

# Full host characterization: STREAM-style bandwidth at every cache
# boundary, peak FLOP/s, cache geometry — persisted as the schema-versioned
# fingerprint that `-machine host`/auto attribution and the predictive
# autotuner consume. Takes a minute or two; run once per host (or after a
# hardware change), then `roofline -calibrate` to fit the 2-parameter
# correction.
HOSTCAL_OUT ?=
hostcal:
	$(GO) build -o /tmp/hostcal ./cmd/hostcal
	/tmp/hostcal $(if $(HOSTCAL_OUT),-o $(HOSTCAL_OUT))
	$(GO) build -o /tmp/roofline ./cmd/roofline
	/tmp/roofline -calibrate $(if $(HOSTCAL_OUT),-hostcal $(HOSTCAL_OUT))

# Seconds-fast smoke variant of host characterization: quick measurement to
# a scratch path, re-loaded through the staleness/host-mismatch checks.
# Proves the measure→persist→validate loop works on this machine without
# the cost (or the cache-side-effects) of a full run. Wired into `check`
# and CI; CI uploads the fingerprint JSON as an artifact.
HOSTCAL_SMOKE_OUT ?= /tmp/hostcal-smoke.json
hostcal-smoke:
	$(GO) build -o /tmp/hostcal ./cmd/hostcal
	/tmp/hostcal -quick -o $(HOSTCAL_SMOKE_OUT)
	/tmp/hostcal -check -o $(HOSTCAL_SMOKE_OUT)

# Sweep-vs-predict validation: quick fingerprint + calibration into a
# scratch path, then the predictive autotuner against the full sweep on the
# same candidates — tuning wall-clock, winner agreement and regret per
# scenario, as the committed BENCH_PR10.json artifact. The benchdiff
# self-diff proves the new report format round-trips through the loader.
BENCH_AUTOTUNE_JSON ?= BENCH_PR10.json
BENCH_AUTOTUNE_CAL ?= /tmp/hostcal-bench.json
bench-autotune:
	$(GO) build -o /tmp/hostcal ./cmd/hostcal
	$(GO) build -o /tmp/roofline ./cmd/roofline
	$(GO) build -o /tmp/autotune ./cmd/autotune
	/tmp/hostcal -quick -o $(BENCH_AUTOTUNE_CAL)
	/tmp/roofline -calibrate -hostcal $(BENCH_AUTOTUNE_CAL) -caln 32 -calreps 1
	/tmp/autotune -n 48 -predict -compare -json -machine host \
		-hostcal $(BENCH_AUTOTUNE_CAL) -models acoustic,tti -orders 4,8 \
		-tt 4 -tunesteps 4 -repeats 1 -tracen 32 > $(BENCH_AUTOTUNE_JSON)
	$(GO) run ./cmd/benchdiff $(BENCH_AUTOTUNE_JSON) $(BENCH_AUTOTUNE_JSON)
	@echo "wrote $(BENCH_AUTOTUNE_JSON)"

# Regenerate the radius-specialized stencil kernels and the dispatch
# registry from internal/wave/kerngen. The emitted files are committed;
# after editing the generator, run this and commit the diff together.
generate:
	$(GO) generate ./internal/wave

# Drift gate: the committed generated kernels must match what the generator
# emits. CI runs this so a hand-edit to a *_kern.go file (or a generator
# change without regeneration) fails the build instead of silently
# diverging.
generate-check: generate
	@if ! git -C . diff --exit-code --stat -- \
		'internal/wave/*_kern.go' internal/wave/kern_registry.go; then \
		echo "generate-check: committed kernels differ from generator output"; \
		echo "generate-check: run 'make generate' and commit the result"; \
		exit 1; \
	fi
	@echo "generate-check: generated kernels are in sync"

# Bounds-check-elimination gate: the radius-specialized kernels (*_kern.go)
# must compile with zero IsInBounds checks — the per-row sub-slice
# discipline documented in internal/wave/acoustic_kern.go makes the prove
# pass eliminate them all, and this target fails if a kernel edit
# reintroduces any. IsSliceInBounds (once-per-row slicing setup) is allowed.
bce-check:
	@out=$$($(GO) build -gcflags='-d=ssa/check_bce' ./internal/wave 2>&1 | \
		grep '_kern\.go' | grep 'Found IsInBounds'; exit 0); \
	if [ -n "$$out" ]; then \
		echo "bce-check: bounds checks reappeared in radius-specialized kernels:"; \
		echo "$$out"; exit 1; \
	fi; \
	echo "bce-check: kernels are bounds-check free"

# Differential verification sweep: VERIFY_N random scenarios through the
# schedule-equivalence oracle plus the metamorphic, fault-injection and
# golden-corpus tests, all under the race detector. A failing scenario
# prints its seed; replay it with
#   go test ./internal/verify -run TestVerifyScenarios -verify.seed=<N>
VERIFY_N ?= 50
VERIFY_SEED ?= 0
verify:
	$(GO) test -race ./internal/verify -verify.n=$(VERIFY_N) -verify.seed=$(VERIFY_SEED)

# Short deterministic pass over every native fuzz target (corpus + 10s of
# active fuzzing each). `go test -fuzz` accepts a single target per run, so
# each gets its own invocation.
FUZZ_TIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/fd -run=^$$ -fuzz=FuzzSecondDeriv -fuzztime=$(FUZZ_TIME)
	$(GO) test ./internal/fd -run=^$$ -fuzz=FuzzFirstDeriv$$ -fuzztime=$(FUZZ_TIME)
	$(GO) test ./internal/fd -run=^$$ -fuzz=FuzzStaggeredFirstDeriv -fuzztime=$(FUZZ_TIME)
	$(GO) test ./internal/grid -run=^$$ -fuzz=FuzzRegion -fuzztime=$(FUZZ_TIME)
	$(GO) test ./internal/core -run=^$$ -fuzz=FuzzMasks -fuzztime=$(FUZZ_TIME)
	$(GO) test ./internal/serve -run=^$$ -fuzz=FuzzJobSpec -fuzztime=$(FUZZ_TIME)

# Regenerate the committed golden regression corpus. Only run this when a
# numerical change is intended and understood; commit the refreshed JSON
# together with the change that explains it.
golden:
	$(GO) test ./internal/verify -run TestGoldenCorpus -golden.update
	@git -C . status --short internal/verify/testdata/golden || true

check: build vet test race-obs race-sched race-survey race-serve generate-check bce-check hostcal-smoke verify bench-regress
