GO ?= go

.PHONY: all build test race-obs bench fmt vet check

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-heavy packages: the parallel
# runtime, the schedules, and the observability layer they feed.
race-obs:
	$(GO) vet ./...
	$(GO) test -race ./internal/obs/... ./internal/par/... ./internal/tiling/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

check: build vet test race-obs
